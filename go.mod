module geneva

go 1.22
