// Package geneva is the public API of this reproduction of "Come as You
// Are: Helping Unmodified Clients Bypass Censorship with Server-side
// Evasion" (Bock et al., SIGCOMM 2020).
//
// It exposes the Geneva strategy language and packet-manipulation engine
// (extended to run server-side), the paper's eleven server-side strategies,
// the genetic algorithm that discovers them, and a simulation harness with
// mechanistic models of the censors in China, India, Iran, and Kazakhstan.
//
// Quick start — apply Strategy 1 to a server's outbound packets:
//
//	strategy := geneva.MustParse(geneva.Strategy1.DSL)
//	engine := geneva.NewEngine(strategy, rand.New(rand.NewSource(1)))
//	server.Outbound = engine.Outbound // tcpstack.Endpoint hook
//
// Or evaluate a strategy against a censor end to end:
//
//	res, err := geneva.Run(geneva.Simulation{
//	    Country:  geneva.China,
//	    Protocol: "http",
//	    Strategy: geneva.Strategy1.DSL,
//	    Trials:   100,
//	})
//	// res.Rate is the §4.2 evasion rate; res.Manifest records the run.
//
// Or serve a whole fleet of mixed-country clients from one endpoint behind
// the §8 deployment router:
//
//	fr, err := geneva.RunDeployment(geneva.Deployment{Connections: 500})
//	// fr.PerCountry["china"].EvasionRate(), fr.Outcomes, fr.Manifest ...
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package geneva

import (
	"math/rand"
	"strconv"

	"geneva/internal/core"
	"geneva/internal/eval"
	"geneva/internal/fleet"
	"geneva/internal/genetic"
	"geneva/internal/netsim"
	"geneva/internal/obs"
	"geneva/internal/selector"
	"geneva/internal/strategies"
)

// Sentinel errors, matchable with errors.Is. Every validation failure from
// Run, RunDeployment, Evolve, and NewPortfolio wraps one of these while
// keeping a descriptive message that names the valid values — branch on
// the sentinel, read the message.
var (
	// ErrUnknownCountry: the named country has no modeled censor (see
	// Countries()).
	ErrUnknownCountry = eval.ErrUnknownCountry
	// ErrUnknownProtocol: the named protocol has no modeled application
	// session ("dns", "ftp", "http", "https", "smtp").
	ErrUnknownProtocol = eval.ErrUnknownProtocol
	// ErrInvalidStrategy: a strategy string failed to parse.
	ErrInvalidStrategy = core.ErrInvalidStrategy
)

// Strategy is a parsed Geneva strategy: trigger/action-tree rules for the
// outbound and inbound directions.
type Strategy = core.Strategy

// Engine applies a Strategy to a host's packet stream; its Outbound method
// plugs directly into tcpstack.Endpoint.Outbound.
type Engine = core.Engine

// Action is a node in a strategy's action tree.
type Action = core.Action

// Trigger selects the packets an action tree applies to.
type Trigger = core.Trigger

// Parse reads a strategy in Geneva's canonical syntax.
func Parse(input string) (*Strategy, error) { return core.Parse(input) }

// MustParse is Parse that panics on error (for static strategies).
func MustParse(input string) *Strategy { return core.MustParse(input) }

// NewEngine builds an engine for a strategy; the rng drives corrupt-mode
// tampers.
func NewEngine(s *Strategy, rng *rand.Rand) *Engine { return core.NewEngine(s, rng) }

// LibraryStrategy is a named strategy from the paper with its metadata.
type LibraryStrategy = strategies.Strategy

// The paper's eleven server-side strategies (§5).
var (
	Strategy1  = strategies.Strategy1
	Strategy2  = strategies.Strategy2
	Strategy3  = strategies.Strategy3
	Strategy4  = strategies.Strategy4
	Strategy5  = strategies.Strategy5
	Strategy6  = strategies.Strategy6
	Strategy7  = strategies.Strategy7
	Strategy8  = strategies.Strategy8
	Strategy9  = strategies.Strategy9
	Strategy10 = strategies.Strategy10
	Strategy11 = strategies.Strategy11
)

// AllStrategies returns the eleven paper strategies in order.
func AllStrategies() []LibraryStrategy { return strategies.All() }

// Countries with modeled censors. India is the Airtel sibling of the
// Indian ISP family; Jio and Vodafone are independent censors with their
// own mechanics (SNI blackholing and injected 302 redirects respectively).
const (
	China         = eval.CountryChina
	India         = eval.CountryIndia
	IndiaJio      = eval.CountryIndiaJio
	IndiaVodafone = eval.CountryIndiaVodafone
	Iran          = eval.CountryIran
	Kazakhstan    = eval.CountryKazakhstan
	Turkmenistan  = eval.CountryTurkmenistan
	NoCensor      = eval.CountryNone
)

// Countries returns every country with a modeled censor, in registry
// order, followed by NoCensor. Registering a new censor in the internal
// registry surfaces it here (and in flag help and validation errors)
// automatically.
func Countries() []string { return eval.Countries() }

// Simulation describes an end-to-end evasion evaluation: an unmodified
// client inside the given country fetching forbidden content from a server
// running the strategy.
type Simulation struct {
	// Country selects the censor model (one of Countries(): China, the
	// Indian ISPs, Iran, Kazakhstan, Turkmenistan, or NoCensor).
	Country string
	// Protocol is one of "dns", "ftp", "http", "https", "smtp".
	Protocol string
	// Strategy is the server-side Geneva program ("" = no evasion).
	Strategy string
	// Trials is the number of independent connections (default 100).
	Trials int
	// Seed fixes the randomness (two equal Simulations agree exactly).
	Seed int64
	// Workers bounds the worker pool the trials fan out on (0 = the
	// process default, one worker per CPU). Purely a scheduling knob:
	// results are bit-identical at any width.
	Workers int
	// Impairments degrades the network path symmetrically in both
	// directions and arms endpoint retransmission. The zero value keeps the
	// historical lossless behaviour: no random loss, no timers, results
	// byte-identical to builds without the impairment layer.
	Impairments Impairments
}

// Impairments is a symmetric network impairment profile for Simulation and
// Deployment: per-packet Loss/Duplicate/Reorder probabilities in [0,1] and a
// maximum uniform extra Jitter delay. It is the netsim layer's Profile type
// — one shared definition, no conversion — and all randomness derives from
// the run's seed, so impaired runs are exactly reproducible too.
type Impairments = netsim.Profile

// Result is the structured outcome of Run: the per-trial outcome counts,
// the evasion rate, and the diffable run manifest.
type Result struct {
	// Trials is the number of independent connections simulated.
	Trials int `json:"trials"`
	// Succeeded counts trials meeting the paper's §4.2 criterion: no
	// tear-down and the client received the correct, unaltered data.
	Succeeded int `json:"succeeded"`
	// Established counts trials in which any attempt completed a handshake.
	Established int `json:"established"`
	// Attempts totals connections across all trials (retries included).
	Attempts int `json:"attempts"`
	// CensorEvents totals the censor's censorship actions.
	CensorEvents int `json:"censor_events"`
	// Rate is Succeeded/Trials, the §4.2 evasion rate.
	Rate float64 `json:"rate"`
	// Manifest is the geneva-run-manifest/v1 record of the run: config,
	// seed schedule, and (when metrics collection is enabled) every
	// counter. Byte-identical across reruns and worker widths.
	Manifest obs.Manifest `json:"manifest"`
}

// Run executes the simulation and returns the structured result. A
// Simulation naming an unknown Country or Protocol returns a descriptive
// error. Results are bit-identical for equal Simulations at any Workers
// width.
func Run(s Simulation) (Result, error) {
	if err := eval.CheckCountryProtocol(s.Country, s.Protocol); err != nil {
		return Result{}, err
	}
	cfg := eval.Config{
		Country:     s.Country,
		Session:     eval.SessionFor(s.Country, s.Protocol, true),
		Tries:       eval.TriesFor(s.Protocol),
		Seed:        s.Seed,
		Workers:     s.Workers,
		Impairments: netsim.Symmetric(s.Impairments),
	}
	if s.Strategy != "" {
		parsed, err := core.Parse(s.Strategy)
		if err != nil {
			return Result{}, err
		}
		cfg.Strategy = parsed
	}
	trials := s.Trials
	if trials <= 0 {
		trials = 100
	}
	stats := eval.RateStats(cfg, trials)
	return Result{
		Trials:       stats.Trials,
		Succeeded:    stats.Succeeded,
		Established:  stats.Established,
		Attempts:     stats.Attempts,
		CensorEvents: stats.CensorEvents,
		Rate:         stats.Rate(),
		Manifest:     runManifest(s, trials),
	}, nil
}

// runManifest assembles Run's manifest. Workers is deliberately omitted —
// it cannot affect the simulation, so its absence keeps Results identical
// across widths.
func runManifest(s Simulation, trials int) obs.Manifest {
	return obs.NewManifest("run", map[string]string{
		"country":   s.Country,
		"protocol":  s.Protocol,
		"strategy":  s.Strategy,
		"trials":    strconv.Itoa(trials),
		"loss":      strconv.FormatFloat(s.Impairments.Loss, 'g', -1, 64),
		"duplicate": strconv.FormatFloat(s.Impairments.Duplicate, 'g', -1, 64),
		"reorder":   strconv.FormatFloat(s.Impairments.Reorder, 'g', -1, 64),
		"jitter":    s.Impairments.Jitter.String(),
	}, obs.DefaultSeedSchedule(s.Seed))
}

// EvasionRate runs the simulation and returns just the §4.2 success rate:
// the fraction of trials in which the connection was not torn down and the
// client received the correct, unaltered data. It is Run reduced to one
// number.
func EvasionRate(s Simulation) (float64, error) {
	res, err := Run(s)
	if err != nil {
		return 0, err
	}
	return res.Rate, nil
}

// Portfolio is an ordered, validated list of candidate strategies — the
// unit of deployment. Build one with NewPortfolio; the zero value is the
// empty portfolio (Deployment then uses the per-country registry pins).
type Portfolio = selector.Portfolio

// NewPortfolio parses and validates each strategy, in order. Errors wrap
// ErrInvalidStrategy and name the failing strategy's position.
func NewPortfolio(strategies ...string) (Portfolio, error) {
	return selector.NewPortfolio(strategies...)
}

// Selection configures the online strategy-selection control plane on a
// Deployment: a deterministic, seeded bandit that picks each connection's
// strategy from the portfolio and learns from per-connection outcomes,
// with sliding-window decay and collapse-quarantine fallback. The zero
// value disables it; see the field docs on selector.Selection.
type Selection = selector.Selection

// SelectionPolicy names a bandit policy for Selection.Policy.
type SelectionPolicy = selector.Policy

// The selection policies: epsilon-greedy (explore with probability
// Epsilon, otherwise exploit the best decayed success rate) and UCB1
// (optimism under uncertainty).
const (
	EpsilonGreedy = selector.EpsilonGreedy
	UCB1          = selector.UCB1
)

// SelectionOutcome is one portfolio strategy's lifetime selection tally in
// one country: pulls and how each attempt ended (CountryStats.Selection).
type SelectionOutcome = selector.ArmReport

// CensorShift is a Deployment's deterministic mid-run censor re-tune — the
// collapse-and-recover scenario's lever (see fleet.CensorShift).
type CensorShift = fleet.CensorShift

// Deployment describes a fleet-scale workload for RunDeployment: one server
// endpoint behind the §8 router serving a mixed-country, mixed-protocol
// client population over shared cell networks, where concurrent flows
// genuinely interleave through each censor. The zero value of every field
// selects a sensible default; see the field docs on fleet.Workload.
type Deployment = fleet.Workload

// ReconnectPolicy is a Deployment client's behaviour after a connection
// attempt fails: how long it waits, how many attempts it makes, and which
// failures it retries. The zero value is the harness's historical policy
// (teardown-only retries, no backoff, per-protocol attempt budget).
type ReconnectPolicy = fleet.ReconnectPolicy

// FleetResult is RunDeployment's structured outcome: fleet totals, the
// per-country breakdown (routed/contested/unprotected connection kinds and
// their evasion rates), long-horizon request/availability outcomes, the
// connection-outcome mix, and the run manifest.
// Bit-identical for equal Deployments at any Workers width.
type FleetResult = fleet.Result

// CountryStats is one country's slice of a FleetResult.
type CountryStats = fleet.CountryStats

// RunDeployment executes the deployment workload and aggregates the fleet
// result. A Deployment naming an unknown country or protocol returns a
// descriptive error.
func RunDeployment(d Deployment) (FleetResult, error) {
	return fleet.Run(d)
}

// EvolveOptions configures a server-side Geneva training run (§4.1).
type EvolveOptions = eval.EvolveOptions

// EvolutionResult is the outcome of a training run.
type EvolutionResult = genetic.Result

// Evolve trains Geneva server-side against a simulated censor, exactly as
// the paper trains against real ones: populations of strategies mutate and
// recombine, with fitness measured by real simulated connections.
// Populations are scored by a parallel, memoizing evaluation engine whose
// output is bit-identical to sequential scoring (fitness is a pure function
// of the canonical strategy and the seed); set EvolveOptions.Workers to
// bound the pool or EvolveOptions.Sequential to force the reference path.
// An unknown Country or Protocol returns an error matching
// ErrUnknownCountry/ErrUnknownProtocol instead of panicking inside the rig.
func Evolve(opt EvolveOptions) (EvolutionResult, error) { return eval.Evolve(opt) }

// EvalStats reports the training engine's fitness-cache traffic: how many
// strategy evaluations were answered from the canonical-strategy cache or
// collapsed as in-batch duplicates instead of being re-simulated.
type EvalStats = eval.EvalStats

// EvolveWithStats is Evolve plus the evaluation engine's cache statistics.
func EvolveWithStats(opt EvolveOptions) (EvolutionResult, EvalStats, error) {
	return eval.EvolveWithStats(opt)
}

// Router picks a strategy per client from nothing but the client's address
// in the SYN — the §8 deployment model. Install its Outbound method on a
// server endpoint exactly like an Engine's.
type Router = core.Router

// NewRouter builds a per-client strategy router with an optional fallback
// engine for unrouted clients (nil = pass packets through untouched).
func NewRouter(fallback *Engine) *Router { return core.NewRouter(fallback) }
