// Package geneva is the public API of this reproduction of "Come as You
// Are: Helping Unmodified Clients Bypass Censorship with Server-side
// Evasion" (Bock et al., SIGCOMM 2020).
//
// It exposes the Geneva strategy language and packet-manipulation engine
// (extended to run server-side), the paper's eleven server-side strategies,
// the genetic algorithm that discovers them, and a simulation harness with
// mechanistic models of the censors in China, India, Iran, and Kazakhstan.
//
// Quick start — apply Strategy 1 to a server's outbound packets:
//
//	strategy := geneva.MustParse(geneva.Strategy1.DSL)
//	engine := geneva.NewEngine(strategy, rand.New(rand.NewSource(1)))
//	server.Outbound = engine.Outbound // tcpstack.Endpoint hook
//
// Or evaluate a strategy against a censor end to end:
//
//	rate := geneva.EvasionRate(geneva.Simulation{
//	    Country:  geneva.China,
//	    Protocol: "http",
//	    Strategy: geneva.Strategy1.DSL,
//	    Trials:   100,
//	})
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package geneva

import (
	"math/rand"
	"time"

	"geneva/internal/core"
	"geneva/internal/eval"
	"geneva/internal/genetic"
	"geneva/internal/netsim"
	"geneva/internal/strategies"
)

// Strategy is a parsed Geneva strategy: trigger/action-tree rules for the
// outbound and inbound directions.
type Strategy = core.Strategy

// Engine applies a Strategy to a host's packet stream; its Outbound method
// plugs directly into tcpstack.Endpoint.Outbound.
type Engine = core.Engine

// Action is a node in a strategy's action tree.
type Action = core.Action

// Trigger selects the packets an action tree applies to.
type Trigger = core.Trigger

// Parse reads a strategy in Geneva's canonical syntax.
func Parse(input string) (*Strategy, error) { return core.Parse(input) }

// MustParse is Parse that panics on error (for static strategies).
func MustParse(input string) *Strategy { return core.MustParse(input) }

// NewEngine builds an engine for a strategy; the rng drives corrupt-mode
// tampers.
func NewEngine(s *Strategy, rng *rand.Rand) *Engine { return core.NewEngine(s, rng) }

// LibraryStrategy is a named strategy from the paper with its metadata.
type LibraryStrategy = strategies.Strategy

// The paper's eleven server-side strategies (§5).
var (
	Strategy1  = strategies.Strategy1
	Strategy2  = strategies.Strategy2
	Strategy3  = strategies.Strategy3
	Strategy4  = strategies.Strategy4
	Strategy5  = strategies.Strategy5
	Strategy6  = strategies.Strategy6
	Strategy7  = strategies.Strategy7
	Strategy8  = strategies.Strategy8
	Strategy9  = strategies.Strategy9
	Strategy10 = strategies.Strategy10
	Strategy11 = strategies.Strategy11
)

// AllStrategies returns the eleven paper strategies in order.
func AllStrategies() []LibraryStrategy { return strategies.All() }

// Countries with modeled censors.
const (
	China      = eval.CountryChina
	India      = eval.CountryIndia
	Iran       = eval.CountryIran
	Kazakhstan = eval.CountryKazakhstan
	NoCensor   = eval.CountryNone
)

// Simulation describes an end-to-end evasion evaluation: an unmodified
// client inside the given country fetching forbidden content from a server
// running the strategy.
type Simulation struct {
	// Country selects the censor model (China, India, Iran, Kazakhstan,
	// or NoCensor).
	Country string
	// Protocol is one of "dns", "ftp", "http", "https", "smtp".
	Protocol string
	// Strategy is the server-side Geneva program ("" = no evasion).
	Strategy string
	// Trials is the number of independent connections (default 100).
	Trials int
	// Seed fixes the randomness (two equal Simulations agree exactly).
	Seed int64
	// Impairments degrades the network path symmetrically in both
	// directions and arms endpoint retransmission. The zero value keeps the
	// historical lossless behaviour: no random loss, no timers, results
	// byte-identical to builds without the impairment layer.
	Impairments Impairments
}

// Impairments is a symmetric network impairment profile for Simulation.
// Probabilities are per packet in [0,1]; Jitter is the maximum extra
// (uniformly random) delivery delay. All randomness derives from the
// Simulation seed, so impaired runs are exactly reproducible too.
type Impairments struct {
	// Loss is the probability a packet is dropped in flight.
	Loss float64
	// Duplicate is the probability a packet is delivered twice.
	Duplicate float64
	// Reorder is the probability a packet is held back long enough for
	// later traffic to overtake it.
	Reorder float64
	// Jitter is the maximum random extra delivery delay per packet.
	Jitter time.Duration
}

// EvasionRate runs the simulation and returns the §4.2 success rate: the
// fraction of trials in which the connection was not torn down and the
// client received the correct, unaltered data.
func EvasionRate(s Simulation) (float64, error) {
	cfg := eval.Config{
		Country: s.Country,
		Session: eval.SessionFor(s.Country, s.Protocol, true),
		Tries:   eval.TriesFor(s.Protocol),
		Seed:    s.Seed,
		Impairments: netsim.Symmetric(netsim.Profile{
			Loss:      s.Impairments.Loss,
			Duplicate: s.Impairments.Duplicate,
			Reorder:   s.Impairments.Reorder,
			Jitter:    s.Impairments.Jitter,
		}),
	}
	if s.Strategy != "" {
		parsed, err := core.Parse(s.Strategy)
		if err != nil {
			return 0, err
		}
		cfg.Strategy = parsed
	}
	trials := s.Trials
	if trials <= 0 {
		trials = 100
	}
	return eval.Rate(cfg, trials), nil
}

// EvolveOptions configures a server-side Geneva training run (§4.1).
type EvolveOptions = eval.EvolveOptions

// EvolutionResult is the outcome of a training run.
type EvolutionResult = genetic.Result

// Evolve trains Geneva server-side against a simulated censor, exactly as
// the paper trains against real ones: populations of strategies mutate and
// recombine, with fitness measured by real simulated connections.
// Populations are scored by a parallel, memoizing evaluation engine whose
// output is bit-identical to sequential scoring (fitness is a pure function
// of the canonical strategy and the seed); set EvolveOptions.Workers to
// bound the pool or EvolveOptions.Sequential to force the reference path.
func Evolve(opt EvolveOptions) EvolutionResult { return eval.Evolve(opt) }

// EvalStats reports the training engine's fitness-cache traffic: how many
// strategy evaluations were answered from the canonical-strategy cache or
// collapsed as in-batch duplicates instead of being re-simulated.
type EvalStats = eval.EvalStats

// EvolveWithStats is Evolve plus the evaluation engine's cache statistics.
func EvolveWithStats(opt EvolveOptions) (EvolutionResult, EvalStats) {
	return eval.EvolveWithStats(opt)
}

// SetWorkers caps every worker pool in the simulation harness (the
// per-trial pool behind EvasionRate and the population pool behind Evolve)
// at n workers; 0 restores the default of one worker per CPU. Results are
// identical at any width.
func SetWorkers(n int) { eval.SetWorkers(n) }

// Router picks a strategy per client from nothing but the client's address
// in the SYN — the §8 deployment model. Install its Outbound method on a
// server endpoint exactly like an Engine's.
type Router = core.Router

// NewRouter builds a per-client strategy router with an optional fallback
// engine for unrouted clients (nil = pass packets through untouched).
func NewRouter(fallback *Engine) *Router { return core.NewRouter(fallback) }
