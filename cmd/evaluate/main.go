// Command evaluate reproduces the paper's tables, figures, and follow-up
// experiments against the simulated censors. With no flags it runs the full
// evaluation (the content of EXPERIMENTS.md).
//
// Usage:
//
//	evaluate [-trials N] [-workers N] [-table 1|2|compat] [-figure 1|2|3]
//	         [-experiment client-side|desync|induced-rst|s7-resync|residual|
//	                      kz-triple|kz-get|kz-flags|kz-probe|ports|stateless|
//	                      carrier|deploy|dns-retries|order|ablations|robustness|all]
//	         [-loss P] [-dup P] [-reorder P] [-jitter D]
//	         [-metrics] [-manifest out.json]
//
// -workers caps the trial worker pool (0 = one per CPU). Every number
// printed is identical at any width; the closing stats line reports the
// width used and the wall-clock time.
//
// -metrics enables the cross-layer counters (internal/obs) and prints the
// nonzero ones after the run; -manifest additionally writes the structured
// run manifest — config, seed schedule, and every counter, zeroes included —
// as diffable JSON. Counters observe and never steer, so every printed
// number is identical with and without them.
//
// The impairment flags run the robustness sweep (evasion rate vs. loss rate
// for every strategy against every censor) on a degraded network path:
// -loss 0.02 sweeps all strategies at 2% packet loss; -experiment robustness
// climbs the default loss ladder instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"geneva/internal/eval"
	"geneva/internal/netsim"
	"geneva/internal/obs"
	"geneva/internal/profiling"
)

func main() {
	trials := flag.Int("trials", 200, "trials per Table 2 cell / experiment sample size")
	workers := flag.Int("workers", 0, "default worker-pool width for every experiment (0 = one per CPU); results are identical at any width")
	table := flag.String("table", "", "reproduce a table: 1, 2, or compat")
	figure := flag.String("figure", "", "reproduce a figure: 1, 2, or 3")
	experiment := flag.String("experiment", "", "run a follow-up experiment (see doc)")
	loss := flag.Float64("loss", -1, "robustness sweep at this packet loss rate (e.g. 0.02)")
	dup := flag.Float64("dup", 0, "robustness sweep: per-packet duplication probability")
	reorder := flag.Float64("reorder", 0, "robustness sweep: per-packet reordering probability")
	jitter := flag.Duration("jitter", 0, "robustness sweep: max random extra delivery delay (e.g. 3ms)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	metrics := flag.Bool("metrics", false, "enable cross-layer counters and print the nonzero ones after the run")
	manifest := flag.String("manifest", "", "write a structured run manifest (JSON) to this file; implies -metrics")
	flag.Parse()
	eval.SetWorkers(*workers)
	if *metrics || *manifest != "" {
		obs.SetEnabled(true)
		obs.Reset()
	}
	stopCPU := profiling.Start(*cpuprofile)
	start := time.Now()

	any := false
	if *table != "" {
		runTable(*table, *trials)
		any = true
	}
	if *figure != "" {
		runFigure(*figure, *trials)
		any = true
	}
	if *experiment != "" {
		runExperiment(*experiment, *trials)
		any = true
	}
	if (*loss != -1 && (*loss < 0 || *loss > 1)) || *dup < 0 || *dup > 1 ||
		*reorder < 0 || *reorder > 1 || *jitter < 0 {
		fmt.Fprintln(os.Stderr, "impairment flags: -loss/-dup/-reorder must be probabilities in [0,1] and -jitter non-negative")
		os.Exit(2)
	}
	if *loss >= 0 || *dup > 0 || *reorder > 0 || *jitter > 0 {
		var ladder []float64
		if *loss >= 0 {
			ladder = []float64{*loss}
		}
		runRobustness(netsim.Profile{Duplicate: *dup, Reorder: *reorder, Jitter: *jitter},
			ladder, *trials)
		any = true
	}
	if !any {
		runTable("1", *trials)
		runTable("2", *trials)
		runFigure("1", *trials)
		runFigure("2", *trials)
		runFigure("3", *trials)
		runTable("compat", *trials)
		runExperiment("all", *trials)
	}
	fmt.Printf("\n[workers=%d  wall=%s]\n", eval.Workers(), time.Since(start).Round(time.Millisecond))
	if *metrics {
		fmt.Printf("\n--- metrics ---\n%s", obs.Take().Format())
	}
	if *manifest != "" {
		cfg := map[string]string{
			"trials":     strconv.Itoa(*trials),
			"workers":    strconv.Itoa(*workers),
			"table":      *table,
			"figure":     *figure,
			"experiment": *experiment,
			"loss":       strconv.FormatFloat(*loss, 'g', -1, 64),
			"dup":        strconv.FormatFloat(*dup, 'g', -1, 64),
			"reorder":    strconv.FormatFloat(*reorder, 'g', -1, 64),
			"jitter":     jitter.String(),
		}
		// The harness's experiment seed bases are fixed in source; the
		// schedule records the derivation every trial applies to its base.
		m := obs.NewManifest("evaluate", cfg, obs.DefaultSeedSchedule(0))
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintf(os.Stderr, "writing manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("manifest written to %s\n", *manifest)
	}
	stopCPU()
	profiling.WriteHeap(*memprofile)
}

func header(s string) { fmt.Printf("\n=== %s ===\n\n", s) }

func runTable(which string, trials int) {
	switch which {
	case "1":
		header("Table 1: client locations and protocols")
		fmt.Print(table1())
	case "2":
		header(fmt.Sprintf("Table 2: strategy success rates (%d trials/cell)", trials))
		fmt.Print(eval.FormatTable2(eval.Table2(trials)))
		fmt.Printf("\n(95%% sampling error at %d trials: up to \u00b1%.0f points per cell)\n",
			trials, 100*eval.MaxSamplingError(trials))
	case "compat":
		header("Section 7: client compatibility matrix")
		fmt.Print(eval.FormatCompat(eval.ClientCompatibility()))
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", which)
		os.Exit(2)
	}
}

// table1Vantage is presentation flavor only (the simulator's vantage points
// are uniform); the row set itself comes from the censor registry, so a
// newly registered censor appears here with a "(simulated)" placeholder
// until someone names its vantage.
var table1Vantage = map[string]string{
	eval.CountryChina:         "Beijing, Shanghai, ...",
	eval.CountryIndia:         "Bangalore (Airtel)",
	eval.CountryIndiaJio:      "Mumbai (Jio)",
	eval.CountryIndiaVodafone: "Delhi (Vodafone)",
	eval.CountryIran:          "Tehran, Zanjan",
	eval.CountryKazakhstan:    "Qaraghandy, Almaty",
	eval.CountryTurkmenistan:  "Ashgabat (TMC)",
}

func table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-28s %s\n", "Country", "Vantage points (simulated)", "Protocols censored")
	for _, d := range eval.Registry() {
		vantage, ok := table1Vantage[d.Country]
		if !ok {
			vantage = "(simulated)"
		}
		protos := make([]string, len(d.Protocols))
		for i, p := range d.Protocols {
			protos[i] = strings.ToUpper(p)
		}
		name := strings.ToUpper(d.Country[:1]) + d.Country[1:]
		fmt.Fprintf(&b, "%-16s %-28s %s\n", name, vantage, strings.Join(protos, ", "))
	}
	b.WriteString("(The simulator models the censor per country; vantage points are uniform.)\n")
	return b.String()
}

func runFigure(which string, trials int) {
	switch which {
	case "1":
		header("Figure 1: server-side evasion waterfalls (China)")
		fmt.Print(eval.Figure1())
	case "2":
		header("Figure 2: server-side evasion waterfalls (Kazakhstan)")
		fmt.Print(eval.Figure2())
	case "3":
		header("Figure 3: multiple censorship boxes")
		fmt.Print(eval.FormatFigure3(eval.Figure3(trials / 2)))
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", which)
		os.Exit(2)
	}
}

func runExperiment(which string, trials int) {
	run := func(name string) {
		switch name {
		case "client-side":
			header("§3: client-side strategies do not generalize")
			rates := eval.ClientSideGeneralization(trials / 4)
			names := make([]string, 0, len(rates))
			for n := range rates {
				names = append(names, n)
			}
			sort.Strings(names)
			worst := 0.0
			for _, n := range names {
				if rates[n] > worst {
					worst = rates[n]
				}
			}
			fmt.Printf("%d server-side analogs evaluated; best success rate: %.0f%% (baseline ~3%%)\n",
				len(rates), 100*worst)
			for _, n := range names {
				fmt.Printf("  %-44s %4.0f%%\n", n, 100*rates[n])
			}
			fmt.Printf("\nContrast — the same teardown run CLIENT-side evades at %.0f%%\n",
				100*eval.ClientSideTCBTeardownWorks(trials/4))
		case "desync":
			header("§5.1: desynchronization confirmation (seq-1)")
			w, wo := eval.DesyncConfirmation(trials / 2)
			fmt.Printf("censorship of seq-1 request WITH Strategy 1:    %.0f%% (paper: ~50%%)\n", 100*w)
			fmt.Printf("censorship of seq-1 request WITHOUT strategy:   %.0f%% (paper: never)\n", 100*wo)
		case "induced-rst":
			header("§5.1: induced-RST criticality (FTP)")
			s5n, s5d, s6n, s6d := eval.InducedRstCriticality(trials / 2)
			fmt.Printf("Strategy 5: normal %.0f%%, client drops its RST %.0f%%  (RST critical)\n", 100*s5n, 100*s5d)
			fmt.Printf("Strategy 6: normal %.0f%%, client drops its RST %.0f%%  (RST vestigial)\n", 100*s6n, 100*s6d)
		case "s7-resync":
			header("§5.1: Strategy 7 re-syncs on the induced RST")
			fmt.Printf("censorship with client seq matched to the RST: %.0f%% (the GFW re-censors)\n",
				100*eval.Strategy7ResyncTarget(trials/2))
		case "residual":
			header("§4.2: residual censorship")
			for _, r := range eval.ResidualCensorshipExperiment() {
				fmt.Printf("%-6s immediate benign follow-up blocked: %-5v recovered after 95s: %v\n",
					r.Protocol, r.ImmediateBlocked, r.AfterWindowOK)
			}
		case "kz-triple":
			header("§5.3: Kazakhstan Triple Load sweep")
			s := eval.KazakhTripleLoadSweep(10)
			fmt.Printf("1 load: %.0f%%  2 loads: %.0f%%  3 loads: %.0f%%  4 loads: %.0f%%\n",
				100*s.OneLoad, 100*s.TwoLoads, 100*s.ThreeLoads, 100*s.FourLoads)
			fmt.Printf("load,empty,load: %.0f%% (back-to-back required)\n", 100*s.TwoLoadsPlusEmptyBetween)
			fmt.Printf("1-byte payloads: %.0f%%  400-byte payloads: %.0f%% (size irrelevant)\n",
				100*s.OneByte, 100*s.Large)
		case "kz-get":
			header("§5.3: Kazakhstan Double GET sweep")
			s := eval.KazakhDoubleGetSweep(10)
			fmt.Printf("\"GET / HTTP1.\" x2: %.0f%%   without the '.': %.0f%%\n", 100*s.FullPrefix, 100*s.Truncated)
			fmt.Printf("single GET: %.0f%%   longer well-formed GET x2: %.0f%%\n", 100*s.SingleGet, 100*s.LongerPath)
		case "kz-flags":
			header("§5.3: Kazakhstan flag sweep (Null Flags)")
			rates := eval.KazakhFlagSweep(8)
			keys := make([]string, 0, len(rates))
			for k := range rates {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  flags %-7s %4.0f%%\n", k, 100*rates[k])
			}
		case "kz-probe":
			header("§5.3: Kazakhstan probing (the second request is processed)")
			two, fb := eval.KazakhProbing()
			fmt.Printf("two forbidden GETs during handshake elicit a response: %v\n", two)
			fmt.Printf("forbidden-then-benign elicits a response:             %v\n", fb)
		case "ports":
			header("§5.2: default-port sensitivity")
			printBoolMap(eval.PortSensitivity(), "non-default port defeats censorship")
		case "stateless":
			header("§5.2: state tracking")
			printBoolMap(eval.Statelessness(), "censors with no handshake at all")
		case "dns-retries":
			header("§4.2: DNS retry amplification (RFC 7766)")
			curve := eval.DNSRetryCurve(1, 5, trials/2)
			fmt.Println("Strategy 1 DNS success by client retry budget:")
			for k := 1; k <= 5; k++ {
				note := ""
				switch k {
				case 1:
					note = "(dig, single try)"
				case 3:
					note = "(Python dns lib; the paper's test setting)"
				case 5:
					note = "(Chrome: 1 + 4 retries)"
				}
				fmt.Printf("  %d tries: %3.0f%%  %s\n", k, 100*curve[k], note)
			}
		case "order":
			header("§5.1: Strategy 5 packet-order sensitivity (FTP)")
			normal, reversed := eval.OrderSensitivity(trials / 2)
			fmt.Printf("corrupt-ack first, payload second: %3.0f%% (the published strategy)\n", 100*normal)
			fmt.Printf("payload first, corrupt-ack second: %3.0f%% (paper: ineffective)\n", 100*reversed)
		case "deploy":
			header("§8: one router, per-client strategies from the SYN alone")
			got := eval.RouterDeployment(trials / 4)
			for _, c := range eval.Countries() {
				label := c
				if label == "" {
					label = "(uncensored)"
				}
				fmt.Printf("  %-12s routed-strategy success: %3.0f%%\n", label, 100*got[c])
			}
		case "ablations":
			header("Model ablations: every DESIGN.md mechanism is load-bearing")
			for _, a := range eval.Ablations(trials / 2) {
				kind := "censor bug"
				if !a.AidsEvasion {
					kind = "censor capability"
				}
				fmt.Printf("%-42s (S%d/%s, %s): with %3.0f%%  without %3.0f%%\n    %s\n",
					a.Name, a.Strategy, a.Protocol, kind,
					100*a.WithMechanism, 100*a.WithoutMechanism, a.Explanation)
			}
			multi, single := eval.SingleBoxAblation(trials / 2)
			fmt.Println("\nSingle-box counterfactual (Strategy 5 per protocol):")
			for _, p := range eval.ChinaProtocols {
				fmt.Printf("  %-6s multi-box %3.0f%%   single shared box %3.0f%%\n",
					p, 100*multi[p], 100*single[p])
			}
			fmt.Println("\nResync-rule knockouts (success per strategy):")
			dep := eval.StrategyRuleDependence(trials / 2)
			fmt.Printf("  %-10s %8s %9s %9s %9s\n", "strategy", "full", "no-rule1", "no-rule2", "no-rule3")
			for _, n := range []int{1, 2, 3, 5, 6, 7} {
				r := dep[n]
				fmt.Printf("  S%-9d %7.0f%% %8.0f%% %8.0f%% %8.0f%%\n",
					n, 100*r["full"], 100*r["no-rule1"], 100*r["no-rule2"], 100*r["no-rule3"])
			}
		case "differential":
			header("Cross-censor differential failure-cause matrix")
			fmt.Print(eval.FormatDifferential(eval.Differential()))
			fmt.Println("\n(one traced trial per cell; causes classified from packet evidence —")
			fmt.Println(" the golden copy lives in internal/eval/testdata/differential.txt)")
		case "robustness":
			runRobustness(netsim.Profile{}, nil, trials)
		case "carrier":
			header("§7: cellular-middlebox interference (anecdote)")
			got := eval.CarrierInterference()
			for _, carrier := range []string{"wifi", "tmobile", "att"} {
				var broken []int
				for n := 1; n <= 11; n++ {
					if !got[carrier][n] {
						broken = append(broken, n)
					}
				}
				if len(broken) == 0 {
					fmt.Printf("  %-8s all strategies work\n", carrier)
				} else {
					fmt.Printf("  %-8s broken strategies: %v\n", carrier, broken)
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if which == "all" {
		for _, n := range []string{
			"client-side", "desync", "induced-rst", "s7-resync", "residual",
			"kz-triple", "kz-get", "kz-flags", "kz-probe", "ports", "stateless",
			"carrier", "ablations", "differential", "deploy", "dns-retries", "order",
		} {
			run(n)
		}
		return
	}
	run(which)
}

// runRobustness sweeps evasion rate vs. loss rate for every strategy against
// every censor. base carries the non-loss impairments; ladder is the loss
// rates to climb (nil = eval.DefaultLossRates).
func runRobustness(base netsim.Profile, ladder []float64, trials int) {
	per := trials / 2
	if per < 1 {
		per = 1
	}
	extra := ""
	if base.Duplicate > 0 || base.Reorder > 0 || base.Jitter > 0 {
		extra = fmt.Sprintf(" (dup %.0f%%, reorder %.0f%%, jitter %v)",
			100*base.Duplicate, 100*base.Reorder, base.Jitter)
	}
	header(fmt.Sprintf("Robustness: evasion rate vs. packet loss%s (%d trials/cell)", extra, per))
	fmt.Print(eval.FormatRobustness(eval.Robustness(base, ladder, per)))
}

// printBoolMap prints a country->bool map in key order.
func printBoolMap(m map[string]bool, label string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-12s %s: %v\n", k, label, m[k])
	}
}
