// Command geneva is an interactive strategy explorer: type Geneva programs
// and see, immediately, the packet waterfall and the success rate against a
// chosen censor.
//
// Usage:
//
//	geneva [-country china] [-protocol http] [-trials 100]
//
// Then enter one strategy per line (blank line or EOF to exit). Lines
// starting with '#' are comments; the special input "strategies" lists the
// paper's library.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"geneva/internal/core"
	"geneva/internal/eval"
	"geneva/internal/strategies"
)

func main() {
	country := flag.String("country", "china", "censor to explore against")
	protocol := flag.String("protocol", "http", "protocol to trigger censorship with")
	trials := flag.Int("trials", 100, "trials per rate estimate")
	flag.Parse()
	fmt.Printf("Exploring %s / %s. Enter a Geneva strategy per line (blank to quit).\n",
		*country, *protocol)
	repl(os.Stdin, os.Stdout, *country, *protocol, *trials)
}

// repl drives the explorer; split out so tests can feed it input.
func repl(in io.Reader, out io.Writer, country, protocol string, trials int) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "geneva> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			return
		case strings.HasPrefix(line, "#"):
			continue
		case line == "strategies":
			for _, s := range strategies.All() {
				fmt.Fprintf(out, "  %2d %-34s %s\n", s.Number, s.Name, s.DSL)
			}
			continue
		}
		evaluate(out, line, country, protocol, trials)
	}
}

func evaluate(out io.Writer, dsl, country, protocol string, trials int) {
	s, err := core.Parse(dsl)
	if err != nil {
		fmt.Fprintf(out, "  parse error: %v\n", err)
		return
	}
	cfg := eval.Config{
		Country:   country,
		Session:   eval.SessionFor(country, protocol, true),
		Strategy:  s,
		Tries:     eval.TriesFor(protocol),
		Seed:      1,
		WithTrace: true,
	}
	rate := eval.Rate(cfg, trials)
	fmt.Fprintf(out, "  success rate over %d trials: %.0f%%\n\n", trials, 100*rate)
	// Show a waterfall of a successful run if one exists, else of a failure.
	res := eval.Run(cfg)
	for seed := int64(2); !res.Success && seed < 200; seed++ {
		cfg.Seed = seed
		res = eval.Run(cfg)
	}
	fmt.Fprint(out, res.Trace.Waterfall("  sample run"))
	if res.Success {
		fmt.Fprintln(out, "  => evaded censorship")
	} else {
		fmt.Fprintln(out, "  => censored / failed")
	}
}
