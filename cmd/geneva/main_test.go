package main

import (
	"strings"
	"testing"
)

func TestReplEvaluatesStrategies(t *testing.T) {
	in := strings.NewReader(
		"# a comment\n" +
			"strategies\n" +
			`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \/ ` + "\n" +
			"[broken\n" +
			"\n")
	var out strings.Builder
	repl(in, &out, "kazakhstan", "http", 10)
	got := out.String()
	for _, want := range []string{
		"Null Flags",                       // the library listing
		"success rate over 10 trials: 100", // Strategy 11 vs Kazakhstan
		"evaded censorship",
		"parse error",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("repl output missing %q\n%s", want, got)
		}
	}
}

func TestReplEOF(t *testing.T) {
	var out strings.Builder
	repl(strings.NewReader(""), &out, "china", "http", 1)
	if !strings.Contains(out.String(), "geneva>") {
		t.Error("no prompt printed")
	}
}
