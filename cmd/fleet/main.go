// Command fleet runs the deployment-scale serving harness: one server
// endpoint behind the §8 router serving a mixed-country, mixed-protocol
// client fleet over shared cell networks, with cross-connection censor
// state (GFW residual censorship) exercised for real.
//
// Usage:
//
//	fleet [-connections N] [-countries csv] [-protocols csv]
//	      [-clients N] [-waves N] [-unprotected N] [-gap D]
//	      [-requests N] [-reqgap D]
//	      [-reconnect-max N] [-reconnect-backoff D] [-retry-all]
//	      [-portfolio list] [-select policy] [-epsilon P] [-ucb-c C]
//	      [-decay F] [-min-pulls N] [-collapse-below P] [-quarantine N]
//	      [-shift-wave N] [-shift-country c] [-shift-params k=v,...]
//	      [-seed N] [-workers N] [-shards N]
//	      [-loss P] [-dup P] [-reorder P] [-jitter D]
//	      [-json] [-metrics] [-manifest out.json]
//	      [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -portfolio takes a ";"-separated strategy list — each entry a raw Geneva
// DSL program or a bare paper-strategy number (1-11) — and serves routed
// clients from it instead of the registry-pinned §8 strategies. On its own
// the portfolio pins its first entry everywhere; with -select epsilon-greedy
// or -select ucb1 the online control plane races the whole portfolio per
// (country, protocol) and the table grows a per-strategy selection section.
// -shift-params re-tunes censor calibration (e.g. prst=0, or http.prst=0 to
// scope by protocol) at the start of wave -shift-wave — the lever for the
// collapse-and-recover scenario in EXPERIMENTS.md.
//
// -requests stretches every HTTP/HTTPS/DNS connection into a keep-alive
// session of that many exchanges, spaced -reqgap of virtual time apart, and
// the -reconnect-* flags pick the client's behaviour when a session dies
// mid-way — together they turn the table's availability column into the
// long-horizon outcome a first-connection evasion rate cannot see.
//
// -workers bounds the wave worker pool (0 = one per CPU) and -shards bounds
// how many scheduling shards each country's cells split into (0 = one shard
// per cell, the finest parallelism). Both are pure scheduling knobs: every
// number printed is identical at any width; only the closing conns/sec
// line — a wall-clock measurement — varies with them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"geneva"
	"geneva/internal/obs"
	"geneva/internal/profiling"
)

func main() {
	connections := flag.Int("connections", 500, "total client connections across the fleet")
	countries := flag.String("countries", "", "comma-separated countries (default "+
		strings.Join(geneva.Countries()[:len(geneva.Countries())-1], ",")+")")
	protocols := flag.String("protocols", "", "comma-separated protocols the fleet cycles through (default http)")
	clients := flag.Int("clients", 0, "routed clients per cell network (0 = default 4)")
	waves := flag.Int("waves", 0, "connection waves per cell (0 = default 4)")
	unprotected := flag.Int("unprotected", 0, "unrouted clients per cell's mixed waves (0 = default 1, negative = none)")
	gap := flag.Duration("gap", 0, "virtual idle time between waves (0 = default 120s, past the GFW residual window; negative = none)")
	requests := flag.Int("requests", 0, "keep-alive exchanges per connection (0 = one-shot sessions)")
	reqgap := flag.Duration("reqgap", 0, "virtual think time between keep-alive exchanges (0 = default 30s)")
	reconnectMax := flag.Int("reconnect-max", 0, "max connection attempts per session, reconnects included (0 = per-protocol default)")
	reconnectBackoff := flag.Duration("reconnect-backoff", 0, "virtual wait before each reconnect (0 = immediate)")
	retryAll := flag.Bool("retry-all", false, "reconnect after any failure, not only abortive teardown")
	portfolioList := flag.String("portfolio", "", "\";\"-separated strategies (raw DSL or paper number 1-11) routed clients are served from")
	selectPolicy := flag.String("select", "", "online selection policy: epsilon-greedy or ucb1 (default: pinned, no selection)")
	epsilon := flag.Float64("epsilon", 0, "epsilon-greedy exploration probability (0 = default 0.1)")
	ucbC := flag.Float64("ucb-c", 0, "UCB1 exploration constant (0 = default 1.5)")
	decay := flag.Float64("decay", 0, "sliding-window decay applied to arm stats at every wave barrier (0 = default 0.9)")
	minPulls := flag.Float64("min-pulls", 0, "decayed pulls before collapse detection can trigger (0 = default 3)")
	collapseBelow := flag.Float64("collapse-below", 0, "windowed success rate under which the incumbent is quarantined (0 = default 0.2)")
	quarantine := flag.Int("quarantine", 0, "wave barriers a collapsed arm sits out (0 = default 2)")
	shiftWave := flag.Int("shift-wave", 0, "wave at whose start -shift-params applies")
	shiftCountry := flag.String("shift-country", "", "restrict -shift-params to one country's cells (default all)")
	shiftParams := flag.String("shift-params", "", "comma-separated censor re-tunes, name=value (e.g. prst=0 or http.prst=0)")
	seed := flag.Int64("seed", 1, "base seed; equal workloads agree exactly")
	workers := flag.Int("workers", 0, "wave worker-pool width (0 = one per CPU); results are identical at any width")
	shards := flag.Int("shards", 0, "scheduling shards per country (0 = one shard per cell); results are identical at any width")
	loss := flag.Float64("loss", 0, "per-packet loss probability on every cell network")
	dup := flag.Float64("dup", 0, "per-packet duplication probability")
	reorder := flag.Float64("reorder", 0, "per-packet reordering probability")
	jitter := flag.Duration("jitter", 0, "max random extra delivery delay (e.g. 3ms)")
	asJSON := flag.Bool("json", false, "print the full FleetResult as JSON instead of the table")
	metrics := flag.Bool("metrics", false, "enable cross-layer counters and print the nonzero ones after the run")
	manifest := flag.String("manifest", "", "write the run manifest (JSON) to this file; implies -metrics")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *metrics || *manifest != "" {
		obs.SetEnabled(true)
		obs.Reset()
	}
	stopCPU := profiling.Start(*cpuprofile)
	d := geneva.Deployment{
		Connections:        *connections,
		ClientsPerCell:     *clients,
		WavesPerCell:       *waves,
		UnprotectedPerCell: *unprotected,
		WaveGap:            *gap,
		SessionRequests:    *requests,
		RequestGap:         *reqgap,
		Reconnect: geneva.ReconnectPolicy{
			MaxAttempts: *reconnectMax,
			Backoff:     *reconnectBackoff,
			RetryAll:    *retryAll,
		},
		Seed: *seed,
		Workers:            *workers,
		Shards:             *shards,
		Impairments: geneva.Impairments{
			Loss: *loss, Duplicate: *dup, Reorder: *reorder, Jitter: *jitter,
		},
		Selection: geneva.Selection{
			Policy:          geneva.SelectionPolicy(*selectPolicy),
			Epsilon:         *epsilon,
			UCBC:            *ucbC,
			Decay:           *decay,
			MinPulls:        *minPulls,
			CollapseBelow:   *collapseBelow,
			QuarantineWaves: *quarantine,
		},
	}
	if *countries != "" {
		d.Countries = strings.Split(*countries, ",")
	}
	if *protocols != "" {
		d.Protocols = strings.Split(*protocols, ",")
	}
	if *portfolioList != "" {
		p, err := parsePortfolio(*portfolioList)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(2)
		}
		d.Portfolio = p
	}
	if *shiftParams != "" {
		params, err := parseShiftParams(*shiftParams)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(2)
		}
		d.Shift = geneva.CensorShift{AtWave: *shiftWave, Country: *shiftCountry, Params: params}
	}

	start := time.Now()
	res, err := geneva.RunDeployment(d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if *asJSON {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
	} else {
		printTable(res)
	}
	if *manifest != "" {
		if err := res.Manifest.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(1)
		}
		fmt.Printf("manifest written to %s\n", *manifest)
	}
	if *metrics {
		printCounters()
	}
	// Rate from the unrounded elapsed time: at 10^5+ connections a run can
	// finish in near-millisecond territory per cell, and rounding before
	// dividing (or dividing by a zero-rounded duration) skews the only
	// wall-clock-dependent line the command prints.
	rate := "inf"
	if secs := elapsed.Seconds(); secs > 0 {
		rate = fmt.Sprintf("%.0f", float64(res.Connections)/secs)
	}
	fmt.Printf("\n%d connections in %d cells in %v (%s conns/sec, workers=%d, shards=%d)\n",
		res.Connections, res.Cells, elapsed.Round(time.Millisecond),
		rate, *workers, *shards)
	stopCPU()
	profiling.WriteHeap(*memprofile)
}

// parsePortfolio resolves a ";"-separated strategy list: each entry is a raw
// Geneva DSL program, or a bare paper-strategy number looked up in the
// library (so "-portfolio 1;2" races the paper's two Simultaneous Open
// strategies).
func parsePortfolio(list string) (geneva.Portfolio, error) {
	var dsls []string
	for _, entry := range strings.Split(list, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if n, err := strconv.Atoi(entry); err == nil {
			found := false
			for _, s := range geneva.AllStrategies() {
				if s.Number == n {
					dsls = append(dsls, s.DSL)
					found = true
					break
				}
			}
			if !found {
				return geneva.Portfolio{}, fmt.Errorf("no paper strategy %d (valid: 1-%d)", n, len(geneva.AllStrategies()))
			}
			continue
		}
		dsls = append(dsls, entry)
	}
	return geneva.NewPortfolio(dsls...)
}

// parseShiftParams parses "name=value,name=value" censor re-tunes.
func parseShiftParams(list string) (map[string]float64, error) {
	params := make(map[string]float64)
	for _, kv := range strings.Split(list, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("shift param %q: want name=value", kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("shift param %q: %v", kv, err)
		}
		params[name] = f
	}
	return params, nil
}

func printTable(res geneva.FleetResult) {
	countries := make([]string, 0, len(res.PerCountry))
	for c := range res.PerCountry {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	fmt.Printf("%-14s %6s %6s %8s %10s %12s %8s %10s %6s\n",
		"country", "conns", "served", "routed", "contested", "unprotected", "evasion", "requests", "avail")
	for _, c := range countries {
		cs := res.PerCountry[c]
		name := c
		if name == "" {
			name = "(uncensored)"
		}
		fmt.Printf("%-14s %6d %6d %3d/%-4d %4d/%-5d %5d/%-6d %7.0f%% %4d/%-5d %5.0f%%\n",
			name, cs.Connections, cs.Succeeded,
			cs.RoutedSucceeded, cs.Routed,
			cs.ContestedSucceeded, cs.Contested,
			cs.UnprotectedSucceeded, cs.Unprotected,
			100*cs.EvasionRate(),
			cs.RequestsServed, cs.RequestsAttempted,
			100*cs.Availability())
	}
	fmt.Printf("\noutcomes: %d served, %d torn down, %d never established\n",
		res.Outcomes["served"], res.Outcomes["torn_down"], res.Outcomes["never_established"])
	fmt.Printf("requests: %d/%d served, availability %.1f%%\n",
		res.RequestsServed, res.RequestsAttempted, 100*res.Availability())
	printSelection(res, countries)
}

// printSelection renders the per-country selection table of a control-plane
// run: one row per (country, portfolio strategy) with pulls and outcome mix.
// Pinned runs have no selection state and print nothing.
func printSelection(res geneva.FleetResult, countries []string) {
	any := false
	for _, c := range countries {
		sel := res.PerCountry[c].Selection
		if len(sel) == 0 {
			continue
		}
		if !any {
			fmt.Printf("\nselection (%d fallbacks fleet-wide):\n", res.Fallbacks)
			fmt.Printf("%-14s %6s %6s %6s %8s  %s\n",
				"country", "pulls", "served", "torn", "unestab", "strategy")
			any = true
		}
		names := make([]string, 0, len(sel))
		for n := range sel {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			arm := sel[n]
			fmt.Printf("%-14s %6d %6d %6d %8d  %s\n",
				c, arm.Pulls, arm.Served, arm.TornDown, arm.Unestablished, n)
		}
	}
}

func printCounters() {
	s := obs.Take()
	names := make([]string, 0, len(s.Counters))
	for n, v := range s.Counters {
		if v != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	fmt.Println("\ncounters:")
	for _, n := range names {
		fmt.Printf("  %-42s %d\n", n, s.Counters[n])
	}
}
