// Command fleet runs the deployment-scale serving harness: one server
// endpoint behind the §8 router serving a mixed-country, mixed-protocol
// client fleet over shared cell networks, with cross-connection censor
// state (GFW residual censorship) exercised for real.
//
// Usage:
//
//	fleet [-connections N] [-countries csv] [-protocols csv]
//	      [-clients N] [-waves N] [-unprotected N] [-gap D]
//	      [-requests N] [-reqgap D]
//	      [-reconnect-max N] [-reconnect-backoff D] [-retry-all]
//	      [-seed N] [-workers N] [-shards N]
//	      [-loss P] [-dup P] [-reorder P] [-jitter D]
//	      [-json] [-metrics] [-manifest out.json]
//	      [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -requests stretches every HTTP/HTTPS/DNS connection into a keep-alive
// session of that many exchanges, spaced -reqgap of virtual time apart, and
// the -reconnect-* flags pick the client's behaviour when a session dies
// mid-way — together they turn the table's availability column into the
// long-horizon outcome a first-connection evasion rate cannot see.
//
// -workers bounds the wave worker pool (0 = one per CPU) and -shards bounds
// how many scheduling shards each country's cells split into (0 = one shard
// per cell, the finest parallelism). Both are pure scheduling knobs: every
// number printed is identical at any width; only the closing conns/sec
// line — a wall-clock measurement — varies with them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"geneva"
	"geneva/internal/obs"
	"geneva/internal/profiling"
)

func main() {
	connections := flag.Int("connections", 500, "total client connections across the fleet")
	countries := flag.String("countries", "", "comma-separated countries (default "+
		strings.Join(geneva.Countries()[:len(geneva.Countries())-1], ",")+")")
	protocols := flag.String("protocols", "", "comma-separated protocols the fleet cycles through (default http)")
	clients := flag.Int("clients", 0, "routed clients per cell network (0 = default 4)")
	waves := flag.Int("waves", 0, "connection waves per cell (0 = default 4)")
	unprotected := flag.Int("unprotected", 0, "unrouted clients per cell's mixed waves (0 = default 1, negative = none)")
	gap := flag.Duration("gap", 0, "virtual idle time between waves (0 = default 120s, past the GFW residual window; negative = none)")
	requests := flag.Int("requests", 0, "keep-alive exchanges per connection (0 = one-shot sessions)")
	reqgap := flag.Duration("reqgap", 0, "virtual think time between keep-alive exchanges (0 = default 30s)")
	reconnectMax := flag.Int("reconnect-max", 0, "max connection attempts per session, reconnects included (0 = per-protocol default)")
	reconnectBackoff := flag.Duration("reconnect-backoff", 0, "virtual wait before each reconnect (0 = immediate)")
	retryAll := flag.Bool("retry-all", false, "reconnect after any failure, not only abortive teardown")
	seed := flag.Int64("seed", 1, "base seed; equal workloads agree exactly")
	workers := flag.Int("workers", 0, "wave worker-pool width (0 = one per CPU); results are identical at any width")
	shards := flag.Int("shards", 0, "scheduling shards per country (0 = one shard per cell); results are identical at any width")
	loss := flag.Float64("loss", 0, "per-packet loss probability on every cell network")
	dup := flag.Float64("dup", 0, "per-packet duplication probability")
	reorder := flag.Float64("reorder", 0, "per-packet reordering probability")
	jitter := flag.Duration("jitter", 0, "max random extra delivery delay (e.g. 3ms)")
	asJSON := flag.Bool("json", false, "print the full FleetResult as JSON instead of the table")
	metrics := flag.Bool("metrics", false, "enable cross-layer counters and print the nonzero ones after the run")
	manifest := flag.String("manifest", "", "write the run manifest (JSON) to this file; implies -metrics")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *metrics || *manifest != "" {
		obs.SetEnabled(true)
		obs.Reset()
	}
	stopCPU := profiling.Start(*cpuprofile)
	d := geneva.Deployment{
		Connections:        *connections,
		ClientsPerCell:     *clients,
		WavesPerCell:       *waves,
		UnprotectedPerCell: *unprotected,
		WaveGap:            *gap,
		SessionRequests:    *requests,
		RequestGap:         *reqgap,
		Reconnect: geneva.ReconnectPolicy{
			MaxAttempts: *reconnectMax,
			Backoff:     *reconnectBackoff,
			RetryAll:    *retryAll,
		},
		Seed: *seed,
		Workers:            *workers,
		Shards:             *shards,
		Impairments: geneva.Impairments{
			Loss: *loss, Duplicate: *dup, Reorder: *reorder, Jitter: *jitter,
		},
	}
	if *countries != "" {
		d.Countries = strings.Split(*countries, ",")
	}
	if *protocols != "" {
		d.Protocols = strings.Split(*protocols, ",")
	}

	start := time.Now()
	res, err := geneva.RunDeployment(d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if *asJSON {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
	} else {
		printTable(res)
	}
	if *manifest != "" {
		if err := res.Manifest.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(1)
		}
		fmt.Printf("manifest written to %s\n", *manifest)
	}
	if *metrics {
		printCounters()
	}
	// Rate from the unrounded elapsed time: at 10^5+ connections a run can
	// finish in near-millisecond territory per cell, and rounding before
	// dividing (or dividing by a zero-rounded duration) skews the only
	// wall-clock-dependent line the command prints.
	rate := "inf"
	if secs := elapsed.Seconds(); secs > 0 {
		rate = fmt.Sprintf("%.0f", float64(res.Connections)/secs)
	}
	fmt.Printf("\n%d connections in %d cells in %v (%s conns/sec, workers=%d, shards=%d)\n",
		res.Connections, res.Cells, elapsed.Round(time.Millisecond),
		rate, *workers, *shards)
	stopCPU()
	profiling.WriteHeap(*memprofile)
}

func printTable(res geneva.FleetResult) {
	countries := make([]string, 0, len(res.PerCountry))
	for c := range res.PerCountry {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	fmt.Printf("%-14s %6s %6s %8s %10s %12s %8s %10s %6s\n",
		"country", "conns", "served", "routed", "contested", "unprotected", "evasion", "requests", "avail")
	for _, c := range countries {
		cs := res.PerCountry[c]
		name := c
		if name == "" {
			name = "(uncensored)"
		}
		fmt.Printf("%-14s %6d %6d %3d/%-4d %4d/%-5d %5d/%-6d %7.0f%% %4d/%-5d %5.0f%%\n",
			name, cs.Connections, cs.Succeeded,
			cs.RoutedSucceeded, cs.Routed,
			cs.ContestedSucceeded, cs.Contested,
			cs.UnprotectedSucceeded, cs.Unprotected,
			100*cs.EvasionRate(),
			cs.RequestsServed, cs.RequestsAttempted,
			100*cs.Availability())
	}
	fmt.Printf("\noutcomes: %d served, %d torn down, %d never established\n",
		res.Outcomes["served"], res.Outcomes["torn_down"], res.Outcomes["never_established"])
	fmt.Printf("requests: %d/%d served, availability %.1f%%\n",
		res.RequestsServed, res.RequestsAttempted, 100*res.Availability())
}

func printCounters() {
	s := obs.Take()
	names := make([]string, 0, len(s.Counters))
	for n, v := range s.Counters {
		if v != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	fmt.Println("\ncounters:")
	for _, n := range names {
		fmt.Printf("  %-42s %d\n", n, s.Counters[n])
	}
}
