// Command evolve runs Geneva's genetic search server-side against a
// simulated censor, as §4.1 of the paper runs it against real ones.
//
// Usage:
//
//	evolve [-country china] [-protocol http] [-population 300]
//	       [-generations 50] [-trials 10] [-seed 0] [-workers 0]
//	       [-metrics] [-manifest out.json]
//
// It prints per-generation statistics, the evaluation engine's cache stats,
// and the best strategy found, then confirms the winner with fresh seeds.
// -workers bounds the population-evaluation pool (0 = one per CPU); the
// result is bit-identical at any width.
//
// -metrics enables the cross-layer counters (internal/obs) and prints the
// nonzero ones after the run; -manifest additionally writes the structured
// run manifest (config, seed schedule, every counter) as diffable JSON.
// Counters observe and never steer, so the evolved strategy is bit-identical
// with and without them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"geneva/internal/eval"
	"geneva/internal/genetic"
	"geneva/internal/obs"
	"geneva/internal/profiling"
)

func main() {
	country := flag.String("country", "china", "china, india, iran, or kazakhstan")
	protocol := flag.String("protocol", "http", "dns, ftp, http, https, or smtp")
	population := flag.Int("population", 300, "population size (paper: 300)")
	generations := flag.Int("generations", 50, "generation budget (paper: 50)")
	trials := flag.Int("trials", 10, "fitness trials per individual")
	seed := flag.Int64("seed", 0, "RNG seed")
	minimize := flag.Bool("minimize", true, "prune the winner while fitness holds")
	workers := flag.Int("workers", 0, "population-evaluation workers (0 = one per CPU); any width gives the same result")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	metrics := flag.Bool("metrics", false, "enable cross-layer counters and print the nonzero ones after the run")
	manifest := flag.String("manifest", "", "write a structured run manifest (JSON) to this file; implies -metrics")
	flag.Parse()

	if *metrics || *manifest != "" {
		obs.SetEnabled(true)
		obs.Reset()
	}
	stopCPU := profiling.Start(*cpuprofile)

	fmt.Printf("Evolving server-side strategies against %s / %s (population %d, <= %d generations, %d trials/individual)\n\n",
		*country, *protocol, *population, *generations, *trials)

	res, stats, err := eval.EvolveWithStats(eval.EvolveOptions{
		Country:       *country,
		Protocol:      *protocol,
		Population:    *population,
		Generations:   *generations,
		TrialsPerEval: *trials,
		Seed:          *seed,
		Workers:       *workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	for _, g := range res.History {
		fmt.Printf("gen %2d: best %.2f  mean %.2f  distinct %3d  %s\n",
			g.Generation, g.Best, g.Mean, g.Distinct, g.BestDSL)
	}
	fmt.Printf("\n%s\n", stats)

	best := res.Best.Strategy
	fmt.Printf("\nBest strategy: %s\n", best.String())
	if *minimize {
		fitness := eval.FitnessFor(*country, *protocol, *trials*2, *seed+50000)
		pruned, fit := genetic.Minimize(best, fitness, 0.05)
		if pruned.Size() < best.Size() {
			fmt.Printf("Minimized:     %s (fitness %.2f, %d -> %d nodes)\n",
				pruned.String(), fit, best.Size(), pruned.Size())
			best = pruned
		}
	}
	confirm := eval.Rate(eval.Config{
		Country:  *country,
		Session:  eval.SessionFor(*country, *protocol, true),
		Strategy: best,
		Tries:    eval.TriesFor(*protocol),
		Seed:     *seed + 100000,
	}, 200)
	fmt.Printf("Confirmed success rate over 200 fresh trials: %.0f%%\n", 100*confirm)
	if *metrics {
		fmt.Printf("\n--- metrics ---\n%s", obs.Take().Format())
	}
	if *manifest != "" {
		cfg := map[string]string{
			"country":     *country,
			"protocol":    *protocol,
			"population":  strconv.Itoa(*population),
			"generations": strconv.Itoa(*generations),
			"trials":      strconv.Itoa(*trials),
			"workers":     strconv.Itoa(*workers),
			"minimize":    strconv.FormatBool(*minimize),
			"best":        best.String(),
		}
		m := obs.NewManifest("evolve", cfg, obs.DefaultSeedSchedule(*seed))
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintf(os.Stderr, "writing manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("manifest written to %s\n", *manifest)
	}
	stopCPU()
	profiling.WriteHeap(*memprofile)
}
