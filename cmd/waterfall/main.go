// Command waterfall draws the packet waterfall diagrams of the paper's
// Figures 1 and 2 from live simulated connections.
//
// Usage:
//
//	waterfall [-country china|kazakhstan] [-strategy N]
//
// Without -strategy it draws all of the country's figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"geneva/internal/eval"
	"geneva/internal/strategies"
)

func main() {
	country := flag.String("country", "china", "china or kazakhstan")
	number := flag.Int("strategy", 0, "strategy number (0 = the whole figure)")
	flag.Parse()

	switch {
	case *number != 0:
		s, ok := strategies.ByNumber(*number)
		if !ok {
			fmt.Fprintf(os.Stderr, "no strategy %d\n", *number)
			os.Exit(2)
		}
		c := eval.CountryChina
		if *country == "kazakhstan" {
			c = eval.CountryKazakhstan
		}
		fmt.Print(eval.Waterfall(c, &s, eval.EvadingSeed(c, s)))
	case *country == "china":
		fmt.Print(eval.Figure1())
	case *country == "kazakhstan":
		fmt.Print(eval.Figure2())
	default:
		fmt.Fprintf(os.Stderr, "unknown country %q\n", *country)
		os.Exit(2)
	}
}
