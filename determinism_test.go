package geneva

import (
	"runtime"
	"testing"
	"time"
)

// TestEvasionRateDeterministicAcrossGOMAXPROCS is the concurrency-safety
// regression test: a Simulation with a fixed Seed must return the exact same
// rate whether the trial pool runs on one worker or eight — with and without
// network impairments. Every trial derives its randomness purely from
// cfg.Seed and its own index, never from scheduling order; this test breaks
// if anyone introduces shared mutable state (or a shared rng) into the
// worker pool.
func TestEvasionRateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sims := []Simulation{
		{Country: China, Protocol: "http", Strategy: Strategy1.DSL, Trials: 60, Seed: 7},
		{Country: China, Protocol: "http", Strategy: Strategy1.DSL, Trials: 60, Seed: 7,
			Impairments: Impairments{Loss: 0.05, Duplicate: 0.02, Reorder: 0.10, Jitter: 2 * time.Millisecond}},
		{Country: Kazakhstan, Protocol: "http", Strategy: Strategy9.DSL, Trials: 60, Seed: 3,
			Impairments: Impairments{Loss: 0.10}},
		{Country: China, Protocol: "dns", Trials: 60, Seed: 11,
			Impairments: Impairments{Reorder: 0.30, Jitter: time.Millisecond}},
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for i, sim := range sims {
		runtime.GOMAXPROCS(1)
		seq, err := EvasionRate(sim)
		if err != nil {
			t.Fatalf("sim %d: %v", i, err)
		}
		runtime.GOMAXPROCS(8)
		par, err := EvasionRate(sim)
		if err != nil {
			t.Fatalf("sim %d: %v", i, err)
		}
		if seq != par {
			t.Errorf("sim %d (%+v): GOMAXPROCS=1 rate %v != GOMAXPROCS=8 rate %v",
				i, sim, seq, par)
		}
		// And re-running at the same width agrees with itself.
		again, _ := EvasionRate(sim)
		if again != par {
			t.Errorf("sim %d: same seed, two runs: %v != %v", i, par, again)
		}
	}
}
