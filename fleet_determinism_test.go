package geneva

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// TestFleetDeterminism is the tentpole guarantee of the deployment harness:
// the entire FleetResult — totals, per-country breakdown, outcome mix, and
// manifest — must be bit-identical at any worker width AND any shard width,
// because every cell derives its seeds from its stable index in the
// workload plan, never from scheduling order, and the only cross-cell state
// (the per-country residual-censorship ledger) is folded with an
// order-independent max-merge at the wave barriers. Run under -race in CI
// (make fleet-determinism), the full workers × shards matrix also proves
// the sharded wave scheduler shares nothing it shouldn't.
func TestFleetDeterminism(t *testing.T) {
	base := Deployment{
		Countries: []string{China, India, IndiaJio, IndiaVodafone, Iran,
			Kazakhstan, Turkmenistan, NoCensor},
		Protocols:   []string{"http", "https", "dns", "smtp"},
		Connections: 128,
		Seed:        1234,
	}
	encode := func(workers, shards int) string {
		d := base
		d.Workers = workers
		d.Shards = shards
		res, err := RunDeployment(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Connections != 128 {
			t.Fatalf("workers=%d/shards=%d: served %d connections, want 128",
				workers, shards, res.Connections)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := encode(1, 1)
	for _, w := range []int{1, 2, 8} {
		for _, s := range []int{1, 2, 8} {
			if w == 1 && s == 1 {
				continue
			}
			t.Run(fmt.Sprintf("workers=%d_shards=%d", w, s), func(t *testing.T) {
				if got := encode(w, s); got != want {
					t.Errorf("workers=%d/shards=%d diverged from workers=1/shards=1:\n%s\nvs\n%s",
						w, s, got, want)
				}
			})
		}
	}
	// Shards=0 (the default: one shard per cell, the finest parallelism)
	// must agree with every explicit layout too.
	t.Run("workers=8_shards=auto", func(t *testing.T) {
		if got := encode(8, 0); got != want {
			t.Errorf("workers=8/shards=0 diverged from workers=1/shards=1:\n%s\nvs\n%s", got, want)
		}
	})
}

// TestFleetDeterminismLongHorizon runs the same workers × shards matrix over
// the long-horizon workload shape: keep-alive sessions spanning minutes of
// virtual time, reconnect backoff timers on the cell clocks, and tail
// sessions of varying length. Every one of those is new scheduling surface,
// so the bit-identical guarantee is re-proved on it.
func TestFleetDeterminismLongHorizon(t *testing.T) {
	base := Deployment{
		Countries:       []string{China, IndiaJio, Turkmenistan, NoCensor},
		Protocols:       []string{"http", "https", "dns"},
		Connections:     96,
		SessionRequests: 3,
		RequestGap:      40 * time.Second,
		Reconnect:       ReconnectPolicy{MaxAttempts: 3, Backoff: 50 * time.Second, RetryAll: true},
		Seed:            1234,
	}
	encode := func(workers, shards int) string {
		d := base
		d.Workers = workers
		d.Shards = shards
		res, err := RunDeployment(d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := encode(1, 1)
	for _, w := range []int{1, 2, 8} {
		for _, s := range []int{1, 2, 8} {
			if w == 1 && s == 1 {
				continue
			}
			t.Run(fmt.Sprintf("workers=%d_shards=%d", w, s), func(t *testing.T) {
				if got := encode(w, s); got != want {
					t.Errorf("workers=%d/shards=%d diverged from workers=1/shards=1:\n%s\nvs\n%s",
						w, s, got, want)
				}
			})
		}
	}
}
