package geneva

import (
	"encoding/json"
	"testing"
)

// TestFleetDeterminism is the tentpole guarantee of the deployment harness:
// the entire FleetResult — totals, per-country breakdown, outcome mix, and
// manifest — must be bit-identical at any worker width, because every cell
// derives its seeds from its stable index in the workload plan, never from
// scheduling order. Run under -race in CI, this also proves the cell pool
// shares nothing it shouldn't.
func TestFleetDeterminism(t *testing.T) {
	base := Deployment{
		Countries:   []string{China, India, Iran, Kazakhstan, NoCensor},
		Protocols:   []string{"http", "dns", "smtp"},
		Connections: 120,
		Seed:        1234,
	}
	encode := func(workers int) string {
		d := base
		d.Workers = workers
		res, err := RunDeployment(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Connections != 120 {
			t.Fatalf("workers=%d: served %d connections, want 120", workers, res.Connections)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := encode(1)
	for _, w := range []int{2, 8} {
		if got := encode(w); got != want {
			t.Errorf("workers=%d diverged from workers=1:\n%s\nvs\n%s", w, got, want)
		}
	}
}
