// Command benchjson turns `go test -bench -benchmem` output (stdin) into
// the committed benchmark JSON files:
//
//	-set trial (default): BENCH_trial.json — the hot-path numbers next to
//	  the frozen pre-pooling baseline, plus the headline allocation-reduction
//	  ratio the pooling PR's acceptance criterion tracks (>= 2x on the trial
//	  benchmark).
//	-set fleet: BENCH_fleet.json — the deployment harness's conns/s across
//	  the worker ladder, plus the workers=8 / workers=1 scaling ratio.
//
// Usage:
//
//	go test -run '^$' -bench 'Trial|PacketRoundtrip|...' -benchmem . | go run ./tools/benchjson > BENCH_trial.json
//	go test -run '^$' -bench 'BenchmarkFleet' -benchmem . | go run ./tools/benchjson -set fleet > BENCH_fleet.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Zeroes are meaningful (the pooled
// roundtrip's 0 allocs/op is the headline), so the core fields are not
// omitempty; Metrics carries any custom b.ReportMetric units (conns/s,
// success_rate, ...) the line happened to include.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Iterations  int64              `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// baseline holds the pre-pooling numbers, measured at the parent commit on
// the same benchmark shapes (the trial benchmark was then named
// BenchmarkFullConnection; it runs the identical China/http Strategy-1
// trial). Frozen here so every regeneration of BENCH_trial.json carries
// the before/after comparison without needing to rebuild the old tree.
var baseline = map[string]Result{
	"BenchmarkTrial/notrace":   {NsPerOp: 80755, BytesPerOp: 35689, AllocsPerOp: 151},
	"BenchmarkFullConnection":  {NsPerOp: 80755, BytesPerOp: 35689, AllocsPerOp: 151},
	"BenchmarkPacketMarshal":   {NsPerOp: 204.3, AllocsPerOp: 4},
	"BenchmarkPacketParse":     {NsPerOp: 137.8, AllocsPerOp: 2},
	"BenchmarkEngineApply":     {NsPerOp: 891.4, AllocsPerOp: 10},
	"BenchmarkPacketRoundtrip": {}, // did not exist pre-pooling
}

// parseLine reads one `go test -bench` result line: the benchmark name
// (GOMAXPROCS suffix stripped), the iteration count, and then value/unit
// pairs — ns/op and the -benchmem pair into their own fields, anything else
// into Metrics.
func parseLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			break
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[f[i+1]] = v
		}
	}
	return name, r, seen
}

func main() {
	set := flag.String("set", "trial", "which committed file this feeds: trial (BENCH_trial.json) or fleet (BENCH_fleet.json)")
	flag.Parse()

	current := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			current[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	out := struct {
		Go       string             `json:"go"`
		Note     string             `json:"note"`
		Baseline map[string]Result  `json:"baseline_pre_pooling,omitempty"`
		Current  map[string]Result  `json:"current"`
		Summary  map[string]float64 `json:"summary"`
	}{
		Go:      runtime.Version(),
		Current: current,
		Summary: map[string]float64{},
	}
	switch *set {
	case "fleet":
		out.Note = "deployment-harness throughput (BenchmarkFleet): conns/s per " +
			"worker × shard ladder rung at the 10^5-connection workload; " +
			"fleet_scaling_8w_over_1w is the wall-clock speedup of " +
			"workers=8/shards=8 over workers=1/shards=1 (~1.0 on a " +
			"single-core host — the FleetResult itself is identical at every " +
			"width); regenerate with `make bench-fleet`"
		for name, r := range current {
			if v, ok := r.Metrics["conns/s"]; ok {
				// The rung is the full sub-benchmark path (e.g.
				// "workers=8/shards=8"), not just the last segment —
				// flattened into a stable summary key.
				rung := name
				if i := strings.Index(rung, "/"); i >= 0 {
					rung = rung[i+1:]
				}
				rung = strings.ReplaceAll(rung, "=", "")
				rung = strings.ReplaceAll(rung, "/", "_")
				out.Summary["conns_per_sec_"+rung] = round2(v)
			}
		}
		w1, ok1 := current["BenchmarkFleet/workers=1/shards=1"]
		w8, ok8 := current["BenchmarkFleet/workers=8/shards=8"]
		if ok1 && ok8 && w8.NsPerOp > 0 {
			out.Summary["fleet_scaling_8w_over_1w"] = round2(w1.NsPerOp / w8.NsPerOp)
		}
	default:
		out.Note = "baseline_pre_pooling was measured at the pre-pooling commit " +
			"(the trial shape was then BenchmarkFullConnection); regenerate " +
			"current with `make bench-trial`"
		out.Baseline = baseline
		if trial, ok := current["BenchmarkTrial/notrace"]; ok && trial.AllocsPerOp > 0 {
			base := baseline["BenchmarkTrial/notrace"]
			out.Summary["trial_allocs_reduction_x"] = round2(base.AllocsPerOp / trial.AllocsPerOp)
			out.Summary["trial_ns_reduction_x"] = round2(base.NsPerOp / trial.NsPerOp)
			out.Summary["trial_bytes_reduction_x"] = round2(base.BytesPerOp / trial.BytesPerOp)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }
