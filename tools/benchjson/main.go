// Command benchjson turns `go test -bench -benchmem` output (stdin) into
// the committed benchmark JSON files:
//
//	-set trial (default): BENCH_trial.json — the hot-path numbers next to
//	  the frozen pre-pooling baseline, plus the headline allocation-reduction
//	  ratio the pooling PR's acceptance criterion tracks (>= 2x on the trial
//	  benchmark).
//	-set fleet: BENCH_fleet.json — the deployment harness's conns/s across
//	  the worker ladder, plus the workers=8 / workers=1 scaling ratio.
//	-set hotpath: BENCH_hotpath.json — the event-queue and per-censor
//	  microbenchmarks guarding the simulator's two hottest loops.
//
// With -compare FILE the tool is a regression gate instead of a generator:
// stdin benchmark lines are compared against FILE's "current" map and any
// regression beyond -tolerance (default 10%) on the metrics selected by
// -compare-metrics exits non-zero. allocs/op is deterministic and
// machine-independent, so CI gates on it alone; ns/op gating is for
// same-machine use.
//
// Usage:
//
//	go test -run '^$' -bench 'Trial|PacketRoundtrip|...' -benchmem . | go run ./tools/benchjson > BENCH_trial.json
//	go test -run '^$' -bench 'BenchmarkFleet' -benchmem . | go run ./tools/benchjson -set fleet > BENCH_fleet.json
//	go test -run '^$' -bench 'EventQueue|CensorProcess' -benchmem . | go run ./tools/benchjson -set hotpath > BENCH_hotpath.json
//	go test -run '^$' -bench ... -benchmem . | go run ./tools/benchjson -compare BENCH_hotpath.json -compare-metrics allocs
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Zeroes are meaningful (the pooled
// roundtrip's 0 allocs/op is the headline), so the core fields are not
// omitempty; Metrics carries any custom b.ReportMetric units (conns/s,
// success_rate, ...) the line happened to include.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Iterations  int64              `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// baseline holds the pre-pooling numbers, measured at the parent commit on
// the same benchmark shapes (the trial benchmark was then named
// BenchmarkFullConnection; it runs the identical China/http Strategy-1
// trial). Frozen here so every regeneration of BENCH_trial.json carries
// the before/after comparison without needing to rebuild the old tree.
var baseline = map[string]Result{
	"BenchmarkTrial/notrace":   {NsPerOp: 80755, BytesPerOp: 35689, AllocsPerOp: 151},
	"BenchmarkFullConnection":  {NsPerOp: 80755, BytesPerOp: 35689, AllocsPerOp: 151},
	"BenchmarkPacketMarshal":   {NsPerOp: 204.3, AllocsPerOp: 4},
	"BenchmarkPacketParse":     {NsPerOp: 137.8, AllocsPerOp: 2},
	"BenchmarkEngineApply":     {NsPerOp: 891.4, AllocsPerOp: 10},
	"BenchmarkPacketRoundtrip": {}, // did not exist pre-pooling
}

// parseLine reads one `go test -bench` result line: the benchmark name
// (GOMAXPROCS suffix stripped), the iteration count, and then value/unit
// pairs — ns/op and the -benchmem pair into their own fields, anything else
// into Metrics.
func parseLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			break
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[f[i+1]] = v
		}
	}
	return name, r, seen
}

func main() {
	set := flag.String("set", "trial", "which committed file this feeds: trial (BENCH_trial.json), fleet (BENCH_fleet.json), or hotpath (BENCH_hotpath.json)")
	compare := flag.String("compare", "", "compare stdin results against this committed BENCH_*.json instead of generating JSON; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.10, "with -compare: allowed fractional regression before failing")
	compareMetrics := flag.String("compare-metrics", "ns,allocs", "with -compare: comma-separated metrics to gate on (ns, allocs)")
	flag.Parse()

	current := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			current[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *compare != "" {
		os.Exit(runCompare(*compare, current, *tolerance, *compareMetrics))
	}

	out := struct {
		Go       string             `json:"go"`
		Note     string             `json:"note"`
		Baseline map[string]Result  `json:"baseline_pre_pooling,omitempty"`
		Current  map[string]Result  `json:"current"`
		Summary  map[string]float64 `json:"summary"`
	}{
		Go:      runtime.Version(),
		Current: current,
		Summary: map[string]float64{},
	}
	switch *set {
	case "fleet":
		out.Note = "deployment-harness throughput (BenchmarkFleet): conns/s per " +
			"worker × shard ladder rung at the 10^5-connection workload, plus " +
			"the longhorizon rung (keep-alive sessions with reconnect backoff " +
			"at 5×10^4 connections); fleet_scaling_8w_over_1w is the " +
			"wall-clock speedup of workers=8/shards=8 over workers=1/shards=1 " +
			"(~1.0 on a single-core host — the FleetResult itself is identical " +
			"at every width); regenerate with `make bench-fleet`, gate allocs " +
			"with `make bench-fleet-gate`"
		for name, r := range current {
			if v, ok := r.Metrics["conns/s"]; ok {
				// The rung is the full sub-benchmark path (e.g.
				// "workers=8/shards=8"), not just the last segment —
				// flattened into a stable summary key.
				rung := name
				if i := strings.Index(rung, "/"); i >= 0 {
					rung = rung[i+1:]
				}
				rung = strings.ReplaceAll(rung, "=", "")
				rung = strings.ReplaceAll(rung, "/", "_")
				out.Summary["conns_per_sec_"+rung] = round2(v)
			}
		}
		w1, ok1 := current["BenchmarkFleet/workers=1/shards=1"]
		w8, ok8 := current["BenchmarkFleet/workers=8/shards=8"]
		if ok1 && ok8 && w8.NsPerOp > 0 {
			out.Summary["fleet_scaling_8w_over_1w"] = round2(w1.NsPerOp / w8.NsPerOp)
		}
	case "hotpath":
		out.Note = "event-queue and per-censor microbenchmarks over the " +
			"simulator's two hottest loops: BenchmarkEventQueue is a " +
			"pop-modify-push cycle at a steady queue depth (allocs/op must " +
			"stay 0 — the queue is a value slice), BenchmarkCensorProcess " +
			"drives one canned forbidden HTTP connection per op through each " +
			"registry censor; regenerate with `make bench-hotpath`"
		for name, r := range current {
			switch {
			case strings.HasPrefix(name, "BenchmarkEventQueue/"):
				depth := strings.TrimPrefix(name, "BenchmarkEventQueue/depth=")
				out.Summary["event_queue_ns_depth"+depth] = round2(r.NsPerOp)
				out.Summary["event_queue_allocs_depth"+depth] = r.AllocsPerOp
			case strings.HasPrefix(name, "BenchmarkCensorProcess/"):
				country := strings.TrimPrefix(name, "BenchmarkCensorProcess/")
				out.Summary["censor_conn_ns_"+country] = round2(r.NsPerOp)
				out.Summary["censor_conn_allocs_"+country] = r.AllocsPerOp
			}
		}
	default:
		out.Note = "baseline_pre_pooling was measured at the pre-pooling commit " +
			"(the trial shape was then BenchmarkFullConnection); regenerate " +
			"current with `make bench-trial`"
		out.Baseline = baseline
		if trial, ok := current["BenchmarkTrial/notrace"]; ok && trial.AllocsPerOp > 0 {
			base := baseline["BenchmarkTrial/notrace"]
			out.Summary["trial_allocs_reduction_x"] = round2(base.AllocsPerOp / trial.AllocsPerOp)
			out.Summary["trial_ns_reduction_x"] = round2(base.NsPerOp / trial.NsPerOp)
			out.Summary["trial_bytes_reduction_x"] = round2(base.BytesPerOp / trial.BytesPerOp)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }

// runCompare gates stdin results against a committed BENCH_*.json: every
// benchmark present in both is checked on the selected metrics, and any
// regression beyond tol fails the run. Benchmarks on only one side are
// reported but never fail — CI smoke runs measure a subset of the committed
// set. Returns the process exit code.
func runCompare(path string, current map[string]Result, tol float64, metrics string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	var committed struct {
		Current map[string]Result `json:"current"`
	}
	if err := json.Unmarshal(raw, &committed); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		return 1
	}
	gateNs := strings.Contains(metrics, "ns")
	gateAllocs := strings.Contains(metrics, "allocs")

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		base, ok := committed.Current[name]
		if !ok {
			fmt.Printf("NEW      %-50s (not in %s)\n", name, path)
			continue
		}
		cur := current[name]
		verdict := "ok"
		var notes []string
		check := func(metric string, baseV, curV float64) {
			// A zero baseline is an exact bar: the committed 0 allocs/op
			// results are the whole point of their benchmarks.
			limit := baseV * (1 + tol)
			if baseV == 0 {
				limit = 0
			}
			if curV > limit {
				verdict = "REGRESS"
				failed = true
			}
			if baseV > 0 {
				notes = append(notes, fmt.Sprintf("%s %+.1f%%", metric, (curV/baseV-1)*100))
			} else if curV > 0 {
				notes = append(notes, fmt.Sprintf("%s 0 -> %g", metric, curV))
			}
		}
		if gateNs {
			check("ns/op", base.NsPerOp, cur.NsPerOp)
		}
		if gateAllocs {
			check("allocs/op", base.AllocsPerOp, cur.AllocsPerOp)
		}
		fmt.Printf("%-8s %-50s %s\n", verdict, name, strings.Join(notes, "  "))
	}
	if failed {
		fmt.Printf("FAIL: regression beyond %.0f%% against %s\n", tol*100, path)
		return 1
	}
	fmt.Printf("PASS: no regression beyond %.0f%% against %s (%d benchmarks)\n", tol*100, path, len(names))
	return 0
}
