// Command benchjson turns `go test -bench -benchmem` output (stdin) into
// the BENCH_trial.json the Makefile's bench-trial target commits: the
// current hot-path numbers next to the frozen pre-pooling baseline, plus
// the headline allocation-reduction ratio the PR's acceptance criterion
// tracks (>= 2x on the trial benchmark).
//
// Usage:
//
//	go test -run '^$' -bench 'Trial|PacketRoundtrip|...' -benchmem . | go run ./tools/benchjson > BENCH_trial.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
)

// Result is one parsed benchmark line.
// Result is one parsed benchmark line. Zeroes are meaningful (the pooled
// roundtrip's 0 allocs/op is the headline), so nothing is omitempty.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// baseline holds the pre-pooling numbers, measured at the parent commit on
// the same benchmark shapes (the trial benchmark was then named
// BenchmarkFullConnection; it runs the identical China/http Strategy-1
// trial). Frozen here so every regeneration of BENCH_trial.json carries
// the before/after comparison without needing to rebuild the old tree.
var baseline = map[string]Result{
	"BenchmarkTrial/notrace":   {NsPerOp: 80755, BytesPerOp: 35689, AllocsPerOp: 151},
	"BenchmarkFullConnection":  {NsPerOp: 80755, BytesPerOp: 35689, AllocsPerOp: 151},
	"BenchmarkPacketMarshal":   {NsPerOp: 204.3, AllocsPerOp: 4},
	"BenchmarkPacketParse":     {NsPerOp: 137.8, AllocsPerOp: 2},
	"BenchmarkEngineApply":     {NsPerOp: 891.4, AllocsPerOp: 10},
	"BenchmarkPacketRoundtrip": {}, // did not exist pre-pooling
}

var lineRE = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	current := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		m := lineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{NsPerOp: ns, Iterations: iters}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			r.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		current[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	out := struct {
		Go       string             `json:"go"`
		Note     string             `json:"note"`
		Baseline map[string]Result  `json:"baseline_pre_pooling"`
		Current  map[string]Result  `json:"current"`
		Summary  map[string]float64 `json:"summary"`
	}{
		Go: runtime.Version(),
		Note: "baseline_pre_pooling was measured at the pre-pooling commit " +
			"(the trial shape was then BenchmarkFullConnection); regenerate " +
			"current with `make bench-trial`",
		Baseline: baseline,
		Current:  current,
		Summary:  map[string]float64{},
	}
	if trial, ok := current["BenchmarkTrial/notrace"]; ok && trial.AllocsPerOp > 0 {
		base := baseline["BenchmarkTrial/notrace"]
		out.Summary["trial_allocs_reduction_x"] = round2(base.AllocsPerOp / trial.AllocsPerOp)
		out.Summary["trial_ns_reduction_x"] = round2(base.NsPerOp / trial.NsPerOp)
		out.Summary["trial_bytes_reduction_x"] = round2(base.BytesPerOp / trial.BytesPerOp)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }
