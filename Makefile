# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench bench-evolve evaluate figures short cover race

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -shuffle=on ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One pass over the evolution-engine benchmarks (cache hit rates + worker
# scaling); the CI smoke step runs exactly this.
bench-evolve:
	$(GO) test -run '^$$' -bench Evolve -benchtime 1x ./...

evaluate:
	$(GO) run ./cmd/evaluate -trials 300

figures:
	$(GO) run ./cmd/waterfall -country china
	$(GO) run ./cmd/waterfall -country kazakhstan
