# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet lint bench bench-evolve bench-trial bench-fleet bench-hotpath bench-gate bench-compare alloc-budget fleet-determinism selector-determinism fuzz-smoke evaluate figures short cover race

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -shuffle=on ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One pass over the evolution-engine benchmarks (cache hit rates + worker
# scaling); the CI smoke step runs exactly this.
bench-evolve:
	$(GO) test -run '^$$' -bench Evolve -benchtime 1x ./...

# Trial hot-path benchmarks; regenerates BENCH_trial.json with the current
# numbers next to the frozen pre-pooling baseline (see tools/benchjson).
BENCH_TRIAL = 'BenchmarkTrial|BenchmarkPacketRoundtrip|BenchmarkPacketMarshal|BenchmarkPacketParse|BenchmarkEngineApply|BenchmarkFullConnection'
bench-trial:
	$(GO) test -run '^$$' -bench $(BENCH_TRIAL) -benchmem -benchtime 2000x . | tee /tmp/bench_trial.txt
	$(GO) run ./tools/benchjson < /tmp/bench_trial.txt > BENCH_trial.json
	@cat BENCH_trial.json

# Deployment-harness throughput at the 10^5-connection workload; regenerates
# BENCH_fleet.json with conns/s across the worker × shard ladder (see
# tools/benchjson -set fleet). The FleetResult is identical at every width —
# only the wall clock moves. Set GENEVA_FLEET_SMOKE=1 to add the
# 10^6-connection smoke rung (slow; see EXPERIMENTS.md).
bench-fleet:
	$(GO) test -run '^$$' -bench BenchmarkFleet -benchmem -benchtime 3x -timeout 30m . | tee /tmp/bench_fleet.txt
	$(GO) run ./tools/benchjson -set fleet < /tmp/bench_fleet.txt > BENCH_fleet.json
	@cat BENCH_fleet.json

# The fleet allocation gate: re-measure the fleet ladder (one iteration per
# rung, enough for allocs/op, which is deterministic) and compare against the
# committed BENCH_fleet.json. Catches per-connection or per-exchange alloc
# leaks in both the one-shot rungs and the keep-alive/reconnect longhorizon
# rung. CI runs exactly this in the fleet bench smoke.
bench-fleet-gate:
	$(GO) test -run '^$$' -bench BenchmarkFleet -benchmem -benchtime 1x -timeout 30m . | \
		$(GO) run ./tools/benchjson -compare BENCH_fleet.json -compare-metrics $(GATE_METRICS)

# The fleet determinism gate: the whole FleetResult must be bit-identical
# across the workers × shards matrix (1/2/8 × 1/2/8 plus shards=auto), with
# a live residual ledger, under the race detector. CI runs exactly this.
fleet-determinism:
	$(GO) test -race -run 'TestFleetDeterminism|TestFleetMetricsMatchResult|TestFleetResidualLedgerProperty|TestFleetLongHorizonShardInvariance' -v . ./internal/fleet/

# The control-plane determinism gate: with online selection live (bandit
# pulls, barrier merges, a mid-run censor shift) the FleetResult must stay
# bit-identical across the workers × shards matrix; with Selection unset it
# must be byte-identical to the committed pre-control-plane goldens; and the
# collapse-and-recover scenario must hold. Runs under the race detector next
# to the selector's own unit determinism tests. CI runs exactly this.
selector-determinism:
	$(GO) test -race -run 'TestFleetSelectionDeterminism|TestFleetPinnedByteIdentity|TestFleetCollapseAndRecover' -v .
	$(GO) test -race ./internal/selector/

# Hot-path microbenchmarks: the netsim event queue and the per-censor
# Process cost; regenerates BENCH_hotpath.json (see tools/benchjson -set
# hotpath).
BENCH_HOTPATH = 'BenchmarkEventQueue|BenchmarkCensorProcess'
bench-hotpath:
	$(GO) test -run '^$$' -bench $(BENCH_HOTPATH) -benchmem -benchtime 100000x . ./internal/netsim/ | tee /tmp/bench_hotpath.txt
	$(GO) run ./tools/benchjson -set hotpath < /tmp/bench_hotpath.txt > BENCH_hotpath.json
	@cat BENCH_hotpath.json

# The benchmark regression gate: re-measure the hot-path benchmarks and
# compare against the committed BENCH_hotpath.json. allocs/op is
# deterministic, so it gates everywhere; add ns/op locally with
# GATE_METRICS=ns,allocs (same-machine numbers only). CI runs exactly this.
GATE_METRICS ?= allocs
bench-gate:
	$(GO) test -run '^$$' -bench $(BENCH_HOTPATH) -benchmem -benchtime 100000x . ./internal/netsim/ | \
		$(GO) run ./tools/benchjson -compare BENCH_hotpath.json -compare-metrics $(GATE_METRICS)

# benchstat comparison against the committed BENCH_trial numbers
# (informational; benchstat is optional and never installed by this repo).
bench-compare:
	@command -v benchstat >/dev/null 2>&1 || { echo "benchstat not installed; skipping (go install golang.org/x/perf/cmd/benchstat@latest)"; exit 0; }
	$(GO) test -run '^$$' -bench $(BENCH_TRIAL) -benchmem -count 6 . > /tmp/bench_new.txt
	benchstat /tmp/bench_new.txt

# The allocation-budget tripwires: fail when the zero-alloc hot paths, the
# per-trial budget, or the fleet's per-connection budget regress. CI runs
# exactly this.
alloc-budget:
	$(GO) test -run 'TestAllocBudget|TestTrialAllocBudget|TestFleetAllocBudget' -v ./internal/packet/ ./internal/core/ ./internal/eval/ ./internal/fleet/

# Coverage-guided fuzzing bursts — the fuzz targets promoted from
# seed-corpus-only to live mutation. Go's fuzz engine takes one -fuzz
# pattern per package per invocation, so each target gets its own run.
# CI runs exactly this with the default budget.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz '^FuzzDNSQueryName$$' -fuzztime $(FUZZTIME) ./internal/apps/
	$(GO) test -fuzz '^FuzzExtractSNI$$' -fuzztime $(FUZZTIME) ./internal/apps/
	$(GO) test -fuzz '^FuzzHTTPParsers$$' -fuzztime $(FUZZTIME) ./internal/apps/
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/packet/
	$(GO) test -fuzz '^FuzzTCPUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/packet/
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -fuzz '^FuzzImpairments$$' -fuzztime $(FUZZTIME) ./internal/netsim/
	$(GO) test -fuzz '^FuzzEventQueue$$' -fuzztime $(FUZZTIME) ./internal/netsim/
	$(GO) test -fuzz '^FuzzIndiaProcess$$' -fuzztime $(FUZZTIME) ./internal/censor/india/
	$(GO) test -fuzz '^FuzzTMCProcess$$' -fuzztime $(FUZZTIME) ./internal/censor/tmc/

# Static checks: vet always; gocritic (checks like hugeParam — catching
# accidental by-value copies of packet structs) only when installed.
lint: vet
	@command -v gocritic >/dev/null 2>&1 && gocritic check ./... || echo "gocritic not installed; skipped"

evaluate:
	$(GO) run ./cmd/evaluate -trials 300

figures:
	$(GO) run ./cmd/waterfall -country china
	$(GO) run ./cmd/waterfall -country kazakhstan
