package geneva

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"geneva/internal/obs"
)

// pinnedGolden renders a FleetResult the way the committed goldens were
// generated: indented JSON plus trailing newline, with Manifest.Metrics
// cleared (the counter key-set depends on which packages a build links, so
// byte-identity is asserted over everything the fleet computed, not over
// instrumentation registration order).
func pinnedGolden(t *testing.T, d Deployment) []byte {
	t.Helper()
	res, err := RunDeployment(d)
	if err != nil {
		t.Fatal(err)
	}
	res.Manifest.Metrics = obs.Snapshot{}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestFleetPinnedByteIdentity is the regression half of the control-plane
// contract: a Deployment with Portfolio and Selection both unset must
// reproduce the pre-control-plane FleetResult + manifest byte-for-byte. The
// goldens under testdata/ were generated at the PR 9 tree, before
// internal/selector existed, on the exact TestFleetDeterminism and
// TestFleetDeterminismLongHorizon workload shapes.
func TestFleetPinnedByteIdentity(t *testing.T) {
	cases := []struct {
		golden string
		d      Deployment
	}{
		{"testdata/fleet_pinned.json", Deployment{
			Countries: []string{China, India, IndiaJio, IndiaVodafone, Iran,
				Kazakhstan, Turkmenistan, NoCensor},
			Protocols:   []string{"http", "https", "dns", "smtp"},
			Connections: 128,
			Seed:        1234,
		}},
		{"testdata/fleet_pinned_longhorizon.json", Deployment{
			Countries:       []string{China, IndiaJio, Turkmenistan, NoCensor},
			Protocols:       []string{"http", "https", "dns"},
			Connections:     96,
			SessionRequests: 3,
			RequestGap:      40 * time.Second,
			Reconnect:       ReconnectPolicy{MaxAttempts: 3, Backoff: 50 * time.Second, RetryAll: true},
			Seed:            1234,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatal(err)
			}
			got := pinnedGolden(t, tc.d)
			if string(got) != string(want) {
				t.Errorf("pinned run diverged from the pre-control-plane golden %s:\n%s", tc.golden, got)
			}
		})
	}
}

// TestFleetSelectionDeterminism re-proves the workers × shards bit-identity
// matrix with the control plane live: a portfolio of three §8 strategies,
// the epsilon-greedy bandit picking per attempt, selector state merging at
// wave barriers, and a mid-run censor shift — every new scheduling surface
// this PR adds. UCB1 gets the same matrix on a reduced grid.
func TestFleetSelectionDeterminism(t *testing.T) {
	portfolio, err := NewPortfolio(Strategy1.DSL, Strategy2.DSL, Strategy11.DSL)
	if err != nil {
		t.Fatal(err)
	}
	base := Deployment{
		Countries:   []string{China, Kazakhstan, NoCensor},
		Protocols:   []string{"http", "https"},
		Connections: 96,
		Seed:        1234,
		Portfolio:   portfolio,
		Selection:   Selection{Policy: EpsilonGreedy},
		Shift:       CensorShift{AtWave: 2, Params: map[string]float64{"prst": 0}},
	}
	encode := func(d Deployment, workers, shards int) string {
		d.Workers = workers
		d.Shards = shards
		res, err := RunDeployment(d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := encode(base, 1, 1)
	for _, w := range []int{1, 2, 8} {
		for _, s := range []int{1, 2, 8} {
			if w == 1 && s == 1 {
				continue
			}
			t.Run(fmt.Sprintf("eps/workers=%d_shards=%d", w, s), func(t *testing.T) {
				if got := encode(base, w, s); got != want {
					t.Errorf("selection run diverged from workers=1/shards=1:\n%s\nvs\n%s", got, want)
				}
			})
		}
	}
	ucb := base
	ucb.Selection = Selection{Policy: UCB1}
	wantUCB := encode(ucb, 1, 1)
	if wantUCB == want {
		t.Error("UCB1 and epsilon-greedy produced identical output; the policy knob is dead")
	}
	for _, layout := range []struct{ w, s int }{{2, 2}, {8, 0}} {
		t.Run(fmt.Sprintf("ucb1/workers=%d_shards=%d", layout.w, layout.s), func(t *testing.T) {
			if got := encode(ucb, layout.w, layout.s); got != wantUCB {
				t.Errorf("UCB1 run diverged from workers=1/shards=1:\n%s\nvs\n%s", got, wantUCB)
			}
		})
	}
	// The selection table must be populated and coherent: pulls cover every
	// routed attempt's arm draw, and each arm's outcomes sum to its pulls.
	res, err := RunDeployment(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, country := range []string{China, Kazakhstan} {
		sel := res.PerCountry[country].Selection
		if len(sel) == 0 {
			t.Fatalf("%s: no selection outcomes on a selection-enabled run", country)
		}
		var pulls uint64
		for name, arm := range sel {
			if arm.Pulls != arm.Served+arm.TornDown+arm.Unestablished {
				t.Errorf("%s/%q: pulls %d != outcomes %d+%d+%d", country, name,
					arm.Pulls, arm.Served, arm.TornDown, arm.Unestablished)
			}
			pulls += arm.Pulls
		}
		if pulls == 0 {
			t.Errorf("%s: selection table has zero pulls", country)
		}
	}
	if res.PerCountry[NoCensor].Selection != nil {
		t.Error("uncensored (unrouted) country has a selection table; no arms should be pulled there")
	}
}

// TestFleetCollapseAndRecover is the committed scenario the tentpole
// demands: a mid-run censor shift collapses the strategy the §8 deployment
// pins for China, and the control plane must quarantine the cratered arm,
// re-explore, and recover availability above the pinned baseline.
//
// The lever: Strategy 1 (TCB desync via injected RST) relies on the GFW
// resynchronizing on server RSTs — calibrated PRst 0.52 for HTTP. Shifting
// prst to 0 mid-run makes the censor ignore those RSTs entirely, so the
// pinned strategy's evasion collapses to the no-evasion floor. Strategy 2
// (desync via a corrupt-ACK data burst) rides the independent pload path
// and keeps working; the bandit just has to find it.
func TestFleetCollapseAndRecover(t *testing.T) {
	portfolio, err := NewPortfolio(Strategy1.DSL, Strategy2.DSL)
	if err != nil {
		t.Fatal(err)
	}
	base := Deployment{
		Countries:      []string{China},
		Protocols:      []string{"http"},
		Connections:    240,
		ClientsPerCell: 6,
		WavesPerCell:   10,
		// Routed waves only: the collapse signal should not be diluted by
		// collateral from unprotected clients.
		UnprotectedPerCell: -1,
		Seed:               99,
		Shift:              CensorShift{AtWave: 2, Params: map[string]float64{"prst": 0}},
	}

	pinned := base // Portfolio unset, Selection unset: §8 pins Strategy 1.
	pinnedRes, err := RunDeployment(pinned)
	if err != nil {
		t.Fatal(err)
	}

	selected := base
	selected.Portfolio = portfolio
	selected.Selection = Selection{Policy: EpsilonGreedy}
	selRes, err := RunDeployment(selected)
	if err != nil {
		t.Fatal(err)
	}

	pinnedAvail := pinnedRes.PerCountry[China].Availability()
	selAvail := selRes.PerCountry[China].Availability()
	t.Logf("availability: pinned %.3f, selected %.3f (fallbacks %d)",
		pinnedAvail, selAvail, selRes.Fallbacks)
	t.Logf("selection table: %+v", selRes.PerCountry[China].Selection)

	// The shift must actually collapse the pinned strategy: with the censor
	// ignoring RSTs from wave 2 on, the pinned run's evasion has to land far
	// below its calibrated ~90% (8 of 10 waves run against the shifted
	// censor).
	if rate := pinnedRes.PerCountry[China].EvasionRate(); rate > 0.5 {
		t.Fatalf("prst=0 shift did not collapse pinned Strategy 1: evasion %.2f", rate)
	}
	if selAvail <= pinnedAvail {
		t.Errorf("selector did not recover availability: selected %.3f <= pinned %.3f",
			selAvail, pinnedAvail)
	}
	if selRes.Fallbacks == 0 {
		t.Error("collapse was never detected: Fallbacks = 0")
	}
	// After recovery, the surviving arm must dominate the table.
	sel := selRes.PerCountry[China].Selection
	if sel[portfolio.Name(1)].Served <= sel[portfolio.Name(0)].Served {
		t.Errorf("surviving Strategy 2 should out-serve collapsed Strategy 1: %+v", sel)
	}
}

// TestSentinelErrors pins the errors.Is contract of the redesigned API: the
// unknown-country/protocol/invalid-strategy failures are matchable sentinels
// on every entry point, while the messages keep naming valid values.
func TestSentinelErrors(t *testing.T) {
	if _, err := Run(Simulation{Country: "narnia", Protocol: "http", Trials: 1}); !errors.Is(err, ErrUnknownCountry) {
		t.Errorf("Run(narnia) = %v, want ErrUnknownCountry", err)
	}
	if _, err := Run(Simulation{Country: China, Protocol: "telnet", Trials: 1}); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("Run(telnet) = %v, want ErrUnknownProtocol", err)
	}
	if _, err := Run(Simulation{Country: China, Protocol: "http", Strategy: "[broken", Trials: 1}); !errors.Is(err, ErrInvalidStrategy) {
		t.Errorf("Run(broken strategy) = %v, want ErrInvalidStrategy", err)
	}
	if _, err := RunDeployment(Deployment{Countries: []string{"narnia"}, Connections: 1}); !errors.Is(err, ErrUnknownCountry) {
		t.Errorf("RunDeployment(narnia) = %v, want ErrUnknownCountry", err)
	}
	if _, err := Evolve(EvolveOptions{Country: "narnia", Protocol: "http"}); !errors.Is(err, ErrUnknownCountry) {
		t.Errorf("Evolve(narnia) = %v, want ErrUnknownCountry", err)
	}
	if _, err := Evolve(EvolveOptions{Country: China, Protocol: "telnet"}); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("Evolve(telnet) = %v, want ErrUnknownProtocol", err)
	}
	if _, err := NewPortfolio(Strategy1.DSL, "[broken"); !errors.Is(err, ErrInvalidStrategy) {
		t.Errorf("NewPortfolio(broken) = %v, want ErrInvalidStrategy", err)
	}
	if _, err := RunDeployment(Deployment{
		Connections: 1,
		Selection:   Selection{Policy: "thompson"},
	}); err == nil {
		t.Error("unknown selection policy: want error, got nil")
	}
}
