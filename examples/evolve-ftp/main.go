// evolve-ftp: train Geneva server-side against the GFW's FTP box, from
// scratch, and watch it rediscover a corrupt-ack-family strategy (§4.1's
// methodology; the FTP column of Table 2 is where those strategies shine).
//
//	go run ./examples/evolve-ftp
package main

import (
	"fmt"

	"geneva"
)

func main() {
	fmt.Println("Training Geneva server-side against GFW / FTP (censored RETR ultrasurf)...")
	fmt.Println()

	res, err := geneva.Evolve(geneva.EvolveOptions{
		Country:       geneva.China,
		Protocol:      "ftp",
		Population:    150,
		Generations:   25,
		TrialsPerEval: 8,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	for _, g := range res.History {
		fmt.Printf("gen %2d: best %.2f  mean %.2f  distinct %3d\n",
			g.Generation, g.Best, g.Mean, g.Distinct)
	}
	fmt.Printf("\nBest evolved strategy:\n  %s\n", res.Best.Strategy.String())

	confirm, err := geneva.EvasionRate(geneva.Simulation{
		Country:  geneva.China,
		Protocol: "ftp",
		Strategy: res.Best.Strategy.String(),
		Trials:   300,
		Seed:     12345,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("Confirmed on 300 fresh trials: %.0f%% (compare Table 2: Strategy 5 reaches 97%%)\n",
		100*confirm)

	fmt.Printf("\nThe paper's hand-analyzed winner for FTP:\n  %s\n", geneva.Strategy5.DSL)
	paper, _ := geneva.EvasionRate(geneva.Simulation{
		Country: geneva.China, Protocol: "ftp",
		Strategy: geneva.Strategy5.DSL, Trials: 300, Seed: 777,
	})
	fmt.Printf("  ... which scores %.0f%% here.\n", 100*paper)
}
