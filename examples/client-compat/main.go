// client-compat: reproduce §7's client-compatibility study — every strategy
// against 17 client operating systems on a censor-free private network —
// and show how the checksum-insertion variants repair the three strategies
// that break Windows and macOS stacks.
//
//	go run ./examples/client-compat
package main

import (
	"fmt"

	"geneva/internal/eval"
	"geneva/internal/strategies"
)

func main() {
	fmt.Println("Private network, no censor: does each strategy leave every client OS working?")
	fmt.Println()
	fmt.Print(eval.FormatCompat(eval.ClientCompatibility()))

	fmt.Println()
	fmt.Println("Why Strategies 5, 9, 10 fail on Windows/macOS: those stacks deliver a")
	fmt.Println("SYN+ACK payload into the application stream (Linux-family stacks ignore it).")
	fmt.Println("The fix (§7): send payload packets as insertion packets — corrupt their TCP")
	fmt.Println("checksum so every client drops them while censors (which do not validate")
	fmt.Println("checksums) still process them, then send the clean SYN+ACK afterwards:")
	fmt.Println()
	for _, n := range []int{5, 9, 10} {
		s, _ := strategies.ByNumber(n)
		v, _ := strategies.InsertionVariant(s)
		fmt.Printf("  Strategy %d variant:\n    %s\n", n, v.DSL)
	}
}
