// multi-country-router: the §8 deployment scenario — one server helps
// clients in four different censoring regimes at once, choosing each
// client's strategy from nothing but its address in the SYN (country-level
// geolocation). Also demonstrates exporting a connection trace as a pcap
// file readable by Wireshark.
//
//	go run ./examples/multi-country-router
package main

import (
	"fmt"
	"net/netip"
	"os"

	"geneva/internal/eval"
	"geneva/internal/strategies"
	"geneva/internal/tcpstack"
)

func main() {
	fmt.Println("One router, four censors. Strategy per region:")
	fmt.Printf("  %-12s -> Strategy 1 (%s)\n", "China", strategies.Strategy1.Name)
	fmt.Printf("  %-12s -> Strategy 8 (%s)\n", "India", strategies.Strategy8.Name)
	fmt.Printf("  %-12s -> Strategy 8 (%s)\n", "Iran", strategies.Strategy8.Name)
	fmt.Printf("  %-12s -> Strategy 11 (%s)\n", "Kazakhstan", strategies.Strategy11.Name)
	fmt.Println()

	got := eval.RouterDeployment(60)
	for _, c := range []string{"china", "india", "iran", "kazakhstan", ""} {
		label := c
		if label == "" {
			label = "(uncensored)"
		}
		fmt.Printf("  %-12s success through the shared router: %3.0f%%\n", label, 100*got[c])
	}

	// Bonus: capture one routed Kazakhstan connection to a pcap file.
	cfg := eval.Config{
		Country:       eval.CountryKazakhstan,
		Session:       eval.SessionFor(eval.CountryKazakhstan, "http", true),
		ClientAddress: netip.MustParseAddr("10.4.0.2"), // inside the Kazakhstan route
		Seed:          1,
		WithTrace:     true,
		ServerHook: func(ep *tcpstack.Endpoint) {
			ep.Outbound = eval.NewDeploymentRouter(1).Outbound
		},
	}
	res := eval.Run(cfg)
	f, err := os.CreateTemp("", "geneva-kazakhstan-*.pcap")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if err := res.Trace.WritePcap(f); err != nil {
		panic(err)
	}
	fmt.Printf("\nWrote a Wireshark-readable capture of the evading connection to %s\n", f.Name())
}
