// kazakh-blockpage: demonstrate Kazakhstan's in-path HTTP censorship — the
// man-in-the-middle block-page hijack — and the three strategies (plus
// window reduction) that defeat it 100% of the time (§5.3, Figure 2).
//
//	go run ./examples/kazakh-blockpage
package main

import (
	"fmt"

	"geneva"
	"geneva/internal/eval"
	"geneva/internal/strategies"
)

func main() {
	fmt.Println("Client in Kazakhstan requests http://blocked.example/ ...")
	fmt.Println()

	// No evasion: the censor hijacks the flow and serves a block page.
	res := eval.Run(eval.Config{
		Country:   eval.CountryKazakhstan,
		Session:   eval.SessionFor(eval.CountryKazakhstan, "http", true),
		Seed:      1,
		WithTrace: true,
	})
	fmt.Print(res.Trace.Waterfall("No evasion: MITM hijack + block page"))
	fmt.Printf("  => success=%v, censor events=%d\n\n", res.Success, res.CensorEvents)

	// Each Kazakhstan strategy, end to end.
	for _, s := range strategies.Kazakhstan() {
		rate, err := geneva.EvasionRate(geneva.Simulation{
			Country:  geneva.Kazakhstan,
			Protocol: "http",
			Strategy: s.DSL,
			Trials:   50,
			Seed:     int64(s.Number),
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("Strategy %2d (%-22s): %3.0f%% success\n", s.Number, s.Name, 100*rate)
	}
	fmt.Println()

	// And the waterfalls for the three Kazakhstan-specific ones.
	fmt.Print(eval.Figure2())
}
