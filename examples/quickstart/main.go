// Quickstart: parse a Geneva strategy and apply it to a SYN+ACK.
//
// This is the smallest possible use of the library: no network, no censor —
// just the strategy engine transforming one packet, the way it would
// transform a real server's outbound SYN+ACK when deployed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"net/netip"

	"geneva"
	"geneva/internal/packet"
)

func main() {
	// The paper's Strategy 1: replace the SYN+ACK with a RST and a SYN,
	// tricking the client into TCP simultaneous open and the GFW into a
	// buggy resynchronization.
	fmt.Printf("Strategy 1 program:\n  %s\n\n", geneva.Strategy1.DSL)

	strategy := geneva.MustParse(geneva.Strategy1.DSL)
	engine := geneva.NewEngine(strategy, rand.New(rand.NewSource(1)))

	// A server's SYN+ACK, as its TCP stack would emit it.
	synack := packet.New(
		netip.MustParseAddr("198.51.100.9"), // server
		netip.MustParseAddr("10.1.0.2"),     // client
		80, 40000)
	synack.TCP.Flags = packet.FlagSYN | packet.FlagACK
	synack.TCP.Seq = 1000
	synack.TCP.Ack = 501
	fmt.Printf("stack emits:  %s\n\n", synack)

	// The engine turns it into what actually goes on the wire.
	out := engine.Outbound(synack)
	fmt.Printf("wire carries %d packets instead:\n", len(out))
	for i, p := range out {
		fmt.Printf("  %d: %s\n", i+1, p)
	}

	// A packet that doesn't match the trigger passes through untouched.
	data := packet.New(
		netip.MustParseAddr("198.51.100.9"),
		netip.MustParseAddr("10.1.0.2"),
		80, 40000)
	data.TCP.Flags = packet.FlagPSH | packet.FlagACK
	data.TCP.Payload = []byte("HTTP/1.1 200 OK\r\n\r\n")
	passthrough := engine.Outbound(data)
	fmt.Printf("\nnon-matching packet passes through: %d packet, %s\n",
		len(passthrough), passthrough[0])
}
