// evade-http-china: a full end-to-end evasion of the simulated Great
// Firewall, exactly the scenario from the paper's introduction — an
// unmodified client inside China requests a censored keyword over HTTP;
// the server alone evades on its behalf.
//
//	go run ./examples/evade-http-china
package main

import (
	"fmt"

	"geneva"
	"geneva/internal/eval"
	"geneva/internal/strategies"
)

func main() {
	fmt.Println("An unmodified client in China fetches http://server/?q=ultrasurf")
	fmt.Println()

	// Without evasion: the GFW tears the connection down.
	fmt.Print(eval.Waterfall(eval.CountryChina, nil, 1))
	fmt.Println()

	// With Strategy 1 deployed server-side: simultaneous open + injected
	// RST desynchronizes the GFW's HTTP box.
	s1 := strategies.Strategy1
	fmt.Print(eval.Waterfall(eval.CountryChina, &s1, eval.EvadingSeed(eval.CountryChina, s1)))
	fmt.Println()

	// Success rates over many connections (Table 2's HTTP column).
	for _, s := range []geneva.LibraryStrategy{
		strategies.Strategy1, strategies.Strategy2, strategies.Strategy6, strategies.Strategy7,
	} {
		rate, err := geneva.EvasionRate(geneva.Simulation{
			Country:  geneva.China,
			Protocol: "http",
			Strategy: s.DSL,
			Trials:   200,
			Seed:     int64(s.Number),
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("Strategy %2d (%-32s) HTTP success: %3.0f%%\n", s.Number, s.Name, 100*rate)
	}
	base, _ := geneva.EvasionRate(geneva.Simulation{
		Country: geneva.China, Protocol: "http", Trials: 200, Seed: 99,
	})
	fmt.Printf("No evasion                                       HTTP success: %3.0f%%\n", 100*base)
}
