package geneva_test

import (
	"fmt"
	"math/rand"
	"net/netip"

	"geneva"
	"geneva/internal/packet"
)

// Parsing a strategy and applying it to a server's SYN+ACK.
func ExampleParse() {
	strategy, err := geneva.Parse(geneva.Strategy1.DSL)
	if err != nil {
		panic(err)
	}
	engine := geneva.NewEngine(strategy, rand.New(rand.NewSource(1)))

	synack := packet.New(
		netip.MustParseAddr("198.51.100.9"), netip.MustParseAddr("10.1.0.2"),
		80, 40000)
	synack.TCP.Flags = packet.FlagSYN | packet.FlagACK

	for _, p := range engine.Outbound(synack) {
		fmt.Println(packet.FlagsString(p.TCP.Flags))
	}
	// Output:
	// R
	// S
}

// Measuring a strategy's evasion rate against the simulated GFW.
func ExampleEvasionRate() {
	rate, err := geneva.EvasionRate(geneva.Simulation{
		Country:  geneva.Kazakhstan,
		Protocol: "http",
		Strategy: geneva.Strategy11.DSL, // Null Flags: deterministic 100%
		Trials:   20,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f%%\n", 100*rate)
	// Output:
	// 100%
}

// Running a full simulation and reading the structured result.
func ExampleRun() {
	res, err := geneva.Run(geneva.Simulation{
		Country:  geneva.Kazakhstan,
		Protocol: "http",
		Strategy: geneva.Strategy11.DSL, // Null Flags: deterministic 100%
		Trials:   20,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d/%d served, rate %.0f%%, manifest %s\n",
		res.Succeeded, res.Trials, 100*res.Rate, res.Manifest.Schema)
	// Output:
	// 20/20 served, rate 100%, manifest geneva-run-manifest/v1
}

// Serving a mixed-country client fleet from one endpoint behind the §8
// deployment router.
func ExampleRunDeployment() {
	res, err := geneva.RunDeployment(geneva.Deployment{
		Countries:   []string{geneva.Iran, geneva.Kazakhstan},
		Connections: 24,
		Seed:        7,
	})
	if err != nil {
		panic(err)
	}
	// Iran and Kazakhstan's censors are deterministic: every routed client
	// (one the router matched by address) evades.
	fmt.Printf("iran routed evasion %.0f%%\n", 100*res.PerCountry[geneva.Iran].EvasionRate())
	fmt.Printf("kazakhstan routed evasion %.0f%%\n", 100*res.PerCountry[geneva.Kazakhstan].EvasionRate())
	// Output:
	// iran routed evasion 100%
	// kazakhstan routed evasion 100%
}

// Deploying a strategy portfolio with the online selection control plane:
// the bandit races the portfolio per country and the result carries a
// per-strategy selection table.
func ExampleRunDeployment_portfolio() {
	portfolio, err := geneva.NewPortfolio(geneva.Strategy11.DSL, geneva.Strategy8.DSL)
	if err != nil {
		panic(err)
	}
	res, err := geneva.RunDeployment(geneva.Deployment{
		Countries:   []string{geneva.Kazakhstan},
		Connections: 24,
		Seed:        7,
		Portfolio:   portfolio,
		Selection:   geneva.Selection{Policy: geneva.EpsilonGreedy},
	})
	if err != nil {
		panic(err)
	}
	table := res.PerCountry[geneva.Kazakhstan].Selection
	fmt.Printf("strategies raced: %d\n", len(table))
	best := table[geneva.Strategy11.DSL]
	fmt.Printf("strategy 11 served %d of %d pulls\n", best.Served, best.Pulls)
	// Output:
	// strategies raced: 2
	// strategy 11 served 14 of 14 pulls
}

// Strategies render back to their canonical syntax.
func ExampleMustParse() {
	s := geneva.MustParse(`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \/ `)
	fmt.Println(s.String())
	// Output:
	// [TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \/
}
