package geneva_test

import (
	"fmt"
	"math/rand"
	"net/netip"

	"geneva"
	"geneva/internal/packet"
)

// Parsing a strategy and applying it to a server's SYN+ACK.
func ExampleParse() {
	strategy, err := geneva.Parse(geneva.Strategy1.DSL)
	if err != nil {
		panic(err)
	}
	engine := geneva.NewEngine(strategy, rand.New(rand.NewSource(1)))

	synack := packet.New(
		netip.MustParseAddr("198.51.100.9"), netip.MustParseAddr("10.1.0.2"),
		80, 40000)
	synack.TCP.Flags = packet.FlagSYN | packet.FlagACK

	for _, p := range engine.Outbound(synack) {
		fmt.Println(packet.FlagsString(p.TCP.Flags))
	}
	// Output:
	// R
	// S
}

// Measuring a strategy's evasion rate against the simulated GFW.
func ExampleEvasionRate() {
	rate, err := geneva.EvasionRate(geneva.Simulation{
		Country:  geneva.Kazakhstan,
		Protocol: "http",
		Strategy: geneva.Strategy11.DSL, // Null Flags: deterministic 100%
		Trials:   20,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f%%\n", 100*rate)
	// Output:
	// 100%
}

// Strategies render back to their canonical syntax.
func ExampleMustParse() {
	s := geneva.MustParse(`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \/ `)
	fmt.Println(s.String())
	// Output:
	// [TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \/
}
