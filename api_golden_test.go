package geneva

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPIGolden pins the package's exported surface against api.txt.
// Any change to an exported name or signature — adding, removing, or
// retyping — fails this test until the golden file is regenerated with
//
//	UPDATE_API=1 go test -run TestPublicAPIGolden .
//
// making API changes a deliberate, reviewable diff instead of an accident.
func TestPublicAPIGolden(t *testing.T) {
	got := publicAPI(t)
	if os.Getenv("UPDATE_API") != "" {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("api.txt regenerated")
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_API=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API changed; if intentional, regenerate with UPDATE_API=1 go test -run TestPublicAPIGolden .\n--- api.txt\n+++ current\n%s", diffLines(string(want), got))
	}
}

// publicAPI renders every exported top-level declaration of the root
// package's non-test files, one per line, sorted.
func publicAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["geneva"]
	if !ok {
		t.Fatalf("package geneva not found in %v", pkgs)
	}
	var lines []string
	emit := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	render := func(n ast.Node) string {
		var b strings.Builder
		if err := printer.Fprint(&b, fset, n); err != nil {
			t.Fatal(err)
		}
		// Collapse multi-line struct/interface bodies to single lines so the
		// golden file stays one-declaration-per-line.
		return strings.Join(strings.Fields(b.String()), " ")
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue // methods of aliased types live in internal packages
				}
				d.Body = nil
				d.Doc = nil
				emit("%s", render(d))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						s.Doc = nil
						s.Comment = nil
						emit("type %s", render(s))
					case *ast.ValueSpec:
						s.Doc = nil
						s.Comment = nil
						exported := false
						for _, n := range s.Names {
							if n.IsExported() {
								exported = true
							}
						}
						if !exported {
							continue
						}
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						emit("%s %s", kw, render(s))
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// diffLines is a minimal line diff: lines only in want prefixed "-", only in
// got prefixed "+".
func diffLines(want, got string) string {
	w := strings.Split(strings.TrimRight(want, "\n"), "\n")
	g := strings.Split(strings.TrimRight(got, "\n"), "\n")
	inW := map[string]bool{}
	for _, l := range w {
		inW[l] = true
	}
	inG := map[string]bool{}
	for _, l := range g {
		inG[l] = true
	}
	var out []string
	for _, l := range w {
		if !inG[l] {
			out = append(out, "- "+l)
		}
	}
	for _, l := range g {
		if !inW[l] {
			out = append(out, "+ "+l)
		}
	}
	return strings.Join(out, "\n")
}
