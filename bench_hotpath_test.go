// Hot-path microbenchmarks feeding BENCH_hotpath.json (make bench-hotpath).
//
// BenchmarkEventQueue (internal/netsim) and BenchmarkCensorProcess here
// guard the two inner loops the fleet harness spends its time in: the event
// queue and Middlebox.Process. Each BenchmarkCensorProcess op drives one
// canned forbidden connection — handshake plus a triggering request —
// straight through a registry censor's Process, with a fresh 4-tuple per op
// so every connection exercises flow-table setup, DPI parse, and teardown
// the way independent fleet connections do.
package geneva

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/eval"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// BenchmarkCensorProcess measures the per-connection cost of each registry
// censor's Process path. The client address and server address both vary
// per op (no 4-tuple ever repeats, matching the monotonic ephemeral ports
// of real runs), and the clock advances one second per op so residual
// censors (China, Turkmenistan) sweep their poison windows instead of
// accumulating them.
func BenchmarkCensorProcess(b *testing.B) {
	for _, def := range eval.Registry() {
		b.Run(def.Country, func(b *testing.B) {
			c := def.New(censor.Default(), rand.New(rand.NewSource(1)))

			// The trigger: HTTPS censors that ignore port 80 get a
			// forbidden ClientHello; everyone else a forbidden GET.
			port := uint16(80)
			payload := []byte("GET /?q=ultrasurf HTTP/1.1\r\nHost: www.wikipedia.org\r\n\r\n")
			if def.Country == eval.CountryIndiaJio {
				port = 443
				payload = apps.EncodeClientHello("youtube.com")
			}

			syn := packet.New(netip.IPv4Unspecified(), netip.IPv4Unspecified(), 0, port)
			syn.TCP.Flags = packet.FlagSYN
			syn.TCP.Seq = 1000
			synack := packet.New(netip.IPv4Unspecified(), netip.IPv4Unspecified(), port, 0)
			synack.TCP.Flags = packet.FlagSYN | packet.FlagACK
			synack.TCP.Seq = 5000
			synack.TCP.Ack = 1001
			ack := packet.New(netip.IPv4Unspecified(), netip.IPv4Unspecified(), 0, port)
			ack.TCP.Flags = packet.FlagACK
			ack.TCP.Seq = 1001
			ack.TCP.Ack = 5001
			req := packet.New(netip.IPv4Unspecified(), netip.IPv4Unspecified(), 0, port)
			req.TCP.Flags = packet.FlagPSH | packet.FlagACK
			req.TCP.Seq = 1001
			req.TCP.Ack = 5001
			req.TCP.Payload = payload

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cli := netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)})
				srv := netip.AddrFrom4([4]byte{10, 8, byte(i >> 24), byte(i >> 16)})
				cport := uint16(32768 + i%16384)
				now := time.Duration(i) * time.Second
				for _, p := range []*packet.Packet{syn, ack, req} {
					p.IP.Src, p.IP.Dst = cli, srv
					p.TCP.SrcPort = cport
				}
				synack.IP.Src, synack.IP.Dst = srv, cli
				synack.TCP.DstPort = cport
				// A fleet connection arrives with an unparsed payload;
				// clearing the memo charges this op the parse, like the
				// first censor on a real path pays it.
				req.ClearAppView()

				c.Process(syn, netsim.ToServer, now)
				c.Process(synack, netsim.ToClient, now)
				c.Process(ack, netsim.ToServer, now)
				c.Process(req, netsim.ToServer, now)
			}
		})
	}
}
