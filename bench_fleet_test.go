// BenchmarkFleet is the deployment-harness throughput benchmark behind
// make bench-fleet / BENCH_fleet.json: a ≥500-connection mixed-country,
// mixed-protocol workload served at a ladder of worker widths. The reported
// conns/s metric is connections served per wall-clock second; comparing the
// ladder rungs shows how cell-level parallelism scales. The FleetResult
// itself is identical at every rung (TestFleetDeterminism), so only the
// timing moves.
package geneva

import (
	"fmt"
	"testing"
)

func BenchmarkFleet(b *testing.B) {
	base := Deployment{
		Countries:   []string{China, India, Iran, Kazakhstan},
		Protocols:   []string{"http", "dns", "smtp"},
		Connections: 500,
		Seed:        1,
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			d := base
			d.Workers = w
			conns := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunDeployment(d)
				if err != nil {
					b.Fatal(err)
				}
				conns += res.Connections
			}
			b.ReportMetric(float64(conns)/b.Elapsed().Seconds(), "conns/s")
		})
	}
}
