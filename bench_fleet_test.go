// BenchmarkFleet is the deployment-harness throughput benchmark behind
// make bench-fleet / BENCH_fleet.json: a 10^5-connection mixed-country,
// mixed-protocol workload served at a ladder of worker × shard widths. The
// reported conns/s metric is connections served per wall-clock second;
// comparing the ladder rungs shows how shard-level parallelism scales
// (near-linear on a multi-core host; on a single-core host the ladder is
// flat and CI only records the ratio, it does not gate on it). The
// FleetResult itself is identical at every rung (TestFleetDeterminism), so
// only the timing moves.
//
// A 10^6-connection smoke rung exists behind GENEVA_FLEET_SMOKE=1 — it is
// too slow (and too memory-hungry: ~2000 live cells) for the default run,
// but proves the harness holds its per-connection alloc budget one order of
// magnitude up. See EXPERIMENTS.md for the recipe.
package geneva

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// fleetBenchWorkload is the 10^5-connection shape: 4 censored countries ×
// 3 protocols, 16 clients per cell × 32 waves, i.e. 192 cells serving ~520
// connections each. Cell setup cost is amortized over enough waves that the
// steady-state wave loop dominates, which is what the rungs compare.
func fleetBenchWorkload() Deployment {
	return Deployment{
		Countries:      []string{China, India, Iran, Kazakhstan},
		Protocols:      []string{"http", "https", "dns"},
		Connections:    100_000,
		ClientsPerCell: 16,
		WavesPerCell:   32,
		Seed:           1,
	}
}

// fleetLongHorizonWorkload is the long-horizon rung's shape: the same
// country × protocol mix, but every connection is a keep-alive session of 3
// exchanges spaced 40 s of virtual time apart, reconnecting with backoff
// after any failure. Fewer connections than the one-shot ladder — each one
// carries ~3× the exchanges plus reconnect attempts — so the rung costs
// about as much wall-clock as a ladder rung while exercising the session
// machinery (delayed sends, tail sessions, backoff timers) at scale.
func fleetLongHorizonWorkload() Deployment {
	d := fleetBenchWorkload()
	d.Connections = 50_000
	d.SessionRequests = 3
	d.RequestGap = 40 * time.Second
	d.Reconnect = ReconnectPolicy{MaxAttempts: 3, Backoff: 50 * time.Second, RetryAll: true}
	return d
}

// fleetSelectionWorkload is the control-plane rung's shape: the one-shot
// ladder workload with a three-strategy portfolio raced by the epsilon-greedy
// bandit. Comparing its allocs/op against workers=8/shards=8 bounds the
// per-connection cost of online selection (the ≤ +2 allocs/conn budget that
// TestFleetAllocBudget enforces exactly).
func fleetSelectionWorkload() Deployment {
	d := fleetBenchWorkload()
	p, err := NewPortfolio(Strategy1.DSL, Strategy2.DSL, Strategy11.DSL)
	if err != nil {
		panic(err)
	}
	d.Portfolio = p
	d.Selection = Selection{Policy: EpsilonGreedy}
	return d
}

func BenchmarkFleet(b *testing.B) {
	base := fleetBenchWorkload()
	for _, r := range []struct{ workers, shards int }{
		{1, 1}, {2, 2}, {4, 4}, {8, 8},
	} {
		r := r
		b.Run(fmt.Sprintf("workers=%d/shards=%d", r.workers, r.shards), func(b *testing.B) {
			runFleetRung(b, base, r.workers, r.shards)
		})
	}
	b.Run("longhorizon/workers=8/shards=8", func(b *testing.B) {
		runFleetRung(b, fleetLongHorizonWorkload(), 8, 8)
	})
	b.Run("selection/workers=8/shards=8", func(b *testing.B) {
		runFleetRung(b, fleetSelectionWorkload(), 8, 8)
	})
	if os.Getenv("GENEVA_FLEET_SMOKE") != "" {
		d := base
		d.Connections = 1_000_000
		b.Run("smoke-1e6/workers=8/shards=8", func(b *testing.B) {
			runFleetRung(b, d, 8, 8)
		})
	}
}

func runFleetRung(b *testing.B, d Deployment, workers, shards int) {
	d.Workers = workers
	d.Shards = shards
	// One untimed warm-up run: the global pools (rng, router leases) and
	// the heap size ramp up on the first fleet of the process, and without
	// this the first ladder rung eats that cost and fakes a scaling ratio
	// even on a single core. The ladder compares shard scheduling only.
	if _, err := RunDeployment(d); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	// int64 so the 10^6 smoke rung at high b.N cannot overflow the served
	// counter on 32-bit hosts, and so conns/s stays exact at scale.
	var conns int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunDeployment(d)
		if err != nil {
			b.Fatal(err)
		}
		conns += int64(res.Connections)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(conns)/secs, "conns/s")
	}
}
