// Benchmarks regenerating every table and figure of the paper's evaluation.
//
// Each Table 2 cell is a sub-benchmark whose iterations are independent
// simulated connections; the reported "success_rate" metric is the cell's
// value (compare against the paper's Table 2 — the shape, not the absolute
// timing, is the point). Figures render from live traced connections.
//
//	go test -bench=. -benchmem
package geneva

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"geneva/internal/core"
	"geneva/internal/eval"
	"geneva/internal/packet"
	"geneva/internal/strategies"
)

// benchTrial runs one connection and reports success.
func benchTrial(country, proto string, strategy *core.Strategy, seed int64) bool {
	return eval.Run(eval.Config{
		Country:  country,
		Session:  eval.SessionFor(country, proto, true),
		Strategy: strategy,
		Tries:    eval.TriesFor(proto),
		Seed:     seed,
	}).Success
}

// rateBench turns b.N trials into a success_rate metric.
func rateBench(b *testing.B, country, proto string, strategy *core.Strategy) {
	b.Helper()
	succ := 0
	for i := 0; i < b.N; i++ {
		if benchTrial(country, proto, strategy, int64(i)*977+13) {
			succ++
		}
	}
	b.ReportMetric(float64(succ)/float64(b.N), "success_rate")
}

// BenchmarkTable1 exercises the Table 1 configuration: building each
// country/protocol censorship trigger session.
func BenchmarkTable1(b *testing.B) {
	countries := []string{eval.CountryChina, eval.CountryIndia, eval.CountryIran, eval.CountryKazakhstan}
	for i := 0; i < b.N; i++ {
		for _, c := range countries {
			for _, p := range eval.ChinaProtocols {
				_ = eval.SessionFor(c, p, true)
			}
		}
	}
}

// BenchmarkTable2 regenerates the paper's headline table: one sub-benchmark
// per cell, iterations = trials, metric = success rate.
func BenchmarkTable2(b *testing.B) {
	china := append([]int{0}, []int{1, 2, 3, 4, 5, 6, 7, 8}...)
	for _, num := range china {
		for _, proto := range eval.ChinaProtocols {
			num, proto := num, proto
			b.Run(fmt.Sprintf("china/%s/strategy%d", proto, num), func(b *testing.B) {
				var st *core.Strategy
				if num > 0 {
					s, _ := strategies.ByNumber(num)
					st = s.Parse()
				}
				rateBench(b, eval.CountryChina, proto, st)
			})
		}
	}
	single := []struct {
		country string
		protos  []string
		nums    []int
	}{
		{eval.CountryIndia, []string{"http"}, []int{0, 8}},
		{eval.CountryIran, []string{"http", "https"}, []int{0, 8}},
		{eval.CountryKazakhstan, []string{"http"}, []int{0, 8, 9, 10, 11}},
	}
	for _, blk := range single {
		for _, num := range blk.nums {
			for _, proto := range blk.protos {
				blk, num, proto := blk, num, proto
				b.Run(fmt.Sprintf("%s/%s/strategy%d", blk.country, proto, num), func(b *testing.B) {
					var st *core.Strategy
					if num > 0 {
						s, _ := strategies.ByNumber(num)
						st = s.Parse()
					}
					rateBench(b, blk.country, proto, st)
				})
			}
		}
	}
}

// BenchmarkFigure1 renders China waterfalls (one traced connection per
// strategy per iteration).
func BenchmarkFigure1(b *testing.B) {
	for _, s := range strategies.China() {
		s := s
		b.Run(fmt.Sprintf("strategy%d", s.Number), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = eval.Waterfall(eval.CountryChina, &s, int64(i)+1)
			}
		})
	}
}

// BenchmarkFigure2 renders the Kazakhstan waterfalls.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Figure2()
	}
}

// BenchmarkFigure3 runs the multi-box evidence: TTL localization plus the
// per-protocol heterogeneity of Strategy 5.
func BenchmarkFigure3(b *testing.B) {
	b.Run("localize-http", func(b *testing.B) {
		hop := 0
		for i := 0; i < b.N; i++ {
			hop = eval.LocalizeCensor("http", int64(i))
		}
		b.ReportMetric(float64(hop), "censor_hop")
	})
	s5, _ := strategies.ByNumber(5)
	for _, proto := range []string{"ftp", "http"} {
		proto := proto
		b.Run("strategy5-"+proto, func(b *testing.B) {
			rateBench(b, eval.CountryChina, proto, s5.Parse())
		})
	}
}

// BenchmarkSection3 evaluates the client-side-analog corpus (§3): the
// metric is the best analog's success rate, which should hover near the
// baseline.
func BenchmarkSection3(b *testing.B) {
	analogs := strategies.ClientSideAnalogs()
	parsed := make([]*core.Strategy, len(analogs))
	for i, s := range analogs {
		parsed[i] = s.Parse()
	}
	succ := 0
	for i := 0; i < b.N; i++ {
		if benchTrial(eval.CountryChina, "http", parsed[i%len(parsed)], int64(i)) {
			succ++
		}
	}
	b.ReportMetric(float64(succ)/float64(b.N), "success_rate")
}

// BenchmarkSection7 runs the full 14x17 client-compatibility matrix per
// iteration.
func BenchmarkSection7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.ClientCompatibility()
	}
}

// BenchmarkEvolve benchmarks the parallel population-evaluation engine on
// small reference training runs: one sub-benchmark per country x protocol
// reporting the fitness cache's hit rate and unique-evaluation count, plus
// a worker-scaling ladder on a fixed reference population (compare
// workers=1 vs workers=8 for the wall-clock speedup; on a multi-core host
// the 8-worker run should be at least 2x faster).
func BenchmarkEvolve(b *testing.B) {
	for _, c := range []struct{ country, proto string }{
		{eval.CountryChina, "http"},
		{eval.CountryChina, "ftp"},
		{eval.CountryKazakhstan, "http"},
		{eval.CountryIndia, "http"},
	} {
		c := c
		b.Run(c.country+"/"+c.proto, func(b *testing.B) {
			var stats eval.EvalStats
			for i := 0; i < b.N; i++ {
				_, stats, _ = eval.EvolveWithStats(eval.EvolveOptions{
					Country:       c.country,
					Protocol:      c.proto,
					Population:    24,
					Generations:   4,
					TrialsPerEval: 2,
					Seed:          17,
				})
			}
			b.ReportMetric(stats.HitRate(), "cache_hit_rate")
			b.ReportMetric(float64(stats.Misses), "unique_evals")
		})
	}
	for _, w := range []int{1, 2, 8} {
		w := w
		b.Run(fmt.Sprintf("china/http/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = eval.Evolve(eval.EvolveOptions{
					Country:       eval.CountryChina,
					Protocol:      "http",
					Population:    48,
					Generations:   3,
					TrialsPerEval: 4,
					Seed:          29,
					Workers:       w,
				})
			}
		})
	}
	// Cache ablation on the same reference run: the no-cache column is the
	// price of re-measuring elites and clones every generation.
	for _, noCache := range []bool{false, true} {
		noCache := noCache
		b.Run(fmt.Sprintf("china/http/cache=%v", !noCache), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = eval.Evolve(eval.EvolveOptions{
					Country:       eval.CountryChina,
					Protocol:      "http",
					Population:    48,
					Generations:   3,
					TrialsPerEval: 4,
					Seed:          29,
					NoCache:       noCache,
				})
			}
		})
	}
}

// BenchmarkEvolution runs a small §4.1 training round per iteration.
func BenchmarkEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = eval.Evolve(eval.EvolveOptions{
			Country:       eval.CountryKazakhstan,
			Protocol:      "http",
			Population:    30,
			Generations:   5,
			TrialsPerEval: 2,
			Seed:          int64(i),
		})
	}
}

// --- Micro-benchmarks for the substrate ---

// BenchmarkPacketMarshal measures wire serialization of a full packet.
func BenchmarkPacketMarshal(b *testing.B) {
	p := packet.New(
		netip.MustParseAddr("10.1.0.2"), netip.MustParseAddr("198.51.100.9"),
		40000, 80)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Payload = []byte("GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Wire(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketParse measures wire parsing.
func BenchmarkPacketParse(b *testing.B) {
	p := packet.New(
		netip.MustParseAddr("10.1.0.2"), netip.MustParseAddr("198.51.100.9"),
		40000, 80)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Payload = []byte("GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n")
	wire, _ := p.Wire()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := packet.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineApply measures the strategy engine on a SYN+ACK.
func BenchmarkEngineApply(b *testing.B) {
	eng := core.NewEngine(core.MustParse(strategies.Strategy6.DSL), rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := packet.New(
			netip.MustParseAddr("198.51.100.9"), netip.MustParseAddr("10.1.0.2"),
			80, 40000)
		p.TCP.Flags = packet.FlagSYN | packet.FlagACK
		_ = eng.Outbound(p)
	}
}

// BenchmarkStrategyParse measures DSL parsing.
func BenchmarkStrategyParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Parse(strategies.Strategy6.DSL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullConnection measures one complete simulated evasion attempt
// (handshake + strategy + censor + data) end to end.
func BenchmarkFullConnection(b *testing.B) {
	s1, _ := strategies.ByNumber(1)
	st := s1.Parse()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTrial(eval.CountryChina, "http", st, int64(i))
	}
}

// BenchmarkTrial is the canonical hot-path benchmark the allocation budget
// tracks (make bench-trial / BENCH_trial.json): one complete China/http
// evasion trial with Strategy 1 — serialize, impair, censor, deliver. The
// trace sub-benchmark runs the identical trial with packet tracing enabled,
// pricing the opt-in capture path against the nop default.
func BenchmarkTrial(b *testing.B) {
	s1, _ := strategies.ByNumber(1)
	st := s1.Parse()
	for _, withTrace := range []bool{false, true} {
		name := "notrace"
		if withTrace {
			name = "trace"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.Run(eval.Config{
					Country:   eval.CountryChina,
					Session:   eval.SessionFor(eval.CountryChina, "http", true),
					Strategy:  st,
					Tries:     eval.TriesFor("http"),
					Seed:      int64(i),
					WithTrace: withTrace,
				})
			}
		})
	}
}

// BenchmarkPacketRoundtrip measures the pooled serialize/parse cycle every
// simulated packet pays: Get a packet, fill it, append its wire form into a
// reused buffer, parse it back into a reused packet, and recycle both.
// Steady state this is allocation-free.
func BenchmarkPacketRoundtrip(b *testing.B) {
	src := netip.MustParseAddr("10.1.0.2")
	dst := netip.MustParseAddr("198.51.100.9")
	payload := []byte("GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n")
	buf := make([]byte, 0, 128)
	rx := packet.New(dst, src, 80, 40000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := packet.Get(src, dst, 40000, 80)
		p.TCP.Flags = packet.FlagPSH | packet.FlagACK
		p.TCP.Seq = uint32(i)
		p.TCP.Payload = append(p.TCP.Payload[:0], payload...)
		var err error
		buf, err = p.AppendWire(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := packet.ParseInto(rx, buf); err != nil {
			b.Fatal(err)
		}
		packet.Put(p)
	}
}

// BenchmarkAblations exercises the model-ablation suite (the design-choice
// benchmarks DESIGN.md calls out); the metric is the mean absolute effect
// of removing a mechanism.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := eval.Ablations(20)
		effect := 0.0
		for _, r := range rs {
			d := r.WithMechanism - r.WithoutMechanism
			if d < 0 {
				d = -d
			}
			effect += d
		}
		b.ReportMetric(effect/float64(len(rs)), "mean_effect")
	}
}
