package geneva

import (
	"math/rand"
	"testing"
)

func TestPublicParseAndEngine(t *testing.T) {
	s, err := Parse(Strategy1.DSL)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, rand.New(rand.NewSource(1)))
	if eng == nil {
		t.Fatal("nil engine")
	}
	if len(AllStrategies()) != 11 {
		t.Errorf("AllStrategies() = %d", len(AllStrategies()))
	}
}

func TestEvasionRateEndToEnd(t *testing.T) {
	base, err := EvasionRate(Simulation{
		Country: China, Protocol: "http", Trials: 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base > 0.2 {
		t.Errorf("no-evasion rate %.2f; the GFW should censor", base)
	}
	withS1, err := EvasionRate(Simulation{
		Country: China, Protocol: "http", Strategy: Strategy1.DSL,
		Trials: 80, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withS1 < 0.35 {
		t.Errorf("Strategy 1 rate %.2f; paper: ~54%%", withS1)
	}
	kz, err := EvasionRate(Simulation{
		Country: Kazakhstan, Protocol: "http", Strategy: Strategy11.DSL,
		Trials: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if kz != 1 {
		t.Errorf("Strategy 11 in Kazakhstan = %.2f, want 1", kz)
	}
}

func TestEvasionRateRejectsBadStrategy(t *testing.T) {
	if _, err := EvasionRate(Simulation{
		Country: China, Protocol: "http", Strategy: "[broken", Trials: 1,
	}); err == nil {
		t.Error("want a parse error")
	}
}

func TestEvasionRateDeterministic(t *testing.T) {
	sim := Simulation{Country: China, Protocol: "ftp", Strategy: Strategy5.DSL, Trials: 30, Seed: 9}
	a, _ := EvasionRate(sim)
	b, _ := EvasionRate(sim)
	if a != b {
		t.Errorf("same seed gave %.3f and %.3f", a, b)
	}
}

func TestPublicEvolve(t *testing.T) {
	if testing.Short() {
		t.Skip("evolution")
	}
	res := Evolve(EvolveOptions{
		Country: Kazakhstan, Protocol: "http",
		Population: 40, Generations: 10, TrialsPerEval: 2, Seed: 5,
	})
	if res.Best.Strategy == nil {
		t.Fatal("no best strategy")
	}
}

func TestPublicEvolveWithStatsAndWorkers(t *testing.T) {
	// SetWorkers caps every pool; results must not move, and the cache
	// stats must show the engine at work.
	opt := EvolveOptions{
		Country: Kazakhstan, Protocol: "http",
		Population: 12, Generations: 3, TrialsPerEval: 2, Seed: 8,
	}
	SetWorkers(1)
	narrow, nstats := EvolveWithStats(opt)
	SetWorkers(8)
	wide, wstats := EvolveWithStats(opt)
	SetWorkers(0)
	if narrow.Best.Strategy.String() != wide.Best.Strategy.String() ||
		narrow.Best.Fitness != wide.Best.Fitness {
		t.Errorf("worker width changed the result: %q (%v) vs %q (%v)",
			narrow.Best.Strategy, narrow.Best.Fitness, wide.Best.Strategy, wide.Best.Fitness)
	}
	if nstats != wstats {
		t.Errorf("worker width changed cache stats: %+v vs %+v", nstats, wstats)
	}
	if nstats.Misses == 0 || nstats.Lookups() != 12*3 {
		t.Errorf("stats = %+v; want %d lookups and nonzero computations", nstats, 12*3)
	}
}

func TestFacadeRouter(t *testing.T) {
	r := NewRouter(nil)
	if r == nil || r.Flows() != 0 {
		t.Fatal("router construction broken")
	}
}
