package geneva

import (
	"math/rand"
	"strings"
	"testing"
)

func TestPublicParseAndEngine(t *testing.T) {
	s, err := Parse(Strategy1.DSL)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, rand.New(rand.NewSource(1)))
	if eng == nil {
		t.Fatal("nil engine")
	}
	if len(AllStrategies()) != 11 {
		t.Errorf("AllStrategies() = %d", len(AllStrategies()))
	}
}

func TestEvasionRateEndToEnd(t *testing.T) {
	base, err := EvasionRate(Simulation{
		Country: China, Protocol: "http", Trials: 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base > 0.2 {
		t.Errorf("no-evasion rate %.2f; the GFW should censor", base)
	}
	withS1, err := EvasionRate(Simulation{
		Country: China, Protocol: "http", Strategy: Strategy1.DSL,
		Trials: 80, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withS1 < 0.35 {
		t.Errorf("Strategy 1 rate %.2f; paper: ~54%%", withS1)
	}
	kz, err := EvasionRate(Simulation{
		Country: Kazakhstan, Protocol: "http", Strategy: Strategy11.DSL,
		Trials: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if kz != 1 {
		t.Errorf("Strategy 11 in Kazakhstan = %.2f, want 1", kz)
	}
}

func TestEvasionRateRejectsBadStrategy(t *testing.T) {
	if _, err := EvasionRate(Simulation{
		Country: China, Protocol: "http", Strategy: "[broken", Trials: 1,
	}); err == nil {
		t.Error("want a parse error")
	}
}

func TestEvasionRateDeterministic(t *testing.T) {
	sim := Simulation{Country: China, Protocol: "ftp", Strategy: Strategy5.DSL, Trials: 30, Seed: 9}
	a, _ := EvasionRate(sim)
	b, _ := EvasionRate(sim)
	if a != b {
		t.Errorf("same seed gave %.3f and %.3f", a, b)
	}
}

func TestPublicEvolve(t *testing.T) {
	if testing.Short() {
		t.Skip("evolution")
	}
	res, err := Evolve(EvolveOptions{
		Country: Kazakhstan, Protocol: "http",
		Population: 40, Generations: 10, TrialsPerEval: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Strategy == nil {
		t.Fatal("no best strategy")
	}
}

func TestPublicEvolveWithStatsAndWorkers(t *testing.T) {
	// Per-call Workers caps the pool; results must not move, and the cache
	// stats must show the engine at work.
	opt := EvolveOptions{
		Country: Kazakhstan, Protocol: "http",
		Population: 12, Generations: 3, TrialsPerEval: 2, Seed: 8,
	}
	opt.Workers = 1
	narrow, nstats, err := EvolveWithStats(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	wide, wstats, err := EvolveWithStats(opt)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Best.Strategy.String() != wide.Best.Strategy.String() ||
		narrow.Best.Fitness != wide.Best.Fitness {
		t.Errorf("worker width changed the result: %q (%v) vs %q (%v)",
			narrow.Best.Strategy, narrow.Best.Fitness, wide.Best.Strategy, wide.Best.Fitness)
	}
	if nstats != wstats {
		t.Errorf("worker width changed cache stats: %+v vs %+v", nstats, wstats)
	}
	if nstats.Misses == 0 || nstats.Lookups() != 12*3 {
		t.Errorf("stats = %+v; want %d lookups and nonzero computations", nstats, 12*3)
	}
}

func TestFacadeRouter(t *testing.T) {
	r := NewRouter(nil)
	if r == nil || r.Flows() != 0 {
		t.Fatal("router construction broken")
	}
}

// TestWorkersWidthInvariance replaces the removed SetWorkers shim's test:
// the per-call Workers knob must not move results at any width.
func TestWorkersWidthInvariance(t *testing.T) {
	sim := Simulation{Country: Kazakhstan, Protocol: "http", Strategy: Strategy11.DSL, Trials: 6, Seed: 3}
	sim.Workers = 3
	a, err := EvasionRate(sim)
	if err != nil {
		t.Fatal(err)
	}
	sim.Workers = 0
	b, err := EvasionRate(sim)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("worker width changed the result: %.3f vs %.3f", a, b)
	}
}

// TestRunStructuredResult: Run must return counts that cohere with each
// other and a manifest carrying the run's config.
func TestRunStructuredResult(t *testing.T) {
	res, err := Run(Simulation{
		Country: China, Protocol: "http", Strategy: Strategy1.DSL,
		Trials: 40, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 40 {
		t.Errorf("Trials = %d, want 40", res.Trials)
	}
	if res.Succeeded > res.Trials || res.Succeeded > res.Established {
		t.Errorf("incoherent counts: %+v", res)
	}
	if got := float64(res.Succeeded) / float64(res.Trials); res.Rate != got {
		t.Errorf("Rate = %v, want Succeeded/Trials = %v", res.Rate, got)
	}
	if res.Attempts < res.Trials {
		t.Errorf("Attempts = %d < Trials = %d", res.Attempts, res.Trials)
	}
	if res.Manifest.Schema != "geneva-run-manifest/v1" {
		t.Errorf("manifest schema = %q", res.Manifest.Schema)
	}
	if res.Manifest.Config["country"] != China || res.Manifest.Config["trials"] != "40" {
		t.Errorf("manifest config = %v", res.Manifest.Config)
	}
	// EvasionRate is Run reduced to one number.
	rate, err := EvasionRate(Simulation{
		Country: China, Protocol: "http", Strategy: Strategy1.DSL,
		Trials: 40, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rate != res.Rate {
		t.Errorf("EvasionRate %v != Run().Rate %v", rate, res.Rate)
	}
}

// TestRunRejectsUnknownCountryAndProtocol is the validation regression:
// before the redesign these inputs panicked deep inside the eval harness;
// now they must surface as descriptive errors naming the valid values.
func TestRunRejectsUnknownCountryAndProtocol(t *testing.T) {
	if _, err := Run(Simulation{Country: "narnia", Protocol: "http", Trials: 1}); err == nil {
		t.Error("unknown country: want error, got nil")
	} else if s := err.Error(); !strings.Contains(s, "narnia") || !strings.Contains(s, China) {
		t.Errorf("error should name the bad country and the valid ones: %v", err)
	}
	if _, err := Run(Simulation{Country: China, Protocol: "telnet", Trials: 1}); err == nil {
		t.Error("unknown protocol: want error, got nil")
	} else if s := err.Error(); !strings.Contains(s, "telnet") || !strings.Contains(s, "https") {
		t.Errorf("error should name the bad protocol and the valid ones: %v", err)
	}
	if _, err := EvasionRate(Simulation{Country: "narnia", Protocol: "http", Trials: 1}); err == nil {
		t.Error("EvasionRate with unknown country: want error, got nil")
	}
	if _, err := RunDeployment(Deployment{Countries: []string{"narnia"}, Connections: 1}); err == nil {
		t.Error("RunDeployment with unknown country: want error, got nil")
	}
}
