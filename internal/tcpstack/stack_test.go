package tcpstack

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"

	"geneva/internal/netsim"
	"geneva/internal/packet"
)

var (
	clientAddr = netip.MustParseAddr("10.1.0.2")
	serverAddr = netip.MustParseAddr("198.51.100.9")
)

// testApp is a scriptable application for both ends.
type testApp struct {
	request     []byte // sent by the client when established
	response    []byte // sent by the server upon receiving any data
	closeAfter  bool   // close after sending the response
	established bool
	data        []byte
	closed      bool
	reset       bool
}

func (a *testApp) OnEstablished(c *Conn) {
	a.established = true
	if len(a.request) > 0 {
		c.Send(a.request)
	}
}

func (a *testApp) OnData(c *Conn, d []byte) {
	a.data = append(a.data, d...)
	if len(a.response) > 0 {
		c.Send(a.response)
		a.response = nil
		if a.closeAfter {
			c.Close()
		}
	}
}

func (a *testApp) OnClose(c *Conn, reset bool) { a.closed, a.reset = true, a.reset || reset }

// rig builds a client/server pair on a fresh network.
func rig(t *testing.T, clientOS Personality, serverApp func(*Conn) App) (*Endpoint, *Endpoint, *netsim.Network) {
	t.Helper()
	client := NewEndpoint(clientAddr, clientOS, rand.New(rand.NewSource(1)))
	server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(2)))
	server.NewServerApp = serverApp
	server.Listen(80)
	n := netsim.New(client, server)
	client.Attach(n)
	server.Attach(n)
	return client, server, n
}

func TestThreeWayHandshakeAndEcho(t *testing.T) {
	srvApp := &testApp{response: []byte("HTTP/1.1 200 OK\r\n\r\nhello"), closeAfter: true}
	client, server, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	cliApp := &testApp{request: []byte("GET / HTTP/1.1\r\n\r\n")}
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !cliApp.established || !srvApp.established {
		t.Fatal("handshake did not complete")
	}
	if !bytes.Equal(srvApp.data, cliApp.request) {
		t.Errorf("server got %q", srvApp.data)
	}
	if !bytes.Equal(cliApp.data, []byte("HTTP/1.1 200 OK\r\n\r\nhello")) {
		t.Errorf("client got %q", cliApp.data)
	}
	if conn.ResetReceived {
		t.Error("unexpected reset")
	}
	if conn.SimOpen {
		t.Error("normal handshake flagged as simultaneous open")
	}
	_ = server
}

// synAckTransform rewrites the server's SYN+ACK via fn, leaving other
// packets untouched — a hand-rolled stand-in for the Geneva engine.
func synAckTransform(fn func(*packet.Packet) []*packet.Packet) func(*packet.Packet) []*packet.Packet {
	return func(p *packet.Packet) []*packet.Packet {
		if p.TCP.Flags == packet.FlagSYN|packet.FlagACK {
			return fn(p)
		}
		return []*packet.Packet{p}
	}
}

func TestSimultaneousOpenViaServerSyn(t *testing.T) {
	// Server's SYN+ACK replaced by a bare SYN: the client must perform
	// simultaneous open and the connection must still work (Strategy 1's
	// client-side half).
	srvApp := &testApp{response: []byte("resp")}
	client, server, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	server.Outbound = synAckTransform(func(p *packet.Packet) []*packet.Packet {
		syn := p.Clone()
		syn.TCP.Flags = packet.FlagSYN
		syn.TCP.Ack = 0
		return []*packet.Packet{syn}
	})
	cliApp := &testApp{request: []byte("query")}
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !conn.SimOpen {
		t.Fatal("client did not enter simultaneous open")
	}
	if !cliApp.established {
		t.Fatal("handshake did not complete")
	}
	if !bytes.Equal(srvApp.data, []byte("query")) {
		t.Errorf("server got %q", srvApp.data)
	}
	if !bytes.Equal(cliApp.data, []byte("resp")) {
		t.Errorf("client got %q", cliApp.data)
	}
}

func TestSimOpenSynAckReusesISS(t *testing.T) {
	// The client's simultaneous-open SYN+ACK must carry seq == ISS of its
	// original SYN (not ISS+1): the GFW bug depends on it.
	var clientSyn, clientSynAck *packet.Packet
	client := NewEndpoint(clientAddr, DefaultClient, rand.New(rand.NewSource(3)))
	server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(4)))
	server.NewServerApp = func(*Conn) App { return &testApp{} }
	server.Listen(80)
	client.Outbound = func(p *packet.Packet) []*packet.Packet {
		switch p.TCP.Flags {
		case packet.FlagSYN:
			clientSyn = p.Clone()
		case packet.FlagSYN | packet.FlagACK:
			clientSynAck = p.Clone()
		}
		return []*packet.Packet{p}
	}
	server.Outbound = synAckTransform(func(p *packet.Packet) []*packet.Packet {
		syn := p.Clone()
		syn.TCP.Flags = packet.FlagSYN
		syn.TCP.Ack = 0
		return []*packet.Packet{syn}
	})
	n := netsim.New(client, server)
	client.Attach(n)
	server.Attach(n)
	client.Connect(serverAddr, 80, &testApp{request: []byte("q")})
	n.Run(0)
	if clientSyn == nil || clientSynAck == nil {
		t.Fatal("missing handshake packets")
	}
	if clientSynAck.TCP.Seq != clientSyn.TCP.Seq {
		t.Errorf("sim-open SYN+ACK seq = %d, want ISS %d (unincremented)",
			clientSynAck.TCP.Seq, clientSyn.TCP.Seq)
	}
}

func TestRstWithoutAckIgnoredInSynSent(t *testing.T) {
	// Strategy 1's injected RST: a bare RST before the handshake must be
	// ignored by the client.
	srvApp := &testApp{response: []byte("ok")}
	client, server, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	server.Outbound = synAckTransform(func(p *packet.Packet) []*packet.Packet {
		rst := p.Clone()
		rst.TCP.Flags = packet.FlagRST
		return []*packet.Packet{rst, p}
	})
	cliApp := &testApp{request: []byte("q")}
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if conn.ResetReceived {
		t.Fatal("bare RST reset a SYN-SENT connection; modern stacks ignore it")
	}
	if !bytes.Equal(cliApp.data, []byte("ok")) {
		t.Errorf("client got %q", cliApp.data)
	}
}

func TestRstWithValidAckResetsSynSent(t *testing.T) {
	client, server, n := rig(t, DefaultClient, func(*Conn) App { return &testApp{} })
	server.Outbound = synAckTransform(func(p *packet.Packet) []*packet.Packet {
		rst := p.Clone()
		rst.TCP.Flags = packet.FlagRST | packet.FlagACK // valid ack: refused
		return []*packet.Packet{rst}
	})
	cliApp := &testApp{request: []byte("q")}
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !conn.ResetReceived || !cliApp.closed {
		t.Error("RST+ACK with acceptable ack must reset a SYN-SENT connection")
	}
}

func TestCorruptAckInducesRstAndStaysSynSent(t *testing.T) {
	// Strategies 3-7: a SYN+ACK with a bogus ack number induces a client
	// RST carrying seq == the bogus ack, and the client stays in SYN-SENT
	// so a later correct SYN+ACK completes the handshake.
	var induced []*packet.Packet
	srvApp := &testApp{response: []byte("ok")}
	client, server, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	const bogus = 0x42424242
	client.Outbound = func(p *packet.Packet) []*packet.Packet {
		if p.TCP.Flags == packet.FlagRST {
			induced = append(induced, p.Clone())
		}
		return []*packet.Packet{p}
	}
	server.Outbound = synAckTransform(func(p *packet.Packet) []*packet.Packet {
		bad := p.Clone()
		bad.TCP.Ack = bogus
		return []*packet.Packet{bad, p}
	})
	cliApp := &testApp{request: []byte("q")}
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if len(induced) != 1 {
		t.Fatalf("induced %d RSTs, want 1", len(induced))
	}
	if induced[0].TCP.Seq != bogus {
		t.Errorf("induced RST seq = %#x, want the bogus ack %#x", induced[0].TCP.Seq, bogus)
	}
	if conn.ResetReceived {
		t.Error("connection reset; client should have stayed in SYN-SENT")
	}
	if !bytes.Equal(cliApp.data, []byte("ok")) {
		t.Errorf("client got %q, handshake should have completed", cliApp.data)
	}
}

func TestSynAckPayloadIgnoredByLinuxAcceptedByWindows(t *testing.T) {
	for _, tc := range []struct {
		os        Personality
		wantClean bool
	}{
		{Ubuntu1804, true},
		{CentOS7, true},
		{Android10, true},
		{IOS133, true},
		{Windows10, false},
		{MacOS1015, false},
	} {
		srvApp := &testApp{response: []byte("real data")}
		client, server, n := rig(t, tc.os, func(*Conn) App { return srvApp })
		server.Outbound = synAckTransform(func(p *packet.Packet) []*packet.Packet {
			withLoad := p.Clone()
			withLoad.TCP.Payload = []byte{0xde, 0xad}
			return []*packet.Packet{withLoad}
		})
		cliApp := &testApp{request: []byte("q")}
		client.Connect(serverAddr, 80, cliApp)
		n.Run(0)
		clean := bytes.Equal(cliApp.data, []byte("real data"))
		if clean != tc.wantClean {
			t.Errorf("%s: clean=%v want %v (got %q)", tc.os.Name, clean, tc.wantClean, cliApp.data)
		}
	}
}

func TestChecksumCorruptedPacketDropped(t *testing.T) {
	// An insertion packet (RawChecksum set) must be invisible to clients.
	srvApp := &testApp{response: []byte("real data")}
	client, server, n := rig(t, Windows10, func(*Conn) App { return srvApp })
	server.Outbound = synAckTransform(func(p *packet.Packet) []*packet.Packet {
		ins := p.Clone()
		ins.TCP.Payload = []byte("garbage")
		ins.TCP.Checksum = 0xbad
		ins.TCP.RawChecksum = true
		return []*packet.Packet{ins, p}
	})
	cliApp := &testApp{request: []byte("q")}
	client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !bytes.Equal(cliApp.data, []byte("real data")) {
		t.Errorf("client got %q; insertion packet leaked into the stream", cliApp.data)
	}
}

func TestWindowReductionForcesSegmentation(t *testing.T) {
	// Strategy 8: shrinking the SYN+ACK window to 10 and stripping wscale
	// makes the client split its request across >= 2 segments.
	var segs [][]byte
	srvApp := &testApp{response: []byte("ok")}
	client, server, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	client.Outbound = func(p *packet.Packet) []*packet.Packet {
		if len(p.TCP.Payload) > 0 {
			segs = append(segs, append([]byte(nil), p.TCP.Payload...))
		}
		return []*packet.Packet{p}
	}
	server.Outbound = synAckTransform(func(p *packet.Packet) []*packet.Packet {
		small := p.Clone()
		small.TCP.Window = 10
		small.TCP.RemoveOption(packet.OptWScale)
		return []*packet.Packet{small}
	})
	req := []byte("GET /?q=ultrasurf HTTP/1.1\r\n\r\n")
	cliApp := &testApp{request: req}
	client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if len(segs) < 2 {
		t.Fatalf("request sent in %d segment(s), want segmentation", len(segs))
	}
	if len(segs[0]) != 10 {
		t.Errorf("first segment %d bytes, want 10", len(segs[0]))
	}
	if !bytes.Equal(bytes.Join(segs, nil), req) {
		t.Errorf("reassembled request %q", bytes.Join(segs, nil))
	}
	if !bytes.Equal(srvApp.data, req) {
		t.Errorf("server reassembled %q", srvApp.data)
	}
}

func TestDesyncedRstIgnoredInEstablished(t *testing.T) {
	srvApp := &testApp{}
	client, _, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	cliApp := &testApp{request: []byte("q")}
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if conn.State() != StateEstablished {
		t.Fatal("not established")
	}
	// A RST with a garbage sequence number (desynchronized censor).
	rst := packet.New(serverAddr, clientAddr, 80, conn.Flow().SrcPort)
	rst.TCP.Flags = packet.FlagRST
	rst.TCP.Seq = conn.rcvNxt + 1<<20
	n.Inject(rst, netsim.ToClient)
	n.Run(0)
	if conn.ResetReceived {
		t.Error("out-of-window RST reset the connection")
	}
	// A RST with the correct sequence number must reset.
	rst2 := packet.New(serverAddr, clientAddr, 80, conn.Flow().SrcPort)
	rst2.TCP.Flags = packet.FlagRST
	rst2.TCP.Seq = conn.rcvNxt
	n.Inject(rst2, netsim.ToClient)
	n.Run(0)
	if !conn.ResetReceived {
		t.Error("in-window RST did not reset the connection")
	}
}

func TestFinClose(t *testing.T) {
	srvApp := &testApp{response: []byte("bye"), closeAfter: true}
	client, _, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	cliApp := &testApp{request: []byte("q")}
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !cliApp.closed {
		t.Error("client app did not observe the close")
	}
	if cliApp.reset {
		t.Error("orderly close reported as reset")
	}
	if !bytes.Equal(cliApp.data, []byte("bye")) {
		t.Errorf("client got %q", cliApp.data)
	}
	if conn.ResetReceived {
		t.Error("ResetReceived on orderly close")
	}
}

func TestLargeTransferSegmentsByMSS(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 5000)
	srvApp := &testApp{response: big}
	client, server, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	var segSizes []int
	server.Outbound = func(p *packet.Packet) []*packet.Packet {
		if len(p.TCP.Payload) > 0 {
			segSizes = append(segSizes, len(p.TCP.Payload))
		}
		return []*packet.Packet{p}
	}
	cliApp := &testApp{request: []byte("gimme")}
	client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !bytes.Equal(cliApp.data, big) {
		t.Fatalf("client got %d bytes, want %d", len(cliApp.data), len(big))
	}
	for _, s := range segSizes {
		if s > 1460 {
			t.Errorf("segment of %d bytes exceeds MSS", s)
		}
	}
	if len(segSizes) < 4 {
		t.Errorf("5000 bytes went out in %d segments", len(segSizes))
	}
}

func TestDuplicateSynGetsSynAckAgain(t *testing.T) {
	client := NewEndpoint(clientAddr, DefaultClient, rand.New(rand.NewSource(5)))
	server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(6)))
	server.NewServerApp = func(*Conn) App { return &testApp{} }
	server.Listen(80)
	n := netsim.New(client, server)
	client.Attach(n)
	server.Attach(n)
	synAcks := 0
	server.Outbound = func(p *packet.Packet) []*packet.Packet {
		if p.TCP.Flags == packet.FlagSYN|packet.FlagACK {
			synAcks++
		}
		return []*packet.Packet{p}
	}
	syn := packet.New(clientAddr, serverAddr, 40000, 80)
	syn.TCP.Flags = packet.FlagSYN
	syn.TCP.Seq = 123
	n.Send(client, syn.Clone())
	n.Run(0)
	n.Send(client, syn.Clone()) // duplicate
	n.Run(0)
	if synAcks != 2 {
		t.Errorf("SYN+ACKs sent = %d, want 2 (retransmit on duplicate SYN)", synAcks)
	}
}

func TestOutboundHookDropAndDuplicate(t *testing.T) {
	// The hook contract: returning nil drops; returning two sends two.
	srvApp := &testApp{}
	client, server, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	sent := 0
	server.Outbound = func(p *packet.Packet) []*packet.Packet {
		if p.TCP.Flags == packet.FlagSYN|packet.FlagACK {
			sent++
			return []*packet.Packet{p.Clone(), p}
		}
		return []*packet.Packet{p}
	}
	cliApp := &testApp{request: []byte("q")}
	client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !cliApp.established {
		t.Error("duplicated SYN+ACK broke the handshake")
	}
	if sent != 1 {
		t.Errorf("hook saw %d SYN+ACKs", sent)
	}
}

func TestSeventeenPersonalitiesHandshake(t *testing.T) {
	for _, os := range AllPersonalities {
		srvApp := &testApp{response: []byte("data")}
		client, _, n := rig(t, os, func(*Conn) App { return srvApp })
		cliApp := &testApp{request: []byte("req")}
		client.Connect(serverAddr, 80, cliApp)
		n.Run(0)
		if !bytes.Equal(cliApp.data, []byte("data")) {
			t.Errorf("%s: plain connection failed (got %q)", os.Name, cliApp.data)
		}
	}
}
