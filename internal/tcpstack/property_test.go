package tcpstack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// TestTransferIntegrityProperty: whatever the transfer sizes, the advertised
// windows, and the MSS clamping, every byte the applications send arrives
// intact and in order when nothing drops packets.
func TestTransferIntegrityProperty(t *testing.T) {
	f := func(seed int64, reqLen, respLen uint16, clampWindow uint16, clampMSS uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		req := make([]byte, int(reqLen)%4096+1)
		resp := make([]byte, int(respLen)%4096+1)
		rng.Read(req)
		rng.Read(resp)

		srvApp := &testApp{response: resp}
		client := NewEndpoint(clientAddr, DefaultClient, rand.New(rand.NewSource(seed)))
		server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(seed+1)))
		server.NewServerApp = func(*Conn) App { return srvApp }
		server.Listen(80)
		// A strategy-like SYN+ACK mangler that clamps window and/or MSS.
		server.Outbound = func(p *packet.Packet) []*packet.Packet {
			if p.TCP.Flags == packet.FlagSYN|packet.FlagACK {
				if clampWindow%3 == 0 {
					p.TCP.Window = clampWindow%64 + 4 // tiny windows
					p.TCP.RemoveOption(packet.OptWScale)
				}
				if clampMSS%3 == 0 {
					mss := clampMSS%128 + 8
					p.TCP.SetOption(packet.OptMSS, []byte{byte(mss >> 8), byte(mss)})
				}
			}
			return []*packet.Packet{p}
		}
		n := netsim.New(client, server)
		client.Attach(n)
		server.Attach(n)
		cliApp := &testApp{request: req}
		client.Connect(serverAddr, 80, cliApp)
		n.Run(0)
		return bytes.Equal(srvApp.data, req) && bytes.Equal(cliApp.data, resp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStackIgnoresArbitraryGarbageProperty: random packets injected into an
// established connection never corrupt the stream or panic; only a
// correctly-numbered RST may abort it.
func TestStackIgnoresArbitraryGarbageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		srvApp := &testApp{response: []byte("the real response body")}
		client := NewEndpoint(clientAddr, DefaultClient, rand.New(rand.NewSource(seed)))
		server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(seed+1)))
		server.NewServerApp = func(*Conn) App { return srvApp }
		server.Listen(80)
		n := netsim.New(client, server)
		client.Attach(n)
		server.Attach(n)
		cliApp := &testApp{request: []byte("request")}
		conn := client.Connect(serverAddr, 80, cliApp)
		n.Run(0)
		if !cliApp.established {
			return false
		}
		// Garbage flood toward the client on the same flow, but with
		// random (out-of-window) numbers.
		for i := 0; i < 30; i++ {
			g := packet.New(serverAddr, clientAddr, 80, conn.Flow().SrcPort)
			g.TCP.Flags = uint8(rng.Intn(64))
			g.TCP.Seq = conn.rcvNxt + 1<<16 + rng.Uint32()%(1<<30)
			g.TCP.Ack = rng.Uint32()
			payload := make([]byte, rng.Intn(64))
			rng.Read(payload)
			g.TCP.Payload = payload
			n.Inject(g, netsim.ToClient)
		}
		n.Run(0)
		// The delivered stream must be exactly the real response.
		return bytes.Equal(cliApp.data, []byte("the real response body"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSimOpenWorksForAllPersonalities: simultaneous open (the heart of
// Strategies 1-3) must complete on every OS the paper tested.
func TestSimOpenWorksForAllPersonalities(t *testing.T) {
	for _, os := range AllPersonalities {
		srvApp := &testApp{response: []byte("ok")}
		client := NewEndpoint(clientAddr, os, rand.New(rand.NewSource(1)))
		server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(2)))
		server.NewServerApp = func(*Conn) App { return srvApp }
		server.Listen(80)
		server.Outbound = func(p *packet.Packet) []*packet.Packet {
			if p.TCP.Flags == packet.FlagSYN|packet.FlagACK {
				syn := p.Clone()
				syn.TCP.Flags = packet.FlagSYN
				syn.TCP.Ack = 0
				return []*packet.Packet{syn}
			}
			return []*packet.Packet{p}
		}
		n := netsim.New(client, server)
		client.Attach(n)
		server.Attach(n)
		cliApp := &testApp{request: []byte("q")}
		conn := client.Connect(serverAddr, 80, cliApp)
		n.Run(0)
		if !conn.SimOpen || !bytes.Equal(cliApp.data, []byte("ok")) {
			t.Errorf("%s: simultaneous open failed (simOpen=%v got=%q)",
				os.Name, conn.SimOpen, cliApp.data)
		}
	}
}
