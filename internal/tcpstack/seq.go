package tcpstack

// Sequence-space arithmetic (RFC 793 §3.3). TCP sequence numbers live on a
// 2^32 ring, so ordinary integer comparison breaks the moment a connection's
// numbers cross zero — an ISN near 0xFFFFFFF0 wraps within the first few
// segments. All ordering questions must go through the signed-difference
// idiom below, which is correct whenever the two numbers are within 2^31 of
// each other (guaranteed here: windows are < 2^30 even fully scaled).
//
// Every sequence comparison in the package routes through these helpers;
// raw <, <=, > or >= between sequence numbers is a bug.

// seqLT reports a < b in sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in sequence space.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// seqGT reports a > b in sequence space.
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }

// seqGEQ reports a >= b in sequence space.
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// seqInWindow reports whether seq lies within [lo, lo+wnd) modulo 2^32 —
// the acceptance check applied to RSTs in synchronized states. The unsigned
// difference is exact for any wnd, including across the wrap.
func seqInWindow(seq, lo, wnd uint32) bool {
	return seq-lo < wnd
}

// ackAcceptable reports una <= ack <= nxt in sequence space: the RFC 793
// acceptability test for an incoming ACK, phrased as distances from una so
// it holds across the 2^32 wrap.
func ackAcceptable(una, ack, nxt uint32) bool {
	return ack-una <= nxt-una
}
