package tcpstack

import (
	"math/rand"
	"net/netip"

	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// Endpoint is a host with a TCP stack. It implements netsim.Host and owns
// any number of connections. The same type serves as client and server; the
// paper's server-side Geneva engine attaches via the Outbound hook, exactly
// where NFQueue sits on a real deployment.
type Endpoint struct {
	// OS selects the endpoint's TCP personality.
	OS Personality
	// NewServerApp builds the application for each passively accepted
	// connection. Required to Listen.
	NewServerApp func(*Conn) App
	// Outbound, if set, transforms every packet the stack emits into zero
	// or more packets to place on the wire. This is the Geneva engine's
	// attachment point (and the harness's client-instrumentation hook for
	// the §5 follow-up experiments).
	Outbound func(*packet.Packet) []*packet.Packet
	// Retransmit arms RTO-driven retransmission for sequence-consuming
	// segments. The zero value disables it — required on a lossless
	// network to keep historical packet traces byte-identical.
	Retransmit RetransmitPolicy
	// ReleaseClosed opts the endpoint into connection recycling: a
	// connection is removed from the table the moment it finishes (clean
	// close or reset) and its struct — with the send/receive buffer
	// capacity it grew — goes on a freelist for the next Connect or accept.
	// Off by default: harnesses that inspect Conns() after a run (most
	// tests) need finished connections to stay visible. The fleet harness
	// turns it on so long multi-wave cells don't accrete one Conn per
	// connection ever served.
	ReleaseClosed bool

	addr      netip.Addr
	rng       *rand.Rand
	net       *netsim.Network
	conns     map[packet.Flow]*Conn
	listeners map[uint16]bool
	free      []*Conn
	nextPort  uint16
}

// NewEndpoint builds an endpoint at addr with the given personality. The
// rng drives ISN and ephemeral-port choice so trials are reproducible.
func NewEndpoint(addr netip.Addr, os Personality, rng *rand.Rand) *Endpoint {
	return &Endpoint{
		OS:       os,
		addr:     addr,
		rng:      rng,
		conns:    make(map[packet.Flow]*Conn, 1),
		nextPort: uint16(32768 + rng.Intn(16384)),
	}
}

// Addr implements netsim.Host.
func (e *Endpoint) Addr() netip.Addr { return e.addr }

// Attach wires the endpoint to a network. Connect and transmit require it;
// Receive self-attaches.
func (e *Endpoint) Attach(n *netsim.Network) { e.net = n }

// Listen accepts connections on port; NewServerApp must be set. The
// listener table is lazy — client endpoints never pay for it.
func (e *Endpoint) Listen(port uint16) {
	if e.listeners == nil {
		e.listeners = make(map[uint16]bool, 1)
	}
	e.listeners[port] = true
}

// Conns returns the endpoint's connection table (for inspection in tests).
func (e *Endpoint) Conns() map[packet.Flow]*Conn { return e.conns }

// Connect opens an active connection to raddr:rport running app and returns
// it. Packets begin to flow on the next Network.Run.
//
// The ephemeral port is the next free one after nextPort. A bare increment
// worked only while no endpoint lived long enough to wrap the uint16: after
// ~33k connects the counter wraps past 65535 into port 0 (not a valid
// source port) and on through the listener/low-port range, where it would
// silently overwrite a live connection's table entry — orphaning that
// connection — or shadow a listening port. Long-horizon reconnect churn
// hits all three, so the port walk skips them.
func (e *Endpoint) Connect(raddr netip.Addr, rport uint16, app App) *Conn {
	c := e.getConn()
	c.app = app
	c.flow = packet.Flow{
		SrcAddr: e.addr,
		DstAddr: raddr, DstPort: rport,
	}
	for tries := 0; ; tries++ {
		if tries > 65536 {
			panic("tcpstack: no free ephemeral port on endpoint " + e.addr.String())
		}
		e.nextPort++
		if e.nextPort == 0 || e.listeners[e.nextPort] {
			continue
		}
		c.flow.SrcPort = e.nextPort
		if _, live := e.conns[c.flow]; !live {
			break
		}
	}
	c.state = StateSynSent
	c.iss = e.rng.Uint32()
	e.conns[c.flow] = c
	c.sendSyn()
	return c
}

// getConn takes a connection struct from the freelist (ReleaseClosed
// endpoints) or allocates one. Recycled structs come back field-zeroed
// except for the buffer capacities and the retransmission generation (see
// recycleConn).
func (e *Endpoint) getConn() *Conn {
	if n := len(e.free); n > 0 {
		c := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		c.closed = false
		return c
	}
	return &Conn{ep: e}
}

// recycleConn retires a finished connection: it leaves the table
// immediately (exactly as if it had never existed — a packet to a closed
// connection and a packet to no connection are both ignored) and its struct
// goes on the freelist. Buffer capacity is kept; rtxGen is preserved, NOT
// zeroed, because retransmission timer closures in flight captured this
// *Conn and an old generation — the generation must keep monotonically
// increasing across reuses for those stale closures to stay invalidated.
func (e *Endpoint) recycleConn(c *Conn) {
	delete(e.conns, c.flow)
	gen := c.rtxGen
	appGen := c.appGen
	sendQ := c.sendQ[:0]
	received := c.received[:0]
	*c = Conn{ep: e, state: StateClosed, closed: true, rtxGen: gen, appGen: appGen, sendQ: sendQ, received: received}
	e.free = append(e.free, c)
}

// transmit routes a stack-generated packet through the Outbound hook onto
// the network. Ownership of p (and of every packet the hook returns) passes
// to the network, which may recycle them after delivery; hooks that keep a
// packet beyond their return must Clone it.
func (e *Endpoint) transmit(p *packet.Packet) {
	mSegmentsSent.Inc()
	if e.Outbound == nil {
		e.net.Send(e, p)
		return
	}
	for _, out := range e.Outbound(p) {
		if out != nil {
			e.net.Send(e, out)
		}
	}
}

// Receive implements netsim.Host: it validates the checksum markers, finds
// or creates the owning connection, and advances its state machine.
func (e *Endpoint) Receive(n *netsim.Network, pkt *packet.Packet) {
	e.net = n
	// Endpoints drop segments with corrupted checksums. The simulator
	// marks deliberate corruption with the Raw flags rather than
	// re-serializing every packet; censors (which do not validate
	// checksums) ignore the marker. This is what makes "insertion
	// packets" client-invisible but censor-visible (§7).
	if pkt.TCP.RawChecksum || pkt.IP.RawChecksum {
		mChecksumDrop.Inc()
		return
	}
	mSegmentsRcvd.Inc()
	flow := packet.Flow{
		SrcAddr: e.addr, SrcPort: pkt.TCP.DstPort,
		DstAddr: pkt.IP.Src, DstPort: pkt.TCP.SrcPort,
	}
	if c, ok := e.conns[flow]; ok {
		c.handlePacket(pkt)
		return
	}
	// No connection: maybe a listener accepts it.
	if e.listeners[pkt.TCP.DstPort] &&
		pkt.TCP.Flags&packet.FlagSYN != 0 &&
		pkt.TCP.Flags&(packet.FlagACK|packet.FlagRST) == 0 {
		c := e.getConn()
		c.flow = flow
		c.state = StateListen
		c.iss = e.rng.Uint32()
		if e.NewServerApp != nil {
			c.app = e.NewServerApp(c)
		}
		e.conns[flow] = c
		c.handlePacket(pkt)
	}
	// Anything else is silently ignored (no RFC 1122 RST generation:
	// closed-port probes are not part of any experiment).
}
