package tcpstack

import (
	"bytes"
	"math/rand"
	"testing"

	"geneva/internal/netsim"
)

// closerApp requests data and then actively closes the connection.
type closerApp struct {
	testApp
	conn *Conn
}

func (a *closerApp) OnData(c *Conn, d []byte) {
	a.testApp.OnData(c, d)
	c.Close() // active close from the client side
}

func TestClientInitiatedClose(t *testing.T) {
	srvApp := &testApp{response: []byte("payload")}
	client, _, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	app := &closerApp{testApp: testApp{request: []byte("req")}}
	conn := client.Connect(serverAddr, 80, app)
	app.conn = conn
	n.Run(0)
	if !bytes.Equal(app.data, []byte("payload")) {
		t.Fatalf("client got %q", app.data)
	}
	// After Close the client moves through FIN_WAIT; the server ACKs the
	// FIN. No reset anywhere.
	if conn.ResetReceived {
		t.Error("active close caused a reset")
	}
	if st := conn.State(); st != StateFinWait1 && st != StateFinWait2 &&
		st != StateTimeWait && st != StateClosed {
		t.Errorf("client state after close = %s", st)
	}
}

func TestCloseBeforeEstablishAborts(t *testing.T) {
	client := NewEndpoint(clientAddr, DefaultClient, rand.New(rand.NewSource(1)))
	server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(2)))
	server.NewServerApp = func(*Conn) App { return &testApp{} }
	server.Listen(80)
	n := netsim.New(client, server)
	client.Attach(n)
	server.Attach(n)
	app := &testApp{}
	conn := client.Connect(serverAddr, 80, app)
	conn.Close() // close while still SYN_SENT
	if conn.State() != StateClosed {
		t.Errorf("state = %s, want CLOSED", conn.State())
	}
	if !app.closed {
		t.Error("OnClose not fired")
	}
}

func TestServerCloseThenClientClose(t *testing.T) {
	// Server responds and closes (FIN); client receives everything and
	// its app observes the orderly close.
	srvApp := &testApp{response: []byte("all of it"), closeAfter: true}
	client, server, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	app := &testApp{request: []byte("req")}
	client.Connect(serverAddr, 80, app)
	n.Run(0)
	if !app.closed || app.reset {
		t.Errorf("client close state: closed=%v reset=%v", app.closed, app.reset)
	}
	// The server's connection reached LAST_ACK or closed after the
	// client's ACK of its FIN.
	for _, c := range server.Conns() {
		if st := c.State(); st != StateFinWait1 && st != StateFinWait2 &&
			st != StateClosed && st != StateTimeWait {
			t.Errorf("server conn state = %s", st)
		}
	}
}

func TestDataAfterFinIgnored(t *testing.T) {
	srvApp := &testApp{response: []byte("done"), closeAfter: true}
	client, _, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	app := &testApp{request: []byte("req")}
	conn := client.Connect(serverAddr, 80, app)
	n.Run(0)
	before := len(app.data)
	// Stray data after the FIN exchange must not reach the application.
	conn.handlePacketForTest(t)
	if len(app.data) != before {
		t.Error("post-FIN data reached the application")
	}
}

// handlePacketForTest injects a stale data segment directly.
func (c *Conn) handlePacketForTest(t *testing.T) {
	t.Helper()
	p := c.newPacket(0x18) // PSH|ACK
	p.TCP.Seq = c.rcvNxt + 999
	p.TCP.Payload = []byte("stray")
	// Swap direction so it looks like it came from the peer.
	p.IP.Src, p.IP.Dst = p.IP.Dst, p.IP.Src
	p.TCP.SrcPort, p.TCP.DstPort = p.TCP.DstPort, p.TCP.SrcPort
	c.handlePacket(p)
}
