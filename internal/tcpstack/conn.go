package tcpstack

import (
	"fmt"
	"time"

	"geneva/internal/packet"
)

// State is a TCP connection state (the RFC 793 subset the experiments
// exercise).
type State int

// Connection states.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "LAST_ACK", "TIME_WAIT",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// App is the application attached to a connection. Implementations receive
// lifecycle callbacks and respond by calling Conn.Send / Conn.Close.
type App interface {
	// OnEstablished fires once, when the three-way handshake (or
	// simultaneous open) completes.
	OnEstablished(c *Conn)
	// OnData fires for each chunk of in-order stream data.
	OnData(c *Conn, data []byte)
	// OnClose fires once when the connection ends. reset is true for an
	// abortive close (RST received).
	OnClose(c *Conn, reset bool)
}

// Conn is a single TCP connection state machine. It is driven entirely by
// handlePacket and the App's Send/Close calls; the owning Endpoint moves
// packets between it and the network.
type Conn struct {
	ep   *Endpoint
	app  App
	flow packet.Flow // local -> remote

	state State

	iss    uint32 // initial send sequence
	irs    uint32 // initial receive sequence
	sndNxt uint32
	sndUna uint32
	rcvNxt uint32

	peerWndRaw  uint16
	peerWScale  uint8
	peerHasWS   bool
	peerMSS     uint16
	sawPeerOpts bool

	// sendQ is the unsent application data; sendHead indexes the first
	// unsent byte. Draining by advancing the head (instead of re-slicing
	// the queue forward) keeps the buffer's full capacity available when
	// the connection is recycled — a forward re-slice would strand the
	// consumed prefix and force every reuse to grow a fresh buffer.
	sendQ    []byte
	sendHead int
	received []byte

	// Retransmission state (active only under Endpoint.Retransmit).
	rtxQ       []rtxSeg
	rtxGen     int
	rtxRetries int
	rtxRTO     time.Duration

	// appGen invalidates application timers (After) across the connection's
	// lifetime: finish bumps it, and — like rtxGen — it is preserved across
	// recycling so a timer closure armed on a previous tenant of this struct
	// can never fire into the next one.
	appGen int

	// SimOpen records that this end completed the handshake via TCP
	// simultaneous open.
	SimOpen bool
	// ResetReceived records an abortive close.
	ResetReceived   bool
	closed          bool
	everEstablished bool
}

// State returns the connection's current state.
func (c *Conn) State() State { return c.state }

// Flow returns the connection's local->remote 4-tuple.
func (c *Conn) Flow() packet.Flow { return c.flow }

// Received returns all in-order stream data the connection has delivered.
func (c *Conn) Received() []byte { return c.received }

// Established reports whether the connection reached ESTABLISHED at some
// point (it may have closed since).
func (c *Conn) Established() bool { return c.everEstablished }

// Now returns the current virtual time of the network the connection's
// endpoint is attached to (zero if detached). Applications use it to stamp
// lifecycle events without holding a reference to the simulation clock.
// Safe on a nil receiver — app-layer unit tests drive scripts with no
// connection at all.
func (c *Conn) Now() time.Duration {
	if c == nil || c.ep == nil || c.ep.net == nil {
		return 0
	}
	return c.ep.net.Clock.Now()
}

// After schedules fn after d of virtual time on the connection's network —
// the application-side counterpart of the retransmission timer, used for
// think-time pauses between keep-alive requests. The callback is dropped if
// the connection finishes (or its struct is recycled onto another flow)
// before the timer fires; the generation guard is the same pattern armRtx
// uses, so a recycled Conn can never receive a previous tenant's timer.
// Like Now it tolerates a nil receiver (the timer is silently dropped).
func (c *Conn) After(d time.Duration, fn func()) {
	if c == nil || c.closed || c.ep == nil || c.ep.net == nil {
		return
	}
	gen := c.appGen
	c.ep.net.After(d, func() {
		if c.closed || c.appGen != gen {
			return
		}
		fn()
	})
}

// newPacket builds an outbound packet for this connection with the current
// ack and window fields filled in. Packets come from the shared pool: once
// transmitted they belong to the network, which recycles them on networks
// that opt in.
func (c *Conn) newPacket(flags uint8) *packet.Packet {
	p := packet.Get(c.flow.SrcAddr, c.flow.DstAddr, c.flow.SrcPort, c.flow.DstPort)
	p.IP.TTL = c.ep.OS.TTL
	p.TCP.Flags = flags
	p.TCP.Seq = c.sndNxt
	if flags&packet.FlagACK != 0 {
		p.TCP.Ack = c.rcvNxt
	}
	p.TCP.Window = c.ep.OS.InitialWindow
	return p
}

// sendSyn emits the initial SYN with this personality's options.
func (c *Conn) sendSyn() {
	p := c.newPacket(packet.FlagSYN)
	p.TCP.Seq = c.iss
	mss := c.ep.OS.MSS
	p.TCP.AddOption(packet.OptMSS, byte(mss>>8), byte(mss))
	if c.ep.OS.offersWScale() {
		p.TCP.AddOption(packet.OptNOP)
		p.TCP.AddOption(packet.OptWScale, c.ep.OS.WindowScale)
	}
	c.sndNxt = c.iss + 1
	c.sndUna = c.iss
	c.trackRtx(p, c.iss+1)
	c.ep.transmit(p)
}

// sendSynAck emits a SYN+ACK. During simultaneous open the sequence number
// deliberately reuses the ISS (RFC 793: the sequence number is not
// incremented until the handshake-completing ACK) — the behaviour the GFW's
// resynchronization bug trips over.
func (c *Conn) sendSynAck() {
	p := c.newPacket(packet.FlagSYN | packet.FlagACK)
	p.TCP.Seq = c.iss
	mss := c.ep.OS.MSS
	p.TCP.AddOption(packet.OptMSS, byte(mss>>8), byte(mss))
	if c.ep.OS.offersWScale() && c.peerHasWS {
		p.TCP.AddOption(packet.OptNOP)
		p.TCP.AddOption(packet.OptWScale, c.ep.OS.WindowScale)
	}
	c.sndNxt = c.iss + 1
	c.sndUna = c.iss
	c.trackRtx(p, c.iss+1)
	c.ep.transmit(p)
}

// sendRst emits a bare RST with the given sequence number (the shape a
// client produces in response to an unacceptable ACK in SYN-SENT).
func (c *Conn) sendRst(seq uint32) {
	p := c.newPacket(packet.FlagRST)
	p.TCP.Seq = seq
	p.TCP.Ack = 0
	p.TCP.Window = 0
	c.ep.transmit(p)
}

// Send queues application data and transmits as much as the peer's window
// and MSS allow.
func (c *Conn) Send(data []byte) {
	c.sendQ = append(c.sendQ, data...)
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.trySend()
	}
}

// Close performs an orderly close (FIN).
func (c *Conn) Close() {
	switch c.state {
	case StateEstablished:
		c.trySend()
		c.sendFin()
		c.state = StateFinWait1
	case StateCloseWait:
		c.trySend()
		c.sendFin()
		c.state = StateLastAck
	case StateSynSent, StateSynRcvd, StateListen:
		c.state = StateClosed
		c.finish(false)
	}
}

func (c *Conn) sendFin() {
	p := c.newPacket(packet.FlagFIN | packet.FlagACK)
	c.sndNxt++
	c.trackRtx(p, c.sndNxt)
	c.ep.transmit(p)
}

// effectivePeerWindow returns the peer's advertised window, scaled if the
// peer negotiated window scaling. A SYN+ACK stripped of its wscale option
// (Strategy 8) leaves the raw value — that is the whole trick.
func (c *Conn) effectivePeerWindow() uint32 {
	w := uint32(c.peerWndRaw)
	if c.peerHasWS && c.ep.OS.offersWScale() {
		w <<= c.peerWScale
	}
	return w
}

// trySend transmits queued data subject to the peer window and MSS.
func (c *Conn) trySend() {
	mss := int(c.ep.OS.MSS)
	if c.sawPeerOpts && c.peerMSS > 0 && int(c.peerMSS) < mss {
		mss = int(c.peerMSS)
	}
	for c.sendHead < len(c.sendQ) {
		inflight := c.sndNxt - c.sndUna
		wnd := c.effectivePeerWindow()
		if uint32(inflight) >= wnd {
			return // window full; wait for an ACK
		}
		n := int(wnd - inflight)
		if n > mss {
			n = mss
		}
		if queued := len(c.sendQ) - c.sendHead; n > queued {
			n = queued
		}
		if n <= 0 {
			return
		}
		p := c.newPacket(packet.FlagPSH | packet.FlagACK)
		p.TCP.Payload = append(p.TCP.Payload[:0], c.sendQ[c.sendHead:c.sendHead+n]...)
		c.sendHead += n
		if c.sendHead == len(c.sendQ) {
			c.sendQ = c.sendQ[:0]
			c.sendHead = 0
		}
		c.sndNxt += uint32(n)
		c.trackRtx(p, c.sndNxt)
		c.ep.transmit(p)
	}
}

// finish tears the connection down and fires OnClose exactly once.
func (c *Conn) finish(reset bool) {
	if c.closed {
		return
	}
	c.closed = true
	c.appGen++ // invalidate pending application timers (After)
	if reset {
		mCloseReset.Inc()
	} else {
		mCloseClean.Inc()
	}
	c.releaseRtx()
	c.disarmRtx()
	c.ResetReceived = c.ResetReceived || reset
	c.state = StateClosed
	if c.app != nil {
		c.app.OnClose(c, reset)
	}
	// Recycling is safe exactly here: every finish call site returns
	// without touching the connection again, a packet addressed to a
	// vanished flow is ignored just like one addressed to a closed
	// connection, and stale retransmission-timer closures are invalidated
	// by the preserved generation counter (see recycleConn).
	if c.ep.ReleaseClosed {
		c.ep.recycleConn(c)
	}
}

// handlePacket advances the state machine for one received segment.
func (c *Conn) handlePacket(pkt *packet.Packet) {
	t := &pkt.TCP
	switch c.state {
	case StateClosed:
		return
	case StateListen:
		if t.Flags&packet.FlagRST != 0 {
			return
		}
		if t.Flags&packet.FlagSYN != 0 && t.Flags&packet.FlagACK == 0 {
			c.irs = t.Seq
			c.rcvNxt = t.Seq + 1
			c.notePeerOptions(t)
			c.state = StateSynRcvd
			c.sendSynAck()
		}
	case StateSynSent:
		c.handleSynSent(pkt)
	case StateSynRcvd:
		c.handleSynRcvd(pkt)
	default:
		c.handleSynchronized(pkt)
	}
}

func (c *Conn) handleSynSent(pkt *packet.Packet) {
	t := &pkt.TCP
	hasACK := t.Flags&packet.FlagACK != 0
	hasSYN := t.Flags&packet.FlagSYN != 0
	hasRST := t.Flags&packet.FlagRST != 0

	if hasRST {
		// RFC 793 would abort on some RSTs, but every modern OS the
		// paper tested ignores a RST that does not carry an acceptable
		// ACK in SYN-SENT (§5.1, Strategy 1). Only an acceptable
		// RST+ACK resets.
		if hasACK && t.Ack == c.iss+1 {
			c.finish(true)
		}
		return
	}
	if hasACK && t.Ack != c.iss+1 {
		// Unacceptable ACK: send a RST with seq = the bogus ack value
		// and stay in SYN-SENT (the "induced RST" of Strategies 3–7).
		c.sendRst(t.Ack)
		return
	}
	if hasSYN && hasACK {
		// Normal handshake completion.
		c.irs = t.Seq
		c.rcvNxt = t.Seq + 1
		c.sndUna = t.Ack
		c.ackRtx()
		c.notePeerOptions(t)
		c.absorbSynPayload(t)
		c.state = StateEstablished
		ack := c.newPacket(packet.FlagACK)
		c.ep.transmit(ack)
		c.establish()
		return
	}
	if hasSYN {
		// Simultaneous open: reply SYN+ACK reusing our ISS.
		c.irs = t.Seq
		c.rcvNxt = t.Seq + 1
		c.notePeerOptions(t)
		// A payload on a bare SYN is ignored by all tested stacks
		// (it is legal — TCP Fast Open requires it — §5.1 Strategy 2).
		c.state = StateSynRcvd
		c.SimOpen = true
		c.sendSynAck()
		return
	}
	// Anything else (e.g. a FIN or bare payload before the handshake) is
	// dropped silently, as observed across all tested stacks.
}

func (c *Conn) handleSynRcvd(pkt *packet.Packet) {
	t := &pkt.TCP
	hasACK := t.Flags&packet.FlagACK != 0
	hasSYN := t.Flags&packet.FlagSYN != 0
	hasRST := t.Flags&packet.FlagRST != 0

	if hasRST {
		if seqInWindow(t.Seq, c.rcvNxt, 65535) || t.Seq == c.irs {
			c.finish(true)
		}
		return
	}
	if hasACK && t.Ack == c.iss+1 {
		c.sndUna = t.Ack
		c.ackRtx()
		if c.sawPeerOpts {
			c.peerWndRaw = t.Window
		}
		wasSimOpenSynAck := hasSYN && t.Seq == c.irs
		if hasSYN && c.SimOpen && !wasSimOpenSynAck {
			return
		}
		c.state = StateEstablished
		if wasSimOpenSynAck {
			// The peer completed via its own SYN+ACK (it saw our SYN
			// as simultaneous open); acknowledge it so the peer's
			// handshake finishes too (Figure 1, Strategy 1).
			c.absorbSynPayload(t)
			ack := c.newPacket(packet.FlagACK)
			c.ep.transmit(ack)
		}
		c.establish()
		// Any data riding on the handshake-completing segment.
		if len(t.Payload) > 0 && !hasSYN {
			c.handleSynchronized(pkt)
		}
		return
	}
	if hasSYN && !hasACK && t.Seq == c.irs {
		// Duplicate SYN: re-send the SYN+ACK.
		c.sendSynAck()
	}
}

// establish flips to ESTABLISHED exactly once and kicks the application.
func (c *Conn) establish() {
	c.everEstablished = true
	if c.app != nil {
		c.app.OnEstablished(c)
	}
	c.trySend()
}

func (c *Conn) handleSynchronized(pkt *packet.Packet) {
	t := &pkt.TCP
	if t.Flags&packet.FlagRST != 0 {
		// A RST is accepted only if its sequence number is plausible.
		// A censor desynchronized from the connection injects RSTs the
		// endpoint ignores here.
		if seqInWindow(t.Seq, c.rcvNxt, 65535) {
			c.finish(true)
		}
		return
	}
	if t.Flags&packet.FlagSYN != 0 {
		return // stray SYN in a synchronized state: ignore
	}
	if t.Flags&packet.FlagACK != 0 {
		if ackAcceptable(c.sndUna, t.Ack, c.sndNxt) {
			c.sndUna = t.Ack
			c.ackRtx()
		}
		c.peerWndRaw = t.Window
		switch c.state {
		case StateFinWait1:
			if t.Ack == c.sndNxt {
				c.state = StateFinWait2
			}
		case StateLastAck:
			if t.Ack == c.sndNxt {
				c.finish(false)
				return
			}
		}
	}

	if len(t.Payload) > 0 {
		switch {
		case t.Seq == c.rcvNxt:
			c.rcvNxt += uint32(len(t.Payload))
			c.received = append(c.received, t.Payload...)
			ack := c.newPacket(packet.FlagACK)
			c.ep.transmit(ack)
			if c.app != nil {
				c.app.OnData(c, t.Payload)
			}
		default:
			// Out-of-order or stale data: re-ACK what we have.
			ack := c.newPacket(packet.FlagACK)
			c.ep.transmit(ack)
		}
	}

	if t.Flags&packet.FlagFIN != 0 && t.Seq+uint32(len(t.Payload)) == c.rcvNxt {
		c.rcvNxt++
		ack := c.newPacket(packet.FlagACK)
		c.ep.transmit(ack)
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
			c.finish(false) // peer is done sending; surface the close
		case StateFinWait1, StateFinWait2:
			c.state = StateTimeWait
			c.finish(false)
		}
		return
	}

	c.trySend()
}

// notePeerOptions records MSS and window scaling from a SYN or SYN+ACK.
func (c *Conn) notePeerOptions(t *packet.TCP) {
	c.sawPeerOpts = true
	c.peerWndRaw = t.Window
	c.peerHasWS = false
	c.peerWScale = 0
	c.peerMSS = 0
	if o := t.Option(packet.OptMSS); o != nil && len(o.Data) == 2 {
		c.peerMSS = uint16(o.Data[0])<<8 | uint16(o.Data[1])
	}
	if o := t.Option(packet.OptWScale); o != nil && len(o.Data) == 1 {
		c.peerHasWS = true
		c.peerWScale = o.Data[0]
	}
}

// absorbSynPayload applies the personality's handling of a payload riding
// on a SYN+ACK. Linux-family stacks ignore it; Windows/macOS stacks deliver
// it into the stream, corrupting what the application reads (§7).
func (c *Conn) absorbSynPayload(t *packet.TCP) {
	if len(t.Payload) == 0 {
		return
	}
	if c.ep.OS.AcceptsSynAckPayload {
		c.received = append(c.received, t.Payload...)
		c.rcvNxt += uint32(len(t.Payload))
		if c.app != nil {
			c.app.OnData(c, t.Payload)
		}
	}
}
