package tcpstack

import (
	"time"

	"geneva/internal/packet"
)

// RetransmitPolicy configures the endpoint's retransmission machinery. The
// zero value disables it entirely — the historical lossless-network
// behaviour, under which no timer is ever armed and packet emission is
// byte-identical to builds that predate retransmission.
type RetransmitPolicy struct {
	// Enabled arms an RTO timer for every sequence-consuming segment
	// (SYN, SYN+ACK, data, FIN).
	Enabled bool
	// RTO is the initial retransmission timeout; it doubles on every
	// consecutive unacknowledged retransmission. Defaults to 200 ms of
	// virtual time (10× the default simulated RTT).
	RTO time.Duration
	// MaxRetries bounds consecutive retransmissions without forward
	// progress; on exhaustion the connection aborts cleanly (OnClose with
	// reset=false). Defaults to 6.
	MaxRetries int
}

// DefaultRetransmit is the policy the experiment harness installs whenever
// network impairments are active.
var DefaultRetransmit = RetransmitPolicy{Enabled: true}

func (p RetransmitPolicy) rto() time.Duration {
	if p.RTO > 0 {
		return p.RTO
	}
	return 200 * time.Millisecond
}

func (p RetransmitPolicy) maxRetries() int {
	if p.MaxRetries > 0 {
		return p.MaxRetries
	}
	return 6
}

// rtxSeg is one in-flight sequence-consuming segment awaiting
// acknowledgment.
type rtxSeg struct {
	end uint32         // sequence number just past this segment's payload/flag
	pkt *packet.Packet // pristine copy, cloned before any Outbound tampering
}

// trackRtx remembers a transmitted segment for possible retransmission.
// The copy is taken before the Outbound hook runs, so a retransmission
// re-enters the Geneva engine exactly like a kernel retransmit re-enters
// NFQueue on a real deployment — retransmitted server payloads hitting GFW
// resync triggers is live experiment space (§5), not an artifact.
func (c *Conn) trackRtx(p *packet.Packet, end uint32) {
	if !c.ep.Retransmit.Enabled || c.closed || c.ep.net == nil {
		return
	}
	c.rtxQ = append(c.rtxQ, rtxSeg{end: end, pkt: p.ClonePooled()})
	if len(c.rtxQ) == 1 {
		c.rtxRetries = 0
		c.armRtx(c.ep.Retransmit.rto())
	}
}

// armRtx schedules a fresh timer, superseding any outstanding one (stale
// generations are ignored when they fire).
func (c *Conn) armRtx(d time.Duration) {
	c.rtxGen++
	gen := c.rtxGen
	c.rtxRTO = d
	c.ep.net.After(d, func() { c.onRtxTimer(gen) })
}

func (c *Conn) disarmRtx() { c.rtxGen++ }

// ackRtx discards fully acknowledged segments (sndUna has passed their
// end) and, on forward progress, resets the backoff and rearms for
// whatever is still outstanding.
func (c *Conn) ackRtx() {
	if len(c.rtxQ) == 0 {
		return
	}
	una := c.sndUna
	kept := c.rtxQ[:0]
	progress := false
	for _, s := range c.rtxQ {
		if seqLEQ(s.end, una) {
			progress = true
			packet.Put(s.pkt) // our private clone; nobody else holds it
			continue
		}
		kept = append(kept, s)
	}
	// Clear the vacated tail so the stale *Packet pointers don't pin (or
	// double-recycle) segments the compaction shifted down.
	tail := c.rtxQ[len(kept):]
	for i := range tail {
		tail[i] = rtxSeg{}
	}
	c.rtxQ = kept
	if !progress {
		return
	}
	c.rtxRetries = 0
	if len(c.rtxQ) == 0 {
		c.disarmRtx()
	} else {
		c.armRtx(c.ep.Retransmit.rto())
	}
}

// onRtxTimer fires at RTO expiry: retransmit the earliest unacknowledged
// segment with doubled timeout, or give up cleanly once the retry budget is
// spent. Giving up is what turns a blackholed connection into a bounded,
// observable failure instead of an eternal hang.
func (c *Conn) onRtxTimer(gen int) {
	if gen != c.rtxGen || c.closed || len(c.rtxQ) == 0 {
		return
	}
	if c.rtxRetries >= c.ep.Retransmit.maxRetries() {
		mRtxGiveUp.Inc()
		c.releaseRtx()
		c.disarmRtx()
		c.finish(false)
		return
	}
	c.rtxRetries++
	mRetransmits.Inc()
	mRtxBackoff.Observe(uint64(c.rtxRetries))
	c.ep.transmit(c.rtxQ[0].pkt.ClonePooled())
	c.armRtx(c.rtxRTO * 2)
}

// releaseRtx returns every queued segment clone to the packet pool.
func (c *Conn) releaseRtx() {
	for i := range c.rtxQ {
		packet.Put(c.rtxQ[i].pkt)
		c.rtxQ[i] = rtxSeg{}
	}
	c.rtxQ = nil
}
