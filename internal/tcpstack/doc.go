// Package tcpstack implements the user-space TCP endpoints that play the
// role of the paper's *unmodified clients* and servers.
//
// The server-side strategies in the paper succeed or fail based on specific,
// documented endpoint behaviours, all of which this stack reproduces:
//
//   - TCP simultaneous open (RFC 793 §3.4): a SYN received in SYN-SENT moves
//     the connection to SYN-RECEIVED and elicits a SYN+ACK that reuses the
//     original ISS — the sequence number is not incremented until the final
//     ACK. Strategies 1–3 exploit a GFW bug in resynchronizing on exactly
//     this packet.
//   - A RST without ACK received in SYN-SENT is ignored by every modern OS
//     (despite RFC 793 suggesting otherwise) — the basis of Strategy 1.
//   - A SYN+ACK with an unacceptable acknowledgment number induces the
//     client to send a RST whose sequence number equals the bogus ack value,
//     while the connection remains in SYN-SENT — Strategies 3–7.
//   - A payload on a SYN+ACK is ignored by Linux-family stacks but breaks
//     Windows and macOS stacks (§7) — the Personality type captures this.
//   - The sender honours the peer's advertised window and the absence of a
//     window-scale option, so a tiny SYN+ACK window forces the client to
//     segment its request — Strategy 8 (TCP Window Reduction / brdgrd).
//   - Endpoints validate TCP checksums and silently drop failures, so a
//     checksum-corrupted "insertion packet" is processed by censors (which
//     do not validate) but not by any client — the §7 compatibility fix.
//
// Retransmission is opt-in (Endpoint.Retransmit). Historically there was
// deliberately no retransmission timer — the virtual network never lost
// packets except by explicit censor action — and that remains the zero-value
// behaviour: with the policy disabled no timer is ever armed, packet traces
// are byte-identical to older builds, and the experiment harness treats a
// quiescent, unanswered connection as the failure it is (e.g. Iran's
// blackholing). When netsim impairments (loss, duplication, reordering,
// jitter) are active, the harness enables the policy: every
// sequence-consuming segment (SYN, SYN+ACK, data, FIN) is tracked in a
// retransmit queue and re-sent on a virtual-clock RTO with doubling backoff,
// aborting cleanly after a bounded number of retries. Retransmissions
// re-enter the Outbound hook, so a Geneva engine re-processes them exactly
// as NFQueue would on a real server — which makes retransmitted payloads
// versus GFW resynchronization triggers (§5) an observable phenomenon rather
// than a modeling gap.
package tcpstack
