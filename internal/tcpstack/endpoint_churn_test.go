package tcpstack

import (
	"bytes"
	"testing"
)

// TestConnectPortChurn is the ephemeral-port wraparound regression test: an
// endpoint that lives through enough reconnect churn wraps its uint16 port
// counter past 65535. Before the fix, Connect handed out port 0 (never a
// valid source port), marched straight through ports the endpoint was
// listening on, and — worst — silently overwrote the table entry of a live
// connection that happened to hold the reused port, orphaning it. The
// long-horizon fleet workload (keep-alive sessions plus reconnect policies)
// is exactly the kind of harness that keeps one endpoint connecting >33k
// times, so the port walk must skip all three.
func TestConnectPortChurn(t *testing.T) {
	// The first accepted connection (the long-lived one below) stays open;
	// every churned connection's server side closes after responding so both
	// ends settle.
	var srvApps []*testApp
	client, _, n := rig(t, DefaultClient, func(*Conn) App {
		a := &testApp{response: []byte("ok"), closeAfter: len(srvApps) > 0}
		srvApps = append(srvApps, a)
		return a
	})
	client.ReleaseClosed = true
	// The endpoint also runs a local service: its listening port sits in
	// the range the wrapped counter walks through.
	client.NewServerApp = func(*Conn) App { return &testApp{} }
	client.Listen(500)

	// Position the counter near the top so the churn below genuinely wraps.
	client.nextPort = 65000

	// A long-lived connection (a keep-alive session mid-flight): its port
	// must never be handed out again while it is alive.
	longApp := &testApp{request: []byte("hello")}
	longConn := client.Connect(serverAddr, 80, longApp)
	n.Run(0)
	longPort := longConn.Flow().SrcPort
	if !longApp.established || longApp.closed {
		t.Fatalf("long-lived connection not established (closed=%v)", longApp.closed)
	}

	// Churn well past the uint16 wrap. Every connection closes cleanly, so
	// with ReleaseClosed the table holds only the long-lived flow between
	// iterations — any collision below is the counter's fault, not table
	// pressure.
	const churn = 34000
	for i := 0; i < churn; i++ {
		app := &closerApp{testApp: testApp{request: []byte("req")}}
		conn := client.Connect(serverAddr, 80, app)
		app.conn = conn
		p := conn.Flow().SrcPort
		if p == 0 {
			t.Fatalf("churn %d: Connect handed out port 0", i)
		}
		if p == 500 {
			t.Fatalf("churn %d: Connect handed out the endpoint's listening port", i)
		}
		if p == longPort {
			t.Fatalf("churn %d: Connect reused live connection's port %d", i, longPort)
		}
		n.Run(0)
		if !app.closed {
			t.Fatalf("churn %d: connection did not settle", i)
		}
	}

	// Aim the counter directly at the live connection's port: the next
	// Connect must walk past it instead of overwriting the table entry.
	client.nextPort = longPort - 1
	app := &closerApp{testApp: testApp{request: []byte("req")}}
	conn := client.Connect(serverAddr, 80, app)
	app.conn = conn
	if p := conn.Flow().SrcPort; p == longPort {
		t.Fatalf("Connect reused live connection's port %d", longPort)
	}
	n.Run(0)

	if got := client.Conns()[longConn.Flow()]; got != longConn {
		t.Fatal("live connection was evicted from the table by port reuse")
	}
	// The long-lived connection still works end to end.
	longConn.Send([]byte(" again"))
	n.Run(0)
	if want := []byte("hello again"); !bytes.Equal(srvApps[0].data, want) {
		t.Fatalf("long-lived connection broken after churn: server got %q, want %q", srvApps[0].data, want)
	}
}
