package tcpstack

import "geneva/internal/obs"

var (
	mSegmentsSent = obs.NewCounter("tcpstack.segments_sent")
	mSegmentsRcvd = obs.NewCounter("tcpstack.segments_received")
	mChecksumDrop = obs.NewCounter("tcpstack.checksum_drops")
	mRetransmits  = obs.NewCounter("tcpstack.retransmits")
	mRtxGiveUp    = obs.NewCounter("tcpstack.rtx_giveup")
	mCloseClean   = obs.NewCounter("tcpstack.close_clean")
	mCloseReset   = obs.NewCounter("tcpstack.close_reset")
	// mRtxBackoff buckets each retransmission by its retry ordinal (1 =
	// first RTO expiry, 2 = second, ...): the shape of the backoff ladder
	// a run actually climbed.
	mRtxBackoff = obs.NewHistogram("tcpstack.rtx_backoff", 1, 2, 3, 4, 5, 6)
)
