package tcpstack

// Personality captures the OS-specific TCP behaviours that matter to the
// paper's strategies (§7). The one load-bearing axis is how the stack treats
// a payload on a SYN+ACK: Linux-family stacks ignore it; Windows and macOS
// stacks deliver it into the stream, corrupting the connection. The other
// fields are flavour (initial window, MSS, window scale, TTL) so traces look
// like the OS they claim to be.
type Personality struct {
	Name string
	// Family is "windows", "macos", "ios", "android", or "linux".
	Family string
	// AcceptsSynAckPayload is true for stacks that deliver a SYN+ACK's
	// payload into the receive stream (Windows, macOS). §7: Strategies
	// 5, 9 and 10 fail against such stacks.
	AcceptsSynAckPayload bool
	// InitialWindow is the receive window advertised in the SYN.
	InitialWindow uint16
	// MSS is the maximum segment size offered.
	MSS uint16
	// WindowScale is the wscale shift count offered (0xff = not offered).
	WindowScale uint8
	// TTL is the initial IP TTL.
	TTL uint8
}

// offersWScale reports whether the personality sends a window-scale option.
func (p Personality) offersWScale() bool { return p.WindowScale != 0xff }

// The 17 client operating systems evaluated in §7 of the paper.
var (
	WindowsXP     = Personality{Name: "Windows XP SP3", Family: "windows", AcceptsSynAckPayload: true, InitialWindow: 65535, MSS: 1460, WindowScale: 0xff, TTL: 128}
	Windows7      = Personality{Name: "Windows 7 Ultimate SP1", Family: "windows", AcceptsSynAckPayload: true, InitialWindow: 8192, MSS: 1460, WindowScale: 8, TTL: 128}
	Windows81     = Personality{Name: "Windows 8.1 Pro", Family: "windows", AcceptsSynAckPayload: true, InitialWindow: 8192, MSS: 1460, WindowScale: 8, TTL: 128}
	Windows10     = Personality{Name: "Windows 10 Enterprise 17134", Family: "windows", AcceptsSynAckPayload: true, InitialWindow: 64240, MSS: 1460, WindowScale: 8, TTL: 128}
	WinServer2003 = Personality{Name: "Windows Server 2003 Datacenter", Family: "windows", AcceptsSynAckPayload: true, InitialWindow: 65535, MSS: 1460, WindowScale: 0xff, TTL: 128}
	WinServer2008 = Personality{Name: "Windows Server 2008 Datacenter", Family: "windows", AcceptsSynAckPayload: true, InitialWindow: 8192, MSS: 1460, WindowScale: 8, TTL: 128}
	WinServer2013 = Personality{Name: "Windows Server 2013 Standard", Family: "windows", AcceptsSynAckPayload: true, InitialWindow: 8192, MSS: 1460, WindowScale: 8, TTL: 128}
	WinServer2018 = Personality{Name: "Windows Server 2018 Standard", Family: "windows", AcceptsSynAckPayload: true, InitialWindow: 64240, MSS: 1460, WindowScale: 8, TTL: 128}
	MacOS1015     = Personality{Name: "macOS 10.15", Family: "macos", AcceptsSynAckPayload: true, InitialWindow: 65535, MSS: 1460, WindowScale: 6, TTL: 64}
	IOS133        = Personality{Name: "iOS 13.3", Family: "ios", AcceptsSynAckPayload: false, InitialWindow: 65535, MSS: 1460, WindowScale: 6, TTL: 64}
	Android10     = Personality{Name: "Android 10", Family: "android", AcceptsSynAckPayload: false, InitialWindow: 65535, MSS: 1460, WindowScale: 8, TTL: 64}
	Ubuntu1204    = Personality{Name: "Ubuntu 12.04.5", Family: "linux", AcceptsSynAckPayload: false, InitialWindow: 14600, MSS: 1460, WindowScale: 7, TTL: 64}
	Ubuntu1404    = Personality{Name: "Ubuntu 14.04.3", Family: "linux", AcceptsSynAckPayload: false, InitialWindow: 29200, MSS: 1460, WindowScale: 7, TTL: 64}
	Ubuntu1604    = Personality{Name: "Ubuntu 16.04.4", Family: "linux", AcceptsSynAckPayload: false, InitialWindow: 29200, MSS: 1460, WindowScale: 7, TTL: 64}
	Ubuntu1804    = Personality{Name: "Ubuntu 18.04.1", Family: "linux", AcceptsSynAckPayload: false, InitialWindow: 64240, MSS: 1460, WindowScale: 7, TTL: 64}
	CentOS6       = Personality{Name: "CentOS 6", Family: "linux", AcceptsSynAckPayload: false, InitialWindow: 14600, MSS: 1460, WindowScale: 7, TTL: 64}
	CentOS7       = Personality{Name: "CentOS 7", Family: "linux", AcceptsSynAckPayload: false, InitialWindow: 29200, MSS: 1460, WindowScale: 7, TTL: 64}
)

// AllPersonalities is the §7 evaluation set, in the paper's order.
var AllPersonalities = []Personality{
	WindowsXP, Windows7, Windows81, Windows10,
	WinServer2003, WinServer2008, WinServer2013, WinServer2018,
	MacOS1015, IOS133, Android10,
	Ubuntu1204, Ubuntu1404, Ubuntu1604, Ubuntu1804,
	CentOS6, CentOS7,
}

// DefaultClient is the personality used when a test doesn't care: an
// Ubuntu 18.04 client, matching the paper's private-network setup.
var DefaultClient = Ubuntu1804

// DefaultServer is the server personality (the paper used Ubuntu 18.04.3).
var DefaultServer = Personality{Name: "Ubuntu 18.04.3 (server)", Family: "linux", InitialWindow: 64240, MSS: 1460, WindowScale: 7, TTL: 64}
