package tcpstack

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// dropFirst is an in-path box that drops the first packet matching flags in
// the given direction, once.
type dropFirst struct {
	dir     netsim.Direction
	flags   uint8
	payload bool // require a payload too
	dropped bool
}

func (b *dropFirst) Name() string { return "drop-first" }
func (b *dropFirst) Process(p *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	if b.dropped || dir != b.dir {
		return netsim.Verdict{}
	}
	if p.TCP.Flags&b.flags != b.flags || (b.payload && len(p.TCP.Payload) == 0) {
		return netsim.Verdict{}
	}
	b.dropped = true
	return netsim.Verdict{Drop: true, Note: "dropped by test box"}
}

// blackhole drops everything in one direction.
type blackhole struct{ dir netsim.Direction }

func (b *blackhole) Name() string { return "blackhole" }
func (b *blackhole) Process(p *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	return netsim.Verdict{Drop: dir == b.dir}
}

func retransmitRig(boxes ...netsim.Middlebox) (*Endpoint, *Endpoint, *netsim.Network, *testApp, *testApp) {
	srvApp := &testApp{response: []byte("the response body")}
	client := NewEndpoint(clientAddr, DefaultClient, rand.New(rand.NewSource(1)))
	server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(2)))
	client.Retransmit = DefaultRetransmit
	server.Retransmit = DefaultRetransmit
	server.NewServerApp = func(*Conn) App { return srvApp }
	server.Listen(80)
	n := netsim.New(client, server, boxes...)
	client.Attach(n)
	server.Attach(n)
	cliApp := &testApp{request: []byte("the request")}
	return client, server, n, cliApp, srvApp
}

// TestRetransmitRecoversLostSyn: a dropped SYN is retransmitted and the
// transfer still completes.
func TestRetransmitRecoversLostSyn(t *testing.T) {
	client, _, n, cliApp, srvApp := retransmitRig(&dropFirst{dir: netsim.ToServer, flags: packet.FlagSYN})
	client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !bytes.Equal(srvApp.data, []byte("the request")) || !bytes.Equal(cliApp.data, []byte("the response body")) {
		t.Fatalf("transfer incomplete after SYN loss: srv=%q cli=%q", srvApp.data, cliApp.data)
	}
}

// TestRetransmitRecoversLostData: a dropped data segment in either
// direction is recovered.
func TestRetransmitRecoversLostData(t *testing.T) {
	for _, dir := range []netsim.Direction{netsim.ToServer, netsim.ToClient} {
		client, _, n, cliApp, srvApp := retransmitRig(&dropFirst{dir: dir, flags: packet.FlagPSH, payload: true})
		client.Connect(serverAddr, 80, cliApp)
		n.Run(0)
		if !bytes.Equal(srvApp.data, []byte("the request")) || !bytes.Equal(cliApp.data, []byte("the response body")) {
			t.Fatalf("%v: transfer incomplete after data loss: srv=%q cli=%q", dir, srvApp.data, cliApp.data)
		}
	}
}

// TestRetransmitRecoversLostSynAck: the server retransmits a lost SYN+ACK.
func TestRetransmitRecoversLostSynAck(t *testing.T) {
	client, _, n, cliApp, srvApp := retransmitRig(&dropFirst{dir: netsim.ToClient, flags: packet.FlagSYN | packet.FlagACK})
	client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !bytes.Equal(srvApp.data, []byte("the request")) || !bytes.Equal(cliApp.data, []byte("the response body")) {
		t.Fatalf("transfer incomplete after SYN+ACK loss: srv=%q cli=%q", srvApp.data, cliApp.data)
	}
}

// TestRetransmitGivesUpCleanly: against a total blackhole, the client
// retransmits its SYN a bounded number of times, then aborts with a clean
// (non-reset) close; the network quiesces.
func TestRetransmitGivesUpCleanly(t *testing.T) {
	client, _, n, cliApp, _ := retransmitRig(&blackhole{dir: netsim.ToServer})
	n.Trace = &netsim.Trace{}
	conn := client.Connect(serverAddr, 80, cliApp)
	processed := n.Run(0)
	if !n.Quiet() {
		t.Fatal("network never quiesced against a blackhole")
	}
	if processed >= 100000 {
		t.Fatalf("runaway retransmission: %d events", processed)
	}
	if !cliApp.closed || cliApp.reset {
		t.Errorf("want a clean abort: closed=%v reset=%v", cliApp.closed, cliApp.reset)
	}
	if conn.State() != StateClosed {
		t.Errorf("connection state = %v, want CLOSED", conn.State())
	}
	// 1 original + MaxRetries retransmissions, all dropped at the censor hop.
	syns := 0
	for _, e := range n.Trace.Entries {
		if e.Dir == netsim.ToServer && e.Pkt.TCP.Flags == packet.FlagSYN {
			syns++
		}
	}
	if want := 1 + DefaultRetransmit.maxRetries(); syns != want {
		t.Errorf("observed %d SYNs, want %d (1 + MaxRetries)", syns, want)
	}
}

// TestNoRetransmissionWhenDisabled locks the historical contract: with the
// zero-value policy, a lost packet is simply lost — no timer fires, no
// retransmission happens, and the network goes quiet immediately.
func TestNoRetransmissionWhenDisabled(t *testing.T) {
	srvApp := &testApp{response: []byte("resp")}
	client, _, n := rig(t, DefaultClient, func(*Conn) App { return srvApp })
	box := &dropFirst{dir: netsim.ToServer, flags: packet.FlagSYN}
	// rig() has no boxes; rebuild with the dropper.
	client = NewEndpoint(clientAddr, DefaultClient, rand.New(rand.NewSource(1)))
	server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(2)))
	server.NewServerApp = func(*Conn) App { return srvApp }
	server.Listen(80)
	n = netsim.New(client, server, box)
	client.Attach(n)
	server.Attach(n)
	cliApp := &testApp{request: []byte("req")}
	client.Connect(serverAddr, 80, cliApp)
	if got := n.Run(0); got != 1 {
		t.Errorf("processed %d events, want 1 (the dropped SYN, nothing after)", got)
	}
	if cliApp.established || len(srvApp.data) != 0 {
		t.Error("connection progressed despite the dropped SYN and no retransmission")
	}
}

// TestRetransmitBackoffDoubles: consecutive SYN retransmissions against a
// blackhole are spaced at RTO, 2·RTO, 4·RTO, ...
func TestRetransmitBackoffDoubles(t *testing.T) {
	client, _, n, cliApp, _ := retransmitRig(&blackhole{dir: netsim.ToServer})
	n.Trace = &netsim.Trace{}
	client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	var times []time.Duration
	for _, e := range n.Trace.Entries {
		if e.Dir == netsim.ToServer && e.Pkt.TCP.Flags == packet.FlagSYN {
			times = append(times, e.Time)
		}
	}
	rto := DefaultRetransmit.rto()
	for i := 1; i < len(times); i++ {
		want := rto << (i - 1)
		if gap := times[i] - times[i-1]; gap != want {
			t.Errorf("retransmission %d after %v, want %v", i, gap, want)
		}
	}
}

// TestRetransmissionsReenterOutbound: a retransmitted segment passes through
// the Outbound hook again, exactly like a kernel retransmit re-entering
// NFQueue.
func TestRetransmissionsReenterOutbound(t *testing.T) {
	client, server, n, cliApp, srvApp := retransmitRig(&dropFirst{dir: netsim.ToClient, flags: packet.FlagSYN | packet.FlagACK})
	synAcks := 0
	server.Outbound = func(p *packet.Packet) []*packet.Packet {
		if p.TCP.Flags == packet.FlagSYN|packet.FlagACK {
			synAcks++
		}
		return []*packet.Packet{p}
	}
	client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if synAcks < 2 {
		t.Errorf("Outbound saw %d SYN+ACKs, want ≥2 (original + retransmission)", synAcks)
	}
	if !bytes.Equal(srvApp.data, []byte("the request")) {
		t.Error("transfer failed")
	}
}
