package tcpstack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"geneva/internal/netsim"
)

// TestTransferUnderImpairmentProperty is the retransmission machinery's
// contract: under ANY impairment profile (loss ≤ 30%, plus arbitrary
// reordering and duplication), an uncensored transfer either completes with
// exactly the right bytes or fails cleanly once the retry budget is spent.
// It never delivers corrupted data and never loops forever — the event count
// (virtual-clock steps) stays far below the runaway limit.
func TestTransferUnderImpairmentProperty(t *testing.T) {
	f := func(seed int64, lossPm, dupPm, reorderPm, jitterMs uint16, reqLen, respLen uint16) bool {
		prof := netsim.Profile{
			Loss:      float64(lossPm%301) / 1000, // ≤ 30%
			Duplicate: float64(dupPm%1001) / 1000,
			Reorder:   float64(reorderPm%1001) / 1000,
			Jitter:    time.Duration(jitterMs%20) * time.Millisecond,
		}
		rng := rand.New(rand.NewSource(seed))
		req := make([]byte, int(reqLen)%4096+1)
		resp := make([]byte, int(respLen)%4096+1)
		rng.Read(req)
		rng.Read(resp)

		srvApp := &testApp{response: resp}
		client := NewEndpoint(clientAddr, DefaultClient, rand.New(rand.NewSource(seed)))
		server := NewEndpoint(serverAddr, DefaultServer, rand.New(rand.NewSource(seed+1)))
		client.Retransmit = DefaultRetransmit
		server.Retransmit = DefaultRetransmit
		server.NewServerApp = func(*Conn) App { return srvApp }
		server.Listen(80)
		n := netsim.New(client, server)
		n.SetImpairments(netsim.Symmetric(prof), rand.New(rand.NewSource(seed+2)))
		client.Attach(n)
		server.Attach(n)
		cliApp := &testApp{request: req}
		client.Connect(serverAddr, 80, cliApp)

		const bound = 100000
		if n.Run(bound) >= bound || !n.Quiet() {
			t.Logf("seed=%d profile=%+v: did not quiesce within %d steps", seed, prof, bound)
			return false
		}
		// Whatever arrived must be an exact prefix of the intended stream:
		// impairment may stall a transfer, never corrupt it.
		if len(srvApp.data) > len(req) || !bytes.Equal(srvApp.data, req[:len(srvApp.data)]) {
			t.Logf("seed=%d: server stream corrupted", seed)
			return false
		}
		if len(cliApp.data) > len(resp) || !bytes.Equal(cliApp.data, resp[:len(cliApp.data)]) {
			t.Logf("seed=%d: client stream corrupted", seed)
			return false
		}
		// Either the transfer completed, or at least one side gave up
		// cleanly (OnClose without reset) after its retry budget.
		complete := bytes.Equal(srvApp.data, req) && bytes.Equal(cliApp.data, resp)
		cleanFail := (cliApp.closed && !cliApp.reset) || (srvApp.closed && !srvApp.reset)
		if !complete && !cleanFail {
			t.Logf("seed=%d profile=%+v: neither complete nor cleanly failed (cli=%d/%d srv=%d/%d)",
				seed, prof, len(cliApp.data), len(resp), len(srvApp.data), len(req))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
