package tcpstack

import (
	"bytes"
	"math/rand"
	"testing"

	"geneva/internal/netsim"
	"geneva/internal/packet"
)

func TestSeqHelpersWraparound(t *testing.T) {
	const hi, lo = uint32(0xFFFFFFF0), uint32(0x10)
	if !seqLT(hi, lo) || seqLT(lo, hi) {
		t.Error("seqLT wrong across the wrap: 0xFFFFFFF0 < 0x10 in sequence space")
	}
	if !seqGT(lo, hi) || seqGT(hi, lo) {
		t.Error("seqGT wrong across the wrap")
	}
	if !seqLEQ(hi, hi) || !seqGEQ(lo, lo) {
		t.Error("seqLEQ/seqGEQ not reflexive")
	}
	if !seqLEQ(hi, lo) || !seqGEQ(lo, hi) {
		t.Error("seqLEQ/seqGEQ wrong across the wrap")
	}
	// RST acceptance window straddling the wrap: [0xFFFFFFF0, 0xFFFF+0xFFFFFFF0).
	if !seqInWindow(5, hi, 65535) {
		t.Error("seq just past the wrap not in a window starting before it")
	}
	if seqInWindow(hi-1, hi, 65535) {
		t.Error("seq below window start accepted")
	}
	// ACK acceptability with una below the wrap and nxt above it.
	if !ackAcceptable(0xFFFFFFF8, 4, 16) {
		t.Error("ACK between wrapped una and nxt rejected")
	}
	if ackAcceptable(0xFFFFFFF8, 20, 16) {
		t.Error("ACK beyond nxt accepted")
	}
	if ackAcceptable(0xFFFFFFF8, 0xFFFFFFF0, 16) {
		t.Error("stale ACK below una accepted")
	}
}

// fixedISN is a rand.Source whose every draw makes rand.Uint32 return the
// same chosen value — the lever for pinning an endpoint's ISN at the edge of
// the sequence space. (Endpoint draws Intn for the ephemeral port first;
// that draw derives from the same constant and is harmless.)
type fixedISN uint32

func (s fixedISN) Int63() int64 { return int64(s) << 31 }
func (s fixedISN) Seed(int64)   {}

// wrapRig builds a client/server pair whose ISNs sit just below 2^32, so the
// very first data segments cross the wrap.
func wrapRig(clientISN, serverISN uint32, boxes ...netsim.Middlebox) (*Endpoint, *netsim.Network, *testApp, *testApp) {
	client := NewEndpoint(clientAddr, DefaultClient, rand.New(fixedISN(clientISN)))
	server := NewEndpoint(serverAddr, DefaultServer, rand.New(fixedISN(serverISN)))
	client.Retransmit = DefaultRetransmit
	server.Retransmit = DefaultRetransmit
	srvApp := &testApp{response: []byte("a response long enough to wrap"), closeAfter: true}
	server.NewServerApp = func(*Conn) App { return srvApp }
	server.Listen(80)
	n := netsim.New(client, server, boxes...)
	client.Attach(n)
	server.Attach(n)
	cliApp := &testApp{request: []byte("a request crossing the wrap")}
	return client, n, cliApp, srvApp
}

// TestWraparoundHandshakeAndData drives a connection whose client ISN is
// 0xFFFFFFF0 and server ISN 0xFFFFFFFA through handshake and a full
// request/response: both directions' sequence numbers cross 2^32 inside the
// first data segment. Any non-modular comparison in the path (window checks,
// ACK acceptability) breaks this transfer.
func TestWraparoundHandshakeAndData(t *testing.T) {
	client, n, cliApp, srvApp := wrapRig(0xFFFFFFF0, 0xFFFFFFFA)
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if conn.iss != 0xFFFFFFF0 {
		t.Fatalf("scripted rng produced ISS %#x, want 0xFFFFFFF0 (rand internals changed?)", conn.iss)
	}
	if !cliApp.established || !srvApp.established {
		t.Fatal("handshake did not complete with near-wrap ISNs")
	}
	if !bytes.Equal(srvApp.data, cliApp.request) {
		t.Errorf("server got %q, want %q", srvApp.data, cliApp.request)
	}
	if !bytes.Equal(cliApp.data, []byte("a response long enough to wrap")) {
		t.Errorf("client got %q", cliApp.data)
	}
	if conn.ResetReceived {
		t.Error("connection reset while crossing the wrap")
	}
	// Prove the test actually crossed the wrap: sndNxt is numerically below
	// the ISS only if the sequence numbers wrapped.
	if conn.sndNxt >= conn.iss {
		t.Errorf("sndNxt %#x did not wrap past ISS %#x; request too short for the edge case", conn.sndNxt, conn.iss)
	}
}

// TestWraparoundRetransmission drops the client's first data segment, whose
// payload spans the wrap, and checks the RTO path (trackRtx/ackRtx and their
// sequence comparisons) recovers it.
func TestWraparoundRetransmission(t *testing.T) {
	box := &dropFirst{dir: netsim.ToServer, flags: packet.FlagPSH, payload: true}
	client, n, cliApp, srvApp := wrapRig(0xFFFFFFF0, 0xFFFFFFFA, box)
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if !box.dropped {
		t.Fatal("test box never saw a data segment")
	}
	if !bytes.Equal(srvApp.data, cliApp.request) {
		t.Errorf("server got %q after retransmission, want %q", srvApp.data, cliApp.request)
	}
	if len(conn.rtxQ) != 0 {
		t.Errorf("%d segments still queued for retransmission after full ACK", len(conn.rtxQ))
	}
	if conn.sndNxt >= conn.iss {
		t.Errorf("sndNxt %#x did not wrap past ISS %#x", conn.sndNxt, conn.iss)
	}
}

// TestWraparoundSynRetransmission pins the extreme edge: ISS 0xFFFFFFFF, so
// the SYN itself consumes the last sequence number and its acknowledgment is
// 0 — the wrapped ACK must still clear the retransmission queue.
func TestWraparoundSynRetransmission(t *testing.T) {
	box := &dropFirst{dir: netsim.ToServer, flags: packet.FlagSYN}
	client, n, cliApp, srvApp := wrapRig(0xFFFFFFFF, 0xFFFFFFFA, box)
	conn := client.Connect(serverAddr, 80, cliApp)
	n.Run(0)
	if conn.iss != 0xFFFFFFFF {
		t.Fatalf("scripted rng produced ISS %#x, want 0xFFFFFFFF", conn.iss)
	}
	if !box.dropped {
		t.Fatal("test box never saw the SYN")
	}
	if !cliApp.established || !srvApp.established {
		t.Fatal("handshake did not recover from a dropped SYN at the wrap")
	}
	if !bytes.Equal(srvApp.data, cliApp.request) {
		t.Errorf("server got %q", srvApp.data)
	}
}
