package eval

import "testing"

func TestCarrierInterferenceMatchesAnecdote(t *testing.T) {
	got := CarrierInterference()
	for n := 1; n <= 11; n++ {
		if !got["wifi"][n] {
			t.Errorf("wifi: strategy %d failed; all work over wifi (§7)", n)
		}
	}
	// T-Mobile: Strategies 1 and 3 fail (bare server SYN dropped);
	// Strategy 2 survives via its payload-bearing SYN.
	for n, want := range map[int]bool{1: false, 2: true, 3: false, 8: true, 11: true} {
		if got["tmobile"][n] != want {
			t.Errorf("tmobile: strategy %d works=%v, want %v", n, got["tmobile"][n], want)
		}
	}
	// AT&T: all three simultaneous-open strategies fail.
	for n, want := range map[int]bool{1: false, 2: false, 3: false, 8: true} {
		if got["att"][n] != want {
			t.Errorf("att: strategy %d works=%v, want %v", n, got["att"][n], want)
		}
	}
}
