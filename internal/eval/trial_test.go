package eval

import (
	"testing"

	"geneva/internal/strategies"
)

func TestNoCensorAllProtocolsSucceed(t *testing.T) {
	for _, proto := range ChinaProtocols {
		cfg := Config{
			Country: CountryNone,
			Session: SessionFor(CountryNone, proto, true),
			Seed:    1,
		}
		res := Run(cfg)
		if !res.Success {
			t.Errorf("%s: failed with no censor present", proto)
		}
	}
}

func TestChinaCensorsForbiddenContent(t *testing.T) {
	for _, proto := range ChinaProtocols {
		cfg := Config{
			Country: CountryChina,
			Session: SessionFor(CountryChina, proto, true),
			Tries:   1,
			Seed:    2,
		}
		rate := Rate(cfg, 40)
		max := 0.15
		if proto == "smtp" {
			max = 0.45 // SMTP's baseline miss rate is 26% in the paper
		}
		if rate > max {
			t.Errorf("%s: no-evasion success rate %.2f, want censorship", proto, rate)
		}
	}
}

func TestChinaAllowsBenignContent(t *testing.T) {
	for _, proto := range ChinaProtocols {
		cfg := Config{
			Country: CountryChina,
			Session: SessionFor(CountryChina, proto, false),
			Seed:    3,
		}
		res := Run(cfg)
		if !res.Success {
			t.Errorf("%s: benign request failed through the GFW", proto)
		}
		if res.CensorEvents != 0 {
			t.Errorf("%s: benign request triggered censorship", proto)
		}
	}
}

func TestStrategy1EvadesChinaHTTP(t *testing.T) {
	s := strategies.Strategy1.Parse()
	cfg := Config{
		Country:  CountryChina,
		Session:  SessionFor(CountryChina, "http", true),
		Strategy: s,
		Seed:     4,
	}
	rate := Rate(cfg, 100)
	if rate < 0.35 || rate > 0.75 {
		t.Errorf("Strategy 1 HTTP success rate %.2f, paper: 54%%", rate)
	}
}

func TestStrategy1DNSRetriesAmplify(t *testing.T) {
	s := strategies.Strategy1.Parse()
	cfg := Config{
		Country:  CountryChina,
		Session:  SessionFor(CountryChina, "dns", true),
		Strategy: s,
		Tries:    3,
		Seed:     5,
	}
	rate := Rate(cfg, 100)
	if rate < 0.75 {
		t.Errorf("Strategy 1 DNS (3 tries) success rate %.2f, paper: 89%%", rate)
	}
}

func TestStrategy8Kazakhstan100(t *testing.T) {
	for _, s := range strategies.Kazakhstan() {
		cfg := Config{
			Country:  CountryKazakhstan,
			Session:  SessionFor(CountryKazakhstan, "http", true),
			Strategy: s.Parse(),
			Seed:     6,
		}
		rate := Rate(cfg, 20)
		if rate != 1.0 {
			t.Errorf("Strategy %d in Kazakhstan: %.2f, paper: 100%%", s.Number, rate)
		}
	}
}

func TestKazakhstanCensorsWithoutEvasion(t *testing.T) {
	cfg := Config{
		Country: CountryKazakhstan,
		Session: SessionFor(CountryKazakhstan, "http", true),
		Seed:    7,
	}
	res := Run(cfg)
	if res.Success {
		t.Error("forbidden HTTP through Kazakhstan succeeded without evasion")
	}
	if res.CensorEvents == 0 {
		t.Error("Kazakhstan censor did not fire")
	}
}

func TestIndiaAndIranStrategy8(t *testing.T) {
	for _, country := range []string{CountryIndia, CountryIran} {
		base := Config{
			Country: country,
			Session: SessionFor(country, "http", true),
			Seed:    8,
		}
		if Run(base).Success {
			t.Errorf("%s: no-evasion HTTP succeeded", country)
		}
		withS8 := base
		withS8.Strategy = strategies.Strategy8.Parse()
		if rate := Rate(withS8, 20); rate != 1.0 {
			t.Errorf("%s: Strategy 8 rate %.2f, paper: 100%%", country, rate)
		}
	}
}

func TestIranHTTPSAndStrategy8(t *testing.T) {
	base := Config{
		Country: CountryIran,
		Session: SessionFor(CountryIran, "https", true),
		Seed:    9,
	}
	if Run(base).Success {
		t.Error("Iran: no-evasion HTTPS succeeded")
	}
	withS8 := base
	withS8.Strategy = strategies.Strategy8.Parse()
	if rate := Rate(withS8, 20); rate != 1.0 {
		t.Errorf("Iran HTTPS Strategy 8 rate %.2f, paper: 100%%", rate)
	}
}

func TestOtherProtocolsUncensoredOutsideChina(t *testing.T) {
	for _, country := range []string{CountryIndia, CountryIran, CountryKazakhstan} {
		for _, proto := range []string{"dns", "ftp", "smtp"} {
			cfg := Config{
				Country: country,
				Session: SessionFor(country, proto, true),
				Tries:   TriesFor(proto),
				Seed:    10,
			}
			if !Run(cfg).Success {
				t.Errorf("%s/%s: should be uncensored (Table 2: 100%%)", country, proto)
			}
		}
	}
}

func TestKazakhstanHTTPSInactive(t *testing.T) {
	cfg := Config{
		Country: CountryKazakhstan,
		Session: SessionFor(CountryKazakhstan, "https", true),
		Seed:    11,
	}
	if !Run(cfg).Success {
		t.Error("Kazakhstan HTTPS censorship should be inactive (§5.3)")
	}
}
