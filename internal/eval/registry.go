package eval

import (
	"math/rand"
	"net/netip"

	"geneva/internal/censor"
	"geneva/internal/censor/gfw"
	"geneva/internal/censor/india"
	"geneva/internal/censor/iran"
	"geneva/internal/censor/kazakh"
	"geneva/internal/censor/tmc"
	"geneva/internal/strategies"
)

// CensorDef is one row of the censor registry: everything the harness
// needs to enumerate a modeled censor — validation, construction, Table-2
// blocks, the robustness sweep, the §8 router, the fleet's per-country
// cells, and the cmd flag help all derive from this table. Registering a
// censor here is the whole wiring job; nothing else keeps a country list.
type CensorDef struct {
	// Country is the canonical key ("china", "india-jio", ...).
	Country string
	// Display is the human name used in docs and flag help.
	Display string
	// MetricLabel is the fleet's per-country obs label (underscored,
	// since metric names use dots as separators).
	MetricLabel string
	// Protocols are the application protocols this censor censors.
	Protocols []string
	// InPath marks censors that can drop packets (blackholing); on-path
	// censors only ever inject.
	InPath bool
	// Residual marks censors carrying cross-connection state through
	// censor.ResidualCarrier (the fleet's residual ledger).
	Residual bool
	// RouterPrefix is the country's client prefix in the §8 deployment.
	RouterPrefix netip.Prefix
	// Deploy is the strategy the §8 router serves this country.
	Deploy strategies.Strategy
	// Table2 are the strategies in this censor's Table-2 block. China's
	// block is built separately (it sweeps the full China strategy set);
	// its entry leaves this nil.
	Table2 []strategies.Strategy
	// New builds the middlebox.
	New func(bl censor.Blocklist, rng *rand.Rand) CensorCounter
}

// censorRegistry is the ordered registry. The order is load-bearing only
// for presentation (Table-2 block order, flag help, fleet default mix);
// all seeds key off country names or strategy numbers, never off registry
// position.
var censorRegistry = []CensorDef{
	{
		Country:      CountryChina,
		Display:      "China (GFW)",
		MetricLabel:  "china",
		Protocols:    []string{"dns", "ftp", "http", "https", "smtp"},
		Residual:     true,
		RouterPrefix: netip.MustParsePrefix("10.1.0.0/16"),
		Deploy:       strategies.Strategy1,
		New: func(bl censor.Blocklist, rng *rand.Rand) CensorCounter {
			return gfw.New(bl, rng)
		},
	},
	{
		Country:      CountryIndia,
		Display:      "India (Airtel)",
		MetricLabel:  "india",
		Protocols:    []string{"http"},
		RouterPrefix: netip.MustParsePrefix("10.2.0.0/16"),
		Deploy:       strategies.Strategy8,
		Table2:       []strategies.Strategy{strategies.Strategy8},
		New: func(bl censor.Blocklist, rng *rand.Rand) CensorCounter {
			return india.NewAirtel(bl, rng)
		},
	},
	{
		Country:      CountryIndiaJio,
		Display:      "India (Jio)",
		MetricLabel:  "india_jio",
		Protocols:    []string{"https"},
		InPath:       true, // SNI-triggered blackholing drops packets
		RouterPrefix: netip.MustParsePrefix("10.5.0.0/16"),
		Deploy:       strategies.Strategy8,
		Table2:       []strategies.Strategy{strategies.Strategy8},
		New: func(bl censor.Blocklist, rng *rand.Rand) CensorCounter {
			return india.New(india.Jio(), bl, rng)
		},
	},
	{
		Country:      CountryIndiaVodafone,
		Display:      "India (Vodafone)",
		MetricLabel:  "india_vodafone",
		Protocols:    []string{"http"},
		RouterPrefix: netip.MustParsePrefix("10.6.0.0/16"),
		Deploy:       strategies.Strategy8,
		Table2:       []strategies.Strategy{strategies.Strategy8},
		New: func(bl censor.Blocklist, rng *rand.Rand) CensorCounter {
			return india.New(india.Vodafone(), bl, rng)
		},
	},
	{
		Country:      CountryIran,
		Display:      "Iran",
		MetricLabel:  "iran",
		Protocols:    []string{"http", "https"},
		InPath:       true,
		RouterPrefix: netip.MustParsePrefix("10.3.0.0/16"),
		Deploy:       strategies.Strategy8,
		Table2:       []strategies.Strategy{strategies.Strategy8},
		New: func(bl censor.Blocklist, rng *rand.Rand) CensorCounter {
			return iran.New(bl, rng)
		},
	},
	{
		Country:      CountryKazakhstan,
		Display:      "Kazakhstan",
		MetricLabel:  "kazakhstan",
		Protocols:    []string{"http"},
		InPath:       true,
		RouterPrefix: netip.MustParsePrefix("10.4.0.0/16"),
		Deploy:       strategies.Strategy11,
		Table2:       strategies.Kazakhstan(),
		New: func(bl censor.Blocklist, rng *rand.Rand) CensorCounter {
			return kazakh.New(bl, rng)
		},
	},
	{
		Country:      CountryTurkmenistan,
		Display:      "Turkmenistan (TMC)",
		MetricLabel:  "turkmenistan",
		Protocols:    []string{"dns", "http", "https"},
		Residual:     true,
		RouterPrefix: netip.MustParsePrefix("10.7.0.0/16"),
		Deploy:       strategies.Strategy8,
		Table2:       []strategies.Strategy{strategies.Strategy8},
		New: func(bl censor.Blocklist, rng *rand.Rand) CensorCounter {
			return tmc.New(bl, rng)
		},
	},
}

// Registry returns the censor registry (a copy of the slice; the defs
// themselves are shared and read-only).
func Registry() []CensorDef {
	out := make([]CensorDef, len(censorRegistry))
	copy(out, censorRegistry)
	return out
}

// CensorByCountry looks a country up in the registry.
func CensorByCountry(country string) (CensorDef, bool) {
	for _, d := range censorRegistry {
		if d.Country == country {
			return d, true
		}
	}
	return CensorDef{}, false
}

// CensoredCountries returns the registry's countries in order (without
// CountryNone).
func CensoredCountries() []string {
	out := make([]string, len(censorRegistry))
	for i, d := range censorRegistry {
		out[i] = d.Country
	}
	return out
}

// CensoredProtocols returns the protocols a country censors (nil for
// CountryNone or an unknown country).
func CensoredProtocols(country string) []string {
	if d, ok := CensorByCountry(country); ok {
		return d.Protocols
	}
	return nil
}

// SweepProtocol returns the protocol single-protocol experiments (the
// robustness sweep, the §8 router) exercise against a country's censor:
// HTTP where it is censored, otherwise the censor's first censored
// protocol. CountryNone sweeps HTTP (nothing is censored anyway).
func SweepProtocol(country string) string {
	d, ok := CensorByCountry(country)
	if !ok {
		return "http"
	}
	for _, p := range d.Protocols {
		if p == "http" {
			return p
		}
	}
	return d.Protocols[0]
}
