package eval

import (
	"strings"
	"testing"
)

func TestClientCompatibilityMatchesSection7(t *testing.T) {
	if testing.Short() {
		t.Skip("14 strategies x 17 OSes")
	}
	cells := ClientCompatibility()
	// 11 strategies + 3 insertion variants, 17 OSes each.
	if len(cells) != 14*17 {
		t.Fatalf("matrix has %d cells, want %d", len(cells), 14*17)
	}
	payloadStrategies := map[string]bool{
		"Corrupt ACK, Injected Load": true, // Strategy 5
		"Triple Load":                true, // Strategy 9
		"Double GET":                 true, // Strategy 10
	}
	for _, c := range cells {
		winOrMac := strings.HasPrefix(c.OS, "Windows") || strings.HasPrefix(c.OS, "macOS")
		insertion := strings.Contains(c.Strategy, "insertion variant")
		switch {
		case insertion:
			if !c.Works {
				t.Errorf("%s on %s: insertion variant must work everywhere", c.Strategy, c.OS)
			}
		case payloadStrategies[c.Strategy] && winOrMac:
			if c.Works {
				t.Errorf("%s on %s: SYN+ACK-payload strategies must fail on Windows/macOS", c.Strategy, c.OS)
			}
		default:
			if !c.Works {
				t.Errorf("%s on %s: should work (paper: all but 5, 9, 10 work everywhere)", c.Strategy, c.OS)
			}
		}
	}
	out := FormatCompat(cells)
	if !strings.Contains(out, "fails on:") || !strings.Contains(out, "all 17 client OSes") {
		t.Error("FormatCompat output malformed")
	}
}
