package eval

import (
	"bytes"
	"fmt"
	"strings"

	"geneva/internal/packet"
	"geneva/internal/strategies"
	"geneva/internal/tcpstack"
)

// Waterfall runs one traced connection with the given strategy and renders
// the packet exchange in the style of Figures 1 and 2. The country picks
// the censor ("" for a censor-free diagram of pure client/server behaviour).
func Waterfall(country string, strat *strategies.Strategy, seed int64) string {
	proto := "http"
	cfg := Config{
		Country:   country,
		Session:   SessionFor(country, proto, true),
		ClientOS:  tcpstack.DefaultClient,
		Seed:      seed,
		WithTrace: true,
	}
	title := "Normal behavior"
	if strat != nil {
		cfg.Strategy = strat.Parse()
		title = fmt.Sprintf("Strategy %d: %s", strat.Number, strat.Name)
	}
	res := Run(cfg)
	out := res.Trace.Waterfall(title)
	verdict := "censored"
	if res.Success {
		verdict = "evaded censorship"
	}
	if country == CountryNone {
		verdict = "no censor present"
	}
	return out + fmt.Sprintf("  => %s\n", verdict)
}

// Figure1 renders the China waterfalls: normal behaviour plus Strategies
// 1-8 (the paper's Figure 1). Seeds are chosen so the probabilistic
// strategies show their successful path.
func Figure1() string {
	var b strings.Builder
	b.WriteString(Waterfall(CountryChina, nil, 1))
	b.WriteByte('\n')
	for _, s := range strategies.China() {
		s := s
		b.WriteString(Waterfall(CountryChina, &s, figure1Seed(s.Number)))
		b.WriteByte('\n')
	}
	return b.String()
}

// EvadingSeed finds a seed whose trial evades for the given strategy, so a
// waterfall shows the strategy's successful path (as the paper's figures
// do). Falls back to seed 1 if none of the first 500 evade.
func EvadingSeed(country string, s strategies.Strategy) int64 {
	for seed := int64(1); seed < 500; seed++ {
		cfg := Config{
			Country:  country,
			Session:  SessionFor(country, "http", true),
			Strategy: s.Parse(),
			Seed:     seed,
		}
		if Run(cfg).Success {
			return seed
		}
	}
	return 1
}

// figure1Seed picks, per strategy, a seed whose China trial evades.
func figure1Seed(number int) int64 {
	s, _ := strategies.ByNumber(number)
	return EvadingSeed(CountryChina, s)
}

// Figure2 renders the Kazakhstan waterfalls (Strategies 9-11).
func Figure2() string {
	var b strings.Builder
	for _, s := range []strategies.Strategy{
		strategies.Strategy9, strategies.Strategy10, strategies.Strategy11,
	} {
		s := s
		b.WriteString(Waterfall(CountryKazakhstan, &s, 1))
		b.WriteByte('\n')
	}
	return b.String()
}

// forbiddenToken returns a byte substring that appears only in the
// protocol's forbidden message, so TTL-limiting instrumentation can target
// exactly the censored query (the paper's §6 method: the handshake and any
// sign-in dialogue proceed normally; only the query is TTL-limited).
func forbiddenToken(protocol string) []byte {
	switch protocol {
	case "dns", "https":
		return []byte("wikipedia")
	case "ftp", "http":
		return []byte("ultrasurf")
	case "smtp":
		return []byte("tibetalk")
	}
	return nil
}

// LocalizeCensor performs the §6 TTL-limited probe experiment for one
// protocol: complete the handshake (and any dialogue) normally, then send
// the forbidden query with increasing TTLs until the censor responds. It
// returns the first TTL that elicited censorship (the censor's hop
// distance), or -1. Several seeds are probed per TTL so a baseline DPI
// miss does not mislocate the box.
func LocalizeCensor(protocol string, seed int64) int {
	for ttl := 1; ttl <= 12; ttl++ {
		for rep := int64(0); rep < 5; rep++ {
			if probeAtTTL(protocol, uint8(ttl), seed+rep*31) {
				return ttl
			}
		}
	}
	return -1
}

// probeAtTTL runs a connection whose forbidden-query packets carry the
// given TTL and reports whether censorship was triggered.
func probeAtTTL(protocol string, ttl uint8, seed int64) bool {
	token := forbiddenToken(protocol)
	cfg := Config{
		Country: CountryChina,
		Session: SessionFor(CountryChina, protocol, true),
		Seed:    seed,
		ClientHook: func(ep *tcpstack.Endpoint) {
			ep.Outbound = func(p *packet.Packet) []*packet.Packet {
				if len(p.TCP.Payload) > 0 && bytes.Contains(p.TCP.Payload, token) {
					p.IP.TTL = ttl
				}
				return []*packet.Packet{p}
			}
		},
	}
	res := Run(cfg)
	return res.CensorEvents > 0
}

// Figure3 produces the multi-box evidence (the paper's Figure 3 argument):
// (a) one TCP-level strategy's success per protocol (heterogeneity), and
// (b) the censorship hop per protocol from TTL-limited probes (colocation).
type Figure3Result struct {
	// StrategyRates maps protocol -> Strategy 5 success rate.
	StrategyRates map[string]float64
	// CensorHops maps protocol -> first TTL eliciting censorship.
	CensorHops map[string]int
}

// Figure3 runs both halves of the experiment.
func Figure3(trials int) Figure3Result {
	res := Figure3Result{
		StrategyRates: make(map[string]float64),
		CensorHops:    make(map[string]int),
	}
	s5, _ := byNumber(5)
	for _, proto := range ChinaProtocols {
		cfg := Config{
			Country:  CountryChina,
			Session:  SessionFor(CountryChina, proto, true),
			Strategy: s5,
			Tries:    TriesFor(proto),
			Seed:     int64(500 + protoSeed(proto)),
		}
		res.StrategyRates[proto] = Rate(cfg, trials)
		res.CensorHops[proto] = LocalizeCensor(proto, int64(900+protoSeed(proto)))
	}
	return res
}

// FormatFigure3 renders the result.
func FormatFigure3(r Figure3Result) string {
	var b strings.Builder
	b.WriteString("Figure 3 evidence: distinct per-protocol censorship boxes, colocated\n\n")
	fmt.Fprintf(&b, "%-8s %22s %12s\n", "Protocol", "Strategy 5 success", "Censor hop")
	for _, p := range ChinaProtocols {
		fmt.Fprintf(&b, "%-8s %21.0f%% %12d\n", p, 100*r.StrategyRates[p], r.CensorHops[p])
	}
	b.WriteString("\nSame hop for every protocol => colocated boxes;\n")
	b.WriteString("divergent success for a TCP-level strategy => separate network stacks.\n")
	return b.String()
}
