package eval

import (
	"bytes"
	"fmt"
	"strings"

	"geneva/internal/packet"
	"geneva/internal/strategies"
)

// Failure causes distinguished by ClassifyFailure. The differential matrix
// (docs/EXPERIMENTS.md) exists to show these apart: the same strategy can
// fail against two censors for entirely different mechanical reasons, which
// is the evidence that the models are different machines, not one censor
// with different blocklists.
const (
	CauseEvaded    = "evaded"             // the trial succeeded
	CauseHijacked  = "hijacked"           // in-path MITM intercepted the flow (Kazakhstan)
	CauseForgedDNS = "forged-dns"         // injected forged DNS response (TMC)
	Cause302       = "injected-302"       // injected HTTP redirect (Vodafone)
	CauseBlockpage = "injected-blockpage" // injected HTTP block page (Airtel)
	CauseRST       = "injected-rst"       // injected RST tear-down (GFW, TMC)
	CauseBlackhole = "blackholed"         // silently dropped in-path (Iran, Jio)
	CauseBroken    = "broken"             // failed with no censor action: the strategy broke the connection itself
)

// ClassifyFailure reduces a traced trial to its failure cause: what the
// censor mechanically did that made the connection fail. The verdict comes
// from the packet evidence (injected packet shapes, in-path drops), with
// censor trace notes only breaking the blockpage/hijack tie — so a censor
// cannot claim an outcome its packets don't show.
func ClassifyFailure(res Result) string {
	if res.Success {
		return CauseEvaded
	}
	if res.CensorEvents == 0 || res.Trace == nil {
		return CauseBroken
	}
	var saw302, sawPage, sawDNS, sawRST, sawDrop, sawHijack bool
	for _, e := range res.Trace.Entries {
		switch {
		case strings.Contains(e.Note, "injected by"):
			p := e.Pkt
			switch {
			case bytes.HasPrefix(p.TCP.Payload, []byte("HTTP/1.1 302")):
				saw302 = true
			case bytes.HasPrefix(p.TCP.Payload, []byte("HTTP/1.1 ")):
				sawPage = true
			case p.TCP.SrcPort == 53 && len(p.TCP.Payload) > 0:
				sawDNS = true
			case p.TCP.Flags&packet.FlagRST != 0:
				sawRST = true
			}
		case strings.Contains(e.Note, "dropped in-path"):
			sawDrop = true
		}
		if strings.Contains(e.Note, "hijack") || strings.Contains(e.Note, "MITM") {
			sawHijack = true
		}
	}
	switch {
	case sawHijack:
		return CauseHijacked
	case sawDNS:
		return CauseForgedDNS
	case saw302:
		return Cause302
	case sawPage:
		return CauseBlockpage
	case sawRST:
		return CauseRST
	case sawDrop:
		return CauseBlackhole
	}
	return CauseBroken
}

// DifferentialStrategies are the strategy columns of the differential
// matrix: no evasion, the GFW's deployment pick (Strategy 1), the
// single-packet-censor killer (Strategy 8), and Kazakhstan's Strategy 11.
var DifferentialStrategies = []int{0, 1, 8, 11}

// DifferentialCell is one cell of the matrix: what one censor did to one
// forbidden session on one protocol under one strategy.
type DifferentialCell struct {
	Country  string
	Protocol string
	Strategy int
	Cause    string
}

// Differential runs the cross-censor differential matrix: every registered
// censor × every protocol it censors × DifferentialStrategies, one traced
// trial each. Seeds key off (strategy, protocol) only — never off registry
// position — so adding a censor appends rows without perturbing existing
// cells.
func Differential() []DifferentialCell {
	var cells []DifferentialCell
	for _, d := range Registry() {
		for _, proto := range d.Protocols {
			for _, s := range DifferentialStrategies {
				cfg := Config{
					Country:   d.Country,
					Session:   SessionFor(d.Country, proto, true),
					Tries:     TriesFor(proto),
					Seed:      int64(1000*s + protoSeed(proto)),
					WithTrace: true,
				}
				if s > 0 {
					st, ok := strategies.ByNumber(s)
					if !ok {
						panic(fmt.Sprintf("eval: unknown differential strategy %d", s))
					}
					cfg.Strategy = st.Parse()
				}
				cells = append(cells, DifferentialCell{
					Country:  d.Country,
					Protocol: proto,
					Strategy: s,
					Cause:    ClassifyFailure(Run(cfg)),
				})
			}
		}
	}
	return cells
}

// FormatDifferential renders the matrix: one row per (censor, protocol),
// one column per strategy.
func FormatDifferential(cells []DifferentialCell) string {
	type rowKey struct{ country, proto string }
	rows := []rowKey{}
	seen := map[rowKey]map[int]string{}
	for _, c := range cells {
		k := rowKey{c.Country, c.Protocol}
		if seen[k] == nil {
			seen[k] = map[int]string{}
			rows = append(rows, k)
		}
		seen[k][c.Strategy] = c.Cause
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-6s", "censor", "proto")
	for _, s := range DifferentialStrategies {
		name := "none"
		if s > 0 {
			name = fmt.Sprintf("strategy-%d", s)
		}
		fmt.Fprintf(&b, " %-19s", name)
	}
	b.WriteByte('\n')
	for _, k := range rows {
		fmt.Fprintf(&b, "%-16s %-6s", k.country, k.proto)
		for _, s := range DifferentialStrategies {
			fmt.Fprintf(&b, " %-19s", seen[k][s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
