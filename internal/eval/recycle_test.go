package eval

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"geneva/internal/netsim"
	"geneva/internal/obs"
	"geneva/internal/race"
	"geneva/internal/strategies"
)

// traceText renders a trace entry-by-entry — time, direction, note, and the
// full packet — so two traces compare byte-for-byte.
func traceText(tr *netsim.Trace) string {
	var b strings.Builder
	for _, e := range tr.Entries {
		fmt.Fprintf(&b, "%v %v %q %s\n", e.Time, e.Dir, e.Note, e.Pkt.String())
	}
	return b.String()
}

// TestRecyclingBitIdentical is the pooling safety referee: the same trial
// with packet recycling on and off must produce the same outcome, the same
// censor activity, and a byte-identical packet trace. Any divergence means
// a recycled buffer was still referenced somewhere — exactly the bug class
// the pool's ownership contract exists to prevent.
func TestRecyclingBitIdentical(t *testing.T) {
	cases := []struct {
		name     string
		strategy int // 0 = no evasion
		impaired bool
	}{
		{"no-evasion", 0, false},
		{"tcb-teardown", 1, false},
		{"syn-ack-burst", 6, false},
		{"window-reduction", 8, false},
		{"tcb-teardown-lossy", 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				cfg := Config{
					Country:   CountryChina,
					Session:   SessionFor(CountryChina, "http", true),
					Tries:     TriesFor("http"),
					Seed:      seed,
					WithTrace: true,
				}
				if tc.strategy > 0 {
					s, ok := strategies.ByNumber(tc.strategy)
					if !ok {
						t.Fatalf("no strategy %d", tc.strategy)
					}
					cfg.Strategy = s.Parse()
				}
				if tc.impaired {
					cfg.Impairments = netsim.Symmetric(netsim.Profile{
						Loss: 0.05, Duplicate: 0.05, Jitter: 2 * time.Millisecond,
					})
				}

				rigOn := NewRig(cfg) // NewRig enables recycling
				rigOff := NewRig(cfg)
				rigOff.Net.RecyclePackets = false

				appOn := rigOn.Attempt()
				appOff := rigOff.Attempt()

				if appOn.Succeeded() != appOff.Succeeded() ||
					appOn.Established() != appOff.Established() {
					t.Fatalf("seed %d: outcome diverges with recycling: on=(%v,%v) off=(%v,%v)",
						seed, appOn.Succeeded(), appOn.Established(),
						appOff.Succeeded(), appOff.Established())
				}
				if rigOn.CensorEvents() != rigOff.CensorEvents() {
					t.Fatalf("seed %d: censor events diverge: on=%d off=%d",
						seed, rigOn.CensorEvents(), rigOff.CensorEvents())
				}
				on, off := traceText(rigOn.Net.Trace), traceText(rigOff.Net.Trace)
				if on != off {
					t.Fatalf("seed %d: traces diverge with recycling\n--- recycling on ---\n%s--- recycling off ---\n%s",
						seed, on, off)
				}
			}
		})
	}
}

// TestRingRecorderMatchesTrace pins the recorder plumbing: a RingRecorder
// big enough to hold everything observes exactly the entries the full
// Trace records, clone-isolated from the recycled originals.
func TestRingRecorderMatchesTrace(t *testing.T) {
	s1, _ := strategies.ByNumber(1)
	cfg := Config{
		Country:   CountryChina,
		Session:   SessionFor(CountryChina, "http", true),
		Strategy:  s1.Parse(),
		Seed:      7,
		WithTrace: true,
	}
	rig := NewRig(cfg)
	ring := netsim.NewRingRecorder(4096)
	rig.Net.Recorder = ring
	rig.Attempt()

	full := rig.Net.Trace.Entries
	got := ring.Entries()
	if len(full) == 0 {
		t.Fatal("trace recorded nothing")
	}
	if len(got) != len(full) {
		t.Fatalf("ring recorded %d entries, trace %d", len(got), len(full))
	}
	for i := range full {
		a, b := full[i], got[i]
		if a.Time != b.Time || a.Dir != b.Dir || a.Note != b.Note ||
			a.Pkt.String() != b.Pkt.String() {
			t.Fatalf("entry %d differs:\ntrace: %v %v %q %s\nring:  %v %v %q %s",
				i, a.Time, a.Dir, a.Note, a.Pkt.String(),
				b.Time, b.Dir, b.Note, b.Pkt.String())
		}
	}
}

// TestRingRecorderBounded pins the ring semantics: capacity n keeps the
// newest n entries, oldest-first.
func TestRingRecorderBounded(t *testing.T) {
	s1, _ := strategies.ByNumber(1)
	cfg := Config{
		Country:   CountryChina,
		Session:   SessionFor(CountryChina, "http", true),
		Strategy:  s1.Parse(),
		Seed:      7,
		WithTrace: true,
	}
	rig := NewRig(cfg)
	const n = 5
	ring := netsim.NewRingRecorder(n)
	rig.Net.Recorder = ring
	rig.Attempt()

	full := rig.Net.Trace.Entries
	got := ring.Entries()
	if len(full) <= n {
		t.Skipf("trial produced only %d entries; need more than %d", len(full), n)
	}
	if len(got) != n {
		t.Fatalf("ring holds %d entries, want %d", len(got), n)
	}
	tail := full[len(full)-n:]
	for i := range tail {
		if tail[i].Note != got[i].Note || tail[i].Pkt.String() != got[i].Pkt.String() {
			t.Fatalf("ring entry %d is not the trace tail: %q vs %q", i, got[i].Note, tail[i].Note)
		}
	}
}

// TestTrialAllocBudget pins the end-to-end per-trial allocation budget.
// The seed PR measured ~151 allocs per China/http trial; the pooled hot
// path runs at ~61. The budget leaves headroom for cross-seed variance but
// fails long before a regression to the unpooled numbers. It runs with
// metrics explicitly disabled: the obs layer's zero-cost-when-off guarantee
// is part of what this tripwire enforces.
func TestTrialAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; budgets are enforced by make alloc-budget")
	}
	if obs.Enabled() {
		t.Fatal("metrics unexpectedly enabled; a prior test leaked obs state")
	}
	s1, _ := strategies.ByNumber(1)
	st := s1.Parse()
	session := SessionFor(CountryChina, "http", true)
	seed := int64(0)
	allocs := testing.AllocsPerRun(50, func() {
		seed++
		Run(Config{
			Country:  CountryChina,
			Session:  session,
			Strategy: st,
			Tries:    1,
			Seed:     seed,
		})
	})
	const budget = 110
	if allocs > budget {
		t.Errorf("full trial allocates %.0f objects/op, budget is %d (seed baseline was ~151)",
			allocs, budget)
	}
}
