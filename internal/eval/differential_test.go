package eval

import (
	"os"
	"strings"
	"testing"
)

const differentialGolden = "testdata/differential.txt"

// TestDifferentialMatchesGolden locks the cross-censor differential matrix
// char-for-char: every registered censor × censored protocol × strategy
// column, with the failure cause classified from packet evidence. The
// matrix is the PR's proof obligation that the censors are mechanically
// different machines — regen with
//
//	UPDATE_GOLDEN=1 go test ./internal/eval/ -run TestDifferentialMatchesGolden
//
// and review the diff like any other behaviour change.
func TestDifferentialMatchesGolden(t *testing.T) {
	got := FormatDifferential(Differential())
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(differentialGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", differentialGolden)
		return
	}
	raw, err := os.ReadFile(differentialGolden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	want := string(raw)
	if got != want {
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Errorf("line %d:\n got: %q\nwant: %q", i+1, g, w)
			}
		}
		t.Error("differential matrix drifted from golden (UPDATE_GOLDEN=1 to regen)")
	}
}

// TestDifferentialCausesDiverge pins the matrix's reason to exist: at least
// one strategy column fails against three or more censors for three or more
// DIFFERENT mechanical reasons. One cause shared by every censor would mean
// the models collapsed into one censor with different blocklists.
func TestDifferentialCausesDiverge(t *testing.T) {
	cells := Differential()
	best, bestStrategy := 0, -1
	for _, s := range DifferentialStrategies {
		causes := map[string]bool{}
		censors := map[string]bool{}
		for _, c := range cells {
			if c.Strategy != s || c.Cause == CauseEvaded || c.Cause == CauseBroken {
				continue
			}
			causes[c.Cause] = true
			censors[c.Country] = true
		}
		if len(censors) >= 3 && len(causes) > best {
			best, bestStrategy = len(causes), s
		}
	}
	if best < 3 {
		t.Fatalf("no strategy fails across >=3 censors with >=3 distinct causes (best: %d)", best)
	}
	t.Logf("strategy %d fails with %d distinct causes", bestStrategy, best)

	// And the specific paper-level contrasts: the same no-evasion HTTP
	// session dies by injected RST in China, an injected block page on
	// Airtel, an injected 302 on Vodafone, and a silent blackhole in Iran.
	want := map[string]string{
		CountryChina:         CauseRST,
		CountryIndia:         CauseBlockpage,
		CountryIndiaVodafone: Cause302,
		CountryIran:          CauseBlackhole,
		CountryKazakhstan:    CauseHijacked,
	}
	for _, c := range cells {
		if c.Strategy != 0 || c.Protocol != "http" {
			continue
		}
		if w, ok := want[c.Country]; ok && c.Cause != w {
			t.Errorf("%s/http no-evasion: cause %s, want %s", c.Country, c.Cause, w)
		}
	}
	// The TMC's DNS engine answers before the resolver can: forged data,
	// not a tear-down.
	for _, c := range cells {
		if c.Country == CountryTurkmenistan && c.Protocol == "dns" && c.Strategy == 0 && c.Cause != CauseForgedDNS {
			t.Errorf("turkmenistan/dns no-evasion: cause %s, want %s", c.Cause, CauseForgedDNS)
		}
	}
}

// TestClassifyFailureEvaded pins the trivial branches.
func TestClassifyFailureEvaded(t *testing.T) {
	if c := ClassifyFailure(Result{Success: true}); c != CauseEvaded {
		t.Errorf("success classified %s", c)
	}
	if c := ClassifyFailure(Result{}); c != CauseBroken {
		t.Errorf("censor-free failure classified %s", c)
	}
}
