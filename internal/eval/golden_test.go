package eval

import (
	"os"
	"strings"
	"testing"
)

// TestTable2MatchesGoldenResults locks the zero-impairment contract from the
// other side: docs/RESULTS.txt was generated before the impairment layer and
// retransmission machinery existed, and a fresh Table 2 computation — whose
// Configs all carry the zero-value Impairments — must still reproduce it
// character for character. If installing the impairment hooks ever consumes
// an extra rng draw, arms a timer, or otherwise perturbs a lossless trial,
// some cell moves and this test names it.
func TestTable2MatchesGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full 300-trial table computation")
	}
	raw, err := os.ReadFile("../../docs/RESULTS.txt")
	if err != nil {
		t.Fatalf("reading golden results: %v", err)
	}
	const begin = "=== Table 2: strategy success rates (300 trials/cell) ==="
	text := string(raw)
	i := strings.Index(text, begin)
	if i < 0 {
		t.Fatalf("docs/RESULTS.txt lost its Table 2 section (%q)", begin)
	}
	rest := text[i+len(begin):]
	j := strings.Index(rest, "\n(95%")
	if j < 0 {
		t.Fatal("docs/RESULTS.txt Table 2 section lost its sampling-error footer")
	}
	want := strings.TrimLeft(rest[:j], "\n")

	got := FormatTable2(Table2(300))
	if got != want {
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for k := 0; k < len(gl) || k < len(wl); k++ {
			var g, w string
			if k < len(gl) {
				g = gl[k]
			}
			if k < len(wl) {
				w = wl[k]
			}
			if g != w {
				t.Errorf("line %d:\n  got  %q\n  want %q", k+1, g, w)
			}
		}
		if !t.Failed() {
			t.Error("Table 2 output differs from docs/RESULTS.txt")
		}
	}
}
