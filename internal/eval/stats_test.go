package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilsonIntervalKnownValues(t *testing.T) {
	// 50/100 at 95%: approximately [0.404, 0.596].
	lo, hi := WilsonInterval(50, 100, 1.96)
	if math.Abs(lo-0.404) > 0.01 || math.Abs(hi-0.596) > 0.01 {
		t.Errorf("WilsonInterval(50,100) = [%.3f, %.3f]", lo, hi)
	}
	// 0 successes: the lower bound is exactly 0, the upper bound positive.
	lo, hi = WilsonInterval(0, 100, 1.96)
	if lo != 0 || hi <= 0 || hi > 0.1 {
		t.Errorf("WilsonInterval(0,100) = [%.3f, %.3f]", lo, hi)
	}
	// All successes: the Wilson upper bound approaches (but needn't hit) 1.
	lo, hi = WilsonInterval(100, 100, 1.96)
	if hi < 0.99 || lo < 0.9 {
		t.Errorf("WilsonInterval(100,100) = [%.3f, %.3f]", lo, hi)
	}
	// No data: the vacuous interval.
	if lo, hi := WilsonInterval(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("WilsonInterval(0,0) = [%.3f, %.3f]", lo, hi)
	}
}

func TestWilsonIntervalProperties(t *testing.T) {
	f := func(succ, trials uint16) bool {
		n := int(trials%1000) + 1
		s := int(succ) % (n + 1)
		lo, hi := WilsonInterval(s, n, 1.96)
		p := float64(s) / float64(n)
		// Bounds ordered, within [0,1], and containing the point estimate.
		return lo >= 0 && hi <= 1 && lo <= hi && lo <= p+1e-9 && hi >= p-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMaxSamplingErrorShrinks(t *testing.T) {
	e100 := MaxSamplingError(100)
	e400 := MaxSamplingError(400)
	if e400 >= e100 {
		t.Errorf("error did not shrink with trials: %f vs %f", e100, e400)
	}
	if e400 > 0.06 || e400 < 0.03 {
		t.Errorf("MaxSamplingError(400) = %.3f, expected ~0.049", e400)
	}
}
