package eval

import (
	"strings"
	"testing"
)

func TestClientSideAnalogsAllFail(t *testing.T) {
	if testing.Short() {
		t.Skip("many strategies x trials")
	}
	rates := ClientSideGeneralization(30)
	if len(rates) != 50 {
		t.Fatalf("analog corpus has %d strategies, want 50 (25 shapes x before/after)", len(rates))
	}
	for name, r := range rates {
		if r > 0.25 {
			t.Errorf("%s: success rate %.2f — §3 says server-side analogs do not work", name, r)
		}
	}
}

func TestClientSideTeardownWorksFromClient(t *testing.T) {
	if rate := ClientSideTCBTeardownWorks(30); rate < 0.9 {
		t.Errorf("client-side TTL-limited RST teardown rate %.2f, should evade", rate)
	}
}

func TestDesyncConfirmation(t *testing.T) {
	withS1, without := DesyncConfirmation(80)
	if withS1 < 0.3 || withS1 > 0.75 {
		t.Errorf("seq-1 censorship with Strategy 1 = %.2f, paper: ~50%%", withS1)
	}
	if without != 0 {
		t.Errorf("seq-1 censorship without strategy = %.2f, paper: never", without)
	}
}

func TestInducedRstCriticality(t *testing.T) {
	s5n, s5d, s6n, s6d := InducedRstCriticality(60)
	if s5n < 0.85 {
		t.Errorf("Strategy 5 FTP normal = %.2f, want ~0.97", s5n)
	}
	if s5d > s5n-0.4 {
		t.Errorf("Strategy 5 with dropped RST = %.2f (normal %.2f): dropping the RST must break it", s5d, s5n)
	}
	if s6d < s6n-0.15 {
		// Strategy 6 must be insensitive to the induced RST.
	} else if s6n < 0.3 {
		t.Errorf("Strategy 6 FTP normal = %.2f, want ~0.55", s6n)
	}
	if s6d+0.15 < s6n {
		t.Errorf("Strategy 6 dropped = %.2f vs normal %.2f: should be unaffected", s6d, s6n)
	}
}

func TestStrategy7ResyncTarget(t *testing.T) {
	rate := Strategy7ResyncTarget(60)
	if rate < 0.3 {
		t.Errorf("seq-matched-to-RST censorship under Strategy 7 = %.2f; the GFW should re-censor", rate)
	}
}

func TestResidualCensorshipOnlyHTTP(t *testing.T) {
	for _, r := range ResidualCensorshipExperiment() {
		switch r.Protocol {
		case "http":
			if !r.ImmediateBlocked {
				t.Error("http: immediate benign follow-up was not blocked (residual censorship missing)")
			}
			if !r.AfterWindowOK {
				t.Error("http: follow-up after 95s still blocked")
			}
		default:
			if r.ImmediateBlocked {
				t.Errorf("%s: immediate follow-up blocked; the paper found no residual censorship", r.Protocol)
			}
		}
	}
}

func TestKazakhTripleLoadSweep(t *testing.T) {
	s := KazakhTripleLoadSweep(10)
	if s.OneLoad != 0 || s.TwoLoads != 0 {
		t.Errorf("1 load=%.2f 2 loads=%.2f: fewer than three payloads must fail", s.OneLoad, s.TwoLoads)
	}
	if s.ThreeLoads != 1 || s.FourLoads != 1 {
		t.Errorf("3 loads=%.2f 4 loads=%.2f: three or more must work", s.ThreeLoads, s.FourLoads)
	}
	if s.TwoLoadsPlusEmptyBetween != 0 {
		t.Errorf("load,empty,load=%.2f: an empty SYN+ACK between payloads must break the run", s.TwoLoadsPlusEmptyBetween)
	}
	if s.OneByte != 1 || s.Large != 1 {
		t.Errorf("1-byte=%.2f 400-byte=%.2f: payload size must not matter", s.OneByte, s.Large)
	}
}

func TestKazakhDoubleGetSweep(t *testing.T) {
	s := KazakhDoubleGetSweep(10)
	if s.FullPrefix != 1 {
		t.Errorf("full prefix rate %.2f, want 1", s.FullPrefix)
	}
	if s.Truncated != 0 {
		t.Errorf("truncated prefix (no '.') rate %.2f, want 0", s.Truncated)
	}
	if s.SingleGet != 0 {
		t.Errorf("single GET rate %.2f, want 0 (the duplicate is required)", s.SingleGet)
	}
	if s.LongerPath != 1 {
		t.Errorf("longer well-formed GET rate %.2f, want 1", s.LongerPath)
	}
}

func TestKazakhFlagSweep(t *testing.T) {
	rates := KazakhFlagSweep(8)
	works := []string{"(none)", "P", "U", "PU"}
	fails := []string{"S", "A", "R", "F", "PA"}
	for _, f := range works {
		if rates[f] != 1 {
			t.Errorf("flags %q: rate %.2f, want 1 (no FIN/RST/SYN/ACK bits)", f, rates[f])
		}
	}
	for _, f := range fails {
		if rates[f] != 0 {
			t.Errorf("flags %q: rate %.2f, want 0 (contains a normal handshake bit)", f, rates[f])
		}
	}
}

func TestKazakhProbing(t *testing.T) {
	two, fb := KazakhProbing()
	if !two {
		t.Error("two forbidden GETs during the handshake did not elicit a censor response")
	}
	if fb {
		t.Error("forbidden-then-benign elicited a response; the censor processes the second request")
	}
}

func TestPortSensitivity(t *testing.T) {
	got := PortSensitivity()
	if got[CountryChina] {
		t.Error("china: non-default port defeated the GFW; it censors all ports")
	}
	for _, c := range CensoredCountries() {
		if c == CountryChina {
			continue
		}
		if !got[c] {
			t.Errorf("%s: non-default port did not defeat censorship; every modeled censor except the GFW is port-bound", c)
		}
	}
}

func TestStatelessness(t *testing.T) {
	got := Statelessness()
	if got[CountryChina] {
		t.Error("china: the GFW censored without a TCB")
	}
	for _, c := range []string{CountryIndia, CountryIndiaJio, CountryIndiaVodafone,
		CountryIran, CountryTurkmenistan} {
		if !got[c] {
			t.Errorf("%s: stateless middlebox should censor a request with no handshake", c)
		}
	}
}

func TestLocalizationSameHopAllProtocols(t *testing.T) {
	hops := make(map[string]int)
	for _, proto := range ChinaProtocols {
		hops[proto] = LocalizeCensor(proto, int64(60+protoSeed(proto)))
	}
	for proto, h := range hops {
		if h != 5 {
			t.Errorf("%s: censor localized at hop %d, want 5 (colocated boxes)", proto, h)
		}
	}
}

func TestFigure1WaterfallsRender(t *testing.T) {
	out := Figure1()
	for _, want := range []string{"Normal behavior", "Strategy 1", "Strategy 8", "SYN/ACK", "evaded censorship"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 output missing %q", want)
		}
	}
}

func TestFigure2WaterfallsRender(t *testing.T) {
	out := Figure2()
	for _, want := range []string{"Strategy 9", "Strategy 10", "Strategy 11", "no flags"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 output missing %q", want)
		}
	}
}

func TestFigure3Evidence(t *testing.T) {
	r := Figure3(40)
	if r.StrategyRates["ftp"] < 0.8 || r.StrategyRates["http"] > 0.2 {
		t.Errorf("figure 3a heterogeneity wrong: ftp=%.2f http=%.2f",
			r.StrategyRates["ftp"], r.StrategyRates["http"])
	}
	for proto, hop := range r.CensorHops {
		if hop != 5 {
			t.Errorf("figure 3b: %s censored at hop %d, want 5", proto, hop)
		}
	}
	if out := FormatFigure3(r); !strings.Contains(out, "colocated") {
		t.Error("FormatFigure3 output malformed")
	}
}
