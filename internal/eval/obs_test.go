package eval

import (
	"testing"
	"time"

	"geneva/internal/netsim"
	"geneva/internal/obs"
	"geneva/internal/strategies"
)

// withMetrics runs f with the obs gate in the given state and restores the
// previous state (and zeroed instruments) afterwards, so these tests leave
// no trace for the rest of the package.
func withMetrics(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(on)
	obs.Reset()
	defer func() {
		obs.Reset()
		obs.SetEnabled(prev)
	}()
	f()
}

// TestMetricsNeutralEvolve is the observability determinism regression: the
// genetic search must produce the bit-identical Result with metrics enabled
// and disabled. Counters observe and never steer — no code path may branch
// on one — and this is the test that keeps it true.
func TestMetricsNeutralEvolve(t *testing.T) {
	opt := EvolveOptions{
		Country:       CountryChina,
		Protocol:      "http",
		Population:    12,
		Generations:   2,
		TrialsPerEval: 2,
		Seed:          11,
	}
	var off, on string
	withMetrics(t, false, func() { off = resultKey(t, opt.Country, opt.Protocol, opt) })
	withMetrics(t, true, func() { on = resultKey(t, opt.Country, opt.Protocol, opt) })
	if on != off {
		t.Errorf("evolve diverged with metrics enabled\n on  %s\n off %s", on, off)
	}
}

// TestMetricsNeutralImpairedRate covers the layers evolve doesn't: with
// impairments active (so the netsim draws, retransmission timers, and censor
// resync paths all run), the measured success rate must be identical with
// metrics on and off.
func TestMetricsNeutralImpairedRate(t *testing.T) {
	cfg := Config{
		Country:  CountryChina,
		Session:  SessionFor(CountryChina, "http", true),
		Strategy: strategies.Strategy1.Parse(),
		Tries:    TriesFor("http"),
		Seed:     101,
		Impairments: netsim.Symmetric(netsim.Profile{
			Loss: 0.05, Duplicate: 0.02, Reorder: 0.02, Jitter: 2 * time.Millisecond,
		}),
	}
	var off, on float64
	withMetrics(t, false, func() { off = Rate(cfg, 20) })
	withMetrics(t, true, func() { on = Rate(cfg, 20) })
	if on != off {
		t.Errorf("impaired Rate diverged with metrics enabled: on %v, off %v", on, off)
	}
}

// TestMetricsWorkerWidthInvariance pins the counters themselves: totals are
// sums of per-trial events whose randomness is purely seed-derived, so an
// enabled run must produce the identical snapshot at any worker width.
func TestMetricsWorkerWidthInvariance(t *testing.T) {
	cfg := Config{
		Country:     CountryChina,
		Session:     SessionFor(CountryChina, "http", true),
		Tries:       TriesFor("http"),
		Seed:        7,
		Impairments: netsim.Symmetric(netsim.Profile{Loss: 0.05}),
	}
	snap := func(workers int) obs.Snapshot {
		c := cfg
		c.Workers = workers // per-call width; no process-global state
		obs.Reset()
		Rate(c, 16)
		return obs.Take()
	}
	withMetrics(t, true, func() {
		want := snap(1)
		if want.Counters["eval.trials"] != 16 {
			t.Fatalf("eval.trials = %d, want 16", want.Counters["eval.trials"])
		}
		if want.Counters["netsim.delivered"] == 0 || want.Counters["tcpstack.segments_sent"] == 0 {
			t.Fatalf("expected nonzero netsim/tcpstack counters, got %+v", want.Counters)
		}
		for _, w := range []int{2, 8} {
			got := snap(w)
			for name, v := range want.Counters {
				if got.Counters[name] != v {
					t.Errorf("workers=%d: counter %s = %d, want %d", w, name, got.Counters[name], v)
				}
			}
		}
	})
}

// TestMetricsDisabledCountsNothing pins the off state: a full impaired trial
// with the gate closed must leave every instrument at zero.
func TestMetricsDisabledCountsNothing(t *testing.T) {
	withMetrics(t, false, func() {
		Run(Config{
			Country:     CountryChina,
			Session:     SessionFor(CountryChina, "http", true),
			Tries:       TriesFor("http"),
			Seed:        3,
			Impairments: netsim.Symmetric(netsim.Profile{Loss: 0.1}),
		})
		s := obs.Take()
		for name, v := range s.Counters {
			if v != 0 {
				t.Errorf("disabled counter %s = %d, want 0", name, v)
			}
		}
	})
}
