package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"geneva/internal/censor"
	"geneva/internal/core"
)

// resultKey flattens the fields of a genetic.Result that define a training
// outcome: best strategy text, best fitness, and the full per-generation
// history (which pins generation count, means, and distinct counts too).
func resultKey(t *testing.T, country, proto string, opt EvolveOptions) string {
	t.Helper()
	res, _ := Evolve(opt)
	if res.Best.Strategy == nil {
		t.Fatalf("%s/%s: no best strategy", country, proto)
	}
	return fmt.Sprintf("best=%s fitness=%v gens=%d history=%+v",
		res.Best.Strategy.String(), res.Best.Fitness, len(res.History), res.History)
}

// TestEvolveBatchMatchesSequentialSeedPath is the GA determinism
// regression: the parallel+cached engine, at GOMAXPROCS 1, 2, and 8 and
// with the cache disabled, must produce the exact Result the original
// sequential per-individual path produces, for {china, kazakhstan} x
// {http, ftp}. Fitness is a pure function of (canonical strategy, seed
// base), so any divergence means the engine leaked scheduling order or
// cache state into the trajectory.
func TestEvolveBatchMatchesSequentialSeedPath(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, country := range []string{CountryChina, CountryKazakhstan} {
		for _, proto := range []string{"http", "ftp"} {
			opt := EvolveOptions{
				Country:       country,
				Protocol:      proto,
				Population:    16,
				Generations:   3,
				TrialsPerEval: 2,
				Seed:          5,
			}
			seqOpt := opt
			seqOpt.Sequential = true
			runtime.GOMAXPROCS(1)
			want := resultKey(t, country, proto, seqOpt)
			for _, procs := range []int{1, 2, 8} {
				runtime.GOMAXPROCS(procs)
				if got := resultKey(t, country, proto, opt); got != want {
					t.Errorf("%s/%s GOMAXPROCS=%d: batch engine diverged from sequential path\n got %s\nwant %s",
						country, proto, procs, got, want)
				}
				noCache := opt
				noCache.NoCache = true
				if got := resultKey(t, country, proto, noCache); got != want {
					t.Errorf("%s/%s GOMAXPROCS=%d (cache disabled): diverged\n got %s\nwant %s",
						country, proto, procs, got, want)
				}
			}
		}
	}
}

// TestEvaluatorWorkerWidthInvariance pins the pool directly: explicit
// Workers values (not GOMAXPROCS) must not change a batch's scores.
func TestEvaluatorWorkerWidthInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	batch := make([]*core.Strategy, 12)
	for i := range batch {
		batch[i] = randomEvolvable(rng)
	}
	base := NewEvaluator(CountryKazakhstan, "http", 2, 9)
	base.Workers = 1
	want := base.BatchFitness(batch)
	for _, w := range []int{2, 3, 8} {
		ev := NewEvaluator(CountryKazakhstan, "http", 2, 9)
		ev.Workers = w
		if got := ev.BatchFitness(batch); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: scores %v != workers=1 scores %v", w, got, want)
		}
	}
}

// TestFitnessCacheProperty is the cache property test: for randomly
// generated GA-shaped strategies, cached and uncached fitness agree
// exactly, repeat calls are pure hits, and canonical duplicates share one
// cache entry.
func TestFitnessCacheProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var batch []*core.Strategy
	for i := 0; i < 20; i++ {
		batch = append(batch, randomEvolvable(rng))
	}
	// Clones of batch members: same canonical text, distinct pointers.
	batch = append(batch, batch[0].Clone(), batch[7].Clone(), batch[7].Clone())

	distinct := make(map[string]bool)
	for _, s := range batch {
		distinct[s.String()] = true
	}

	cached := NewEvaluator(CountryKazakhstan, "http", 2, 5)
	uncached := NewEvaluator(CountryKazakhstan, "http", 2, 5)
	uncached.NoCache = true

	a := cached.BatchFitness(batch)
	b := uncached.BatchFitness(batch)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cached scores %v != uncached scores %v", a, b)
	}
	for i, s := range batch {
		if f := cached.Fitness(s); f != a[i] {
			t.Errorf("strategy %d (%s): single fitness %v != batch fitness %v", i, s, f, a[i])
		}
	}

	st := cached.Stats()
	if st.Entries != len(distinct) {
		t.Errorf("cache holds %d entries for %d distinct canonical strategies", st.Entries, len(distinct))
	}
	if st.Misses != len(distinct) {
		t.Errorf("%d computations for %d distinct strategies", st.Misses, len(distinct))
	}
	// The uncached evaluator still collapses in-batch duplicates but keeps
	// no entries across calls.
	ust := uncached.Stats()
	if ust.Entries != 0 {
		t.Errorf("NoCache evaluator kept %d entries", ust.Entries)
	}
	if ust.Dedups != len(batch)-len(distinct) {
		t.Errorf("NoCache dedups = %d, want %d", ust.Dedups, len(batch)-len(distinct))
	}

	// Re-scoring the whole batch must be answered entirely from the cache.
	misses := st.Misses
	a2 := cached.BatchFitness(batch)
	if !reflect.DeepEqual(a2, a) {
		t.Fatalf("re-scored batch %v != first scores %v", a2, a)
	}
	st2 := cached.Stats()
	if st2.Misses != misses {
		t.Errorf("re-scoring computed %d fresh evaluations", st2.Misses-misses)
	}
	if st2.Hits != st.Hits+len(batch) {
		t.Errorf("re-scoring produced %d hits, want %d", st2.Hits-st.Hits, len(batch))
	}
}

// TestFitnessCacheSharedEntryForEqualCanonicalStrings pins the cache-key
// claim in isolation: two strategies with equal String() occupy exactly one
// entry, and the second evaluation is a hit.
func TestFitnessCacheSharedEntryForEqualCanonicalStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := randomEvolvable(rng)
	clone := s.Clone()
	if s.String() != clone.String() {
		t.Fatalf("clone changed canonical text: %q vs %q", s, clone)
	}
	ev := NewEvaluator(CountryKazakhstan, "http", 2, 7)
	f1 := ev.Fitness(s)
	f2 := ev.Fitness(clone)
	if f1 != f2 {
		t.Errorf("canonical twins scored differently: %v vs %v", f1, f2)
	}
	st := ev.Stats()
	if st.Entries != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats after twin evaluation: %+v, want 1 entry, 1 miss, 1 hit", st)
	}
}

// TestEvalStatsString keeps the commands' stats line well-formed.
func TestEvalStatsString(t *testing.T) {
	s := EvalStats{Hits: 6, Misses: 3, Dedups: 1, Entries: 3}
	if s.Lookups() != 10 {
		t.Errorf("Lookups() = %d, want 10", s.Lookups())
	}
	if got := s.HitRate(); got != 0.7 {
		t.Errorf("HitRate() = %v, want 0.7", got)
	}
	want := "fitness cache: 10 lookups, 6 hits, 1 in-batch dedups, 3 computed (70% avoided), 3 entries"
	if s.String() != want {
		t.Errorf("String() = %q, want %q", s.String(), want)
	}
	if (EvalStats{}).HitRate() != 0 {
		t.Error("zero stats must report hit rate 0")
	}
}

// TestNewCensorReturnsExportedCounter locks in the trial.go lint fix: the
// constructor's return type is the exported CensorCounter interface.
func TestNewCensorReturnsExportedCounter(t *testing.T) {
	var c CensorCounter = NewCensor(CountryChina, censor.Default(), rand.New(rand.NewSource(1)))
	if c == nil || c.CensoredCount() != 0 {
		t.Fatal("fresh censor must start with zero events")
	}
	if NewCensor(CountryNone, censor.Default(), rand.New(rand.NewSource(1))) != nil {
		t.Fatal("CountryNone must yield a nil censor")
	}
}
