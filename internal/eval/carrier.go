package eval

import (
	"math/rand"
	"time"

	"geneva/internal/core"
	"geneva/internal/netsim"
	"geneva/internal/packet"
	"geneva/internal/strategies"
	"geneva/internal/tcpstack"
)

// carrierBox models the in-network cellular middleboxes of §7's anecdote:
// not censors, but NATs/firewalls that silently drop server-originated SYN
// packets (a server never initiates a connection to a mobile client, so
// the middlebox treats such SYNs as garbage). The paper observed the
// simultaneous-open strategies failing on T-Mobile (Strategies 1 and 3)
// and AT&T (1, 2, and 3).
type carrierBox struct {
	name string
	// dropLoadedSyn also drops SYNs carrying a payload (the AT&T model;
	// the T-Mobile model lets Strategy 2's payload-bearing SYN through).
	dropLoadedSyn bool
}

func (c *carrierBox) Name() string { return c.name }

func (c *carrierBox) Process(pkt *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	if dir != netsim.ToClient || pkt.TCP.Flags != packet.FlagSYN {
		return netsim.Verdict{}
	}
	if len(pkt.TCP.Payload) > 0 && !c.dropLoadedSyn {
		return netsim.Verdict{}
	}
	return netsim.Verdict{Drop: true, Note: "server-originated SYN dropped by carrier"}
}

// CarrierInterference reproduces the §7 network-compatibility anecdote:
// each strategy is run on a censor-free network behind a simulated
// cellular middlebox; the result maps carrier -> strategy number -> works.
// Wifi (no middlebox) is the control.
func CarrierInterference() map[string]map[int]bool {
	carriers := map[string]*carrierBox{
		"wifi":    nil,
		"tmobile": {name: "T-Mobile", dropLoadedSyn: false},
		"att":     {name: "AT&T", dropLoadedSyn: true},
	}
	out := make(map[string]map[int]bool)
	for cname, box := range carriers {
		res := make(map[int]bool)
		for _, s := range strategies.All() {
			res[s.Number] = carrierTrial(box, s.Parse())
		}
		out[cname] = res
	}
	return out
}

// carrierTrial runs one censor-free connection behind the given middlebox.
func carrierTrial(box *carrierBox, strategy *core.Strategy) bool {
	session := SessionFor(CountryNone, "http", true)
	client := tcpstack.NewEndpoint(ClientAddr, tcpstack.DefaultClient, rand.New(rand.NewSource(1)))
	server := tcpstack.NewEndpoint(ServerAddr, tcpstack.DefaultServer, rand.New(rand.NewSource(2)))
	server.NewServerApp = session.ServerFactory()
	server.Listen(session.Port)
	server.Outbound = core.NewEngine(strategy, rand.New(rand.NewSource(3))).Outbound
	var n *netsim.Network
	if box != nil {
		n = netsim.New(client, server, box)
	} else {
		n = netsim.New(client, server)
	}
	client.Attach(n)
	server.Attach(n)
	app := session.NewClient()
	client.Connect(ServerAddr, session.Port, app)
	n.Run(0)
	return app.Succeeded()
}

// Compile-time guard: the box is a Middlebox.
var _ netsim.Middlebox = (*carrierBox)(nil)
