package eval

import (
	"testing"
)

// paperTable2China is Table 2's China block, in percent, in protocol order
// DNS, FTP, HTTP, HTTPS, SMTP. Row 0 is "No evasion".
var paperTable2China = map[int][5]float64{
	0: {2, 3, 3, 3, 26},
	1: {89, 52, 54, 14, 70},
	2: {83, 36, 54, 55, 59},
	3: {26, 65, 4, 4, 23},
	4: {7, 33, 5, 5, 22},
	5: {15, 97, 4, 3, 25},
	6: {82, 55, 52, 54, 55},
	7: {83, 85, 54, 4, 66},
	8: {3, 47, 2, 3, 100},
}

// TestTable2ChinaMatchesPaperShape is the headline regression test: every
// cell of the China block must land within tolerance of the paper's value,
// so who-wins, by-what-factor, and the per-protocol crossovers all hold.
func TestTable2ChinaMatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table computation is expensive")
	}
	blocks := Table2(150)
	china := blocks[0]
	if china.Country != CountryChina {
		t.Fatal("first block is not China")
	}
	const tol = 13.0 // percentage points: simulation + sampling noise
	for _, row := range china.Rows {
		want, ok := paperTable2China[row.Number]
		if !ok {
			t.Fatalf("unexpected row %d", row.Number)
		}
		for i, proto := range ChinaProtocols {
			got := 100 * row.Rates[proto]
			if diff := got - want[i]; diff > tol || diff < -tol {
				t.Errorf("strategy %d / %s: got %.0f%%, paper %.0f%%",
					row.Number, proto, got, want[i])
			}
		}
	}
}

// TestTable2OtherCountriesExact checks the deterministic blocks: India,
// Iran, Kazakhstan, and the new single-engine censors (Jio, Vodafone, the
// TMC) match the paper (and the source measurement studies) exactly.
func TestTable2OtherCountriesExact(t *testing.T) {
	if testing.Short() {
		t.Skip("table computation is expensive")
	}
	blocks := Table2(25)
	for _, blk := range blocks[1:] {
		for _, row := range blk.Rows {
			for _, proto := range ChinaProtocols {
				r := row.Rates[proto]
				if r < 0 {
					continue
				}
				want := -1.0
				switch {
				case row.Number == 0:
					// No evasion: censored protocols fail ~always,
					// uncensored ones succeed always.
					if censoredIn(blk.Country, proto) {
						want = 0
					} else {
						want = 1
					}
				default:
					want = 1 // every listed strategy is 100% in the paper
				}
				if want >= 0 && r != want {
					t.Errorf("%s / strategy %d / %s: got %.2f, want %.2f",
						blk.Country, row.Number, proto, r, want)
				}
			}
		}
	}
}

// censoredIn is registry-driven: a protocol is censored in a country iff
// the censor's registry entry lists it.
func censoredIn(country, proto string) bool {
	for _, p := range CensoredProtocols(country) {
		if p == proto {
			return true
		}
	}
	return false
}

// TestTable2CrossProtocolHeterogeneity pins §6's headline observation: the
// same TCP-level strategy has wildly different success rates per protocol,
// the evidence for per-protocol censorship boxes.
func TestTable2CrossProtocolHeterogeneity(t *testing.T) {
	s5 := func(proto string) float64 {
		cfg := Config{
			Country: CountryChina,
			Session: SessionFor(CountryChina, proto, true),
			Tries:   TriesFor(proto),
			Seed:    77,
		}
		st, _ := byNumber(5)
		cfg.Strategy = st
		return Rate(cfg, 120)
	}
	ftp, http := s5("ftp"), s5("http")
	if ftp < 0.8 {
		t.Errorf("Strategy 5 FTP rate %.2f, want ≈0.97", ftp)
	}
	if http > 0.2 {
		t.Errorf("Strategy 5 HTTP rate %.2f, want ≈0.04", http)
	}
	if ftp < http+0.5 {
		t.Error("cross-protocol heterogeneity collapsed: FTP should dwarf HTTP")
	}
}
