package eval

import "geneva/internal/core"

// DNSRetryCurve reproduces §4.2's DNS-retry analysis: RFC 7766 clients
// retry queries whose connections close prematurely, and different software
// retries different numbers of times (dig once, Python three times, Chrome
// four). For a strategy with per-try success p, k tries succeed at
// 1-(1-p)^k — the amplification that turns Strategy 1's ~52% per-try rate
// into Table 2's 89% DNS cell. The returned slice maps tries (1-based
// index) to the measured rate.
func DNSRetryCurve(strategyNum, maxTries, trials int) []float64 {
	s, _ := byNumber(strategyNum)
	return dnsRetryCurve(s, maxTries, trials)
}

func dnsRetryCurve(s *core.Strategy, maxTries, trials int) []float64 {
	out := make([]float64, maxTries+1)
	for tries := 1; tries <= maxTries; tries++ {
		cfg := Config{
			Country:  CountryChina,
			Session:  SessionFor(CountryChina, "dns", true),
			Strategy: s,
			Tries:    tries,
			Seed:     int64(5000 * tries),
		}
		out[tries] = Rate(cfg, trials)
	}
	return out
}

// OrderSensitivity reproduces §5.1's packet-order observation for
// Strategy 5: sending the corrupted-ack SYN+ACK first and the
// payload-bearing SYN+ACK second works (97% on FTP), while the reverse
// order is ineffective — the client then completes its handshake from the
// first (valid) SYN+ACK, never emits the induced RST the GFW must
// re-synchronize on, and the box re-acquires from the clean ACK.
func OrderSensitivity(trials int) (normal, reversed float64) {
	s5, _ := byNumber(5)
	// The reverse of Strategy 5: duplicate(payload copy, corrupt-ack copy).
	rev := core.MustParse(`[TCP:flags:SA]-duplicate(tamper{TCP:load:corrupt},tamper{TCP:ack:corrupt})-| \/ `)
	rate := func(st *core.Strategy, seed int64) float64 {
		return Rate(Config{
			Country:  CountryChina,
			Session:  SessionFor(CountryChina, "ftp", true),
			Strategy: st,
			Seed:     seed,
		}, trials)
	}
	return rate(s5, 6100), rate(rev, 6200)
}
