package eval

import (
	"math/rand"
	"net/netip"
	"testing"

	"geneva/internal/censor"
	"geneva/internal/censor/gfw"
	"geneva/internal/core"
	"geneva/internal/netsim"
	"geneva/internal/strategies"
	"geneva/internal/tcpstack"
)

// fleetCensorSeed is a seed on which Strategy 1's resynchronization path
// fires (the run is fully deterministic, so one verified seed suffices).
const fleetCensorSeed = 7

// TestFleetOfClientsThroughOneGFW drives several clients through a single
// GFW instance concurrently (interleaved connections on one network),
// verifying the censor's per-flow TCBs stay isolated: the evading flows
// evade, and the unprotected forbidden flow is censored, all in the same
// packet stream.
func TestFleetOfClientsThroughOneGFW(t *testing.T) {
	session := SessionFor(CountryChina, "http", true)
	benign := SessionFor(CountryChina, "http", false)

	server := tcpstack.NewEndpoint(ServerAddr, tcpstack.DefaultServer, rand.New(rand.NewSource(1)))
	server.Listen(80)
	// The server serves both sessions; pick the app by the request it
	// receives. Simplest: a single factory keyed by nothing — both
	// sessions share the server script shape except the expected request,
	// so use a dispatcher that tolerates either.
	forbiddenSrv := session.ServerFactory()
	benignSrv := benign.ServerFactory()
	// Clients: .2 evades with Strategy 1 via the router, .3 is
	// unprotected, .4 fetches benign content.
	evader := tcpstack.NewEndpoint(netip.MustParseAddr("10.1.0.2"), tcpstack.DefaultClient, rand.New(rand.NewSource(2)))
	victim := tcpstack.NewEndpoint(netip.MustParseAddr("10.1.0.3"), tcpstack.DefaultClient, rand.New(rand.NewSource(3)))
	browser := tcpstack.NewEndpoint(netip.MustParseAddr("10.1.0.4"), tcpstack.DefaultClient, rand.New(rand.NewSource(4)))

	router := core.NewRouter(nil)
	// Strategy 1 is probabilistic (~54%); the fixed seeds below are chosen
	// so this deterministic run takes its successful path.
	router.Route(netip.MustParsePrefix("10.1.0.2/32"), strategies.Strategy1.Parse(), rand.New(rand.NewSource(5)))
	server.Outbound = router.Outbound

	// Dispatch server apps by client address: the victim and evader run
	// the forbidden session, the browser the benign one.
	server.NewServerApp = func(c *tcpstack.Conn) tcpstack.App {
		if c.Flow().DstAddr == browser.Addr() {
			return benignSrv(c)
		}
		return forbiddenSrv(c)
	}

	g := gfw.New(censor.Default(), rand.New(rand.NewSource(fleetCensorSeed)))
	n := netsim.NewMulti(server, []netsim.Host{evader, victim, browser}, g)
	evader.Attach(n)
	victim.Attach(n)
	browser.Attach(n)
	server.Attach(n)

	// Phase 1: the evader and the benign browser connect concurrently —
	// their packets interleave through one GFW — and both succeed.
	evaderApp := session.NewClient()
	browserApp := benign.NewClient()
	evader.Connect(ServerAddr, 80, evaderApp)
	browser.Connect(ServerAddr, 80, browserApp)
	n.Run(0)
	if !evaderApp.Succeeded() {
		t.Error("routed evader failed despite Strategy 8")
	}
	if !browserApp.Succeeded() {
		t.Error("benign flow was damaged")
	}

	// Phase 2: the unprotected victim sends the forbidden request and is
	// censored.
	victimApp := session.NewClient()
	victim.Connect(ServerAddr, 80, victimApp)
	n.Run(0)
	if victimApp.Succeeded() {
		t.Error("unprotected forbidden flow evaded; TCB cross-talk?")
	}
	if g.CensorshipEvents() == 0 {
		t.Error("the GFW never fired on the victim")
	}

	// Phase 3: residual censorship is collateral — even the benign
	// browser is now torn down when it reconnects to the same server:port
	// (§4.2), until the ~90 s window passes.
	collateral := benign.NewClient()
	browser.Connect(ServerAddr, 80, collateral)
	n.Run(0)
	if collateral.Succeeded() {
		t.Error("no residual collateral damage; the paper observed ~90s of it")
	}
	n.Clock.Advance(95e9) // 95 s
	recovered := benign.NewClient()
	browser.Connect(ServerAddr, 80, recovered)
	n.Run(0)
	if !recovered.Succeeded() {
		t.Error("browser still blocked after the residual window")
	}
}
