package eval

import "geneva/internal/obs"

// Trial-outcome and fitness-cache counters. The cache counters mirror
// EvalStats into the obs registry so run manifests carry them; EvalStats
// itself stays the command-line summary type.
var (
	mTrials           = obs.NewCounter("eval.trials")
	mTrialSuccess     = obs.NewCounter("eval.trials_succeeded")
	mTrialEstablished = obs.NewCounter("eval.trials_established")
	mAttempts         = obs.NewCounter("eval.attempts")
	mCacheHits        = obs.NewCounter("eval.cache_hits")
	mCacheMisses      = obs.NewCounter("eval.cache_misses")
	mCacheDedups      = obs.NewCounter("eval.cache_dedups")
	mCacheEntries     = obs.NewGauge("eval.cache_entries")
)
