package eval

import (
	"fmt"
	"strings"
	"sync"

	"geneva/internal/apps"
	"geneva/internal/core"
	"geneva/internal/strategies"
)

// sessionCache memoizes the prototypes SessionFor builds: encoding a DNS
// query or TLS ClientHello is pure, so the work is done once per
// (country, protocol, forbidden) and shared across every trial.
var sessionCache struct {
	sync.Mutex
	m map[sessionKey]*apps.Session
}

type sessionKey struct {
	country, protocol string
	forbidden         bool
}

// SessionFor builds the application exchange the paper uses to trigger each
// country's censorship (§4.2). forbidden=false swaps in benign content.
//
// Callers get a shallow copy of the cached prototype: the port-sensitivity
// follow-up retargets Session.Port, and the embedded Scripts are only ever
// Clone()d per connection, never mutated, so sharing them is safe.
func SessionFor(country, protocol string, forbidden bool) *apps.Session {
	k := sessionKey{country, protocol, forbidden}
	sessionCache.Lock()
	proto, ok := sessionCache.m[k]
	if !ok {
		proto = buildSession(country, protocol, forbidden)
		if sessionCache.m == nil {
			sessionCache.m = make(map[sessionKey]*apps.Session)
		}
		sessionCache.m[k] = proto
	}
	sessionCache.Unlock()
	s := *proto
	return &s
}

func buildSession(country, protocol string, forbidden bool) *apps.Session {
	pick := func(bad, good string) string {
		if forbidden {
			return bad
		}
		return good
	}
	switch protocol {
	case "dns":
		return apps.DNSSession(pick("www.wikipedia.org", "www.kernel.org"))
	case "ftp":
		return apps.FTPSession(pick("ultrasurf", "notes.txt"))
	case "http":
		if country == CountryChina || country == CountryNone {
			// China: censored keyword in the URL parameters.
			return apps.HTTPQuerySession(pick("ultrasurf", "kittens"))
		}
		// India/Iran/Kazakhstan: blacklisted website in the Host header.
		return apps.HTTPHostSession(pick("blocked.example", "allowed.example"))
	case "https":
		if country == CountryIran {
			return apps.HTTPSSession(pick("youtube.com", "example.org"))
		}
		return apps.HTTPSSession(pick("www.wikipedia.org", "example.org"))
	case "smtp":
		return apps.SMTPSession(pick("tibetalk@yahoo.com.cn", "friend@example.org"))
	}
	panic("eval: unknown protocol " + protocol)
}

// TriesFor returns the connection attempts per trial: the paper tests DNS
// with a maximum of 3 tries (RFC 7766 retry behaviour); everything else
// gets one.
func TriesFor(protocol string) int {
	if protocol == "dns" {
		return 3
	}
	return 1
}

// ChinaProtocols are the five protocols the GFW censors (Table 1/2).
var ChinaProtocols = []string{"dns", "ftp", "http", "https", "smtp"}

// Table2Row is one row of Table 2: a strategy (or "No evasion") with its
// success rate per protocol. Rates are in [0,1]; -1 marks cells the paper
// leaves blank ("–").
type Table2Row struct {
	Number int
	Name   string
	Rates  map[string]float64
}

// Table2Block is one country's block of Table 2.
type Table2Block struct {
	Country   string
	Protocols []string
	Rows      []Table2Row
}

// Table2 computes the paper's headline table with the given number of
// trials per cell, one block per registered censor: the GFW's full
// strategy sweep for China, and each single-engine censor's Table2
// strategies over its censored protocols. Seeds are fixed (and key off
// strategy numbers and protocols, never off registry position), so two
// runs agree exactly.
func Table2(trials int) []Table2Block {
	var blocks []Table2Block
	for _, d := range Registry() {
		if d.Country == CountryChina {
			blocks = append(blocks, chinaBlock(trials))
			continue
		}
		blocks = append(blocks, singleProtocolBlock(d.Country, trials, d.Table2, d.Protocols))
	}
	return blocks
}

func chinaBlock(trials int) Table2Block {
	b := Table2Block{Country: CountryChina, Protocols: ChinaProtocols}
	rows := []Table2Row{{Number: 0, Name: "No evasion", Rates: map[string]float64{}}}
	for _, s := range strategies.China() {
		rows = append(rows, Table2Row{Number: s.Number, Name: s.Name, Rates: map[string]float64{}})
	}
	for _, proto := range ChinaProtocols {
		for i := range rows {
			cfg := Config{
				Country: CountryChina,
				Session: SessionFor(CountryChina, proto, true),
				Tries:   TriesFor(proto),
				Seed:    int64(1000*i + protoSeed(proto)),
			}
			if rows[i].Number > 0 {
				s, _ := strategies.ByNumber(rows[i].Number)
				cfg.Strategy = s.Parse()
			}
			rows[i].Rates[proto] = Rate(cfg, trials)
		}
	}
	b.Rows = rows
	return b
}

func singleProtocolBlock(country string, trials int, strats []strategies.Strategy, protos []string) Table2Block {
	b := Table2Block{Country: country, Protocols: ChinaProtocols}
	censoredHere := func(proto string) bool {
		for _, p := range protos {
			if p == proto {
				return true
			}
		}
		return false
	}
	noEvasion := Table2Row{Number: 0, Name: "No evasion", Rates: map[string]float64{}}
	for _, proto := range ChinaProtocols {
		cfg := Config{
			Country: country,
			Session: SessionFor(country, proto, true),
			Tries:   TriesFor(proto),
			Seed:    int64(protoSeed(proto)),
		}
		noEvasion.Rates[proto] = Rate(cfg, trials)
	}
	b.Rows = append(b.Rows, noEvasion)
	for _, s := range strats {
		row := Table2Row{Number: s.Number, Name: s.Name, Rates: map[string]float64{}}
		for _, proto := range ChinaProtocols {
			if !censoredHere(proto) {
				row.Rates[proto] = -1 // the paper's "–"
				continue
			}
			cfg := Config{
				Country:  country,
				Session:  SessionFor(country, proto, true),
				Strategy: s.Parse(),
				Tries:    TriesFor(proto),
				Seed:     int64(100*s.Number + protoSeed(proto)),
			}
			row.Rates[proto] = Rate(cfg, trials)
		}
		b.Rows = append(b.Rows, row)
	}
	return b
}

func protoSeed(proto string) int {
	switch proto {
	case "dns":
		return 1
	case "ftp":
		return 2
	case "http":
		return 3
	case "https":
		return 4
	case "smtp":
		return 5
	}
	return 9
}

// FormatTable2 renders the blocks in the paper's layout.
func FormatTable2(blocks []Table2Block) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-38s %6s %6s %6s %6s %6s\n",
		"#", "Description", "DNS", "FTP", "HTTP", "HTTPS", "SMTP")
	for _, blk := range blocks {
		fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 80))
		fmt.Fprintf(&b, "%s\n", strings.ToUpper(blk.Country[:1])+blk.Country[1:])
		for _, row := range blk.Rows {
			num := "–"
			if row.Number > 0 {
				num = fmt.Sprintf("%d", row.Number)
			}
			fmt.Fprintf(&b, "%-4s %-38s", num, row.Name)
			for _, proto := range blk.Protocols {
				r, ok := row.Rates[proto]
				switch {
				case !ok || r < 0:
					fmt.Fprintf(&b, " %6s", "–")
				default:
					fmt.Fprintf(&b, " %5.0f%%", 100*r)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// byNumber compiles a paper strategy by number (test/benchmark helper).
func byNumber(n int) (*core.Strategy, bool) {
	s, ok := strategies.ByNumber(n)
	if !ok {
		return nil, false
	}
	return s.Parse(), true
}
