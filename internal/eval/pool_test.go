package eval

import (
	"sync/atomic"
	"testing"
)

// TestRunParallel: every index runs exactly once at any worker width, the
// single-worker path runs inline in index order, and degenerate widths
// (workers > n, n == 0) behave.
func TestRunParallel(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		var hits [n]int32
		RunParallel(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, h)
			}
		}
	}

	// workers <= 1 must run inline, in order — callers like the
	// alloc-budget tests depend on the goroutine-free path.
	var order []int
	RunParallel(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline path out of order: %v", order)
		}
	}

	ran := false
	RunParallel(4, 0, func(i int) { ran = true })
	if ran {
		t.Error("RunParallel(4, 0, ...) invoked fn")
	}
}
