package eval

import (
	"strings"
	"testing"

	"geneva/internal/netsim"
	"geneva/internal/packet"
	"geneva/internal/strategies"
)

// handshakeShape runs one evading connection for the strategy and returns
// the flag-strings of the packets delivered before the client's first data
// segment — the part of the waterfall each Figure 1/2 panel fixes.
func handshakeShape(t *testing.T, country string, num int) []string {
	t.Helper()
	s, ok := strategies.ByNumber(num)
	if !ok {
		t.Fatalf("no strategy %d", num)
	}
	cfg := Config{
		Country:   country,
		Session:   SessionFor(country, "http", true),
		Strategy:  s.Parse(),
		Seed:      EvadingSeed(country, s),
		WithTrace: true,
	}
	res := Run(cfg)
	if !res.Success {
		t.Fatalf("strategy %d: evading seed did not evade", num)
	}
	var shape []string
	for _, e := range res.Trace.Entries {
		if !strings.Contains(e.Note, "delivered") {
			continue
		}
		side := "C"
		if e.Dir == netsim.ToClient {
			side = "S"
		}
		fl := packet.FlagsString(e.Pkt.TCP.Flags)
		if fl == "" {
			fl = "-"
		}
		if len(e.Pkt.TCP.Payload) > 0 && fl != "PA" {
			fl += "+load"
		}
		if side == "C" && fl == "PA" {
			return shape // stop at the client's query
		}
		shape = append(shape, side+":"+fl)
	}
	return shape
}

// TestFigure1HandshakeShapes pins each China strategy's pre-query packet
// sequence to the paper's Figure 1 panel.
func TestFigure1HandshakeShapes(t *testing.T) {
	want := map[int][]string{
		// Strategy 1: RST, SYN from server; client answers with SYN/ACK
		// (simultaneous open); server completes with ACK.
		1: {"C:S", "S:R", "S:S", "C:SA", "S:A"},
		// Strategy 2: two SYNs (the second with a payload); the client
		// answers each with its simultaneous-open SYN/ACK (the duplicate
		// is the retransmit a real stack sends for a duplicate SYN).
		2: {"C:S", "S:S", "S:S+load", "C:SA", "C:SA", "S:A"},
		// Strategy 3: corrupted SYN/ACK induces a client RST, then the
		// SYN triggers simultaneous open.
		3: {"C:S", "S:SA", "S:S", "C:R", "C:SA", "S:A"},
		// Strategy 4: corrupted SYN/ACK, then the real one; induced RST
		// and a normal completion.
		4: {"C:S", "S:SA", "S:SA", "C:R", "C:A"},
		// Strategy 5: same, but the second SYN/ACK carries a payload.
		5: {"C:S", "S:SA", "S:SA+load", "C:R", "C:A"},
		// Strategy 6: FIN with payload, corrupted SYN/ACK, real SYN/ACK.
		6: {"C:S", "S:F+load", "S:SA", "S:SA", "C:R", "C:A"},
		// Strategy 7: RST, corrupted SYN/ACK, real SYN/ACK.
		7: {"C:S", "S:R", "S:SA", "S:SA", "C:R", "C:A"},
		// Strategy 8: a plain handshake — the magic is in the window.
		8: {"C:S", "S:SA", "C:A"},
	}
	for num, exp := range want {
		got := handshakeShape(t, CountryChina, num)
		if strings.Join(got, " ") != strings.Join(exp, " ") {
			t.Errorf("strategy %d handshake shape\n  got:  %v\n  want: %v (Figure 1)", num, got, exp)
		}
	}
}

// TestFigure2HandshakeShapes pins the Kazakhstan panels.
func TestFigure2HandshakeShapes(t *testing.T) {
	want := map[int][]string{
		// Strategy 9: three payload-bearing SYN/ACKs.
		9: {"C:S", "S:SA+load", "S:SA+load", "S:SA+load", "C:A"},
		// Strategy 10: two GET-carrying SYN/ACKs.
		10: {"C:S", "S:SA+load", "S:SA+load", "C:A"},
		// Strategy 11: a no-flags duplicate before the real SYN/ACK.
		11: {"C:S", "S:-", "S:SA", "C:A"},
	}
	for num, exp := range want {
		got := handshakeShape(t, CountryKazakhstan, num)
		if strings.Join(got, " ") != strings.Join(exp, " ") {
			t.Errorf("strategy %d handshake shape\n  got:  %v\n  want: %v (Figure 2)", num, got, exp)
		}
	}
}

// TestStrategy8Segmentation: Figure 1's Strategy 8 panel shows the query
// split across two PSH/ACK segments.
func TestStrategy8Segmentation(t *testing.T) {
	s, _ := strategies.ByNumber(8)
	cfg := Config{
		Country:   CountryIndia,
		Session:   SessionFor(CountryIndia, "http", true),
		Strategy:  s.Parse(),
		Seed:      1,
		WithTrace: true,
	}
	res := Run(cfg)
	if !res.Success {
		t.Fatal("strategy 8 failed in India")
	}
	segments := 0
	for _, e := range res.Trace.Entries {
		if strings.Contains(e.Note, "delivered") &&
			e.Dir == netsim.ToServer && len(e.Pkt.TCP.Payload) > 0 {
			segments++
		}
	}
	if segments < 2 {
		t.Errorf("query delivered in %d segment(s); Figure 1 shows it split", segments)
	}
}
