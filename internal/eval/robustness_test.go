package eval

import (
	"strings"
	"testing"

	"geneva/internal/netsim"
	"geneva/internal/strategies"
)

// TestRobustnessLossZeroMatchesUnimpaired is the sweep's anchor: the loss-0
// column uses a fully zero impairment profile, which disables the layer
// outright, so every cell must equal a plain unimpaired Rate at the same
// seed — exact float equality, not tolerance.
func TestRobustnessLossZeroMatchesUnimpaired(t *testing.T) {
	cells := Robustness(netsim.Profile{}, []float64{0}, 25)
	if want := len(RobustnessCountries) * 12; len(cells) != want {
		t.Fatalf("sweep produced %d cells, want %d", len(cells), want)
	}
	ci := map[string]int{}
	for i, c := range RobustnessCountries {
		ci[c] = i
	}
	for _, cell := range cells {
		cfg := Config{
			Country: cell.Country,
			Session: SessionFor(cell.Country, cell.Protocol, true),
			Tries:   TriesFor(cell.Protocol),
			Seed:    int64(100000*ci[cell.Country] + 1000*cell.Strategy + protoSeed(cell.Protocol)),
		}
		if cell.Strategy > 0 {
			s, _ := strategies.ByNumber(cell.Strategy)
			cfg.Strategy = s.Parse()
		}
		if plain := Rate(cfg, 25); plain != cell.Rate {
			t.Errorf("%s strategy %d: loss-0 sweep rate %v != unimpaired rate %v",
				cell.Country, cell.Strategy, cell.Rate, plain)
		}
	}
}

// TestRobustnessSweepUnderLoss exercises the impaired path end to end and
// checks two structural facts that hold at any plausible seed: Strategy 8
// keeps working against the single-protocol censors even on a lossy path
// (retransmission recovers the handshake), and the no-evasion baseline stays
// censored.
func TestRobustnessSweepUnderLoss(t *testing.T) {
	cells := Robustness(netsim.Profile{}, []float64{0.02}, 40)
	rate := func(country string, strategy int) float64 {
		for _, c := range cells {
			if c.Country == country && c.Strategy == strategy {
				return c.Rate
			}
		}
		t.Fatalf("missing cell %s/%d", country, strategy)
		return -1
	}
	for _, country := range []string{CountryIndia, CountryIndiaJio, CountryIndiaVodafone,
		CountryIran, CountryKazakhstan, CountryTurkmenistan} {
		if r := rate(country, 8); r < 0.85 {
			t.Errorf("%s: Strategy 8 at 2%% loss = %.2f, want ≥0.85 (retransmission should recover)", country, r)
		}
		if r := rate(country, 0); r > 0.15 {
			t.Errorf("%s: no-evasion baseline at 2%% loss = %.2f, want ≈0", country, r)
		}
	}
}

// TestFormatRobustness smoke-tests the renderer: one block per country, a
// column per loss rate, a row per strategy.
func TestFormatRobustness(t *testing.T) {
	cells := []RobustnessCell{
		{Country: CountryChina, Strategy: 0, Loss: 0, Rate: 0.02},
		{Country: CountryChina, Strategy: 0, Loss: 0.05, Rate: 0.01},
		{Country: CountryChina, Strategy: 8, Loss: 0, Rate: 0.5},
		{Country: CountryChina, Strategy: 8, Loss: 0.05, Rate: 0.25},
	}
	out := FormatRobustness(cells)
	for _, want := range []string{"China (http)", "No evasion", "TCP Window Reduction", "0%", "5%", "50%", "25%"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted sweep missing %q:\n%s", want, out)
		}
	}
}
