package eval

import (
	"testing"

	"geneva/internal/tcpstack"
)

func TestRouterDeployment(t *testing.T) {
	got := RouterDeployment(40)
	// Deterministic censors: the routed strategy wins outright.
	for _, c := range []string{CountryIndia, CountryIran, CountryKazakhstan} {
		if got[c] != 1 {
			t.Errorf("%s: routed success %.2f, want 1.00", c, got[c])
		}
	}
	// China: Strategy 1's ~54% through the same router.
	if got[CountryChina] < 0.35 || got[CountryChina] > 0.75 {
		t.Errorf("china: routed success %.2f, want ~0.54", got[CountryChina])
	}
	// An unrouted (uncensored) client is untouched and succeeds.
	if got[CountryNone] != 1 {
		t.Errorf("uncensored client: %.2f, want 1.00 (no manipulation)", got[CountryNone])
	}
}

func TestRouterDoesNotHurtBenignTraffic(t *testing.T) {
	// A Chinese client fetching BENIGN content through the router still
	// succeeds: the strategy manipulates only handshake packets and never
	// harms the connection (§8: negligible overhead, no false damage).
	cfg := Config{
		Country:       CountryChina,
		Session:       SessionFor(CountryChina, "http", false),
		ClientAddress: routerClientAddr(CountryChina),
		Seed:          7,
	}
	cfg.ServerHook = func(ep *tcpstack.Endpoint) {
		ep.Outbound = NewDeploymentRouter(7).Outbound
	}
	rate := Rate(cfg, 30)
	if rate != 1 {
		t.Errorf("benign traffic through the router: %.2f, want 1.00", rate)
	}
}
