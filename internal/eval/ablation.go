package eval

import (
	"math/rand"

	"geneva/internal/censor"
	"geneva/internal/censor/gfw"
	"geneva/internal/core"
	"geneva/internal/netsim"
	"geneva/internal/tcpstack"
)

// This file ablates the GFW model's load-bearing design choices, showing
// that each mechanism in DESIGN.md is necessary to reproduce the paper's
// observations — and what the world would look like without it.

// gfwVariant builds a GFW whose per-box parameters have been rewritten by
// mod, then measures a strategy's success rate against it.
func gfwVariant(mod func(*gfw.Params), strategy *core.Strategy, proto string, trials int, seed int64) float64 {
	succ := 0
	session := SessionFor(CountryChina, proto, true)
	for i := 0; i < trials; i++ {
		s := seed + int64(i)*7919
		client := tcpstack.NewEndpoint(ClientAddr, tcpstack.DefaultClient, rand.New(rand.NewSource(s)))
		server := tcpstack.NewEndpoint(ServerAddr, tcpstack.DefaultServer, rand.New(rand.NewSource(s+1)))
		server.NewServerApp = session.ServerFactory()
		server.Listen(session.Port)
		if strategy != nil {
			server.Outbound = core.NewEngine(strategy, rand.New(rand.NewSource(s+2))).Outbound
		}
		g := &gfw.GFW{}
		for _, p := range gfw.ChinaParams() {
			mod(&p)
			g.Boxes = append(g.Boxes, gfw.NewBox(p, censor.Default(), rand.New(rand.NewSource(s+3))))
		}
		n := netsim.New(client, server, g)
		client.Attach(n)
		server.Attach(n)
		tries := TriesFor(proto)
		ok := false
		for try := 0; try < tries; try++ {
			app := session.NewClient()
			client.Connect(ServerAddr, session.Port, app)
			n.Run(0)
			if app.Succeeded() {
				ok = true
				break
			}
			if !app.Reset() {
				break
			}
		}
		if ok {
			succ++
		}
	}
	return float64(succ) / float64(trials)
}

// AblationResult contrasts a strategy's success with a mechanism present
// and removed.
type AblationResult struct {
	Name             string
	Strategy         int
	Protocol         string
	WithMechanism    float64
	WithoutMechanism float64
	// AidsEvasion says which way the mechanism cuts: true for censor
	// *bugs* (removing them should collapse the strategy), false for
	// censor *capabilities* (removing them should boost the strategy).
	AidsEvasion bool
	// Explanation says what the contrast demonstrates.
	Explanation string
}

// Ablations runs the model's ablation suite.
func Ablations(trials int) []AblationResult {
	identity := func(*gfw.Params) {}
	s1, _ := byNumber(1)
	s3, _ := byNumber(3)
	s4, _ := byNumber(4)
	s5, _ := byNumber(5)
	s8, _ := byNumber(8)

	return []AblationResult{
		{
			Name: "resync trigger 2 (server RST)", Strategy: 1, Protocol: "http",
			WithMechanism:    gfwVariant(identity, s1, "http", trials, 100),
			WithoutMechanism: gfwVariant(func(p *gfw.Params) { p.PRst = 0 }, s1, "http", trials, 200),
			AidsEvasion:      true,
			Explanation:      "without the RST-triggered resync state, Strategy 1 collapses to the baseline",
		},
		{
			Name: "resync trigger 3 (corrupt-ack SYN+ACK)", Strategy: 3, Protocol: "ftp",
			WithMechanism:    gfwVariant(identity, s3, "ftp", trials, 300),
			WithoutMechanism: gfwVariant(func(p *gfw.Params) { p.PCorruptAck = 0 }, s3, "ftp", trials, 400),
			AidsEvasion:      true,
			Explanation:      "trigger 3 is the whole of the corrupt-ack family's power on FTP",
		},
		{
			Name: "clean-ACK re-acquisition", Strategy: 4, Protocol: "ftp",
			WithMechanism:    gfwVariant(identity, s4, "ftp", trials, 500),
			WithoutMechanism: gfwVariant(func(p *gfw.Params) { p.PReacquire = 0 }, s4, "ftp", trials, 600),
			AidsEvasion:      false, // a censor recovery capability
			Explanation:      "re-acquisition is what halves Strategy 4 relative to Strategy 3 (33% vs 65%)",
		},
		{
			// Measured on Strategy 4 *plus a benign payload-bearing
			// SYN+ACK retransmission* would be the purest probe; using
			// Strategy 5 with PLoadSA knocked out isolates the same
			// path: corrupt-ack resync whose re-acquisition the payload
			// accounting must block.
			Name: "SYN+ACK payload accounting", Strategy: 5, Protocol: "ftp",
			WithMechanism: gfwVariant(func(p *gfw.Params) { p.PLoadSA = 0 }, s5, "ftp", trials, 700),
			WithoutMechanism: gfwVariant(func(p *gfw.Params) {
				p.PLoadSA = 0
				p.PayloadAccounting = false
			}, s5, "ftp", trials, 800),
			AidsEvasion: true,
			Explanation: "the accounting bug blocks re-acquisition; without it Strategy 5 degrades toward Strategy 4",
		},
		{
			Name: "SMTP cannot reassemble", Strategy: 8, Protocol: "smtp",
			WithMechanism:    gfwVariant(identity, s8, "smtp", trials, 900),
			WithoutMechanism: gfwVariant(func(p *gfw.Params) { p.PNoReassembly = 0 }, s8, "smtp", trials, 1000),
			AidsEvasion:      true,
			Explanation:      "give the SMTP box reassembly and Table 2's unique 100% cell disappears",
		},
	}
}

// SingleBoxAblation contrasts the multi-box architecture (§6, Figure 3b)
// with a counterfactual single shared box: if China ran ONE network stack
// for all protocols, a TCP-level strategy would succeed (or fail) uniformly
// across applications. It returns Strategy 5's per-protocol success under
// the real model and under a single-box model that reuses the HTTP box's
// transport parameters for every protocol's DPI.
func SingleBoxAblation(trials int) (multiBox, singleBox map[string]float64) {
	s5, _ := byNumber(5)
	multiBox = make(map[string]float64)
	singleBox = make(map[string]float64)
	for _, proto := range ChinaProtocols {
		multiBox[proto] = gfwVariant(func(*gfw.Params) {}, s5, proto, trials, int64(1100+protoSeed(proto)))
		// Single box: every protocol handled by one stack with the HTTP
		// box's transport behaviour.
		httpParams := gfw.ChinaParams()[2]
		singleBox[proto] = gfwVariant(func(p *gfw.Params) {
			protoName := p.Protocol
			*p = httpParams
			p.Protocol = protoName // keep the DPI matcher; share the stack
		}, s5, proto, trials, int64(1200+protoSeed(proto)))
	}
	return multiBox, singleBox
}

// StrategyRuleDependence maps each China strategy to the resync rule that
// powers it, by knocking rules out one at a time (HTTP unless noted).
// The returned matrix is strategy -> rule-knockout -> success rate.
func StrategyRuleDependence(trials int) map[int]map[string]float64 {
	knockouts := map[string]func(*gfw.Params){
		"full":     func(*gfw.Params) {},
		"no-rule1": func(p *gfw.Params) { p.PLoad = 0 },
		"no-rule2": func(p *gfw.Params) { p.PRst = 0 },
		"no-rule3": func(p *gfw.Params) { p.PCorruptAck = 0; p.PLoadSA = 0 },
	}
	order := []string{"full", "no-rule1", "no-rule2", "no-rule3"}
	protoFor := map[int]string{1: "http", 2: "http", 3: "ftp", 5: "ftp", 6: "http", 7: "http"}
	out := make(map[int]map[string]float64)
	seed := int64(2000)
	for _, num := range []int{1, 2, 3, 5, 6, 7} {
		s, _ := byNumber(num)
		row := make(map[string]float64)
		for _, name := range order {
			row[name] = gfwVariant(knockouts[name], s, protoFor[num], trials, seed)
			seed += 10000
		}
		out[num] = row
	}
	return out
}
