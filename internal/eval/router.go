package eval

import (
	"math/rand"
	"net/netip"

	"geneva/internal/core"
	"geneva/internal/strategies"
	"geneva/internal/tcpstack"
)

// RouterPrefixes stands in for the paper's §8 country-level IP geolocation:
// the server decides which strategy to run from nothing but the client's
// address in the SYN.
var RouterPrefixes = map[string]netip.Prefix{
	CountryChina:      netip.MustParsePrefix("10.1.0.0/16"),
	CountryIndia:      netip.MustParsePrefix("10.2.0.0/16"),
	CountryIran:       netip.MustParsePrefix("10.3.0.0/16"),
	CountryKazakhstan: netip.MustParsePrefix("10.4.0.0/16"),
}

// routerClientAddr returns a client address inside a country's prefix.
func routerClientAddr(country string) netip.Addr {
	p := RouterPrefixes[country]
	a := p.Addr().As4()
	a[3] = 2
	return netip.AddrFrom4(a)
}

// NewDeploymentRouter builds the §8 deployment: one router serving clients
// everywhere, with the per-country strategy the paper would pick (Strategy
// 1 for China HTTP, Strategy 8 for India and Iran, Strategy 11 for
// Kazakhstan).
func NewDeploymentRouter(seed int64) *core.Router {
	r := core.NewRouter(nil)
	pick := map[string]strategies.Strategy{
		CountryChina:      strategies.Strategy1,
		CountryIndia:      strategies.Strategy8,
		CountryIran:       strategies.Strategy8,
		CountryKazakhstan: strategies.Strategy11,
	}
	for country, s := range pick {
		r.Route(RouterPrefixes[country], s.Parse(), rand.New(rand.NewSource(seed+int64(s.Number))))
	}
	return r
}

// RouterDeployment runs the §8 scenario: the SAME router serves clients in
// all four countries (plus an uncensored client outside every prefix), and
// each gets the right strategy purely from its address. It returns
// country -> success rate.
func RouterDeployment(trials int) map[string]float64 {
	out := make(map[string]float64)
	countries := []string{CountryChina, CountryIndia, CountryIran, CountryKazakhstan, CountryNone}
	for _, country := range countries {
		succ := 0
		for i := 0; i < trials; i++ {
			seed := int64(4200 + i*31)
			cfg := Config{
				Country: country,
				Session: SessionFor(country, "http", true),
				Tries:   TriesFor("http"),
				Seed:    seed,
				ServerHook: func(ep *tcpstack.Endpoint) {
					ep.Outbound = NewDeploymentRouter(seed).Outbound
				},
			}
			if country != CountryNone {
				cfg.ClientAddress = routerClientAddr(country)
			} // CountryNone keeps the default (unrouted) address
			if Run(cfg).Success {
				succ++
			}
		}
		out[country] = float64(succ) / float64(trials)
	}
	return out
}
