package eval

import (
	"math/rand"
	"net/netip"
	"sync"

	"geneva/internal/core"
	"geneva/internal/tcpstack"
)

// RouterPrefixes stands in for the paper's §8 country-level IP geolocation:
// the server decides which strategy to run from nothing but the client's
// address in the SYN. The map is built from the censor registry, so every
// registered censor has a routable client population.
var RouterPrefixes = func() map[string]netip.Prefix {
	m := make(map[string]netip.Prefix, len(censorRegistry))
	for _, d := range censorRegistry {
		m[d.Country] = d.RouterPrefix
	}
	return m
}()

// routerClientAddr returns a client address inside a country's prefix.
func routerClientAddr(country string) netip.Addr {
	p := RouterPrefixes[country]
	a := p.Addr().As4()
	a[3] = 2
	return netip.AddrFrom4(a)
}

// deployRoute is one row of the §8 deployment table: a country prefix, the
// strategy the paper would pick for it, and the rng-seed offset (the
// strategy's paper number) that pins the route's random stream to the
// strategy rather than to installation order.
type deployRoute struct {
	prefix netip.Prefix
	strat  *core.Strategy
	offset int64
}

var (
	deployOnce   sync.Once
	deployRoutes []deployRoute
)

// deployTable parses and compiles the deployment strategies exactly once,
// in a fixed order. The *core.Strategy values are shared read-only by every
// router built from the table (engines compile their own rule copies);
// String() is pre-memoized so the sharing is race-free.
func deployTable() []deployRoute {
	deployOnce.Do(func() {
		for _, d := range censorRegistry {
			cs := d.Deploy.Parse()
			_ = cs.String()
			deployRoutes = append(deployRoutes, deployRoute{
				prefix: d.RouterPrefix,
				strat:  cs,
				offset: int64(d.Deploy.Number),
			})
		}
	})
	return deployRoutes
}

// NewDeploymentRouter builds the §8 deployment: one router serving clients
// everywhere, with the per-country strategy the paper would pick (Strategy
// 1 for China HTTP, Strategy 8 for India and Iran, Strategy 11 for
// Kazakhstan). Each route's engine rng is seeded seed + strategy number, so
// the streams are a function of the strategy, never of table order.
func NewDeploymentRouter(seed int64) *core.Router {
	r := core.NewRouter(nil)
	for _, dr := range deployTable() {
		r.Route(dr.prefix, dr.strat, rand.New(rand.NewSource(seed+dr.offset)))
	}
	return r
}

// RouterLease is a pooled deployment router (see AcquireDeploymentRouter).
type RouterLease struct {
	Router *core.Router
	rngs   []*rand.Rand
}

// routerPool recycles deployment routers across cells: strategy parsing,
// rule compilation, and engine construction are identical for every lease,
// so only the per-run state — flow pins and rng streams — is reset on reuse.
var routerPool sync.Pool

// AcquireDeploymentRouter returns a deployment router identical in behaviour
// to NewDeploymentRouter(seed) — same routes, same per-strategy rng streams
// — but recycled through a pool. Callers hand it back with
// ReleaseDeploymentRouter once the simulation using it has been torn down.
func AcquireDeploymentRouter(seed int64) *RouterLease {
	table := deployTable()
	if v := routerPool.Get(); v != nil {
		l := v.(*RouterLease)
		l.Router.ResetFlows()
		for i := range table {
			l.rngs[i].Seed(seed + table[i].offset)
		}
		return l
	}
	l := &RouterLease{Router: core.NewRouter(nil), rngs: make([]*rand.Rand, len(table))}
	for i, dr := range table {
		l.rngs[i] = rand.New(rand.NewSource(seed + dr.offset))
		l.Router.Route(dr.prefix, dr.strat, l.rngs[i])
	}
	return l
}

// ReleaseDeploymentRouter returns a lease to the pool. The caller must not
// use the router afterwards.
func ReleaseDeploymentRouter(l *RouterLease) {
	if l != nil {
		routerPool.Put(l)
	}
}

// RouterDeployment runs the §8 scenario: the SAME router serves clients in
// every registered country (plus an uncensored client outside every
// prefix), and each gets the right strategy purely from its address. Each
// country is probed on its sweep protocol (HTTP where censored, otherwise
// the censor's first censored protocol — Jio, for instance, only censors
// HTTPS). It returns country -> success rate.
func RouterDeployment(trials int) map[string]float64 {
	out := make(map[string]float64)
	for _, country := range Countries() {
		proto := SweepProtocol(country)
		succ := 0
		for i := 0; i < trials; i++ {
			seed := int64(4200 + i*31)
			cfg := Config{
				Country: country,
				Session: SessionFor(country, proto, true),
				Tries:   TriesFor(proto),
				Seed:    seed,
				ServerHook: func(ep *tcpstack.Endpoint) {
					ep.Outbound = NewDeploymentRouter(seed).Outbound
				},
			}
			if country != CountryNone {
				cfg.ClientAddress = routerClientAddr(country)
			} // CountryNone keeps the default (unrouted) address
			if Run(cfg).Success {
				succ++
			}
		}
		out[country] = float64(succ) / float64(trials)
	}
	return out
}
