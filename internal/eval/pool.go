package eval

import "sync"

// RunParallel runs n independent tasks, fn(0) … fn(n-1), on a bounded pool
// of up to workers goroutines, and returns when all have finished. It is
// the one worker-pool shape every harness layer shares — per-trial fan-out
// (RateStats), per-individual fan-out (Evaluator.BatchFitness), and the
// fleet's per-shard wave dispatch — so the layers compose without each
// reimplementing channel plumbing.
//
// Tasks must be independent: fn typically writes only results[i]. With
// workers <= 1 the tasks run inline on the caller's goroutine in index
// order, which keeps single-worker runs goroutine-free (the alloc-budget
// tests rely on that) and trivially deterministic.
func RunParallel(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
