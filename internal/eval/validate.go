package eval

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors for input validation, matchable with errors.Is. Every
// validation failure wraps one of these AND keeps the descriptive text
// naming the valid values — callers branch on the sentinel, humans read the
// message. The public facade re-exports them as geneva.ErrUnknownCountry /
// geneva.ErrUnknownProtocol.
var (
	ErrUnknownCountry  = errors.New("unknown country")
	ErrUnknownProtocol = errors.New("unknown protocol")
)

// Countries returns every country the harness can simulate — the censor
// registry's countries plus CountryNone (the public facade validates
// Simulation/Deployment inputs against this list instead of panicking deep
// inside a rig).
func Countries() []string {
	return append(CensoredCountries(), CountryNone)
}

// Protocols returns every application protocol the harness can speak.
func Protocols() []string {
	return []string{"dns", "ftp", "http", "https", "smtp"}
}

// ValidCountry reports whether country names a modeled censor (or
// CountryNone, the uncensored private network).
func ValidCountry(country string) bool {
	if country == CountryNone {
		return true
	}
	_, ok := CensorByCountry(country)
	return ok
}

// ValidProtocol reports whether protocol names a modeled application session.
func ValidProtocol(protocol string) bool {
	switch protocol {
	case "dns", "ftp", "http", "https", "smtp":
		return true
	}
	return false
}

// CheckCountryProtocol validates a (country, protocol) pair, returning a
// descriptive error naming the valid values. The valid-country list is
// enumerated from the registry, so registering a censor surfaces it here
// with no further wiring. The harness's internal constructors (NewCensor,
// SessionFor) panic on unknown inputs by design — they only ever see
// validated values — so every public entry point calls this first.
func CheckCountryProtocol(country, protocol string) error {
	if !ValidCountry(country) {
		return fmt.Errorf("%w %q (valid: %q for %s, or %q for no censor)",
			ErrUnknownCountry, country, CensoredCountries(), strings.Join(censorDisplays(), ", "), CountryNone)
	}
	if !ValidProtocol(protocol) {
		return fmt.Errorf("%w %q (valid: %s)", ErrUnknownProtocol, protocol, strings.Join(Protocols(), ", "))
	}
	return nil
}

func censorDisplays() []string {
	out := make([]string, len(censorRegistry))
	for i, d := range censorRegistry {
		out[i] = d.Display
	}
	return out
}
