package eval

import "math"

// WilsonInterval returns the Wilson score interval for a binomial success
// rate: the plausible range of the true rate given successes out of trials,
// at confidence z (1.96 for 95%). It is the right interval for Table 2
// cells, whose rates sit near 0 and 1 where the normal approximation
// misbehaves.
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// MaxSamplingError returns the worst-case (p=0.5) 95% half-width for a
// cell computed from the given number of trials — the "±" to read Table 2
// with.
func MaxSamplingError(trials int) float64 {
	lo, hi := WilsonInterval(trials/2, trials, 1.96)
	return (hi - lo) / 2
}
