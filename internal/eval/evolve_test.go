package eval

import (
	"testing"
)

func TestEvolutionRediscoversKazakhstanStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("evolution run")
	}
	// Kazakhstan is deterministic, so even a small population should find
	// a 100% strategy (the paper's Geneva found four).
	res, _ := Evolve(EvolveOptions{
		Country:       CountryKazakhstan,
		Protocol:      "http",
		Population:    60,
		Generations:   20,
		TrialsPerEval: 3,
		Seed:          42,
	})
	if res.Best.Fitness < 0.9 {
		t.Fatalf("evolution best fitness %.2f with %q; expected a 100%% Kazakhstan strategy",
			res.Best.Fitness, res.Best.Strategy.String())
	}
	// Confirm independently with fresh seeds.
	confirm := Rate(Config{
		Country:  CountryKazakhstan,
		Session:  SessionFor(CountryKazakhstan, "http", true),
		Strategy: res.Best.Strategy,
		Seed:     9999,
	}, 20)
	if confirm < 0.9 {
		t.Errorf("evolved strategy %q confirmed at only %.2f", res.Best.Strategy.String(), confirm)
	}
	t.Logf("evolved: %s (fitness %.2f)", res.Best.Strategy.String(), res.Best.Fitness)
}

func TestEvolutionFindsChinaFTPStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("evolution run")
	}
	// The corrupt-ack family gives >60% on FTP; evolution should find
	// something in that range.
	res, _ := Evolve(EvolveOptions{
		Country:       CountryChina,
		Protocol:      "ftp",
		Population:    80,
		Generations:   15,
		TrialsPerEval: 8,
		Seed:          7,
	})
	if res.Best.Fitness < 0.45 {
		t.Fatalf("evolution best fitness %.2f with %q; the paper's Geneva found >=50%% strategies",
			res.Best.Fitness, res.Best.Strategy.String())
	}
	t.Logf("evolved: %s (fitness %.2f)", res.Best.Strategy.String(), res.Best.Fitness)
}

func TestEvolutionFindsSegmentationAgainstIndia(t *testing.T) {
	if testing.Short() {
		t.Skip("evolution run")
	}
	// India's stateless DPI falls to any segmentation-inducing SYN+ACK
	// tamper (window reduction or MSS clamping); the search should find a
	// deterministic 100% strategy quickly.
	res, _ := Evolve(EvolveOptions{
		Country:       CountryIndia,
		Protocol:      "http",
		Population:    60,
		Generations:   15,
		TrialsPerEval: 3,
		Seed:          3,
	})
	if res.Best.Fitness < 0.9 {
		t.Fatalf("evolution best fitness %.2f with %q", res.Best.Fitness, res.Best.Strategy.String())
	}
	confirm := Rate(Config{
		Country:  CountryIndia,
		Session:  SessionFor(CountryIndia, "http", true),
		Strategy: res.Best.Strategy,
		Seed:     8888,
	}, 20)
	if confirm != 1 {
		t.Errorf("evolved strategy %q confirmed at %.2f", res.Best.Strategy.String(), confirm)
	}
	t.Logf("evolved vs India: %s", res.Best.Strategy.String())
}

func TestEvolveTriggerOnFTPCanUseNonSynAck(t *testing.T) {
	if testing.Short() {
		t.Skip("evolution run")
	}
	// §4.1: FTP servers speak before censorship, so the trigger itself is
	// evolvable there. The run must remain valid whatever trigger wins.
	res, _ := Evolve(EvolveOptions{
		Country:       CountryChina,
		Protocol:      "ftp",
		Population:    150,
		Generations:   25,
		TrialsPerEval: 6,
		Seed:          11,
	})
	if res.Best.Strategy == nil || res.Best.Fitness < 0.4 {
		t.Fatalf("FTP evolution with evolvable triggers stalled at %.2f", res.Best.Fitness)
	}
	t.Logf("evolved vs GFW-FTP: %s (%.2f)", res.Best.Strategy.String(), res.Best.Fitness)
}
