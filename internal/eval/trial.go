// Package eval is the experiment harness: it wires clients, servers,
// censors, and server-side strategies into the virtual network and
// reproduces every table, figure, and follow-up experiment in the paper's
// evaluation (see DESIGN.md's per-experiment index).
package eval

import (
	"fmt"
	"math/rand"
	"net/netip"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/core"
	"geneva/internal/netsim"
	"geneva/internal/tcpstack"
)

// Countries with modeled censors. CountryIndia is the Airtel sibling of
// the India ISP family (the paper's §5.2 measurement); Jio and Vodafone
// are separate countries from the harness's point of view because each
// ISP is an independent censor.
const (
	CountryNone          = ""
	CountryChina         = "china"
	CountryIndia         = "india"
	CountryIndiaJio      = "india-jio"
	CountryIndiaVodafone = "india-vodafone"
	CountryIran          = "iran"
	CountryKazakhstan    = "kazakhstan"
	CountryTurkmenistan  = "turkmenistan"
)

// ClientAddr and ServerAddr are the fixed endpoints of every trial: a
// client inside the censoring regime, a server outside it.
var (
	ClientAddr = netip.MustParseAddr("10.1.0.2")
	ServerAddr = netip.MustParseAddr("198.51.100.9")
)

// CensorCounter is implemented by every censor model: a middlebox that
// counts its censorship events.
type CensorCounter interface {
	netsim.Middlebox
	CensoredCount() int
}

// NewCensor builds the middlebox for a country, or nil for CountryNone.
// The registry is the single source of truth: adding a CensorDef makes the
// country constructible here with no further wiring.
func NewCensor(country string, bl censor.Blocklist, rng *rand.Rand) CensorCounter {
	if country == CountryNone {
		return nil
	}
	if d, ok := CensorByCountry(country); ok {
		return d.New(bl, rng)
	}
	panic(fmt.Sprintf("eval: unknown country %q", country))
}

// Config describes one trial.
type Config struct {
	// Country selects the censor ("" = none, the §7 private network).
	Country string
	// Session is the application exchange to attempt.
	Session *apps.Session
	// Strategy is the server-side Geneva strategy (nil = no evasion).
	Strategy *core.Strategy
	// ClientOS defaults to tcpstack.DefaultClient.
	ClientOS tcpstack.Personality
	// Tries is the number of connection attempts; retries happen only if
	// the previous attempt's connection was torn down (RFC 7766 DNS
	// behaviour). Default 1.
	Tries int
	// Seed makes the trial reproducible.
	Seed int64
	// ClientHook, if set, can instrument the client endpoint before the
	// connection starts (the §5 follow-up experiments).
	ClientHook func(*tcpstack.Endpoint)
	// ClientAddress overrides the client's address (the §8 router
	// experiment places clients in different regions' prefixes).
	ClientAddress netip.Addr
	// ServerHook, if set, configures the server endpoint before the
	// connection starts (e.g. installing a core.Router instead of a
	// single-strategy engine).
	ServerHook func(*tcpstack.Endpoint)
	// WithTrace records a packet trace (waterfalls).
	WithTrace bool
	// Blocklist defaults to censor.Default().
	Blocklist *censor.Blocklist
	// Impairments adds seedable loss/duplication/reordering/jitter to the
	// path and arms endpoint retransmission. The zero value leaves the
	// network lossless, the retransmission timers unarmed, and every trial
	// byte-identical to an impairment-free build.
	Impairments netsim.Impairments
	// Workers bounds the per-trial worker pool Rate/RateStats fan out on
	// (0 = the process default, Workers()). Purely a scheduling knob: every
	// trial derives its randomness from Seed and its own index, so results
	// are identical at any width.
	Workers int
}

// Result of a trial.
type Result struct {
	// Success is the paper's criterion: no tear-down and correct data.
	Success bool
	// Established reports whether any attempt completed a handshake.
	Established bool
	// CensorEvents counts censorship actions across all attempts.
	CensorEvents int
	// Attempts is how many connections were made.
	Attempts int
	// Censor exposes the middlebox for model-specific inspection.
	Censor netsim.Middlebox
	// Rig remains usable for follow-on connections (residual
	// censorship experiments).
	Rig *Rig
	// Trace is the packet trace of the *last* attempt (if requested).
	Trace *netsim.Trace
}

// Rig is a wired-up client/censor/server sandbox that can run repeated
// connections against the same censor state.
type Rig struct {
	Client  *tcpstack.Endpoint
	Server  *tcpstack.Endpoint
	Net     *netsim.Network
	Censor  CensorCounter
	Session *apps.Session
}

// NewRig builds the sandbox for a config.
func NewRig(cfg Config) *Rig {
	if cfg.ClientOS.Name == "" {
		cfg.ClientOS = tcpstack.DefaultClient
	}
	bl := censor.Default()
	if cfg.Blocklist != nil {
		// Normalize once at rig construction so mixed-case or padded
		// entries match, and the per-packet Match fast path never pays for
		// re-normalizing.
		bl = cfg.Blocklist.Normalize()
	}
	seed := cfg.Seed
	clientAddr := cfg.ClientAddress
	if !clientAddr.IsValid() {
		clientAddr = ClientAddr
	}
	client := tcpstack.NewEndpoint(clientAddr, cfg.ClientOS, rand.New(rand.NewSource(seed)))
	server := tcpstack.NewEndpoint(ServerAddr, tcpstack.DefaultServer, rand.New(rand.NewSource(seed+1)))
	server.NewServerApp = cfg.Session.ServerFactory()
	server.Listen(cfg.Session.Port)
	if cfg.Strategy != nil {
		server.Outbound = core.NewEngine(cfg.Strategy, rand.New(rand.NewSource(seed+2))).Outbound
	}

	cen := NewCensor(cfg.Country, bl, rand.New(rand.NewSource(seed+3)))
	var n *netsim.Network
	if cen != nil {
		n = netsim.New(client, server, cen)
	} else {
		n = netsim.New(client, server)
	}
	// Recycling is safe here because every component in the rig — endpoints,
	// censors, apps — copies what it keeps and never retains a delivered
	// *Packet (recorders clone at record time), so delivered packets can go
	// straight back to the pool.
	n.RecyclePackets = true
	if cfg.WithTrace {
		n.Trace = &netsim.Trace{}
	}
	if cfg.Impairments.Enabled() {
		// seed+4 keeps the impairment schedule independent of the ISN,
		// engine, and censor rng streams (seed..seed+3).
		n.SetImpairments(cfg.Impairments, rand.New(rand.NewSource(seed+4)))
		client.Retransmit = tcpstack.DefaultRetransmit
		server.Retransmit = tcpstack.DefaultRetransmit
	}
	client.Attach(n)
	server.Attach(n)
	if cfg.ClientHook != nil {
		cfg.ClientHook(client)
	}
	if cfg.ServerHook != nil {
		cfg.ServerHook(server)
	}
	return &Rig{Client: client, Server: server, Net: n, Censor: cen, Session: cfg.Session}
}

// Attempt runs one connection to completion (network quiet) and returns the
// client application.
func (r *Rig) Attempt() *apps.Script {
	if r.Net.Trace != nil {
		r.Net.Trace.Entries = nil // keep only the current attempt
	}
	app := r.Session.NewClient()
	r.Client.Connect(ServerAddr, r.Session.Port, app)
	r.Net.Run(0)
	return app
}

// CensorEvents returns the censor's event count (0 with no censor).
func (r *Rig) CensorEvents() int {
	if r.Censor == nil {
		return 0
	}
	return r.Censor.CensoredCount()
}

// Run executes the trial: up to cfg.Tries attempts, retrying only when the
// previous connection was torn down (the RFC 7766 client behaviour the
// paper leans on for DNS success rates).
func Run(cfg Config) Result {
	rig := NewRig(cfg)
	tries := cfg.Tries
	if tries <= 0 {
		tries = 1
	}
	res := Result{Censor: rig.Censor, Rig: rig}
	for i := 0; i < tries; i++ {
		app := rig.Attempt()
		res.Attempts++
		res.Established = res.Established || app.Established()
		if app.Succeeded() {
			res.Success = true
			break
		}
		if !app.Reset() {
			break // blackholed or corrupted: real clients stop retrying
		}
	}
	res.CensorEvents = rig.CensorEvents()
	res.Trace = rig.Net.Trace
	mTrials.Inc()
	mAttempts.Add(uint64(res.Attempts))
	if res.Success {
		mTrialSuccess.Inc()
	}
	if res.Established {
		mTrialEstablished.Inc()
	}
	return res
}

// RateResult aggregates a batch of independent trials: the per-trial outcome
// counts geneva.Run surfaces. Every field is a sum of per-trial values whose
// randomness derives purely from the seed schedule, so a RateResult is
// bit-identical at any worker width.
type RateResult struct {
	// Trials is the number of independent connections simulated.
	Trials int
	// Succeeded counts trials meeting the paper's §4.2 criterion: no
	// tear-down and the client received the correct, unaltered data.
	Succeeded int
	// Established counts trials in which any attempt completed a handshake.
	Established int
	// Attempts is the total number of connections across all trials
	// (retries included).
	Attempts int
	// CensorEvents is the total number of censorship actions observed.
	CensorEvents int
}

// Rate returns the success fraction, the §4.2 evasion rate.
func (r RateResult) Rate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Succeeded) / float64(r.Trials)
}

// RateStats runs trials independent trials of cfg (varying the seed) and
// returns the aggregated outcome counts. Trials share no state — every rig
// is built from its own seed — so they run on a worker pool bounded by
// cfg.Workers (0 = the process default); the result is identical to a
// sequential run because every field is a commutative sum.
func RateStats(cfg Config, trials int) RateResult {
	workers := cfg.Workers
	if workers <= 0 {
		workers = Workers()
	}
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		return rateSequential(cfg, trials)
	}
	results := make([]Result, trials)
	RunParallel(workers, trials, func(i int) {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		results[i] = Run(c)
	})
	out := RateResult{Trials: trials}
	for i := range results {
		if results[i].Success {
			out.Succeeded++
		}
		if results[i].Established {
			out.Established++
		}
		out.Attempts += results[i].Attempts
		out.CensorEvents += results[i].CensorEvents
	}
	return out
}

// Rate is RateStats reduced to the success fraction.
func Rate(cfg Config, trials int) float64 {
	return RateStats(cfg, trials).Rate()
}

func rateSequential(cfg Config, trials int) RateResult {
	out := RateResult{Trials: trials}
	for i := 0; i < trials; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		res := Run(c)
		if res.Success {
			out.Succeeded++
		}
		if res.Established {
			out.Established++
		}
		out.Attempts += res.Attempts
		out.CensorEvents += res.CensorEvents
	}
	return out
}
