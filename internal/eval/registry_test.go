package eval

import (
	"math/rand"
	"strings"
	"testing"

	"geneva/internal/censor"
)

// TestRegistryWellFormed is the structural contract every registry entry
// must satisfy: registering a censor with a hole in it (no metric label, a
// reused prefix, an unparseable deployment strategy) should fail here, not
// three layers away in the fleet or the router.
func TestRegistryWellFormed(t *testing.T) {
	countries := map[string]bool{}
	labels := map[string]bool{}
	prefixes := map[string]bool{}
	for _, d := range Registry() {
		if d.Country == "" || d.Display == "" || d.MetricLabel == "" {
			t.Errorf("%q: Country/Display/MetricLabel must all be set (%q, %q)", d.Country, d.Display, d.MetricLabel)
		}
		if d.Country == CountryNone {
			t.Errorf("CountryNone must not be registered as a censor")
		}
		if countries[d.Country] {
			t.Errorf("%s: duplicate country key", d.Country)
		}
		countries[d.Country] = true
		if labels[d.MetricLabel] {
			t.Errorf("%s: metric label %q reused", d.Country, d.MetricLabel)
		}
		labels[d.MetricLabel] = true
		if strings.ContainsAny(d.MetricLabel, ".- ") {
			t.Errorf("%s: metric label %q must be a bare underscored word (dots separate metric fields)", d.Country, d.MetricLabel)
		}
		if len(d.Protocols) == 0 {
			t.Errorf("%s: censors at least one protocol", d.Country)
		}
		for _, p := range d.Protocols {
			if !ValidProtocol(p) {
				t.Errorf("%s: censored protocol %q is not a modeled protocol", d.Country, p)
			}
		}
		if !d.RouterPrefix.IsValid() {
			t.Errorf("%s: router prefix invalid", d.Country)
		} else if prefixes[d.RouterPrefix.String()] {
			t.Errorf("%s: router prefix %s reused", d.Country, d.RouterPrefix)
		}
		prefixes[d.RouterPrefix.String()] = true
		if d.Deploy.Number == 0 {
			t.Errorf("%s: no §8 deployment strategy", d.Country)
		}
		if d.Deploy.Parse() == nil {
			t.Errorf("%s: deployment strategy does not parse", d.Country)
		}
		if d.Country != CountryChina && len(d.Table2) == 0 {
			t.Errorf("%s: no Table-2 strategies (only China's block is built specially)", d.Country)
		}
		if d.New == nil {
			t.Fatalf("%s: no constructor", d.Country)
		}
		c := d.New(censor.Default(), rand.New(rand.NewSource(1)))
		if c == nil {
			t.Fatalf("%s: constructor returned nil", d.Country)
		}
		if n := c.CensoredCount(); n != 0 {
			t.Errorf("%s: fresh censor reports %d censored flows", d.Country, n)
		}
		// The Residual flag is the fleet ledger's contract: flagged censors
		// must speak censor.ResidualCarrier, unflagged ones must not (or the
		// fleet would silently drop their cross-connection state).
		_, carrier := c.(censor.ResidualCarrier)
		if carrier != d.Residual {
			t.Errorf("%s: Residual=%v but ResidualCarrier=%v", d.Country, d.Residual, carrier)
		}
	}
}

// TestRegistrySurfacesEverywhere is the latent-assumption regression: adding
// a registry row must be the WHOLE wiring job. Every enumeration the harness
// exposes — validation, the error text a user sees for a bad country, the
// router's prefix map, NewCensor construction — is checked against the
// registry, so a censor registered without surfacing anywhere fails here.
func TestRegistrySurfacesEverywhere(t *testing.T) {
	err := CheckCountryProtocol("atlantis", "http")
	if err == nil {
		t.Fatal("unknown country must be rejected")
	}
	msg := err.Error()
	for _, d := range Registry() {
		if !ValidCountry(d.Country) {
			t.Errorf("%s: registered but not a valid country", d.Country)
		}
		if CheckCountryProtocol(d.Country, d.Protocols[0]) != nil {
			t.Errorf("%s: registered but CheckCountryProtocol rejects it", d.Country)
		}
		if !strings.Contains(msg, d.Country) {
			t.Errorf("unknown-country error does not name %q:\n%s", d.Country, msg)
		}
		if !strings.Contains(msg, d.Display) {
			t.Errorf("unknown-country error does not name %q:\n%s", d.Display, msg)
		}
		if _, ok := RouterPrefixes[d.Country]; !ok {
			t.Errorf("%s: no §8 router prefix", d.Country)
		}
		if got := CensoredProtocols(d.Country); len(got) != len(d.Protocols) {
			t.Errorf("%s: CensoredProtocols = %v, want %v", d.Country, got, d.Protocols)
		}
		if c := NewCensor(d.Country, censor.Default(), rand.New(rand.NewSource(2))); c == nil {
			t.Errorf("%s: NewCensor returned nil", d.Country)
		}
	}
	if got, want := len(Countries()), len(Registry())+1; got != want {
		t.Errorf("Countries() has %d entries, want %d (registry + %q)", got, want, CountryNone)
	}
	found := false
	for _, c := range Countries() {
		if c == CountryNone {
			found = true
		}
	}
	if !found {
		t.Errorf("Countries() lost %q", CountryNone)
	}
}

// TestRegistryProtocolsAreHonest closes the loop behaviourally: for every
// registry row, each protocol it claims to censor is actually censored by
// the constructed middlebox (a forbidden no-evasion session fails), and
// each protocol it does not claim is left alone (the same forbidden session
// succeeds). A row claiming "https" for a censor that never parses a
// ClientHello would pass every structural check and still be a lie.
func TestRegistryProtocolsAreHonest(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full trial per (censor, protocol) cell")
	}
	for _, d := range Registry() {
		claimed := map[string]bool{}
		for _, p := range d.Protocols {
			claimed[p] = true
		}
		for _, proto := range Protocols() {
			cfg := Config{
				Country: d.Country,
				Session: SessionFor(d.Country, proto, true),
				Tries:   TriesFor(proto),
				Seed:    61,
			}
			res := Run(cfg)
			if claimed[proto] && res.Success {
				t.Errorf("%s: claims to censor %s but a forbidden session sailed through", d.Country, proto)
			}
			if !claimed[proto] && !res.Success {
				t.Errorf("%s: does not claim %s but the session failed anyway (%d censor events)",
					d.Country, proto, res.CensorEvents)
			}
		}
	}
}
