package eval

import "testing"

func TestAblationsShowMechanismsAreLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("many trials")
	}
	for _, a := range Ablations(120) {
		if a.AidsEvasion && a.WithMechanism < a.WithoutMechanism+0.15 {
			t.Errorf("%s (strategy %d/%s): with=%.2f without=%.2f — removing the censor bug should collapse the strategy: %s",
				a.Name, a.Strategy, a.Protocol, a.WithMechanism, a.WithoutMechanism, a.Explanation)
		}
		if !a.AidsEvasion && a.WithoutMechanism < a.WithMechanism+0.15 {
			t.Errorf("%s (strategy %d/%s): with=%.2f without=%.2f — removing the censor capability should boost the strategy: %s",
				a.Name, a.Strategy, a.Protocol, a.WithMechanism, a.WithoutMechanism, a.Explanation)
		}
	}
}

func TestSingleBoxAblationCollapsesHeterogeneity(t *testing.T) {
	if testing.Short() {
		t.Skip("many trials")
	}
	multi, single := SingleBoxAblation(120)
	// Real model: FTP dwarfs HTTP for Strategy 5.
	if multi["ftp"] < multi["http"]+0.5 {
		t.Errorf("multi-box: ftp=%.2f http=%.2f — heterogeneity missing", multi["ftp"], multi["http"])
	}
	// Counterfactual single box: the spread collapses.
	spread := 0.0
	for _, p := range ChinaProtocols {
		for _, q := range ChinaProtocols {
			if d := single[p] - single[q]; d > spread {
				spread = d
			}
		}
	}
	// DNS retries triple the per-try rate, so allow that amplification but
	// nothing like the 90-point multi-box spread.
	if spread > 0.45 {
		t.Errorf("single-box spread = %.2f; a shared stack should be near-uniform (%v)", spread, single)
	}
}

func TestStrategyRuleDependence(t *testing.T) {
	if testing.Short() {
		t.Skip("many trials")
	}
	dep := StrategyRuleDependence(100)
	// Strategy 1 runs on rule 2.
	if dep[1]["no-rule2"] > dep[1]["full"]-0.3 {
		t.Errorf("strategy 1: full=%.2f no-rule2=%.2f", dep[1]["full"], dep[1]["no-rule2"])
	}
	// Strategy 2 runs on rule 1.
	if dep[2]["no-rule1"] > dep[2]["full"]-0.3 {
		t.Errorf("strategy 2: full=%.2f no-rule1=%.2f", dep[2]["full"], dep[2]["no-rule1"])
	}
	// Strategy 3 (FTP) runs on rule 3.
	if dep[3]["no-rule3"] > dep[3]["full"]-0.3 {
		t.Errorf("strategy 3: full=%.2f no-rule3=%.2f", dep[3]["full"], dep[3]["no-rule3"])
	}
	// Strategy 6 survives the loss of rule 3 (it is rule-1-powered on HTTP).
	if dep[6]["no-rule3"] < dep[6]["full"]-0.2 {
		t.Errorf("strategy 6: full=%.2f no-rule3=%.2f — should be rule-1-powered", dep[6]["full"], dep[6]["no-rule3"])
	}
	// Knocking out an unrelated rule never helps dramatically.
	for num, row := range dep {
		if row["full"] < 0.1 {
			t.Errorf("strategy %d full model rate %.2f — suspiciously low", num, row["full"])
		}
	}
}
