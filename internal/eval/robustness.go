package eval

import (
	"fmt"
	"strings"

	"geneva/internal/netsim"
	"geneva/internal/strategies"
)

// RobustnessCell is one point of the robustness sweep: a strategy against a
// censor at one loss rate, on the country's sweep protocol.
type RobustnessCell struct {
	Country  string
	Protocol string
	Strategy int // 0 = no evasion
	Loss     float64
	Rate     float64
}

// DefaultLossRates is the ladder the robustness sweep climbs when the
// caller does not pick one: lossless (the golden anchor — must reproduce
// the no-impairment numbers exactly) up through a badly degraded path.
var DefaultLossRates = []float64{0, 0.01, 0.02, 0.05, 0.10}

// RobustnessCountries are the censors the sweep runs against — every
// registered censor, in registry order.
var RobustnessCountries = CensoredCountries()

// Robustness sweeps evasion rate versus loss rate for every paper strategy
// (plus the no-evasion baseline) against every censor, on each censor's
// sweep protocol (HTTP where censored — Jio, which only censors HTTPS,
// sweeps HTTPS). base carries the non-loss impairments (duplication,
// reordering, jitter) held constant across the sweep; its Loss field is
// overridden by each ladder step. At loss 0 with a zero base the impairment
// layer is disabled outright, so that column reproduces the golden
// no-impairment rates bit-for-bit.
//
// This is the experiment the lossless simulator could not ask: does a
// strategy built from precise packet interleavings (and now, under loss,
// from *retransmitted* server packets re-entering the censor's resync
// logic) survive a realistic path?
func Robustness(base netsim.Profile, lossRates []float64, trials int) []RobustnessCell {
	if len(lossRates) == 0 {
		lossRates = DefaultLossRates
	}
	var cells []RobustnessCell
	for ci, country := range RobustnessCountries {
		proto := SweepProtocol(country)
		for n := 0; n <= 11; n++ {
			for _, loss := range lossRates {
				prof := base
				prof.Loss = loss
				cfg := Config{
					Country:     country,
					Session:     SessionFor(country, proto, true),
					Tries:       TriesFor(proto),
					Seed:        int64(100000*ci + 1000*n + protoSeed(proto)),
					Impairments: netsim.Symmetric(prof),
				}
				if n > 0 {
					s, _ := strategies.ByNumber(n)
					cfg.Strategy = s.Parse()
				}
				cells = append(cells, RobustnessCell{
					Country:  country,
					Protocol: proto,
					Strategy: n,
					Loss:     loss,
					Rate:     Rate(cfg, trials),
				})
			}
		}
	}
	return cells
}

// FormatRobustness renders the sweep as one block per country: strategies
// down, loss rates across.
func FormatRobustness(cells []RobustnessCell) string {
	losses := []float64{}
	seen := map[float64]bool{}
	byKey := map[string]map[int]map[float64]float64{}
	protoOf := map[string]string{}
	for _, c := range cells {
		if !seen[c.Loss] {
			seen[c.Loss] = true
			losses = append(losses, c.Loss)
		}
		if byKey[c.Country] == nil {
			byKey[c.Country] = map[int]map[float64]float64{}
		}
		if byKey[c.Country][c.Strategy] == nil {
			byKey[c.Country][c.Strategy] = map[float64]float64{}
		}
		byKey[c.Country][c.Strategy][c.Loss] = c.Rate
		if c.Protocol != "" {
			protoOf[c.Country] = c.Protocol
		}
	}
	var b strings.Builder
	for _, country := range RobustnessCountries {
		rows, ok := byKey[country]
		if !ok {
			continue
		}
		proto := protoOf[country]
		if proto == "" {
			proto = "http"
		}
		fmt.Fprintf(&b, "%s (%s)\n", strings.ToUpper(country[:1])+country[1:], proto)
		fmt.Fprintf(&b, "  %-40s", "strategy \\ loss")
		for _, l := range losses {
			fmt.Fprintf(&b, " %5.0f%%", 100*l)
		}
		b.WriteByte('\n')
		for n := 0; n <= 11; n++ {
			rates, ok := rows[n]
			if !ok {
				continue
			}
			name := "No evasion"
			num := "–"
			if n > 0 {
				s, _ := strategies.ByNumber(n)
				name = s.Name
				num = fmt.Sprintf("%d", n)
			}
			fmt.Fprintf(&b, "  %-2s %-37s", num, name)
			for _, l := range losses {
				fmt.Fprintf(&b, " %5.0f%%", 100*rates[l])
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
