package eval

import (
	"math/rand"

	"geneva/internal/core"
	"geneva/internal/genetic"
)

// FitnessFor builds the fitness function Geneva trains with (§4.1): the
// fraction of trials in which a strategy lets an unmodified client fetch
// the forbidden content through the given country's censor.
func FitnessFor(country, protocol string, trials int, seedBase int64) func(*core.Strategy) float64 {
	return func(s *core.Strategy) float64 {
		cfg := Config{
			Country:  country,
			Session:  SessionFor(country, protocol, true),
			Strategy: s,
			Tries:    TriesFor(protocol),
			Seed:     seedBase,
		}
		return Rate(cfg, trials)
	}
}

// EvolveOptions configures a server-side training run.
type EvolveOptions struct {
	Country  string
	Protocol string
	// Population and Generations default to the paper's 300 and 50.
	Population  int
	Generations int
	// TrialsPerEval is the fitness sample size per individual.
	TrialsPerEval int
	Seed          int64
}

// Evolve runs Geneva server-side against a simulated censor, as the paper
// does against the real ones, and returns the evolution result. Triggers
// are restricted to SYN+ACK (the §4.1 optimization).
func Evolve(opt EvolveOptions) genetic.Result {
	if opt.TrialsPerEval == 0 {
		opt.TrialsPerEval = 10
	}
	return genetic.Evolve(genetic.Config{
		PopulationSize: opt.Population,
		Generations:    opt.Generations,
		TriggerValue:   "SA",
		// §4.1: for every protocol but FTP, the SYN+ACK is the only
		// packet a server sends before censorship, so triggers are
		// restricted to it; FTP servers speak first (the 220 greeting),
		// so there the trigger itself evolves.
		EvolveTrigger: opt.Protocol == "ftp",
		Fitness:       FitnessFor(opt.Country, opt.Protocol, opt.TrialsPerEval, opt.Seed),
		Rng:           rand.New(rand.NewSource(opt.Seed)),
	})
}

// randomEvolvable builds a random GA-shaped strategy (exposed for the fuzz
// tests, which reuse the GA's generator through this seam).
func randomEvolvable(rng *rand.Rand) *core.Strategy {
	return genetic.RandomStrategy(rng, "SA")
}
