package eval

import (
	"math/rand"

	"geneva/internal/core"
	"geneva/internal/genetic"
)

// FitnessFor builds the fitness function Geneva trains with (§4.1): the
// fraction of trials in which a strategy lets an unmodified client fetch
// the forbidden content through the given country's censor.
func FitnessFor(country, protocol string, trials int, seedBase int64) func(*core.Strategy) float64 {
	return func(s *core.Strategy) float64 {
		cfg := Config{
			Country:  country,
			Session:  SessionFor(country, protocol, true),
			Strategy: s,
			Tries:    TriesFor(protocol),
			Seed:     seedBase,
		}
		return Rate(cfg, trials)
	}
}

// EvolveOptions configures a server-side training run.
type EvolveOptions struct {
	Country  string
	Protocol string
	// Population and Generations default to the paper's 300 and 50.
	Population  int
	Generations int
	// TrialsPerEval is the fitness sample size per individual.
	TrialsPerEval int
	Seed          int64
	// Workers bounds the population-evaluation pool (0 = eval.Workers(),
	// one worker per CPU). Any width returns the same Result.
	Workers int
	// NoCache disables the cross-generation fitness memo, re-measuring
	// every canonical strategy each generation. Fitness is pure, so the
	// Result is identical; the determinism suite turns this knob.
	NoCache bool
	// Sequential forces the original one-strategy-at-a-time fitness path
	// (no batch seam, no population pool, no eval-side cache) — the
	// reference implementation the parallel engine is tested against.
	Sequential bool
}

// Evolve runs Geneva server-side against a simulated censor, as the paper
// does against the real ones, and returns the evolution result. Triggers
// are restricted to SYN+ACK (the §4.1 optimization). Populations are scored
// by the parallel, memoizing evaluation engine (see Evaluator); use
// EvolveWithStats to also observe the cache counters. An unknown Country or
// Protocol returns an error wrapping ErrUnknownCountry/ErrUnknownProtocol
// instead of panicking inside the rig.
func Evolve(opt EvolveOptions) (genetic.Result, error) {
	res, _, err := EvolveWithStats(opt)
	return res, err
}

// EvolveWithStats is Evolve plus the evaluation engine's cache statistics.
// On the Sequential path the stats are zero (there is no engine).
func EvolveWithStats(opt EvolveOptions) (genetic.Result, EvalStats, error) {
	if err := CheckCountryProtocol(opt.Country, opt.Protocol); err != nil {
		return genetic.Result{}, EvalStats{}, err
	}
	if opt.TrialsPerEval == 0 {
		opt.TrialsPerEval = 10
	}
	cfg := genetic.Config{
		PopulationSize: opt.Population,
		Generations:    opt.Generations,
		TriggerValue:   "SA",
		// §4.1: for every protocol but FTP, the SYN+ACK is the only
		// packet a server sends before censorship, so triggers are
		// restricted to it; FTP servers speak first (the 220 greeting),
		// so there the trigger itself evolves.
		EvolveTrigger: opt.Protocol == "ftp",
		Rng:           rand.New(rand.NewSource(opt.Seed)),
	}
	if opt.Sequential {
		cfg.Fitness = FitnessFor(opt.Country, opt.Protocol, opt.TrialsPerEval, opt.Seed)
		return genetic.Evolve(cfg), EvalStats{}, nil
	}
	ev := NewEvaluator(opt.Country, opt.Protocol, opt.TrialsPerEval, opt.Seed)
	ev.Workers = opt.Workers
	ev.NoCache = opt.NoCache
	cfg.BatchFitness = ev.BatchFitness
	res := genetic.Evolve(cfg)
	return res, ev.Stats(), nil
}

// randomEvolvable builds a random GA-shaped strategy (exposed for the fuzz
// tests, which reuse the GA's generator through this seam).
func randomEvolvable(rng *rand.Rand) *core.Strategy {
	return genetic.RandomStrategy(rng, "SA")
}
