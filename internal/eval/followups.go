package eval

import (
	"fmt"
	"strings"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor/kazakh"
	"geneva/internal/core"
	"geneva/internal/packet"
	"geneva/internal/strategies"
	"geneva/internal/tcpstack"
)

// --- §3: client-side strategies do not generalize (E6) ---

// ClientSideGeneralization evaluates every server-side analog of the
// published client-side strategies and returns name -> success rate. The
// paper's finding: none of them evade (rates stay at the baseline).
func ClientSideGeneralization(trials int) map[string]float64 {
	out := make(map[string]float64)
	for i, s := range strategies.ClientSideAnalogs() {
		cfg := Config{
			Country:  CountryChina,
			Session:  SessionFor(CountryChina, "http", true),
			Strategy: s.Parse(),
			Seed:     int64(3000 + i),
		}
		out[s.Name] = Rate(cfg, trials)
	}
	return out
}

// ClientSideTCBTeardownWorks shows the §3 contrast: the same TCB-teardown
// packet that fails from the server evades when the *client* sends it (a
// TTL-limited RST after the handshake, the seminal client-side strategy).
func ClientSideTCBTeardownWorks(trials int) float64 {
	succ := 0
	for i := 0; i < trials; i++ {
		cfg := Config{
			Country: CountryChina,
			Session: SessionFor(CountryChina, "http", true),
			Seed:    int64(4000 + i),
			ClientHook: func(ep *tcpstack.Endpoint) {
				sentTeardown := false
				ep.Outbound = func(p *packet.Packet) []*packet.Packet {
					// After the handshake completes (first pure ACK),
					// insert a TTL-limited RST with the correct seq.
					if !sentTeardown && p.TCP.Flags == packet.FlagACK && len(p.TCP.Payload) == 0 {
						sentTeardown = true
						rst := p.Clone()
						rst.TCP.Flags = packet.FlagRST
						rst.IP.TTL = 8 // reaches the censor, not the server
						return []*packet.Packet{p, rst}
					}
					return []*packet.Packet{p}
				}
			},
		}
		if Run(cfg).Success {
			succ++
		}
	}
	return float64(succ) / float64(trials)
}

// --- §5.1 follow-ups (E7, E8, E9) ---

// seqOffsetHook shifts the sequence number of every client data packet by
// delta (the paper's desynchronization-confirmation instrumentation).
func seqOffsetHook(delta int32) func(*tcpstack.Endpoint) {
	return func(ep *tcpstack.Endpoint) {
		ep.Outbound = func(p *packet.Packet) []*packet.Packet {
			if len(p.TCP.Payload) > 0 {
				p.TCP.Seq += uint32(delta)
			}
			return []*packet.Packet{p}
		}
	}
}

// DesyncConfirmation reproduces the §5.1 experiment for Strategy 1: with
// the client's forbidden request decremented by 1, censorship returns
// roughly half the time (the resync-state entry rate); without the
// strategy, the decremented request is never censored.
func DesyncConfirmation(trials int) (withStrategy, withoutStrategy float64) {
	s1, _ := byNumber(1)
	censored := func(strategy *core.Strategy, seedBase int64) float64 {
		n := 0
		for i := 0; i < trials; i++ {
			cfg := Config{
				Country:    CountryChina,
				Session:    SessionFor(CountryChina, "http", true),
				Strategy:   strategy,
				Seed:       seedBase + int64(i),
				ClientHook: seqOffsetHook(-1),
			}
			if Run(cfg).CensorEvents > 0 {
				n++
			}
		}
		return float64(n) / float64(trials)
	}
	return censored(s1, 5000), censored(nil, 6000)
}

// dropInducedRstHook makes the client swallow the RSTs its own stack emits
// (the §5.1 instrumentation separating Strategy 5 from Strategy 6).
func dropInducedRstHook(ep *tcpstack.Endpoint) {
	ep.Outbound = func(p *packet.Packet) []*packet.Packet {
		if p.TCP.Flags == packet.FlagRST {
			return nil
		}
		return []*packet.Packet{p}
	}
}

// InducedRstCriticality reproduces E8: dropping the induced RST kills
// Strategy 5 (the GFW re-syncs on that RST; measured over FTP, where the
// strategy peaks) but leaves Strategy 6 intact (it re-syncs on the
// corrupted SYN+ACK instead; measured over HTTP, where rule 1 is the only
// active trigger, matching the paper's "equally effective" finding).
func InducedRstCriticality(trials int) (s5Normal, s5Dropped, s6Normal, s6Dropped float64) {
	rate := func(num int, proto string, drop bool, seed int64) float64 {
		s, _ := byNumber(num)
		cfg := Config{
			Country:  CountryChina,
			Session:  SessionFor(CountryChina, proto, true),
			Strategy: s,
			Seed:     seed,
		}
		if drop {
			cfg.ClientHook = dropInducedRstHook
		}
		return Rate(cfg, trials)
	}
	return rate(5, "ftp", false, 7000), rate(5, "ftp", true, 7100),
		rate(6, "http", false, 7200), rate(6, "http", true, 7300)
}

// matchRstSeqHook records the last RST the client emitted and rebases the
// client's data packets onto its sequence number (E9: confirming Strategy 7
// re-syncs on the induced RST).
func matchRstSeqHook(ep *tcpstack.Endpoint) {
	var rstSeq uint32
	var haveRst bool
	ep.Outbound = func(p *packet.Packet) []*packet.Packet {
		if p.TCP.Flags == packet.FlagRST {
			rstSeq = p.TCP.Seq
			haveRst = true
		} else if len(p.TCP.Payload) > 0 && haveRst {
			p.TCP.Seq = rstSeq
		}
		return []*packet.Packet{p}
	}
}

// Strategy7ResyncTarget reproduces E9: adjusting the client's sequence
// numbers to the induced RST's restores censorship under Strategy 7,
// proving the GFW synchronized on that packet.
func Strategy7ResyncTarget(trials int) (censoredRate float64) {
	s7, _ := byNumber(7)
	n := 0
	for i := 0; i < trials; i++ {
		cfg := Config{
			Country:    CountryChina,
			Session:    SessionFor(CountryChina, "http", true),
			Strategy:   s7,
			Seed:       8000 + int64(i),
			ClientHook: matchRstSeqHook,
		}
		if Run(cfg).CensorEvents > 0 {
			n++
		}
	}
	return float64(n) / float64(trials)
}

// --- §4.2 residual censorship (E10) ---

// ResidualCensorship measures, per protocol, whether a benign follow-up
// connection right after a censorship event is torn down, and whether it
// recovers after the window passes. The paper: HTTP has ~90 s of residual
// censorship; DNS, FTP, HTTPS, and SMTP have none.
type ResidualResult struct {
	Protocol         string
	ImmediateBlocked bool
	AfterWindowOK    bool
}

// ResidualCensorshipExperiment runs E10 for every protocol.
func ResidualCensorshipExperiment() []ResidualResult {
	var out []ResidualResult
	for _, proto := range ChinaProtocols {
		// A rig whose censor state persists across connections.
		cfg := Config{
			Country: CountryChina,
			Session: SessionFor(CountryChina, proto, true),
			Seed:    int64(9000 + protoSeed(proto)),
		}
		rig := NewRig(cfg)
		// Trip the censor (retry until it fires; the baseline miss rate
		// makes a single shot flaky).
		for i := 0; i < 10 && rig.CensorEvents() == 0; i++ {
			rig.Attempt()
		}
		if rig.CensorEvents() == 0 {
			out = append(out, ResidualResult{Protocol: proto})
			continue
		}
		// Immediately retry with *benign* content on the same server.
		benign := SessionFor(CountryChina, proto, false)
		rig.Session = benign
		rig.Server.NewServerApp = benign.ServerFactory()
		app := rig.Attempt()
		immediateBlocked := !app.Succeeded()
		// Wait out the residual window and retry.
		rig.Net.Clock.Advance(95 * time.Second)
		app2 := rig.Attempt()
		out = append(out, ResidualResult{
			Protocol:         proto,
			ImmediateBlocked: immediateBlocked,
			AfterWindowOK:    app2.Succeeded(),
		})
	}
	return out
}

// --- §5.3 Kazakhstan sweeps (E11, E12, E13) ---

// kzRate evaluates a raw DSL strategy against Kazakhstan HTTP.
func kzRate(dsl string, trials int, seed int64) float64 {
	cfg := Config{
		Country:  CountryKazakhstan,
		Session:  SessionFor(CountryKazakhstan, "http", true),
		Strategy: core.MustParse(dsl),
		Seed:     seed,
	}
	return Rate(cfg, trials)
}

// TripleLoadSweep reproduces E11: Strategy 9 needs >= 3 back-to-back
// payload-bearing SYN+ACKs; payload size does not matter; an empty SYN+ACK
// in the middle breaks it.
type TripleLoadSweep struct {
	OneLoad, TwoLoads, ThreeLoads, FourLoads float64
	TwoLoadsPlusEmptyBetween                 float64
	OneByte, Large                           float64
}

// KazakhTripleLoadSweep runs the sweep.
func KazakhTripleLoadSweep(trials int) TripleLoadSweep {
	return TripleLoadSweep{
		OneLoad:    kzRate(`[TCP:flags:SA]-tamper{TCP:load:corrupt}-| \/ `, trials, 100),
		TwoLoads:   kzRate(`[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate,)-| \/ `, trials, 101),
		ThreeLoads: kzRate(`[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,),)-| \/ `, trials, 102),
		FourLoads:  kzRate(`[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate(duplicate,),),)-| \/ `, trials, 103),
		// load, empty, load: the empty SYN+ACK resets the censor's run.
		TwoLoadsPlusEmptyBetween: kzRate(`[TCP:flags:SA]-duplicate(tamper{TCP:load:corrupt},duplicate(,tamper{TCP:load:corrupt}))-| \/ `, trials, 104),
		OneByte:                  kzRate(`[TCP:flags:SA]-tamper{TCP:load:replace:x}(duplicate(duplicate,),)-| \/ `, trials, 105),
		Large:                    kzRate(`[TCP:flags:SA]-tamper{TCP:load:replace:`+strings.Repeat("A", 400)+`}(duplicate(duplicate,),)-| \/ `, trials, 106),
	}
}

// DoubleGetSweep reproduces E12's minimality findings.
type DoubleGetSweep struct {
	FullPrefix float64 // "GET / HTTP1." x2: works
	Truncated  float64 // "GET / HTTP1" (no dot) x2: fails
	SingleGet  float64 // one GET only: fails
	LongerPath float64 // longer path, still well-formed: works
}

// KazakhDoubleGetSweep runs the sweep.
func KazakhDoubleGetSweep(trials int) DoubleGetSweep {
	return DoubleGetSweep{
		FullPrefix: kzRate(`[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1.}(duplicate,)-| \/ `, trials, 110),
		Truncated:  kzRate(`[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1}(duplicate,)-| \/ `, trials, 111),
		SingleGet:  kzRate(`[TCP:flags:SA]-duplicate(tamper{TCP:load:replace:GET / HTTP1.},)-| \/ `, trials, 112),
		LongerPath: kzRate(`[TCP:flags:SA]-tamper{TCP:load:replace:GET /index.html HTTP/1.1}(duplicate,)-| \/ `, trials, 113),
	}
}

// KazakhFlagSweep reproduces E13: the Null Flags strategy works for any
// flag combination avoiding FIN, RST, SYN, and ACK. It returns
// flags-string -> success rate.
func KazakhFlagSweep(trials int) map[string]float64 {
	out := make(map[string]float64)
	for i, flags := range []string{"", "P", "U", "PU", "S", "A", "R", "F", "PA"} {
		dsl := fmt.Sprintf(`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:%s},)-| \/ `, flags)
		key := flags
		if key == "" {
			key = "(none)"
		}
		out[key] = kzRate(dsl, trials, int64(120+i))
	}
	return out
}

// KazakhProbing reproduces the §5.3 probing observations using the model's
// counters: two forbidden GETs injected during the handshake elicit a
// censor response; a forbidden GET followed by a benign one does not (the
// censor processes the *second* request).
func KazakhProbing() (twoForbidden, forbiddenThenBenign bool) {
	probe := func(first, second string) bool {
		cfg := Config{
			Country: CountryKazakhstan,
			Session: SessionFor(CountryKazakhstan, "http", true),
			Strategy: core.MustParse(fmt.Sprintf(
				`[TCP:flags:SA]-duplicate(tamper{TCP:load:replace:%s},duplicate(tamper{TCP:load:replace:%s},))-| \/ `,
				first, second)),
			Seed: 130,
		}
		res := Run(cfg)
		kz, ok := res.Censor.(*kazakh.Kazakh)
		return ok && kz.ProbeResponses > 0
	}
	const forbidden = "GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n"
	const benign = "GET / HTTP/1.1\r\nHost: allowed.example\r\n\r\n"
	return probe(forbidden, forbidden), probe(forbidden, benign)
}

// --- §5.2 port sensitivity (E15) and statelessness (E17) ---

// PortSensitivity reports, per country, whether hosting the HTTP server on
// a non-default port (8080) defeats censorship with no strategy at all.
// The paper: yes for India, Iran, and Kazakhstan; no for China.
func PortSensitivity() map[string]bool {
	out := make(map[string]bool)
	for _, country := range CensoredCountries() {
		proto := SweepProtocol(country)
		session := SessionFor(country, proto, true)
		session.Port = 8080
		cfg := Config{Country: country, Session: session, Tries: TriesFor(proto), Seed: 140}
		// "Defeats censorship" = the forbidden request goes through.
		rate := Rate(cfg, 20)
		out[country] = rate > 0.9
	}
	return out
}

// Statelessness reproduces E17: a forbidden request fired with no prior
// handshake still triggers India's and Iran's censors (they track no
// state), but not China's (the GFW requires a TCB from a SYN).
func Statelessness() map[string]bool {
	out := make(map[string]bool)
	for _, country := range CensoredCountries() {
		proto := SweepProtocol(country)
		cfg := Config{
			Country: country,
			Session: SessionFor(country, proto, true),
			Seed:    150,
		}
		rig := NewRig(cfg)
		// A bare forbidden trigger on the censor's sweep protocol, no
		// handshake (HTTPS-only censors like Jio get a ClientHello).
		var port uint16
		var payload []byte
		switch proto {
		case "https":
			port, payload = 443, apps.EncodeClientHello("www.wikipedia.org")
		case "dns":
			port, payload = 53, apps.EncodeDNSQuery("www.wikipedia.org")
		default:
			port, payload = 80, []byte("GET / HTTP/1.1\r\nHost: blocked.example\r\nAccept: */*\r\n\r\n")
		}
		pkt := packet.Get(ClientAddr, ServerAddr, 45000, port)
		pkt.TCP.Flags = packet.FlagPSH | packet.FlagACK
		pkt.TCP.Seq = 1000
		pkt.TCP.Payload = payload
		rig.Net.Send(rig.Client, pkt)
		rig.Net.Run(0)
		out[country] = rig.CensorEvents() > 0
	}
	return out
}
