package eval

import (
	"math/rand"
	"sync"

	"geneva/internal/core"
	"geneva/internal/selector"
)

// SeedArmBase offsets each portfolio arm's engine rng within a cell's seed
// space: arm a draws from cellSeed + SeedArmBase + a. The base sits far
// above every other per-cell stream (server/router/censor/impairments at
// 1–4, selection at 5, client slots at 10..260), so arm streams can never
// collide with them. Recorded in the fleet manifest when selection is on.
const SeedArmBase = 1000

// DefaultPortfolio returns the distinct §8 deployment strategies in
// registry order — Strategy 1 (China), Strategy 8 (India/Iran/
// Turkmenistan), Strategy 11 (Kazakhstan) with today's registry. It is the
// portfolio a Selection-enabled run falls back to when none is given: the
// strategies the paper would actually deploy, now raced against each other
// per country instead of pinned to one.
func DefaultPortfolio() selector.Portfolio {
	var strats []*core.Strategy
	seen := map[string]bool{}
	for _, dr := range deployTable() {
		s := dr.strat.String()
		if seen[s] {
			continue
		}
		seen[s] = true
		strats = append(strats, dr.strat)
	}
	return selector.FromStrategies(strats)
}

// PortfolioLease is a pooled set of per-arm engines for one portfolio (see
// AcquirePortfolioEngines). Engines[a] runs the portfolio's arm a; the
// fleet pins one of them to a client address per connection attempt.
type PortfolioLease struct {
	Engines []*core.Engine
	rngs    []*rand.Rand
	hash    string
}

// portfolioPools pools engine sets per portfolio identity (hash). Engine
// construction compiles every rule; at fleet scale each cell would
// otherwise pay that for every arm. Keyed pooling keeps reuse correct when
// different portfolios run in one process (tests, sequential workloads).
var portfolioPools sync.Map // hash -> *sync.Pool

// AcquirePortfolioEngines leases one engine per portfolio arm, rng-seeded
// at seed + SeedArmBase + arm. Reseeding a pooled engine's rng recreates
// the exact stream of a fresh one (engines keep no other per-run state —
// flow pinning lives in the router), so a leased set is indistinguishable
// from newly built engines. Hand it back with ReleasePortfolioEngines.
func AcquirePortfolioEngines(p selector.Portfolio, seed int64) *PortfolioLease {
	hash := p.Hash()
	poolAny, _ := portfolioPools.LoadOrStore(hash, &sync.Pool{})
	pool := poolAny.(*sync.Pool)
	if v := pool.Get(); v != nil {
		l := v.(*PortfolioLease)
		for a := range l.rngs {
			l.rngs[a].Seed(seed + SeedArmBase + int64(a))
		}
		return l
	}
	l := &PortfolioLease{
		Engines: make([]*core.Engine, p.Len()),
		rngs:    make([]*rand.Rand, p.Len()),
		hash:    hash,
	}
	for a := 0; a < p.Len(); a++ {
		l.rngs[a] = rand.New(rand.NewSource(seed + SeedArmBase + int64(a)))
		l.Engines[a] = core.NewEngine(p.Strategy(a), l.rngs[a])
	}
	return l
}

// ReleasePortfolioEngines returns a lease to its portfolio's pool. The
// caller must not use the engines afterwards.
func ReleasePortfolioEngines(l *PortfolioLease) {
	if l == nil {
		return
	}
	poolAny, _ := portfolioPools.LoadOrStore(l.hash, &sync.Pool{})
	poolAny.(*sync.Pool).Put(l)
}
