package eval

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"geneva/internal/core"
)

// workerCap caps the width of every worker pool in this package; 0 means
// "one worker per CPU" (GOMAXPROCS).
var workerCap atomic.Int32

// SetWorkers sets the process-wide default worker-pool width, used whenever
// a per-call knob (Config.Workers, EvolveOptions.Workers, fleet
// Workload.Workers) is left zero. 0 (or negative) restores the default of
// one worker per CPU. Results are identical at any width: every trial and
// every fitness sample derives its randomness from seeds alone, never from
// scheduling order. New code should prefer the per-call fields; this global
// survives as the seam behind the deprecated geneva.SetWorkers shim and the
// cmd/ -workers flags.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCap.Store(int32(n))
}

// Workers returns the effective worker-pool width.
func Workers() int {
	if v := workerCap.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// EvalStats counts an Evaluator's fitness-cache traffic. Counts depend only
// on the sequence of BatchFitness/Fitness calls, never on worker scheduling,
// so they are as reproducible as the fitness values themselves.
type EvalStats struct {
	// Hits counts strategies answered from the cross-call cache.
	Hits int
	// Misses counts fitness computations actually run.
	Misses int
	// Dedups counts strategies that shared a batch-mate's computation:
	// canonical duplicates collapsed within a single BatchFitness call.
	Dedups int
	// Entries is the number of distinct canonical strategies cached.
	Entries int
}

// Lookups is the total number of strategies scored.
func (s EvalStats) Lookups() int { return s.Hits + s.Misses + s.Dedups }

// HitRate is the fraction of lookups that avoided a fresh computation
// (cache hits plus in-batch dedups), in [0, 1].
func (s EvalStats) HitRate() float64 {
	if s.Lookups() == 0 {
		return 0
	}
	return float64(s.Hits+s.Dedups) / float64(s.Lookups())
}

// String renders the one-line stats summary the commands print.
func (s EvalStats) String() string {
	return fmt.Sprintf("fitness cache: %d lookups, %d hits, %d in-batch dedups, %d computed (%.0f%% avoided), %d entries",
		s.Lookups(), s.Hits, s.Dedups, s.Misses, 100*s.HitRate(), s.Entries)
}

// Evaluator scores strategies for one training configuration — a fixed
// (country, protocol, trials-per-sample, seed base) — with a memoizing
// fitness cache and a bounded worker pool over individuals. Because a
// strategy's fitness here is a pure function of its canonical text and the
// seed base (every sample reuses the same seed schedule), cached and
// parallel evaluation return bit-identical values to the sequential path;
// the determinism suite in engine_test.go enforces exactly that.
//
// Its BatchFitness method satisfies genetic.Config.BatchFitness. An
// Evaluator is safe for concurrent use.
type Evaluator struct {
	// Workers bounds the population pool (0 = the package default,
	// Workers()). Set before first use.
	Workers int
	// NoCache disables cross-call memoization — every call re-measures,
	// though canonical duplicates within one batch still share a single
	// computation. Fitness is pure, so results are identical either way;
	// this is the knob the determinism suite turns to prove it.
	NoCache bool

	country  string
	protocol string
	trials   int
	seedBase int64

	mu    sync.Mutex
	cache map[string]float64
	stats EvalStats
}

// NewEvaluator builds an evaluator for one training configuration: fitness
// is the success rate over trials connections through country's censor,
// sampled from the seed schedule rooted at seedBase (the exact schedule
// FitnessFor uses).
func NewEvaluator(country, protocol string, trials int, seedBase int64) *Evaluator {
	return &Evaluator{
		country:  country,
		protocol: protocol,
		trials:   trials,
		seedBase: seedBase,
		cache:    make(map[string]float64),
	}
}

// key is the cache key: the strategy's canonical text, so two strategies
// that print identically share one entry. The evaluation context (country,
// protocol, trials, seed base) is fixed per Evaluator and the cache is
// per-Evaluator, so the text alone cannot collide across configurations —
// and because String() is memoized, keying a lookup allocates nothing.
func (e *Evaluator) key(s *core.Strategy) string {
	return s.String()
}

// Fitness scores one strategy (the genetic.Config.Fitness shape), through
// the same cache as BatchFitness.
func (e *Evaluator) Fitness(s *core.Strategy) float64 {
	return e.BatchFitness([]*core.Strategy{s})[0]
}

// BatchFitness scores a whole population: the genetic.Config.BatchFitness
// seam. The batch is first collapsed to unique, uncached canonical
// strategies (in first-appearance order, so the work list is deterministic);
// only those are measured, on a pool of up to Workers goroutines.
func (e *Evaluator) BatchFitness(batch []*core.Strategy) []float64 {
	keys := make([]string, len(batch))
	resolved := make(map[string]float64, len(batch))
	pending := make(map[string]bool)
	var todo []int // batch index of each unique uncached strategy

	e.mu.Lock()
	for i, s := range batch {
		k := e.key(s)
		keys[i] = k
		if _, ok := resolved[k]; ok {
			e.stats.Hits++
			mCacheHits.Inc()
			continue
		}
		if !e.NoCache {
			if f, ok := e.cache[k]; ok {
				resolved[k] = f
				e.stats.Hits++
				mCacheHits.Inc()
				continue
			}
		}
		if pending[k] {
			e.stats.Dedups++
			mCacheDedups.Inc()
			continue
		}
		pending[k] = true
		todo = append(todo, i)
		e.stats.Misses++
		mCacheMisses.Inc()
	}
	e.mu.Unlock()

	results := make([]float64, len(todo))
	workers := e.Workers
	if workers <= 0 {
		workers = Workers()
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		// The population pool is idle, so each sample may fan its trials
		// out on the per-trial pool in trial.go.
		for j, i := range todo {
			results[j] = e.sample(batch[i], true)
		}
	} else {
		// Population-level parallelism: individuals run concurrently and
		// each samples its trials sequentially, so the two pool layers
		// never oversubscribe the CPUs.
		RunParallel(workers, len(todo), func(j int) {
			results[j] = e.sample(batch[todo[j]], false)
		})
	}

	e.mu.Lock()
	for j, i := range todo {
		resolved[keys[i]] = results[j]
		if !e.NoCache {
			e.cache[keys[i]] = results[j]
		}
	}
	e.stats.Entries = len(e.cache)
	mCacheEntries.SetMax(uint64(len(e.cache)))
	e.mu.Unlock()

	out := make([]float64, len(batch))
	for i, k := range keys {
		out[i] = resolved[k]
	}
	return out
}

// sample measures a strategy's raw success rate — the pure function the
// cache memoizes. trialPool selects whether the per-trial worker pool may
// be used; the population pool passes false for itself to avoid
// oversubscription.
func (e *Evaluator) sample(s *core.Strategy, trialPool bool) float64 {
	cfg := Config{
		Country:  e.country,
		Session:  SessionFor(e.country, e.protocol, true),
		Strategy: s,
		Tries:    TriesFor(e.protocol),
		Seed:     e.seedBase,
	}
	if trialPool {
		return Rate(cfg, e.trials)
	}
	return rateSequential(cfg, e.trials).Rate()
}

// Stats returns a snapshot of the cache counters.
func (e *Evaluator) Stats() EvalStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
