package eval

import (
	"fmt"
	"strings"

	"geneva/internal/strategies"
	"geneva/internal/tcpstack"
)

// CompatCell is one (strategy, client OS) outcome on the §7 private network
// — no censor; the question is whether the strategy breaks the client.
type CompatCell struct {
	Strategy string
	OS       string
	Works    bool
}

// ClientCompatibility reproduces §7: every strategy against every client
// personality, over HTTP on a censor-free network, plus the three
// checksum-insertion variants that repair Strategies 5, 9 and 10 for
// Windows and macOS.
func ClientCompatibility() []CompatCell {
	var cells []CompatCell
	var all []strategies.Strategy
	all = append(all, strategies.All()...)
	for _, s := range strategies.All() {
		if v, ok := strategies.InsertionVariant(s); ok {
			all = append(all, v)
		}
	}
	for _, s := range all {
		for _, os := range tcpstack.AllPersonalities {
			cfg := Config{
				Country:  CountryNone,
				Session:  SessionFor(CountryNone, "http", true),
				Strategy: s.Parse(),
				ClientOS: os,
				Seed:     int64(len(cells)),
			}
			cells = append(cells, CompatCell{
				Strategy: s.Name,
				OS:       os.Name,
				Works:    Run(cfg).Success,
			})
		}
	}
	return cells
}

// FormatCompat renders the §7 matrix, one row per strategy.
func FormatCompat(cells []CompatCell) string {
	byStrategy := map[string][]CompatCell{}
	var order []string
	for _, c := range cells {
		if _, seen := byStrategy[c.Strategy]; !seen {
			order = append(order, c.Strategy)
		}
		byStrategy[c.Strategy] = append(byStrategy[c.Strategy], c)
	}
	var b strings.Builder
	b.WriteString("Client compatibility (§7): ✓ = connection works, ✗ = broken client\n\n")
	for _, name := range order {
		var fails []string
		for _, c := range byStrategy[name] {
			if !c.Works {
				fails = append(fails, c.OS)
			}
		}
		if len(fails) == 0 {
			fmt.Fprintf(&b, "%-48s all %d client OSes ✓\n", name, len(byStrategy[name]))
		} else {
			fmt.Fprintf(&b, "%-48s fails on: %s\n", name, strings.Join(fails, ", "))
		}
	}
	return b.String()
}
