package eval

import (
	"math"
	"testing"
)

func TestDNSRetryCurveAmplifies(t *testing.T) {
	curve := DNSRetryCurve(1, 5, 150)
	// Monotonically non-decreasing (allowing sampling noise).
	for k := 2; k <= 5; k++ {
		if curve[k] < curve[k-1]-0.08 {
			t.Errorf("retry curve dipped: %d tries %.2f < %d tries %.2f",
				k, curve[k], k-1, curve[k-1])
		}
	}
	// The single-try rate is the resync entry rate (~0.52); three tries
	// should land near the paper's 89%.
	if curve[1] < 0.35 || curve[1] > 0.7 {
		t.Errorf("1 try = %.2f, want ~0.52", curve[1])
	}
	if curve[3] < 0.75 {
		t.Errorf("3 tries = %.2f, want ~0.89", curve[3])
	}
	// The amplification should roughly follow 1-(1-p)^k.
	p := curve[1]
	for k := 2; k <= 5; k++ {
		want := 1 - math.Pow(1-p, float64(k))
		if math.Abs(curve[k]-want) > 0.15 {
			t.Errorf("%d tries = %.2f, independent-retry model predicts %.2f", k, curve[k], want)
		}
	}
}

func TestOrderSensitivity(t *testing.T) {
	normal, reversed := OrderSensitivity(120)
	if normal < 0.85 {
		t.Errorf("Strategy 5 normal order = %.2f, want ~0.97", normal)
	}
	if reversed > 0.25 {
		t.Errorf("Strategy 5 reversed order = %.2f; the paper found it ineffective", reversed)
	}
}
