package eval

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// randomPacket fabricates an arbitrary (often nonsensical) TCP packet
// between the canonical endpoints, in a random direction.
func randomPacket(rng *rand.Rand) (*packet.Packet, netsim.Direction) {
	dir := netsim.Direction(rng.Intn(2))
	var p *packet.Packet
	if dir == netsim.ToServer {
		p = packet.New(ClientAddr, ServerAddr, uint16(rng.Intn(65536)), uint16(rng.Intn(1024)))
	} else {
		p = packet.New(ServerAddr, ClientAddr, uint16(rng.Intn(1024)), uint16(rng.Intn(65536)))
	}
	p.TCP.Flags = uint8(rng.Intn(64))
	p.TCP.Seq = rng.Uint32()
	p.TCP.Ack = rng.Uint32()
	p.TCP.Window = uint16(rng.Intn(65536))
	if rng.Intn(2) == 0 {
		payload := make([]byte, rng.Intn(120))
		rng.Read(payload)
		p.TCP.Payload = payload
	}
	if rng.Intn(8) == 0 {
		// Occasionally payloads that look like protocol fragments.
		frags := []string{
			"GET /", "GET / HTTP/1.1\r\n", "Host: blo", "RETR ultra",
			"RCPT TO:<", "\x16\x03\x01", "USER anon", "220 hi\r\n",
		}
		p.TCP.Payload = []byte(frags[rng.Intn(len(frags))])
	}
	return p, dir
}

// TestCensorsNeverPanicOnArbitraryTraffic hammers every registered censor
// model with random packet streams: no panics, and censors the registry
// marks on-path (not InPath) never drop.
func TestCensorsNeverPanicOnArbitraryTraffic(t *testing.T) {
	for _, def := range Registry() {
		def := def
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			c := NewCensor(def.Country, censor.Default(), rand.New(rand.NewSource(seed+1)))
			for i := 0; i < 80; i++ {
				p, dir := randomPacket(rng)
				v := c.Process(p, dir, time.Duration(i)*time.Millisecond)
				if v.Drop && !def.InPath {
					return false // on-path censors cannot drop
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", def.Country, err)
		}
	}
}

// TestCensorsFailOpenOnGarbageThenBenign verifies §6's fail-open property
// end to end: after arbitrary garbage traffic, a benign connection through
// the same censor still succeeds.
func TestCensorsFailOpenOnGarbageThenBenign(t *testing.T) {
	for _, country := range CensoredCountries() {
		cfg := Config{
			Country: country,
			Session: SessionFor(country, "http", false), // benign
			Seed:    31,
		}
		rig := NewRig(cfg)
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 100; i++ {
			p, dir := randomPacket(rng)
			// Garbage uses different ports than the benign flow will.
			if p.TCP.SrcPort > 32000 {
				p.TCP.SrcPort -= 10000
			}
			rig.Net.Inject(p, dir)
		}
		rig.Net.Run(0)
		app := rig.Attempt()
		if !app.Succeeded() {
			t.Errorf("%s: benign connection failed after garbage traffic (censor failed closed?)", country)
		}
	}
}

// TestRandomStrategiesNeverBreakBenignDelivery applies random evolved
// strategies to a censor-free benign connection: whatever the strategy does
// to the SYN+ACK, it must never corrupt data that does arrive. (It may
// break the connection — drop is a legal action — but the Script must never
// report corrupted-yet-complete.)
func TestRandomStrategiesNeverBreakBenignDelivery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomEvolvable(rng)
		cfg := Config{
			Country:  CountryNone,
			Session:  SessionFor(CountryNone, "http", false),
			Strategy: s,
			Seed:     seed,
		}
		res := Run(cfg)
		// Either it succeeded, or it plainly failed; a "success" with
		// wrong bytes is impossible by the Script's definition, so the
		// property is simply: no panic, and deterministic classification.
		_ = res
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestClientAddressOverride pins the Config.ClientAddress plumbing.
func TestClientAddressOverride(t *testing.T) {
	addr := netip.MustParseAddr("10.9.8.7")
	cfg := Config{
		Country:       CountryNone,
		Session:       SessionFor(CountryNone, "http", true),
		ClientAddress: addr,
		Seed:          1,
	}
	rig := NewRig(cfg)
	if rig.Client.Addr() != addr {
		t.Errorf("client addr = %s, want %s", rig.Client.Addr(), addr)
	}
}
