// Package profiling wires the standard runtime/pprof collectors into the
// command-line tools, so a training run or table regeneration can be
// profiled with the stock toolchain:
//
//	evolve -cpuprofile cpu.out -memprofile mem.out ...
//	go tool pprof cpu.out
//
// See EXPERIMENTS.md ("Profiling the trial hot path") for the workflow.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to path and returns the function that stops it
// and closes the file. An empty path is a no-op (the flags default to off).
// Errors are fatal: these are operator-requested diagnostics, and silently
// producing no profile is worse than exiting.
func Start(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// WriteHeap dumps the allocation profile ("allocs", which keeps the
// since-start allocation counts that the hot-path work targets, not just
// live heap) to path. An empty path is a no-op.
func WriteHeap(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC() // flush recent frees so the numbers are settled
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		os.Exit(1)
	}
}
