package netsim

import "time"

// Clock is a virtual clock. The zero value starts at time zero; the network
// advances it as packets traverse links, and harnesses advance it manually
// to model idle periods (e.g. waiting out residual censorship).
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration is
// a no-op: virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// advanceTo moves the clock to t if t is in the future.
func (c *Clock) advanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}
