package netsim

import (
	"time"

	"geneva/internal/packet"
)

// Recorder observes packet events. The Network records an event for every
// send, impairment, censor decision, and delivery — but only when someone is
// listening: with no Trace and no Recorder attached (the default for
// fitness-only trials) the simulator skips event capture entirely, including
// the note-string assembly and packet clones that capture implies.
//
// A Recorder must copy anything it keeps: the *packet.Packet it receives is
// live simulator state that will be mutated (TTL decrements, tampering) and
// possibly recycled after the callback returns. Trace and RingRecorder both
// Clone at record time, which is what makes packet recycling safe to combine
// with tracing.
type Recorder interface {
	Record(pkt *packet.Packet, dir Direction, note string, at time.Duration)
}

// Record implements Recorder by appending a cloned entry, so a Trace can be
// attached either through Network.Trace (the classic field) or as a plain
// Recorder.
func (t *Trace) Record(pkt *packet.Packet, dir Direction, note string, at time.Duration) {
	t.add(pkt, dir, note, at)
}

// RingRecorder keeps the last N events in a fixed ring: bounded memory for
// long-running sessions that still want a recent-history trace (crash
// forensics, live dashboards) without a full Trace's unbounded growth.
type RingRecorder struct {
	entries []TraceEntry
	next    int
	full    bool
}

// NewRingRecorder builds a ring holding the most recent n events (n >= 1).
func NewRingRecorder(n int) *RingRecorder {
	if n < 1 {
		n = 1
	}
	return &RingRecorder{entries: make([]TraceEntry, n)}
}

// Record implements Recorder. The packet is cloned, reusing the slot's
// previous clone buffers once the ring has wrapped.
func (r *RingRecorder) Record(pkt *packet.Packet, dir Direction, note string, at time.Duration) {
	slot := &r.entries[r.next]
	if slot.Pkt == nil {
		slot.Pkt = pkt.Clone()
	} else {
		slot.Pkt.CopyFrom(pkt)
	}
	slot.Time = at
	slot.Dir = dir
	slot.Note = note
	r.next++
	if r.next == len(r.entries) {
		r.next = 0
		r.full = true
	}
}

// Entries returns the recorded events, oldest first. The returned slice is
// freshly assembled; its packets are the ring's clones and remain valid until
// the ring wraps over them.
func (r *RingRecorder) Entries() []TraceEntry {
	if !r.full {
		return append([]TraceEntry(nil), r.entries[:r.next]...)
	}
	out := make([]TraceEntry, 0, len(r.entries))
	out = append(out, r.entries[r.next:]...)
	return append(out, r.entries[:r.next]...)
}
