package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"geneva/internal/packet"
)

// Direction of a packet relative to the connection's client.
type Direction int

// Directions.
const (
	ToServer Direction = iota // client -> server ("outbound" from the censor's client)
	ToClient                  // server -> client
)

func (d Direction) String() string {
	if d == ToServer {
		return "->server"
	}
	return "->client"
}

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction {
	if d == ToServer {
		return ToClient
	}
	return ToServer
}

// Host is an endpoint attached to the network. Receive is called for every
// packet delivered to the host; the host responds by calling Network.Send.
type Host interface {
	Addr() netip.Addr
	Receive(n *Network, pkt *packet.Packet)
}

// Verdict is a middlebox's decision about one observed packet.
type Verdict struct {
	// Drop suppresses forwarding (in-path censors only; on-path censors
	// physically cannot drop, §2.1).
	Drop bool
	// InjectToClient / InjectToServer are packets the box fabricates.
	// They are delivered without further middlebox processing.
	InjectToClient []*packet.Packet
	InjectToServer []*packet.Packet
	// Note annotates the trace (e.g. "GFW-HTTP: censored").
	Note string
}

// Middlebox observes packets at the censor hop.
type Middlebox interface {
	Name() string
	// Process sees every packet crossing the censor hop, in order, with
	// the censor-relative direction and the current virtual time.
	Process(pkt *packet.Packet, dir Direction, now time.Duration) Verdict
}

// Network joins a client and a server across a path of hops with
// middleboxes attached HopsToCensor hops away from the client.
type Network struct {
	Clock *Clock
	// HopsToCensor is the number of routers between the client and the
	// censor; HopsBeyondCensor between the censor and the server.
	HopsToCensor     int
	HopsBeyondCensor int
	// LinkDelay is the per-hop one-way latency.
	LinkDelay time.Duration
	// Trace, if non-nil, records every packet event for waterfalls.
	Trace *Trace
	// Recorder, if non-nil, additionally observes every packet event (a
	// Trace is itself a Recorder; a RingRecorder bounds memory). With both
	// Trace and Recorder nil the network skips event capture entirely —
	// no note assembly, no clones — which is the fitness-trial default.
	Recorder Recorder
	// RecyclePackets returns packets to the shared pool once they reach a
	// terminal point (delivered, dropped, lost, expired, unroutable).
	// Opt-in: only enable when every attached Host, Middlebox, and hook
	// copies what it keeps rather than retaining delivered *Packet
	// pointers (true for the eval rigs, which set this). Tracing stays
	// safe either way because recorders clone at record time.
	RecyclePackets bool

	client, server Host
	clients        map[netip.Addr]Host
	boxes          []Middlebox

	impair    Impairments
	impairRNG *rand.Rand

	queue eventHeap
	seq   int
	steps int
}

// New builds a network with sensible defaults: 5 hops to the censor,
// 5 beyond it, 1 ms per hop.
func New(client, server Host, boxes ...Middlebox) *Network {
	n := &Network{
		Clock:            &Clock{},
		HopsToCensor:     5,
		HopsBeyondCensor: 5,
		LinkDelay:        time.Millisecond,
		client:           client,
		server:           server,
		clients:          map[netip.Addr]Host{client.Addr(): client},
		boxes:            boxes,
		// A handshake plus a short data exchange keeps only a handful of
		// events in flight; seeding capacity for 8 makes the steady state
		// allocation-free instead of growing one event at a time.
		queue: eventHeap{ev: make([]event, 0, 8)},
	}
	return n
}

// NewMulti builds a network with one server and several clients (all on the
// censored side of the middleboxes). Client-bound packets route by
// destination address.
func NewMulti(server Host, clients []Host, boxes ...Middlebox) *Network {
	if len(clients) == 0 {
		panic("netsim: NewMulti requires at least one client")
	}
	n := New(clients[0], server, boxes...)
	for _, c := range clients {
		n.clients[c.Addr()] = c
	}
	return n
}

// Client returns the attached client host.
func (n *Network) Client() Host { return n.client }

// Server returns the attached server host.
func (n *Network) Server() Host { return n.server }

// Boxes returns the attached middleboxes.
func (n *Network) Boxes() []Middlebox { return n.boxes }

type event struct {
	at         time.Duration
	seq        int
	pkt        *packet.Packet
	dir        Direction
	fromCensor bool   // injected by a box: skip middlebox processing
	fire       func() // a timer, not a packet (pkt is nil)
}

// Send transmits pkt from the given host toward the other endpoint. Hosts
// call this from Receive; harnesses call it to start a connection.
func (n *Network) Send(from Host, pkt *packet.Packet) {
	dir := ToServer
	if from == n.server {
		dir = ToClient
	}
	n.enqueue(pkt, dir, false)
}

// Inject delivers a fabricated packet toward one endpoint without middlebox
// processing (used by the harness for instrumented client behaviour).
func (n *Network) Inject(pkt *packet.Packet, dir Direction) {
	n.enqueue(pkt, dir, true)
}

func (n *Network) enqueue(pkt *packet.Packet, dir Direction, fromCensor bool) {
	prof := n.impair.profile(dir)
	if !prof.enabled() {
		n.push(pkt, dir, fromCensor, n.LinkDelay)
		return
	}
	// Impairment draws happen in a fixed order (loss, primary-copy delay,
	// duplication, duplicate-copy delay) so a seeded rng always produces
	// the same schedule.
	now := n.Clock.Now()
	if n.impairRNG.Float64() < prof.Loss {
		mLost.Inc()
		n.trace(pkt, dir, "lost (impairment)", now)
		n.recycle(pkt)
		return
	}
	n.push(pkt, dir, fromCensor, n.LinkDelay+n.impairExtra(prof))
	if n.impairRNG.Float64() < prof.Duplicate {
		mDuplicated.Inc()
		n.trace(pkt, dir, "duplicated (impairment)", now)
		n.push(pkt.ClonePooled(), dir, fromCensor, n.LinkDelay+n.impairExtra(prof))
	}
}

func (n *Network) push(pkt *packet.Packet, dir Direction, fromCensor bool, delay time.Duration) {
	n.seq++
	n.queue.push(event{
		at:         n.Clock.Now() + delay,
		seq:        n.seq,
		pkt:        pkt,
		dir:        dir,
		fromCensor: fromCensor,
	})
}

// After schedules fn to run at virtual time Now()+d, interleaved with
// packet deliveries in timestamp order. Endpoint retransmission timers are
// built on this; a pending timer keeps the network non-quiet, so timer
// users must bound their rearming (the tcpstack retransmit machinery caps
// its retries for exactly this reason).
func (n *Network) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.seq++
	n.queue.push(event{at: n.Clock.Now() + d, seq: n.seq, fire: fn})
}

// Run processes queued packets until the network is quiet or limit events
// have been handled. It returns the number of events processed. A limit of
// 0 means a generous default (100k), enough for any single connection.
func (n *Network) Run(limit int) int {
	if limit <= 0 {
		limit = 100000
	}
	processed := 0
	for n.queue.len() > 0 && processed < limit {
		e := n.queue.pop()
		n.Clock.advanceTo(e.at)
		if e.fire != nil {
			mTimersFired.Inc()
			e.fire()
		} else {
			n.deliver(&e)
		}
		processed++
	}
	return processed
}

// Quiet reports whether no packets are in flight.
func (n *Network) Quiet() bool { return n.queue.len() == 0 }

// deliver carries one packet across its two legs: sender -> censor hop,
// then censor hop -> receiver.
//
// TTL boundary semantics (pinned; see TestTTLBoundary): each leg requires
// TTL >= hops and decrements by hops, so a packet whose TTL exactly equals
// a leg's hop count survives that leg. TTL == hopsBefore reaches the censor
// and, if hopsAfter > 0, expires on the second leg; TTL == hopsBefore +
// hopsAfter is delivered to the endpoint with TTL 0. This mirrors real
// forwarding, where a router decrements before forwarding and drops only on
// TTL reaching 0 mid-path — the receiving host itself never discards on
// TTL. The paper's low-TTL insertion strategies (§5.2) depend on the first
// half (TTL tuned to die between censor and server), and changing either
// edge would silently shift every evolved TTL value by one hop.
func (n *Network) deliver(e *event) {
	hopsBefore, hopsAfter := n.HopsToCensor, n.HopsBeyondCensor
	if e.dir == ToClient {
		hopsBefore, hopsAfter = n.HopsBeyondCensor, n.HopsToCensor
	}
	now := n.Clock.Now()
	// Note strings exist only for recorders; skip assembling them (and the
	// allocations that implies) when nobody is listening.
	rec := n.recording()

	if !e.fromCensor {
		// Leg 1: sender -> censor hop.
		if int(e.pkt.IP.TTL) < hopsBefore {
			mExpiredTTL.Inc()
			n.trace(e.pkt, e.dir, "expired before censor", now)
			n.recycle(e.pkt)
			return
		}
		e.pkt.IP.TTL -= uint8(hopsBefore)

		drop := false
		var notes []string
		for _, b := range n.boxes {
			v := b.Process(e.pkt, e.dir, now)
			if rec && v.Note != "" {
				notes = append(notes, fmt.Sprintf("%s: %s", b.Name(), v.Note))
			}
			drop = drop || v.Drop
			for _, inj := range v.InjectToClient {
				mInjected.Inc()
				n.enqueue(inj, ToClient, true)
				if rec {
					n.trace(inj, ToClient, "injected by "+b.Name(), now)
				}
			}
			for _, inj := range v.InjectToServer {
				mInjected.Inc()
				n.enqueue(inj, ToServer, true)
				if rec {
					n.trace(inj, ToServer, "injected by "+b.Name(), now)
				}
			}
		}
		note := ""
		for i, s := range notes {
			if i > 0 {
				note += "; "
			}
			note += s
		}
		if drop {
			mDroppedInPath.Inc()
			if rec {
				n.trace(e.pkt, e.dir, strjoin(note, "dropped in-path"), now)
			}
			n.recycle(e.pkt)
			return
		}
		if note != "" {
			n.trace(e.pkt, e.dir, note, now)
		}
	}

	// Leg 2: censor hop -> receiver.
	if int(e.pkt.IP.TTL) < hopsAfter {
		mExpiredTTL.Inc()
		n.trace(e.pkt, e.dir, "expired after censor", now)
		n.recycle(e.pkt)
		return
	}
	e.pkt.IP.TTL -= uint8(hopsAfter)

	dst := n.server
	if e.dir == ToClient {
		c, ok := n.clients[e.pkt.IP.Dst]
		if !ok {
			// A packet for an address nobody holds (spoofed or stale):
			// it falls off the edge of the network.
			mNoRoute.Inc()
			n.trace(e.pkt, e.dir, "no route to client", now)
			n.recycle(e.pkt)
			return
		}
		dst = c
	}
	mDelivered.Inc()
	n.trace(e.pkt, e.dir, "delivered", now)
	dst.Receive(n, e.pkt)
	n.recycle(e.pkt)
}

// recording reports whether any recorder is attached; deliver uses it to
// skip note assembly entirely on fitness-only runs.
func (n *Network) recording() bool { return n.Trace != nil || n.Recorder != nil }

func (n *Network) trace(pkt *packet.Packet, dir Direction, note string, at time.Duration) {
	if n.Trace != nil {
		n.Trace.add(pkt, dir, note, at)
	}
	if n.Recorder != nil {
		n.Recorder.Record(pkt, dir, note, at)
	}
}

// recycle returns a packet that reached a terminal point to the pool when
// RecyclePackets is enabled; recorders have already cloned anything they
// keep by the time this runs.
func (n *Network) recycle(p *packet.Packet) {
	if n.RecyclePackets {
		mRecycled.Inc()
		packet.Put(p)
	}
}

func strjoin(a, b string) string {
	if a == "" {
		return b
	}
	return a + "; " + b
}
