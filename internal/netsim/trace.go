package netsim

import (
	"fmt"
	"strings"
	"time"

	"geneva/internal/packet"
)

// TraceEntry is one recorded packet event.
type TraceEntry struct {
	Time time.Duration
	Dir  Direction
	Pkt  *packet.Packet
	Note string
}

// Trace records packet events for analysis and for rendering the paper's
// waterfall diagrams (Figures 1 and 2).
type Trace struct {
	Entries []TraceEntry
}

func (t *Trace) add(pkt *packet.Packet, dir Direction, note string, at time.Duration) {
	t.Entries = append(t.Entries, TraceEntry{Time: at, Dir: dir, Pkt: pkt.Clone(), Note: note})
}

// Delivered returns the entries that were actually delivered to an endpoint.
func (t *Trace) Delivered() []TraceEntry {
	var out []TraceEntry
	for _, e := range t.Entries {
		if strings.Contains(e.Note, "delivered") {
			out = append(out, e)
		}
	}
	return out
}

// label renders a packet in the waterfall notation the paper uses, e.g.
// "SYN/ACK (bad ackno)" or "PSH/ACK (query)".
func label(e TraceEntry) string {
	fl := packet.FlagsString(e.Pkt.TCP.Flags)
	name := ""
	switch fl {
	case "":
		name = "(no flags)"
	case "S":
		name = "SYN"
	case "SA":
		name = "SYN/ACK"
	case "A":
		name = "ACK"
	case "R":
		name = "RST"
	case "RA":
		name = "RST/ACK"
	case "F":
		name = "FIN"
	case "PA":
		name = "PSH/ACK"
	case "FPA":
		name = "FIN/PSH/ACK"
	default:
		name = strings.Join(strings.Split(fl, ""), "/")
	}
	var quals []string
	if len(e.Pkt.TCP.Payload) > 0 && fl != "PA" && fl != "FPA" {
		quals = append(quals, "w/ load")
	}
	if strings.Contains(e.Note, "bad ackno") {
		quals = append(quals, "bad ackno")
	}
	if len(quals) > 0 {
		name += " (" + strings.Join(quals, ", ") + ")"
	}
	return name
}

// Waterfall renders the delivered packets as a two-column client/server
// diagram in the style of the paper's Figures 1 and 2.
func (t *Trace) Waterfall(title string) string {
	var b strings.Builder
	const width = 46
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-*s\n", width, center("Client                Server", width))
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", width))
	for _, e := range t.Entries {
		// Show packets as they cross the censor hop (one line per send).
		// Censor decisions (notes the middleboxes attach) render as
		// bracketed annotation lines; pure injection bookkeeping is
		// skipped (the injected packets get their own delivery lines).
		if !strings.Contains(e.Note, "delivered") &&
			!strings.Contains(e.Note, "dropped") &&
			!strings.Contains(e.Note, "expired") {
			if !strings.Contains(e.Note, "injected") && e.Note != "" {
				fmt.Fprintf(&b, "      * %s\n", e.Note)
			}
			continue
		}
		l := label(e)
		suffix := ""
		if strings.Contains(e.Note, "dropped") {
			suffix = " [dropped]"
		} else if strings.Contains(e.Note, "expired") {
			suffix = " [expired]"
		}
		if e.Dir == ToServer {
			fmt.Fprintf(&b, "  %s %s>%s\n", l, strings.Repeat("-", max(2, width-8-len(l))), suffix)
		} else {
			fmt.Fprintf(&b, "  <%s %s%s\n", strings.Repeat("-", max(2, width-8-len(l))), l, suffix)
		}
	}
	return b.String()
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	pad := (w - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

// Summary counts delivered packets per direction; useful in tests.
func (t *Trace) Summary() (toServer, toClient int) {
	for _, e := range t.Entries {
		if !strings.Contains(e.Note, "delivered") {
			continue
		}
		if e.Dir == ToServer {
			toServer++
		} else {
			toClient++
		}
	}
	return
}
