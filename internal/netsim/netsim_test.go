package netsim

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"geneva/internal/packet"
)

var (
	clientAddr = netip.MustParseAddr("10.1.0.2")
	serverAddr = netip.MustParseAddr("198.51.100.9")
)

// recordHost records everything it receives and optionally replies once.
type recordHost struct {
	addr     netip.Addr
	got      []*packet.Packet
	replySeq uint32
	reply    bool
}

func (h *recordHost) Addr() netip.Addr { return h.addr }

func (h *recordHost) Receive(n *Network, pkt *packet.Packet) {
	h.got = append(h.got, pkt)
	if h.reply {
		h.reply = false
		r := packet.New(h.addr, pkt.IP.Src, pkt.TCP.DstPort, pkt.TCP.SrcPort)
		r.TCP.Flags = packet.FlagSYN | packet.FlagACK
		r.TCP.Seq = h.replySeq
		n.Send(h, r)
	}
}

// tapBox records what it sees; optionally drops or injects.
type tapBox struct {
	name    string
	seen    []uint8 // flags of observed packets
	dropAll bool
	inject  bool
}

func (b *tapBox) Name() string { return b.name }

func (b *tapBox) Process(pkt *packet.Packet, dir Direction, now time.Duration) Verdict {
	b.seen = append(b.seen, pkt.TCP.Flags)
	v := Verdict{Drop: b.dropAll}
	if b.inject {
		b.inject = false
		rst := packet.New(serverAddr, clientAddr, pkt.TCP.DstPort, pkt.TCP.SrcPort)
		rst.TCP.Flags = packet.FlagRST
		v.InjectToClient = []*packet.Packet{rst}
		v.Note = "censored"
	}
	return v
}

func syn(ttl uint8) *packet.Packet {
	p := packet.New(clientAddr, serverAddr, 40000, 80)
	p.TCP.Flags = packet.FlagSYN
	p.IP.TTL = ttl
	return p
}

func TestDeliveryAndReply(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr, reply: true, replySeq: 77}
	n := New(c, s)
	n.Send(c, syn(64))
	n.Run(0)
	if len(s.got) != 1 || s.got[0].TCP.Flags != packet.FlagSYN {
		t.Fatalf("server got %d packets", len(s.got))
	}
	if len(c.got) != 1 || c.got[0].TCP.Flags != packet.FlagSYN|packet.FlagACK {
		t.Fatalf("client got %d packets", len(c.got))
	}
	if c.got[0].TCP.Seq != 77 {
		t.Errorf("reply seq = %d", c.got[0].TCP.Seq)
	}
}

func TestTTLDecrementAcrossPath(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	n := New(c, s) // 5 + 5 hops
	n.Send(c, syn(64))
	n.Run(0)
	if len(s.got) != 1 {
		t.Fatal("not delivered")
	}
	if got := s.got[0].IP.TTL; got != 54 {
		t.Errorf("TTL at server = %d, want 54", got)
	}
}

func TestTTLExpiryBeforeCensor(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	box := &tapBox{name: "tap"}
	n := New(c, s, box)
	n.Trace = &Trace{}
	n.Send(c, syn(4)) // 4 < 5 hops to censor
	n.Run(0)
	if len(box.seen) != 0 {
		t.Error("censor saw a packet that should have expired before it")
	}
	if len(s.got) != 0 {
		t.Error("server got an expired packet")
	}
}

func TestTTLReachesCensorButNotServer(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	box := &tapBox{name: "tap"}
	n := New(c, s, box)
	n.Send(c, syn(7)) // >= 5 to reach censor, < 10 to reach server
	n.Run(0)
	if len(box.seen) != 1 {
		t.Error("censor did not see the TTL-limited probe")
	}
	if len(s.got) != 0 {
		t.Error("server received the TTL-limited probe")
	}
}

func TestInPathDrop(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	box := &tapBox{name: "inpath", dropAll: true}
	n := New(c, s, box)
	n.Send(c, syn(64))
	n.Run(0)
	if len(s.got) != 0 {
		t.Error("dropped packet was delivered")
	}
}

func TestInjectionBypassesBoxes(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	box := &tapBox{name: "onpath", inject: true}
	n := New(c, s, box)
	n.Send(c, syn(64))
	n.Run(0)
	if len(c.got) != 1 || c.got[0].TCP.Flags != packet.FlagRST {
		t.Fatalf("client got %d packets, want 1 injected RST", len(c.got))
	}
	// The injected RST must not be re-processed by the box.
	if len(box.seen) != 1 {
		t.Errorf("box saw %d packets, want only the original SYN", len(box.seen))
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	n := New(c, s)
	for i := 0; i < 10; i++ {
		p := syn(64)
		p.TCP.Seq = uint32(i)
		n.Send(c, p)
	}
	n.Run(0)
	if len(s.got) != 10 {
		t.Fatalf("delivered %d", len(s.got))
	}
	for i, p := range s.got {
		if p.TCP.Seq != uint32(i) {
			t.Fatalf("packet %d has seq %d: FIFO violated", i, p.TCP.Seq)
		}
	}
}

func TestClockAdvancesWithDelivery(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	n := New(c, s)
	n.Send(c, syn(64))
	n.Run(0)
	if n.Clock.Now() <= 0 {
		t.Error("clock did not advance")
	}
	before := n.Clock.Now()
	n.Clock.Advance(90 * time.Second)
	if n.Clock.Now() != before+90*time.Second {
		t.Error("manual Advance failed")
	}
	n.Clock.Advance(-time.Second)
	if n.Clock.Now() != before+90*time.Second {
		t.Error("clock ran backwards")
	}
}

func TestTraceWaterfallContainsPackets(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr, reply: true}
	n := New(c, s)
	n.Trace = &Trace{}
	n.Send(c, syn(64))
	n.Run(0)
	w := n.Trace.Waterfall("test flow")
	if !strings.Contains(w, "SYN") || !strings.Contains(w, "SYN/ACK") {
		t.Errorf("waterfall missing packets:\n%s", w)
	}
	toS, toC := n.Trace.Summary()
	if toS != 1 || toC != 1 {
		t.Errorf("summary = %d,%d", toS, toC)
	}
}

func TestRunLimit(t *testing.T) {
	// Two hosts that reply forever would loop; the limit must stop it.
	c := &echoForever{addr: clientAddr}
	s := &echoForever{addr: serverAddr}
	n := New(c, s)
	p := syn(255)
	n.Send(c, p)
	if got := n.Run(50); got != 50 {
		t.Errorf("processed %d, want 50", got)
	}
}

type echoForever struct{ addr netip.Addr }

func (h *echoForever) Addr() netip.Addr { return h.addr }
func (h *echoForever) Receive(n *Network, pkt *packet.Packet) {
	r := packet.New(h.addr, pkt.IP.Src, pkt.TCP.DstPort, pkt.TCP.SrcPort)
	r.TCP.Flags = packet.FlagACK
	r.IP.TTL = 255
	n.Send(h, r)
}
