package netsim

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func burst(n *Network, c Host, count int) {
	for i := 0; i < count; i++ {
		p := syn(64)
		p.TCP.Seq = uint32(i)
		n.Send(c, p)
	}
}

// TestZeroImpairmentsIsInert: installing a zero-value Impairments must leave
// delivery byte-identical to a network that never called SetImpairments —
// same packets, same order, same trace.
func TestZeroImpairmentsIsInert(t *testing.T) {
	run := func(install bool) *Trace {
		c := &recordHost{addr: clientAddr}
		s := &recordHost{addr: serverAddr, reply: true, replySeq: 9}
		n := New(c, s)
		n.Trace = &Trace{}
		if install {
			n.SetImpairments(Impairments{}, rand.New(rand.NewSource(42)))
		}
		burst(n, c, 10)
		n.Run(0)
		return n.Trace
	}
	plain, installed := run(false), run(true)
	if len(plain.Entries) != len(installed.Entries) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plain.Entries), len(installed.Entries))
	}
	for i := range plain.Entries {
		a, b := plain.Entries[i], installed.Entries[i]
		if a.Time != b.Time || a.Dir != b.Dir || a.Note != b.Note || a.Pkt.TCP.Seq != b.Pkt.TCP.Seq {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestTotalLossDeliversNothing: Loss=1 drops every packet in the impaired
// direction and records the drop in the trace.
func TestTotalLossDeliversNothing(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	n := New(c, s)
	n.Trace = &Trace{}
	n.SetImpairments(Impairments{ToServer: Profile{Loss: 1}}, rand.New(rand.NewSource(1)))
	burst(n, c, 5)
	n.Run(0)
	if len(s.got) != 0 {
		t.Fatalf("server got %d packets through a 100%%-loss link", len(s.got))
	}
	lost := 0
	for _, e := range n.Trace.Entries {
		if strings.Contains(e.Note, "lost (impairment)") {
			lost++
		}
	}
	if lost != 5 {
		t.Errorf("trace records %d losses, want 5", lost)
	}
}

// TestDuplicationDeliversTwice: Duplicate=1 doubles every packet.
func TestDuplicationDeliversTwice(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	n := New(c, s)
	n.SetImpairments(Impairments{ToServer: Profile{Duplicate: 1}}, rand.New(rand.NewSource(1)))
	burst(n, c, 4)
	n.Run(0)
	if len(s.got) != 8 {
		t.Fatalf("server got %d packets, want 8 (every packet duplicated)", len(s.got))
	}
}

// TestReorderViolatesFIFO: with reordering enabled, a burst must arrive out
// of order for at least one seed (the whole point of the knob).
func TestReorderViolatesFIFO(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		c := &recordHost{addr: clientAddr}
		s := &recordHost{addr: serverAddr}
		n := New(c, s)
		n.SetImpairments(Impairments{ToServer: Profile{Reorder: 0.5}}, rand.New(rand.NewSource(seed)))
		burst(n, c, 10)
		n.Run(0)
		if len(s.got) != 10 {
			t.Fatalf("seed %d: reorder lost packets (%d delivered)", seed, len(s.got))
		}
		for i, p := range s.got {
			if p.TCP.Seq != uint32(i) {
				return // reordered: property demonstrated
			}
		}
	}
	t.Error("no seed in 1..20 produced any reordering at Reorder=0.5")
}

// TestImpairmentIsPerDirection: impairing ToClient must not touch ToServer.
func TestImpairmentIsPerDirection(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr, reply: true}
	n := New(c, s)
	n.SetImpairments(Impairments{ToClient: Profile{Loss: 1}}, rand.New(rand.NewSource(1)))
	n.Send(c, syn(64))
	n.Run(0)
	if len(s.got) != 1 {
		t.Error("ToServer direction was impaired by a ToClient profile")
	}
	if len(c.got) != 0 {
		t.Error("ToClient loss=1 still delivered the reply")
	}
}

// TestImpairmentDeterminism: equal seeds produce identical traces; a
// different seed produces a different schedule.
func TestImpairmentDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		c := &recordHost{addr: clientAddr}
		s := &recordHost{addr: serverAddr}
		n := New(c, s)
		n.Trace = &Trace{}
		n.SetImpairments(Symmetric(Profile{Loss: 0.3, Duplicate: 0.2, Reorder: 0.3, Jitter: 3 * time.Millisecond}),
			rand.New(rand.NewSource(seed)))
		burst(n, c, 30)
		n.Run(0)
		var notes []string
		for _, e := range n.Trace.Entries {
			notes = append(notes, e.Time.String()+" "+e.Note)
		}
		return notes
	}
	a, b, other := run(7), run(7), run(8)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Error("same seed produced different impairment schedules")
	}
	if strings.Join(a, "\n") == strings.Join(other, "\n") {
		t.Error("different seeds produced identical schedules (rng unused?)")
	}
}

// TestJitterSpreadsDeliveryTimes: with jitter, deliveries stop being
// equally spaced.
func TestJitterSpreadsDeliveryTimes(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	n := New(c, s)
	n.Trace = &Trace{}
	n.SetImpairments(Impairments{ToServer: Profile{Jitter: 10 * time.Millisecond}}, rand.New(rand.NewSource(3)))
	burst(n, c, 10)
	n.Run(0)
	times := map[time.Duration]bool{}
	for _, e := range n.Trace.Delivered() {
		times[e.Time] = true
	}
	if len(times) < 3 {
		t.Errorf("jittered deliveries collapse onto %d distinct times", len(times))
	}
}

// TestAfterInterleavesWithPackets: timers fire at their virtual time, in
// order with packet deliveries.
func TestAfterInterleavesWithPackets(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	n := New(c, s) // 10 hops at 1 ms: delivery at t=1ms (single queue hop)
	var fired []time.Duration
	n.After(500*time.Microsecond, func() { fired = append(fired, n.Clock.Now()) })
	n.After(5*time.Millisecond, func() { fired = append(fired, n.Clock.Now()) })
	n.Send(c, syn(64))
	n.Run(0)
	if len(s.got) != 1 {
		t.Fatal("packet not delivered")
	}
	if len(fired) != 2 {
		t.Fatalf("%d timers fired, want 2", len(fired))
	}
	if fired[0] != 500*time.Microsecond || fired[1] != 5*time.Millisecond {
		t.Errorf("timers fired at %v", fired)
	}
	if n.Clock.Now() != 5*time.Millisecond {
		t.Errorf("clock ended at %v, want 5ms (last timer)", n.Clock.Now())
	}
}

// TestTimerCanRearm: a timer that schedules a successor runs the chain to
// completion within the event limit.
func TestTimerCanRearm(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	n := New(c, s)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			n.After(time.Millisecond, tick)
		}
	}
	n.After(time.Millisecond, tick)
	if got := n.Run(0); got != 5 {
		t.Errorf("processed %d events, want 5", got)
	}
	if !n.Quiet() {
		t.Error("network not quiet after bounded timer chain")
	}
}
