package netsim

import (
	"testing"

	"geneva/internal/packet"
)

// The TTL-exhaustion boundary is load-bearing for the paper's low-TTL
// insertion strategies (§5.2): a strategy tunes an insertion packet's TTL
// so it crosses the censor but dies before the server. These tests pin the
// exact edge: each leg requires TTL >= hops (a packet with TTL equal to the
// leg's hop count survives it), and a packet that spends its entire TTL on
// the path is still delivered, with TTL 0, because hosts don't discard on
// TTL — only routers mid-path do. See the deliver doc comment.

// TTL == hopsBefore: reaches the censor exactly, then expires on the second
// leg (hopsAfter > 0), so the censor sees it but the server never does.
func TestTTLBoundaryExactlyReachesCensor(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	box := &tapBox{name: "tap"}
	n := New(c, s, box) // 5 hops to censor, 5 beyond
	n.Send(c, syn(uint8(n.HopsToCensor)))
	n.Run(0)
	if len(box.seen) != 1 {
		t.Fatalf("censor saw %d packets, want 1: TTL == HopsToCensor must reach the censor", len(box.seen))
	}
	if len(s.got) != 0 {
		t.Fatalf("server got %d packets, want 0: TTL 0 after the censor must expire on the second leg", len(s.got))
	}
}

// TTL == hopsBefore - 1: one hop short, the censor must not see it. This is
// the other side of the first edge.
func TestTTLBoundaryOneShortOfCensor(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	box := &tapBox{name: "tap"}
	n := New(c, s, box)
	n.Send(c, syn(uint8(n.HopsToCensor-1)))
	n.Run(0)
	if len(box.seen) != 0 {
		t.Fatalf("censor saw %d packets, want 0: TTL == HopsToCensor-1 must expire before the censor", len(box.seen))
	}
	if len(s.got) != 0 {
		t.Fatalf("server got %d packets, want 0", len(s.got))
	}
}

// TTL == hopsBefore + hopsAfter: spends every hop on the path and is still
// delivered, arriving with TTL exactly 0.
func TestTTLBoundaryExactlyReachesServer(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	box := &tapBox{name: "tap"}
	n := New(c, s, box)
	n.Send(c, syn(uint8(n.HopsToCensor+n.HopsBeyondCensor)))
	n.Run(0)
	if len(box.seen) != 1 {
		t.Fatalf("censor saw %d packets, want 1", len(box.seen))
	}
	if len(s.got) != 1 {
		t.Fatalf("server got %d packets, want 1: TTL == total hops must be delivered", len(s.got))
	}
	if got := s.got[0].IP.TTL; got != 0 {
		t.Fatalf("TTL at server = %d, want exactly 0", got)
	}
}

// The same two edges hold on the return path, where the leg order flips
// (HopsBeyondCensor first). Asymmetric hop counts catch a swapped-legs
// regression.
func TestTTLBoundaryReturnPathAsymmetric(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	box := &tapBox{name: "tap"}
	n := New(c, s, box)
	n.HopsToCensor = 3
	n.HopsBeyondCensor = 7

	// Server -> client with TTL == HopsBeyondCensor: reaches the censor,
	// dies before the client.
	r := packet.New(serverAddr, clientAddr, 80, 40000)
	r.TCP.Flags = packet.FlagACK
	r.IP.TTL = uint8(n.HopsBeyondCensor)
	n.Send(s, r)
	n.Run(0)
	if len(box.seen) != 1 {
		t.Fatalf("censor saw %d packets, want 1: return leg 1 is HopsBeyondCensor", len(box.seen))
	}
	if len(c.got) != 0 {
		t.Fatalf("client got %d packets, want 0", len(c.got))
	}

	// TTL == both legs: delivered to the client with TTL 0.
	r2 := packet.New(serverAddr, clientAddr, 80, 40000)
	r2.TCP.Flags = packet.FlagACK
	r2.IP.TTL = uint8(n.HopsBeyondCensor + n.HopsToCensor)
	n.Send(s, r2)
	n.Run(0)
	if len(c.got) != 1 {
		t.Fatalf("client got %d packets, want 1", len(c.got))
	}
	if got := c.got[0].IP.TTL; got != 0 {
		t.Fatalf("TTL at client = %d, want exactly 0", got)
	}
}
