package netsim

import (
	"bytes"
	"testing"
	"time"

	"geneva/internal/packet"
)

func TestPcapRoundtrip(t *testing.T) {
	tr := &Trace{}
	p1 := packet.New(clientAddr, serverAddr, 40000, 80)
	p1.TCP.Flags = packet.FlagSYN
	p2 := packet.New(serverAddr, clientAddr, 80, 40000)
	p2.TCP.Flags = packet.FlagSYN | packet.FlagACK
	p2.TCP.Payload = []byte("x")
	tr.add(p1, ToServer, "delivered", 1500*time.Microsecond)
	tr.add(p2, ToClient, "delivered", 2*time.Second+3*time.Microsecond)

	var buf bytes.Buffer
	if err := tr.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	pkts, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("read %d packets, want 2", len(pkts))
	}
	// The raw bytes must parse back into the same packets.
	got1, err := packet.Parse(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if got1.TCP.Flags != packet.FlagSYN || got1.IP.Src != clientAddr {
		t.Errorf("first packet mismatch: %s", got1)
	}
	got2, err := packet.Parse(pkts[1])
	if err != nil {
		t.Fatal(err)
	}
	if string(got2.TCP.Payload) != "x" {
		t.Errorf("second packet payload %q", got2.TCP.Payload)
	}
}

func TestPcapFromLiveTrace(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr, reply: true}
	n := New(c, s)
	n.Trace = &Trace{}
	n.Send(c, syn(64))
	n.Run(0)
	var buf bytes.Buffer
	if err := n.Trace.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	pkts, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 2 {
		t.Fatalf("capture has %d packets", len(pkts))
	}
	// Header sanity: magic + linktype RAW.
	raw := buf.Bytes()
	_ = raw
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadPcap(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
