package netsim

import (
	"math/rand"
	"time"
)

// Profile describes the impairment of one direction of the path. All
// probabilities are per-packet in [0, 1]; the zero value is a perfect link.
type Profile struct {
	// Loss is the probability a packet is silently dropped in transit.
	Loss float64
	// Duplicate is the probability a packet is delivered twice (the copy
	// takes its own independently jittered path).
	Duplicate float64
	// Reorder is the probability a packet is held back long enough for a
	// later packet in the same direction to overtake it.
	Reorder float64
	// Jitter adds a uniform random extra latency in [0, Jitter] to every
	// packet. Values below the inter-packet spacing delay without
	// reordering; larger values reorder too.
	Jitter time.Duration
}

func (p Profile) enabled() bool {
	return p.Loss > 0 || p.Duplicate > 0 || p.Reorder > 0 || p.Jitter > 0
}

// Impairments bundles the per-direction impairment profiles of the path.
// The zero value disables the layer entirely: no randomness is consumed and
// delivery is byte-identical to a network that never heard of impairments.
type Impairments struct {
	ToServer Profile
	ToClient Profile
}

// Symmetric applies the same profile to both directions.
func Symmetric(p Profile) Impairments { return Impairments{ToServer: p, ToClient: p} }

// Enabled reports whether any impairment is active in either direction.
func (im Impairments) Enabled() bool { return im.ToServer.enabled() || im.ToClient.enabled() }

func (im Impairments) profile(dir Direction) Profile {
	if dir == ToServer {
		return im.ToServer
	}
	return im.ToClient
}

// SetImpairments installs the impairment layer. The rng is the sole source
// of randomness — two networks configured with equal profiles and
// equally-seeded rngs impair identically. A nil rng with active impairments
// falls back to a fixed seed so behaviour stays reproducible.
func (n *Network) SetImpairments(im Impairments, rng *rand.Rand) {
	if rng == nil && im.Enabled() {
		rng = rand.New(rand.NewSource(0))
	}
	n.impair = im
	n.impairRNG = rng
}

// impairExtra draws the extra latency for one packet copy: a reordering
// hold-back (long enough that the next packet overtakes) plus jitter. The
// draw order is fixed — reorder, then jitter — so a given rng stream always
// maps to the same impairment schedule.
func (n *Network) impairExtra(p Profile) time.Duration {
	var extra time.Duration
	if p.Reorder > 0 && n.impairRNG.Float64() < p.Reorder {
		mReordered.Inc()
		extra += n.LinkDelay + time.Duration(n.impairRNG.Int63n(int64(n.LinkDelay)+1))
	}
	if p.Jitter > 0 {
		extra += time.Duration(n.impairRNG.Int63n(int64(p.Jitter) + 1))
	}
	return extra
}
