package netsim

import (
	"net/netip"
	"strings"
	"testing"

	"geneva/internal/packet"
)

func TestDirectionStringAndReverse(t *testing.T) {
	if ToServer.String() != "->server" || ToClient.String() != "->client" {
		t.Error("Direction.String broken")
	}
	if ToServer.Reverse() != ToClient || ToClient.Reverse() != ToServer {
		t.Error("Direction.Reverse broken")
	}
}

func TestAccessors(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr}
	box := &tapBox{name: "tap"}
	n := New(c, s, box)
	if n.Client() != c || n.Server() != s {
		t.Error("Client/Server accessors broken")
	}
	if len(n.Boxes()) != 1 || n.Boxes()[0] != box {
		t.Error("Boxes accessor broken")
	}
	if !n.Quiet() {
		t.Error("fresh network not quiet")
	}
	n.Send(c, syn(64))
	if n.Quiet() {
		t.Error("network quiet with a packet in flight")
	}
	n.Run(0)
	if !n.Quiet() {
		t.Error("network not quiet after Run")
	}
}

func TestMultiClientRouting(t *testing.T) {
	a := &recordHost{addr: clientAddr}
	b := &recordHost{addr: serverAddr} // server
	other := &recordHost{addr: mustAddr("10.1.0.9")}
	n := NewMulti(b, []Host{a, other})
	// The server replies to whichever client wrote to it.
	reply := func(to *recordHost) *packet.Packet {
		p := packet.New(serverAddr, to.addr, 80, 40000)
		p.TCP.Flags = packet.FlagACK
		return p
	}
	n.Send(b, reply(a))
	n.Send(b, reply(other))
	n.Run(0)
	if len(a.got) != 1 || len(other.got) != 1 {
		t.Errorf("routing broken: a=%d other=%d", len(a.got), len(other.got))
	}
	// A packet to nobody falls off the network.
	stray := packet.New(serverAddr, mustAddr("10.9.9.9"), 80, 1)
	stray.TCP.Flags = packet.FlagACK
	n.Trace = &Trace{}
	n.Send(b, stray)
	n.Run(0)
	found := false
	for _, e := range n.Trace.Entries {
		if strings.Contains(e.Note, "no route") {
			found = true
		}
	}
	if !found {
		t.Error("stray packet not reported as unroutable")
	}
}

func TestNewMultiRequiresClients(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMulti with no clients did not panic")
		}
	}()
	NewMulti(&recordHost{addr: serverAddr}, nil)
}

func TestTraceDeliveredFilter(t *testing.T) {
	c := &recordHost{addr: clientAddr}
	s := &recordHost{addr: serverAddr, reply: true}
	n := New(c, s)
	n.Trace = &Trace{}
	n.Send(c, syn(64))
	n.Run(0)
	del := n.Trace.Delivered()
	if len(del) != 2 {
		t.Errorf("Delivered() = %d entries, want 2", len(del))
	}
	for _, e := range del {
		if !strings.Contains(e.Note, "delivered") {
			t.Errorf("non-delivered entry leaked: %q", e.Note)
		}
	}
}

func TestWaterfallLabels(t *testing.T) {
	tr := &Trace{}
	mk := func(flags uint8, payload string, note string) {
		p := packet.New(clientAddr, serverAddr, 1, 2)
		p.TCP.Flags = flags
		p.TCP.Payload = []byte(payload)
		tr.add(p, ToServer, note, 0)
	}
	mk(packet.FlagFIN, "x", "delivered")
	mk(packet.FlagRST|packet.FlagACK, "", "delivered")
	mk(packet.FlagFIN|packet.FlagPSH|packet.FlagACK, "page", "delivered")
	mk(packet.FlagURG|packet.FlagPSH, "", "delivered")
	mk(packet.FlagSYN, "", "dropped in-path")
	mk(packet.FlagSYN, "", "expired before censor")
	w := tr.Waterfall("labels")
	for _, want := range []string{
		"FIN (w/ load)", "RST/ACK", "FIN/PSH/ACK", "P/U",
		"[dropped]", "[expired]",
	} {
		if !strings.Contains(w, want) {
			t.Errorf("waterfall missing %q:\n%s", want, w)
		}
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
