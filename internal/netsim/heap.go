package netsim

// The event queue is the single hottest structure in the simulator: every
// packet leg, timer, and impairment copy passes through one push and one pop.
// The original implementation was a container/heap over []*event with a
// freelist; profiles showed the interface-method sift calls (Less/Swap via
// heap.Interface) and the any round-trips on Push/Pop as a steady ~7% of a
// fleet run. This file replaces it with an inlined, index-based 4-ary
// min-heap over a value slice []event:
//
//   - values, not pointers: no freelist, no per-event pointer chasing, and
//     the slice grows amortized like any other buffer;
//   - inlined sifts: eventLess is a direct two-field compare, monomorphic,
//     with the hole-based up/down writing each slot once instead of swapping;
//   - 4-ary layout: children of i are 4i+1..4i+4, parent is (i-1)/4. A
//     wider node roughly halves tree depth for the queue sizes a connection
//     generates (a handful to a few dozen events), trading cheap sequential
//     compares within a cache line for expensive cross-level moves.
//
// Ordering is exactly the old comparator: ascending (at, seq). seq is a
// strictly increasing push counter, so equal-timestamp events pop in push
// order (FIFO) and the heap order is total — pop order is deterministic and
// byte-identical to the container/heap implementation. heap_test.go locks
// this in with a differential property test against a container/heap
// reference plus FuzzEventQueue.

type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

// eventLess orders events by (at, seq): earlier virtual time first, FIFO on
// ties. seq is never reused, so this is a strict total order.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	// Sift up with a hole: start from the appended slot, move parents down
	// until e's position is found, then write e once.
	ev := append(h.ev, e)
	h.ev = ev
	i := len(ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(&e, &ev[parent]) {
			break
		}
		ev[i] = ev[parent]
		i = parent
	}
	ev[i] = e
}

// pop removes and returns the minimum event. The vacated tail slot is zeroed
// so the heap's spare capacity holds no stale *Packet or timer-closure
// references that would keep them reachable.
func (h *eventHeap) pop() event {
	ev := h.ev
	min := ev[0]
	n := len(ev) - 1
	last := ev[n]
	ev[n] = event{}
	h.ev = ev[:n]
	if n > 0 {
		h.siftDown(last)
	}
	return min
}

// siftDown places e (the former tail) starting from the root hole: at each
// level the smallest of up to four children moves up into the hole until e
// is no larger than all remaining children.
func (h *eventHeap) siftDown(e event) {
	ev := h.ev
	n := len(ev)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(&ev[c], &ev[best]) {
				best = c
			}
		}
		if !eventLess(&ev[best], &e) {
			break
		}
		ev[i] = ev[best]
		i = best
	}
	ev[i] = e
}
