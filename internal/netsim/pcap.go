package netsim

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// pcap constants for the classic libpcap file format.
const (
	pcapMagicMicros = 0xa1b2c3d4
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	// linktypeRaw means packets begin directly with an IPv4/IPv6 header.
	linktypeRaw = 101
	pcapSnapLen = 65535
)

// WritePcap serializes the trace's packets as a libpcap capture file
// (LINKTYPE_RAW), readable by tcpdump and Wireshark. Packets are emitted
// once per trace entry that represents a wire event (deliveries, drops, and
// expiries are all included — the capture point is the censor hop).
// Timestamps are the virtual clock offsets.
func (t *Trace) WritePcap(w io.Writer) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linktypeRaw)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("pcap header: %w", err)
	}
	for i, e := range t.Entries {
		// Each entry holds a cloned packet; serialize it fresh.
		wire, err := e.Pkt.Wire()
		if err != nil {
			return fmt.Errorf("packet %d: %w", i, err)
		}
		rec := make([]byte, 16)
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.Time/time.Second))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.Time%time.Second/time.Microsecond))
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(wire)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(wire)))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("packet %d record: %w", i, err)
		}
		if _, err := w.Write(wire); err != nil {
			return fmt.Errorf("packet %d data: %w", i, err)
		}
	}
	return nil
}

// ReadPcap parses a capture produced by WritePcap back into raw packet
// byte slices (primarily for tests; real captures go to Wireshark).
func ReadPcap(r io.Reader) ([][]byte, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != pcapMagicMicros {
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linktypeRaw {
		return nil, fmt.Errorf("pcap: unsupported linktype %d", lt)
	}
	var pkts [][]byte
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return pkts, nil
			}
			return nil, fmt.Errorf("pcap record: %w", err)
		}
		n := binary.LittleEndian.Uint32(rec[8:])
		if n > pcapSnapLen {
			return nil, fmt.Errorf("pcap: record of %d bytes exceeds snaplen", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pcap data: %w", err)
		}
		pkts = append(pkts, data)
	}
}
