// Package netsim provides the deterministic virtual network the experiments
// run on: a client host and a server host joined by a path of hops, with
// middleboxes (the censors) attached part-way along the path.
//
// It stands in for the paper's real vantage points. The properties the
// strategies depend on are preserved:
//
//   - FIFO delivery per direction by default (the paper's footnote 1 relies
//     on this); an optional seedable impairment layer (SetImpairments) adds
//     per-direction loss, duplication, reordering, and latency jitter for
//     robustness experiments — the zero-value Impairments keeps the network
//     perfectly lossless and byte-identical to the historical behaviour;
//   - per-hop TTL decrement, so TTL-limited probes can locate a censor
//     (§6) and TTL-limited insertion packets behave correctly;
//   - on-path boxes see copies and can inject packets to either end, while
//     in-path boxes can additionally drop or hijack traffic (§2.1);
//   - a virtual clock, so residual censorship (~90 s) and blackholing
//     (60 s) can be exercised without real waiting; hosts can schedule
//     callbacks on it (After), which is what drives the tcpstack
//     retransmission timers under impairment.
//
// Everything is single-goroutine and seedable, so trials are reproducible.
package netsim
