package netsim

import (
	"math/rand"
	"testing"
	"time"
)

// FuzzImpairments hammers the impairment scheduler with arbitrary profiles
// and traffic shapes: it must never panic, never invent packets (deliveries
// ≤ sends × 2 with duplication), and the trace must stay causally ordered
// (timestamps never run backwards).
func FuzzImpairments(f *testing.F) {
	f.Add(int64(1), uint16(200), uint16(100), uint16(300), uint16(5), uint8(20))
	f.Add(int64(7), uint16(1000), uint16(0), uint16(0), uint16(0), uint8(5))
	f.Add(int64(42), uint16(0), uint16(1000), uint16(1000), uint16(50), uint8(40))
	f.Fuzz(func(t *testing.T, seed int64, loss, dup, reorder, jitterMs uint16, npkts uint8) {
		prof := Profile{
			Loss:      float64(loss%1001) / 1000,
			Duplicate: float64(dup%1001) / 1000,
			Reorder:   float64(reorder%1001) / 1000,
			Jitter:    time.Duration(jitterMs%100) * time.Millisecond,
		}
		c := &recordHost{addr: clientAddr}
		s := &recordHost{addr: serverAddr}
		n := New(c, s)
		n.Trace = &Trace{}
		n.SetImpairments(Symmetric(prof), rand.New(rand.NewSource(seed)))
		sends := int(npkts)%64 + 1
		for i := 0; i < sends; i++ {
			p := syn(64)
			p.TCP.Seq = uint32(i)
			if i%2 == 0 {
				n.Send(c, p)
			} else {
				p.IP.Src, p.IP.Dst = serverAddr, clientAddr
				n.Send(s, p)
			}
		}
		// A couple of timers riding alongside, like retransmission would.
		n.After(3*time.Millisecond, func() {})
		n.After(time.Millisecond, func() { n.Send(c, syn(64)) })
		if n.Run(10000) >= 10000 {
			t.Fatal("impairment scheduler did not quiesce")
		}
		if got := len(c.got) + len(s.got); got > 2*(sends+1) {
			t.Fatalf("%d deliveries from %d sends: scheduler invented packets", got, sends+1)
		}
		last := time.Duration(-1)
		for i, e := range n.Trace.Entries {
			if e.Time < last {
				t.Fatalf("trace entry %d at %v precedes predecessor at %v: causality violated", i, e.Time, last)
			}
			last = e.Time
		}
	})
}
