package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// refQueue is a container/heap reference with the original comparator —
// ascending (at, seq) — used only to check the inlined 4-ary heap against
// the implementation it replaced.
type refQueue []event

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *refQueue) Pop() any {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

// heapPair drives the value heap and the reference in lockstep. seq mirrors
// Network.seq: strictly increasing per push, so ties are exercised purely
// through equal at values.
type heapPair struct {
	t   *testing.T
	h   eventHeap
	ref refQueue
	seq int
}

func (p *heapPair) push(at time.Duration) {
	p.seq++
	e := event{at: at, seq: p.seq}
	p.h.push(e)
	heap.Push(&p.ref, e)
}

func (p *heapPair) pop() {
	p.t.Helper()
	if p.h.len() != p.ref.Len() {
		p.t.Fatalf("length mismatch: heap %d, reference %d", p.h.len(), p.ref.Len())
	}
	if p.h.len() == 0 {
		return
	}
	got := p.h.pop()
	want := heap.Pop(&p.ref).(event)
	if got.at != want.at || got.seq != want.seq {
		p.t.Fatalf("pop mismatch: got (at=%v seq=%d), reference (at=%v seq=%d)",
			got.at, got.seq, want.at, want.seq)
	}
}

func (p *heapPair) drain() {
	p.t.Helper()
	for p.ref.Len() > 0 {
		p.pop()
	}
	if p.h.len() != 0 {
		p.t.Fatalf("heap not empty after drain: %d left", p.h.len())
	}
}

// TestEventHeapDifferential checks the inlined 4-ary heap pops in exactly
// the order the container/heap implementation did, across randomized
// push/pop schedules. Timestamps are drawn from a small range so
// equal-timestamp bursts — where only the seq FIFO tie-break decides — are
// common, not rare.
func TestEventHeapDifferential(t *testing.T) {
	for _, tc := range []struct {
		name    string
		atRange int64 // distinct timestamps; 1 = everything ties
		ops     int
	}{
		{"all_ties", 1, 400},
		{"heavy_ties", 4, 1000},
		{"some_ties", 64, 2000},
		{"mostly_distinct", 1 << 30, 2000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			p := &heapPair{t: t}
			for op := 0; op < tc.ops; op++ {
				// Bias toward pushes so the heap grows past trivial sizes,
				// but interleave pops throughout (the simulator's pattern).
				if rng.Intn(5) < 3 || p.ref.Len() == 0 {
					p.push(time.Duration(rng.Int63n(tc.atRange)))
				} else {
					p.pop()
				}
			}
			p.drain()
		})
	}
}

// TestEventHeapBurst pushes whole bursts at identical timestamps — the
// shape a wave of simultaneous sends produces — and checks strict FIFO
// within each timestamp.
func TestEventHeapBurst(t *testing.T) {
	var h eventHeap
	seq := 0
	for burst := 0; burst < 10; burst++ {
		for i := 0; i < 37; i++ {
			seq++
			h.push(event{at: time.Duration(burst), seq: seq})
		}
	}
	lastAt, lastSeq := time.Duration(-1), 0
	for h.len() > 0 {
		e := h.pop()
		if e.at < lastAt || (e.at == lastAt && e.seq <= lastSeq) {
			t.Fatalf("order violated: (at=%v seq=%d) after (at=%v seq=%d)",
				e.at, e.seq, lastAt, lastSeq)
		}
		lastAt, lastSeq = e.at, e.seq
	}
}

// TestEventHeapPopClearsSlot checks pop zeroes the vacated tail slot so the
// spare capacity retains no packet or closure references (the value-slice
// equivalent of the old freelist's *e = event{}).
func TestEventHeapPopClearsSlot(t *testing.T) {
	var h eventHeap
	fired := false
	h.push(event{at: 1, seq: 1, fire: func() { fired = true }})
	h.push(event{at: 2, seq: 2, fire: func() { fired = true }})
	h.pop()
	h.pop()
	_ = fired
	for i := 0; i < cap(h.ev); i++ {
		slot := h.ev[:cap(h.ev)][i]
		if slot.fire != nil || slot.pkt != nil {
			t.Fatalf("slot %d retains references after pop: %+v", i, slot)
		}
	}
}

// FuzzEventQueue feeds arbitrary operation tapes to the heap pair: each
// input byte either pushes (with a timestamp folded to 3 bits, forcing tie
// collisions) or pops, and every pop must match the container/heap
// reference.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x80, 0x81, 0x33, 0x82})
	f.Add([]byte{0x00, 0x00, 0x00, 0x80, 0x80, 0x80})
	f.Add([]byte{0xff, 0x7f, 0x80, 0x01, 0x80})
	f.Fuzz(func(t *testing.T, tape []byte) {
		p := &heapPair{t: t}
		for _, b := range tape {
			if b&0x80 == 0 {
				p.push(time.Duration(b & 0x07))
			} else {
				p.pop()
			}
		}
		p.drain()
	})
}

// BenchmarkEventQueue measures the steady-state push/pop churn the
// simulator drives: hold a small working set (a connection keeps a handful
// of events in flight) and cycle events through it.
func BenchmarkEventQueue(b *testing.B) {
	for _, depth := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			// Pre-generate the timestamp tape so rng cost stays out of the
			// measured loop.
			tape := make([]time.Duration, 4096)
			for i := range tape {
				tape[i] = time.Duration(rng.Int63n(1 << 20))
			}
			var h eventHeap
			seq := 0
			for i := 0; i < depth; i++ {
				seq++
				h.push(event{at: tape[seq&4095], seq: seq})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := h.pop()
				seq++
				e.at += tape[seq&4095]
				e.seq = seq
				h.push(e)
			}
		})
	}
}
