package netsim

import "geneva/internal/obs"

// Delivery-outcome counters. Every packet the network accepts reaches
// exactly one terminal counter (delivered, lost, expired, no-route, or
// dropped in-path); the others count side events. All increments sit behind
// the obs enabled gate, so the fitness-trial hot path pays one atomic load
// per site when metrics are off.
var (
	mDelivered     = obs.NewCounter("netsim.delivered")
	mLost          = obs.NewCounter("netsim.lost_impairment")
	mDuplicated    = obs.NewCounter("netsim.duplicated_impairment")
	mReordered     = obs.NewCounter("netsim.reordered_impairment")
	mExpiredTTL    = obs.NewCounter("netsim.expired_ttl")
	mNoRoute       = obs.NewCounter("netsim.no_route")
	mDroppedInPath = obs.NewCounter("netsim.dropped_inpath")
	mInjected      = obs.NewCounter("netsim.injected_by_censor")
	mRecycled      = obs.NewCounter("netsim.packets_recycled")
	mTimersFired   = obs.NewCounter("netsim.timers_fired")
)
