package packet

import (
	"net/netip"
	"testing"
)

var (
	avSrc = netip.MustParseAddr("10.0.0.1")
	avDst = netip.MustParseAddr("192.0.2.1")
)

const (
	reqA = "GET /index HTTP/1.1\r\nHost: blocked.example\r\nAccept: */*\r\n\r\n"
	reqB = "GET /other HTTP/1.1\r\nHost: benign.example\r\nAccept: */*\r\n\r\n"
)

func viewPkt(payload string) *Packet {
	p := New(avSrc, avDst, 40000, 80)
	p.TCP.Flags = FlagPSH | FlagACK
	p.TCP.Payload = []byte(payload)
	return p
}

func TestAppViewMemoizesHTTP(t *testing.T) {
	p := viewPkt(reqA)
	host, ok := p.HTTPHostHeader()
	if !ok || host != "blocked.example" {
		t.Fatalf("HTTPHostHeader = %q, %v", host, ok)
	}
	target, ok := p.HTTPRequestTarget()
	if !ok || target != "/index" {
		t.Fatalf("HTTPRequestTarget = %q, %v", target, ok)
	}
	// Mutating the payload WITHOUT clearing returns the memoized value:
	// this is the memoization contract working as designed (the lifecycle
	// entry points are responsible for clearing).
	p.TCP.Payload = []byte(reqB)
	if host, _ := p.HTTPHostHeader(); host != "blocked.example" {
		t.Fatalf("expected the memoized host, got %q", host)
	}
	p.ClearAppView()
	if host, _ := p.HTTPHostHeader(); host != "benign.example" {
		t.Fatalf("after ClearAppView host = %q, want benign.example", host)
	}
}

func TestAppViewMemoizesFailure(t *testing.T) {
	p := viewPkt("garbage that is not HTTP\r\n")
	if _, ok := p.HTTPHostHeader(); ok {
		t.Fatal("parsed a host from garbage")
	}
	// Failure is memoized too: same answer without reparsing.
	if _, ok := p.HTTPHostHeader(); ok {
		t.Fatal("second lookup disagreed")
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := p.HTTPHostHeader(); ok {
			t.Fatal("unexpected success")
		}
	}); n != 0 {
		t.Fatalf("memoized failed lookup allocates %v/op, want 0", n)
	}
}

func TestAppViewMemoizedHitIsAllocFree(t *testing.T) {
	p := viewPkt(reqA)
	p.HTTPHostHeader()
	p.HTTPRequestTarget()
	if n := testing.AllocsPerRun(100, func() {
		if h, ok := p.HTTPHostHeader(); !ok || h != "blocked.example" {
			t.Fatal("memoized host lost")
		}
		if tg, ok := p.HTTPRequestTarget(); !ok || tg != "/index" {
			t.Fatal("memoized target lost")
		}
	}); n != 0 {
		t.Fatalf("memoized hits allocate %v/op, want 0", n)
	}
}

// The pooled lifecycle must never serve a stale view: every path that
// replaces a packet's payload clears the memo.
func TestAppViewInvalidation(t *testing.T) {
	t.Run("Reset", func(t *testing.T) {
		p := viewPkt(reqA)
		p.HTTPHostHeader()
		p.Reset()
		p.TCP.Payload = append(p.TCP.Payload[:0], reqB...)
		if host, ok := p.HTTPHostHeader(); !ok || host != "benign.example" {
			t.Fatalf("stale host after Reset: %q, %v", host, ok)
		}
	})
	t.Run("GetRecycled", func(t *testing.T) {
		p := viewPkt(reqA)
		p.HTTPHostHeader()
		Put(p)
		q := Get(avSrc, avDst, 40001, 80) // may or may not be p's storage
		q.TCP.Payload = append(q.TCP.Payload[:0], reqB...)
		if host, ok := q.HTTPHostHeader(); !ok || host != "benign.example" {
			t.Fatalf("stale host on recycled packet: %q, %v", host, ok)
		}
	})
	t.Run("CopyFrom", func(t *testing.T) {
		src := viewPkt(reqA)
		src.HTTPHostHeader()
		var dst Packet
		dst.CopyFrom(src)
		// The copy re-slices its payload in place (the fragment action's
		// move); an inherited view would now be stale.
		dst.TCP.Payload = dst.TCP.Payload[4:]
		if _, ok := dst.HTTPRequestTarget(); ok {
			t.Fatal("copy served a view for a payload it no longer has")
		}
	})
	t.Run("ClonePooled", func(t *testing.T) {
		src := viewPkt(reqA)
		src.HTTPHostHeader()
		c := src.ClonePooled()
		defer Put(c)
		c.TCP.Payload = c.TCP.Payload[:10]
		if _, ok := c.HTTPHostHeader(); ok {
			t.Fatal("pooled clone served the source's view after truncation")
		}
	})
	t.Run("Clone", func(t *testing.T) {
		src := viewPkt(reqA)
		src.HTTPHostHeader()
		c := src.Clone()
		c.TCP.Payload = c.TCP.Payload[:10]
		if _, ok := c.HTTPHostHeader(); ok {
			t.Fatal("clone served the source's view after truncation")
		}
	})
	t.Run("ParseInto", func(t *testing.T) {
		p := viewPkt(reqA)
		p.HTTPHostHeader()
		wire, err := viewPkt(reqB).Wire()
		if err != nil {
			t.Fatal(err)
		}
		if err := ParseInto(p, wire); err != nil {
			t.Fatal(err)
		}
		if host, ok := p.HTTPHostHeader(); !ok || host != "benign.example" {
			t.Fatalf("stale host after ParseInto: %q, %v", host, ok)
		}
	})
}

func TestNextHTTPRequestOffset(t *testing.T) {
	if off := NextHTTPRequestOffset([]byte(reqA + reqB)); off != len(reqA) {
		t.Fatalf("NextHTTPRequestOffset = %d, want %d", off, len(reqA))
	}
	// A single complete request has no follow-up.
	if off := NextHTTPRequestOffset([]byte(reqA)); off != 0 {
		t.Fatalf("single request: offset %d, want 0", off)
	}
	// Anchoring: a payload that is not itself a request has no boundaries.
	if off := NextHTTPRequestOffset([]byte("junk\r\n\r\n" + reqB)); off != 0 {
		t.Fatalf("unanchored payload: offset %d, want 0", off)
	}
	// Incomplete header block: no terminator yet, fail open.
	if off := NextHTTPRequestOffset([]byte("GET /x HTTP/1.1\r\nHost: a\r\n")); off != 0 {
		t.Fatalf("incomplete request: offset %d, want 0", off)
	}
}

func TestVisitHTTPRequests(t *testing.T) {
	var targets, hosts []string
	all := func(target, host string, hok bool) bool {
		targets = append(targets, target)
		hosts = append(hosts, host)
		return false
	}
	if VisitHTTPRequests([]byte(reqA+reqB), all) {
		t.Fatal("visit returned false everywhere but walk reported a match")
	}
	if len(targets) != 2 || targets[0] != "/index" || targets[1] != "/other" {
		t.Fatalf("targets = %v", targets)
	}
	if hosts[0] != "blocked.example" || hosts[1] != "benign.example" {
		t.Fatalf("hosts = %v", hosts)
	}
	// Early exit on first match.
	calls := 0
	if !VisitHTTPRequests([]byte(reqA+reqB), func(string, string, bool) bool {
		calls++
		return true
	}) {
		t.Fatal("match on first request not reported")
	}
	if calls != 1 {
		t.Fatalf("visit called %d times after a first-request match", calls)
	}
	// The walk stops at the first follow-up that does not parse.
	targets = nil
	VisitHTTPRequests([]byte(reqA+"garbage"), func(target, _ string, _ bool) bool {
		targets = append(targets, target)
		return false
	})
	if len(targets) != 1 || targets[0] != "/index" {
		t.Fatalf("malformed follow-up: targets = %v", targets)
	}
}

func TestAppViewPipelinedHTTP(t *testing.T) {
	p := viewPkt(reqA + reqB)
	if off := p.HTTPNextRequestOffset(); off != len(reqA) {
		t.Fatalf("HTTPNextRequestOffset = %d, want %d", off, len(reqA))
	}
	// Memoized: repeat hits are alloc-free and survive payload mutation
	// until the lifecycle clears the view.
	if n := testing.AllocsPerRun(100, func() {
		if p.HTTPNextRequestOffset() != len(reqA) {
			t.Fatal("memoized offset lost")
		}
	}); n != 0 {
		t.Fatalf("memoized offset lookup allocates %v/op, want 0", n)
	}
	p.TCP.Payload = []byte(reqA)
	if off := p.HTTPNextRequestOffset(); off != len(reqA) {
		t.Fatalf("expected the memoized offset, got %d", off)
	}
	p.ClearAppView()
	if off := p.HTTPNextRequestOffset(); off != 0 {
		t.Fatalf("after ClearAppView offset = %d, want 0", off)
	}

	// MatchHTTPRequests reaches the follow-up request a first-request-only
	// censor would miss.
	q := viewPkt(reqB + reqA)
	if !q.MatchHTTPRequests(func(_, host string, hok bool) bool {
		return hok && host == "blocked.example"
	}) {
		t.Fatal("pipelined forbidden Host not matched")
	}
	if q.MatchHTTPRequests(func(_, host string, hok bool) bool {
		return hok && host == "missing.example"
	}) {
		t.Fatal("matched a Host no request carries")
	}
	// Anchoring: no leading request line, no matches at all.
	r := viewPkt("junk\r\n\r\n" + reqA)
	if r.MatchHTTPRequests(func(string, string, bool) bool { return true }) {
		t.Fatal("matched requests in an unanchored payload")
	}
}

func TestAppViewTLSAndDNS(t *testing.T) {
	// A hand-built minimal SNI check goes through the same parser the apps
	// package re-exports; here just confirm view methods wire up and
	// memoize independently of the HTTP fields.
	p := viewPkt(reqA)
	if _, ok := p.TLSServerName(); ok {
		t.Fatal("extracted SNI from an HTTP request")
	}
	if _, ok := p.DNSQueryName(); ok {
		t.Fatal("extracted a DNS name from an HTTP request")
	}
	if host, ok := p.HTTPHostHeader(); !ok || host != "blocked.example" {
		t.Fatalf("HTTP view disturbed by TLS/DNS lookups: %q, %v", host, ok)
	}
}
