// Package packet implements the wire formats Geneva manipulates: IPv4 and
// IPv6 headers, TCP (including options), and UDP, with checksum computation
// over the appropriate pseudo-headers.
//
// The design follows gopacket's layered model in miniature: each layer type
// has Marshal/Unmarshal methods that are exact inverses, and a Packet ties an
// IP header to a TCP segment. Unlike gopacket, everything here is pure
// stdlib and allocation-light, because the Geneva engine clones and mutates
// packets in tight loops during genetic training.
//
// Geneva is deliberately agnostic to packet semantics (§4.1 of the paper):
// it recomputes checksums and lengths after tampering unless the tampered
// field is itself a checksum or length, in which case the corrupt value is
// preserved. The Marshal methods honor that contract via the fix-up flags on
// each header type.
package packet
