package packet

import (
	"encoding/binary"
	"testing"
)

// TestUDPZeroChecksumTransmitsAsFFFF is the RFC 768 regression test: a
// checksum that computes to 0x0000 must be transmitted as 0xFFFF, because a
// wire value of zero means "no checksum". The payload is crafted so the
// one's-complement sum of pseudo-header + datagram folds to 0xFFFF: with
// all-zero addresses and ports, the non-zero terms are proto (17), the
// pseudo-header length (10), the length field (10), and the payload 0xFFDA —
// 17 + 10 + 10 + 0xFFDA = 0xFFFF, whose complement is 0.
func TestUDPZeroChecksumTransmitsAsFFFF(t *testing.T) {
	zero := []byte{0, 0, 0, 0}
	u := UDP{Payload: []byte{0xff, 0xda}}
	wire, err := u.Marshal(zero, zero)
	if err != nil {
		t.Fatal(err)
	}
	// Prove the crafted payload actually exercises the edge: the raw
	// transport checksum of this datagram is zero.
	var probe [udpHeaderLen + 2]byte
	binary.BigEndian.PutUint16(probe[4:], u.Length)
	copy(probe[udpHeaderLen:], u.Payload)
	if raw := transportChecksum(zero, zero, ProtoUDP, probe[:]); raw != 0 {
		t.Fatalf("crafted payload no longer computes to zero (got %#04x); the test lost its edge case", raw)
	}
	if got := binary.BigEndian.Uint16(wire[6:]); got != 0xffff {
		t.Errorf("computed-zero checksum transmitted as %#04x, want 0xffff", got)
	}
	if u.Checksum != 0xffff {
		t.Errorf("Checksum field = %#04x, want 0xffff", u.Checksum)
	}
	var back UDP
	if err := back.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if !back.ChecksumValid(zero, zero) {
		t.Error("0xffff-substituted checksum rejected by ChecksumValid")
	}
}

func TestUDPChecksumValid(t *testing.T) {
	src := []byte{10, 1, 0, 2}
	dst := []byte{198, 51, 100, 9}
	u := UDP{SrcPort: 40000, DstPort: 53, Payload: []byte("dns query bytes")}
	wire, err := u.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var back UDP
	if err := back.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if !back.ChecksumValid(src, dst) {
		t.Error("fresh datagram failed validation")
	}
	// Flip a payload bit: must be detected.
	back.Payload[0] ^= 0x01
	if back.ChecksumValid(src, dst) {
		t.Error("corrupted payload passed validation")
	}
	back.Payload[0] ^= 0x01
	// RFC 768: a wire checksum of zero means the sender opted out.
	back.Checksum = 0
	if !back.ChecksumValid(src, dst) {
		t.Error("no-checksum datagram (0) was rejected")
	}
}
