package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	addrA = netip.MustParseAddr("10.0.0.1")
	addrB = netip.MustParseAddr("203.0.113.7")
)

func TestIPv4MarshalUnmarshalRoundtrip(t *testing.T) {
	in := IPv4{
		TOS: 0x10, ID: 0xbeef, Flags: IPv4DontFrag, FragOff: 0,
		TTL: 51, Protocol: ProtoTCP, Src: addrA, Dst: addrB,
	}
	payload := []byte("hello world")
	wire, err := in.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	var out IPv4
	got, err := out.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
	if out.Src != addrA || out.Dst != addrB {
		t.Errorf("addrs = %s -> %s", out.Src, out.Dst)
	}
	if out.TTL != 51 || out.Protocol != ProtoTCP || out.ID != 0xbeef {
		t.Errorf("fields did not survive: %+v", out)
	}
	if out.Length != uint16(20+len(payload)) {
		t.Errorf("Length = %d, want %d", out.Length, 20+len(payload))
	}
}

func TestIPv4ChecksumComputedAndValid(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB}
	wire, err := ip.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(wire[:20]) != 0 {
		t.Error("serialized header does not checksum to zero")
	}
	var out IPv4
	if _, err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if !out.ChecksumValid() {
		t.Error("ChecksumValid = false for a freshly marshaled header")
	}
}

func TestIPv4RawChecksumPreservesCorruption(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB,
		Checksum: 0x1234, RawChecksum: true}
	wire, err := ip.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out IPv4
	if _, err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if out.Checksum != 0x1234 {
		t.Errorf("Checksum = %#x, want the tampered %#x to survive", out.Checksum, 0x1234)
	}
	if out.ChecksumValid() {
		t.Error("a deliberately corrupted checksum validated")
	}
}

func TestIPv4RawLengthPreservesCorruption(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB,
		Length: 9999, RawLength: true}
	wire, err := ip.Marshal([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	var out IPv4
	payload, err := out.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out.Length != 9999 {
		t.Errorf("Length = %d, want tampered 9999", out.Length)
	}
	// Implausible length falls back to the real data bounds.
	if !bytes.Equal(payload, []byte("abc")) {
		t.Errorf("payload = %q", payload)
	}
}

func TestIPv4OptionsPadded(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB,
		Options: []byte{0x44, 0x06, 0x00}} // 3 bytes -> padded to 4
	wire, err := ip.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 24 {
		t.Fatalf("header length = %d, want 24", len(wire))
	}
	var out IPv4
	if _, err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if out.IHL != 6 {
		t.Errorf("IHL = %d, want 6", out.IHL)
	}
}

func TestIPv4Truncated(t *testing.T) {
	var ip IPv4
	if _, err := ip.Unmarshal(make([]byte, 19)); err == nil {
		t.Error("want error for 19-byte header")
	}
}

func TestIPv4BadIHL(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: addrA, Dst: addrB}
	wire, _ := ip.Marshal(nil)
	wire[0] = 0x43 // IHL 3 < 5
	var out IPv4
	if _, err := out.Unmarshal(wire); err == nil {
		t.Error("want error for IHL < 5")
	}
}

func TestIPv4RequiresV4Addrs(t *testing.T) {
	ip := IPv4{Src: netip.MustParseAddr("::1"), Dst: addrB}
	if _, err := ip.Marshal(nil); err == nil {
		t.Error("want error for IPv6 address in IPv4 header")
	}
}

func TestIPv4RoundtripProperty(t *testing.T) {
	f := func(tos, ttl uint8, id uint16, flags uint8, frag uint16, payload []byte) bool {
		in := IPv4{
			TOS: tos, ID: id, Flags: flags & 0x7, FragOff: frag & 0x1fff,
			TTL: ttl, Protocol: ProtoTCP, Src: addrA, Dst: addrB,
		}
		wire, err := in.Marshal(payload)
		if err != nil {
			return false
		}
		var out IPv4
		got, err := out.Unmarshal(wire)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload) &&
			out.TOS == in.TOS && out.TTL == in.TTL && out.ID == in.ID &&
			out.Flags == in.Flags && out.FragOff == in.FragOff &&
			out.Src == in.Src && out.Dst == in.Dst && out.ChecksumValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	if got, want := Checksum([]byte{0xab}), ^uint16(0xab00); got != want {
		t.Errorf("Checksum odd = %#x, want %#x", got, want)
	}
}
