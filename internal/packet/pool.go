package packet

import (
	"net/netip"
	"sync"
)

// The trial hot path (serialize -> impair -> censor -> deliver) used to
// allocate a fresh Packet per hop and a fresh byte slice per serialization.
// This file gives the packet layer a recycled lifecycle instead:
//
//	p := packet.Get(...)   // pooled packet, initialized like New
//	...                    // travels through the simulator
//	packet.Put(p)          // terminal point relinquishes it
//
// Ownership contract: Put means the caller — and everything the caller handed
// the packet to — holds no reference to p or to any slice reachable from it
// (Payload, IP.Options, TCP.Options[i].Data). Components that need bytes
// beyond the packet's lifetime must copy them out (every endpoint, censor,
// and app in this repo already does) or take a Clone(), which remains the
// deep-copy escape hatch and never shares buffers.
//
// Recycling is opt-in at the simulator layer (netsim.Network.RecyclePackets):
// code that drives a Network directly and retains delivered packets keeps the
// old allocate-and-forget behavior by default.

var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// Get returns a pooled packet initialized exactly like New: a minimally
// valid TCP/IPv4 packet between two endpoints, with any buffer capacity left
// over from the packet's previous life retained for reuse.
func Get(src, dst netip.Addr, srcPort, dstPort uint16) *Packet {
	p := pktPool.Get().(*Packet)
	p.Reset()
	p.IP.TTL = 64
	p.IP.Protocol = ProtoTCP
	p.IP.Src = src
	p.IP.Dst = dst
	p.TCP.SrcPort = srcPort
	p.TCP.DstPort = dstPort
	p.TCP.Window = 65535
	return p
}

// Put recycles p. Safe on nil. See the ownership contract above: after Put
// the caller must not touch p or any slice it obtained from p.
func Put(p *Packet) {
	if p == nil {
		return
	}
	pktPool.Put(p)
}

// Reset zeroes the packet to its fresh state while keeping the allocated
// capacity of its option and payload buffers (and of each recycled option
// slot's Data) for the next use.
func (p *Packet) Reset() {
	ipOpts := p.IP.Options[:0]
	tcpOpts := p.TCP.Options[:0]
	payload := p.TCP.Payload[:0]
	*p = Packet{}
	p.IP.Options = ipOpts
	p.TCP.Options = tcpOpts
	p.TCP.Payload = payload
}

// CopyFrom deep-copies src into p, reusing p's existing buffers instead of
// allocating. p and src must be distinct packets. Afterwards p shares no
// memory with src (same guarantee Clone gives its result).
func (p *Packet) CopyFrom(src *Packet) {
	ipOpts := p.IP.Options
	tcpOpts := p.TCP.Options
	payload := p.TCP.Payload
	*p = *src
	p.view = appView{} // views never propagate to copies; see appview.go
	p.IP.Options = append(ipOpts[:0], src.IP.Options...)
	p.TCP.Payload = append(payload[:0], src.TCP.Payload...)
	n := len(src.TCP.Options)
	if cap(tcpOpts) < n {
		tcpOpts = append(tcpOpts[:cap(tcpOpts)], make([]Option, n-cap(tcpOpts))...)
	}
	tcpOpts = tcpOpts[:n]
	for i := range src.TCP.Options {
		o := &src.TCP.Options[i]
		tcpOpts[i].Kind = o.Kind
		tcpOpts[i].Data = append(tcpOpts[i].Data[:0], o.Data...)
	}
	p.TCP.Options = tcpOpts
}

// ClonePooled is Clone backed by the pool: the copy is deep (no shared
// buffers) but lives on a recycled Packet, so it must eventually be Put or
// handed to a component that will.
func (p *Packet) ClonePooled() *Packet {
	q := pktPool.Get().(*Packet)
	q.CopyFrom(p)
	return q
}

// wireBufPool recycles scratch serialization buffers for callers (checksum
// validation, DPI taps) that need wire bytes only transiently.
var wireBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 128)
	return &b
}}

func getWireBuf() *[]byte  { return wireBufPool.Get().(*[]byte) }
func putWireBuf(b *[]byte) { wireBufPool.Put(b) }
