package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ipv6HeaderLen is the fixed IPv6 header length (extension headers are out
// of scope for the experiments, which all run over IPv4 as in the paper).
const ipv6HeaderLen = 40

// IPv6 is a fixed IPv6 header. It exists because the paper's Geneva
// extension adds IPv6 tamper support (§4, Appendix); the evaluation itself
// runs over IPv4.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	Length       uint16 // payload length
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr

	RawLength bool
}

// Marshal appends the serialized header followed by payload.
func (ip *IPv6) Marshal(payload []byte) ([]byte, error) {
	if !ip.Src.Is6() || !ip.Dst.Is6() {
		return nil, fmt.Errorf("%w: IPv6 header requires 16-byte addresses", ErrBadHeader)
	}
	if !ip.RawLength {
		ip.Length = uint16(len(payload))
	}
	b := make([]byte, ipv6HeaderLen, ipv6HeaderLen+len(payload))
	binary.BigEndian.PutUint32(b[0:], 6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xfffff)
	binary.BigEndian.PutUint16(b[4:], ip.Length)
	b[6] = ip.NextHeader
	b[7] = ip.HopLimit
	src, dst := ip.Src.As16(), ip.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	return append(b, payload...), nil
}

// Unmarshal parses a fixed IPv6 header and returns the payload.
func (ip *IPv6) Unmarshal(data []byte) ([]byte, error) {
	if len(data) < ipv6HeaderLen {
		return nil, ErrTruncated
	}
	w := binary.BigEndian.Uint32(data[0:])
	if w>>28 != 6 {
		return nil, fmt.Errorf("%w: version %d", ErrBadHeader, w>>28)
	}
	ip.TrafficClass = uint8(w >> 20)
	ip.FlowLabel = w & 0xfffff
	ip.Length = binary.BigEndian.Uint16(data[4:])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	ip.Src = netip.AddrFrom16([16]byte(data[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	end := ipv6HeaderLen + int(ip.Length)
	if end > len(data) {
		end = len(data)
	}
	return data[ipv6HeaderLen:end], nil
}

func (ip *IPv6) String() string {
	return fmt.Sprintf("IPv6 %s -> %s hop=%d next=%d", ip.Src, ip.Dst, ip.HopLimit, ip.NextHeader)
}
