package packet

import (
	"encoding/binary"
	"fmt"
)

// udpHeaderLen is the fixed UDP header length.
const udpHeaderLen = 8

// UDP is a UDP datagram. It exists for the paper's Geneva UDP/DNS tamper
// extension (§4, Appendix); the evaluated protocols all run over TCP.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
	Payload          []byte

	RawLength   bool
	RawChecksum bool
}

// Marshal serializes the datagram with the pseudo-header for src -> dst.
func (u *UDP) Marshal(src, dst []byte) ([]byte, error) {
	if !u.RawLength {
		u.Length = uint16(udpHeaderLen + len(u.Payload))
	}
	b := make([]byte, udpHeaderLen+len(u.Payload))
	binary.BigEndian.PutUint16(b[0:], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:], u.DstPort)
	binary.BigEndian.PutUint16(b[4:], u.Length)
	copy(b[udpHeaderLen:], u.Payload)
	if !u.RawChecksum {
		u.Checksum = transportChecksum(src, dst, ProtoUDP, b)
		if u.Checksum == 0 {
			u.Checksum = 0xffff // RFC 768: zero means "no checksum"
		}
	}
	binary.BigEndian.PutUint16(b[6:], u.Checksum)
	return b, nil
}

// ChecksumValid reports whether the datagram's checksum is correct for the
// given pseudo-header addresses. RFC 768 gives the zero value two meanings:
// on the wire, 0 means the sender computed no checksum (always accepted
// here), and a checksum that computes to 0 is transmitted as 0xffff — so
// validation applies the same substitution before comparing.
func (u *UDP) ChecksumValid(src, dst []byte) bool {
	if u.Checksum == 0 {
		return true // sender opted out of checksumming
	}
	b := make([]byte, udpHeaderLen+len(u.Payload))
	binary.BigEndian.PutUint16(b[0:], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:], u.DstPort)
	binary.BigEndian.PutUint16(b[4:], u.Length)
	copy(b[udpHeaderLen:], u.Payload)
	want := transportChecksum(src, dst, ProtoUDP, b)
	if want == 0 {
		want = 0xffff
	}
	return u.Checksum == want
}

// Unmarshal parses a UDP datagram.
func (u *UDP) Unmarshal(data []byte) error {
	if len(data) < udpHeaderLen {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:])
	u.DstPort = binary.BigEndian.Uint16(data[2:])
	u.Length = binary.BigEndian.Uint16(data[4:])
	u.Checksum = binary.BigEndian.Uint16(data[6:])
	end := int(u.Length)
	if end < udpHeaderLen || end > len(data) {
		end = len(data)
	}
	u.Payload = append([]byte(nil), data[udpHeaderLen:end]...)
	return nil
}

func (u *UDP) String() string {
	return fmt.Sprintf("UDP %d->%d len=%d", u.SrcPort, u.DstPort, len(u.Payload))
}
