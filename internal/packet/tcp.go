package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// tcpHeaderBase is the length of a TCP header without options.
const tcpHeaderBase = 20

// TCP is a TCP segment: header, options, and payload.
//
// Marshal recomputes DataOff and Checksum unless the Raw flags are set;
// Geneva's tamper{TCP:chksum:corrupt} sets RawChecksum so the corrupted
// value survives (the basis of "insertion packets", §7).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []Option
	Payload          []byte

	RawChecksum bool // keep Checksum as-is during Marshal
	RawDataOff  bool // keep DataOff as-is during Marshal
}

// Option is a single TCP option in kind/length/data form. EOL and NOP have
// no length or data on the wire.
type Option struct {
	Kind byte
	Data []byte
}

// Well-known TCP option kinds.
const (
	OptEOL       = 0
	OptNOP       = 1
	OptMSS       = 2
	OptWScale    = 3
	OptSACKOK    = 4
	OptSACK      = 5
	OptTimestamp = 8
	OptMD5       = 19
	OptUTO       = 28
	OptAltChksum = 14
)

// optionsLen returns the padded wire length of the option list.
func (t *TCP) optionsLen() int {
	n := 0
	for _, o := range t.Options {
		if o.Kind == OptEOL || o.Kind == OptNOP {
			n++
		} else {
			n += 2 + len(o.Data)
		}
	}
	if pad := n % 4; pad != 0 {
		n += 4 - pad
	}
	return n
}

// HeaderLen returns the header length in bytes implied by the options.
func (t *TCP) HeaderLen() int { return tcpHeaderBase + t.optionsLen() }

// Marshal serializes the segment, computing the checksum with the
// pseudo-header for src -> dst (4- or 16-byte addresses).
func (t *TCP) Marshal(src, dst []byte) ([]byte, error) {
	return t.MarshalAppend(make([]byte, 0, t.HeaderLen()+len(t.Payload)), src, dst)
}

// MarshalAppend appends the serialized segment to buf and returns the
// extended slice, allocating only if buf lacks capacity. Semantics are
// otherwise identical to Marshal.
func (t *TCP) MarshalAppend(buf, src, dst []byte) ([]byte, error) {
	hlen := t.HeaderLen()
	if !t.RawDataOff {
		t.DataOff = uint8(hlen / 4)
	}
	start := len(buf)
	buf = append(buf, make([]byte, hlen+len(t.Payload))...)
	b := buf[start:]
	binary.BigEndian.PutUint16(b[0:], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:], t.DstPort)
	binary.BigEndian.PutUint32(b[4:], t.Seq)
	binary.BigEndian.PutUint32(b[8:], t.Ack)
	b[12] = t.DataOff << 4
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:], t.Window)
	binary.BigEndian.PutUint16(b[18:], t.Urgent)
	off := tcpHeaderBase
	for _, o := range t.Options {
		switch o.Kind {
		case OptEOL, OptNOP:
			b[off] = o.Kind
			off++
		default:
			b[off] = o.Kind
			b[off+1] = byte(2 + len(o.Data))
			copy(b[off+2:], o.Data)
			off += 2 + len(o.Data)
		}
	}
	// Remaining option bytes are already zero (EOL padding).
	copy(b[hlen:], t.Payload)
	if !t.RawChecksum {
		t.Checksum = transportChecksum(src, dst, ProtoTCP, b)
	}
	binary.BigEndian.PutUint16(b[16:], t.Checksum)
	return buf, nil
}

// Unmarshal parses a TCP segment. Option and payload buffers already held
// by t are reused when they have capacity, so parsing into a recycled
// segment does not allocate; the zero value behaves as before.
func (t *TCP) Unmarshal(data []byte) error {
	if len(data) < tcpHeaderBase {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:])
	t.DstPort = binary.BigEndian.Uint16(data[2:])
	t.Seq = binary.BigEndian.Uint32(data[4:])
	t.Ack = binary.BigEndian.Uint32(data[8:])
	t.DataOff = data[12] >> 4
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:])
	t.Checksum = binary.BigEndian.Uint16(data[16:])
	t.Urgent = binary.BigEndian.Uint16(data[18:])
	hlen := int(t.DataOff) * 4
	if hlen < tcpHeaderBase || hlen > len(data) {
		return fmt.Errorf("%w: data offset %d", ErrBadHeader, t.DataOff)
	}
	t.Options = t.Options[:0]
	opts := data[tcpHeaderBase:hlen]
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case OptEOL:
			opts = nil
		case OptNOP:
			t.AddOption(OptNOP)
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return fmt.Errorf("%w: option %d", ErrBadHeader, kind)
			}
			l := int(opts[1])
			t.AddOption(kind, opts[2:l]...)
			opts = opts[l:]
		}
	}
	t.Payload = append(t.Payload[:0], data[hlen:]...)
	return nil
}

// AddOption appends an option, copying data into a recycled slot's Data
// buffer when one is available so repeated build/reset cycles (pooled
// packets, handshake senders) stop allocating once warm.
func (t *TCP) AddOption(kind byte, data ...byte) {
	if n := len(t.Options); n < cap(t.Options) {
		t.Options = t.Options[:n+1]
		o := &t.Options[n]
		o.Kind = kind
		o.Data = append(o.Data[:0], data...)
		return
	}
	t.Options = append(t.Options, Option{Kind: kind, Data: append([]byte(nil), data...)})
}

// ChecksumValid reports whether the segment's checksum is correct for the
// given pseudo-header addresses. The serialization it implies happens into a
// pooled scratch buffer, so validating a received packet does not allocate.
func (t *TCP) ChecksumValid(src, dst []byte) bool {
	savedCk, savedRaw := t.Checksum, t.RawChecksum
	t.RawChecksum = false
	buf := getWireBuf()
	b, err := t.MarshalAppend((*buf)[:0], src, dst)
	good := err == nil && t.Checksum == savedCk
	*buf = b[:0]
	putWireBuf(buf)
	t.Checksum, t.RawChecksum = savedCk, savedRaw
	return good
}

// Option returns the first option of the given kind, or nil.
func (t *TCP) Option(kind byte) *Option {
	for i := range t.Options {
		if t.Options[i].Kind == kind {
			return &t.Options[i]
		}
	}
	return nil
}

// RemoveOption deletes all options of the given kind and reports whether any
// were present.
func (t *TCP) RemoveOption(kind byte) bool {
	out := t.Options[:0]
	removed := false
	for _, o := range t.Options {
		if o.Kind == kind {
			removed = true
			continue
		}
		out = append(out, o)
	}
	// Compaction shifts surviving options down, so the vacated tail slots
	// alias the survivors' Data; clear them or AddOption's slot reuse could
	// scribble over a live option.
	if removed {
		tail := t.Options[len(out):]
		for i := range tail {
			tail[i] = Option{}
		}
	}
	t.Options = out
	return removed
}

// SetOption replaces the first option of the given kind or appends one.
func (t *TCP) SetOption(kind byte, data []byte) {
	if o := t.Option(kind); o != nil {
		o.Data = data
		return
	}
	t.Options = append(t.Options, Option{Kind: kind, Data: data})
}

// FlagsString renders the flag bits in Geneva's letter notation (e.g. "SA").
func FlagsString(f uint8) string {
	var b strings.Builder
	for _, fl := range []struct {
		bit  uint8
		name byte
	}{{FlagFIN, 'F'}, {FlagSYN, 'S'}, {FlagRST, 'R'}, {FlagPSH, 'P'}, {FlagACK, 'A'}, {FlagURG, 'U'}} {
		if f&fl.bit != 0 {
			b.WriteByte(fl.name)
		}
	}
	return b.String()
}

// ParseFlags converts Geneva letter notation to flag bits. Unknown letters
// are an error; the empty string is valid (null flags, Strategy 11).
func ParseFlags(s string) (uint8, error) {
	var f uint8
	for _, c := range s {
		switch c {
		case 'F':
			f |= FlagFIN
		case 'S':
			f |= FlagSYN
		case 'R':
			f |= FlagRST
		case 'P':
			f |= FlagPSH
		case 'A':
			f |= FlagACK
		case 'U':
			f |= FlagURG
		default:
			return 0, fmt.Errorf("packet: unknown TCP flag %q", c)
		}
	}
	return f, nil
}

func (t *TCP) String() string {
	fl := FlagsString(t.Flags)
	if fl == "" {
		fl = "-"
	}
	return fmt.Sprintf("TCP %d->%d [%s] seq=%d ack=%d win=%d len=%d",
		t.SrcPort, t.DstPort, fl, t.Seq, t.Ack, t.Window, len(t.Payload))
}
