package packet

// appView memoizes the application-layer fields extracted from a packet's
// TCP payload. Before this existed, every censor on the path (the fleet
// stacks several), internal/apps, and the differential classifier
// independently re-scanned the same payload for the same fields —
// string-converting it each time. Now the first accessor runs the byte
// parser (appdata.go) and the result is cached on the packet; subsequent
// accessors are two bit tests.
//
// Invalidation contract: the view is valid only while TCP.Payload is
// unchanged. Every entry point of the packet lifecycle clears it —
//
//	Reset      (*p = Packet{} zeroes the view field)
//	CopyFrom   (and therefore ClonePooled)
//	Clone
//	ParseInto  (and therefore Parse)
//
// — so pooled recycling can never serve a stale Host/SNI/QName. Views
// deliberately do not propagate to copies even though the bytes match at
// copy time: the Geneva fragment action re-slices a clone's payload in
// place, which would instantly invalidate an inherited view. Code that
// mutates TCP.Payload on a live packet outside those entry points must call
// ClearAppView (the fragment action in internal/core does).
type appView struct {
	tried      uint8 // parse attempted (memoized even on failure)
	valid      uint8 // parse succeeded; field below is meaningful
	httpNext   int   // offset of a pipelined follow-up request (vHTTPNext)
	httpTarget string
	httpHost   string
	sni        string
	dnsQName   string
}

const (
	vHTTPTarget uint8 = 1 << iota
	vHTTPHost
	vSNI
	vDNSQName
	vHTTPNext
)

// ClearAppView drops the memoized application-layer view. Call after
// mutating TCP.Payload on a packet that may already have been inspected;
// the pooled lifecycle entry points (Reset, CopyFrom, Clone, ParseInto)
// already do.
func (p *Packet) ClearAppView() { p.view = appView{} }

// HTTPRequestTarget returns the request path+query of an HTTP request line
// in the packet's payload, if one is fully present. Parsed at most once per
// packet lifecycle (see appView).
func (p *Packet) HTTPRequestTarget() (string, bool) {
	if p.view.tried&vHTTPTarget == 0 {
		p.view.tried |= vHTTPTarget
		if t, ok := ParseHTTPRequestTarget(p.TCP.Payload); ok {
			p.view.httpTarget = t
			p.view.valid |= vHTTPTarget
		}
	}
	return p.view.httpTarget, p.view.valid&vHTTPTarget != 0
}

// HTTPHostHeader returns the Host header value of an HTTP request in the
// packet's payload, if fully present. Memoized like HTTPRequestTarget.
func (p *Packet) HTTPHostHeader() (string, bool) {
	if p.view.tried&vHTTPHost == 0 {
		p.view.tried |= vHTTPHost
		if h, ok := ParseHTTPHostHeader(p.TCP.Payload); ok {
			p.view.httpHost = h
			p.view.valid |= vHTTPHost
		}
	}
	return p.view.httpHost, p.view.valid&vHTTPHost != 0
}

// HTTPNextRequestOffset returns the payload offset where a pipelined
// (keep-alive) follow-up HTTP request begins, or 0 when the payload holds at
// most one request. Memoized like HTTPRequestTarget: the common case — every
// single-request payload — is answered by one bit test after the first call.
func (p *Packet) HTTPNextRequestOffset() int {
	if p.view.tried&vHTTPNext == 0 {
		p.view.tried |= vHTTPNext
		if off := NextHTTPRequestOffset(p.TCP.Payload); off > 0 {
			p.view.httpNext = off
			p.view.valid |= vHTTPNext
		}
	}
	if p.view.valid&vHTTPNext == 0 {
		return 0
	}
	return p.view.httpNext
}

// MatchHTTPRequests reports whether match returns true for any HTTP request
// pipelined in the packet's payload. The first request is answered from the
// memoized view (the parse-once contract all censors share); follow-up
// requests — present only when a keep-alive session coalesces several
// requests into one segment — are walked with the byte parsers. The payload
// must begin with a well-formed request line or nothing matches (the DPI
// anchor, §6).
func (p *Packet) MatchHTTPRequests(match func(target, host string, hok bool) bool) bool {
	target, ok := p.HTTPRequestTarget()
	if !ok {
		return false
	}
	host, hok := p.HTTPHostHeader()
	if match(target, host, hok) {
		return true
	}
	off := p.HTTPNextRequestOffset()
	if off <= 0 {
		return false
	}
	return VisitHTTPRequests(p.TCP.Payload[off:], match)
}

// TLSServerName returns the SNI from a ClientHello record in the packet's
// payload, if present and complete. Memoized like HTTPRequestTarget.
func (p *Packet) TLSServerName() (string, bool) {
	if p.view.tried&vSNI == 0 {
		p.view.tried |= vSNI
		if s, ok := ParseTLSServerName(p.TCP.Payload); ok {
			p.view.sni = s
			p.view.valid |= vSNI
		}
	}
	return p.view.sni, p.view.valid&vSNI != 0
}

// DNSQueryName returns the first question name of a DNS-over-TCP message in
// the packet's payload, if well-formed. Memoized like HTTPRequestTarget.
func (p *Packet) DNSQueryName() (string, bool) {
	if p.view.tried&vDNSQName == 0 {
		p.view.tried |= vDNSQName
		if q, ok := ParseDNSQueryName(p.TCP.Payload); ok {
			p.view.dnsQName = q
			p.view.valid |= vDNSQName
		}
	}
	return p.view.dnsQName, p.view.valid&vDNSQName != 0
}
