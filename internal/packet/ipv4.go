package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IP protocol numbers used throughout the simulator.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// IPv4 flag bits (in the 3-bit flags field).
const (
	IPv4EvilBit    = 0x4 // RFC 3514, kept for tamper completeness
	IPv4DontFrag   = 0x2
	IPv4MoreFrag   = 0x1
	ipv4HeaderBase = 20
)

// Errors returned by the unmarshalers.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrBadHeader = errors.New("packet: malformed header")
)

// IPv4 is an IPv4 header. The zero value marshals to a minimal, valid
// header once Src/Dst are set; Marshal fills in Version, IHL, TotalLength
// and HeaderChecksum unless the corresponding Raw flag is set (Geneva's
// tamper{corrupt} on a length or checksum must survive serialization).
type IPv4 struct {
	Version  uint8 // 4 unless tampered
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	Length   uint16 // total length
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr
	Options  []byte // raw, padded to 32-bit boundary by Marshal

	// RawLength and RawChecksum suppress recomputation of the respective
	// fields during Marshal, preserving tampered values.
	RawLength   bool
	RawChecksum bool
}

// HeaderLen returns the header length in bytes implied by the options.
func (ip *IPv4) HeaderLen() int {
	opt := len(ip.Options)
	if pad := opt % 4; pad != 0 {
		opt += 4 - pad
	}
	return ipv4HeaderBase + opt
}

// Marshal appends the serialized header followed by payload and returns the
// resulting datagram. Version, IHL, Length and Checksum are recomputed
// unless their Raw flags are set.
func (ip *IPv4) Marshal(payload []byte) ([]byte, error) {
	return ip.MarshalAppend(make([]byte, 0, ip.HeaderLen()+len(payload)), payload)
}

// MarshalAppend appends the serialized header followed by payload to buf,
// allocating only if buf lacks capacity. Semantics are otherwise identical
// to Marshal.
func (ip *IPv4) MarshalAppend(buf, payload []byte) ([]byte, error) {
	buf, err := ip.appendHeader(buf, len(payload))
	if err != nil {
		return nil, err
	}
	return append(buf, payload...), nil
}

// appendHeader appends just the header, computing Length for a payload of
// payloadLen bytes (which lets a caller serialize the transport segment into
// the same buffer afterwards).
func (ip *IPv4) appendHeader(buf []byte, payloadLen int) ([]byte, error) {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return nil, fmt.Errorf("%w: IPv4 header requires 4-byte addresses", ErrBadHeader)
	}
	hlen := ip.HeaderLen()
	if ip.Version == 0 {
		ip.Version = 4
	}
	ip.IHL = uint8(hlen / 4)
	if !ip.RawLength {
		ip.Length = uint16(hlen + payloadLen)
	}
	start := len(buf)
	buf = append(buf, make([]byte, hlen)...)
	b := buf[start:]
	b[0] = ip.Version<<4 | ip.IHL
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:], ip.Length)
	binary.BigEndian.PutUint16(b[4:], ip.ID)
	binary.BigEndian.PutUint16(b[6:], uint16(ip.Flags&0x7)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	src, dst := ip.Src.As4(), ip.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	copy(b[20:], ip.Options)
	if !ip.RawChecksum {
		ip.Checksum = Checksum(b[:hlen])
	}
	binary.BigEndian.PutUint16(b[10:], ip.Checksum)
	return buf, nil
}

// Unmarshal parses an IPv4 header from data and returns the payload bytes
// (bounded by the header's total length when it is plausible).
func (ip *IPv4) Unmarshal(data []byte) ([]byte, error) {
	if len(data) < ipv4HeaderBase {
		return nil, ErrTruncated
	}
	ip.Version = data[0] >> 4
	ip.IHL = data[0] & 0xf
	hlen := int(ip.IHL) * 4
	if hlen < ipv4HeaderBase || hlen > len(data) {
		return nil, fmt.Errorf("%w: IHL %d", ErrBadHeader, ip.IHL)
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:])
	ip.ID = binary.BigEndian.Uint16(data[4:])
	ff := binary.BigEndian.Uint16(data[6:])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	ip.Options = append(ip.Options[:0], data[ipv4HeaderBase:hlen]...)
	end := int(ip.Length)
	if end < hlen || end > len(data) {
		end = len(data) // tolerate tampered lengths; DPI boxes do the same
	}
	return data[hlen:end], nil
}

// ChecksumValid reports whether the header checksum in a serialized header
// is correct. It re-marshals with RawChecksum set, so ip must be unchanged
// since Unmarshal.
func (ip *IPv4) ChecksumValid() bool {
	savedCk, savedLen := ip.RawChecksum, ip.RawLength
	ip.RawChecksum, ip.RawLength = true, true
	b, err := ip.Marshal(nil)
	ip.RawChecksum, ip.RawLength = savedCk, savedLen
	if err != nil {
		return false
	}
	return Checksum(b[:ip.HeaderLen()]) == 0
}

func (ip *IPv4) String() string {
	return fmt.Sprintf("IPv4 %s -> %s ttl=%d proto=%d", ip.Src, ip.Dst, ip.TTL, ip.Protocol)
}
