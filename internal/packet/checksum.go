package packet

import "encoding/binary"

// Checksum computes the Internet checksum (RFC 1071) over data, folded to 16
// bits and complemented. An odd trailing byte is padded with zero, as the
// RFC requires.
func Checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum returns the unfolded checksum contribution of the
// IPv4/IPv6 pseudo-header used by TCP and UDP.
func pseudoHeaderSum(src, dst []byte, proto uint8, length int) uint32 {
	var sum uint32
	for i := 0; i+1 < len(src); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(src[i:]))
	}
	for i := 0; i+1 < len(dst); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(dst[i:]))
	}
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes the TCP/UDP checksum of segment with the
// pseudo-header derived from src, dst and proto. The checksum field inside
// segment must already be zeroed by the caller.
func transportChecksum(src, dst []byte, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	for len(segment) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(segment))
		segment = segment[2:]
	}
	if len(segment) == 1 {
		sum += uint32(segment[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
