package packet

import (
	"bytes"
	"encoding/binary"
	"strings"
)

// Byte-oriented application-layer parsers: the fields DPI censors extract
// from TCP payloads (HTTP request line + Host, TLS SNI, DNS question name).
// These used to live in internal/apps as string-converting helpers; every
// call paid a string(payload) copy of the whole payload before scanning it.
// The versions here scan the raw bytes and allocate only for the extracted
// field on success — and the Packet app view (appview.go) memoizes even
// that, so each field is parsed at most once per packet no matter how many
// censors inspect it. internal/apps re-exports them unchanged for callers
// that hold bare byte slices.
//
// Semantics are pinned byte-for-byte to the originals (internal/apps keeps
// differential fuzz targets proving it): all parsers fail closed to
// ("", false) on anything malformed or truncated, which per §6 makes the
// censors fail *open* — the root of the paper's segmentation strategies.

var crlf = []byte("\r\n")

// ParseHTTPRequestTarget returns the request path+query of an HTTP request
// line contained in data, if one is fully present (method GET or POST,
// line terminated by CRLF, third token starting with "HTTP/").
func ParseHTTPRequestTarget(data []byte) (string, bool) {
	if !bytes.HasPrefix(data, []byte("GET ")) && !bytes.HasPrefix(data, []byte("POST ")) {
		return "", false
	}
	end := bytes.Index(data, crlf)
	if end < 0 {
		return "", false
	}
	line := data[:end]
	// Request line tokens split on single spaces, exactly like
	// strings.Split: "GET  /x HTTP/1.1" has an empty second token and the
	// version check runs against "/x", failing as before.
	i1 := bytes.IndexByte(line, ' ') // after the method; >= 0 given the prefix check
	i2 := bytes.IndexByte(line[i1+1:], ' ')
	if i2 < 0 {
		return "", false // no third token
	}
	i2 += i1 + 1
	if !bytes.HasPrefix(line[i2+1:], []byte("HTTP/")) {
		return "", false
	}
	return string(line[i1+1 : i2]), true
}

// NextHTTPRequestOffset returns the byte offset just past the first HTTP
// request's header block in data — where a pipelined (keep-alive) follow-up
// request would begin — or 0 when data does not start with a complete
// request (no CRLFCRLF terminator) or nothing follows the terminator. The
// first request must itself parse as a request line: a payload the DPI
// engines would not recognize as HTTP has no request boundaries either.
func NextHTTPRequestOffset(data []byte) int {
	if _, ok := ParseHTTPRequestTarget(data); !ok {
		return 0
	}
	idx := bytes.Index(data, []byte("\r\n\r\n"))
	if idx < 0 {
		return 0
	}
	off := idx + 4
	if off >= len(data) {
		return 0
	}
	return off
}

// VisitHTTPRequests walks the HTTP requests pipelined in data — the first
// request and every follow-up that begins right after the previous one's
// header block — calling visit with each request's line target and the
// first Host header at or after it (hok false when none is present). It
// returns true as soon as visit does. Like the single-request parsers it is
// anchored: data must begin with a well-formed request line, and the walk
// stops at the first follow-up that does not parse — the censors' fail-open
// contract extended per request (§6).
func VisitHTTPRequests(data []byte, visit func(target, host string, hok bool) bool) bool {
	for off := 0; ; {
		seg := data[off:]
		target, ok := ParseHTTPRequestTarget(seg)
		if !ok {
			return false
		}
		host, hok := ParseHTTPHostHeader(seg)
		if visit(target, host, hok) {
			return true
		}
		next := NextHTTPRequestOffset(seg)
		if next <= 0 {
			return false
		}
		off += next
	}
}

// ParseHTTPHostHeader returns the Host header value of an HTTP request
// contained in data, if fully present (terminated by CRLF).
func ParseHTTPHostHeader(data []byte) (string, bool) {
	idx := bytes.Index(data, []byte("Host:"))
	if idx < 0 {
		return "", false
	}
	rest := data[idx+len("Host:"):]
	end := bytes.Index(rest, crlf)
	if end < 0 {
		return "", false
	}
	return string(bytes.TrimSpace(rest[:end])), true
}

// ParseTLSServerName parses a TLS record stream chunk and returns the
// server_name from a ClientHello, if present and fully contained in data.
// Like the real DPI boxes, it fails open (returns false) on truncation —
// which is why segmenting the ClientHello defeats single-packet censors.
func ParseTLSServerName(data []byte) (string, bool) {
	if len(data) < 5 || data[0] != 0x16 {
		return "", false
	}
	recLen := int(binary.BigEndian.Uint16(data[3:]))
	if 5+recLen > len(data) {
		return "", false // truncated record
	}
	hs := data[5 : 5+recLen]
	if len(hs) < 4 || hs[0] != 0x01 {
		return "", false
	}
	bodyLen := int(hs[1])<<16 | int(hs[2])<<8 | int(hs[3])
	if 4+bodyLen > len(hs) {
		return "", false
	}
	b := hs[4 : 4+bodyLen]
	// client_version(2) + random(32)
	if len(b) < 35 {
		return "", false
	}
	off := 34
	// session_id
	if off >= len(b) {
		return "", false
	}
	off += 1 + int(b[off])
	// cipher_suites
	if off+2 > len(b) {
		return "", false
	}
	off += 2 + int(binary.BigEndian.Uint16(b[off:]))
	// compression_methods
	if off >= len(b) {
		return "", false
	}
	off += 1 + int(b[off])
	// extensions
	if off+2 > len(b) {
		return "", false
	}
	extLen := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if off+extLen > len(b) {
		return "", false
	}
	exts := b[off : off+extLen]
	for len(exts) >= 4 {
		typ := binary.BigEndian.Uint16(exts)
		l := int(binary.BigEndian.Uint16(exts[2:]))
		if 4+l > len(exts) {
			return "", false
		}
		if typ == 0 {
			e := exts[4 : 4+l]
			if len(e) < 5 {
				return "", false
			}
			nameLen := int(binary.BigEndian.Uint16(e[3:]))
			if nameLen == 0 || 5+nameLen > len(e) {
				return "", false // empty or truncated name: fail open
			}
			return string(e[5 : 5+nameLen]), true
		}
		exts = exts[4+l:]
	}
	return "", false
}

// ParseDNSQueryName extracts the first question name from a DNS-over-TCP
// stream chunk (RFC 7766 length prefix + message). It fails closed to
// ("", false) on anything malformed or truncated.
func ParseDNSQueryName(data []byte) (string, bool) {
	if len(data) < 2 {
		return "", false
	}
	msgLen := int(binary.BigEndian.Uint16(data))
	msg := data[2:]
	if len(msg) > msgLen {
		msg = msg[:msgLen]
	}
	if len(msg) < 12 {
		return "", false
	}
	qd := binary.BigEndian.Uint16(msg[4:])
	if qd == 0 {
		return "", false
	}
	name, ok := decodeDNSQuestionName(msg, 12)
	if name == "" {
		return "", false // a bare root query: nothing for DPI to match
	}
	return name, ok
}

// decodeDNSQuestionName decodes the label sequence at off into a dotted
// name. Compression pointers never appear in questions; they are treated as
// malformed so the censor stays fail-open.
func decodeDNSQuestionName(msg []byte, off int) (string, bool) {
	start := off
	// First pass: validate the label chain and size the output, so the
	// success path allocates exactly once.
	total := 0
	for {
		if off >= len(msg) {
			return "", false
		}
		l := int(msg[off])
		switch {
		case l == 0:
			goto valid
		case l&0xc0 == 0xc0:
			return "", false
		case off+1+l > len(msg) || l > 63:
			return "", false
		default:
			if total > 0 {
				total++ // joining dot
			}
			total += l
			off += 1 + l
		}
	}
valid:
	var b strings.Builder
	b.Grow(total)
	off = start
	for {
		l := int(msg[off])
		if l == 0 {
			return b.String(), true
		}
		if b.Len() > 0 {
			b.WriteByte('.')
		}
		b.Write(msg[off+1 : off+1+l])
		off += 1 + l
	}
}
