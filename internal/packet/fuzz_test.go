package packet

import "testing"

// FuzzParse exercises the IPv4/TCP wire parser with arbitrary bytes: never
// panic, and anything accepted must re-serialize without error.
func FuzzParse(f *testing.F) {
	good := samplePacket()
	wire, _ := good.Wire()
	f.Add(wire)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		if _, err := p.Wire(); err != nil {
			t.Fatalf("accepted packet fails to re-serialize: %v", err)
		}
		// Clone must be independent and serialize identically.
		c := p.Clone()
		w1, _ := p.Wire()
		w2, _ := c.Wire()
		if string(w1) != string(w2) {
			t.Fatal("clone serializes differently")
		}
	})
}

// FuzzTCPUnmarshal exercises the TCP segment parser alone (it sees censor-
// crafted garbage in the simulator).
func FuzzTCPUnmarshal(f *testing.F) {
	src, dst := tcpAddrs()
	seg, _ := (&TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN}).Marshal(src, dst)
	f.Add(seg)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tc TCP
		if err := tc.Unmarshal(data); err != nil {
			return
		}
		if _, err := tc.Marshal(src, dst); err != nil {
			t.Fatalf("accepted segment fails to re-serialize: %v", err)
		}
	})
}
