package packet

import (
	"fmt"
	"net/netip"
)

// Packet is the unit the simulator, the Geneva engine, and the censors all
// exchange: an IPv4 header plus its TCP segment, kept in structured form so
// tampering is cheap and lossless. Wire() produces the exact byte
// serialization when a component (checksum validation, DPI over raw bytes)
// needs it.
type Packet struct {
	IP  IPv4
	TCP TCP

	// view memoizes application-layer fields parsed from TCP.Payload
	// (HTTP target/Host, TLS SNI, DNS QName); see appview.go for the
	// invalidation contract. Never copied between packets.
	view appView
}

// New builds a minimally valid TCP/IPv4 packet between two endpoints.
func New(src, dst netip.Addr, srcPort, dstPort uint16) *Packet {
	return &Packet{
		IP: IPv4{
			TTL:      64,
			Protocol: ProtoTCP,
			Src:      src,
			Dst:      dst,
		},
		TCP: TCP{SrcPort: srcPort, DstPort: dstPort, Window: 65535},
	}
}

// Clone deep-copies the packet, including options and payload, so tampering
// with the copy never aliases the original. The Geneva duplicate action and
// every censor tap rely on this.
func (p *Packet) Clone() *Packet {
	q := *p
	q.view = appView{} // views never propagate; see appview.go
	q.IP.Options = append([]byte(nil), p.IP.Options...)
	q.TCP.Payload = append([]byte(nil), p.TCP.Payload...)
	q.TCP.Options = make([]Option, len(p.TCP.Options))
	for i, o := range p.TCP.Options {
		q.TCP.Options[i] = Option{Kind: o.Kind, Data: append([]byte(nil), o.Data...)}
	}
	return &q
}

// Wire serializes the packet to IPv4 bytes (recomputing lengths and
// checksums subject to the Raw flags).
func (p *Packet) Wire() ([]byte, error) {
	return p.AppendWire(make([]byte, 0, p.IP.HeaderLen()+p.TCP.HeaderLen()+len(p.TCP.Payload)))
}

// AppendWire appends the packet's wire serialization to buf and returns the
// extended slice, allocating only if buf lacks capacity. The TCP segment is
// serialized directly after the IP header in the same buffer, so a warm
// buffer makes the whole round-trip allocation-free.
func (p *Packet) AppendWire(buf []byte) ([]byte, error) {
	segLen := p.TCP.HeaderLen() + len(p.TCP.Payload)
	buf, err := p.IP.appendHeader(buf, segLen)
	if err != nil {
		return nil, err
	}
	// appendHeader already rejected non-4-byte addresses.
	src, dst := p.IP.Src.As4(), p.IP.Dst.As4()
	return p.TCP.MarshalAppend(buf, src[:], dst[:])
}

// Parse decodes an IPv4/TCP packet from wire bytes.
func Parse(data []byte) (*Packet, error) {
	var p Packet
	if err := ParseInto(&p, data); err != nil {
		return nil, err
	}
	return &p, nil
}

// ParseInto decodes wire bytes into p, reusing p's option and payload
// buffers when they have capacity. Parsing into a recycled packet therefore
// does not allocate. On error p is left partially filled.
func ParseInto(p *Packet, data []byte) error {
	p.view = appView{} // the payload is about to be replaced
	payload, err := p.IP.Unmarshal(data)
	if err != nil {
		return err
	}
	if p.IP.Protocol != ProtoTCP {
		return fmt.Errorf("%w: protocol %d is not TCP", ErrBadHeader, p.IP.Protocol)
	}
	return p.TCP.Unmarshal(payload)
}

// TCPChecksumValid reports whether the TCP checksum is correct. Endpoint
// stacks drop packets failing this; the censors in this paper do not check
// it, which is what makes checksum-corrupted insertion packets work (§7).
func (p *Packet) TCPChecksumValid() bool {
	if p.IP.Src.Is4() && p.IP.Dst.Is4() {
		src, dst := p.IP.Src.As4(), p.IP.Dst.As4()
		return p.TCP.ChecksumValid(src[:], dst[:])
	}
	src, dst := p.IP.Src.As16(), p.IP.Dst.As16()
	return p.TCP.ChecksumValid(src[:], dst[:])
}

// Flow returns the packet's 4-tuple in src->dst orientation.
func (p *Packet) Flow() Flow {
	return Flow{
		SrcAddr: p.IP.Src, DstAddr: p.IP.Dst,
		SrcPort: p.TCP.SrcPort, DstPort: p.TCP.DstPort,
	}
}

// HasFlags reports whether the packet's TCP flags are exactly f (Geneva's
// triggers demand an exact match: TCP:flags:S does not match SYN+ACK).
func (p *Packet) HasFlags(f uint8) bool { return p.TCP.Flags == f }

func (p *Packet) String() string {
	return fmt.Sprintf("%s | %s", p.IP.String(), p.TCP.String())
}

// Flow is a hashable TCP 4-tuple. Reverse gives the other direction;
// Canonical gives a direction-independent key for censors that track both
// directions in one TCB.
type Flow struct {
	SrcAddr, DstAddr netip.Addr
	SrcPort, DstPort uint16
}

// Reverse returns the flow with src and dst swapped.
func (f Flow) Reverse() Flow {
	return Flow{SrcAddr: f.DstAddr, DstAddr: f.SrcAddr, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// Canonical returns the same value for a flow and its reverse, ordering the
// endpoints lexicographically.
func (f Flow) Canonical() Flow {
	if f.SrcAddr.Compare(f.DstAddr) > 0 ||
		(f.SrcAddr == f.DstAddr && f.SrcPort > f.DstPort) {
		return f.Reverse()
	}
	return f
}

func (f Flow) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", f.SrcAddr, f.SrcPort, f.DstAddr, f.DstPort)
}
