package packet

import (
	"net/netip"
	"testing"

	"geneva/internal/race"
)

var (
	poolSrc = netip.MustParseAddr("10.1.0.2")
	poolDst = netip.MustParseAddr("198.51.100.9")
)

// TestPoolRecycledPacketIsPristine pins the pool's central safety property:
// a packet that went through the pool is indistinguishable from a freshly
// constructed one, no matter how dirty it was when it was recycled.
func TestPoolRecycledPacketIsPristine(t *testing.T) {
	dirty := Get(poolSrc, poolDst, 40000, 80)
	dirty.TCP.Flags = FlagPSH | FlagACK
	dirty.TCP.Seq = 0xdeadbeef
	dirty.TCP.Payload = append(dirty.TCP.Payload[:0], "SECRET PAYLOAD BYTES"...)
	dirty.TCP.AddOption(OptMSS, 0xAA, 0xBB)
	dirty.TCP.AddOption(OptWScale, 0xCC)
	dirty.IP.Options = append(dirty.IP.Options[:0], 0xAA, 0xAA, 0xAA, 0xAA)
	dirty.IP.TTL = 3
	Put(dirty)

	// The pool is per-P so the very next Get on this goroutine normally
	// returns the same object — but even if it does not, every pooled
	// packet must come back pristine.
	for i := 0; i < 64; i++ {
		got := Get(poolSrc, poolDst, 40000, 80)
		want := New(poolSrc, poolDst, 40000, 80)
		wantWire, err := want.Wire()
		if err != nil {
			t.Fatal(err)
		}
		gotWire, err := got.Wire()
		if err != nil {
			t.Fatalf("recycled packet %d does not serialize: %v", i, err)
		}
		if string(gotWire) != string(wantWire) {
			t.Fatalf("recycled packet %d differs from fresh packet on the wire:\n got %x\nwant %x",
				i, gotWire, wantWire)
		}
		if len(got.TCP.Options) != 0 || len(got.TCP.Payload) != 0 || len(got.IP.Options) != 0 {
			t.Fatalf("recycled packet %d kept state: %d TCP options, %d payload bytes, %d IP option bytes",
				i, len(got.TCP.Options), len(got.TCP.Payload), len(got.IP.Options))
		}
		Put(got)
	}
}

// TestPoolNoBytesLeakThroughReuse is the buffer-aliasing property test: a
// recycled packet's reused payload capacity must never surface old bytes.
// A short payload written into a buffer that previously held a longer
// secret must serialize to exactly the short payload.
func TestPoolNoBytesLeakThroughReuse(t *testing.T) {
	secret := "0123456789abcdef0123456789abcdef-SECRET"
	p := Get(poolSrc, poolDst, 40000, 80)
	p.TCP.Payload = append(p.TCP.Payload[:0], secret...)
	p.TCP.AddOption(OptSACKOK, []byte(secret)...)
	Put(p)

	q := Get(poolSrc, poolDst, 40000, 80)
	q.TCP.Flags = FlagPSH | FlagACK
	q.TCP.Payload = append(q.TCP.Payload[:0], "hi"...)
	wire, err := q.Wire()
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(poolSrc, poolDst, 40000, 80)
	fresh.TCP.Flags = FlagPSH | FlagACK
	fresh.TCP.Payload = []byte("hi")
	want, err := fresh.Wire()
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != string(want) {
		t.Fatalf("wire form of pooled packet leaks recycled bytes:\n got %x\nwant %x", wire, want)
	}
	Put(q)
}

// TestCopyFromDeepCopies verifies ClonePooled/CopyFrom isolation: mutating
// the copy never reaches the original, including through option Data slots.
func TestCopyFromDeepCopies(t *testing.T) {
	orig := New(poolSrc, poolDst, 40000, 80)
	orig.TCP.Flags = FlagSYN
	orig.TCP.Payload = []byte("payload")
	orig.TCP.AddOption(OptMSS, 0x05, 0xB4)
	orig.IP.Options = []byte{1, 2, 3, 4}

	cp := orig.ClonePooled()
	cp.TCP.Payload[0] = 'X'
	cp.TCP.Options[0].Data[0] = 0xFF
	cp.IP.Options[0] = 0xFF

	if orig.TCP.Payload[0] != 'p' {
		t.Error("payload mutation reached the original")
	}
	if orig.TCP.Options[0].Data[0] != 0x05 {
		t.Error("option-data mutation reached the original")
	}
	if orig.IP.Options[0] != 1 {
		t.Error("IP-option mutation reached the original")
	}
	Put(cp)
}

// TestPutNilIsNoop pins the nil-safety of Put (simplifies call sites).
func TestPutNilIsNoop(t *testing.T) {
	Put(nil) // must not panic
}

// TestAllocBudgetPooledRoundtrip pins the hot path at zero allocations: a
// pooled packet serialized into a reused buffer and parsed back into a
// reused packet must not touch the allocator in steady state. A regression
// here silently re-inflates every simulated trial; this test is the CI
// tripwire (see DESIGN.md "The trial hot path").
func TestAllocBudgetPooledRoundtrip(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; budgets are enforced by make alloc-budget")
	}
	payload := []byte("GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n")
	buf := make([]byte, 0, 256)
	rx := New(poolDst, poolSrc, 80, 40000)
	// Warm the pool and the scratch capacities.
	warm := Get(poolSrc, poolDst, 40000, 80)
	warm.TCP.Payload = append(warm.TCP.Payload[:0], payload...)
	Put(warm)

	allocs := testing.AllocsPerRun(200, func() {
		p := Get(poolSrc, poolDst, 40000, 80)
		p.TCP.Flags = FlagPSH | FlagACK
		p.TCP.Payload = append(p.TCP.Payload[:0], payload...)
		var err error
		buf, err = p.AppendWire(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := ParseInto(rx, buf); err != nil {
			t.Fatal(err)
		}
		Put(p)
	})
	if allocs > 0 {
		t.Errorf("pooled wire roundtrip allocates %.1f objects/op, budget is 0", allocs)
	}
}

// TestAllocBudgetChecksumValid pins receive-path validation at zero
// allocations (it runs once per delivered packet).
func TestAllocBudgetChecksumValid(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; budgets are enforced by make alloc-budget")
	}
	p := New(poolSrc, poolDst, 40000, 80)
	p.TCP.Flags = FlagPSH | FlagACK
	p.TCP.Payload = []byte("hello")
	if _, err := p.Wire(); err != nil { // stamp the checksum fields
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !p.TCPChecksumValid() {
			t.Fatal("checksum should validate")
		}
	})
	if allocs > 0 {
		t.Errorf("TCPChecksumValid allocates %.1f objects/op, budget is 0", allocs)
	}
}
