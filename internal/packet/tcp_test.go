package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func tcpAddrs() (src, dst []byte) {
	a, b := addrA.As4(), addrB.As4()
	return a[:], b[:]
}

func TestTCPMarshalUnmarshalRoundtrip(t *testing.T) {
	src, dst := tcpAddrs()
	in := TCP{
		SrcPort: 443, DstPort: 51000, Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: FlagSYN | FlagACK, Window: 14600, Urgent: 0,
		Options: []Option{
			{Kind: OptMSS, Data: []byte{0x05, 0xb4}},
			{Kind: OptNOP},
			{Kind: OptWScale, Data: []byte{7}},
		},
		Payload: []byte("GET / HTTP/1.1\r\n"),
	}
	wire, err := in.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var out TCP
	if err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort ||
		out.Seq != in.Seq || out.Ack != in.Ack || out.Flags != in.Flags ||
		out.Window != in.Window {
		t.Errorf("header fields: %+v", out)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("payload = %q", out.Payload)
	}
	if len(out.Options) != 3 || out.Options[0].Kind != OptMSS ||
		out.Options[2].Kind != OptWScale || out.Options[2].Data[0] != 7 {
		t.Errorf("options = %+v", out.Options)
	}
	if !out.ChecksumValid(src, dst) {
		t.Error("checksum invalid after roundtrip")
	}
}

func TestTCPChecksumDetectsBitFlip(t *testing.T) {
	src, dst := tcpAddrs()
	in := TCP{SrcPort: 80, DstPort: 1234, Flags: FlagACK, Payload: []byte("x")}
	wire, err := in.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	wire[len(wire)-1] ^= 0x01
	var out TCP
	if err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if out.ChecksumValid(src, dst) {
		t.Error("flipped payload bit not detected")
	}
}

func TestTCPRawChecksumPreservesCorruption(t *testing.T) {
	src, dst := tcpAddrs()
	in := TCP{SrcPort: 80, DstPort: 1234, Flags: FlagSYN | FlagACK,
		Checksum: 0xabcd, RawChecksum: true}
	wire, err := in.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var out TCP
	if err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if out.Checksum != 0xabcd {
		t.Errorf("Checksum = %#x, want the tampered value", out.Checksum)
	}
	if out.ChecksumValid(src, dst) {
		t.Error("corrupted checksum validated")
	}
}

func TestTCPOptionsPaddingAlignment(t *testing.T) {
	src, dst := tcpAddrs()
	in := TCP{SrcPort: 1, DstPort: 2, Options: []Option{{Kind: OptWScale, Data: []byte{3}}}}
	wire, err := in.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 24 {
		t.Fatalf("segment length = %d, want 24 (20 + 3 option bytes padded to 4)", len(wire))
	}
	if wire[12]>>4 != 6 {
		t.Errorf("data offset = %d, want 6", wire[12]>>4)
	}
}

func TestTCPRemoveAndSetOption(t *testing.T) {
	tc := TCP{Options: []Option{
		{Kind: OptMSS, Data: []byte{1, 2}},
		{Kind: OptWScale, Data: []byte{9}},
		{Kind: OptWScale, Data: []byte{8}},
	}}
	if !tc.RemoveOption(OptWScale) {
		t.Fatal("RemoveOption found nothing")
	}
	if tc.Option(OptWScale) != nil {
		t.Error("wscale still present after RemoveOption")
	}
	if tc.RemoveOption(OptWScale) {
		t.Error("second RemoveOption reported true")
	}
	tc.SetOption(OptMSS, []byte{5, 6})
	if o := tc.Option(OptMSS); o == nil || !bytes.Equal(o.Data, []byte{5, 6}) {
		t.Errorf("SetOption replace failed: %+v", o)
	}
	tc.SetOption(OptSACKOK, nil)
	if tc.Option(OptSACKOK) == nil {
		t.Error("SetOption append failed")
	}
}

func TestTCPFlagsStringRoundtrip(t *testing.T) {
	cases := []struct {
		f uint8
		s string
	}{
		{FlagSYN, "S"},
		{FlagSYN | FlagACK, "SA"},
		{FlagFIN | FlagPSH | FlagACK, "FPA"},
		{FlagRST, "R"},
		{0, ""},
		{FlagFIN | FlagSYN | FlagRST | FlagPSH | FlagACK | FlagURG, "FSRPAU"},
	}
	for _, c := range cases {
		if got := FlagsString(c.f); got != c.s {
			t.Errorf("FlagsString(%#x) = %q, want %q", c.f, got, c.s)
		}
		back, err := ParseFlags(c.s)
		if err != nil || back != c.f {
			t.Errorf("ParseFlags(%q) = %#x, %v; want %#x", c.s, back, err, c.f)
		}
	}
	if _, err := ParseFlags("SZ"); err == nil {
		t.Error("ParseFlags accepted unknown flag letter")
	}
}

func TestTCPUnmarshalErrors(t *testing.T) {
	var out TCP
	if err := out.Unmarshal(make([]byte, 19)); err == nil {
		t.Error("want error for truncated segment")
	}
	src, dst := tcpAddrs()
	in := TCP{SrcPort: 1, DstPort: 2}
	wire, _ := in.Marshal(src, dst)
	wire[12] = 0x30 // data offset 3 < 5
	if err := out.Unmarshal(wire); err == nil {
		t.Error("want error for data offset < 5")
	}
	// Malformed option: claims more bytes than present.
	in2 := TCP{SrcPort: 1, DstPort: 2, Options: []Option{{Kind: OptMSS, Data: []byte{1, 2}}}}
	wire2, _ := in2.Marshal(src, dst)
	wire2[21] = 40 // option length 40 in a 4-byte option area
	if err := out.Unmarshal(wire2); err == nil {
		t.Error("want error for option overrun")
	}
}

func TestTCPRoundtripProperty(t *testing.T) {
	src, dst := tcpAddrs()
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		in := TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags & 0x3f, Window: win, Payload: payload}
		wire, err := in.Marshal(src, dst)
		if err != nil {
			return false
		}
		var out TCP
		if err := out.Unmarshal(wire); err != nil {
			return false
		}
		return out.SrcPort == in.SrcPort && out.DstPort == in.DstPort &&
			out.Seq == in.Seq && out.Ack == in.Ack && out.Flags == in.Flags &&
			out.Window == in.Window && bytes.Equal(out.Payload, payload) &&
			out.ChecksumValid(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
