package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	p := New(addrA, addrB, 40001, 80)
	p.TCP.Flags = FlagPSH | FlagACK
	p.TCP.Seq = 1000
	p.TCP.Ack = 2000
	p.TCP.Payload = []byte("GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n")
	return p
}

func TestPacketWireParseRoundtrip(t *testing.T) {
	in := samplePacket()
	wire, err := in.Wire()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out.IP.Src != in.IP.Src || out.TCP.DstPort != 80 {
		t.Errorf("roundtrip mismatch: %s", out)
	}
	if !bytes.Equal(out.TCP.Payload, in.TCP.Payload) {
		t.Errorf("payload = %q", out.TCP.Payload)
	}
	if !out.TCPChecksumValid() {
		t.Error("TCP checksum invalid after roundtrip")
	}
}

func TestParseRejectsNonTCP(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: addrA, Dst: addrB}
	wire, _ := ip.Marshal([]byte{0, 53, 0, 53, 0, 8, 0, 0})
	if _, err := Parse(wire); err == nil {
		t.Error("Parse accepted a UDP packet")
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := samplePacket()
	in.TCP.Options = []Option{{Kind: OptMSS, Data: []byte{1, 2}}}
	c := in.Clone()
	c.TCP.Payload[0] = 'X'
	c.TCP.Options[0].Data[0] = 99
	c.TCP.Flags = FlagRST
	c.IP.TTL = 1
	if in.TCP.Payload[0] == 'X' {
		t.Error("payload aliased")
	}
	if in.TCP.Options[0].Data[0] == 99 {
		t.Error("option data aliased")
	}
	if in.TCP.Flags == FlagRST || in.IP.TTL == 1 {
		t.Error("scalar fields shared")
	}
}

func TestFlowReverseAndCanonical(t *testing.T) {
	f := Flow{SrcAddr: addrA, DstAddr: addrB, SrcPort: 1234, DstPort: 80}
	r := f.Reverse()
	if r.SrcAddr != addrB || r.DstPort != 1234 {
		t.Errorf("Reverse = %s", r)
	}
	if f.Canonical() != r.Canonical() {
		t.Error("Canonical differs between a flow and its reverse")
	}
	if f.Reverse().Reverse() != f {
		t.Error("double Reverse is not identity")
	}
}

func TestFlowCanonicalSameAddrOrdersPorts(t *testing.T) {
	f := Flow{SrcAddr: addrA, DstAddr: addrA, SrcPort: 9000, DstPort: 80}
	c := f.Canonical()
	if c.SrcPort != 80 {
		t.Errorf("Canonical src port = %d, want 80", c.SrcPort)
	}
}

func TestHasFlagsExactMatch(t *testing.T) {
	p := New(addrA, addrB, 1, 2)
	p.TCP.Flags = FlagSYN | FlagACK
	if p.HasFlags(FlagSYN) {
		t.Error("TCP:flags:S matched a SYN+ACK; Geneva triggers demand exact match")
	}
	if !p.HasFlags(FlagSYN | FlagACK) {
		t.Error("exact SA match failed")
	}
}

func TestBadChecksumInsertionPacketDetected(t *testing.T) {
	p := samplePacket()
	p.TCP.Checksum = 0x1111
	p.TCP.RawChecksum = true
	wire, err := p.Wire()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out.TCPChecksumValid() {
		t.Error("insertion packet's corrupt checksum validated")
	}
}

func TestPacketRoundtripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq uint32, flags uint8, payload []byte) bool {
		in := New(addrA, addrB, sp, dp)
		in.TCP.Seq = seq
		in.TCP.Flags = flags & 0x3f
		in.TCP.Payload = payload
		wire, err := in.Wire()
		if err != nil {
			return false
		}
		out, err := Parse(wire)
		if err != nil {
			return false
		}
		return out.TCP.SrcPort == sp && out.TCP.DstPort == dp &&
			out.TCP.Seq == seq && out.TCP.Flags == flags&0x3f &&
			bytes.Equal(out.TCP.Payload, payload) && out.TCPChecksumValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIPv6Roundtrip(t *testing.T) {
	src := netip.MustParseAddr("2001:db8::1")
	dst := netip.MustParseAddr("2001:db8::2")
	in := IPv6{TrafficClass: 3, FlowLabel: 0xabcde, NextHeader: ProtoTCP, HopLimit: 60, Src: src, Dst: dst}
	payload := []byte("payload")
	wire, err := in.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	var out IPv6
	got, err := out.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || out.Src != src || out.Dst != dst ||
		out.FlowLabel != 0xabcde || out.HopLimit != 60 {
		t.Errorf("roundtrip mismatch: %+v payload=%q", out, got)
	}
}

func TestIPv6RejectsV4(t *testing.T) {
	in := IPv6{Src: addrA, Dst: addrB}
	if _, err := in.Marshal(nil); err == nil {
		t.Error("IPv6 accepted 4-byte addresses")
	}
	var out IPv6
	if _, err := out.Unmarshal(make([]byte, 39)); err == nil {
		t.Error("IPv6 accepted truncated header")
	}
	bad := make([]byte, 40)
	bad[0] = 4 << 4
	if _, err := out.Unmarshal(bad); err == nil {
		t.Error("IPv6 accepted version 4")
	}
}

func TestUDPRoundtrip(t *testing.T) {
	src, dst := tcpAddrs()
	in := UDP{SrcPort: 53, DstPort: 31000, Payload: []byte("dns query")}
	wire, err := in.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var out UDP
	if err := out.Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
	if out.SrcPort != 53 || !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("roundtrip mismatch: %+v", out)
	}
	if out.Length != uint16(8+len(in.Payload)) {
		t.Errorf("Length = %d", out.Length)
	}
}

func TestUDPTruncated(t *testing.T) {
	var out UDP
	if err := out.Unmarshal(make([]byte, 7)); err == nil {
		t.Error("UDP accepted truncated datagram")
	}
}
