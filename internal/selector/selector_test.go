package selector

import (
	"errors"
	"math/rand"
	"testing"

	"geneva/internal/core"
	"geneva/internal/strategies"
)

func TestNewPortfolioValidation(t *testing.T) {
	p, err := NewPortfolio(strategies.Strategy1.DSL, strategies.Strategy8.DSL)
	if err != nil {
		t.Fatalf("NewPortfolio: %v", err)
	}
	if p.Len() != 2 || p.IsZero() {
		t.Fatalf("want 2 arms, got %d (zero=%v)", p.Len(), p.IsZero())
	}
	// Canonical round-trip: Name(i) is Parse(text).String().
	for i, text := range []string{strategies.Strategy1.DSL, strategies.Strategy8.DSL} {
		want := core.MustParse(text).String()
		if p.Name(i) != want {
			t.Errorf("arm %d name %q, want %q", i, p.Name(i), want)
		}
	}

	if _, err := NewPortfolio("[TCP:flags:SA]-bogus-|"); !errors.Is(err, core.ErrInvalidStrategy) {
		t.Fatalf("invalid strategy error %v should wrap core.ErrInvalidStrategy", err)
	}
}

func TestPortfolioHashStable(t *testing.T) {
	a, _ := NewPortfolio(strategies.Strategy1.DSL, strategies.Strategy8.DSL)
	b, _ := NewPortfolio(strategies.Strategy1.DSL, strategies.Strategy8.DSL)
	if a.Hash() != b.Hash() {
		t.Fatalf("identical portfolios hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	c, _ := NewPortfolio(strategies.Strategy8.DSL, strategies.Strategy1.DSL)
	if a.Hash() == c.Hash() {
		t.Fatalf("order-swapped portfolio should hash differently")
	}
	if (Portfolio{}).Hash() == a.Hash() {
		t.Fatalf("empty portfolio should not collide with a real one")
	}
}

func TestSelectionDefaultsAndValidate(t *testing.T) {
	s := Selection{Policy: EpsilonGreedy}.WithDefaults()
	if s.Epsilon != 0.1 || s.Decay != 0.9 || s.MinPulls != 3 ||
		s.CollapseBelow != 0.2 || s.QuarantineWaves != 2 || s.UCBC != 1.5 {
		t.Fatalf("unexpected defaults: %+v", s)
	}
	if err := (Selection{Policy: "thompson"}).Validate(); err == nil {
		t.Fatal("unknown policy must fail validation")
	}
	if err := (Selection{Policy: UCB1}).Validate(); err != nil {
		t.Fatalf("ucb1 should validate: %v", err)
	}
	if (Selection{}).Enabled() {
		t.Fatal("zero-value Selection must be disabled")
	}
}

// run drives a toy bandit loop: per wave, each of `cells` cells makes
// `pullsPerCell` pulls; arm rewards are deterministic per-arm success
// rates evaluated against a seeded rng. Returns total pulls per arm.
func run(t *testing.T, st *State, rates []float64, waves, cells, pullsPerCell int, seed int64) []uint64 {
	t.Helper()
	views := make([]*Cell, cells)
	rngs := make([]*rand.Rand, cells)
	rewards := make([]*rand.Rand, cells)
	for c := range views {
		views[c] = st.NewCell()
		rngs[c] = rand.New(rand.NewSource(seed + int64(c)*100003))
		rewards[c] = rand.New(rand.NewSource(seed + int64(c)*100003 + 7))
	}
	pulls := make([]uint64, st.Arms())
	for w := 0; w < waves; w++ {
		deltas := make([][]delta, cells)
		for c := 0; c < cells; c++ {
			for i := 0; i < pullsPerCell; i++ {
				arm := views[c].Next("china", "http", rngs[c])
				pulls[arm]++
				if rewards[c].Float64() < rates[arm] {
					views[c].Observe("china", "http", arm, Served)
				} else {
					views[c].Observe("china", "http", arm, TornDown)
				}
			}
			deltas[c] = views[c].Drain()
		}
		st.Barrier(deltas)
	}
	return pulls
}

func TestEpsilonGreedyConvergesToBestArm(t *testing.T) {
	st := NewState(Selection{Policy: EpsilonGreedy}, 3)
	pulls := run(t, st, []float64{0.1, 0.9, 0.3}, 20, 2, 10, 42)
	if pulls[1] <= pulls[0] || pulls[1] <= pulls[2] {
		t.Fatalf("best arm (1) should dominate pulls, got %v", pulls)
	}
}

func TestUCB1ConvergesToBestArm(t *testing.T) {
	st := NewState(Selection{Policy: UCB1}, 3)
	pulls := run(t, st, []float64{0.2, 0.35, 0.95}, 20, 2, 10, 42)
	if pulls[2] <= pulls[0] || pulls[2] <= pulls[1] {
		t.Fatalf("best arm (2) should dominate pulls, got %v", pulls)
	}
}

func TestBarrierFoldIsOrderIndependent(t *testing.T) {
	// Two states fed the same per-cell deltas in different cell orders
	// must end bit-identical: the fold is integer addition per (key, arm).
	mk := func(order []int) *State {
		st := NewState(Selection{Policy: EpsilonGreedy}, 2)
		cellDeltas := [][]delta{
			{{k: key{"china", "http"}, arm: 0, pulls: 5, served: 3, torn: 2}},
			{{k: key{"china", "http"}, arm: 1, pulls: 4, served: 1, unest: 3}},
			{{k: key{"china", "http"}, arm: 0, pulls: 2, served: 2}},
		}
		ordered := make([][]delta, 0, len(order))
		for _, i := range order {
			ordered = append(ordered, cellDeltas[i])
		}
		st.Barrier(ordered)
		return st
	}
	a, b := mk([]int{0, 1, 2}), mk([]int{2, 0, 1})
	ka := key{"china", "http"}
	for arm := 0; arm < 2; arm++ {
		if a.stats[ka][arm] != b.stats[ka][arm] {
			t.Fatalf("arm %d diverged across fold orders: %+v vs %+v",
				arm, a.stats[ka][arm], b.stats[ka][arm])
		}
	}
}

func TestDecayForgetsOldEvidence(t *testing.T) {
	st := NewState(Selection{Policy: EpsilonGreedy, Decay: 0.5}, 1)
	k := key{"china", "http"}
	st.Barrier([][]delta{{{k: k, arm: 0, pulls: 8, served: 8}}})
	if got := st.stats[k][0].pulls; got != 8 {
		t.Fatalf("after first barrier want 8 decayed pulls, got %v", got)
	}
	// Two empty barriers halve the window twice; lifetime totals hold.
	st.Barrier(nil)
	st.Barrier(nil)
	if got := st.stats[k][0].pulls; got != 2 {
		t.Fatalf("after two decays want 2, got %v", got)
	}
	if st.stats[k][0].totalPulls != 8 {
		t.Fatalf("lifetime pulls must not decay")
	}
}

func TestCollapseQuarantineAndRecovery(t *testing.T) {
	sel := Selection{Policy: EpsilonGreedy, QuarantineWaves: 2}
	st := NewState(sel, 2)
	k := key{"china", "http"}

	// Arm 0 earns incumbency with a healthy window.
	st.Barrier([][]delta{{
		{k: k, arm: 0, pulls: 10, served: 9},
		{k: k, arm: 1, pulls: 2, served: 1},
	}})
	if st.Fallbacks() != 0 {
		t.Fatalf("healthy incumbent must not trip the detector")
	}

	// The censor shifts: the incumbent craters (0/40 served).
	if n := st.Barrier([][]delta{{{k: k, arm: 0, pulls: 40, torn: 40}}}); n != 1 {
		t.Fatalf("cratered incumbent should quarantine, got %d new quarantines", n)
	}
	if st.Fallbacks() != 1 || !st.stats[k][0].everCollapsed {
		t.Fatalf("fallback not recorded: fallbacks=%d stats=%+v", st.Fallbacks(), st.stats[k][0])
	}
	if st.stats[k][0].pulls != 0 || st.stats[k][0].wins != 0 {
		t.Fatalf("quarantined arm's window must be zeroed: %+v", st.stats[k][0])
	}

	// While quarantined, cells never pick arm 0.
	c := st.NewCell()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if arm := c.Next("china", "http", rng); arm == 0 {
			t.Fatalf("pull %d selected quarantined arm", i)
		}
	}
	c.Drain()

	// Quarantine expires after QuarantineWaves barriers (decremented at
	// the first barrier after quarantine, selectable once it hits zero).
	st.Barrier(nil)
	if st.stats[k][0].quarantine != 1 {
		t.Fatalf("quarantine should tick down to 1, got %d", st.stats[k][0].quarantine)
	}
	st.Barrier(nil)
	if st.stats[k][0].quarantine != 0 {
		t.Fatalf("quarantine should expire, got %d", st.stats[k][0].quarantine)
	}
	// Re-eligible: with a zeroed window the optimistic prior lets the
	// returning arm be exploited again.
	picked := false
	rng2 := rand.New(rand.NewSource(2))
	for i := 0; i < 50 && !picked; i++ {
		picked = c.Next("china", "http", rng2) == 0
	}
	if !picked {
		t.Fatal("expired quarantine should make arm 0 selectable again")
	}
}

func TestSingleArmPortfolioAlwaysPinsArmZero(t *testing.T) {
	st := NewState(Selection{Policy: UCB1}, 1)
	c := st.NewCell()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		if arm := c.Next("china", "http", rng); arm != 0 {
			t.Fatalf("single-arm portfolio must pin arm 0, got %d", arm)
		}
	}
}

func TestCountryReportSumsProtocols(t *testing.T) {
	st := NewState(Selection{Policy: EpsilonGreedy}, 2)
	st.Barrier([][]delta{{
		{k: key{"china", "http"}, arm: 0, pulls: 3, served: 2, torn: 1},
		{k: key{"china", "https"}, arm: 0, pulls: 2, served: 2},
		{k: key{"china", "https"}, arm: 1, pulls: 1, unest: 1},
		{k: key{"iran", "http"}, arm: 1, pulls: 9, served: 9},
	}})
	rep := st.CountryReport("china")
	if rep[0] != (ArmReport{Pulls: 5, Served: 4, TornDown: 1}) {
		t.Fatalf("china arm 0 report %+v", rep[0])
	}
	if rep[1] != (ArmReport{Pulls: 1, Unestablished: 1}) {
		t.Fatalf("china arm 1 report %+v", rep[1])
	}
}
