// Package selector is the fleet's online strategy-selection control plane:
// a deterministic, seeded bandit that picks each connection's server-side
// strategy from a portfolio and learns from per-connection outcomes.
//
// The paper's §8 deployment pins one evolved strategy per censored country.
// That is the right opening move and the wrong steady state: censors shift
// (the arms-race framing of the co-evolution roadmap item), and a pinned
// strategy that collapses takes the whole country's availability down with
// it. The selector closes the loop the fleet already measures: every
// connection attempt reports served / torn down / never-established, and
// the selector turns that stream into the next attempt's strategy choice.
//
// # Determinism contract
//
// The selector is one more seeded component of the fleet, subject to the
// same bit-identity contract as everything else: a FleetResult must be
// identical at any worker and shard width. That shapes the design exactly
// like the residual ledger:
//
//   - Global state (State) only changes at wave barriers, on one
//     goroutine, in stable cell order.
//   - During a wave each cell sees the barrier snapshot plus only its OWN
//     observations (a Cell), accumulated as plain integer counts. A cell
//     never sees a concurrent cell's intra-wave outcomes, so scheduling
//     cannot leak in.
//   - Exploration randomness comes from a per-cell seeded rng stream
//     (derived from the cell's stable plan index), never from shared state.
//   - The barrier fold is integer addition per (key, arm) — commutative and
//     associative — followed by one deterministic decay-and-detect pass.
//
// # Policies
//
// Two classic bandit policies sit behind one Selection config: epsilon-
// greedy (explore with probability ε, otherwise exploit the best decayed
// success rate) and UCB1 (optimism in the face of uncertainty; pulls every
// arm once, then maximizes mean + C·sqrt(ln N / n)). Both operate on an
// exponentially decayed window so old evidence ages out, and both honor the
// collapse fallback: when the incumbent arm's windowed success rate craters
// below a threshold, it is quarantined for a few waves — its statistics
// zeroed so it re-earns trust — and the survivors are re-explored. That
// fallback is what turns a mid-run censor shift from a permanent outage
// into a few waves of degraded service.
package selector

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"geneva/internal/core"
)

// Portfolio is an ordered, validated list of candidate strategies — the
// unit of deployment the public API trades in. Construction parses every
// strategy once (NewPortfolio); the compiled *core.Strategy values are
// shared read-only by every engine built from the portfolio, exactly like
// the §8 deployment table. The zero value is the empty portfolio.
type Portfolio struct {
	strats []*core.Strategy
	dsls   []string // canonical texts, memoized at construction
}

// NewPortfolio parses and compiles each strategy, in order. Any strategy
// that fails to parse aborts construction with an error wrapping
// core.ErrInvalidStrategy (position in the portfolio included).
func NewPortfolio(dsls ...string) (Portfolio, error) {
	p := Portfolio{
		strats: make([]*core.Strategy, 0, len(dsls)),
		dsls:   make([]string, 0, len(dsls)),
	}
	for i, dsl := range dsls {
		s, err := core.Parse(dsl)
		if err != nil {
			return Portfolio{}, fmt.Errorf("portfolio strategy %d: %w", i, err)
		}
		p.strats = append(p.strats, s)
		p.dsls = append(p.dsls, s.String())
	}
	return p, nil
}

// FromStrategies builds a portfolio from already-compiled strategies (the
// registry path: the deploy table is parsed once at init and shared).
func FromStrategies(strats []*core.Strategy) Portfolio {
	p := Portfolio{
		strats: make([]*core.Strategy, len(strats)),
		dsls:   make([]string, len(strats)),
	}
	for i, s := range strats {
		p.strats[i] = s
		p.dsls[i] = s.String()
	}
	return p
}

// Len is the number of strategies (arms).
func (p Portfolio) Len() int { return len(p.strats) }

// IsZero reports whether the portfolio is empty (the zero value).
func (p Portfolio) IsZero() bool { return len(p.strats) == 0 }

// Strategy returns the i-th compiled strategy. The value is shared
// read-only; engines compile their own rule copies.
func (p Portfolio) Strategy(i int) *core.Strategy { return p.strats[i] }

// Strategies returns the canonical strategy texts in portfolio order.
func (p Portfolio) Strategies() []string {
	out := make([]string, len(p.dsls))
	copy(out, p.dsls)
	return out
}

// Name returns the i-th strategy's canonical text (the key selection
// outcomes are reported under).
func (p Portfolio) Name(i int) string { return p.dsls[i] }

// Hash is a stable FNV-64a digest of the canonical strategy texts in
// order — the manifest's portfolio identity. Two portfolios hash equal iff
// their canonical programs and order agree.
func (p Portfolio) Hash() string {
	h := fnv.New64a()
	for _, d := range p.dsls {
		h.Write([]byte(d))
		h.Write([]byte{0})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// Policy names a selection policy. The zero value disables selection (the
// historical pinned-strategy deployment).
type Policy string

const (
	// Pinned is the zero value: no online selection, the §8 pinned router.
	Pinned Policy = ""
	// EpsilonGreedy explores with probability Epsilon and otherwise
	// exploits the best decayed success rate.
	EpsilonGreedy Policy = "epsilon-greedy"
	// UCB1 plays the classic upper-confidence-bound rule: try every arm
	// once, then maximize mean + C·sqrt(ln N / n).
	UCB1 Policy = "ucb1"
)

// Valid reports whether p names a known policy (including Pinned).
func (p Policy) Valid() bool {
	switch p {
	case Pinned, EpsilonGreedy, UCB1:
		return true
	}
	return false
}

// Selection configures the control plane. The zero value disables it
// entirely — the fleet reproduces the pinned-strategy deployment byte for
// byte. Every other field has a working default resolved by WithDefaults.
type Selection struct {
	// Policy picks the bandit rule; "" (Pinned) disables selection.
	Policy Policy
	// Epsilon is EpsilonGreedy's exploration probability in [0,1]
	// (default 0.1). Ignored by UCB1.
	Epsilon float64
	// UCBC is UCB1's exploration coefficient (default 1.5). Ignored by
	// EpsilonGreedy.
	UCBC float64
	// Decay is the per-wave-barrier multiplier applied to every arm's
	// decayed pull/win window, in (0,1] (default 0.9). Lower values forget
	// faster and react to censor shifts sooner; 1.0 never forgets.
	Decay float64
	// MinPulls is the decayed evidence an arm needs before the collapse
	// detector will judge it (default 3).
	MinPulls float64
	// CollapseBelow is the windowed success rate under which the incumbent
	// (most-pulled) arm is declared collapsed and quarantined (default 0.2).
	CollapseBelow float64
	// QuarantineWaves is how many wave barriers a collapsed arm sits out
	// before it may be selected again (default 2). Its statistics are
	// zeroed on quarantine, so a returning arm re-earns trust from scratch.
	QuarantineWaves int
}

// Enabled reports whether online selection is on.
func (s Selection) Enabled() bool { return s.Policy != Pinned }

// WithDefaults resolves zero-valued tuning fields to the documented
// defaults. It returns a copy.
func (s Selection) WithDefaults() Selection {
	if s.Epsilon <= 0 {
		s.Epsilon = 0.1
	}
	if s.UCBC <= 0 {
		s.UCBC = 1.5
	}
	if s.Decay <= 0 || s.Decay > 1 {
		s.Decay = 0.9
	}
	if s.MinPulls <= 0 {
		s.MinPulls = 3
	}
	if s.CollapseBelow <= 0 {
		s.CollapseBelow = 0.2
	}
	if s.QuarantineWaves <= 0 {
		s.QuarantineWaves = 2
	}
	return s
}

// Validate rejects configurations the selector cannot run.
func (s Selection) Validate() error {
	if !s.Policy.Valid() {
		return fmt.Errorf("selector: unknown policy %q (valid: %q, %q)",
			string(s.Policy), string(EpsilonGreedy), string(UCB1))
	}
	if s.Epsilon < 0 || s.Epsilon > 1 {
		return fmt.Errorf("selector: Epsilon %v outside [0,1]", s.Epsilon)
	}
	if s.Decay < 0 || s.Decay > 1 {
		return fmt.Errorf("selector: Decay %v outside (0,1]", s.Decay)
	}
	return nil
}

// Outcome is one connection attempt's settled result, the selector's
// reward signal. Only Served rewards; the failure kinds are kept distinct
// because the per-country selection report (and future cost models) care
// whether a strategy's failures are teardowns or blackholes.
type Outcome int

const (
	// Served: the attempt delivered its whole (remaining) session.
	Served Outcome = iota
	// TornDown: the attempt established and was then censored or corrupted.
	TornDown
	// Unestablished: the handshake never completed.
	Unestablished
)

// armStats is one arm's decayed evidence window plus lifetime totals.
type armStats struct {
	// pulls/wins are the exponentially decayed window the policies and the
	// collapse detector read. Decay happens only at barriers.
	pulls float64
	wins  float64
	// lifetime outcome totals (undecayed), for reporting.
	totalPulls    uint64
	totalServed   uint64
	totalTorn     uint64
	totalUnest    uint64
	quarantine    int // barriers left to sit out; 0 = selectable
	everCollapsed bool
}

// key identifies one selector instance: a (country, protocol) pair.
type key struct{ country, protocol string }

// State is the merged control-plane state for one fleet run: per
// (country, protocol), per arm, the decayed evidence window and quarantine
// status. It is written only at wave barriers on a single goroutine;
// during waves the cells read it as an immutable snapshot.
type State struct {
	sel   Selection
	arms  int
	stats map[key][]armStats
	// fallbacks counts collapse-quarantine events over the whole run.
	fallbacks uint64
	// scratch is Merge's reusable per-barrier delta table.
	scratch [][]delta
}

// NewState builds the run's control-plane state for a portfolio of `arms`
// strategies. sel must already be validated; defaults are resolved here.
func NewState(sel Selection, arms int) *State {
	return &State{
		sel:   sel.WithDefaults(),
		arms:  arms,
		stats: make(map[key][]armStats),
	}
}

// Arms returns the portfolio width the state was built for.
func (st *State) Arms() int { return st.arms }

// Fallbacks returns the number of collapse-quarantine events so far.
func (st *State) Fallbacks() uint64 { return st.fallbacks }

// armsFor returns (allocating on first use) the arm table for a key.
func (st *State) armsFor(k key) []armStats {
	if a, ok := st.stats[k]; ok {
		return a
	}
	a := make([]armStats, st.arms)
	st.stats[k] = a
	return a
}

// delta is a cell's intra-wave observation batch for one (key, arm):
// plain integer counts, so the barrier fold is exact in any order.
type delta struct {
	k       key
	arm     int
	pulls   uint64
	served  uint64
	torn    uint64
	unest   uint64
}

// Cell is one cell's view of the control plane for one wave: the barrier
// snapshot (read-only, shared) plus the cell's own observations. A Cell is
// single-goroutine state, like everything else inside a cell.
type Cell struct {
	st     *State // snapshot: read-only during the wave
	deltas []delta
	// eligible is pick's reusable non-quarantined-arm scratch; a fresh
	// slice per pull would be the control plane's only per-attempt heap
	// allocation.
	eligible []int
}

// NewCell hands a cell its per-wave view. The same Cell may be reused
// across waves (the fleet keeps one per cell); Drain empties it at each
// barrier.
func (st *State) NewCell() *Cell {
	return &Cell{st: st}
}

// deltaFor finds or creates the cell's accumulator for (k, arm). Linear
// scan: a cell touches one country and a handful of protocols × arms.
func (c *Cell) deltaFor(k key, arm int) *delta {
	for i := range c.deltas {
		if c.deltas[i].arm == arm && c.deltas[i].k == k {
			return &c.deltas[i]
		}
	}
	c.deltas = append(c.deltas, delta{k: k, arm: arm})
	return &c.deltas[len(c.deltas)-1]
}

// view is the merged evidence the policies read: snapshot + the cell's own
// intra-wave counts (so a cell learns from its own earlier waves' barrier
// state and its own current-wave attempts, never from concurrent cells).
func (c *Cell) view(k key, arm int) (pulls, wins float64) {
	var snap armStats
	if a, ok := c.st.stats[k]; ok {
		snap = a[arm]
	}
	pulls, wins = snap.pulls, snap.wins
	for i := range c.deltas {
		if c.deltas[i].arm == arm && c.deltas[i].k == k {
			pulls += float64(c.deltas[i].pulls)
			wins += float64(c.deltas[i].served)
		}
	}
	return pulls, wins
}

// quarantined reports whether an arm is sitting out (from the snapshot;
// quarantine only changes at barriers).
func (c *Cell) quarantined(k key, arm int) bool {
	if a, ok := c.st.stats[k]; ok {
		return a[arm].quarantine > 0
	}
	return false
}

// Next picks the arm for one connection attempt in (country, protocol),
// drawing exploration randomness from the cell's own seeded rng. It also
// counts the pull, so consecutive calls within a wave see each other.
func (c *Cell) Next(country, protocol string, rng *rand.Rand) int {
	k := key{country: country, protocol: protocol}
	arm := c.pick(k, rng)
	c.deltaFor(k, arm).pulls++
	return arm
}

// pick implements the two policies over the cell's merged view.
func (c *Cell) pick(k key, rng *rand.Rand) int {
	n := c.st.arms
	if n == 1 {
		return 0
	}
	// Eligible arms: everything not quarantined. If quarantine somehow
	// swallowed every arm (a portfolio of one collapsed strategy), fall
	// back to all arms — serving something beats serving nothing.
	eligible := c.eligible[:0]
	for a := 0; a < n; a++ {
		if !c.quarantined(k, a) {
			eligible = append(eligible, a)
		}
	}
	if len(eligible) == 0 {
		for a := 0; a < n; a++ {
			eligible = append(eligible, a)
		}
	}
	c.eligible = eligible

	switch c.st.sel.Policy {
	case UCB1:
		// Pull every eligible arm once first, in index order.
		var total float64
		for _, a := range eligible {
			p, _ := c.view(k, a)
			if p == 0 {
				return a
			}
			total += p
		}
		best, bestV := eligible[0], math.Inf(-1)
		lnN := math.Log(total + 1)
		for _, a := range eligible {
			p, w := c.view(k, a)
			v := w/p + c.st.sel.UCBC*math.Sqrt(lnN/p)
			if v > bestV {
				best, bestV = a, v
			}
		}
		return best
	default: // EpsilonGreedy
		if rng.Float64() < c.st.sel.Epsilon {
			return eligible[rng.Intn(len(eligible))]
		}
		// Exploit: best decayed mean; unpulled arms count as mean 1 (an
		// optimistic prior, so new and un-collapsed arms get tried).
		// Ties break to the lowest index — deterministic.
		best, bestV := eligible[0], math.Inf(-1)
		for _, a := range eligible {
			p, w := c.view(k, a)
			mean := 1.0
			if p > 0 {
				mean = w / p
			}
			if mean > bestV {
				best, bestV = a, mean
			}
		}
		return best
	}
}

// Observe records one settled attempt's outcome for the arm that served it.
func (c *Cell) Observe(country, protocol string, arm int, o Outcome) {
	d := c.deltaFor(key{country: country, protocol: protocol}, arm)
	switch o {
	case Served:
		d.served++
	case TornDown:
		d.torn++
	default:
		d.unest++
	}
}

// Drain empties the cell's accumulated deltas into the caller's hands (for
// the barrier fold) and resets the cell for the next wave, keeping
// capacity. The returned slice is valid until the cell's next use.
func (c *Cell) Drain() []delta {
	out := c.deltas
	c.deltas = c.deltas[:0]
	return out
}

// Barrier folds one wave's cell observations into the state and runs the
// decay and collapse-detection pass. Call on a single goroutine with the
// cells' deltas in stable cell order (the fleet passes cell-index order);
// because the per-(key,arm) fold is integer addition, any order produces
// the same state, but the stable order keeps the iteration obviously
// deterministic. Returns the number of arms newly quarantined (fallbacks).
func (st *State) Barrier(cellDeltas [][]delta) int {
	// 1. Decay every live window (the sliding-window forgetting step).
	for _, arms := range st.stats {
		for i := range arms {
			arms[i].pulls *= st.sel.Decay
			arms[i].wins *= st.sel.Decay
		}
	}
	// 2. Fold the wave's integer deltas in.
	for _, ds := range cellDeltas {
		for _, d := range ds {
			arms := st.armsFor(d.k)
			a := &arms[d.arm]
			a.pulls += float64(d.pulls)
			a.wins += float64(d.served)
			a.totalPulls += d.pulls
			a.totalServed += d.served
			a.totalTorn += d.torn
			a.totalUnest += d.unest
			mPulls.Add(d.pulls)
			mRewards.Add(d.served)
		}
	}
	// 3. Quarantine bookkeeping and collapse detection, per key in sorted
	// order (map iteration order must not leak into anything observable).
	newQuarantines := 0
	for _, k := range st.sortedKeys() {
		arms := st.stats[k]
		for i := range arms {
			if arms[i].quarantine > 0 {
				arms[i].quarantine--
			}
		}
		// The incumbent is the most-pulled arm of the decayed window (ties
		// to the lowest index). If its windowed success rate has cratered,
		// quarantine it and zero its window so re-entry re-earns trust.
		inc, incPulls := -1, 0.0
		for i := range arms {
			if arms[i].quarantine == 0 && arms[i].pulls > incPulls {
				inc, incPulls = i, arms[i].pulls
			}
		}
		if inc >= 0 && incPulls >= st.sel.MinPulls {
			if rate := arms[inc].wins / arms[inc].pulls; rate < st.sel.CollapseBelow {
				arms[inc].quarantine = st.sel.QuarantineWaves
				arms[inc].pulls = 0
				arms[inc].wins = 0
				arms[inc].everCollapsed = true
				st.fallbacks++
				newQuarantines++
				mFallbacks.Inc()
			}
		}
	}
	return newQuarantines
}

// Merge is the fleet-facing barrier entry point: it drains each cell's
// wave observations — in the caller's stable cell order — and folds them
// through Barrier. nil entries (cells without selection, e.g. uncensored
// populations) are skipped. Call on a single goroutine between waves.
func (st *State) Merge(cells []*Cell) int {
	st.scratch = st.scratch[:0]
	for _, c := range cells {
		if c != nil {
			st.scratch = append(st.scratch, c.Drain())
		}
	}
	return st.Barrier(st.scratch)
}

// sortedKeys returns the state's keys in stable (country, protocol) order.
func (st *State) sortedKeys() []key {
	keys := make([]key, 0, len(st.stats))
	for k := range st.stats {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].country != keys[j].country {
			return keys[i].country < keys[j].country
		}
		return keys[i].protocol < keys[j].protocol
	})
	return keys
}

// ArmReport is one arm's lifetime outcome totals for one country (summed
// over the country's protocols) — the selection table's row.
type ArmReport struct {
	Pulls         uint64 `json:"pulls"`
	Served        uint64 `json:"served"`
	TornDown      uint64 `json:"torn_down"`
	Unestablished uint64 `json:"unestablished"`
}

// CountryReport sums a country's lifetime per-arm outcomes across its
// protocols, indexed by arm. Arms never pulled report zeroes.
func (st *State) CountryReport(country string) []ArmReport {
	out := make([]ArmReport, st.arms)
	for k, arms := range st.stats {
		if k.country != country {
			continue
		}
		for i := range arms {
			out[i].Pulls += arms[i].totalPulls
			out[i].Served += arms[i].totalServed
			out[i].TornDown += arms[i].totalTorn
			out[i].Unestablished += arms[i].totalUnest
		}
	}
	return out
}
