package selector

import "geneva/internal/obs"

// Selector counters. All three are incremented only during the
// single-threaded wave-barrier fold (State.Barrier), from integer deltas
// whose values are pure functions of the seeds and the plan — so like
// every other instrument in the tree they are worker- and shard-width
// invariant.
var (
	// mPulls counts strategy selections (one per connection attempt
	// routed through the control plane).
	mPulls = obs.NewCounter("selector.pulls")
	// mRewards counts served attempts credited back to their arm.
	mRewards = obs.NewCounter("selector.rewards")
	// mFallbacks counts collapse-quarantine events: an incumbent arm's
	// windowed success rate cratered and it was benched for re-exploration.
	mFallbacks = obs.NewCounter("selector.fallbacks")
)
