package apps

import "testing"

// FuzzDNSQueryName: the GFW's DNS parser sees every byte a client sends;
// it must never panic and never mis-frame (its fail-open behaviour is what
// §6 depends on).
func FuzzDNSQueryName(f *testing.F) {
	f.Add(EncodeDNSQuery("www.wikipedia.org"))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		name, ok := DNSQueryName(data)
		if ok && len(name) == 0 {
			t.Fatal("claimed success with an empty name")
		}
		if rn, rok := refDNSQueryName(data); rn != name || rok != ok {
			t.Fatalf("byte parser diverged from reference: got (%q,%v), want (%q,%v)", name, ok, rn, rok)
		}
	})
}

// FuzzExtractSNI: likewise for the HTTPS boxes' ClientHello parser.
func FuzzExtractSNI(f *testing.F) {
	f.Add(EncodeClientHello("youtube.com"))
	f.Add([]byte{0x16, 0x03, 0x01, 0x00, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sni, ok := ExtractSNI(data)
		if ok && sni == "" {
			t.Fatal("claimed success with an empty SNI")
		}
	})
}

// FuzzHTTPParsers: request-line and Host-header extraction over arbitrary
// segments (the stateless censors run these on every packet).
func FuzzHTTPParsers(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: a.example\r\n\r\n"))
	f.Add([]byte("Host:"))
	f.Add([]byte{})
	// Each live parser must agree with the frozen string-based reference on
	// every input — the fail-open edges are load-bearing.
	check := func(t *testing.T, name string, live, ref func([]byte) (string, bool), data []byte) {
		t.Helper()
		g, gok := live(data)
		w, wok := ref(data)
		if g != w || gok != wok {
			t.Fatalf("%s diverged: got (%q,%v), want (%q,%v)", name, g, gok, w, wok)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		check(t, "HTTPRequestTarget", HTTPRequestTarget, refHTTPRequestTarget, data)
		check(t, "HTTPHostHeader", HTTPHostHeader, refHTTPHostHeader, data)
		check(t, "FTPRetrTarget", FTPRetrTarget, refFTPRetrTarget, data)
		check(t, "SMTPRcptTarget", SMTPRcptTarget, refSMTPRcptTarget, data)
	})
}
