package apps

import (
	"encoding/binary"

	"geneva/internal/packet"
)

// tlsClientRandom is the fixed 32-byte ClientHello random (deterministic
// runs; the censors never look at it).
var tlsClientRandom = func() [32]byte {
	var r [32]byte
	for i := range r {
		r[i] = byte(i*7 + 3)
	}
	return r
}()

// EncodeClientHello builds a TLS 1.2 ClientHello record carrying sni in a
// server_name extension — the exact payload Chinese and Iranian HTTPS DPI
// inspects (§4.2).
func EncodeClientHello(sni string) []byte {
	// Extension: server_name.
	var sniExt []byte
	sniExt = binary.BigEndian.AppendUint16(sniExt, uint16(len(sni)+3)) // server name list length
	sniExt = append(sniExt, 0)                                         // name type: host_name
	sniExt = binary.BigEndian.AppendUint16(sniExt, uint16(len(sni)))
	sniExt = append(sniExt, sni...)

	var exts []byte
	exts = binary.BigEndian.AppendUint16(exts, 0x0000) // extension type: server_name
	exts = binary.BigEndian.AppendUint16(exts, uint16(len(sniExt)))
	exts = append(exts, sniExt...)
	// supported_groups (keeps the hello realistic).
	exts = binary.BigEndian.AppendUint16(exts, 0x000a)
	exts = append(exts, 0x00, 0x04, 0x00, 0x02, 0x00, 0x17)

	var body []byte
	body = binary.BigEndian.AppendUint16(body, 0x0303) // client_version TLS 1.2
	body = append(body, tlsClientRandom[:]...)
	body = append(body, 0) // session_id length
	suites := []uint16{0xc02f, 0xc030, 0xc02b, 0xc02c, 0x009e, 0x009f, 0x002f, 0x0035}
	body = binary.BigEndian.AppendUint16(body, uint16(2*len(suites)))
	for _, s := range suites {
		body = binary.BigEndian.AppendUint16(body, s)
	}
	body = append(body, 1, 0) // compression: null only
	body = binary.BigEndian.AppendUint16(body, uint16(len(exts)))
	body = append(body, exts...)

	// Handshake header: ClientHello(1) + 24-bit length.
	hs := []byte{0x01, byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}
	hs = append(hs, body...)

	// Record header: handshake(22), TLS 1.0 on the first flight.
	rec := []byte{0x16, 0x03, 0x01, byte(len(hs) >> 8), byte(len(hs))}
	return append(rec, hs...)
}

// EncodeServerHello builds the canned server first flight the simulated
// HTTPS server returns (a plausible ServerHello record followed by an
// application-data record). The client script expects these exact bytes.
func EncodeServerHello() []byte {
	body := []byte{0x03, 0x03} // server_version
	for i := 0; i < 32; i++ {
		body = append(body, byte(255-i))
	}
	body = append(body, 0)          // session_id length
	body = append(body, 0xc0, 0x2f) // chosen suite
	body = append(body, 0)          // null compression
	hs := []byte{0x02, byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}
	hs = append(hs, body...)
	rec := []byte{0x16, 0x03, 0x03, byte(len(hs) >> 8), byte(len(hs))}
	rec = append(rec, hs...)
	appData := []byte("simulated-tls-application-data")
	rec = append(rec, 0x17, 0x03, 0x03, byte(len(appData)>>8), byte(len(appData)))
	return append(rec, appData...)
}

// ExtractSNI parses a TLS record stream chunk and returns the server_name
// from a ClientHello, if present and fully contained in data. Like the real
// DPI boxes, it fails open (returns false) on truncation — which is why
// segmenting the ClientHello defeats single-packet censors. The parser body
// lives in internal/packet so packet.Packet can memoize it per lifecycle
// (TLSServerName); this wrapper serves callers holding bare byte slices.
func ExtractSNI(data []byte) (string, bool) {
	return packet.ParseTLSServerName(data)
}
