package apps

import "strings"

// Reference copies of the original string-converting parsers, frozen as
// they stood before the byte-oriented ports moved to internal/packet. The
// fuzz targets in fuzz_test.go compare the live parsers against these on
// every input: the port must be semantically identical on all inputs, not
// just well-formed ones, because the censors' fail-open edges (§6) are
// exactly the malformed cases.

func refHTTPRequestTarget(data []byte) (string, bool) {
	s := string(data)
	if !strings.HasPrefix(s, "GET ") && !strings.HasPrefix(s, "POST ") {
		return "", false
	}
	line, _, ok := strings.Cut(s, "\r\n")
	if !ok {
		return "", false
	}
	parts := strings.Split(line, " ")
	if len(parts) < 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return "", false
	}
	return parts[1], true
}

func refHTTPHostHeader(data []byte) (string, bool) {
	s := string(data)
	idx := strings.Index(s, "Host:")
	if idx < 0 {
		return "", false
	}
	rest := s[idx+len("Host:"):]
	line, _, ok := strings.Cut(rest, "\r\n")
	if !ok {
		return "", false
	}
	return strings.TrimSpace(line), true
}

func refCommandArg(data []byte, cmd string) (string, bool) {
	s := string(data)
	idx := strings.Index(s, cmd)
	if idx < 0 {
		return "", false
	}
	rest := s[idx+len(cmd):]
	line, _, ok := strings.Cut(rest, "\r\n")
	if !ok {
		return "", false
	}
	return strings.TrimSpace(line), true
}

func refFTPRetrTarget(data []byte) (string, bool) {
	return refCommandArg(data, "RETR ")
}

func refSMTPRcptTarget(data []byte) (string, bool) {
	arg, ok := refCommandArg(data, "RCPT TO:")
	if !ok {
		return "", false
	}
	return strings.Trim(arg, "<>"), true
}

func refDNSQueryName(data []byte) (string, bool) {
	if len(data) < 2 {
		return "", false
	}
	msgLen := int(data[0])<<8 | int(data[1])
	msg := data[2:]
	if len(msg) > msgLen {
		msg = msg[:msgLen]
	}
	if len(msg) < 12 {
		return "", false
	}
	qd := int(msg[4])<<8 | int(msg[5])
	if qd == 0 {
		return "", false
	}
	name, _, ok := refDecodeDNSName(msg, 12)
	if name == "" {
		return "", false
	}
	return name, ok
}

func refDecodeDNSName(msg []byte, off int) (string, int, bool) {
	var labels []string
	for {
		if off >= len(msg) {
			return "", 0, false
		}
		l := int(msg[off])
		switch {
		case l == 0:
			return strings.Join(labels, "."), off + 1, true
		case l&0xc0 == 0xc0:
			return "", 0, false
		case off+1+l > len(msg) || l > 63:
			return "", 0, false
		default:
			labels = append(labels, string(msg[off+1:off+1+l]))
			off += 1 + l
		}
	}
}
