package apps

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"geneva/internal/packet"
	"geneva/internal/tcpstack"
)

// Session is one ready-to-run application exchange: a fresh client script
// per attempt and a server-app factory to install on the server endpoint.
type Session struct {
	Protocol  string
	Port      uint16
	client    *Script
	server    *Script
	exchanges int // request/response exchanges per connection (0 or 1 = one-shot)
}

// NewClient returns a fresh client application for one connection attempt
// (DNS retries, for example, need one per try).
func (s *Session) NewClient() *Script { return s.client.Clone() }

// ServerFactory returns the function to install as Endpoint.NewServerApp.
func (s *Session) ServerFactory() func(*tcpstack.Conn) tcpstack.App {
	return func(*tcpstack.Conn) tcpstack.App { return s.server.Clone() }
}

// Exchanges returns how many request/response exchanges one connection of
// this session carries (1 for the classic one-shot sessions).
func (s *Session) Exchanges() int {
	if s.exchanges > 1 {
		return s.exchanges
	}
	return 1
}

// KeepAlive derives a long-lived variant of a one-shot request/response
// session: one connection carrying n exchanges of the same request and
// response, each follow-up request held for gap of virtual time after the
// previous response lands. The protocols whose transcript is a single
// client request answered by a single server response (HTTP, HTTPS, DNS)
// extend this way; multi-step conversations (FTP, SMTP) are returned
// unchanged — their transcripts don't repeat.
//
// The server side answers each request as it arrives with no delay of its
// own, so the same server factory also serves a reconnecting client that
// runs fewer than n exchanges and closes early.
func (s *Session) KeepAlive(n int, gap time.Duration) *Session {
	if n <= 1 {
		return s
	}
	if len(s.client.SendOnEstablish) == 0 || len(s.client.SendAt) != 0 ||
		len(s.server.SendAt) != 1 || s.server.SendAt[0].Off != len(s.server.Expect) {
		return s
	}
	req := s.client.SendOnEstablish
	resp := s.server.SendAt[0].Data
	clientSend := make([]SendPoint, 0, n-1)
	for i := 1; i < n; i++ {
		clientSend = append(clientSend, SendPoint{Off: i * len(resp), Data: req, Delay: gap})
	}
	serverSend := make([]SendPoint, 0, n)
	for i := 1; i <= n; i++ {
		serverSend = append(serverSend, SendPoint{Off: i * len(req), Data: resp})
	}
	return &Session{
		Protocol:  s.Protocol,
		Port:      s.Port,
		exchanges: n,
		client: &Script{
			SendOnEstablish: req,
			Expect:          bytes.Repeat(resp, n),
			SendAt:          clientSend,
			CloseAtEnd:      s.client.CloseAtEnd,
			ExchangeSize:    len(resp),
		},
		server: &Script{
			Expect:       bytes.Repeat(req, n),
			SendAt:       serverSend,
			ExchangeSize: len(req),
		},
	}
}

// DNSSession builds a DNS-over-TCP lookup of name. The server resolves
// everything to 93.184.216.34.
func DNSSession(name string) *Session {
	query := EncodeDNSQuery(name)
	resp := EncodeDNSResponse(name, [4]byte{93, 184, 216, 34})
	return &Session{
		Protocol: "dns",
		Port:     53,
		client: &Script{
			SendOnEstablish: query,
			Expect:          resp,
		},
		server: &Script{
			Expect: query,
			SendAt: []SendPoint{{Off: len(query), Data: resp}},
		},
	}
}

// FTPSession builds an FTP control-channel sign-in followed by a RETR of
// filename (the paper's censorship trigger, e.g. "ultrasurf").
func FTPSession(filename string) *Session {
	greet := []byte("220 ftp.example.org FTP server ready\r\n")
	user := []byte("USER anonymous\r\n")
	userOK := []byte("331 Please specify the password\r\n")
	pass := []byte("PASS guest\r\n")
	passOK := []byte("230 Login successful\r\n")
	retr := []byte(fmt.Sprintf("RETR %s\r\n", filename))
	retrOK := []byte("150 Opening BINARY mode data connection\r\n226 Transfer complete\r\n")

	serverOut := concat(greet, userOK, passOK, retrOK)
	clientOut := concat(user, pass, retr)
	return &Session{
		Protocol: "ftp",
		Port:     21,
		client: &Script{
			Expect: serverOut,
			SendAt: []SendPoint{
				{Off: len(greet), Data: user},
				{Off: len(greet) + len(userOK), Data: pass},
				{Off: len(greet) + len(userOK) + len(passOK), Data: retr},
			},
		},
		server: &Script{
			SendOnEstablish: greet,
			Expect:          clientOut,
			SendAt: []SendPoint{
				{Off: len(user), Data: userOK},
				{Off: len(user) + len(pass), Data: passOK},
				{Off: len(clientOut), Data: retrOK},
			},
		},
	}
}

// HTTPQuerySession builds a GET with the keyword in the URL parameters —
// how the paper triggers China's HTTP censorship (?q=ultrasurf).
func HTTPQuerySession(keyword string) *Session {
	req := []byte(fmt.Sprintf("GET /?q=%s HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n", keyword))
	return httpSession(req)
}

// HTTPHostSession builds a GET with a (possibly blacklisted) Host header —
// how the paper triggers censorship in India, Iran, and Kazakhstan.
func HTTPHostSession(host string) *Session {
	req := []byte(fmt.Sprintf("GET / HTTP/1.1\r\nHost: %s\r\nAccept: */*\r\n\r\n", host))
	return httpSession(req)
}

func httpSession(req []byte) *Session {
	body := "<html><body>the real, uncensored page</body></html>"
	resp := []byte(fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: %d\r\n\r\n%s", len(body), body))
	return &Session{
		Protocol: "http",
		Port:     80,
		client: &Script{
			SendOnEstablish: req,
			Expect:          resp,
		},
		server: &Script{
			Expect: req,
			SendAt: []SendPoint{{Off: len(req), Data: resp}},
		},
	}
}

// HTTPSSession builds a TLS handshake with sni in the Server Name
// Indication field (e.g. www.wikipedia.org for China, youtube.com for Iran).
func HTTPSSession(sni string) *Session {
	hello := EncodeClientHello(sni)
	resp := EncodeServerHello()
	return &Session{
		Protocol: "https",
		Port:     443,
		client: &Script{
			SendOnEstablish: hello,
			Expect:          resp,
		},
		server: &Script{
			Expect: hello,
			SendAt: []SendPoint{{Off: len(hello), Data: resp}},
		},
	}
}

// SMTPSession builds an SMTP exchange mailing rcpt (the paper uses the
// censored address tibetalk@yahoo.com.cn).
func SMTPSession(rcpt string) *Session {
	greet := []byte("220 mail.example.org ESMTP ready\r\n")
	helo := []byte("HELO client.example.net\r\n")
	heloOK := []byte("250 mail.example.org\r\n")
	from := []byte("MAIL FROM:<sender@example.net>\r\n")
	fromOK := []byte("250 2.1.0 Ok\r\n")
	to := []byte(fmt.Sprintf("RCPT TO:<%s>\r\n", rcpt))
	toOK := []byte("250 2.1.5 Ok\r\n")

	serverOut := concat(greet, heloOK, fromOK, toOK)
	clientOut := concat(helo, from, to)
	return &Session{
		Protocol: "smtp",
		Port:     25,
		client: &Script{
			Expect: serverOut,
			SendAt: []SendPoint{
				{Off: len(greet), Data: helo},
				{Off: len(greet) + len(heloOK), Data: from},
				{Off: len(greet) + len(heloOK) + len(fromOK), Data: to},
			},
		},
		server: &Script{
			SendOnEstablish: greet,
			Expect:          clientOut,
			SendAt: []SendPoint{
				{Off: len(helo), Data: heloOK},
				{Off: len(helo) + len(from), Data: fromOK},
				{Off: len(clientOut), Data: toOK},
			},
		},
	}
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// --- DPI payload parsers used by the censor models ---
//
// The HTTP/TLS/DNS field extractors moved to internal/packet (appdata.go)
// so packet.Packet can memoize them per packet lifecycle; the wrappers here
// keep the historical API for callers holding bare byte slices (and the
// differential fuzz targets proving old and new semantics identical). The
// FTP/SMTP command parsers stay here — no censor hot path runs them against
// the same payload twice — but now scan bytes directly instead of
// string-converting the whole payload first.

// HTTPRequestTarget returns the request path+query of an HTTP request line
// contained in data, if one is fully present.
func HTTPRequestTarget(data []byte) (string, bool) {
	return packet.ParseHTTPRequestTarget(data)
}

// HTTPHostHeader returns the Host header value of an HTTP request contained
// in data, if fully present (terminated by CRLF).
func HTTPHostHeader(data []byte) (string, bool) {
	return packet.ParseHTTPHostHeader(data)
}

// FTPRetrTarget returns the argument of a RETR command in data, if fully
// present.
func FTPRetrTarget(data []byte) (string, bool) {
	return commandArg(data, "RETR ")
}

// SMTPRcptTarget returns the address in a RCPT TO command in data, if fully
// present.
func SMTPRcptTarget(data []byte) (string, bool) {
	arg, ok := commandArg(data, "RCPT TO:")
	if !ok {
		return "", false
	}
	return strings.Trim(arg, "<>"), true
}

func commandArg(data []byte, cmd string) (string, bool) {
	idx := bytes.Index(data, []byte(cmd))
	if idx < 0 {
		return "", false
	}
	rest := data[idx+len(cmd):]
	end := bytes.Index(rest, []byte("\r\n"))
	if end < 0 {
		return "", false
	}
	return string(bytes.TrimSpace(rest[:end])), true
}
