package apps

import (
	"bytes"
	"time"

	"geneva/internal/tcpstack"
)

// SendPoint schedules data to be sent once the peer's transcript has been
// received through offset Off. A non-zero Delay holds the send for that much
// virtual time after the offset is reached — how a keep-alive client spaces
// its follow-up requests across a long-lived connection instead of
// pipelining them back-to-back.
type SendPoint struct {
	Off   int
	Data  []byte
	Delay time.Duration
}

// Script is a deterministic application: it sends SendOnEstablish when the
// connection comes up, expects the peer to deliver exactly Expect, and sends
// each SendPoint's data once reception reaches its offset. The same type
// drives clients (Expect = the server's responses) and servers (Expect = the
// client's requests).
type Script struct {
	SendOnEstablish []byte
	Expect          []byte
	SendAt          []SendPoint
	CloseAtEnd      bool
	// ExchangeSize, when non-zero, divides Expect into fixed-size exchanges
	// (a keep-alive session's per-request responses) so Served can report
	// partial progress: how many whole exchanges arrived intact before the
	// connection died.
	ExchangeSize int

	got            []byte
	okLen          int // length of got's verified prefix (frozen at corruption)
	nextSend       int
	delayPending   bool
	established    bool
	closed         bool
	reset          bool
	corrupted      bool
	establishedAt  time.Duration
	lastProgressAt time.Duration
}

// Clone returns a fresh, un-run copy of the script.
func (s *Script) Clone() *Script {
	return &Script{
		SendOnEstablish: s.SendOnEstablish,
		Expect:          s.Expect,
		SendAt:          s.SendAt,
		CloseAtEnd:      s.CloseAtEnd,
		ExchangeSize:    s.ExchangeSize,
	}
}

// Restart returns the script to its un-run state so it can drive another
// connection, keeping the received-buffer capacity. It is the recycling
// counterpart of Clone for harnesses that run the same transcript many
// times (the fleet's per-cell script freelists).
func (s *Script) Restart() {
	s.got = s.got[:0]
	s.okLen = 0
	s.nextSend = 0
	s.delayPending = false
	s.established = false
	s.closed = false
	s.reset = false
	s.corrupted = false
	s.establishedAt = 0
	s.lastProgressAt = 0
}

// OnEstablished implements tcpstack.App.
func (s *Script) OnEstablished(c *tcpstack.Conn) {
	s.established = true
	s.establishedAt = c.Now()
	s.lastProgressAt = s.establishedAt
	if len(s.SendOnEstablish) > 0 {
		c.Send(s.SendOnEstablish)
	}
	s.pump(c)
}

// OnData implements tcpstack.App.
func (s *Script) OnData(c *tcpstack.Conn, data []byte) {
	s.got = append(s.got, data...)
	// The transcript must match byte-for-byte: any divergence (a block
	// page, injected garbage, reordered bytes) marks the run corrupted.
	if len(s.got) > len(s.Expect) || !bytes.Equal(s.got, s.Expect[:len(s.got)]) {
		s.corrupted = true
		return
	}
	s.okLen = len(s.got)
	s.lastProgressAt = c.Now()
	s.pump(c)
}

// pump sends every SendPoint whose offset has been reached. A SendPoint with
// a Delay is armed on the connection's virtual clock instead of sent inline;
// later points wait behind it (the transcript stays strictly ordered).
func (s *Script) pump(c *tcpstack.Conn) {
	for !s.delayPending && s.nextSend < len(s.SendAt) && len(s.got) >= s.SendAt[s.nextSend].Off {
		sp := &s.SendAt[s.nextSend]
		if sp.Delay > 0 {
			s.delayPending = true
			idx := s.nextSend
			// Conn.After already refuses to fire into a closed or recycled
			// connection; the index check additionally kills the timer if
			// the script itself was restarted for a new attempt.
			c.After(sp.Delay, func() {
				if !s.delayPending || s.nextSend != idx {
					return
				}
				s.delayPending = false
				c.Send(sp.Data)
				s.nextSend++
				s.pump(c)
			})
			return
		}
		c.Send(sp.Data)
		s.nextSend++
	}
	if s.CloseAtEnd && s.Complete() {
		c.Close()
	}
}

// OnClose implements tcpstack.App.
func (s *Script) OnClose(c *tcpstack.Conn, reset bool) {
	s.closed = true
	s.reset = s.reset || reset
}

// Established reports whether the handshake completed.
func (s *Script) Established() bool { return s.established }

// Complete reports whether the full expected transcript arrived intact.
func (s *Script) Complete() bool {
	return !s.corrupted && len(s.got) == len(s.Expect)
}

// Corrupted reports whether received data diverged from the transcript.
func (s *Script) Corrupted() bool { return s.corrupted }

// Reset reports whether the connection was torn down abortively.
func (s *Script) Reset() bool { return s.reset }

// Received returns the bytes received so far.
func (s *Script) Received() []byte { return s.got }

// Succeeded is the paper's §4.2 success criterion for the client side: the
// connection was not torn down before the correct, unaltered data arrived.
func (s *Script) Succeeded() bool { return s.Complete() }

// Served reports how many whole exchanges of the transcript arrived intact:
// okLen/ExchangeSize for a keep-alive script, or 1/0 (complete or not) for a
// single-exchange script. Corrupted bytes never count — okLen froze at the
// last verified prefix.
func (s *Script) Served() int {
	if s.ExchangeSize > 0 {
		return s.okLen / s.ExchangeSize
	}
	if s.Complete() {
		return 1
	}
	return 0
}

// EstablishedAt returns the virtual time the handshake completed (zero, and
// meaningless, unless Established).
func (s *Script) EstablishedAt() time.Duration { return s.establishedAt }

// LastProgressAt returns the virtual time the transcript last advanced — the
// moment the client last saw working service. Equal to EstablishedAt until
// the first verified byte arrives.
func (s *Script) LastProgressAt() time.Duration { return s.lastProgressAt }
