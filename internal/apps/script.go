package apps

import (
	"bytes"

	"geneva/internal/tcpstack"
)

// SendPoint schedules data to be sent once the peer's transcript has been
// received through offset Off.
type SendPoint struct {
	Off  int
	Data []byte
}

// Script is a deterministic application: it sends SendOnEstablish when the
// connection comes up, expects the peer to deliver exactly Expect, and sends
// each SendPoint's data once reception reaches its offset. The same type
// drives clients (Expect = the server's responses) and servers (Expect = the
// client's requests).
type Script struct {
	SendOnEstablish []byte
	Expect          []byte
	SendAt          []SendPoint
	CloseAtEnd      bool

	got         []byte
	nextSend    int
	established bool
	closed      bool
	reset       bool
	corrupted   bool
}

// Clone returns a fresh, un-run copy of the script.
func (s *Script) Clone() *Script {
	return &Script{
		SendOnEstablish: s.SendOnEstablish,
		Expect:          s.Expect,
		SendAt:          s.SendAt,
		CloseAtEnd:      s.CloseAtEnd,
	}
}

// Restart returns the script to its un-run state so it can drive another
// connection, keeping the received-buffer capacity. It is the recycling
// counterpart of Clone for harnesses that run the same transcript many
// times (the fleet's per-cell script freelists).
func (s *Script) Restart() {
	s.got = s.got[:0]
	s.nextSend = 0
	s.established = false
	s.closed = false
	s.reset = false
	s.corrupted = false
}

// OnEstablished implements tcpstack.App.
func (s *Script) OnEstablished(c *tcpstack.Conn) {
	s.established = true
	if len(s.SendOnEstablish) > 0 {
		c.Send(s.SendOnEstablish)
	}
	s.pump(c)
}

// OnData implements tcpstack.App.
func (s *Script) OnData(c *tcpstack.Conn, data []byte) {
	s.got = append(s.got, data...)
	// The transcript must match byte-for-byte: any divergence (a block
	// page, injected garbage, reordered bytes) marks the run corrupted.
	if len(s.got) > len(s.Expect) || !bytes.Equal(s.got, s.Expect[:len(s.got)]) {
		s.corrupted = true
		return
	}
	s.pump(c)
}

// pump sends every SendPoint whose offset has been reached.
func (s *Script) pump(c *tcpstack.Conn) {
	for s.nextSend < len(s.SendAt) && len(s.got) >= s.SendAt[s.nextSend].Off {
		c.Send(s.SendAt[s.nextSend].Data)
		s.nextSend++
	}
	if s.CloseAtEnd && s.Complete() {
		c.Close()
	}
}

// OnClose implements tcpstack.App.
func (s *Script) OnClose(c *tcpstack.Conn, reset bool) {
	s.closed = true
	s.reset = s.reset || reset
}

// Established reports whether the handshake completed.
func (s *Script) Established() bool { return s.established }

// Complete reports whether the full expected transcript arrived intact.
func (s *Script) Complete() bool {
	return !s.corrupted && len(s.got) == len(s.Expect)
}

// Corrupted reports whether received data diverged from the transcript.
func (s *Script) Corrupted() bool { return s.corrupted }

// Reset reports whether the connection was torn down abortively.
func (s *Script) Reset() bool { return s.reset }

// Received returns the bytes received so far.
func (s *Script) Received() []byte { return s.got }

// Succeeded is the paper's §4.2 success criterion for the client side: the
// connection was not torn down before the correct, unaltered data arrived.
func (s *Script) Succeeded() bool { return s.Complete() }
