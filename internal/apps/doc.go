// Package apps implements minimal wire-correct clients and servers for the
// five application protocols the paper triggers censorship with: DNS-over-TCP
// (RFC 1035/7766), FTP (RFC 959 control channel), HTTP/1.1, HTTPS (a real
// TLS ClientHello with an SNI extension), and SMTP (RFC 5321).
//
// Both ends run the same Script engine: a deterministic transcript of what
// to send and exactly what to expect back. Success is judged the way §4.2
// of the paper does — the connection is not forcibly torn down and the
// client receives the correct, *unaltered* data — so a block page, a
// Windows stack swallowing a SYN+ACK payload into the stream, or a censor
// RST all register as failures without any protocol-specific checks.
//
// The package also exports the payload parsers the censor models use for
// deep-packet inspection (DNS query names, HTTP request targets and Host
// headers, TLS SNI, FTP and SMTP commands).
package apps
