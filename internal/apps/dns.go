package apps

import (
	"encoding/binary"
	"strings"

	"geneva/internal/packet"
)

// dnsQueryID is the fixed transaction ID used by the simulated resolver
// client (deterministic runs).
const dnsQueryID = 0x1337

// EncodeDNSQuery builds a DNS-over-TCP query (RFC 7766: 2-byte length
// prefix) for an A record of name.
func EncodeDNSQuery(name string) []byte {
	msg := encodeDNSHeader(dnsQueryID, 0x0100, 1, 0) // RD set, 1 question
	msg = append(msg, encodeDNSName(name)...)
	msg = binary.BigEndian.AppendUint16(msg, 1) // QTYPE A
	msg = binary.BigEndian.AppendUint16(msg, 1) // QCLASS IN
	return prefixLen(msg)
}

// EncodeDNSResponse builds the matching DNS-over-TCP answer, resolving name
// to addr (an IPv4 4-byte slice).
func EncodeDNSResponse(name string, addr [4]byte) []byte {
	msg := encodeDNSHeader(dnsQueryID, 0x8180, 1, 1) // QR|RD|RA
	q := encodeDNSName(name)
	msg = append(msg, q...)
	msg = binary.BigEndian.AppendUint16(msg, 1)
	msg = binary.BigEndian.AppendUint16(msg, 1)
	// Answer: pointer to the question name.
	msg = append(msg, 0xc0, 0x0c)
	msg = binary.BigEndian.AppendUint16(msg, 1)   // TYPE A
	msg = binary.BigEndian.AppendUint16(msg, 1)   // CLASS IN
	msg = binary.BigEndian.AppendUint32(msg, 300) // TTL
	msg = binary.BigEndian.AppendUint16(msg, 4)   // RDLENGTH
	msg = append(msg, addr[:]...)
	return prefixLen(msg)
}

func encodeDNSHeader(id, flags uint16, qd, an uint16) []byte {
	h := make([]byte, 0, 12)
	h = binary.BigEndian.AppendUint16(h, id)
	h = binary.BigEndian.AppendUint16(h, flags)
	h = binary.BigEndian.AppendUint16(h, qd)
	h = binary.BigEndian.AppendUint16(h, an)
	h = binary.BigEndian.AppendUint16(h, 0)
	h = binary.BigEndian.AppendUint16(h, 0)
	return h
}

func encodeDNSName(name string) []byte {
	var b []byte
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0)
}

func prefixLen(msg []byte) []byte {
	out := make([]byte, 2, 2+len(msg))
	binary.BigEndian.PutUint16(out, uint16(len(msg)))
	return append(out, msg...)
}

// DNSQueryName extracts the first question name from a DNS-over-TCP stream
// chunk (length prefix + message). It is the parser the GFW's DNS box runs;
// it fails closed to ("", false) on anything malformed or truncated, which
// per §6 makes the censor fail *open*. The parser body lives in
// internal/packet so packet.Packet can memoize it per lifecycle
// (DNSQueryName); this wrapper serves callers holding bare byte slices.
func DNSQueryName(data []byte) (string, bool) {
	return packet.ParseDNSQueryName(data)
}
