package apps

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"geneva/internal/netsim"
	"geneva/internal/tcpstack"
)

var (
	clientAddr = netip.MustParseAddr("10.1.0.2")
	serverAddr = netip.MustParseAddr("198.51.100.9")
)

// runSession runs one clean (censor-free) connection of the session and
// returns the client script.
func runSession(t *testing.T, s *Session) *Script {
	t.Helper()
	client := tcpstack.NewEndpoint(clientAddr, tcpstack.DefaultClient, rand.New(rand.NewSource(1)))
	server := tcpstack.NewEndpoint(serverAddr, tcpstack.DefaultServer, rand.New(rand.NewSource(2)))
	server.NewServerApp = s.ServerFactory()
	server.Listen(s.Port)
	n := netsim.New(client, server)
	client.Attach(n)
	server.Attach(n)
	app := s.NewClient()
	client.Connect(serverAddr, s.Port, app)
	n.Run(0)
	return app
}

func TestAllSessionsSucceedWithoutCensor(t *testing.T) {
	sessions := map[string]*Session{
		"dns":   DNSSession("www.wikipedia.org"),
		"ftp":   FTPSession("ultrasurf"),
		"http":  HTTPQuerySession("ultrasurf"),
		"https": HTTPSSession("www.wikipedia.org"),
		"smtp":  SMTPSession("tibetalk@yahoo.com.cn"),
	}
	for name, s := range sessions {
		app := runSession(t, s)
		if !app.Succeeded() {
			t.Errorf("%s: clean run failed (complete=%v corrupted=%v got=%d bytes)",
				name, app.Complete(), app.Corrupted(), len(app.Received()))
		}
		if !app.Established() {
			t.Errorf("%s: never established", name)
		}
	}
}

func TestScriptDetectsCorruption(t *testing.T) {
	s := &Script{Expect: []byte("hello world")}
	s.OnData(nil, []byte("hello"))
	if s.Corrupted() || s.Complete() {
		t.Fatal("prefix should be fine and incomplete")
	}
	s.OnData(nil, []byte(" worlX"))
	if !s.Corrupted() {
		t.Fatal("divergent byte not detected")
	}
}

func TestScriptDetectsOverrun(t *testing.T) {
	s := &Script{Expect: []byte("ok")}
	s.OnData(nil, []byte("ok, and then a block page"))
	if !s.Corrupted() {
		t.Fatal("extra data beyond transcript not detected")
	}
}

func TestScriptCompleteExactly(t *testing.T) {
	s := &Script{Expect: []byte("response")}
	s.OnData(nil, []byte("resp"))
	s.OnData(nil, []byte("onse"))
	if !s.Complete() || !s.Succeeded() {
		t.Fatal("split delivery should complete")
	}
}

func TestDNSEncodingRoundtrip(t *testing.T) {
	q := EncodeDNSQuery("www.wikipedia.org")
	name, ok := DNSQueryName(q)
	if !ok || name != "www.wikipedia.org" {
		t.Errorf("DNSQueryName = %q, %v", name, ok)
	}
	// Length prefix must match.
	if int(q[0])<<8|int(q[1]) != len(q)-2 {
		t.Errorf("length prefix %d, message %d", int(q[0])<<8|int(q[1]), len(q)-2)
	}
}

func TestDNSQueryNameFailsOpenOnFragments(t *testing.T) {
	q := EncodeDNSQuery("www.wikipedia.org")
	// A censor without reassembly sees fragments: the parser must fail
	// open (no name) until the QNAME is fully present, and never panic.
	nameEnd := 2 + 12 + len("www.wikipedia.org") + 2 // prefix + header + labels + root
	for cut := 1; cut < len(q)-1; cut++ {
		name, ok := DNSQueryName(q[:cut])
		if ok && cut < nameEnd {
			t.Errorf("name %q parsed from %d-byte fragment (QNAME ends at %d)", name, cut, nameEnd)
		}
		if cut >= nameEnd && (!ok || name != "www.wikipedia.org") {
			t.Errorf("complete QNAME at %d bytes not parsed", cut)
		}
	}
	if _, ok := DNSQueryName(nil); ok {
		t.Error("parsed empty data")
	}
	if _, ok := DNSQueryName([]byte{0, 3, 1, 2, 3}); ok {
		t.Error("parsed garbage")
	}
}

func TestDNSResponseParses(t *testing.T) {
	r := EncodeDNSResponse("example.com", [4]byte{1, 2, 3, 4})
	if len(r) < 14 {
		t.Fatal("response too short")
	}
	if r[2+2]&0x80 == 0 { // QR bit in flags high byte (after 2-byte prefix, 2-byte ID)
		t.Error("QR bit not set in response")
	}
}

func TestExtractSNI(t *testing.T) {
	hello := EncodeClientHello("youtube.com")
	sni, ok := ExtractSNI(hello)
	if !ok || sni != "youtube.com" {
		t.Errorf("ExtractSNI = %q, %v", sni, ok)
	}
}

func TestExtractSNIFailsOpenOnTruncation(t *testing.T) {
	hello := EncodeClientHello("youtube.com")
	for cut := 1; cut < len(hello); cut++ {
		if sni, ok := ExtractSNI(hello[:cut]); ok {
			t.Fatalf("SNI %q extracted from %d/%d-byte fragment", sni, cut, len(hello))
		}
	}
	if _, ok := ExtractSNI([]byte{0x17, 0x03, 0x03, 0, 1, 0}); ok {
		t.Error("extracted SNI from application-data record")
	}
}

func TestExtractSNIProperty(t *testing.T) {
	f := func(b []byte) bool {
		// Must never panic and never claim success on random bytes that
		// don't start like a handshake record.
		sni, ok := ExtractSNI(b)
		if ok && len(b) > 0 && b[0] != 0x16 {
			return false
		}
		_ = sni
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHTTPParsers(t *testing.T) {
	req := []byte("GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n")
	target, ok := HTTPRequestTarget(req)
	if !ok || target != "/?q=ultrasurf" {
		t.Errorf("target = %q, %v", target, ok)
	}
	host, ok := HTTPHostHeader(req)
	if !ok || host != "example.com" {
		t.Errorf("host = %q, %v", host, ok)
	}
	// Split requests must fail open.
	if _, ok := HTTPRequestTarget(req[:9]); ok {
		t.Error("parsed target from fragment")
	}
	if _, ok := HTTPHostHeader([]byte("Host: exam")); ok {
		t.Error("parsed unterminated host")
	}
	if _, ok := HTTPRequestTarget([]byte("BREW /pot HTCPCP/1.0\r\n\r\n")); ok {
		t.Error("parsed non-HTTP method")
	}
}

func TestFTPAndSMTPParsers(t *testing.T) {
	if f, ok := FTPRetrTarget([]byte("RETR ultrasurf\r\n")); !ok || f != "ultrasurf" {
		t.Errorf("FTPRetrTarget = %q, %v", f, ok)
	}
	if _, ok := FTPRetrTarget([]byte("RETR ultra")); ok {
		t.Error("parsed unterminated RETR")
	}
	if r, ok := SMTPRcptTarget([]byte("RCPT TO:<tibetalk@yahoo.com.cn>\r\n")); !ok || r != "tibetalk@yahoo.com.cn" {
		t.Errorf("SMTPRcptTarget = %q, %v", r, ok)
	}
	if _, ok := SMTPRcptTarget([]byte("MAIL FROM:<a@b>\r\n")); ok {
		t.Error("parsed RCPT from MAIL FROM")
	}
}

func TestSessionClientScriptsAreFresh(t *testing.T) {
	s := HTTPQuerySession("ultrasurf")
	a, b := s.NewClient(), s.NewClient()
	a.OnData(nil, []byte("HTTP/1.1"))
	if len(b.Received()) != 0 {
		t.Error("client scripts share state")
	}
}

func TestHTTPSSessionTranscriptContainsSNI(t *testing.T) {
	s := HTTPSSession("www.wikipedia.org")
	if !bytes.Contains(s.client.SendOnEstablish, []byte("www.wikipedia.org")) {
		t.Error("ClientHello does not contain the SNI bytes")
	}
}

func TestFTPSessionDialogue(t *testing.T) {
	s := FTPSession("ultrasurf")
	app := runSession(t, s)
	if !app.Succeeded() {
		t.Fatalf("FTP dialogue failed: got %q", app.Received())
	}
	if !strings.Contains(string(app.Received()), "226 Transfer complete") {
		t.Error("missing final FTP response")
	}
}

func TestKeepAliveSessionCleanRun(t *testing.T) {
	const n, gap = 4, 30 * time.Second
	s := HTTPQuerySession("kittens").KeepAlive(n, gap)
	if s.Exchanges() != n {
		t.Fatalf("Exchanges = %d, want %d", s.Exchanges(), n)
	}
	app := runSession(t, s)
	if !app.Succeeded() {
		t.Fatalf("clean keep-alive run failed (complete=%v corrupted=%v got=%d bytes)",
			app.Complete(), app.Corrupted(), len(app.Received()))
	}
	if app.Served() != n {
		t.Errorf("Served = %d, want %d", app.Served(), n)
	}
	// The follow-up requests are spaced by gap of virtual time: the last
	// response cannot have landed before (n-1) gaps elapsed.
	if lifetime := app.LastProgressAt() - app.EstablishedAt(); lifetime < (n-1)*gap {
		t.Errorf("transcript finished after %v of virtual time, want >= %v", lifetime, (n-1)*gap)
	}
}

func TestKeepAliveOnlyExtendsOneShotSessions(t *testing.T) {
	for name, s := range map[string]*Session{
		"ftp":  FTPSession("ultrasurf"),
		"smtp": SMTPSession("tibetalk@yahoo.com.cn"),
	} {
		if got := s.KeepAlive(3, time.Second); got != s {
			t.Errorf("%s: KeepAlive extended a multi-step conversation", name)
		}
	}
	s := HTTPQuerySession("kittens")
	if got := s.KeepAlive(1, time.Second); got != s {
		t.Error("KeepAlive(1) must be the session itself")
	}
	if got := DNSSession("example.com").KeepAlive(3, time.Second); got.Exchanges() != 3 {
		t.Error("DNS-over-TCP session did not extend")
	}
}

func TestServedCountsWholeExchanges(t *testing.T) {
	s := HTTPQuerySession("kittens").KeepAlive(3, time.Second)
	app := s.NewClient()
	resp := app.Expect[:app.ExchangeSize]
	app.OnData(nil, resp)
	app.OnData(nil, resp[:4]) // partial second response
	if app.Served() != 1 {
		t.Fatalf("Served = %d after one full + one partial exchange, want 1", app.Served())
	}
	app.OnData(nil, []byte("NOT THE TRANSCRIPT"))
	if !app.Corrupted() {
		t.Fatal("corruption not detected")
	}
	if app.Served() != 1 {
		t.Fatalf("Served = %d after corruption, want frozen at 1", app.Served())
	}
	// A one-shot script reports 0 or 1.
	one := HTTPQuerySession("kittens").NewClient()
	if one.Served() != 0 {
		t.Fatal("unstarted one-shot Served != 0")
	}
	one.OnData(nil, one.Expect)
	if one.Served() != 1 {
		t.Fatal("complete one-shot Served != 1")
	}
}

func TestKeepAliveRestartResetsProgress(t *testing.T) {
	s := HTTPQuerySession("kittens").KeepAlive(2, time.Second)
	app := runSession(t, s)
	if app.Served() != 2 {
		t.Fatalf("Served = %d, want 2", app.Served())
	}
	app.Restart()
	if app.Served() != 0 || app.Established() || app.EstablishedAt() != 0 || app.LastProgressAt() != 0 {
		t.Fatal("Restart left keep-alive progress behind")
	}
	// The restarted script drives a fresh connection end to end.
	app2 := runSession(t, s)
	if !app2.Succeeded() {
		t.Fatal("restarted-shape script failed a clean run")
	}
}
