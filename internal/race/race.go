//go:build race

// Package race reports whether the race detector is enabled, so tests with
// allocation budgets can skip themselves: race instrumentation allocates on
// its own, which makes testing.AllocsPerRun counts meaningless. The budgets
// are still enforced in CI by the non-race `make alloc-budget` step.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
