package genetic

import (
	"strings"
	"testing"

	"geneva/internal/core"
)

func TestMinimizePrunesVestigialNodes(t *testing.T) {
	// A bloated Strategy-1: the working core (duplicate -> RST, SYN) is
	// wrapped in pointless extra tampers and duplicates.
	bloated := core.MustParse(
		`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R}(tamper{IP:tos:replace:7}(tamper{TCP:urgptr:replace:9},),),tamper{TCP:flags:replace:S}(duplicate(,drop),))-| \/ `)
	// Fitness: a white-box score for "emits exactly a RST then a SYN".
	fitness := func(s *core.Strategy) float64 {
		str := s.String()
		score := 0.0
		if strings.Contains(str, "tamper{TCP:flags:replace:R}") {
			score += 0.5
		}
		if strings.Contains(str, "tamper{TCP:flags:replace:S}") {
			score += 0.5
		}
		return score
	}
	before := bloated.Size()
	min, fit := Minimize(bloated, fitness, 0)
	if fit < 1.0 {
		t.Fatalf("minimization lost fitness: %.2f (%s)", fit, min)
	}
	if min.Size() >= before {
		t.Fatalf("no pruning: %d -> %d nodes", before, min.Size())
	}
	// The vestigial tampers must be gone.
	for _, gone := range []string{"tos", "urgptr", "drop"} {
		if strings.Contains(min.String(), gone) {
			t.Errorf("vestigial %q survived: %s", gone, min)
		}
	}
	// The original must be untouched.
	if bloated.Size() != before {
		t.Error("Minimize modified its input")
	}
}

func TestMinimizeLeavesMinimalAlone(t *testing.T) {
	minimal := core.MustParse(`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \/ `)
	fitness := func(s *core.Strategy) float64 {
		str := s.String()
		if strings.Contains(str, ":R}") && strings.Contains(str, ":S}") &&
			strings.Contains(str, "duplicate") {
			return 1
		}
		return 0
	}
	min, fit := Minimize(minimal, fitness, 0)
	if fit != 1 {
		t.Fatalf("fitness dropped to %.2f", fit)
	}
	if min.Size() > minimal.Size() {
		t.Error("minimization grew the strategy")
	}
}

func TestMinimizeToleranceAllowsNoise(t *testing.T) {
	s := core.MustParse(`[TCP:flags:SA]-tamper{TCP:seq:corrupt}(tamper{TCP:ack:corrupt},)-| \/ `)
	calls := 0
	// A noisy fitness that wobbles by 0.05.
	fitness := func(*core.Strategy) float64 {
		calls++
		if calls%2 == 0 {
			return 0.75
		}
		return 0.8
	}
	min, _ := Minimize(s, fitness, 0.1)
	// With generous tolerance everything prunes down to almost nothing.
	if min.Size() > 1 {
		t.Errorf("tolerant minimization kept %d nodes: %s", min.Size(), min)
	}
}
