package genetic

import (
	"math/rand"

	"geneva/internal/core"
)

// tamperFields are the TCP fields mutation draws from, mirroring the
// building blocks the paper's strategies use.
var tamperFields = []string{
	"flags", "seq", "ack", "window", "chksum", "load",
	"options-wscale", "options-mss", "dataofs", "urgptr",
}

// flagValues are plausible replacement values for TCP:flags.
var flagValues = []string{"", "F", "S", "R", "A", "SA", "RA", "FA", "PA", "SR", "FR"}

// triggerChoices are the packet shapes a server actually emits, for runs
// where the trigger itself evolves (§4.1: only FTP gives the server any
// packet besides the SYN+ACK before censorship strikes).
var triggerChoices = []string{"SA", "PA", "A", "FA", "S"}

// RandomStrategy builds a fresh individual: one outbound rule triggered on
// [TCP:flags:<trigger>] with a small random action tree. An empty trigger
// means "evolvable": a random choice now, mutable later.
func RandomStrategy(rng *rand.Rand, trigger string) *core.Strategy {
	if trigger == "" {
		trigger = triggerChoices[rng.Intn(len(triggerChoices))]
	}
	return &core.Strategy{
		Outbound: []core.Rule{{
			Trigger: core.Trigger{Proto: "TCP", Field: "flags", Value: trigger},
			Action:  randomTree(rng, 1+rng.Intn(2)),
		}},
	}
}

// randomTree grows a random action tree of at most the given depth.
func randomTree(rng *rand.Rand, depth int) *core.Action {
	if depth <= 0 || rng.Intn(3) == 0 {
		return randomLeaf(rng)
	}
	switch rng.Intn(4) {
	case 0:
		return core.Duplicate(randomTree(rng, depth-1), randomTree(rng, depth-1))
	case 1, 2:
		return randomTamper(rng, randomTree(rng, depth-1))
	default:
		return core.Fragment("tcp", rng.Intn(16), rng.Intn(2) == 0,
			randomTree(rng, depth-1), randomTree(rng, depth-1))
	}
}

func randomLeaf(rng *rand.Rand) *core.Action {
	if rng.Intn(6) == 0 {
		return core.Drop()
	}
	if rng.Intn(2) == 0 {
		return nil // implicit send
	}
	return core.Send()
}

func randomTamper(rng *rand.Rand, next *core.Action) *core.Action {
	field := tamperFields[rng.Intn(len(tamperFields))]
	if rng.Intn(2) == 0 {
		return core.Tamper("TCP", field, "corrupt", "", next)
	}
	value := ""
	switch field {
	case "flags":
		value = flagValues[rng.Intn(len(flagValues))]
	case "window":
		value = []string{"0", "10", "64", "1024", "65535"}[rng.Intn(5)]
	case "seq", "ack":
		value = []string{"0", "1", "4294967295"}[rng.Intn(3)]
	case "load":
		value = []string{"GET / HTTP1.", "x", "AAAAAAAA"}[rng.Intn(3)]
	case "options-wscale", "options-mss":
		value = []string{"", "0", "7"}[rng.Intn(3)]
	default:
		value = "0"
	}
	return core.Tamper("TCP", field, "replace", value, next)
}

// slot is an assignable position in a rule's action tree.
type slot struct {
	ptr           **core.Action
	isTamperRight bool
}

// collectSlots gathers every assignable child position, including the root.
func collectSlots(r *core.Rule) []slot {
	var out []slot
	var walk func(p **core.Action, tamperRight bool)
	walk = func(p **core.Action, tamperRight bool) {
		out = append(out, slot{ptr: p, isTamperRight: tamperRight})
		a := *p
		if a == nil {
			return
		}
		walk(&a.Left, false)
		walk(&a.Right, a.Kind == core.ActTamper)
	}
	walk(&r.Action, false)
	return out
}

// Mutate applies one random structural or parametric mutation to s. With
// an empty trigger restriction, one mutation in eight re-rolls the rule's
// trigger instead of touching the action tree.
func Mutate(rng *rand.Rand, s *core.Strategy, trigger string) {
	// Every arm below edits s in place; the memoized canonical text must
	// not survive any of them.
	defer s.Invalidate()
	if len(s.Outbound) == 0 {
		*s = *RandomStrategy(rng, trigger)
		return
	}
	r := &s.Outbound[rng.Intn(len(s.Outbound))]
	if trigger == "" && rng.Intn(8) == 0 {
		r.Trigger.Value = triggerChoices[rng.Intn(len(triggerChoices))]
		return
	}
	slots := collectSlots(r)
	sl := slots[rng.Intn(len(slots))]
	if sl.isTamperRight {
		return // tamper's right branch must stay empty
	}
	node := *sl.ptr

	switch rng.Intn(5) {
	case 0:
		// Replace the subtree with a fresh random one.
		*sl.ptr = randomTree(rng, 1+rng.Intn(2))
	case 1:
		// Wrap the subtree in a new node.
		if rng.Intn(2) == 0 {
			*sl.ptr = core.Duplicate(node, nil)
		} else {
			*sl.ptr = randomTamper(rng, node)
		}
	case 2:
		// Hoist a child (prune one level).
		if node != nil && node.Left != nil {
			*sl.ptr = node.Left
		} else {
			*sl.ptr = nil
		}
	case 3:
		// Re-randomize a tamper's parameters.
		if node != nil && node.Kind == core.ActTamper {
			fresh := randomTamper(rng, node.Left)
			*sl.ptr = fresh
		} else {
			*sl.ptr = randomTamper(rng, node)
		}
	case 4:
		// Prune to a leaf.
		*sl.ptr = randomLeaf(rng)
	}
	if r.Action == nil {
		r.Action = core.Send()
	}
}

// Crossover swaps a random subtree of dst with a random subtree of src
// (src is consumed; pass a clone).
func Crossover(rng *rand.Rand, dst, src *core.Strategy) {
	if len(dst.Outbound) == 0 || len(src.Outbound) == 0 {
		return
	}
	dr := &dst.Outbound[rng.Intn(len(dst.Outbound))]
	sr := &src.Outbound[rng.Intn(len(src.Outbound))]
	dSlots := collectSlots(dr)
	sSlots := collectSlots(sr)
	ds := dSlots[rng.Intn(len(dSlots))]
	ss := sSlots[rng.Intn(len(sSlots))]
	if ds.isTamperRight {
		return
	}
	*ds.ptr = *ss.ptr
	if dr.Action == nil {
		dr.Action = core.Send()
	}
	dst.Invalidate()
}
