package genetic

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"geneva/internal/core"
)

func TestRandomStrategyIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s := RandomStrategy(rng, "SA")
		if len(s.Outbound) != 1 {
			t.Fatal("random strategy must have one outbound rule")
		}
		if s.Outbound[0].Trigger.Value != "SA" {
			t.Fatal("trigger restriction violated")
		}
		// Canonical string must reparse.
		if _, err := core.Parse(s.String()); err != nil {
			t.Fatalf("unparseable random strategy %q: %v", s.String(), err)
		}
	}
}

func TestMutatePreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := RandomStrategy(rng, "SA")
	for i := 0; i < 500; i++ {
		Mutate(rng, s, "SA")
		if len(s.Outbound) == 0 {
			t.Fatal("mutation deleted the rule")
		}
		str := s.String()
		if _, err := core.Parse(str); err != nil {
			t.Fatalf("iteration %d: unparseable %q: %v", i, str, err)
		}
		if s.Outbound[0].Trigger.Value != "SA" {
			t.Fatal("mutation changed the trigger restriction")
		}
	}
}

func TestCrossoverPreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		a := RandomStrategy(rng, "SA")
		b := RandomStrategy(rng, "SA")
		Crossover(rng, a, b.Clone())
		if _, err := core.Parse(a.String()); err != nil {
			t.Fatalf("crossover produced unparseable %q: %v", a.String(), err)
		}
	}
}

func TestMutatedTreesNeverGiveTamperTwoBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	check := func(a *core.Action) bool {
		var ok func(n *core.Action) bool
		ok = func(n *core.Action) bool {
			if n == nil {
				return true
			}
			if n.Kind == core.ActTamper && n.Right != nil {
				return false
			}
			return ok(n.Left) && ok(n.Right)
		}
		return ok(a)
	}
	s := RandomStrategy(rng, "SA")
	for i := 0; i < 1000; i++ {
		Mutate(rng, s, "SA")
		if !check(s.Outbound[0].Action) {
			t.Fatalf("iteration %d: tamper with two branches in %q", i, s.String())
		}
	}
}

func TestEvolveFindsSimpleTarget(t *testing.T) {
	// Fitness rewards emitting a RST before a SYN on the SYN+ACK — the
	// evolution must discover something Strategy-1-shaped. This is a
	// white-box surrogate for the censor-driven fitness used in eval.
	rng := rand.New(rand.NewSource(11))
	fitness := func(s *core.Strategy) float64 {
		str := s.String()
		score := 0.0
		if strings.Contains(str, "tamper{TCP:flags:replace:R}") {
			score += 0.5
		}
		if strings.Contains(str, "duplicate") {
			score += 0.3
		}
		if strings.Contains(str, "tamper{TCP:flags:replace:S}") {
			score += 0.2
		}
		return score
	}
	res := Evolve(Config{
		PopulationSize: 120,
		Generations:    60,
		ConvergeAfter:  -1,
		Fitness:        fitness,
		Rng:            rng,
	})
	if res.Best.Fitness < 0.8 {
		t.Fatalf("evolution stalled at fitness %.2f with %q",
			res.Best.Fitness, res.Best.Strategy.String())
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	// Fitness must be non-decreasing for the recorded best.
	prev := -1.0
	for _, g := range res.History {
		if g.Best < prev-1e-9 {
			// The per-generation best can dip (mutation churn), but the
			// running best in res.Best must dominate all of them.
			if g.Best > res.Best.Fitness {
				t.Fatalf("generation best %f exceeds final best %f", g.Best, res.Best.Fitness)
			}
		}
		prev = g.Best
	}
}

func TestEvolveConvergesEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	res := Evolve(Config{
		PopulationSize: 30,
		Generations:    50,
		ConvergeAfter:  3,
		Fitness:        func(*core.Strategy) float64 { return 0.5 }, // flat landscape
		Rng:            rng,
	})
	if len(res.History) >= 50 {
		t.Errorf("ran all %d generations despite a flat landscape", len(res.History))
	}
}

func TestEvolveRespectsMaxNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	res := Evolve(Config{
		PopulationSize: 40,
		Generations:    10,
		MaxNodes:       6,
		// Reward bloat to fight the cap.
		Fitness: func(s *core.Strategy) float64 { return float64(s.Size()) / 100 },
		Rng:     rng,
	})
	_ = res
	// The cap is applied pre-evaluation; just ensure no pathological blowup
	// in the final best.
	if res.Best.Strategy.Size() > 40 {
		t.Errorf("best strategy has %d nodes", res.Best.Strategy.Size())
	}
}

func TestCollectSlotsCoversTree(t *testing.T) {
	s := core.MustParse(`[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},tamper{TCP:flags:replace:S})-| \/ `)
	slots := collectSlots(&s.Outbound[0])
	// root + dup.Left + dup.Right + 2 tamper.Left + 2 tamper.Right = 7
	if len(slots) != 7 {
		t.Errorf("collectSlots found %d slots, want 7", len(slots))
	}
}

func TestRandomTreePropertyNoPanics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomStrategy(rng, "SA")
		for i := 0; i < 20; i++ {
			Mutate(rng, s, "SA")
		}
		_, err := core.Parse(s.String())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEvolveBatchSeamMatchesFitnessPath proves the seam itself: wrapping a
// pure fitness function as a BatchFitness must reproduce the per-individual
// path's Result bit for bit — same best, same fitness, same history.
func TestEvolveBatchSeamMatchesFitnessPath(t *testing.T) {
	fitness := func(s *core.Strategy) float64 {
		// Pure function of the canonical text (a cheap censor surrogate).
		str := s.String()
		score := float64(len(str)%13) / 26
		if strings.Contains(str, "duplicate") {
			score += 0.4
		}
		if strings.Contains(str, "corrupt") {
			score += 0.2
		}
		return score
	}
	run := func(batch bool) Result {
		cfg := Config{
			PopulationSize: 40,
			Generations:    8,
			ConvergeAfter:  -1,
			Rng:            rand.New(rand.NewSource(19)),
		}
		if batch {
			cfg.BatchFitness = func(pop []*core.Strategy) []float64 {
				out := make([]float64, len(pop))
				for i, s := range pop {
					out[i] = fitness(s)
				}
				return out
			}
		} else {
			cfg.Fitness = fitness
		}
		return Evolve(cfg)
	}
	want, got := run(false), run(true)
	if want.Best.Strategy.String() != got.Best.Strategy.String() {
		t.Errorf("best diverged: %q vs %q", want.Best.Strategy, got.Best.Strategy)
	}
	if want.Best.Fitness != got.Best.Fitness {
		t.Errorf("best fitness diverged: %v vs %v", want.Best.Fitness, got.Best.Fitness)
	}
	if !reflect.DeepEqual(want.History, got.History) {
		t.Errorf("histories diverged:\n seq   %+v\n batch %+v", want.History, got.History)
	}
}

// TestEvolveBatchSeamSeesWholePopulation checks the contract: every
// generation arrives as one call covering the full population, and a
// mis-sized return panics rather than silently misaligning fitness.
func TestEvolveBatchSeamSeesWholePopulation(t *testing.T) {
	calls := 0
	res := Evolve(Config{
		PopulationSize: 25,
		Generations:    4,
		ConvergeAfter:  -1,
		Rng:            rand.New(rand.NewSource(23)),
		BatchFitness: func(pop []*core.Strategy) []float64 {
			calls++
			if len(pop) != 25 {
				t.Fatalf("call %d scored %d strategies, want the full population of 25", calls, len(pop))
			}
			return make([]float64, len(pop))
		},
	})
	if calls != 4 {
		t.Errorf("BatchFitness called %d times for 4 generations", calls)
	}
	if res.Best.Strategy == nil {
		t.Error("no best recorded")
	}

	defer func() {
		if recover() == nil {
			t.Error("short BatchFitness return did not panic")
		}
	}()
	Evolve(Config{
		PopulationSize: 10,
		Generations:    1,
		Rng:            rand.New(rand.NewSource(2)),
		BatchFitness:   func(pop []*core.Strategy) []float64 { return make([]float64, len(pop)-1) },
	})
}

func TestEvolveTriggerExploresTriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	seen := map[string]bool{}
	s := RandomStrategy(rng, "")
	for i := 0; i < 400; i++ {
		Mutate(rng, s, "")
		seen[s.Outbound[0].Trigger.Value] = true
	}
	if len(seen) < 3 {
		t.Errorf("trigger evolution explored only %v", seen)
	}
	// With a fixed restriction the trigger never moves.
	s2 := RandomStrategy(rng, "SA")
	for i := 0; i < 200; i++ {
		Mutate(rng, s2, "SA")
		if s2.Outbound[0].Trigger.Value != "SA" {
			t.Fatal("restricted trigger mutated")
		}
	}
}
