// Package genetic implements the evolutionary search Geneva uses to
// discover packet-manipulation strategies (§4.1).
//
// As in the paper's configuration: populations of ~300 individuals evolve
// for up to 50 generations or until convergence; individuals are (trigger,
// action-tree) rules composed from the five genetic building blocks; and —
// the §4.1 server-side optimization — triggers are restricted to SYN+ACK
// packets for the protocols where that is the only packet a server sends
// before a censorship event.
//
// Fitness is supplied by the caller (the experiment harness evaluates a
// strategy with real simulated connections through a censor); this package
// owns only representation, variation, selection, and convergence.
package genetic

import (
	"fmt"
	"math/rand"
	"sort"

	"geneva/internal/core"
)

// parsimony is the per-node fitness penalty (bloat control): prefer smaller
// strategies at equal success.
const parsimony = 0.003

// Config controls one evolution run.
type Config struct {
	// PopulationSize is the number of individuals per generation
	// (paper: 300).
	PopulationSize int
	// Generations is the evolution budget (paper: 50).
	Generations int
	// TriggerValue restricts every rule's trigger to
	// [TCP:flags:<TriggerValue>] (paper: "SA" for DNS/HTTP/HTTPS/SMTP).
	TriggerValue string
	// EvolveTrigger lifts the restriction and lets the trigger itself
	// mutate (the paper does this for FTP, whose servers speak first).
	EvolveTrigger bool
	// Fitness evaluates a strategy in [0, 1] (success rate); the engine
	// subtracts a small bloat penalty itself.
	Fitness func(*core.Strategy) float64
	// BatchFitness, if set, scores a whole generation in one call and takes
	// precedence over Fitness: it must return one raw fitness per strategy,
	// positionally. Fitness must be a pure function of the canonical
	// strategy text (s.String()), so implementations are free to memoize
	// duplicates and evaluate the batch on a worker pool — the evolution
	// trajectory is bit-identical either way. The engine applies the
	// parsimony penalty itself, exactly as on the Fitness path.
	BatchFitness func([]*core.Strategy) []float64
	// Rng drives all stochastic choices.
	Rng *rand.Rand
	// Elite individuals survive unchanged each generation.
	Elite int
	// MutationRate is the per-offspring probability of mutation.
	MutationRate float64
	// CrossoverRate is the per-offspring probability of crossover.
	CrossoverRate float64
	// ConvergeAfter stops early once the best canonical strategy has not
	// changed for this many generations (0 = the default of 8; negative =
	// never stop early).
	ConvergeAfter int
	// MaxNodes caps action-tree size (bloat control).
	MaxNodes int
}

// withDefaults fills unset fields with the paper's configuration.
func (c Config) withDefaults() Config {
	if c.PopulationSize == 0 {
		c.PopulationSize = 300
	}
	if c.Generations == 0 {
		c.Generations = 50
	}
	if c.TriggerValue == "" {
		c.TriggerValue = "SA"
	}
	if c.Elite == 0 {
		c.Elite = 4
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.9
	}
	if c.CrossoverRate == 0 {
		c.CrossoverRate = 0.4
	}
	if c.ConvergeAfter == 0 {
		c.ConvergeAfter = 8
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 12
	}
	return c
}

// Individual is one member of the population.
type Individual struct {
	Strategy *core.Strategy
	Fitness  float64
}

// GenStats summarizes one generation for reporting.
type GenStats struct {
	Generation int
	Best       float64
	Mean       float64
	BestDSL    string
	Distinct   int
}

// Result of an evolution run.
type Result struct {
	Best    Individual
	History []GenStats
}

// Evolve runs the genetic algorithm and returns the best individual found.
func Evolve(cfg Config) Result {
	cfg = cfg.withDefaults()
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(0))
	}

	cache := make(map[string]float64)
	eval := func(s *core.Strategy) float64 {
		key := s.String()
		if f, ok := cache[key]; ok {
			return f
		}
		f := cfg.Fitness(s)
		// Parsimony pressure: prefer smaller strategies at equal success.
		f -= parsimony * float64(s.Size())
		cache[key] = f
		return f
	}
	// score fills in every individual's fitness: through the batch seam when
	// one is installed (parallelism is the implementation's business), one
	// at a time through the Fitness path otherwise. Both paths share the
	// same penalized-fitness memo, keyed by canonical text: two trees that
	// print identically can differ in Size() (elided nodes), and the seed
	// semantics — which the determinism suite pins — are that the first
	// occurrence's penalty wins.
	score := func(pop []Individual) {
		if cfg.BatchFitness == nil {
			for i := range pop {
				pop[i].Fitness = eval(pop[i].Strategy)
			}
			return
		}
		batch := make([]*core.Strategy, len(pop))
		for i := range pop {
			batch[i] = pop[i].Strategy
		}
		raw := cfg.BatchFitness(batch)
		if len(raw) != len(batch) {
			panic(fmt.Sprintf("genetic: BatchFitness returned %d scores for %d strategies",
				len(raw), len(batch)))
		}
		for i := range pop {
			key := pop[i].Strategy.String()
			f, ok := cache[key]
			if !ok {
				f = raw[i] - parsimony*float64(pop[i].Strategy.Size())
				cache[key] = f
			}
			pop[i].Fitness = f
		}
	}

	trigger := cfg.TriggerValue
	if cfg.EvolveTrigger {
		trigger = ""
	}
	pop := make([]Individual, cfg.PopulationSize)
	for i := range pop {
		pop[i] = Individual{Strategy: RandomStrategy(rng, trigger)}
	}

	var res Result
	stale := 0
	lastBest := ""
	for gen := 0; gen < cfg.Generations; gen++ {
		score(pop)
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].Fitness > pop[j].Fitness })

		stats := summarize(gen, pop)
		res.History = append(res.History, stats)
		if pop[0].Fitness > res.Best.Fitness || res.Best.Strategy == nil {
			res.Best = Individual{Strategy: pop[0].Strategy.Clone(), Fitness: pop[0].Fitness}
		}
		if stats.BestDSL == lastBest {
			stale++
			// Never declare convergence on a fitness-less best: a flat
			// landscape means "keep searching", not "done".
			if cfg.ConvergeAfter > 0 && stale >= cfg.ConvergeAfter && pop[0].Fitness > 0 {
				break
			}
		} else {
			stale = 0
			lastBest = stats.BestDSL
		}

		next := make([]Individual, 0, cfg.PopulationSize)
		for i := 0; i < cfg.Elite && i < len(pop); i++ {
			next = append(next, Individual{Strategy: pop[i].Strategy.Clone()})
		}
		// Random immigrants (10%): fresh genetic material every
		// generation, so a junk-saturated population can still escape a
		// flat fitness landscape instead of converging prematurely.
		for i := 0; i < cfg.PopulationSize/10; i++ {
			next = append(next, Individual{Strategy: RandomStrategy(rng, trigger)})
		}
		for len(next) < cfg.PopulationSize {
			child := tournament(rng, pop).Strategy.Clone()
			if rng.Float64() < cfg.CrossoverRate {
				mate := tournament(rng, pop).Strategy
				Crossover(rng, child, mate.Clone())
			}
			if rng.Float64() < cfg.MutationRate {
				Mutate(rng, child, trigger)
			}
			if child.Size() > cfg.MaxNodes {
				child = RandomStrategy(rng, trigger)
			}
			next = append(next, Individual{Strategy: child})
		}
		pop = next
	}
	return res
}

// tournament picks the fitter of three random individuals.
func tournament(rng *rand.Rand, pop []Individual) Individual {
	best := pop[rng.Intn(len(pop))]
	for i := 0; i < 2; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.Fitness > best.Fitness {
			best = c
		}
	}
	return best
}

func summarize(gen int, pop []Individual) GenStats {
	sum := 0.0
	distinct := make(map[string]bool)
	for _, ind := range pop {
		sum += ind.Fitness
		distinct[ind.Strategy.String()] = true
	}
	return GenStats{
		Generation: gen,
		Best:       pop[0].Fitness,
		Mean:       sum / float64(len(pop)),
		BestDSL:    pop[0].Strategy.String(),
		Distinct:   len(distinct),
	}
}
