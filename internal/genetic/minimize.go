package genetic

import "geneva/internal/core"

// Minimize greedily prunes an evolved strategy while its fitness holds:
// every node is tentatively hoisted (replaced by its left child) or removed,
// and the edit is kept if fitness does not drop by more than tolerance.
// This automates the by-hand simplification step the Geneva authors apply
// to evolved strategies before presenting them (the published Strategies
// 1-11 are all minimal in this sense).
//
// Fitness is re-evaluated with the caller's function, so Minimize costs
// O(nodes) evaluations. The input is not modified; the minimized clone is
// returned along with its fitness.
func Minimize(s *core.Strategy, fitness func(*core.Strategy) float64, tolerance float64) (*core.Strategy, float64) {
	best := s.Clone()
	bestFit := fitness(best)
	for {
		improved := false
		for ri := range best.Outbound {
			slots := collectSlots(&best.Outbound[ri])
			for _, sl := range slots {
				node := *sl.ptr
				if node == nil {
					continue
				}
				// Candidate edits, most aggressive first.
				candidates := []*core.Action{nil, node.Left, node.Right}
				for _, cand := range candidates {
					if cand == node {
						continue
					}
					if sl.isTamperRight && cand != nil {
						continue
					}
					*sl.ptr = cand
					best.Invalidate() // slot writes bypass the memoized String
					f := fitness(best)
					if f >= bestFit-tolerance {
						bestFit = f
						improved = true
						break // keep the edit; slots are stale, restart
					}
					*sl.ptr = node // revert
					best.Invalidate()
				}
				if improved {
					break
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			return best, bestFit
		}
	}
}
