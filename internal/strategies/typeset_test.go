package strategies

import (
	"testing"

	"geneva/internal/core"
)

// TestPaperTypesetStrategiesParse feeds the parser each strategy exactly as
// typeset in the paper's §5 boxes — with their original line breaks and
// indentation — and checks it produces the same program as our canonical
// single-line transcriptions.
func TestPaperTypesetStrategiesParse(t *testing.T) {
	typeset := map[int]string{
		1: `[TCP:flags:SA]-
duplicate(
 tamper{TCP:flags:replace:R},
 tamper{TCP:flags:replace:S})-| \/ `,
		2: `[TCP:flags:SA]-
tamper{TCP:flags:replace:S}(
 duplicate(,
 tamper{TCP:load:corrupt}),)-| \/ `,
		3: `[TCP:flags:SA]-
duplicate(
 tamper{TCP:ack:corrupt},
 tamper{TCP:flags:replace:S})-| \/ `,
		4: `[TCP:flags:SA]-
duplicate(
 tamper{TCP:ack:corrupt},)-| \/ `,
		5: `[TCP:flags:SA]-
duplicate(
 tamper{TCP:ack:corrupt},
 tamper{TCP:load:corrupt})-| \/ `,
		6: `[TCP:flags:SA]-
duplicate(
 duplicate(
 tamper{TCP:flags:replace:F}(
 tamper{TCP:load:corrupt},),
 tamper{TCP:ack:corrupt}),)-| \/ `,
		7: `[TCP:flags:SA]-
duplicate(
 duplicate(
 tamper{TCP:flags:replace:R},
 tamper{TCP:ack:corrupt}),)-| \/ `,
		8: `[TCP:flags:SA]-
tamper{TCP:window:replace:10}(
 tamper{TCP:options-wscale:replace:},)-|\/ `,
		9: `[TCP:flags:SA]-
tamper{TCP:load:corrupt}(
 duplicate(
 duplicate,),)-| \/ `,
		10: `[TCP:flags:SA]-
tamper{TCP:load:replace:GET / HTTP1.}(
 duplicate,)-| \/ `,
		11: `[TCP:flags:SA]-
duplicate(
 tamper{TCP:flags:replace:},)-| \/ `,
	}
	for num, text := range typeset {
		fromPaper, err := core.Parse(text)
		if err != nil {
			t.Errorf("strategy %d as typeset: %v", num, err)
			continue
		}
		canonical, _ := ByNumber(num)
		if fromPaper.String() != canonical.Parse().String() {
			t.Errorf("strategy %d: typeset parse differs\n  paper:     %s\n  canonical: %s",
				num, fromPaper.String(), canonical.Parse().String())
		}
	}
}
