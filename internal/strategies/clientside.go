package strategies

import "fmt"

// ClientSideAnalogs builds the §3 experiment corpus: server-side analogs of
// the previously published client-side strategies. Every working client-side
// strategy that had a server-side analog boiled down to sending an
// "insertion packet" — a packet the censor processes but the server's peer
// does not — during or immediately after the 3-way handshake. For each
// insertion packet shape we generate two analogs: one sending it before the
// SYN+ACK and one after (25 insertion shapes -> 50 strategies, covering the
// paper's 25 x {before, after}).
//
// The paper found that none of them work server-side: the GFW processes the
// client's and the server's packets differently, so teardown and
// desynchronization packets from the server are ignored or re-synchronized
// past (§3).
func ClientSideAnalogs() []Strategy {
	// Each entry is the tamper chain that turns a copy of the SYN+ACK
	// into the insertion packet.
	shapes := []struct {
		name  string
		chain string
	}{
		{"RST", `tamper{TCP:flags:replace:R}`},
		{"RST+ACK", `tamper{TCP:flags:replace:RA}`},
		{"FIN", `tamper{TCP:flags:replace:F}`},
		{"FIN+ACK", `tamper{TCP:flags:replace:FA}`},
		{"RST, corrupt seq", `tamper{TCP:flags:replace:R}(tamper{TCP:seq:corrupt},)`},
		{"RST+ACK, corrupt seq", `tamper{TCP:flags:replace:RA}(tamper{TCP:seq:corrupt},)`},
		{"RST, TTL-limited", `tamper{TCP:flags:replace:R}(tamper{IP:ttl:replace:8},)`},
		{"RST+ACK, TTL-limited", `tamper{TCP:flags:replace:RA}(tamper{IP:ttl:replace:8},)`},
		{"FIN, TTL-limited", `tamper{TCP:flags:replace:F}(tamper{IP:ttl:replace:8},)`},
		{"RST, corrupt chksum", `tamper{TCP:flags:replace:R}(tamper{TCP:chksum:corrupt},)`},
		{"RST+ACK, corrupt chksum", `tamper{TCP:flags:replace:RA}(tamper{TCP:chksum:corrupt},)`},
		{"FIN, corrupt chksum", `tamper{TCP:flags:replace:F}(tamper{TCP:chksum:corrupt},)`},
		{"ACK, corrupt ack", `tamper{TCP:flags:replace:A}(tamper{TCP:ack:corrupt},)`},
		{"ACK, payload", `tamper{TCP:flags:replace:A}(tamper{TCP:load:corrupt},)`},
		{"ACK, payload, corrupt chksum", `tamper{TCP:flags:replace:A}(tamper{TCP:load:corrupt}(tamper{TCP:chksum:corrupt},),)`},
		{"ACK, payload, TTL-limited", `tamper{TCP:flags:replace:A}(tamper{TCP:load:corrupt}(tamper{IP:ttl:replace:8},),)`},
		{"SYN, corrupt seq", `tamper{TCP:flags:replace:S}(tamper{TCP:seq:corrupt},)`},
		{"PSH+ACK, payload", `tamper{TCP:flags:replace:PA}(tamper{TCP:load:corrupt},)`},
		{"RST, null window", `tamper{TCP:flags:replace:R}(tamper{TCP:window:replace:0},)`},
		{"FIN, corrupt seq", `tamper{TCP:flags:replace:F}(tamper{TCP:seq:corrupt},)`},
		{"RST, corrupt dataofs", `tamper{TCP:flags:replace:R}(tamper{TCP:dataofs:replace:12},)`},
		{"ACK, corrupt seq", `tamper{TCP:flags:replace:A}(tamper{TCP:seq:corrupt},)`},
		{"RST+ACK, corrupt ack", `tamper{TCP:flags:replace:RA}(tamper{TCP:ack:corrupt},)`},
		{"FIN+ACK, TTL-limited", `tamper{TCP:flags:replace:FA}(tamper{IP:ttl:replace:8},)`},
		{"RST, IP corrupt chksum", `tamper{TCP:flags:replace:R}(tamper{IP:chksum:corrupt},)`},
	}
	var out []Strategy
	for _, sh := range shapes {
		out = append(out,
			Strategy{
				Name: fmt.Sprintf("analog: %s before SYN+ACK", sh.name),
				DSL:  fmt.Sprintf(`[TCP:flags:SA]-duplicate(%s,)-| \/ `, sh.chain),
			},
			Strategy{
				Name: fmt.Sprintf("analog: %s after SYN+ACK", sh.name),
				DSL:  fmt.Sprintf(`[TCP:flags:SA]-duplicate(,%s)-| \/ `, sh.chain),
			},
		)
	}
	return out
}
