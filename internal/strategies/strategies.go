// Package strategies is the canonical library of the paper's server-side
// evasion strategies (Table 2, Figures 1 and 2), transcribed verbatim from
// §5, plus the §7 client-compatibility variants and the §3 server-side
// analogs of previously published client-side strategies.
package strategies

import "geneva/internal/core"

// Strategy pairs a paper strategy with its metadata.
type Strategy struct {
	// Number is the paper's strategy number (1-11); 0 for variants.
	Number int
	Name   string
	// DSL is the Geneva program, exactly as printed in §5.
	DSL string
	// Countries lists where the paper found it effective.
	Countries []string
}

// Parse compiles the strategy.
func (s Strategy) Parse() *core.Strategy { return core.MustParse(s.DSL) }

// The eleven strategies of §5.
var (
	// Strategy1 — Simultaneous Open, Injected RST (China).
	Strategy1 = Strategy{
		Number: 1, Name: "Simultaneous Open, Injected RST",
		DSL:       `[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \/ `,
		Countries: []string{"china"},
	}
	// Strategy2 — Simultaneous Open, Injected Load (China).
	Strategy2 = Strategy{
		Number: 2, Name: "Simultaneous Open, Injected Load",
		DSL:       `[TCP:flags:SA]-tamper{TCP:flags:replace:S}(duplicate(,tamper{TCP:load:corrupt}),)-| \/ `,
		Countries: []string{"china"},
	}
	// Strategy3 — Corrupted ACK, Simultaneous Open (China).
	Strategy3 = Strategy{
		Number: 3, Name: "Corrupt ACK, Simultaneous Open",
		DSL:       `[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},tamper{TCP:flags:replace:S})-| \/ `,
		Countries: []string{"china"},
	}
	// Strategy4 — Corrupt ACK Alone (China).
	Strategy4 = Strategy{
		Number: 4, Name: "Corrupt ACK Alone",
		DSL:       `[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \/ `,
		Countries: []string{"china"},
	}
	// Strategy5 — Corrupt ACK, Injected Load (China).
	Strategy5 = Strategy{
		Number: 5, Name: "Corrupt ACK, Injected Load",
		DSL:       `[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},tamper{TCP:load:corrupt})-| \/ `,
		Countries: []string{"china"},
	}
	// Strategy6 — Injected Load, Induced RST (China).
	Strategy6 = Strategy{
		Number: 6, Name: "Injected Load, Induced RST",
		DSL:       `[TCP:flags:SA]-duplicate(duplicate(tamper{TCP:flags:replace:F}(tamper{TCP:load:corrupt},),tamper{TCP:ack:corrupt}),)-| \/ `,
		Countries: []string{"china"},
	}
	// Strategy7 — Injected RST, Induced RST (China).
	Strategy7 = Strategy{
		Number: 7, Name: "Injected RST, Induced RST",
		DSL:       `[TCP:flags:SA]-duplicate(duplicate(tamper{TCP:flags:replace:R},tamper{TCP:ack:corrupt}),)-| \/ `,
		Countries: []string{"china"},
	}
	// Strategy8 — TCP Window Reduction (China FTP/SMTP; India; Iran;
	// Kazakhstan) — the brdgrd strategy.
	Strategy8 = Strategy{
		Number: 8, Name: "TCP Window Reduction",
		DSL:       `[TCP:flags:SA]-tamper{TCP:window:replace:10}(tamper{TCP:options-wscale:replace:},)-| \/ `,
		Countries: []string{"china", "india", "iran", "kazakhstan"},
	}
	// Strategy9 — Triple Load (Kazakhstan).
	Strategy9 = Strategy{
		Number: 9, Name: "Triple Load",
		DSL:       `[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,),)-| \/ `,
		Countries: []string{"kazakhstan"},
	}
	// Strategy10 — Double GET (Kazakhstan).
	Strategy10 = Strategy{
		Number: 10, Name: "Double GET",
		DSL:       `[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1.}(duplicate,)-| \/ `,
		Countries: []string{"kazakhstan"},
	}
	// Strategy11 — Null Flags (Kazakhstan).
	Strategy11 = Strategy{
		Number: 11, Name: "Null Flags",
		DSL:       `[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \/ `,
		Countries: []string{"kazakhstan"},
	}
)

// All returns the eleven strategies in paper order.
func All() []Strategy {
	return []Strategy{
		Strategy1, Strategy2, Strategy3, Strategy4, Strategy5, Strategy6,
		Strategy7, Strategy8, Strategy9, Strategy10, Strategy11,
	}
}

// China returns the strategies evaluated against the GFW (Table 2's China
// block).
func China() []Strategy {
	return []Strategy{
		Strategy1, Strategy2, Strategy3, Strategy4,
		Strategy5, Strategy6, Strategy7, Strategy8,
	}
}

// Kazakhstan returns the Kazakhstan-specific strategies.
func Kazakhstan() []Strategy {
	return []Strategy{Strategy8, Strategy9, Strategy10, Strategy11}
}

// ByNumber returns the strategy with the given paper number.
func ByNumber(n int) (Strategy, bool) {
	for _, s := range All() {
		if s.Number == n {
			return s, true
		}
	}
	return Strategy{}, false
}

// InsertionVariant rewrites a strategy so every payload-bearing packet it
// fabricates is an insertion packet: the payload copies get a corrupted TCP
// checksum (processed by censors, dropped by all clients) and the original
// SYN+ACK is sent unmodified afterwards. §7 found this small change makes
// Strategies 5, 9 and 10 work on Windows and macOS clients too.
func InsertionVariant(s Strategy) (Strategy, bool) {
	var dsl string
	switch s.Number {
	case 5:
		dsl = `[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},duplicate(tamper{TCP:load:corrupt}(tamper{TCP:chksum:corrupt},),))-| \/ `
	case 9:
		dsl = `[TCP:flags:SA]-duplicate(tamper{TCP:load:corrupt}(tamper{TCP:chksum:corrupt}(duplicate(duplicate,),),),)-| \/ `
	case 10:
		dsl = `[TCP:flags:SA]-duplicate(tamper{TCP:load:replace:GET / HTTP1.}(tamper{TCP:chksum:corrupt}(duplicate,),),)-| \/ `
	default:
		return Strategy{}, false
	}
	return Strategy{
		Number:    s.Number,
		Name:      s.Name + " (insertion variant)",
		DSL:       dsl,
		Countries: s.Countries,
	}, true
}
