package strategies

import (
	"strings"
	"testing"

	"geneva/internal/core"
)

func TestAllElevenParse(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("All() = %d strategies, want 11", len(all))
	}
	seen := map[int]bool{}
	for _, s := range all {
		if seen[s.Number] {
			t.Errorf("duplicate strategy number %d", s.Number)
		}
		seen[s.Number] = true
		st, err := core.Parse(s.DSL)
		if err != nil {
			t.Errorf("strategy %d %q: %v", s.Number, s.Name, err)
			continue
		}
		if len(st.Outbound) != 1 {
			t.Errorf("strategy %d: %d outbound rules", s.Number, len(st.Outbound))
		}
		if st.Outbound[0].Trigger.Value != "SA" {
			t.Errorf("strategy %d does not trigger on SYN+ACK", s.Number)
		}
	}
	for n := 1; n <= 11; n++ {
		if !seen[n] {
			t.Errorf("strategy %d missing", n)
		}
	}
}

func TestByNumber(t *testing.T) {
	s, ok := ByNumber(8)
	if !ok || s.Name != "TCP Window Reduction" {
		t.Errorf("ByNumber(8) = %q, %v", s.Name, ok)
	}
	if _, ok := ByNumber(12); ok {
		t.Error("ByNumber(12) should not exist")
	}
}

func TestCountryGroupings(t *testing.T) {
	if got := len(China()); got != 8 {
		t.Errorf("China() = %d strategies, want 8 (Table 2)", got)
	}
	if got := len(Kazakhstan()); got != 4 {
		t.Errorf("Kazakhstan() = %d strategies, want 4", got)
	}
	for _, s := range Kazakhstan() {
		found := false
		for _, c := range s.Countries {
			if c == "kazakhstan" {
				found = true
			}
		}
		if !found {
			t.Errorf("strategy %d in Kazakhstan() lacks the country tag", s.Number)
		}
	}
}

func TestInsertionVariants(t *testing.T) {
	for _, n := range []int{5, 9, 10} {
		s, _ := ByNumber(n)
		v, ok := InsertionVariant(s)
		if !ok {
			t.Fatalf("no insertion variant for strategy %d", n)
		}
		if !strings.Contains(v.DSL, "chksum:corrupt") {
			t.Errorf("variant of %d lacks checksum corruption: %s", n, v.DSL)
		}
		if _, err := core.Parse(v.DSL); err != nil {
			t.Errorf("variant of %d unparseable: %v", n, err)
		}
	}
	for _, n := range []int{1, 8, 11} {
		s, _ := ByNumber(n)
		if _, ok := InsertionVariant(s); ok {
			t.Errorf("strategy %d should have no insertion variant (no payload)", n)
		}
	}
}

func TestClientSideAnalogCorpus(t *testing.T) {
	analogs := ClientSideAnalogs()
	if len(analogs) != 50 {
		t.Fatalf("corpus has %d strategies, want 50", len(analogs))
	}
	before, after := 0, 0
	for _, s := range analogs {
		if _, err := core.Parse(s.DSL); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		switch {
		case strings.Contains(s.Name, "before"):
			before++
		case strings.Contains(s.Name, "after"):
			after++
		}
	}
	if before != 25 || after != 25 {
		t.Errorf("before/after split = %d/%d", before, after)
	}
}
