// Package fleet is the deployment-scale serving harness for the paper's §8
// model: one server endpoint behind a core.Router serves a mixed-country,
// mixed-protocol population of unmodified clients, picking each client's
// strategy from nothing but the address in its SYN.
//
// The workload is partitioned into cells. A cell is one shared virtual
// network — one censor instance, one server running the deployment router,
// and several client endpoints inside the same country — on which
// connections run in waves of genuinely concurrent flows (their packets
// interleave through the same censor, so per-flow TCB isolation and
// cross-connection censor state are exercised for real: a GFW residual
// window opened by one client's censored flow tears down other clients'
// flows to the same server port).
//
// Every cell owns its own virtual clock and event queue, so cells are
// independent between wave barriers. For scheduling they are grouped into
// shards — contiguous runs of a country's cells — and the whole fleet
// advances in wave lockstep: all shards run wave w concurrently on a
// bounded worker pool, then meet at a barrier where the only genuine
// cross-cell censor state — the GFW's ~90 s residual-censorship windows —
// is merged. Each cell exports its live windows as (server key, time
// remaining); the barrier folds them into a per-country ledger with a
// max-merge (commutative and associative, so the ledger is identical in
// any merge order); at the next wave's start each cell of the country is
// re-seeded with every ledger window that outlives the wave gap. With the
// default 120 s gap nothing outlives the 90 s window and the ledger is
// provably empty — sharding changes nothing — while short gaps let one
// cell's collateral poison a whole country's fleet, the paper's
// deployment-scale risk, at any shard layout.
//
// Every seed derives from the cell's stable index in the workload plan —
// never from scheduling order — and the ledger merge is order-independent,
// so a Result is bit-identical at any worker and shard width.
package fleet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/eval"
	"geneva/internal/netsim"
	"geneva/internal/obs"
	"geneva/internal/selector"
	"geneva/internal/tcpstack"
)

// cellSeedStride separates the seed spaces of consecutive cells; each cell
// derives a handful of offset streams (see the manifest's seed schedule)
// from Seed + cellIndex*cellSeedStride.
const cellSeedStride = 100003

// Per-cell seed-stream offsets, recorded in the manifest so a Result alone
// documents how to reproduce the run.
const (
	seedServer      = 1  // server endpoint ISN/port rng
	seedRouter      = 2  // base for the router's per-strategy engine rngs
	seedCensor      = 3  // censor model rng
	seedImpairments = 4  // network impairment schedule
	seedSelector    = 5  // strategy-selection exploration rng (when enabled)
	seedClients     = 10 // client endpoint s uses seedClients + s
	// Portfolio arm a's engine rng sits at eval.SeedArmBase + a (1000+),
	// far above the client slots.
)

// defaultWaveGap is the virtual idle time between waves of a cell: long
// enough that cross-wave censor state (the GFW's ~90 s residual window)
// expires, so each wave starts from a clean slate unless the workload
// shortens it deliberately.
const defaultWaveGap = 120 * time.Second

// defaultRequestGap is the virtual think time between a keep-alive session's
// exchanges when the workload asks for multiple requests but no explicit gap.
const defaultRequestGap = 30 * time.Second

// Workload describes a fleet run. The zero value of every field selects a
// sensible default; the exported fields mirror geneva.Deployment (the public
// facade aliases this type).
type Workload struct {
	// Countries in the client mix (default: every registered censor, in
	// registry order). eval.CountryNone adds an uncensored client
	// population.
	Countries []string
	// Protocols in the mix (default "http"); connections cycle through them.
	Protocols []string
	// Connections is the total number of client connections across the
	// fleet (default 500), split evenly across Countries.
	Connections int
	// ClientsPerCell is the number of routed client endpoints sharing one
	// cell network, i.e. the number of concurrent flows per routed wave
	// (default 4).
	ClientsPerCell int
	// WavesPerCell is the number of connection waves each cell runs
	// (default 4). Even waves carry routed clients only; odd waves add the
	// unprotected clients, so collateral damage happens under observation.
	WavesPerCell int
	// UnprotectedPerCell is the number of clients per cell whose addresses
	// match no router prefix — the paper's geolocation-miss case. They run
	// the same forbidden sessions with no server-side help, get censored,
	// and (China) poison the server port for everyone else in the cell.
	// 0 = default (1); negative = none.
	UnprotectedPerCell int
	// WaveGap is the virtual idle time between waves (0 = default 120 s,
	// past the GFW residual window; negative = no gap, so residual state
	// from one wave bleeds into the next — within a cell and, through the
	// wave-barrier ledger, across every cell of the country).
	WaveGap time.Duration
	// Seed fixes all randomness; two equal Workloads agree exactly.
	Seed int64
	// Workers bounds the cell worker pool (0 = the process default,
	// eval.Workers()). Purely a scheduling knob: the Result is
	// bit-identical at any width.
	Workers int
	// Shards bounds how many scheduling shards each country's cells are
	// grouped into (0 = one shard per cell, the finest and default). A
	// shard's cells run sequentially within a wave; distinct shards run
	// concurrently on the worker pool. Like Workers this is purely a
	// scheduling knob — residual state is merged per country at the wave
	// barrier regardless of shard layout, so the Result and manifest are
	// bit-identical at any shard width (TestFleetDeterminism pins the
	// workers × shards matrix).
	Shards int
	// Impairments degrades every cell network symmetrically in both
	// directions and arms endpoint retransmission; the zero value keeps
	// the links lossless.
	Impairments netsim.Profile
	// SessionRequests is the number of keep-alive request/response exchanges
	// each connection carries (default 1, the classic one-shot session).
	// Only protocols whose transcript is a single request answered by a
	// single response extend (HTTP, HTTPS, DNS — see apps.Session.KeepAlive);
	// the others run one-shot regardless, and their planned-request
	// accounting says so.
	SessionRequests int
	// RequestGap is the virtual think time between a keep-alive session's
	// exchanges (0 with SessionRequests > 1 = default 30 s). Together with
	// SessionRequests it stretches one connection across minutes of virtual
	// time — long enough for censor state with a lifetime (GFW and TMC
	// residual windows, Jio blackholing) to straddle a single client's
	// session instead of always expiring between connections.
	RequestGap time.Duration
	// Reconnect is the client's reconnect-after-failure policy. The zero
	// value reproduces the harness's historical behaviour exactly: retry
	// only abortively-torn-down attempts, immediately, within the
	// protocol's eval.TriesFor budget.
	Reconnect ReconnectPolicy
	// Portfolio is the ordered strategy list routed clients are served
	// from. Zero value (with Selection also unset): the historical §8
	// router, one registry-pinned strategy per country, byte-identical to
	// builds without the control plane. Set without Selection: every routed
	// client gets the portfolio's FIRST strategy — single-strategy use as a
	// one-element portfolio. Set with Selection: the bandit picks an arm
	// per connection attempt.
	Portfolio selector.Portfolio
	// Selection enables the online strategy-selection control plane. Zero
	// value: disabled (see Portfolio). When enabled with a zero Portfolio,
	// the distinct §8 deployment strategies (eval.DefaultPortfolio) are the
	// arms. Selector state merges at wave barriers in stable cell order, so
	// results stay bit-identical at any Workers × Shards.
	Selection selector.Selection
	// Shift re-tunes censor parameters mid-run (zero value: never). It is
	// the collapse-and-recover scenario's lever: shift the parameter a
	// pinned strategy depends on and watch the selector quarantine the arm
	// and re-explore.
	Shift CensorShift
}

// CensorShift is a deterministic mid-run change to censor calibration
// parameters, applied at a wave boundary to every cell whose censor
// implements censor.ParamShifter.
type CensorShift struct {
	// AtWave is the wave index at whose start the shift applies (0 = from
	// the beginning). Waves 0..AtWave-1 run the calibrated parameters.
	AtWave int
	// Country restricts the shift to one country's cells ("" = all).
	Country string
	// Params maps parameter names to new values, bare ("prst") or
	// protocol-scoped ("http.prst") — see censor.ParamShifter. nil
	// disables the shift.
	Params map[string]float64
}

// Enabled reports whether the shift does anything.
func (cs CensorShift) Enabled() bool { return len(cs.Params) > 0 }

// ReconnectPolicy says how a client behaves after a connection attempt
// fails: how long it waits, how many times it tries, and which failures it
// retries at all. The zero value is the historical policy (teardown-only
// retries, no backoff, per-protocol attempt budget).
type ReconnectPolicy struct {
	// MaxAttempts caps total connection attempts per planned connection,
	// reconnects included (0 = the protocol's eval.TriesFor budget, the
	// historical default; 1 = give up after the first failure).
	MaxAttempts int
	// Backoff is the virtual time a client waits before each reconnect
	// (0 = reconnect immediately). Against censors with expiring state,
	// backoff is the difference between reconnecting *into* a residual
	// window and reconnecting after it lapses.
	Backoff time.Duration
	// RetryAll reconnects after any failure — blackholed, corrupted, or
	// never-established attempts included — not only after an abortive
	// teardown (the historical trigger).
	RetryAll bool
}

// CountryStats aggregates one country's slice of the fleet.
type CountryStats struct {
	// Connections and Succeeded cover every kind of client.
	Connections int `json:"connections"`
	Succeeded   int `json:"succeeded"`
	// Routed counts connections from clients the router matched, in waves
	// with no unprotected traffic — the clean §8 deployment measurement.
	Routed          int `json:"routed"`
	RoutedSucceeded int `json:"routed_succeeded"`
	// Contested counts routed connections that shared their wave with
	// unprotected clients, so censor state those clients trip (teardown,
	// residual windows) can hit them as collateral.
	Contested          int `json:"contested"`
	ContestedSucceeded int `json:"contested_succeeded"`
	// Unprotected counts connections from clients outside every route.
	Unprotected          int `json:"unprotected"`
	UnprotectedSucceeded int `json:"unprotected_succeeded"`
	// CensorEvents totals the country's censorship actions.
	CensorEvents int `json:"censor_events"`

	// Long-horizon session outcomes. RequestsAttempted is the workload's
	// demand — every exchange the plan asked the country's connections to
	// carry — and RequestsServed is how many arrived intact, across initial
	// attempts and reconnects alike.
	RequestsAttempted int `json:"requests_attempted"`
	RequestsServed    int `json:"requests_served"`
	// FirstAttemptSucceeded counts connections whose FIRST attempt served
	// the whole session — the classic evasion measurement, unchanged by any
	// reconnect policy.
	FirstAttemptSucceeded int `json:"first_attempt_succeeded"`
	// Reconnects counts attempts beyond each connection's first; Recoveries
	// counts connections that failed at least once and still finished their
	// session on a later attempt.
	Reconnects int `json:"reconnects"`
	Recoveries int `json:"recoveries"`
	// reconnectsToRecover sums Reconnects over recovered connections only
	// (the numerator of MeanReconnectsToRecovery).
	ReconnectsToRecover int `json:"reconnects_to_recover"`
	// UptimeVirtual sums the virtual time connections spent visibly working
	// (from each attempt's SYN to its last verified byte); LifetimeVirtual
	// sums each connection's planned-or-actual session span. Their ratio is
	// Availability. JSON values are nanoseconds.
	UptimeVirtual   time.Duration `json:"uptime_virtual_ns"`
	LifetimeVirtual time.Duration `json:"lifetime_virtual_ns"`

	// Selection maps each portfolio strategy (by canonical text, in
	// portfolio order under the hood) to its lifetime selection outcomes
	// in this country: how often the control plane picked it and how each
	// attempt ended. Present only on Portfolio/Selection runs — absent
	// (and omitted from JSON) on pinned runs, keeping their output
	// byte-identical to pre-control-plane builds.
	Selection map[string]selector.ArmReport `json:"selection,omitempty"`
}

// EvasionRate is the clean routed success fraction — the per-country number
// to hold against Table 2.
func (c CountryStats) EvasionRate() float64 {
	if c.Routed == 0 {
		return 0
	}
	return float64(c.RoutedSucceeded) / float64(c.Routed)
}

// Availability is the user-visible fraction of virtual session lifetime the
// country's clients had a working connection — the long-horizon outcome a
// first-connection evasion rate cannot see (a session torn down mid-way and
// never recovered scores full evasion but one-third availability).
func (c CountryStats) Availability() float64 {
	if c.LifetimeVirtual <= 0 {
		return 0
	}
	return float64(c.UptimeVirtual) / float64(c.LifetimeVirtual)
}

// MeanReconnectsToRecovery is the average number of reconnect attempts a
// recovered connection needed before its session finished (0 when nothing
// recovered).
func (c CountryStats) MeanReconnectsToRecovery() float64 {
	if c.Recoveries == 0 {
		return 0
	}
	return float64(c.ReconnectsToRecover) / float64(c.Recoveries)
}

// Result is the structured outcome of a fleet run. It contains no
// wall-clock measurements and no worker- or shard-width echo, so two runs
// of the same Workload are bit-identical regardless of scheduling
// (TestFleetDeterminism pins this).
type Result struct {
	// Connections and Succeeded total the whole fleet.
	Connections int `json:"connections"`
	Succeeded   int `json:"succeeded"`
	// RequestsAttempted/RequestsServed and the virtual uptime/lifetime sums
	// total the per-country long-horizon outcomes.
	RequestsAttempted int           `json:"requests_attempted"`
	RequestsServed    int           `json:"requests_served"`
	UptimeVirtual     time.Duration `json:"uptime_virtual_ns"`
	LifetimeVirtual   time.Duration `json:"lifetime_virtual_ns"`
	// Cells is the number of independent cell networks the plan produced.
	Cells int `json:"cells"`
	// PerCountry breaks the fleet down by censor.
	PerCountry map[string]CountryStats `json:"per_country"`
	// Outcomes is the connection-outcome mix: "served" (correct data, no
	// teardown), "torn_down" (established, then censored or corrupted),
	// "never_established" (handshake never completed on any attempt).
	Outcomes map[string]int `json:"outcomes"`
	// Fallbacks counts collapse-quarantine events: how many times the
	// control plane benched a cratered incumbent strategy and re-explored.
	// Always 0 (and omitted from JSON) on pinned runs.
	Fallbacks int `json:"fallbacks,omitempty"`
	// Manifest is the diffable run record (geneva-run-manifest/v1): the
	// workload config, the cell seed schedule, and — when obs collection is
	// enabled — every counter. Worker and shard width are deliberately
	// absent: they cannot affect what the fleet did.
	Manifest obs.Manifest `json:"manifest"`
}

// Availability is the fleet-wide user-visible availability (see
// CountryStats.Availability).
func (r Result) Availability() float64 {
	if r.LifetimeVirtual <= 0 {
		return 0
	}
	return float64(r.UptimeVirtual) / float64(r.LifetimeVirtual)
}

// connPlan is one planned connection.
type connPlan struct {
	global      int // stable global connection index
	wave        int
	slot        int // endpoint slot within the cell
	unprotected bool
	protocol    string
}

// cellPlan is one cell's share of the workload.
type cellPlan struct {
	index   int // stable global cell index
	country string
	conns   []connPlan
}

// connResult is one connection's outcome.
type connResult struct {
	plan        connPlan
	success     bool
	established bool
	attempts    int

	// Long-horizon accounting.
	planned      int  // exchanges the plan asked this connection to carry
	served       int  // exchanges that arrived intact, across all attempts
	firstSettled bool // the first attempt has settled (guards firstSuccess)
	firstSuccess bool // the FIRST attempt served the whole session
	startAt      time.Duration
	uptime       time.Duration // Σ per-attempt SYN → last verified byte
	lifetime     time.Duration // settle − start, floored at the planned span
}

// cellResult is one cell's outcome.
type cellResult struct {
	country      string
	conns        []connResult
	censorEvents int
	waves        int
	maxWave      int // widest wave started (virtual-time concurrency)
}

// withDefaults resolves the zero-value fields. It returns a copy; the
// caller's Workload is never mutated.
func (wl Workload) withDefaults() Workload {
	if len(wl.Countries) == 0 {
		wl.Countries = eval.CensoredCountries()
	}
	if len(wl.Protocols) == 0 {
		wl.Protocols = []string{"http"}
	}
	if wl.Connections <= 0 {
		wl.Connections = 500
	}
	if wl.ClientsPerCell <= 0 {
		wl.ClientsPerCell = 4
	}
	if wl.WavesPerCell <= 0 {
		wl.WavesPerCell = 4
	}
	switch {
	case wl.UnprotectedPerCell == 0:
		wl.UnprotectedPerCell = 1
	case wl.UnprotectedPerCell < 0:
		wl.UnprotectedPerCell = 0
	}
	switch {
	case wl.WaveGap == 0:
		wl.WaveGap = defaultWaveGap
	case wl.WaveGap < 0:
		wl.WaveGap = 0
	}
	if wl.SessionRequests <= 0 {
		wl.SessionRequests = 1
	}
	switch {
	case wl.RequestGap == 0 && wl.SessionRequests > 1:
		wl.RequestGap = defaultRequestGap
	case wl.RequestGap < 0:
		wl.RequestGap = 0
	}
	return wl
}

// validate rejects workloads the harness cannot simulate, with errors that
// name the valid values.
func (wl Workload) validate() error {
	for _, c := range wl.Countries {
		if !eval.ValidCountry(c) {
			return fmt.Errorf("fleet: %w", eval.CheckCountryProtocol(c, wl.Protocols[0]))
		}
	}
	for _, p := range wl.Protocols {
		if !eval.ValidProtocol(p) {
			return fmt.Errorf("fleet: %w", eval.CheckCountryProtocol(wl.Countries[0], p))
		}
	}
	if wl.ClientsPerCell > 250 {
		return fmt.Errorf("fleet: ClientsPerCell %d exceeds the 250 addresses available per cell prefix", wl.ClientsPerCell)
	}
	if wl.Selection.Enabled() {
		if err := wl.Selection.Validate(); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
	}
	return nil
}

// control is the run's resolved strategy-delivery mode.
type control struct {
	// portfolio is the arm list (zero when the run uses the historical
	// registry-pinned router).
	portfolio selector.Portfolio
	// state is the merged bandit state; nil when Selection is disabled
	// (a non-zero portfolio then pins its first strategy everywhere).
	state *selector.State
	// active is true whenever a portfolio routes clients (pinned or
	// selected) — i.e. whenever the historical router is overridden.
	active bool
}

// resolveControl interprets the Portfolio × Selection matrix. Both unset:
// historical behaviour, untouched. Selection without a portfolio races the
// distinct §8 deployment strategies against each other.
func resolveControl(wl Workload) control {
	var ctl control
	switch {
	case wl.Selection.Enabled():
		ctl.portfolio = wl.Portfolio
		if ctl.portfolio.IsZero() {
			ctl.portfolio = eval.DefaultPortfolio()
		}
		ctl.state = selector.NewState(wl.Selection, ctl.portfolio.Len())
		ctl.active = true
	case !wl.Portfolio.IsZero():
		ctl.portfolio = wl.Portfolio
		ctl.active = true
	}
	return ctl
}

// plan partitions the workload into cells: connections split evenly across
// countries (earlier countries absorb the remainder), each country's share
// chunked into cells wave by wave. The enumeration order here is the only
// order that matters — global connection and cell indices are assigned by
// it, and every seed derives from them. Each country's cells come out
// contiguous, which is what lets buildShards slice them without sorting.
func plan(wl Workload) []cellPlan {
	var cells []cellPlan
	global := 0
	base := wl.Connections / len(wl.Countries)
	extra := wl.Connections % len(wl.Countries)
	for ci, country := range wl.Countries {
		quota := base
		if ci < extra {
			quota++
		}
		for quota > 0 {
			cell := cellPlan{index: len(cells), country: country}
			for w := 0; w < wl.WavesPerCell && quota > 0; w++ {
				for s := 0; s < wl.ClientsPerCell && quota > 0; s++ {
					cell.conns = append(cell.conns, connPlan{
						global:   global,
						wave:     w,
						slot:     s,
						protocol: wl.Protocols[global%len(wl.Protocols)],
					})
					global++
					quota--
				}
				if w%2 == 1 {
					for u := 0; u < wl.UnprotectedPerCell && quota > 0; u++ {
						cell.conns = append(cell.conns, connPlan{
							global:      global,
							wave:        w,
							slot:        wl.ClientsPerCell + u,
							unprotected: true,
							protocol:    wl.Protocols[global%len(wl.Protocols)],
						})
						global++
						quota--
					}
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// clientAddr places a cell's client endpoints: routed slots inside the
// country's router prefix, unprotected slots (and uncensored populations)
// in ranges no route covers.
func clientAddr(country string, slot int, unprotected bool) netip.Addr {
	if unprotected {
		return netip.AddrFrom4([4]byte{172, 16, 0, byte(2 + slot)})
	}
	p, ok := eval.RouterPrefixes[country]
	if !ok { // eval.CountryNone: an uncensored client outside every prefix
		return netip.AddrFrom4([4]byte{198, 18, 0, byte(2 + slot)})
	}
	a := p.Addr().As4()
	a[3] = byte(2 + slot)
	return netip.AddrFrom4(a)
}

// rngPool recycles rand.Rand instances across cells. Seeding a pooled
// generator reinitializes its entire state, so a reseeded instance's stream
// is identical to a freshly constructed one — this only exists because each
// generator carries a ~5 KB state table whose initialization dominated cell
// setup CPU before pooling.
var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(0)) }}

// residualLedger maps a residual-censorship server key to the longest
// remaining window any cell of one country reported at the last wave
// barrier.
type residualLedger map[string]time.Duration

// inflight is one connection attempt awaiting settlement in a wave.
type inflight struct {
	idx       int // index into plan.conns / res.conns
	app       *apps.Script
	connectAt time.Duration // virtual time the attempt's SYN left
	exchanges int           // exchanges this attempt's script carries
	arm       int           // portfolio arm serving the attempt (-1 = none)
}

// scriptKey identifies one client-script shape: scripts of the same protocol
// but different keep-alive lengths (a reconnect resumes with only the
// remaining exchanges) have different transcripts, so the freelists keep
// them apart.
type scriptKey struct {
	proto string
	exch  int
}

// portedScript is a leased server-side script, keyed by the port whose
// session template it clones.
type portedScript struct {
	port uint16
	s    *apps.Script
}

// cell is one wired cell network, alive from construction to the end of its
// last wave so the sharded scheduler can drive all cells in wave lockstep.
// Everything in a cell runs on a single goroutine per wave against the
// cell's own virtual clock; only the shard's export ledger leaves it.
type cell struct {
	wl   Workload
	plan cellPlan

	server    *tcpstack.Endpoint
	slots     map[int]*tcpstack.Endpoint
	sessions  map[string]*apps.Session // full-length session per protocol
	base      map[string]*apps.Session // single-exchange originals (reconnect tails derive from these)
	tails     map[scriptKey]*apps.Session
	factories map[uint16]func(*tcpstack.Conn) tcpstack.App
	net       *netsim.Network
	cen       eval.CensorCounter
	resid     censor.ResidualCarrier // non-nil iff the censor shares residual state
	shifter   censor.ParamShifter    // non-nil iff the censor can shift mid-run
	shifted   bool
	lease     *eval.RouterLease
	rngs      []*rand.Rand

	// Online selection control plane; all nil/unset on pinned runs (and on
	// unrouted-country cells — the uncensored population matches no route,
	// so no server-side strategy applies to it either way).
	armLease *eval.PortfolioLease
	selCell  *selector.Cell
	selRng   *rand.Rand

	byWave  [][]int // wave -> indices into plan.conns (contiguous from 0)
	res     cellResult
	started bool

	// Script freelists: client scripts by protocol and exchange count,
	// server scripts by port. Leases are reclaimed once their connection
	// can no longer receive a packet (settled attempts; wave end for
	// server scripts).
	clientFree map[scriptKey][]*apps.Script
	serverFree map[uint16][]*apps.Script
	serverLive []portedScript
	live       []inflight
}

// rng takes a pooled generator, seeds it, and remembers it for release at
// cell finish.
func (c *cell) rng(seed int64) *rand.Rand {
	r := rngPool.Get().(*rand.Rand)
	r.Seed(seed)
	c.rngs = append(c.rngs, r)
	return r
}

// newCell wires one cell — server + pooled deployment router, censor,
// clients — without running anything. The construction order (and thus
// every rng draw) is exactly the plan order, never scheduling order.
func newCell(wl Workload, cp cellPlan, ctl control) *cell {
	c := &cell{wl: wl, plan: cp}
	cellSeed := wl.Seed + int64(cp.index)*cellSeedStride

	c.server = tcpstack.NewEndpoint(eval.ServerAddr, tcpstack.DefaultServer, c.rng(cellSeed+seedServer))
	c.lease = eval.AcquireDeploymentRouter(cellSeed + seedRouter)
	c.server.Outbound = c.lease.Router.Outbound
	c.server.ReleaseClosed = true

	// Portfolio delivery: routed countries get one engine per arm, seeded
	// per cell at cellSeed + eval.SeedArmBase + arm. With selection, arms
	// are pinned to client addresses per attempt in runWave; without it
	// (portfolio-pinned mode) every routed slot is pinned to arm 0 here,
	// once. Unrouted countries (the uncensored population) keep matching
	// no route — the server doesn't know them, selected or not.
	if _, routed := eval.RouterPrefixes[cp.country]; ctl.active && routed {
		c.armLease = eval.AcquirePortfolioEngines(ctl.portfolio, cellSeed)
		if ctl.state != nil {
			c.selCell = ctl.state.NewCell()
			c.selRng = c.rng(cellSeed + seedSelector)
		} else {
			pinned := map[int]bool{}
			for _, cn := range cp.conns {
				if cn.unprotected || pinned[cn.slot] {
					continue
				}
				pinned[cn.slot] = true
				c.lease.Router.PinClient(clientAddr(cp.country, cn.slot, false),
					c.armLease.Engines[0])
			}
		}
	}

	// One forbidden session per protocol in the cell; the server listens on
	// every port and dispatches the matching application by the port the
	// client connected to. Fleet scripts close after their transcripts
	// (CloseAtEnd) so both sides' connections finish and recycle — without
	// that, a 10^5-connection run accretes every connection ever served in
	// the server's table.
	c.sessions = map[string]*apps.Session{}
	c.base = map[string]*apps.Session{}
	c.factories = map[uint16]func(*tcpstack.Conn) tcpstack.App{}
	for _, cn := range cp.conns {
		if _, ok := c.sessions[cn.protocol]; ok {
			continue
		}
		sess := eval.SessionFor(cp.country, cn.protocol, true)
		c.base[cn.protocol] = sess
		if wl.SessionRequests > 1 {
			// Extend the one-shot session into a keep-alive one. Protocols
			// whose transcript isn't a single exchange come back unchanged
			// and keep running one-shot. The server factory installed below
			// answers each request as it arrives, so the same listener also
			// serves shorter reconnect-tail sessions.
			sess = sess.KeepAlive(wl.SessionRequests, wl.RequestGap)
		}
		c.sessions[cn.protocol] = sess
		c.factories[sess.Port] = sess.ServerFactory()
		c.server.Listen(sess.Port)
	}
	c.clientFree = make(map[scriptKey][]*apps.Script, len(c.sessions))
	c.serverFree = make(map[uint16][]*apps.Script, len(c.sessions))
	c.server.NewServerApp = func(conn *tcpstack.Conn) tcpstack.App {
		port := conn.Flow().SrcPort
		if l := c.serverFree[port]; len(l) > 0 {
			s := l[len(l)-1]
			l[len(l)-1] = nil
			c.serverFree[port] = l[:len(l)-1]
			s.Restart()
			c.serverLive = append(c.serverLive, portedScript{port: port, s: s})
			return s
		}
		s := c.factories[port](conn).(*apps.Script)
		s.CloseAtEnd = true
		c.serverLive = append(c.serverLive, portedScript{port: port, s: s})
		return s
	}

	// Client endpoints, one per slot the plan uses.
	c.slots = map[int]*tcpstack.Endpoint{}
	var hosts []netsim.Host
	for _, cn := range cp.conns {
		if _, ok := c.slots[cn.slot]; ok {
			continue
		}
		ep := tcpstack.NewEndpoint(clientAddr(cp.country, cn.slot, cn.unprotected),
			tcpstack.DefaultClient, c.rng(cellSeed+seedClients+int64(cn.slot)))
		ep.ReleaseClosed = true
		c.slots[cn.slot] = ep
		hosts = append(hosts, ep)
	}

	c.cen = eval.NewCensor(cp.country, censor.Default(), c.rng(cellSeed+seedCensor))
	c.resid, _ = c.cen.(censor.ResidualCarrier)
	c.shifter, _ = c.cen.(censor.ParamShifter)
	if c.cen != nil {
		c.net = netsim.NewMulti(c.server, hosts, c.cen)
	} else {
		c.net = netsim.NewMulti(c.server, hosts)
	}
	c.net.RecyclePackets = true
	if im := netsim.Symmetric(wl.Impairments); im.Enabled() {
		c.net.SetImpairments(im, c.rng(cellSeed+seedImpairments))
		c.server.Retransmit = tcpstack.DefaultRetransmit
		for _, ep := range c.slots {
			ep.Retransmit = tcpstack.DefaultRetransmit
		}
	}
	c.server.Attach(c.net)
	for _, ep := range c.slots {
		ep.Attach(c.net)
	}

	// Waves are assigned contiguously from 0 by plan, so the per-wave
	// index lists slot straight into a slice.
	waves := 0
	for _, cn := range cp.conns {
		if cn.wave+1 > waves {
			waves = cn.wave + 1
		}
	}
	c.byWave = make([][]int, waves)
	for i, cn := range cp.conns {
		c.byWave[cn.wave] = append(c.byWave[cn.wave], i)
	}
	c.res = cellResult{country: cp.country, conns: make([]connResult, len(cp.conns))}
	return c
}

// drain runs the cell network until no event is pending.
func (c *cell) drain() {
	for !c.net.Quiet() {
		c.net.Run(0)
	}
}

// sessionFor returns the session a new attempt should run: the protocol's
// full session when the whole transcript is still owed, or a shorter
// keep-alive tail carrying only the m exchanges a reconnecting client has
// left. Tails are cached per length — a cell reconnects into the same few
// shapes over and over.
func (c *cell) sessionFor(proto string, m int) *apps.Session {
	full := c.sessions[proto]
	if m >= full.Exchanges() {
		return full
	}
	if m <= 1 {
		return c.base[proto]
	}
	k := scriptKey{proto: proto, exch: m}
	if s, ok := c.tails[k]; ok {
		return s
	}
	s := c.base[proto].KeepAlive(m, c.wl.RequestGap)
	if c.tails == nil {
		c.tails = map[scriptKey]*apps.Session{}
	}
	c.tails[k] = s
	return s
}

// clientScript leases a client script for one session shape: freelist first,
// session clone after.
func (c *cell) clientScript(sess *apps.Session, key scriptKey) *apps.Script {
	if l := c.clientFree[key]; len(l) > 0 {
		s := l[len(l)-1]
		l[len(l)-1] = nil
		c.clientFree[key] = l[:len(l)-1]
		s.Restart()
		return s
	}
	s := sess.NewClient()
	s.CloseAtEnd = true
	return s
}

// releaseClient returns a settled attempt's script to the freelist. Safe
// because a settled attempt's flow can never receive another packet: client
// ports only move forward, and the wave drained to quiescence before
// settlement was read.
func (c *cell) releaseClient(key scriptKey, s *apps.Script) {
	c.clientFree[key] = append(c.clientFree[key], s)
}

// pullArm asks the control plane for the arm serving one connection
// attempt and pins its engine to the client's address, so the router
// delivers it when the SYN+ACK opens the flow. Returns -1 (and touches
// nothing) when selection is off for this cell or the client is
// unprotected. Safe against concurrent wave-mates: each slot address has at
// most one un-opened flow at a time, and opened flows cache their engine,
// so re-pins never switch a strategy mid-connection.
func (c *cell) pullArm(cn *connPlan) int {
	if c.selCell == nil || cn.unprotected {
		return -1
	}
	arm := c.selCell.Next(c.plan.country, cn.protocol, c.selRng)
	c.lease.Router.PinClient(clientAddr(c.plan.country, cn.slot, false), c.armLease.Engines[arm])
	return arm
}

// runWave drives one wave of the cell to completion: advance the wave gap,
// plant ledger windows into the censor, start every connection of the wave,
// drain and retry until settled, then export the censor's live residual
// windows into the shard's ledger contribution. Waves a cell does not
// participate in are skipped entirely (its clock does not advance — the
// cell's run is over).
func (c *cell) runWave(w int, ledger residualLedger, sh *shardRun) {
	if w >= len(c.byWave) {
		return
	}
	if c.started {
		c.net.Clock.Advance(c.wl.WaveGap)
	}
	c.started = true

	// Apply the censor shift once, at the start of its wave. Purely a
	// constant re-tune (no randomness, no flow state), so it is identical
	// at any worker or shard width.
	if !c.shifted && c.wl.Shift.Enabled() && w >= c.wl.Shift.AtWave &&
		(c.wl.Shift.Country == "" || c.wl.Shift.Country == c.plan.country) {
		c.shifted = true
		if c.shifter != nil {
			c.shifter.ShiftParams(c.wl.Shift.Params)
		}
	}

	// Seed the country ledger's windows that survive the gap. The expiry
	// reconstruction (now + remaining - gap) makes re-seeding a cell's own
	// exports the exact expiry it already holds, so the max-merge inside
	// SeedResidual turns self-seeding into a no-op: a cell's behaviour is
	// unchanged by its own ledger contribution.
	if c.resid != nil && len(ledger) > 0 {
		now := c.net.Clock.Now()
		for key, remaining := range ledger {
			if remaining <= c.wl.WaveGap {
				continue
			}
			c.resid.SeedResidual(key, now+remaining-c.wl.WaveGap)
			sh.local.Inc(mResidualSeeded)
		}
	}

	idxs := c.byWave[w]
	c.res.waves++
	if len(idxs) > c.res.maxWave {
		c.res.maxWave = len(idxs)
	}

	// Start every connection of the wave, drain the network, then
	// re-attempt failed connections under the reconnect policy (the zero
	// value retries torn-down attempts immediately within eval.TriesFor,
	// RFC 7766 DNS behaviour, same as eval.Run) until the wave settles.
	pol := c.wl.Reconnect
	now := c.net.Clock.Now()
	live := c.live[:0]
	for _, idx := range idxs {
		cn := &c.plan.conns[idx]
		sess := c.sessions[cn.protocol]
		m := sess.Exchanges()
		r := &c.res.conns[idx]
		r.planned = m
		r.startAt = now
		app := c.clientScript(sess, scriptKey{proto: cn.protocol, exch: m})
		arm := c.pullArm(cn)
		c.slots[cn.slot].Connect(eval.ServerAddr, sess.Port, app)
		r.attempts++
		live = append(live, inflight{idx: idx, app: app, connectAt: now, exchanges: m, arm: arm})
	}
	for len(live) > 0 {
		c.drain()
		n := 0
		for _, f := range live {
			r := &c.res.conns[f.idx]
			cn := &c.plan.conns[f.idx]
			if f.arm >= 0 {
				// Credit the settled attempt back to the arm that served
				// it — the control plane's per-attempt reward signal.
				switch {
				case f.app.Succeeded():
					c.selCell.Observe(c.plan.country, cn.protocol, f.arm, selector.Served)
				case f.app.Established():
					c.selCell.Observe(c.plan.country, cn.protocol, f.arm, selector.TornDown)
				default:
					c.selCell.Observe(c.plan.country, cn.protocol, f.arm, selector.Unestablished)
				}
			}
			r.established = r.established || f.app.Established()
			r.served += f.app.Served()
			if f.app.Established() && f.app.LastProgressAt() > f.app.EstablishedAt() {
				// The attempt visibly worked from its SYN until the last
				// verified byte landed.
				r.uptime += f.app.LastProgressAt() - f.connectAt
			}
			if !r.firstSettled {
				r.firstSettled = true
				r.firstSuccess = f.app.Succeeded()
			}
			budget := eval.TriesFor(cn.protocol)
			if pol.MaxAttempts > 0 {
				budget = pol.MaxAttempts
			}
			retryable := f.app.Reset() || (pol.RetryAll && !f.app.Succeeded())
			if !f.app.Succeeded() && retryable && r.attempts < budget {
				// Reconnect with a session carrying only the exchanges still
				// owed: whole exchanges already served stay served.
				remaining := r.planned - r.served
				if remaining < 1 {
					remaining = 1
				}
				sess := c.sessionFor(cn.protocol, remaining)
				app := c.clientScript(sess, scriptKey{proto: cn.protocol, exch: sess.Exchanges()})
				arm := c.pullArm(cn) // a reconnect is a fresh pull
				r.attempts++
				at := c.net.Clock.Now()
				if pol.Backoff > 0 {
					slot, port := c.slots[cn.slot], sess.Port
					at += pol.Backoff
					c.net.After(pol.Backoff, func() {
						slot.Connect(eval.ServerAddr, port, app)
					})
				} else {
					// Inline, exactly where the historical loop connected:
					// the zero-value policy reproduces its event order.
					c.slots[cn.slot].Connect(eval.ServerAddr, sess.Port, app)
				}
				live[n] = inflight{idx: f.idx, app: app, connectAt: at, exchanges: sess.Exchanges(), arm: arm}
				n++
			} else {
				// Settled for good. The session succeeded if every planned
				// exchange was served, whether on the first attempt or
				// across reconnects.
				r.success = r.served >= r.planned
				r.lifetime = c.net.Clock.Now() - r.startAt
				if span := time.Duration(r.planned-1) * c.wl.RequestGap; r.lifetime < span {
					// A give-up-early policy doesn't shrink the denominator:
					// the user wanted service across the whole planned span.
					r.lifetime = span
				}
			}
			c.releaseClient(scriptKey{proto: cn.protocol, exch: f.exchanges}, f.app)
		}
		live = live[:n]
	}
	c.live = live[:0]

	// Every connection of the wave has settled, so no server-side script
	// can see another byte; reclaim the leases for the next wave.
	for i, ps := range c.serverLive {
		c.serverFree[ps.port] = append(c.serverFree[ps.port], ps.s)
		c.serverLive[i] = portedScript{}
	}
	c.serverLive = c.serverLive[:0]

	if c.resid != nil {
		now := c.net.Clock.Now()
		c.resid.ExportResidual(now, func(key string, remaining time.Duration) {
			if cur, ok := sh.exports[key]; !ok || remaining > cur {
				sh.exports[key] = remaining
			}
			sh.local.Inc(mResidualPublished)
		})
	}
}

// finish closes the cell out: stamp plans and censor totals into the
// result, and hand the pooled router and rngs back.
func (c *cell) finish() cellResult {
	for i := range c.res.conns {
		c.res.conns[i].plan = c.plan.conns[i]
	}
	if c.cen != nil {
		c.res.censorEvents = c.cen.CensoredCount()
	}
	eval.ReleaseDeploymentRouter(c.lease)
	c.lease = nil
	eval.ReleasePortfolioEngines(c.armLease)
	c.armLease, c.selCell, c.selRng = nil, nil, nil
	for i, r := range c.rngs {
		rngPool.Put(r)
		c.rngs[i] = nil
	}
	c.rngs = nil
	c.server, c.slots, c.net, c.cen, c.resid = nil, nil, nil, nil, nil
	return c.res
}

// shardRun is one scheduling shard: a contiguous slice of one country's
// cells plus the shard-local state the wave barrier merges — the residual
// windows its cells exported and the batched counters.
type shardRun struct {
	country string
	cells   []*cell
	exports residualLedger
	local   obs.Local
}

// buildShards groups cells into per-country scheduling shards. plan emits
// each country's cells contiguously, so shards are plain sub-slices; Shards
// <= 0 puts every cell in its own shard (maximum parallelism).
func buildShards(wl Workload, cells []*cell) []*shardRun {
	var shards []*shardRun
	for start := 0; start < len(cells); {
		country := cells[start].plan.country
		end := start
		for end < len(cells) && cells[end].plan.country == country {
			end++
		}
		n := end - start
		want := n
		if wl.Shards > 0 && wl.Shards < n {
			want = wl.Shards
		}
		base, extra := n/want, n%want
		at := start
		for s := 0; s < want; s++ {
			size := base
			if s < extra {
				size++
			}
			shards = append(shards, &shardRun{
				country: country,
				cells:   cells[at : at+size],
				exports: residualLedger{},
			})
			at += size
		}
		start = end
	}
	return shards
}

// Run executes the workload and aggregates the fleet result. Cells are
// built, driven wave by wave (shards of one wave run concurrently on a pool
// of up to wl.Workers goroutines, meeting at a residual-merge barrier
// between waves), and finished; results are merged in cell order, so the
// Result is identical at any worker or shard width.
func Run(wl Workload) (Result, error) {
	wl = wl.withDefaults()
	if err := wl.validate(); err != nil {
		return Result{}, err
	}
	plans := plan(wl)
	ctl := resolveControl(wl)

	workers := wl.Workers
	if workers <= 0 {
		workers = eval.Workers()
	}

	cells := make([]*cell, len(plans))
	eval.RunParallel(workers, len(plans), func(i int) {
		cells[i] = newCell(wl, plans[i], ctl)
	})
	// The selector's wave barrier drains cells in stable cell-index order
	// (the fold is integer addition, so any order gives the same state —
	// but the stable order keeps it obviously scheduling-independent).
	var selCells []*selector.Cell
	if ctl.state != nil {
		selCells = make([]*selector.Cell, len(cells))
		for i, c := range cells {
			selCells[i] = c.selCell
		}
	}
	shards := buildShards(wl, cells)
	maxWaves := 0
	for _, c := range cells {
		if len(c.byWave) > maxWaves {
			maxWaves = len(c.byWave)
		}
	}

	// Wave lockstep: all shards run wave w, then the barrier folds their
	// residual exports into next wave's per-country ledgers. The fold is a
	// max-merge over (key, remaining) pairs — commutative and associative —
	// so neither shard layout nor merge order can change the ledger, and a
	// ledger entry is re-published by any cell still holding the window, so
	// windows survive as many barriers as their 90 s lifetime spans.
	ledgers := map[string]residualLedger{}
	for w := 0; w < maxWaves; w++ {
		eval.RunParallel(workers, len(shards), func(si int) {
			sh := shards[si]
			led := ledgers[sh.country]
			for _, c := range sh.cells {
				c.runWave(w, led, sh)
			}
		})
		next := map[string]residualLedger{}
		for _, sh := range shards {
			sh.local.Flush()
			if len(sh.exports) == 0 {
				continue
			}
			led := next[sh.country]
			if led == nil {
				led = residualLedger{}
				next[sh.country] = led
			}
			for k, rem := range sh.exports {
				if cur, ok := led[k]; !ok || rem > cur {
					led[k] = rem
				}
			}
			clear(sh.exports)
		}
		ledgers = next
		if ctl.state != nil {
			// Fold the wave's selection outcomes and run the decay +
			// collapse-detection pass, single-threaded like the residual
			// merge above.
			ctl.state.Merge(selCells)
		}
	}

	results := make([]cellResult, len(cells))
	eval.RunParallel(workers, len(cells), func(i int) {
		results[i] = cells[i].finish()
	})

	out := Result{
		Cells:      len(cells),
		PerCountry: map[string]CountryStats{},
		Outcomes:   map[string]int{"served": 0, "torn_down": 0, "never_established": 0},
	}
	for _, cr := range results {
		mCells.Inc()
		mWaves.Add(uint64(cr.waves))
		mConcurrent.SetMax(uint64(cr.maxWave))
		cs := out.PerCountry[cr.country]
		cs.CensorEvents += cr.censorEvents
		mixedWave := map[int]bool{}
		for _, c := range cr.conns {
			if c.plan.unprotected {
				mixedWave[c.plan.wave] = true
			}
		}
		for _, c := range cr.conns {
			out.Connections++
			cs.Connections++
			mConnections.Inc()
			mAttempts.Add(uint64(c.attempts))
			mCountryConns[cr.country].Inc()
			cs.RequestsAttempted += c.planned
			cs.RequestsServed += c.served
			cs.UptimeVirtual += c.uptime
			cs.LifetimeVirtual += c.lifetime
			out.RequestsAttempted += c.planned
			out.RequestsServed += c.served
			out.UptimeVirtual += c.uptime
			out.LifetimeVirtual += c.lifetime
			mRequestsAttempted.Add(uint64(c.planned))
			mRequestsServed.Add(uint64(c.served))
			mUptimeVirtual.Add(uint64(c.uptime))
			mLifetimeVirtual.Add(uint64(c.lifetime))
			if c.firstSuccess {
				cs.FirstAttemptSucceeded++
			}
			if reconnects := c.attempts - 1; reconnects > 0 {
				cs.Reconnects += reconnects
				mReconnects.Add(uint64(reconnects))
				if c.success && !c.firstSuccess {
					cs.Recoveries++
					cs.ReconnectsToRecover += reconnects
					mRecoveries.Inc()
				}
			}
			if c.success {
				out.Succeeded++
				cs.Succeeded++
				out.Outcomes["served"]++
				mServed.Inc()
				mCountryEvaded[cr.country].Inc()
			} else if c.established {
				out.Outcomes["torn_down"]++
				mTornDown.Inc()
			} else {
				out.Outcomes["never_established"]++
				mUnestablished.Inc()
			}
			switch {
			case c.plan.unprotected:
				cs.Unprotected++
				if c.success {
					cs.UnprotectedSucceeded++
				}
			case mixedWave[c.plan.wave]:
				cs.Contested++
				if c.success {
					cs.ContestedSucceeded++
				}
			default:
				cs.Routed++
				if c.success {
					cs.RoutedSucceeded++
				}
			}
		}
		out.PerCountry[cr.country] = cs
	}
	if ctl.state != nil {
		out.Fallbacks = int(ctl.state.Fallbacks())
		for country, cs := range out.PerCountry {
			rep := ctl.state.CountryReport(country)
			var pulls uint64
			for _, r := range rep {
				pulls += r.Pulls
			}
			if pulls == 0 {
				continue // unrouted population: the control plane never ran
			}
			cs.Selection = make(map[string]selector.ArmReport, len(rep))
			for i, r := range rep {
				cs.Selection[ctl.portfolio.Name(i)] = r
			}
			out.PerCountry[country] = cs
		}
	}
	out.Manifest = manifest(wl, len(cells), ctl)
	return out, nil
}

// manifest assembles the run record. Worker and shard width are
// deliberately omitted: they cannot affect the simulation, and their
// absence is what lets two runs at different widths produce byte-identical
// Results.
func manifest(wl Workload, cells int, ctl control) obs.Manifest {
	cfg := map[string]string{
		"countries":            strings.Join(wl.Countries, ","),
		"protocols":            strings.Join(wl.Protocols, ","),
		"connections":          strconv.Itoa(wl.Connections),
		"clients_per_cell":     strconv.Itoa(wl.ClientsPerCell),
		"waves_per_cell":       strconv.Itoa(wl.WavesPerCell),
		"unprotected_per_cell": strconv.Itoa(wl.UnprotectedPerCell),
		"wave_gap":             wl.WaveGap.String(),
		"session_requests":     strconv.Itoa(wl.SessionRequests),
		"request_gap":          wl.RequestGap.String(),
		"reconnect_max":        strconv.Itoa(wl.Reconnect.MaxAttempts),
		"reconnect_backoff":    wl.Reconnect.Backoff.String(),
		"reconnect_retry_all":  strconv.FormatBool(wl.Reconnect.RetryAll),
		"cells":                strconv.Itoa(cells),
		"loss":                 strconv.FormatFloat(wl.Impairments.Loss, 'g', -1, 64),
		"duplicate":            strconv.FormatFloat(wl.Impairments.Duplicate, 'g', -1, 64),
		"reorder":              strconv.FormatFloat(wl.Impairments.Reorder, 'g', -1, 64),
		"jitter":               wl.Impairments.Jitter.String(),
	}
	streams := map[string]int64{
		"server":      seedServer,
		"router":      seedRouter,
		"censor":      seedCensor,
		"impairments": seedImpairments,
		"clients":     seedClients, // client slot s at clients + s
	}
	// Control-plane and censor-shift keys appear ONLY when those features
	// are on: a pinned workload's manifest is byte-identical to builds that
	// predate the control plane.
	if ctl.active {
		cfg["portfolio"] = ctl.portfolio.Hash()
		cfg["portfolio_size"] = strconv.Itoa(ctl.portfolio.Len())
		streams["portfolio_arms"] = eval.SeedArmBase // arm a at SeedArmBase + a
	}
	if ctl.state != nil {
		sel := wl.Selection.WithDefaults()
		cfg["selection_policy"] = string(sel.Policy)
		cfg["selection_epsilon"] = strconv.FormatFloat(sel.Epsilon, 'g', -1, 64)
		cfg["selection_ucb_c"] = strconv.FormatFloat(sel.UCBC, 'g', -1, 64)
		cfg["selection_decay"] = strconv.FormatFloat(sel.Decay, 'g', -1, 64)
		cfg["selection_min_pulls"] = strconv.FormatFloat(sel.MinPulls, 'g', -1, 64)
		cfg["selection_collapse_below"] = strconv.FormatFloat(sel.CollapseBelow, 'g', -1, 64)
		cfg["selection_quarantine_waves"] = strconv.Itoa(sel.QuarantineWaves)
		streams["selector"] = seedSelector
	}
	if wl.Shift.Enabled() {
		cfg["shift_wave"] = strconv.Itoa(wl.Shift.AtWave)
		cfg["shift_country"] = wl.Shift.Country
		keys := make([]string, 0, len(wl.Shift.Params))
		for k := range wl.Shift.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(strconv.FormatFloat(wl.Shift.Params[k], 'g', -1, 64))
		}
		cfg["shift_params"] = b.String()
	}
	return obs.NewManifest("fleet", cfg, obs.SeedSchedule{
		Base:      wl.Seed,
		TrialStep: cellSeedStride, // per cell, not per trial
		Streams:   streams,
	})
}
