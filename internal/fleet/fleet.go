// Package fleet is the deployment-scale serving harness for the paper's §8
// model: one server endpoint behind a core.Router serves a mixed-country,
// mixed-protocol population of unmodified clients, picking each client's
// strategy from nothing but the address in its SYN.
//
// The workload is partitioned into cells. A cell is one shared virtual
// network — one censor instance, one server running the deployment router,
// and several client endpoints inside the same country — on which
// connections run in waves of genuinely concurrent flows (their packets
// interleave through the same censor, so per-flow TCB isolation and
// cross-connection censor state are exercised for real: a GFW residual
// window opened by one client's censored flow tears down other clients'
// flows to the same server port). Cells share no state, so they run on a
// bounded worker pool; inside a cell everything is single-goroutine and
// virtual-time ordered. Every seed derives from the cell's stable index in
// the workload plan — never from scheduling order — so a Result is
// bit-identical at any worker width.
package fleet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/eval"
	"geneva/internal/netsim"
	"geneva/internal/obs"
	"geneva/internal/tcpstack"
)

// cellSeedStride separates the seed spaces of consecutive cells; each cell
// derives a handful of offset streams (see the manifest's seed schedule)
// from Seed + cellIndex*cellSeedStride.
const cellSeedStride = 100003

// Per-cell seed-stream offsets, recorded in the manifest so a Result alone
// documents how to reproduce the run.
const (
	seedServer      = 1 // server endpoint ISN/port rng
	seedRouter      = 2 // base for the router's per-strategy engine rngs
	seedCensor      = 3 // censor model rng
	seedImpairments = 4 // network impairment schedule
	seedClients     = 10 // client endpoint s uses seedClients + s
)

// defaultWaveGap is the virtual idle time between waves of a cell: long
// enough that cross-wave censor state (the GFW's ~90 s residual window)
// expires, so each wave starts from a clean slate unless the workload
// shortens it deliberately.
const defaultWaveGap = 120 * time.Second

// Workload describes a fleet run. The zero value of every field selects a
// sensible default; the exported fields mirror geneva.Deployment (the public
// facade aliases this type).
type Workload struct {
	// Countries in the client mix (default China, India, Iran, Kazakhstan).
	// eval.CountryNone adds an uncensored client population.
	Countries []string
	// Protocols in the mix (default "http"); connections cycle through them.
	Protocols []string
	// Connections is the total number of client connections across the
	// fleet (default 500), split evenly across Countries.
	Connections int
	// ClientsPerCell is the number of routed client endpoints sharing one
	// cell network, i.e. the number of concurrent flows per routed wave
	// (default 4).
	ClientsPerCell int
	// WavesPerCell is the number of connection waves each cell runs
	// (default 4). Even waves carry routed clients only; odd waves add the
	// unprotected clients, so collateral damage happens under observation.
	WavesPerCell int
	// UnprotectedPerCell is the number of clients per cell whose addresses
	// match no router prefix — the paper's geolocation-miss case. They run
	// the same forbidden sessions with no server-side help, get censored,
	// and (China) poison the server port for everyone else in the cell.
	// 0 = default (1); negative = none.
	UnprotectedPerCell int
	// WaveGap is the virtual idle time between waves (0 = default 120 s,
	// past the GFW residual window; negative = no gap, so residual state
	// from one wave bleeds into the next).
	WaveGap time.Duration
	// Seed fixes all randomness; two equal Workloads agree exactly.
	Seed int64
	// Workers bounds the cell worker pool (0 = the process default,
	// eval.Workers()). Purely a scheduling knob: the Result is
	// bit-identical at any width.
	Workers int
	// Impairments degrades every cell network symmetrically in both
	// directions and arms endpoint retransmission; the zero value keeps
	// the links lossless.
	Impairments netsim.Profile
}

// CountryStats aggregates one country's slice of the fleet.
type CountryStats struct {
	// Connections and Succeeded cover every kind of client.
	Connections int `json:"connections"`
	Succeeded   int `json:"succeeded"`
	// Routed counts connections from clients the router matched, in waves
	// with no unprotected traffic — the clean §8 deployment measurement.
	Routed          int `json:"routed"`
	RoutedSucceeded int `json:"routed_succeeded"`
	// Contested counts routed connections that shared their wave with
	// unprotected clients, so censor state those clients trip (teardown,
	// residual windows) can hit them as collateral.
	Contested          int `json:"contested"`
	ContestedSucceeded int `json:"contested_succeeded"`
	// Unprotected counts connections from clients outside every route.
	Unprotected          int `json:"unprotected"`
	UnprotectedSucceeded int `json:"unprotected_succeeded"`
	// CensorEvents totals the country's censorship actions.
	CensorEvents int `json:"censor_events"`
}

// EvasionRate is the clean routed success fraction — the per-country number
// to hold against Table 2.
func (c CountryStats) EvasionRate() float64 {
	if c.Routed == 0 {
		return 0
	}
	return float64(c.RoutedSucceeded) / float64(c.Routed)
}

// Result is the structured outcome of a fleet run. It contains no
// wall-clock measurements and no worker-width echo, so two runs of the same
// Workload are bit-identical regardless of scheduling (TestFleetDeterminism
// pins this).
type Result struct {
	// Connections and Succeeded total the whole fleet.
	Connections int `json:"connections"`
	Succeeded   int `json:"succeeded"`
	// Cells is the number of independent cell networks the plan produced.
	Cells int `json:"cells"`
	// PerCountry breaks the fleet down by censor.
	PerCountry map[string]CountryStats `json:"per_country"`
	// Outcomes is the connection-outcome mix: "served" (correct data, no
	// teardown), "torn_down" (established, then censored or corrupted),
	// "never_established" (handshake never completed on any attempt).
	Outcomes map[string]int `json:"outcomes"`
	// Manifest is the diffable run record (geneva-run-manifest/v1): the
	// workload config, the cell seed schedule, and — when obs collection is
	// enabled — every counter. Worker width is deliberately absent: it
	// cannot affect what the fleet did.
	Manifest obs.Manifest `json:"manifest"`
}

// connPlan is one planned connection.
type connPlan struct {
	global      int // stable global connection index
	wave        int
	slot        int // endpoint slot within the cell
	unprotected bool
	protocol    string
}

// cellPlan is one cell's share of the workload.
type cellPlan struct {
	index   int // stable global cell index
	country string
	conns   []connPlan
}

// connResult is one connection's outcome.
type connResult struct {
	plan        connPlan
	success     bool
	established bool
	attempts    int
}

// cellResult is one cell's outcome.
type cellResult struct {
	country      string
	conns        []connResult
	censorEvents int
	waves        int
	maxWave      int // widest wave started (virtual-time concurrency)
}

// withDefaults resolves the zero-value fields. It returns a copy; the
// caller's Workload is never mutated.
func (wl Workload) withDefaults() Workload {
	if len(wl.Countries) == 0 {
		wl.Countries = []string{eval.CountryChina, eval.CountryIndia, eval.CountryIran, eval.CountryKazakhstan}
	}
	if len(wl.Protocols) == 0 {
		wl.Protocols = []string{"http"}
	}
	if wl.Connections <= 0 {
		wl.Connections = 500
	}
	if wl.ClientsPerCell <= 0 {
		wl.ClientsPerCell = 4
	}
	if wl.WavesPerCell <= 0 {
		wl.WavesPerCell = 4
	}
	switch {
	case wl.UnprotectedPerCell == 0:
		wl.UnprotectedPerCell = 1
	case wl.UnprotectedPerCell < 0:
		wl.UnprotectedPerCell = 0
	}
	switch {
	case wl.WaveGap == 0:
		wl.WaveGap = defaultWaveGap
	case wl.WaveGap < 0:
		wl.WaveGap = 0
	}
	return wl
}

// validate rejects workloads the harness cannot simulate, with errors that
// name the valid values.
func (wl Workload) validate() error {
	for _, c := range wl.Countries {
		if !eval.ValidCountry(c) {
			return fmt.Errorf("fleet: %w", eval.CheckCountryProtocol(c, wl.Protocols[0]))
		}
	}
	for _, p := range wl.Protocols {
		if !eval.ValidProtocol(p) {
			return fmt.Errorf("fleet: %w", eval.CheckCountryProtocol(wl.Countries[0], p))
		}
	}
	if wl.ClientsPerCell > 250 {
		return fmt.Errorf("fleet: ClientsPerCell %d exceeds the 250 addresses available per cell prefix", wl.ClientsPerCell)
	}
	return nil
}

// plan partitions the workload into cells: connections split evenly across
// countries (earlier countries absorb the remainder), each country's share
// chunked into cells wave by wave. The enumeration order here is the only
// order that matters — global connection and cell indices are assigned by
// it, and every seed derives from them.
func plan(wl Workload) []cellPlan {
	var cells []cellPlan
	global := 0
	base := wl.Connections / len(wl.Countries)
	extra := wl.Connections % len(wl.Countries)
	for ci, country := range wl.Countries {
		quota := base
		if ci < extra {
			quota++
		}
		for quota > 0 {
			cell := cellPlan{index: len(cells), country: country}
			for w := 0; w < wl.WavesPerCell && quota > 0; w++ {
				for s := 0; s < wl.ClientsPerCell && quota > 0; s++ {
					cell.conns = append(cell.conns, connPlan{
						global:   global,
						wave:     w,
						slot:     s,
						protocol: wl.Protocols[global%len(wl.Protocols)],
					})
					global++
					quota--
				}
				if w%2 == 1 {
					for u := 0; u < wl.UnprotectedPerCell && quota > 0; u++ {
						cell.conns = append(cell.conns, connPlan{
							global:      global,
							wave:        w,
							slot:        wl.ClientsPerCell + u,
							unprotected: true,
							protocol:    wl.Protocols[global%len(wl.Protocols)],
						})
						global++
						quota--
					}
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// clientAddr places a cell's client endpoints: routed slots inside the
// country's router prefix, unprotected slots (and uncensored populations)
// in ranges no route covers.
func clientAddr(country string, slot int, unprotected bool) netip.Addr {
	if unprotected {
		return netip.AddrFrom4([4]byte{172, 16, 0, byte(2 + slot)})
	}
	p, ok := eval.RouterPrefixes[country]
	if !ok { // eval.CountryNone: an uncensored client outside every prefix
		return netip.AddrFrom4([4]byte{198, 18, 0, byte(2 + slot)})
	}
	a := p.Addr().As4()
	a[3] = byte(2 + slot)
	return netip.AddrFrom4(a)
}

// runCell wires one cell — server + deployment router, censor, clients —
// and drives its waves to completion. Everything in here runs on a single
// goroutine against one virtual clock.
func runCell(wl Workload, cp cellPlan) cellResult {
	cellSeed := wl.Seed + int64(cp.index)*cellSeedStride

	server := tcpstack.NewEndpoint(eval.ServerAddr, tcpstack.DefaultServer,
		rand.New(rand.NewSource(cellSeed+seedServer)))
	server.Outbound = eval.NewDeploymentRouter(cellSeed + seedRouter).Outbound

	// One forbidden session per protocol in the cell; the server listens on
	// every port and dispatches the matching application by the port the
	// client connected to.
	sessions := map[string]*apps.Session{}
	factories := map[uint16]func(*tcpstack.Conn) tcpstack.App{}
	for _, c := range cp.conns {
		if _, ok := sessions[c.protocol]; ok {
			continue
		}
		sess := eval.SessionFor(cp.country, c.protocol, true)
		sessions[c.protocol] = sess
		factories[sess.Port] = sess.ServerFactory()
		server.Listen(sess.Port)
	}
	server.NewServerApp = func(c *tcpstack.Conn) tcpstack.App {
		return factories[c.Flow().SrcPort](c)
	}

	// Client endpoints, one per slot the plan uses.
	slots := map[int]*tcpstack.Endpoint{}
	var hosts []netsim.Host
	for _, c := range cp.conns {
		if _, ok := slots[c.slot]; ok {
			continue
		}
		ep := tcpstack.NewEndpoint(clientAddr(cp.country, c.slot, c.unprotected),
			tcpstack.DefaultClient, rand.New(rand.NewSource(cellSeed+seedClients+int64(c.slot))))
		slots[c.slot] = ep
		hosts = append(hosts, ep)
	}

	cen := eval.NewCensor(cp.country, censor.Default(), rand.New(rand.NewSource(cellSeed+seedCensor)))
	var n *netsim.Network
	if cen != nil {
		n = netsim.NewMulti(server, hosts, cen)
	} else {
		n = netsim.NewMulti(server, hosts)
	}
	n.RecyclePackets = true
	if im := netsim.Symmetric(wl.Impairments); im.Enabled() {
		n.SetImpairments(im, rand.New(rand.NewSource(cellSeed+seedImpairments)))
		server.Retransmit = tcpstack.DefaultRetransmit
		for _, ep := range slots {
			ep.Retransmit = tcpstack.DefaultRetransmit
		}
	}
	server.Attach(n)
	for _, ep := range slots {
		ep.Attach(n)
	}

	res := cellResult{country: cp.country, conns: make([]connResult, len(cp.conns))}

	// Waves: start every connection of the wave, drain the network, then
	// re-attempt torn-down connections with a retry budget (RFC 7766 DNS
	// behaviour, same as eval.Run) until the wave settles.
	type inflight struct {
		idx int // index into cp.conns / res.conns
		app *apps.Script
	}
	byWave := map[int][]int{}
	for i, c := range cp.conns {
		byWave[c.wave] = append(byWave[c.wave], i)
	}
	waves := make([]int, 0, len(byWave))
	for w := range byWave {
		waves = append(waves, w)
	}
	sort.Ints(waves)

	drain := func() {
		for !n.Quiet() {
			n.Run(0)
		}
	}
	for wi, w := range waves {
		if wi > 0 {
			n.Clock.Advance(wl.WaveGap)
		}
		res.waves++
		if len(byWave[w]) > res.maxWave {
			res.maxWave = len(byWave[w])
		}
		live := make([]inflight, 0, len(byWave[w]))
		for _, idx := range byWave[w] {
			c := cp.conns[idx]
			app := sessions[c.protocol].NewClient()
			slots[c.slot].Connect(eval.ServerAddr, sessions[c.protocol].Port, app)
			res.conns[idx].attempts++
			live = append(live, inflight{idx: idx, app: app})
		}
		for len(live) > 0 {
			drain()
			var retry []inflight
			for _, f := range live {
				r := &res.conns[f.idx]
				c := cp.conns[f.idx]
				r.established = r.established || f.app.Established()
				if f.app.Succeeded() {
					r.success = true
					continue
				}
				// Retry only torn-down attempts, within the protocol's
				// budget; blackholed or corrupted clients stop.
				if f.app.Reset() && r.attempts < eval.TriesFor(c.protocol) {
					app := sessions[c.protocol].NewClient()
					slots[c.slot].Connect(eval.ServerAddr, sessions[c.protocol].Port, app)
					r.attempts++
					retry = append(retry, inflight{idx: f.idx, app: app})
				}
			}
			live = retry
		}
	}
	for i := range res.conns {
		res.conns[i].plan = cp.conns[i]
	}
	if cen != nil {
		res.censorEvents = cen.CensoredCount()
	}
	return res
}

// Run executes the workload and aggregates the fleet result. Cells run on a
// worker pool of up to wl.Workers goroutines (0 = eval.Workers()); results
// are merged in cell order, so the Result is identical at any width.
func Run(wl Workload) (Result, error) {
	wl = wl.withDefaults()
	if err := wl.validate(); err != nil {
		return Result{}, err
	}
	cells := plan(wl)

	workers := wl.Workers
	if workers <= 0 {
		workers = eval.Workers()
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]cellResult, len(cells))
	if workers <= 1 {
		for i, cp := range cells {
			results[i] = runCell(wl, cp)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i] = runCell(wl, cells[i])
				}
			}()
		}
		for i := range cells {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	out := Result{
		Cells:      len(cells),
		PerCountry: map[string]CountryStats{},
		Outcomes:   map[string]int{"served": 0, "torn_down": 0, "never_established": 0},
	}
	for _, cr := range results {
		mCells.Inc()
		mWaves.Add(uint64(cr.waves))
		mConcurrent.SetMax(uint64(cr.maxWave))
		cs := out.PerCountry[cr.country]
		cs.CensorEvents += cr.censorEvents
		mixedWave := map[int]bool{}
		for _, c := range cr.conns {
			if c.plan.unprotected {
				mixedWave[c.plan.wave] = true
			}
		}
		for _, c := range cr.conns {
			out.Connections++
			cs.Connections++
			mConnections.Inc()
			mAttempts.Add(uint64(c.attempts))
			mCountryConns[cr.country].Inc()
			if c.success {
				out.Succeeded++
				cs.Succeeded++
				out.Outcomes["served"]++
				mServed.Inc()
				mCountryEvaded[cr.country].Inc()
			} else if c.established {
				out.Outcomes["torn_down"]++
				mTornDown.Inc()
			} else {
				out.Outcomes["never_established"]++
				mUnestablished.Inc()
			}
			switch {
			case c.plan.unprotected:
				cs.Unprotected++
				if c.success {
					cs.UnprotectedSucceeded++
				}
			case mixedWave[c.plan.wave]:
				cs.Contested++
				if c.success {
					cs.ContestedSucceeded++
				}
			default:
				cs.Routed++
				if c.success {
					cs.RoutedSucceeded++
				}
			}
		}
		out.PerCountry[cr.country] = cs
	}
	out.Manifest = manifest(wl, len(cells))
	return out, nil
}

// manifest assembles the run record. Worker width is deliberately omitted:
// it cannot affect the simulation, and its absence is what lets two runs at
// different widths produce byte-identical Results.
func manifest(wl Workload, cells int) obs.Manifest {
	cfg := map[string]string{
		"countries":            strings.Join(wl.Countries, ","),
		"protocols":            strings.Join(wl.Protocols, ","),
		"connections":          strconv.Itoa(wl.Connections),
		"clients_per_cell":     strconv.Itoa(wl.ClientsPerCell),
		"waves_per_cell":       strconv.Itoa(wl.WavesPerCell),
		"unprotected_per_cell": strconv.Itoa(wl.UnprotectedPerCell),
		"wave_gap":             wl.WaveGap.String(),
		"cells":                strconv.Itoa(cells),
		"loss":                 strconv.FormatFloat(wl.Impairments.Loss, 'g', -1, 64),
		"duplicate":            strconv.FormatFloat(wl.Impairments.Duplicate, 'g', -1, 64),
		"reorder":              strconv.FormatFloat(wl.Impairments.Reorder, 'g', -1, 64),
		"jitter":               wl.Impairments.Jitter.String(),
	}
	return obs.NewManifest("fleet", cfg, obs.SeedSchedule{
		Base:      wl.Seed,
		TrialStep: cellSeedStride, // per cell, not per trial
		Streams: map[string]int64{
			"server":      seedServer,
			"router":      seedRouter,
			"censor":      seedCensor,
			"impairments": seedImpairments,
			"clients":     seedClients, // client slot s at clients + s
		},
	})
}
