package fleet

import (
	"geneva/internal/eval"
	"geneva/internal/obs"
)

// Fleet counters. Totals are sums of per-connection events whose randomness
// is purely seed-derived, and the concurrency gauge is a high-water mark
// over per-cell virtual-time concurrency, so every instrument here is
// worker-width invariant (the PR-4 metrics discipline).
var (
	mCells         = obs.NewCounter("fleet.cells")
	mWaves         = obs.NewCounter("fleet.waves")
	mConnections   = obs.NewCounter("fleet.connections")
	mServed        = obs.NewCounter("fleet.connections_served")
	mTornDown      = obs.NewCounter("fleet.connections_torn_down")
	mUnestablished = obs.NewCounter("fleet.connections_unestablished")
	mAttempts      = obs.NewCounter("fleet.attempts")
	// mConcurrent is the maximum number of connections in flight at once on
	// any single cell network (virtual time), i.e. the widest wave actually
	// started.
	mConcurrent = obs.NewGauge("fleet.concurrent_connections")
	// mResidualPublished counts residual-censorship windows cells exported
	// into their country's ledger at wave barriers; mResidualSeeded counts
	// windows the ledger planted into cells at the next wave's start (only
	// windows outliving the wave gap are planted, so with the default gap
	// both stay at published-only/zero). Each cell's contribution is a pure
	// function of its seeds and the merged ledger, so both totals are
	// worker- and shard-width invariant.
	mResidualPublished = obs.NewCounter("fleet.residual_windows_published")
	mResidualSeeded    = obs.NewCounter("fleet.residual_ledger_seeded")
	// Long-horizon session counters: per-exchange demand and delivery,
	// reconnect churn, and the virtual uptime/lifetime sums (nanoseconds)
	// behind the availability ratio. All are plan- and outcome-derived, so
	// they inherit the same width invariance as the totals above.
	mRequestsAttempted = obs.NewCounter("fleet.requests_attempted")
	mRequestsServed    = obs.NewCounter("fleet.requests_served")
	mReconnects        = obs.NewCounter("fleet.reconnects")
	mRecoveries        = obs.NewCounter("fleet.recoveries")
	mUptimeVirtual     = obs.NewCounter("fleet.uptime_virtual_ns")
	mLifetimeVirtual   = obs.NewCounter("fleet.lifetime_virtual_ns")
)

// Per-country counters, registered statically for every modeled country so
// snapshots keep a stable key set.
var (
	mCountryConns  = map[string]*obs.Counter{}
	mCountryEvaded = map[string]*obs.Counter{}
)

func init() {
	for _, c := range countryMetricNames {
		mCountryConns[c.country] = obs.NewCounter("fleet." + c.label + ".connections")
		mCountryEvaded[c.country] = obs.NewCounter("fleet." + c.label + ".evaded")
	}
}

// countryMetricNames is enumerated from the censor registry: every
// registered country gets a counter pair, with dashes in country keys
// mapped to underscores via the registry's MetricLabel ("india-jio" →
// "fleet.india_jio.*"), plus the uncensored population.
var countryMetricNames = func() []struct{ country, label string } {
	var names []struct{ country, label string }
	for _, d := range eval.Registry() {
		names = append(names, struct{ country, label string }{d.Country, d.MetricLabel})
	}
	return append(names, struct{ country, label string }{"", "uncensored"})
}()
