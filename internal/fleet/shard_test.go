package fleet

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"geneva/internal/eval"
	"geneva/internal/obs"
	"geneva/internal/race"
	"geneva/internal/selector"
)

// fleetSnapshot runs a workload with metrics on and returns the JSON-encoded
// Result plus the full counter snapshot, so property tests can assert that
// both the structured result and every instrument are invariant under a
// scheduling change.
func fleetSnapshot(t *testing.T, wl Workload) (string, map[string]uint64) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	obs.Reset()
	defer func() {
		obs.Reset()
		obs.SetEnabled(prev)
	}()
	r, err := Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), obs.Take().Counters
}

// TestFleetResidualLedgerProperty is the property test for the one piece of
// genuinely cross-connection censor state the sharded fleet shares: the
// GFW's ~90s residual-censorship windows.
//
// Property 1 (window arithmetic): cross-wave residual state fires iff the
// wave gap lands inside the residual window. With WaveGap shorter than the
// 90s window the barrier ledger must seed windows into the next wave
// (fleet.residual_ledger_seeded > 0) and censor.gfw.http.residual_hits must
// exceed the long-gap run; with WaveGap beyond the window the ledger must
// seed nothing and stay provably empty.
//
// Property 2 (shard invariance): the totals are identical whether the
// affected connections land in the same shard or different shards — the
// whole point of routing residual state through the deterministic
// max-merge at the wave barrier instead of letting shards race on it.
func TestFleetResidualLedgerProperty(t *testing.T) {
	base := Workload{
		Countries:   []string{eval.CountryChina},
		Protocols:   []string{"http"},
		Connections: 80, // several cells' worth, so windows cross cell lines
		Workers:     1,
		Seed:        42,
	}
	run := func(gap time.Duration, workers, shards int) (string, map[string]uint64) {
		wl := base
		wl.WaveGap = gap
		wl.Workers = workers
		wl.Shards = shards
		return fleetSnapshot(t, wl)
	}

	const inside = 30 * time.Second   // < 90s residual window
	const outside = 120 * time.Second // > 90s residual window

	_, short := run(inside, 1, 1)
	_, long := run(outside, 1, 1)

	if short["fleet.residual_ledger_seeded"] == 0 {
		t.Error("WaveGap=30s inside the 90s residual window, but the barrier ledger seeded nothing")
	}
	if long["fleet.residual_ledger_seeded"] != 0 {
		t.Errorf("WaveGap=120s outlives the 90s residual window, but the ledger seeded %d windows",
			long["fleet.residual_ledger_seeded"])
	}
	if long["fleet.residual_windows_published"] == 0 {
		t.Error("cells censored traffic but published no residual windows at the barrier")
	}
	if s, l := short["censor.gfw.http.residual_hits"], long["censor.gfw.http.residual_hits"]; s <= l {
		t.Errorf("residual hits: short-gap %d <= long-gap %d; cross-wave residual state never fired", s, l)
	}

	// Shard invariance, asserted at the gap where the ledger is live (the
	// hard case: residual windows really flow between shards here).
	wantRes, wantCtrs := run(inside, 1, 1)
	for _, layout := range []struct{ workers, shards int }{
		{1, 2}, {1, 8}, {4, 2}, {4, 0},
	} {
		name := fmt.Sprintf("workers=%d/shards=%d", layout.workers, layout.shards)
		gotRes, gotCtrs := run(inside, layout.workers, layout.shards)
		if gotRes != wantRes {
			t.Errorf("%s: Result diverged from workers=1/shards=1 under live residual ledger:\n%s\nvs\n%s",
				name, gotRes, wantRes)
		}
		for k, want := range wantCtrs {
			if got := gotCtrs[k]; got != want {
				t.Errorf("%s: counter %s = %d, want %d", name, k, got, want)
			}
		}
		if len(gotCtrs) != len(wantCtrs) {
			t.Errorf("%s: snapshot has %d counters, want %d", name, len(gotCtrs), len(wantCtrs))
		}
	}

	// Property 3 (reconnect × ledger): keep-alive sessions with reconnect
	// churn refresh residual windows deep into each wave (every teardown of
	// a reconnecting client re-poisons the server key), so the reconnect
	// workload is the adversarial case for barrier bookkeeping. The window
	// arithmetic must still hold — a wave gap inside the window seeds the
	// ledger, one beyond it provably doesn't — and the totals must stay
	// invariant under every shard layout.
	churn := base
	churn.SessionRequests = 3
	churn.RequestGap = 40 * time.Second
	churn.Reconnect = ReconnectPolicy{MaxAttempts: 3, Backoff: 20 * time.Second, RetryAll: true}
	runChurn := func(gap time.Duration, workers, shards int) (string, map[string]uint64) {
		wl := churn
		wl.WaveGap = gap
		wl.Workers = workers
		wl.Shards = shards
		return fleetSnapshot(t, wl)
	}
	_, churnShort := runChurn(inside, 1, 1)
	_, churnLong := runChurn(outside, 1, 1)
	if churnShort["fleet.residual_ledger_seeded"] == 0 {
		t.Error("reconnect churn at WaveGap=30s seeded no ledger windows")
	}
	if churnLong["fleet.residual_ledger_seeded"] != 0 {
		t.Errorf("reconnect churn at WaveGap=120s seeded %d windows, want 0",
			churnLong["fleet.residual_ledger_seeded"])
	}
	if churnShort["fleet.reconnects"] == 0 {
		t.Error("reconnect-churn workload never reconnected; property 3 exercised nothing")
	}
	churnRes, churnCtrs := runChurn(inside, 1, 1)
	for _, layout := range []struct{ workers, shards int }{
		{1, 2}, {4, 2}, {4, 0},
	} {
		name := fmt.Sprintf("churn/workers=%d/shards=%d", layout.workers, layout.shards)
		gotRes, gotCtrs := runChurn(inside, layout.workers, layout.shards)
		if gotRes != churnRes {
			t.Errorf("%s: Result diverged from workers=1/shards=1 under reconnect churn:\n%s\nvs\n%s",
				name, gotRes, churnRes)
		}
		for k, want := range churnCtrs {
			if got := gotCtrs[k]; got != want {
				t.Errorf("%s: counter %s = %d, want %d", name, k, got, want)
			}
		}
	}
}

// TestFleetAllocBudget pins the per-connection allocation budget of the
// fleet hot path, the satellite tripwire mirroring eval's
// TestTrialAllocBudget. The pre-sharding harness ran at ~32 allocs per
// connection on this shape, the pooled cell/wave loop at ~21, and the
// parse-once/TCB-recycling pass at ~16. The budget leaves headroom for
// cross-seed variance but fails long before a regression to any earlier
// plateau. Metrics must be off: obs's zero-cost-when-disabled guarantee is
// part of what is being enforced.
func TestFleetAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; budgets are enforced by make alloc-budget")
	}
	if obs.Enabled() {
		t.Fatal("metrics unexpectedly enabled; a prior test leaked obs state")
	}
	wl := Workload{
		Countries:   []string{eval.CountryChina, eval.CountryIndia, eval.CountryIran, eval.CountryKazakhstan},
		Protocols:   []string{"http", "dns", "smtp"},
		Connections: 500,
		Workers:     1,
		Shards:      1,
		Seed:        1,
	}
	seed := int64(1)
	allocs := testing.AllocsPerRun(5, func() {
		seed++
		w := wl
		w.Seed = seed
		if _, err := Run(w); err != nil {
			t.Fatal(err)
		}
	})
	perConn := allocs / float64(wl.Connections)
	const budget = 19.0
	if perConn > budget {
		t.Errorf("fleet allocates %.1f objects per connection (%.0f total), budget is %.0f/conn (pre-sharding baseline was ~32)",
			perConn, allocs, budget)
	}
	perConnOneShot := perConn

	// The keep-alive + reconnect shape carries extra per-connection cost —
	// delayed-send timers per exchange, tail-session scripts and reconnect
	// attempts — that the freelists must still bound. ~29/conn when the
	// shape landed; the budget fails well before a leak per exchange or per
	// reconnect creeps in.
	ka := wl
	ka.SessionRequests = 3
	ka.RequestGap = 40 * time.Second
	ka.Reconnect = ReconnectPolicy{MaxAttempts: 3, Backoff: 20 * time.Second, RetryAll: true}
	allocs = testing.AllocsPerRun(5, func() {
		seed++
		w := ka
		w.Seed = seed
		if _, err := Run(w); err != nil {
			t.Fatal(err)
		}
	})
	perConn = allocs / float64(ka.Connections)
	const kaBudget = 34.0
	if perConn > kaBudget {
		t.Errorf("keep-alive fleet allocates %.1f objects per connection (%.0f total), budget is %.0f/conn",
			perConn, allocs, kaBudget)
	}

	// The online-selection rung: the same one-shot shape with a
	// three-strategy portfolio raced by the epsilon-greedy bandit. The
	// control plane's whole steady-state cost is integer delta accumulation
	// plus a router pin per attempt — pooled engines, reused scratch — so
	// its budget is the measured pinned cost plus 2 allocs/conn, not a
	// separate absolute plateau.
	sel := wl
	sel.Portfolio = eval.DefaultPortfolio()
	sel.Selection = selector.Selection{Policy: selector.EpsilonGreedy}
	pinnedPerConn := perConnOneShot
	selAllocs := testing.AllocsPerRun(5, func() {
		seed++
		w := sel
		w.Seed = seed
		if _, err := Run(w); err != nil {
			t.Fatal(err)
		}
	})
	selPerConn := selAllocs / float64(sel.Connections)
	if selPerConn > pinnedPerConn+2 {
		t.Errorf("selection fleet allocates %.1f objects per connection, pinned path costs %.1f; budget is pinned+2",
			selPerConn, pinnedPerConn)
	}
}
