package fleet

import (
	"strings"
	"testing"
	"time"

	"geneva/internal/eval"
	"geneva/internal/obs"
)

// TestFleetWorkload pins the harness's basic accounting on the default
// registry-wide country mix (seven censors): the plan serves exactly the
// requested number of connections, splits them evenly, and the outcome mix
// partitions them.
func TestFleetWorkload(t *testing.T) {
	r, err := Run(Workload{Connections: 112, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r.Connections != 112 {
		t.Fatalf("Connections = %d, want 112", r.Connections)
	}
	if r.Cells != 7 {
		t.Fatalf("Cells = %d, want 7 (one per country at this size)", r.Cells)
	}
	sum := 0
	for name, n := range r.Outcomes {
		if n < 0 {
			t.Errorf("outcome %q negative: %d", name, n)
		}
		sum += n
	}
	if sum != r.Connections {
		t.Errorf("outcomes sum to %d, want %d (must partition the fleet)", sum, r.Connections)
	}
	succ := 0
	for country, cs := range r.PerCountry {
		if cs.Connections != 16 {
			t.Errorf("%s: %d connections, want an even 16", country, cs.Connections)
		}
		if cs.Routed+cs.Contested+cs.Unprotected != cs.Connections {
			t.Errorf("%s: kinds %d+%d+%d don't partition %d connections",
				country, cs.Routed, cs.Contested, cs.Unprotected, cs.Connections)
		}
		succ += cs.Succeeded
	}
	if succ != r.Succeeded {
		t.Errorf("per-country Succeeded sums to %d, want %d", succ, r.Succeeded)
	}

	// The deterministic censors (every ISP of the India family, Iran,
	// Kazakhstan, and the TMC — whose residual window is shorter than the
	// default wave gap) have no cross-connection state the routed strategy
	// can't out-run, so it wins outright even in a shared cell — the §8
	// result, now at fleet scale.
	deterministic := []string{eval.CountryIndia, eval.CountryIndiaJio, eval.CountryIndiaVodafone,
		eval.CountryIran, eval.CountryKazakhstan, eval.CountryTurkmenistan}
	for _, c := range deterministic {
		if rate := r.PerCountry[c].EvasionRate(); rate != 1 {
			t.Errorf("%s: routed evasion %.2f, want 1.00", c, rate)
		}
	}
	// China runs Strategy 1 (~54% per isolated flow) AND pays residual
	// collateral from cellmates; the fleet rate lands below the isolated
	// rate but must stay nonzero.
	if rate := r.PerCountry[eval.CountryChina].EvasionRate(); rate <= 0 || rate >= 0.75 {
		t.Errorf("china: routed evasion %.2f, want in (0, 0.75)", rate)
	}
	// Unprotected clients in deterministic-censor countries never succeed
	// on a censored workload: no route matched, so the server never helped
	// them. (Jio censors only HTTPS, so its unprotected HTTP clients pass
	// — skip it here.)
	for _, c := range deterministic {
		if c == eval.CountryIndiaJio {
			continue
		}
		if n := r.PerCountry[c].UnprotectedSucceeded; n != 0 {
			t.Errorf("%s: %d unprotected successes, want 0", c, n)
		}
	}
}

// TestFleetUncensoredCountry: a CountryNone population has no censor in its
// cells, so every connection is served.
func TestFleetUncensoredCountry(t *testing.T) {
	r, err := Run(Workload{Countries: []string{eval.CountryNone}, Connections: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.Succeeded != 12 {
		t.Fatalf("uncensored fleet: %d/12 served, want all", r.Succeeded)
	}
	if r.Outcomes["served"] != 12 || r.Outcomes["torn_down"] != 0 {
		t.Fatalf("uncensored outcomes = %v, want 12 served", r.Outcomes)
	}
}

// TestFleetCrossConnectionResidual is the cross-connection censor-state
// regression: with no gap between waves, GFW residual censorship opened by
// one wave's censored flows (the unprotected client guarantees some) bleeds
// into the next wave and tears down flows that would otherwise have been
// served. The harness must show MORE residual hits and FEWER routed
// successes at WaveGap<0 than at the default 120 s gap, which outlives the
// ~90 s residual window.
func TestFleetCrossConnectionResidual(t *testing.T) {
	base := Workload{
		Countries:   []string{eval.CountryChina},
		Connections: 40,
		Seed:        42,
	}
	run := func(gap time.Duration) (CountryStats, uint64) {
		prev := obs.Enabled()
		obs.SetEnabled(true)
		obs.Reset()
		defer func() {
			obs.Reset()
			obs.SetEnabled(prev)
		}()
		wl := base
		wl.WaveGap = gap
		r, err := Run(wl)
		if err != nil {
			t.Fatal(err)
		}
		return r.PerCountry[eval.CountryChina], obs.Take().Counters["censor.gfw.http.residual_hits"]
	}
	gapped, gappedHits := run(120 * time.Second)
	merged, mergedHits := run(-1)
	if mergedHits <= gappedHits {
		t.Errorf("residual hits: no-gap %d <= gapped %d; cross-wave residual state never fired",
			mergedHits, gappedHits)
	}
	if merged.RoutedSucceeded >= gapped.RoutedSucceeded {
		t.Errorf("routed successes: no-gap %d >= gapped %d; residual collateral cost nothing",
			merged.RoutedSucceeded, gapped.RoutedSucceeded)
	}
}

// TestFleetTMCResidual: the TMC carries cross-connection state through the
// same residual ledger as the GFW (censor.ResidualCarrier), so the fleet
// regression holds for it too: with no gap between waves, one wave's
// tear-downs poison the server for the next wave's handshakes; with the
// default 120 s gap — longer than the TMC's 60 s window — the cross-wave
// seeds expire, so strictly fewer connections hit residual state (cellmates
// inside one wave still poison each other; only the cross-WAVE bleed is
// gap-sensitive).
func TestFleetTMCResidual(t *testing.T) {
	base := Workload{
		Countries:   []string{eval.CountryTurkmenistan},
		Connections: 40,
		Seed:        42,
	}
	run := func(gap time.Duration) uint64 {
		prev := obs.Enabled()
		obs.SetEnabled(true)
		obs.Reset()
		defer func() {
			obs.Reset()
			obs.SetEnabled(prev)
		}()
		wl := base
		wl.WaveGap = gap
		if _, err := Run(wl); err != nil {
			t.Fatal(err)
		}
		c := obs.Take().Counters
		return c["censor.tmc.dns.residual_hits"] + c["censor.tmc.http.residual_hits"] +
			c["censor.tmc.https.residual_hits"]
	}
	gapped := run(120 * time.Second)
	merged := run(-1)
	if merged <= gapped {
		t.Errorf("TMC residual hits: no-gap %d <= gapped %d; the ledger never carried TMC state across waves",
			merged, gapped)
	}
}

// TestFleetValidation: a workload naming an unmodeled country or protocol
// must come back as a descriptive error, not a panic (the pre-fix behaviour
// deep in eval was a panic).
func TestFleetValidation(t *testing.T) {
	if _, err := Run(Workload{Countries: []string{"atlantis"}}); err == nil {
		t.Error("unknown country: want error, got nil")
	} else if !strings.Contains(err.Error(), "atlantis") || !strings.Contains(err.Error(), eval.CountryChina) {
		t.Errorf("unknown-country error should name the input and the valid values, got: %v", err)
	}
	if _, err := Run(Workload{Protocols: []string{"gopher"}}); err == nil {
		t.Error("unknown protocol: want error, got nil")
	} else if !strings.Contains(err.Error(), "gopher") || !strings.Contains(err.Error(), "http") {
		t.Errorf("unknown-protocol error should name the input and the valid values, got: %v", err)
	}
	if _, err := Run(Workload{ClientsPerCell: 300}); err == nil {
		t.Error("oversized cell: want error, got nil")
	}
}

// TestFleetMetricsMatchResult: with collection enabled, the fleet counters
// must agree exactly with the structured Result — and, like every obs
// instrument, be identical at any worker width.
func TestFleetMetricsMatchResult(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer func() {
		obs.Reset()
		obs.SetEnabled(prev)
	}()
	wl := Workload{Connections: 48, Seed: 7}
	snap := func(workers int) (Result, obs.Snapshot) {
		obs.Reset()
		w := wl
		w.Workers = workers
		r, err := Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return r, obs.Take()
	}
	r, s := snap(1)
	if got := s.Counters["fleet.connections"]; got != uint64(r.Connections) {
		t.Errorf("fleet.connections = %d, want %d", got, r.Connections)
	}
	if got := s.Counters["fleet.connections_served"]; got != uint64(r.Succeeded) {
		t.Errorf("fleet.connections_served = %d, want %d", got, r.Succeeded)
	}
	if got := s.Counters["fleet.connections_torn_down"]; got != uint64(r.Outcomes["torn_down"]) {
		t.Errorf("fleet.connections_torn_down = %d, want %d", got, r.Outcomes["torn_down"])
	}
	if got := s.Counters["fleet.cells"]; got != uint64(r.Cells) {
		t.Errorf("fleet.cells = %d, want %d", got, r.Cells)
	}
	for _, def := range eval.Registry() {
		cs := r.PerCountry[def.Country]
		if got := s.Counters["fleet."+def.MetricLabel+".connections"]; got != uint64(cs.Connections) {
			t.Errorf("fleet.%s.connections = %d, want %d", def.MetricLabel, got, cs.Connections)
		}
		if got := s.Counters["fleet."+def.MetricLabel+".evaded"]; got != uint64(cs.Succeeded) {
			t.Errorf("fleet.%s.evaded = %d, want %d", def.MetricLabel, got, cs.Succeeded)
		}
	}
	if g := s.Gauges["fleet.concurrent_connections"]; g < 2 {
		t.Errorf("fleet.concurrent_connections = %d, want >= 2 (waves are concurrent)", g)
	}
	if got := s.Counters["fleet.requests_attempted"]; got != uint64(r.RequestsAttempted) {
		t.Errorf("fleet.requests_attempted = %d, want %d", got, r.RequestsAttempted)
	}
	if got := s.Counters["fleet.requests_served"]; got != uint64(r.RequestsServed) {
		t.Errorf("fleet.requests_served = %d, want %d", got, r.RequestsServed)
	}
	if got := s.Counters["fleet.uptime_virtual_ns"]; got != uint64(r.UptimeVirtual) {
		t.Errorf("fleet.uptime_virtual_ns = %d, want %d", got, r.UptimeVirtual)
	}
	if got := s.Counters["fleet.lifetime_virtual_ns"]; got != uint64(r.LifetimeVirtual) {
		t.Errorf("fleet.lifetime_virtual_ns = %d, want %d", got, r.LifetimeVirtual)
	}
	for _, w := range []int{2, 8} {
		_, got := snap(w)
		for name, v := range s.Counters {
			if got.Counters[name] != v {
				t.Errorf("workers=%d: counter %s = %d, want %d", w, name, got.Counters[name], v)
			}
		}
	}
}

// TestFleetManifestStable: the manifest embeds the workload config and seed
// schedule but never the worker width or wall-clock anything, so two runs of
// one Workload at different widths produce identical manifests.
func TestFleetManifestStable(t *testing.T) {
	wl := Workload{Connections: 24, Seed: 5}
	a, err := Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	wl.Workers = 8
	b, err := Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	aj, bj := a.Manifest.JSON(), b.Manifest.JSON()
	if string(aj) != string(bj) {
		t.Errorf("manifest differs across worker widths:\n%s\nvs\n%s", aj, bj)
	}
	if a.Manifest.Config["connections"] != "24" {
		t.Errorf("manifest connections = %q, want 24", a.Manifest.Config["connections"])
	}
	if _, ok := a.Manifest.Config["workers"]; ok {
		t.Error("manifest must not record worker width")
	}
	// The long-horizon knobs are part of the run record (their resolved
	// defaults, so a manifest alone reproduces the run).
	if got := a.Manifest.Config["session_requests"]; got != "1" {
		t.Errorf("manifest session_requests = %q, want 1", got)
	}
	if got := a.Manifest.Config["reconnect_retry_all"]; got != "false" {
		t.Errorf("manifest reconnect_retry_all = %q, want false", got)
	}
}
