package fleet

import (
	"fmt"
	"testing"
	"time"

	"geneva/internal/eval"
)

// TestFleetKeepAliveCleanRun: an uncensored keep-alive fleet serves every
// planned exchange on the first connection, with no reconnect churn and
// near-total availability (the denominator includes handshake and teardown
// time, so it never reads exactly 1.0).
func TestFleetKeepAliveCleanRun(t *testing.T) {
	r, err := Run(Workload{
		Countries:       []string{eval.CountryNone},
		Connections:     12,
		SessionRequests: 4,
		RequestGap:      40 * time.Second,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.RequestsAttempted != 12*4 {
		t.Fatalf("RequestsAttempted = %d, want %d", r.RequestsAttempted, 12*4)
	}
	if r.RequestsServed != r.RequestsAttempted {
		t.Errorf("RequestsServed = %d, want all %d", r.RequestsServed, r.RequestsAttempted)
	}
	cs := r.PerCountry[eval.CountryNone]
	if cs.FirstAttemptSucceeded != cs.Connections {
		t.Errorf("FirstAttemptSucceeded = %d, want %d", cs.FirstAttemptSucceeded, cs.Connections)
	}
	if cs.Reconnects != 0 || cs.Recoveries != 0 {
		t.Errorf("uncensored fleet reconnected: %d reconnects, %d recoveries", cs.Reconnects, cs.Recoveries)
	}
	if a := r.Availability(); a < 0.95 || a > 1 {
		t.Errorf("clean-run availability = %.3f, want in [0.95, 1]", a)
	}
	if got := cs.MeanReconnectsToRecovery(); got != 0 {
		t.Errorf("MeanReconnectsToRecovery = %.2f with no recoveries", got)
	}
}

// TestFleetOneShotDefaultsUnchanged: the long-horizon fields are pure
// bookkeeping for a zero-value workload — every connection plans exactly one
// exchange, and the request totals collapse onto the classic connection
// totals the harness has always reported.
func TestFleetOneShotDefaultsUnchanged(t *testing.T) {
	r, err := Run(Workload{Connections: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.RequestsAttempted != r.Connections {
		t.Errorf("one-shot RequestsAttempted = %d, want %d", r.RequestsAttempted, r.Connections)
	}
	if r.RequestsServed != r.Succeeded {
		t.Errorf("one-shot RequestsServed = %d, want Succeeded = %d", r.RequestsServed, r.Succeeded)
	}
	for country, cs := range r.PerCountry {
		if cs.RequestsAttempted != cs.Connections {
			t.Errorf("%s: RequestsAttempted = %d, want %d", country, cs.RequestsAttempted, cs.Connections)
		}
	}
}

// keepAliveChina is the committed long-horizon scenario: a China fleet of
// keep-alive sessions (4 exchanges, 40 s apart — long enough that the GFW's
// ~90 s residual window straddles a session), single wave so every first
// attempt settles before any reconnect fires.
var keepAliveChina = Workload{
	Countries:       []string{eval.CountryChina},
	Protocols:       []string{"http"},
	Connections:     32,
	ClientsPerCell:  3,
	WavesPerCell:    1,
	SessionRequests: 4,
	RequestGap:      40 * time.Second,
	Seed:            42,
	Workers:         1,
	Shards:          1,
}

// TestFleetReconnectPolicyChangesAvailability is the scenario the issue
// demands on record: a mid-session teardown plus the client's reconnect
// policy moves user-visible availability, while the first-connection evasion
// rate — every first attempt settles before any reconnect packet exists —
// does not move at all.
//
// Mechanism: one cellmate's censored flow poisons the server's ip:port
// (residual censorship), tearing down established cellmates' sessions at
// their NEXT keep-alive request; every teardown re-poisons for another 90 s.
// A client that reconnects immediately walks straight back into the live
// window and burns its attempt budget; a client that backs off 100 s outlives
// the window and finishes its remaining exchanges.
func TestFleetReconnectPolicyChangesAvailability(t *testing.T) {
	run := func(pol ReconnectPolicy) CountryStats {
		wl := keepAliveChina
		wl.Reconnect = pol
		r, err := Run(wl)
		if err != nil {
			t.Fatal(err)
		}
		return r.PerCountry[eval.CountryChina]
	}
	immediate := run(ReconnectPolicy{MaxAttempts: 3})
	backoff := run(ReconnectPolicy{MaxAttempts: 3, Backoff: 100 * time.Second})

	// The first-connection measurement is policy-blind — and non-degenerate:
	// some first attempts do finish whole sessions despite the poisoning.
	if immediate.FirstAttemptSucceeded != backoff.FirstAttemptSucceeded {
		t.Errorf("first-attempt successes moved with the reconnect policy: immediate %d, backoff %d",
			immediate.FirstAttemptSucceeded, backoff.FirstAttemptSucceeded)
	}
	if immediate.FirstAttemptSucceeded == 0 {
		t.Error("no first attempt ever succeeded; the policy-blindness check is vacuous")
	}
	if immediate.Connections != backoff.Connections {
		t.Fatalf("connection counts diverged: %d vs %d", immediate.Connections, backoff.Connections)
	}

	// Mid-session teardown happened: some connection served at least one
	// whole exchange and still didn't finish its session, so the served
	// total exceeds what the finished sessions alone account for.
	if immediate.RequestsServed <= 4*immediate.Succeeded {
		t.Errorf("no partial sessions under the immediate policy: served %d requests over %d full sessions",
			immediate.RequestsServed, immediate.Succeeded)
	}

	// And the policy is what decides how much of the planned workload the
	// users actually get.
	if backoff.RequestsServed <= immediate.RequestsServed {
		t.Errorf("backoff served %d requests <= immediate's %d; outliving the residual window bought nothing",
			backoff.RequestsServed, immediate.RequestsServed)
	}
	if backoff.Availability() <= immediate.Availability() {
		t.Errorf("backoff availability %.3f <= immediate %.3f",
			backoff.Availability(), immediate.Availability())
	}
	if backoff.Recoveries <= immediate.Recoveries {
		t.Errorf("backoff recovered %d sessions <= immediate's %d", backoff.Recoveries, immediate.Recoveries)
	}
	if immediate.Reconnects == 0 {
		t.Error("immediate policy never reconnected; the scenario exercised nothing")
	}
	if backoff.Recoveries > 0 && backoff.MeanReconnectsToRecovery() <= 0 {
		t.Error("recoveries recorded but MeanReconnectsToRecovery = 0")
	}
}

// TestFleetLongHorizonShardInvariance: the committed scenario — keep-alive
// sessions, reconnect backoff, residual windows straddling both — is
// bit-identical (Result and every counter) at any workers × shards layout,
// the same guarantee the one-shot fleet has always carried.
func TestFleetLongHorizonShardInvariance(t *testing.T) {
	for _, pol := range []ReconnectPolicy{
		{MaxAttempts: 3},
		{MaxAttempts: 3, Backoff: 100 * time.Second},
		{MaxAttempts: 4, Backoff: 50 * time.Second, RetryAll: true},
	} {
		wl := keepAliveChina
		wl.Connections = 24
		wl.Reconnect = pol
		wantRes, wantCtrs := fleetSnapshot(t, wl)
		for _, layout := range []struct{ workers, shards int }{
			{2, 2}, {8, 8}, {8, 0},
		} {
			w := wl
			w.Workers = layout.workers
			w.Shards = layout.shards
			name := fmt.Sprintf("backoff=%v/workers=%d/shards=%d", pol.Backoff, layout.workers, layout.shards)
			gotRes, gotCtrs := fleetSnapshot(t, w)
			if gotRes != wantRes {
				t.Errorf("%s: Result diverged from workers=1/shards=1:\n%s\nvs\n%s", name, gotRes, wantRes)
			}
			for k, want := range wantCtrs {
				if got := gotCtrs[k]; got != want {
					t.Errorf("%s: counter %s = %d, want %d", name, k, got, want)
				}
			}
		}
	}
}
