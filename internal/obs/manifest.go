package obs

import (
	"encoding/json"
	"os"
	"runtime"
)

// ManifestSchema names the manifest's JSON shape; bump on breaking changes
// so diff tooling can refuse to compare across schemas.
const ManifestSchema = "geneva-run-manifest/v1"

// SeedSchedule documents how every random stream in a run derives from the
// base seed, so a manifest alone is enough to reproduce the run. The
// derivation rules are fixed by the harness (see eval.NewRig and eval.Rate);
// the manifest records them next to the base value rather than asking the
// reader to find them in source.
type SeedSchedule struct {
	// Base is the user-supplied seed every stream derives from.
	Base int64 `json:"base"`
	// TrialStep: trial i runs at seed Base + i*TrialStep.
	TrialStep int64 `json:"trial_step"`
	// Streams maps each per-trial rng stream to its offset from the trial
	// seed (client ISN/ports, server, engine, censor, impairments).
	Streams map[string]int64 `json:"streams"`
}

// DefaultSeedSchedule is the schedule the eval harness uses: trial seeds
// stride by 7919 (eval.Rate) and each rig derives five offset streams
// (eval.NewRig).
func DefaultSeedSchedule(base int64) SeedSchedule {
	return SeedSchedule{
		Base:      base,
		TrialStep: 7919,
		Streams: map[string]int64{
			"client":      0,
			"server":      1,
			"engine":      2,
			"censor":      3,
			"impairments": 4,
		},
	}
}

// Manifest is the diffable record of one instrumented run: what was asked
// (config, seed schedule) and what the simulation mechanically did (every
// counter). It deliberately carries no timestamps or wall-clock durations —
// two runs of the same config on the same build must be byte-identical, so
// any diff localizes a behaviour change. It complements BENCH_trial.json
// (tools/benchjson): that file tracks how fast the hot path runs, this one
// tracks what it did.
type Manifest struct {
	Schema  string            `json:"schema"`
	Go      string            `json:"go"`
	Command string            `json:"command"`
	Config  map[string]string `json:"config"`
	Seeds   SeedSchedule      `json:"seeds"`
	Metrics Snapshot          `json:"metrics"`
}

// NewManifest assembles a manifest from the current registry state.
func NewManifest(command string, config map[string]string, seeds SeedSchedule) Manifest {
	return Manifest{
		Schema:  ManifestSchema,
		Go:      runtime.Version(),
		Command: command,
		Config:  config,
		Seeds:   seeds,
		Metrics: Take(),
	}
}

// JSON renders the manifest as indented JSON (map keys sort, so the output
// is stable and diffable). Marshalling a Manifest cannot fail: every field
// is a plain string/int map.
func (m Manifest) JSON() []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil { // unreachable: no field can fail to marshal
		panic(err)
	}
	return append(b, '\n')
}

// WriteFile writes the manifest as indented JSON.
func (m Manifest) WriteFile(path string) error {
	return os.WriteFile(path, m.JSON(), 0o644)
}
