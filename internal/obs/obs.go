// Package obs is the simulator's cross-layer observability substrate: a
// static registry of atomic counters, gauges, and bounded histograms that
// every layer (censors, tcpstack, netsim, eval) increments, plus the
// structured run manifest the commands emit.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Metrics are off by default; a disabled
//     Counter.Inc is one atomic load and a predictable branch — no
//     allocation, no lock, no map lookup. The trial hot path (see the PR 3
//     allocation budgets) pays nothing it wasn't already paying.
//  2. No allocation on the hot path when enabled either. Counters are
//     package-level statics registered at init; Inc/Add/Observe touch only
//     pre-allocated atomics.
//  3. Determinism-neutral. Metrics observe, never steer: no code path may
//     branch on a counter value. The determinism suite proves evolve and
//     evaluate results are bit-identical with metrics on and off.
//  4. Diffable. Snapshot and the manifest render counters in sorted name
//     order with no timestamps, so two runs of the same config diff clean
//     and any behaviour change localizes to the counters it moved.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates every mutation. Off by default: the registry exists, the
// instruments are registered, but Inc/Add/Set/Observe are no-ops.
var enabled atomic.Bool

// SetEnabled turns metric collection on or off globally.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// registry is the static instrument table. Instruments register at package
// init (NewCounter etc. from var blocks), so the lock is cold after startup;
// Snapshot takes it only to iterate.
var registry struct {
	mu         sync.Mutex
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
	names      map[string]bool
}

func register(name string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.names == nil {
		registry.names = make(map[string]bool)
	}
	if registry.names[name] {
		panic(fmt.Sprintf("obs: duplicate instrument name %q", name))
	}
	registry.names[name] = true
}

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	v    atomic.Uint64
}

// NewCounter registers a counter under a unique dotted name
// (e.g. "censor.gfw.http.censored"). Call from a package var block; a
// duplicate name panics at init.
func NewCounter(name string) *Counter {
	register(name)
	c := &Counter{name: name}
	registry.mu.Lock()
	registry.counters = append(registry.counters, c)
	registry.mu.Unlock()
	return c
}

// Inc adds 1 when metrics are enabled.
func (c *Counter) Inc() {
	if !enabled.Load() {
		return
	}
	c.v.Add(1)
}

// Add adds n when metrics are enabled.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Value returns the current count (readable whether or not enabled).
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-value-wins instrument (e.g. a table size).
type Gauge struct {
	name string
	v    atomic.Uint64
}

// NewGauge registers a gauge under a unique name.
func NewGauge(name string) *Gauge {
	register(name)
	g := &Gauge{name: name}
	registry.mu.Lock()
	registry.gauges = append(registry.gauges, g)
	registry.mu.Unlock()
	return g
}

// Set stores v when metrics are enabled.
func (g *Gauge) Set(v uint64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v uint64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Value returns the current value.
func (g *Gauge) Value() uint64 { return g.v.Load() }

// Histogram is a bounded histogram over fixed upper bounds: observation v
// lands in the first bucket with v <= bound, or the implicit overflow
// bucket. Bounds are fixed at registration, so Observe allocates nothing.
type Histogram struct {
	name    string
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1; last is overflow
	count   atomic.Uint64
	sum     atomic.Uint64
}

// NewHistogram registers a histogram with the given ascending bucket upper
// bounds (e.g. 1, 2, 4, 8 for a retransmission backoff ladder).
func NewHistogram(name string, bounds ...uint64) *Histogram {
	register(name)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name:    name,
		bounds:  append([]uint64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	registry.mu.Lock()
	registry.histograms = append(registry.histograms, h)
	registry.mu.Unlock()
	return h
}

// Observe records one sample when metrics are enabled.
func (h *Histogram) Observe(v uint64) {
	if !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// Snapshot is a frozen, name-sorted view of every registered instrument.
// Zero-valued instruments are included, so two snapshots of the same build
// always have the same keys — a structural guarantee diffs rely on.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]uint64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Take snapshots the registry.
func Take() Snapshot {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s := Snapshot{Counters: make(map[string]uint64, len(registry.counters))}
	for _, c := range registry.counters {
		s.Counters[c.name] = c.v.Load()
	}
	if len(registry.gauges) > 0 {
		s.Gauges = make(map[string]uint64, len(registry.gauges))
		for _, g := range registry.gauges {
			s.Gauges[g.name] = g.v.Load()
		}
	}
	if len(registry.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(registry.histograms))
		for _, h := range registry.histograms {
			hs := HistogramSnapshot{
				Bounds: append([]uint64(nil), h.bounds...),
				Counts: make([]uint64, len(h.buckets)),
				Count:  h.count.Load(),
				Sum:    h.sum.Load(),
			}
			for i := range h.buckets {
				hs.Counts[i] = h.buckets[i].Load()
			}
			s.Histograms[h.name] = hs
		}
	}
	return s
}

// Reset zeroes every registered instrument (the registry itself is static
// and survives). Commands call this before an instrumented run so the
// manifest covers exactly that run.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
	}
	for _, h := range registry.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// Format renders the snapshot as sorted "name value" lines, skipping
// zero-valued counters (the -metrics console view; the manifest keeps
// zeroes for structural stability).
func (s Snapshot) Format() string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		v, ok := s.Counters[n]
		if !ok {
			v = s.Gauges[n]
		}
		if v == 0 {
			continue
		}
		out += fmt.Sprintf("%-44s %d\n", n, v)
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		if h.Count == 0 {
			continue
		}
		out += fmt.Sprintf("%-44s count=%d sum=%d buckets=%v\n", n, h.Count, h.Sum, h.Counts)
	}
	return out
}
