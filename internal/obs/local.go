package obs

// Local is a shard-local batch of counter increments: a worker accumulates
// events with plain arithmetic — no atomics, no enabled-gate branches — and
// publishes them with one atomic Add per counter at a deterministic merge
// point (Flush). Because counter addition is commutative and every shard
// flushes the same per-shard totals regardless of scheduling, the global
// counters come out identical at any worker or shard width — the property
// the fleet manifest's bit-identity contract needs from its instruments.
//
// A Local is single-goroutine state; hand each worker its own and Flush at
// the barrier. The zero value is ready to use.
type Local struct {
	entries []localEntry
}

type localEntry struct {
	c *Counter
	n uint64
}

// Add accumulates n events for c locally. The entry table is a linear scan:
// a Local covers the handful of counters one shard touches, and staying a
// flat slice keeps Add allocation-free after the first few counters.
func (l *Local) Add(c *Counter, n uint64) {
	for i := range l.entries {
		if l.entries[i].c == c {
			l.entries[i].n += n
			return
		}
	}
	l.entries = append(l.entries, localEntry{c: c, n: n})
}

// Inc accumulates one event for c.
func (l *Local) Inc(c *Counter) { l.Add(c, 1) }

// Flush publishes the accumulated totals to the global counters (one atomic
// Add each, subject to the usual enabled gate) and resets the local tallies,
// keeping the entry table's capacity for the next batch.
func (l *Local) Flush() {
	for i := range l.entries {
		if l.entries[i].n > 0 {
			l.entries[i].c.Add(l.entries[i].n)
			l.entries[i].n = 0
		}
	}
}
