package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var (
	testCounter = NewCounter("test.counter")
	testGauge   = NewGauge("test.gauge")
	testHist    = NewHistogram("test.hist", 1, 2, 4)
)

func TestDisabledInstrumentsAreInert(t *testing.T) {
	SetEnabled(false)
	Reset()
	testCounter.Inc()
	testCounter.Add(5)
	testGauge.Set(9)
	testGauge.SetMax(9)
	testHist.Observe(3)
	if testCounter.Value() != 0 || testGauge.Value() != 0 {
		t.Fatalf("disabled instruments mutated: counter=%d gauge=%d",
			testCounter.Value(), testGauge.Value())
	}
	if hs := Take().Histograms["test.hist"]; hs.Count != 0 {
		t.Fatalf("disabled histogram recorded %d samples", hs.Count)
	}
}

// TestDisabledZeroAlloc is the hot-path tripwire for the tentpole's
// zero-cost-when-disabled guarantee: a disabled instrument must not
// allocate. (The end-to-end version is eval's TestTrialAllocBudget, which
// runs a whole instrumented trial under the PR 3 budget.)
func TestDisabledZeroAlloc(t *testing.T) {
	SetEnabled(false)
	if allocs := testing.AllocsPerRun(100, func() {
		testCounter.Inc()
		testCounter.Add(3)
		testGauge.Set(7)
		testHist.Observe(2)
	}); allocs != 0 {
		t.Errorf("disabled instruments allocate %.1f objects/op, want 0", allocs)
	}
}

// TestEnabledZeroAlloc: enabling metrics must not put allocations on the
// hot path either — only pre-registered atomics are touched.
func TestEnabledZeroAlloc(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	if allocs := testing.AllocsPerRun(100, func() {
		testCounter.Inc()
		testGauge.SetMax(3)
		testHist.Observe(5)
	}); allocs != 0 {
		t.Errorf("enabled instruments allocate %.1f objects/op, want 0", allocs)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	Reset()
	testCounter.Inc()
	testCounter.Add(4)
	if got := testCounter.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	testGauge.Set(3)
	testGauge.SetMax(10)
	testGauge.SetMax(7) // lower: ignored
	if got := testGauge.Value(); got != 10 {
		t.Errorf("gauge = %d, want 10", got)
	}
	for _, v := range []uint64{0, 1, 2, 3, 4, 9} {
		testHist.Observe(v)
	}
	hs := Take().Histograms["test.hist"]
	// Buckets: <=1, <=2, <=4, overflow.
	want := []uint64{2, 1, 2, 1}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 6 || hs.Sum != 19 {
		t.Errorf("count=%d sum=%d, want 6/19", hs.Count, hs.Sum)
	}

	Reset()
	if testCounter.Value() != 0 || testGauge.Value() != 0 {
		t.Error("Reset did not zero instruments")
	}
	if hs := Take().Histograms["test.hist"]; hs.Count != 0 || hs.Sum != 0 {
		t.Error("Reset did not zero histogram")
	}
}

func TestSnapshotIncludesZeroes(t *testing.T) {
	SetEnabled(false)
	Reset()
	s := Take()
	if _, ok := s.Counters["test.counter"]; !ok {
		t.Error("snapshot omits zero-valued counter: manifests would change shape between runs")
	}
	if s.Format() != "" {
		// Format (the console view) skips zeroes by design.
		for _, line := range []string{s.Format()} {
			t.Errorf("Format rendered zero-valued instruments: %q", line)
		}
	}
}

func TestConcurrentCounters(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	Reset()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				testCounter.Inc()
				testHist.Observe(uint64(i % 5))
			}
		}()
	}
	wg.Wait()
	if got := testCounter.Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if hs := Take().Histograms["test.hist"]; hs.Count != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", hs.Count)
	}
	Reset()
}

func TestManifestRoundtrip(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	Reset()
	testCounter.Add(42)
	m := NewManifest("evaluate -trials 2", map[string]string{"trials": "2"},
		DefaultSeedSchedule(7))
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if got.Schema != ManifestSchema {
		t.Errorf("schema = %q", got.Schema)
	}
	if got.Metrics.Counters["test.counter"] != 42 {
		t.Errorf("manifest counter = %d, want 42", got.Metrics.Counters["test.counter"])
	}
	if got.Seeds.Base != 7 || got.Seeds.TrialStep != 7919 || got.Seeds.Streams["censor"] != 3 {
		t.Errorf("seed schedule mangled: %+v", got.Seeds)
	}
	// Two writes of the same state are byte-identical (diffability).
	path2 := filepath.Join(t.TempDir(), "manifest2.json")
	if err := m.WriteFile(path2); err != nil {
		t.Fatal(err)
	}
	raw2, _ := os.ReadFile(path2)
	if string(raw) != string(raw2) {
		t.Error("two writes of the same manifest differ byte-wise")
	}
	Reset()
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate instrument name did not panic")
		}
	}()
	NewCounter("test.counter")
}
