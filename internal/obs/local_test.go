package obs

import "testing"

// TestLocalFlush: a Local batches increments with plain arithmetic and
// publishes exactly once per counter at Flush, resetting its tallies so the
// next batch starts clean.
func TestLocalFlush(t *testing.T) {
	prev := Enabled()
	SetEnabled(true)
	Reset()
	defer func() {
		Reset()
		SetEnabled(prev)
	}()

	a := NewCounter("test.local.a")
	b := NewCounter("test.local.b")

	var l Local
	l.Inc(a)
	l.Add(a, 4)
	l.Inc(b)
	if a.Value() != 0 || b.Value() != 0 {
		t.Fatalf("counters published before Flush: a=%d b=%d", a.Value(), b.Value())
	}
	l.Flush()
	if a.Value() != 5 || b.Value() != 1 {
		t.Errorf("after flush: a=%d b=%d, want 5 and 1", a.Value(), b.Value())
	}
	// Flush reset the tallies: an immediate re-flush publishes nothing.
	l.Flush()
	if a.Value() != 5 || b.Value() != 1 {
		t.Errorf("second flush double-published: a=%d b=%d, want 5 and 1", a.Value(), b.Value())
	}
	// The Local is reusable and keeps accumulating correctly.
	l.Add(b, 2)
	l.Flush()
	if b.Value() != 3 {
		t.Errorf("reuse after flush: b=%d, want 3", b.Value())
	}
}

// TestLocalRespectsEnabledGate: accumulation is always allowed (it is plain
// arithmetic on shard-local state), but Flush publishes through Counter.Add
// and therefore honors the global enabled gate.
func TestLocalRespectsEnabledGate(t *testing.T) {
	prev := Enabled()
	SetEnabled(false)
	defer SetEnabled(prev)

	c := NewCounter("test.local.gated")
	var l Local
	l.Add(c, 7)
	l.Flush()
	if c.Value() != 0 {
		t.Errorf("flush published %d with metrics disabled, want 0", c.Value())
	}
}
