package core

import (
	"strconv"

	"geneva/internal/packet"
)

// Matcher is a Trigger lowered to a typed comparison: the string fields are
// interpreted once, at compile time, so matching a packet is a field load
// and an integer compare instead of per-packet parsing and formatting.
type Matcher func(*packet.Packet) bool

func matchNone(*packet.Packet) bool { return false }

// Compile lowers the trigger into a Matcher with semantics identical to
// Matches — including its quirks: a flags value that is not in canonical
// FSRPAU order (or repeats a letter) never matches, because Matches compares
// against FlagsString output; a non-numeric value on a numeric field never
// matches; an unknown proto/field never matches.
func (tr Trigger) Compile() Matcher {
	switch tr.Proto {
	case "TCP":
		switch tr.Field {
		case "flags":
			want, err := packet.ParseFlags(tr.Value)
			if err != nil || packet.FlagsString(want) != tr.Value {
				return matchNone
			}
			return func(p *packet.Packet) bool { return p.TCP.Flags == want }
		case "sport":
			return compileNum(tr.Value, func(p *packet.Packet) uint64 { return uint64(p.TCP.SrcPort) })
		case "dport":
			return compileNum(tr.Value, func(p *packet.Packet) uint64 { return uint64(p.TCP.DstPort) })
		case "seq":
			return compileNum(tr.Value, func(p *packet.Packet) uint64 { return uint64(p.TCP.Seq) })
		case "ack":
			return compileNum(tr.Value, func(p *packet.Packet) uint64 { return uint64(p.TCP.Ack) })
		case "window":
			return compileNum(tr.Value, func(p *packet.Packet) uint64 { return uint64(p.TCP.Window) })
		}
	case "IP", "IPv4":
		switch tr.Field {
		case "ttl":
			return compileNum(tr.Value, func(p *packet.Packet) uint64 { return uint64(p.IP.TTL) })
		case "version":
			return compileNum(tr.Value, func(p *packet.Packet) uint64 { return uint64(p.IP.Version) })
		}
	}
	return matchNone
}

func compileNum(value string, field func(*packet.Packet) uint64) Matcher {
	want, err := strconv.ParseUint(value, 10, 64)
	if err != nil {
		return matchNone
	}
	return func(p *packet.Packet) bool { return field(p) == want }
}

// compiledRule pairs a lowered trigger with its action tree.
type compiledRule struct {
	match  Matcher
	action *Action
}

func compileRules(rules []Rule) []compiledRule {
	if len(rules) == 0 {
		return nil
	}
	out := make([]compiledRule, len(rules))
	for i, r := range rules {
		out[i] = compiledRule{match: r.Trigger.Compile(), action: r.Action}
	}
	return out
}
