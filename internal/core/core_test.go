package core

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"geneva/internal/packet"
)

var (
	srvAddr = netip.MustParseAddr("198.51.100.9")
	cliAddr = netip.MustParseAddr("10.1.0.2")
)

func synAck() *packet.Packet {
	p := packet.New(srvAddr, cliAddr, 80, 40000)
	p.TCP.Flags = packet.FlagSYN | packet.FlagACK
	p.TCP.Seq = 1000
	p.TCP.Ack = 501
	p.TCP.Window = 64240
	p.TCP.Options = []packet.Option{
		{Kind: packet.OptMSS, Data: []byte{5, 180}},
		{Kind: packet.OptWScale, Data: []byte{7}},
	}
	return p
}

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

// The paper's Strategy 1, verbatim (modulo whitespace).
const strategy1 = `[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \/ `

func TestParseStrategy1Applies(t *testing.T) {
	s, err := Parse(strategy1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, rng())
	out := eng.Outbound(synAck())
	if len(out) != 2 {
		t.Fatalf("emitted %d packets, want 2", len(out))
	}
	if out[0].TCP.Flags != packet.FlagRST {
		t.Errorf("first packet flags %s, want R", packet.FlagsString(out[0].TCP.Flags))
	}
	if out[1].TCP.Flags != packet.FlagSYN {
		t.Errorf("second packet flags %s, want S", packet.FlagsString(out[1].TCP.Flags))
	}
	if out[0].TCP.Seq != out[1].TCP.Seq || out[0].TCP.Seq != 1000 {
		t.Error("duplicate did not preserve seq")
	}
}

func TestNonMatchingPacketPassesThrough(t *testing.T) {
	s := MustParse(strategy1)
	eng := NewEngine(s, rng())
	p := packet.New(srvAddr, cliAddr, 80, 40000)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Payload = []byte("data")
	out := eng.Outbound(p)
	if len(out) != 1 || out[0] != p {
		t.Error("non-matching packet was transformed")
	}
}

func TestTriggerExactMatch(t *testing.T) {
	tr := Trigger{Proto: "TCP", Field: "flags", Value: "S"}
	p := synAck()
	if tr.Matches(p) {
		t.Error("TCP:flags:S matched a SYN+ACK (triggers demand exact match)")
	}
	p.TCP.Flags = packet.FlagSYN
	if !tr.Matches(p) {
		t.Error("TCP:flags:S did not match a SYN")
	}
}

func TestTamperCorruptAck(t *testing.T) {
	s := MustParse(`[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \/ `)
	eng := NewEngine(s, rng())
	out := eng.Outbound(synAck())
	if len(out) != 2 {
		t.Fatalf("emitted %d packets", len(out))
	}
	if out[0].TCP.Ack == 501 {
		t.Error("ack was not corrupted")
	}
	if out[1].TCP.Ack != 501 {
		t.Error("second copy's ack should be untouched")
	}
}

func TestTamperLoadCorruptCreatesPayload(t *testing.T) {
	s := MustParse(`[TCP:flags:SA]-tamper{TCP:load:corrupt}-| \/ `)
	out := NewEngine(s, rng()).Outbound(synAck())
	if len(out) != 1 || len(out[0].TCP.Payload) == 0 {
		t.Fatal("corrupting an empty load must fabricate a random payload")
	}
}

func TestTamperLoadReplace(t *testing.T) {
	s := MustParse(`[TCP:flags:SA]-tamper{TCP:load:replace:GET / HTTP1.}(duplicate,)-| \/ `)
	out := NewEngine(s, rng()).Outbound(synAck())
	if len(out) != 2 {
		t.Fatalf("emitted %d packets, want 2 (Strategy 10 shape)", len(out))
	}
	for i, p := range out {
		if string(p.TCP.Payload) != "GET / HTTP1." {
			t.Errorf("packet %d payload %q", i, p.TCP.Payload)
		}
	}
}

func TestTamperWindowAndWScaleRemoval(t *testing.T) {
	// Strategy 8, verbatim.
	s := MustParse(`[TCP:flags:SA]-tamper{TCP:window:replace:10}(tamper{TCP:options-wscale:replace:},)-| \/ `)
	out := NewEngine(s, rng()).Outbound(synAck())
	if len(out) != 1 {
		t.Fatalf("emitted %d packets", len(out))
	}
	if out[0].TCP.Window != 10 {
		t.Errorf("window = %d, want 10", out[0].TCP.Window)
	}
	if out[0].TCP.Option(packet.OptWScale) != nil {
		t.Error("wscale option not removed")
	}
	if out[0].TCP.Option(packet.OptMSS) == nil {
		t.Error("unrelated MSS option removed")
	}
}

func TestTamperChecksumMarksRaw(t *testing.T) {
	s := MustParse(`[TCP:flags:SA]-tamper{TCP:chksum:corrupt}-| \/ `)
	out := NewEngine(s, rng()).Outbound(synAck())
	if !out[0].TCP.RawChecksum {
		t.Error("corrupted checksum must survive serialization (RawChecksum)")
	}
}

func TestNullFlagsStrategy(t *testing.T) {
	// Strategy 11: duplicate, clear flags on the first copy.
	s := MustParse(`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \/ `)
	out := NewEngine(s, rng()).Outbound(synAck())
	if len(out) != 2 {
		t.Fatalf("emitted %d packets", len(out))
	}
	if out[0].TCP.Flags != 0 {
		t.Errorf("first copy flags = %s, want none", packet.FlagsString(out[0].TCP.Flags))
	}
	if out[1].TCP.Flags != packet.FlagSYN|packet.FlagACK {
		t.Error("second copy must be the untouched SYN+ACK")
	}
}

func TestDropAction(t *testing.T) {
	s := MustParse(`[TCP:flags:SA]-drop-| \/ `)
	out := NewEngine(s, rng()).Outbound(synAck())
	if len(out) != 0 {
		t.Errorf("drop emitted %d packets", len(out))
	}
}

func TestNestedDuplicateTriple(t *testing.T) {
	// Strategy 9 shape: three copies with payloads.
	s := MustParse(`[TCP:flags:SA]-tamper{TCP:load:corrupt}(duplicate(duplicate,),)-| \/ `)
	out := NewEngine(s, rng()).Outbound(synAck())
	if len(out) != 3 {
		t.Fatalf("emitted %d packets, want 3", len(out))
	}
	for i, p := range out {
		if len(p.TCP.Payload) == 0 {
			t.Errorf("copy %d lacks the payload", i)
		}
		if p.TCP.Flags != packet.FlagSYN|packet.FlagACK {
			t.Errorf("copy %d flags changed", i)
		}
	}
}

func TestFragmentSplitsPayload(t *testing.T) {
	s := MustParse(`[TCP:flags:PA]-fragment{tcp:8:true}(,)-| \/ `)
	p := packet.New(srvAddr, cliAddr, 80, 40000)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Seq = 2000
	p.TCP.Payload = []byte("0123456789abcdef")
	out := NewEngine(s, rng()).Outbound(p)
	if len(out) != 2 {
		t.Fatalf("emitted %d packets", len(out))
	}
	if string(out[0].TCP.Payload) != "01234567" || out[0].TCP.Seq != 2000 {
		t.Errorf("first fragment: %q seq=%d", out[0].TCP.Payload, out[0].TCP.Seq)
	}
	if string(out[1].TCP.Payload) != "89abcdef" || out[1].TCP.Seq != 2008 {
		t.Errorf("second fragment: %q seq=%d", out[1].TCP.Payload, out[1].TCP.Seq)
	}
}

func TestFragmentOutOfOrder(t *testing.T) {
	s := MustParse(`[TCP:flags:PA]-fragment{tcp:4:false}(,)-| \/ `)
	p := packet.New(srvAddr, cliAddr, 80, 40000)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Payload = []byte("abcdefgh")
	out := NewEngine(s, rng()).Outbound(p)
	if len(out) != 2 || string(out[0].TCP.Payload) != "efgh" {
		t.Errorf("out-of-order fragments wrong: %v", out)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`[TCP:flags]-send-| \/ `,                                  // malformed trigger
		`[TCP:flags:SA]-explode-| \/ `,                            // unknown action
		`[TCP:flags:SA]-tamper{TCP:flags}-| \/ `,                  // short tamper args
		`[TCP:flags:SA]-tamper{TCP:flags:zap:S}-| \/ `,            // unknown mode
		`[TCP:flags:SA]-duplicate(send,send-| \/ `,                // unclosed paren
		`[TCP:flags:SA]-send \/ `,                                 // missing -|
		`[TCP:flags:SA-send-| \/ `,                                // unterminated trigger
		`[TCP:flags:SA]-fragment{tcp:x:true}-| \/ `,               // bad offset
		`[TCP:flags:SA]-tamper{TCP:seq:corrupt}(send,send)-| \/ `, // tamper with 2 branches
		`[TCP:flags:SA]-send{x}-| \/ `,                            // send takes no args
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseEmptyStrategy(t *testing.T) {
	s, err := Parse(` \/ `)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Outbound) != 0 || len(s.Inbound) != 0 {
		t.Error("empty strategy has rules")
	}
	// The identity engine passes everything through.
	out := NewEngine(s, rng()).Outbound(synAck())
	if len(out) != 1 {
		t.Error("empty strategy dropped a packet")
	}
}

func TestParseInboundRules(t *testing.T) {
	s, err := Parse(`[TCP:flags:SA]-send-| \/ [TCP:flags:R]-drop-|`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Inbound) != 1 || s.Inbound[0].Trigger.Value != "R" {
		t.Fatalf("inbound rules: %+v", s.Inbound)
	}
	eng := NewEngine(s, rng())
	rst := packet.New(cliAddr, srvAddr, 40000, 80)
	rst.TCP.Flags = packet.FlagRST
	if got := eng.Inbound(rst); len(got) != 0 {
		t.Error("inbound drop rule did not drop")
	}
}

func TestStringParseRoundtrip(t *testing.T) {
	for _, in := range []string{
		strategy1,
		`[TCP:flags:SA]-tamper{TCP:flags:replace:S}(duplicate(,tamper{TCP:load:corrupt}),)-| \/ `,
		`[TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},tamper{TCP:flags:replace:S})-| \/ `,
		`[TCP:flags:SA]-duplicate(duplicate(tamper{TCP:flags:replace:F}(tamper{TCP:load:corrupt},),tamper{TCP:ack:corrupt}),)-| \/ `,
		`[TCP:flags:SA]-tamper{TCP:window:replace:10}(tamper{TCP:options-wscale:replace:},)-| \/ `,
		`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \/ `,
	} {
		s1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse(%q): %v", printed, err)
		}
		if s2.String() != printed {
			t.Errorf("not a fixed point:\n  %q\n  %q", printed, s2.String())
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := MustParse(strategy1)
	c := s.Clone()
	c.Outbound[0].Action.Left.NewValue = "F"
	if s.Outbound[0].Action.Left.NewValue != "R" {
		t.Error("Clone shares action nodes")
	}
}

func TestApplyNeverPanicsOnRandomTrees(t *testing.T) {
	// Property: random (generated) trees applied to packets never panic
	// and never emit more than 2^depth packets.
	r := rng()
	f := func(seed int64) bool {
		g := rand.New(rand.NewSource(seed))
		tree := randomTree(g, 3)
		out := tree.Apply(synAck(), r)
		return len(out) <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomTree builds an arbitrary action tree (also exercised by the GA).
func randomTree(g *rand.Rand, depth int) *Action {
	if depth == 0 || g.Intn(3) == 0 {
		if g.Intn(4) == 0 {
			return Drop()
		}
		return Send()
	}
	switch g.Intn(3) {
	case 0:
		return Duplicate(randomTree(g, depth-1), randomTree(g, depth-1))
	case 1:
		fields := []string{"flags", "seq", "ack", "window", "chksum", "load", "options-wscale"}
		return Tamper("TCP", fields[g.Intn(len(fields))], "corrupt", "", randomTree(g, depth-1))
	default:
		return Fragment("tcp", g.Intn(20), g.Intn(2) == 0, randomTree(g, depth-1), randomTree(g, depth-1))
	}
}

func TestEngineSignatureMatchesEndpointHook(t *testing.T) {
	// Compile-time check: the engine plugs straight into the stack.
	var hook func(*packet.Packet) []*packet.Packet
	hook = NewEngine(MustParse(strategy1), rng()).Outbound
	out := hook(synAck())
	if len(out) != 2 {
		t.Error("hook mis-wired")
	}
}

func TestSizeCountsNodes(t *testing.T) {
	s := MustParse(strategy1)
	if got := s.Size(); got != 3 {
		t.Errorf("Size = %d, want 3 (duplicate + 2 tampers)", got)
	}
}

func TestTamperIPFields(t *testing.T) {
	s := MustParse(`[TCP:flags:SA]-tamper{IP:ttl:replace:2}-| \/ `)
	out := NewEngine(s, rng()).Outbound(synAck())
	if out[0].IP.TTL != 2 {
		t.Errorf("TTL = %d, want 2", out[0].IP.TTL)
	}
	s2 := MustParse(`[TCP:flags:SA]-tamper{IP:chksum:corrupt}-| \/ `)
	out2 := NewEngine(s2, rng()).Outbound(synAck())
	if !out2[0].IP.RawChecksum {
		t.Error("IP checksum corruption must set RawChecksum")
	}
}

func TestMultilineWhitespaceTolerated(t *testing.T) {
	in := "[TCP:flags:SA]-\nduplicate(\n  tamper{TCP:flags:replace:R},\n  tamper{TCP:flags:replace:S})-| \\/ "
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Outbound) != 1 {
		t.Fatal("rule not parsed")
	}
	out := NewEngine(s, rng()).Outbound(synAck())
	if len(out) != 2 {
		t.Error("multiline strategy misapplied")
	}
}

func TestBytesUnchangedWithoutTamper(t *testing.T) {
	// duplicate must not mutate either copy.
	s := MustParse(`[TCP:flags:SA]-duplicate(,)-| \/ `)
	orig := synAck()
	want, _ := orig.Clone().Wire()
	out := NewEngine(s, rng()).Outbound(orig)
	for i, p := range out {
		got, _ := p.Wire()
		if !bytes.Equal(got, want) {
			t.Errorf("copy %d differs from the original on the wire", i)
		}
	}
}
