package core

import (
	"math/rand"
	"net/netip"
	"sync"

	"geneva/internal/packet"
)

// Router implements §8's deployment model: a server helping clients in
// several censoring regimes must pick a strategy *per client*, and it must
// do so from nothing but the client's SYN — the only packet it has seen
// when the SYN+ACK (every strategy's trigger) goes out.
//
// Routes map client address prefixes (standing in for the paper's
// country-level IP geolocation) to engines; clients matching no route get
// the fallback (nil = no manipulation). Route lookup happens per flow and
// is cached for the flow's lifetime so mid-connection packets keep their
// strategy even if the table changes.
type Router struct {
	mu       sync.RWMutex
	routes   []route
	fallback *Engine
	flows    map[packet.Flow]*Engine
	// pins override the prefix table per client address — the online
	// selection control plane's delivery mechanism: the fleet pins the
	// selected arm's engine to the client's address just before the
	// client connects, and the pin is read when the server's first
	// outbound packet opens the flow. A pin only affects NEW flows; flows
	// already cached in `flows` keep the engine they started with, so
	// re-pinning between a client's attempts never switches a strategy
	// mid-connection.
	pins map[netip.Addr]*Engine
	// pass is the reusable pass-through result for flows with no engine,
	// mirroring Engine's scratch: Outbound's result is only valid until
	// the next call. Like the engines behind the routes (which keep
	// per-engine scratch of their own), Outbound is single-caller; the
	// mutex protects the route/flow tables, not the result buffer.
	pass [1]*packet.Packet
}

type route struct {
	prefix netip.Prefix
	engine *Engine
}

// NewRouter builds an empty router with an optional fallback engine.
func NewRouter(fallback *Engine) *Router {
	return &Router{
		fallback: fallback,
		flows:    make(map[packet.Flow]*Engine),
	}
}

// Route installs a strategy for clients within the prefix. More-specific
// prefixes win; among equal lengths, the earlier installation wins.
func (r *Router) Route(prefix netip.Prefix, s *Strategy, rng *rand.Rand) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes = append(r.routes, route{prefix: prefix, engine: NewEngine(s, rng)})
}

// PinClient overrides the route table for one client address: new flows to
// that client use the given engine (nil e removes the pin, restoring prefix
// routing). Existing flows are untouched — their engine was cached at first
// packet. Engines are single-caller like the router itself; pinning the
// same engine to several addresses is fine as long as Outbound stays
// single-threaded (the cell model).
func (r *Router) PinClient(client netip.Addr, e *Engine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e == nil {
		delete(r.pins, client)
		return
	}
	if r.pins == nil {
		r.pins = make(map[netip.Addr]*Engine)
	}
	r.pins[client] = e
}

// engineFor picks the engine for a destination (client) address.
func (r *Router) engineFor(client netip.Addr) *Engine {
	if e, ok := r.pins[client]; ok {
		return e
	}
	var best *Engine
	bestLen := -1
	for _, rt := range r.routes {
		if rt.prefix.Contains(client) && rt.prefix.Bits() > bestLen {
			best, bestLen = rt.engine, rt.prefix.Bits()
		}
	}
	if best == nil {
		return r.fallback
	}
	return best
}

// Outbound is the tcpstack.Endpoint hook: it routes each outbound packet
// through the strategy chosen for that packet's client. The returned slice
// is only valid until the next call (same contract as Engine.Outbound).
func (r *Router) Outbound(p *packet.Packet) []*packet.Packet {
	flow := p.Flow()
	r.mu.Lock()
	eng, ok := r.flows[flow]
	if !ok {
		eng = r.engineFor(p.IP.Dst)
		r.flows[flow] = eng
	}
	r.mu.Unlock()
	if eng == nil {
		r.pass[0] = p
		return r.pass[:1]
	}
	return eng.Outbound(p)
}

// ResetFlows clears the per-flow engine cache and the per-client pins while
// keeping the route table (and the compiled engines behind it) intact. It
// is what lets a router be pooled and reused across independent
// simulations: the routes are pure configuration, the flow cache and pins
// are per-run state.
func (r *Router) ResetFlows() {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.flows)
	clear(r.pins)
}

// Flows reports how many flows have pinned engines (for tests/metrics).
func (r *Router) Flows() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.flows)
}
