package core

import (
	"strings"
	"testing"

	"geneva/internal/packet"
)

func TestTriggerNumericFields(t *testing.T) {
	p := synAck() // 80 -> 40000, seq 1000, ack 501, win 64240
	cases := []struct {
		tr   Trigger
		want bool
	}{
		{Trigger{Proto: "TCP", Field: "sport", Value: "80"}, true},
		{Trigger{Proto: "TCP", Field: "sport", Value: "81"}, false},
		{Trigger{Proto: "TCP", Field: "dport", Value: "40000"}, true},
		{Trigger{Proto: "TCP", Field: "seq", Value: "1000"}, true},
		{Trigger{Proto: "TCP", Field: "ack", Value: "501"}, true},
		{Trigger{Proto: "TCP", Field: "window", Value: "64240"}, true},
		{Trigger{Proto: "TCP", Field: "window", Value: "ten"}, false},
		{Trigger{Proto: "IP", Field: "ttl", Value: "64"}, true},
		{Trigger{Proto: "IP", Field: "version", Value: "0"}, true}, // unset until marshal
		{Trigger{Proto: "IP", Field: "nosuch", Value: "1"}, false},
		{Trigger{Proto: "UDP", Field: "sport", Value: "80"}, false},
	}
	for _, c := range cases {
		if got := c.tr.Matches(p); got != c.want {
			t.Errorf("%s.Matches = %v, want %v", c.tr, got, c.want)
		}
	}
}

func TestActionStringAllKinds(t *testing.T) {
	a := Duplicate(
		Fragment("tcp", 4, true, Send(), Drop()),
		Tamper("TCP", "seq", "corrupt", "", nil),
	)
	s := a.String()
	for _, want := range []string{"duplicate", "fragment{tcp:4:true}", "send", "drop", "tamper{TCP:seq:corrupt}"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if ActionKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
	for _, k := range []ActionKind{ActSend, ActDrop, ActDuplicate, ActTamper, ActFragment} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestTamperTCPRemainingFields(t *testing.T) {
	apply := func(dsl string) *packet.Packet {
		out := NewEngine(MustParse(dsl), rng()).Outbound(synAck())
		if len(out) != 1 {
			t.Fatalf("%s emitted %d packets", dsl, len(out))
		}
		return out[0]
	}
	if p := apply(`[TCP:flags:SA]-tamper{TCP:sport:replace:8080}-| \/ `); p.TCP.SrcPort != 8080 {
		t.Errorf("sport = %d", p.TCP.SrcPort)
	}
	if p := apply(`[TCP:flags:SA]-tamper{TCP:dport:replace:9}-| \/ `); p.TCP.DstPort != 9 {
		t.Errorf("dport = %d", p.TCP.DstPort)
	}
	if p := apply(`[TCP:flags:SA]-tamper{TCP:seq:replace:7}-| \/ `); p.TCP.Seq != 7 {
		t.Errorf("seq = %d", p.TCP.Seq)
	}
	if p := apply(`[TCP:flags:SA]-tamper{TCP:urgptr:replace:99}-| \/ `); p.TCP.Urgent != 99 {
		t.Errorf("urgptr = %d", p.TCP.Urgent)
	}
	if p := apply(`[TCP:flags:SA]-tamper{TCP:dataofs:replace:12}-| \/ `); p.TCP.DataOff != 12 || !p.TCP.RawDataOff {
		t.Errorf("dataofs = %d raw=%v", p.TCP.DataOff, p.TCP.RawDataOff)
	}
	if p := apply(`[TCP:flags:SA]-tamper{TCP:seq:corrupt}-| \/ `); p.TCP.Seq == 1000 {
		t.Error("seq not corrupted")
	}
	if p := apply(`[TCP:flags:SA]-tamper{TCP:flags:corrupt}-| \/ `); p.TCP.Flags >= 64 {
		t.Errorf("corrupt flags produced %#x", p.TCP.Flags)
	}
	// Invalid replacements are no-ops, never errors.
	if p := apply(`[TCP:flags:SA]-tamper{TCP:seq:replace:zebra}-| \/ `); p.TCP.Seq != 1000 {
		t.Error("bad numeric replacement changed the field")
	}
	if p := apply(`[TCP:flags:SA]-tamper{TCP:flags:replace:ZZ}-| \/ `); p.TCP.Flags != packet.FlagSYN|packet.FlagACK {
		t.Error("bad flags replacement changed the field")
	}
	if p := apply(`[TCP:flags:SA]-tamper{TCP:nosuchfield:corrupt}-| \/ `); p.TCP.Seq != 1000 {
		t.Error("unknown field tamper had an effect")
	}
}

func TestTamperOptionsVariants(t *testing.T) {
	apply := func(dsl string) *packet.Packet {
		return NewEngine(MustParse(dsl), rng()).Outbound(synAck())[0]
	}
	// Replace MSS numerically.
	p := apply(`[TCP:flags:SA]-tamper{TCP:options-mss:replace:512}-| \/ `)
	if o := p.TCP.Option(packet.OptMSS); o == nil || o.Data[0] != 2 || o.Data[1] != 0 {
		t.Errorf("mss option = %+v", o)
	}
	// Corrupt wscale.
	p = apply(`[TCP:flags:SA]-tamper{TCP:options-wscale:corrupt}-| \/ `)
	if p.TCP.Option(packet.OptWScale) == nil {
		t.Error("corrupt removed the option instead of randomizing it")
	}
	// Add sackok (zero-width option gets string data fallback).
	p = apply(`[TCP:flags:SA]-tamper{TCP:options-sackok:replace:}-| \/ `)
	if p.TCP.Option(packet.OptSACKOK) != nil {
		t.Error("empty replace should remove/omit the option")
	}
	// Timestamp and friends.
	p = apply(`[TCP:flags:SA]-tamper{TCP:options-timestamp:replace:1}-| \/ `)
	if o := p.TCP.Option(packet.OptTimestamp); o == nil || len(o.Data) != 8 {
		t.Errorf("timestamp option = %+v", o)
	}
	p = apply(`[TCP:flags:SA]-tamper{TCP:options-uto:corrupt}-| \/ `)
	if p.TCP.Option(packet.OptUTO) == nil {
		t.Error("uto corrupt produced nothing")
	}
	p = apply(`[TCP:flags:SA]-tamper{TCP:options-altchksum:replace:2}-| \/ `)
	if p.TCP.Option(packet.OptAltChksum) == nil {
		t.Error("altchksum replace produced nothing")
	}
	p = apply(`[TCP:flags:SA]-tamper{TCP:options-md5header:corrupt}-| \/ `)
	if o := p.TCP.Option(packet.OptMD5); o == nil || len(o.Data) != 16 {
		t.Errorf("md5 option = %+v", o)
	}
}

func TestTamperIPRemainingFields(t *testing.T) {
	apply := func(dsl string) *packet.Packet {
		return NewEngine(MustParse(dsl), rng()).Outbound(synAck())[0]
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:tos:replace:16}-| \/ `); p.IP.TOS != 16 {
		t.Errorf("tos = %d", p.IP.TOS)
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:ident:replace:777}-| \/ `); p.IP.ID != 777 {
		t.Errorf("ident = %d", p.IP.ID)
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:len:replace:9999}-| \/ `); p.IP.Length != 9999 || !p.IP.RawLength {
		t.Errorf("len = %d raw=%v", p.IP.Length, p.IP.RawLength)
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:version:replace:6}-| \/ `); p.IP.Version != 6 {
		t.Errorf("version = %d", p.IP.Version)
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:flags:replace:DF}-| \/ `); p.IP.Flags != packet.IPv4DontFrag {
		t.Errorf("flags = %d", p.IP.Flags)
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:flags:replace:MF}-| \/ `); p.IP.Flags != packet.IPv4MoreFrag {
		t.Errorf("flags = %d", p.IP.Flags)
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:flags:replace:}-| \/ `); p.IP.Flags != 0 {
		t.Errorf("flags = %d", p.IP.Flags)
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:flags:replace:XX}-| \/ `); p.IP.Flags != 0 {
		t.Error("bad IP flags value had an effect")
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:frag:replace:5}-| \/ `); p.IP.FragOff != 5 {
		t.Errorf("frag = %d", p.IP.FragOff)
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:ttl:corrupt}-| \/ `); p.IP.TTL == 64 {
		// One-in-256 false positive; accept either but exercise the path.
		t.Log("ttl corrupt landed on the original value")
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:tos:corrupt}(tamper{IP:version:corrupt}(tamper{IP:flags:corrupt},),)-| \/ `); p == nil {
		t.Fatal("corrupt chain failed")
	}
	if p := apply(`[TCP:flags:SA]-tamper{IP:nosuch:corrupt}-| \/ `); p.IP.TTL != 64 {
		t.Error("unknown IP field tamper had an effect")
	}
}

func TestFragmentOnTinyPayloadFallsThrough(t *testing.T) {
	s := MustParse(`[TCP:flags:SA]-fragment{tcp:4:true}(drop,)-| \/ `)
	// SYN+ACK has no payload: fragment is a no-op and the LEFT branch
	// applies to the whole packet.
	out := NewEngine(s, rng()).Outbound(synAck())
	if len(out) != 0 {
		t.Errorf("expected the left branch (drop) to consume the unfragmentable packet, got %d", len(out))
	}
}
