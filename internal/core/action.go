package core

import (
	"fmt"
	"math/rand"
	"strings"

	"geneva/internal/packet"
)

// ActionKind enumerates Geneva's five genetic building blocks.
type ActionKind int

// The building blocks.
const (
	ActSend ActionKind = iota
	ActDrop
	ActDuplicate
	ActTamper
	ActFragment
)

func (k ActionKind) String() string {
	switch k {
	case ActSend:
		return "send"
	case ActDrop:
		return "drop"
	case ActDuplicate:
		return "duplicate"
	case ActTamper:
		return "tamper"
	case ActFragment:
		return "fragment"
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// Action is a node in a strategy's action tree. The zero value is a bare
// send. Left and Right are the child branches; a nil child means send.
// Only duplicate and fragment use Right; tamper uses Left only.
type Action struct {
	Kind ActionKind

	// Tamper parameters: tamper{Proto:Field:Mode[:NewValue]}.
	Proto, Field, Mode, NewValue string

	// Fragment parameters: fragment{Proto:Offset:InOrder}.
	FragOffset int
	InOrder    bool

	Left, Right *Action
}

// Send is the canonical bare send action.
func Send() *Action { return &Action{Kind: ActSend} }

// Drop is the canonical drop action.
func Drop() *Action { return &Action{Kind: ActDrop} }

// Duplicate builds a duplicate node.
func Duplicate(left, right *Action) *Action {
	return &Action{Kind: ActDuplicate, Left: left, Right: right}
}

// Tamper builds a tamper node.
func Tamper(proto, field, mode, newValue string, next *Action) *Action {
	return &Action{Kind: ActTamper, Proto: proto, Field: field, Mode: mode, NewValue: newValue, Left: next}
}

// Fragment builds a fragment node.
func Fragment(proto string, offset int, inOrder bool, left, right *Action) *Action {
	return &Action{Kind: ActFragment, Proto: proto, FragOffset: offset, InOrder: inOrder, Left: left, Right: right}
}

// Clone deep-copies the action tree.
func (a *Action) Clone() *Action {
	if a == nil {
		return nil
	}
	c := *a
	c.Left = a.Left.Clone()
	c.Right = a.Right.Clone()
	return &c
}

// Apply runs the action tree on pkt and returns the packets to emit, in
// order. pkt may be mutated; callers pass a clone when they need the
// original. Malformed tampers are no-ops (Geneva evolves nonsense
// routinely; the engine must never crash on it).
func (a *Action) Apply(pkt *packet.Packet, rng *rand.Rand) []*packet.Packet {
	if pkt == nil {
		return nil
	}
	return a.appendApply(nil, pkt, rng)
}

// appendApply is Apply in append form: emitted packets are appended to out,
// so a caller with a reusable buffer (the Engine) pays no per-packet slice
// allocations. Subtree evaluation order is always left-then-right — tampers
// draw from rng, and reordering the draws would change every evolved
// strategy's behaviour — even when the *output* order is right-then-left
// (out-of-order fragments), which is fixed up by rotation afterwards.
func (a *Action) appendApply(out []*packet.Packet, pkt *packet.Packet, rng *rand.Rand) []*packet.Packet {
	if pkt == nil {
		return out
	}
	if a == nil {
		return append(out, pkt)
	}
	switch a.Kind {
	case ActSend:
		return append(out, pkt)
	case ActDrop:
		return out
	case ActDuplicate:
		copy2 := pkt.ClonePooled()
		out = a.Left.appendApply(out, pkt, rng)
		return a.Right.appendApply(out, copy2, rng)
	case ActTamper:
		tamper(pkt, a.Proto, a.Field, a.Mode, a.NewValue, rng)
		return a.Left.appendApply(out, pkt, rng)
	case ActFragment:
		f1, f2, ok := fragment(pkt, a.FragOffset)
		if !ok {
			return a.Left.appendApply(out, pkt, rng)
		}
		if a.InOrder {
			out = a.Left.appendApply(out, f1, rng)
			return a.Right.appendApply(out, f2, rng)
		}
		mark := len(out)
		out = a.Left.appendApply(out, f1, rng)
		firstN := len(out) - mark
		out = a.Right.appendApply(out, f2, rng)
		rotateLeft(out[mark:], firstN)
		return out
	}
	return append(out, pkt)
}

// rotateLeft rotates s left by k in place (three reversals), preserving the
// relative order within each half. Used to emit out-of-order fragments as
// [second..., first...] while still evaluating first... first.
func rotateLeft(s []*packet.Packet, k int) {
	reversePkts(s[:k])
	reversePkts(s[k:])
	reversePkts(s)
}

func reversePkts(s []*packet.Packet) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// fragment splits a packet's TCP payload at offset (clamped to a sensible
// split point). IP- and TCP-level fragmentation collapse to segmentation in
// the structured-packet simulator; none of the paper's server-side
// strategies use fragment, but the GA may evolve it.
func fragment(pkt *packet.Packet, offset int) (f1, f2 *packet.Packet, ok bool) {
	n := len(pkt.TCP.Payload)
	if n < 2 {
		return nil, nil, false
	}
	if offset <= 0 || offset >= n {
		offset = n / 2
	}
	f1 = pkt
	f2 = pkt.ClonePooled()
	f2.TCP.Payload = f2.TCP.Payload[offset:]
	f2.TCP.Seq += uint32(offset)
	f1.TCP.Payload = f1.TCP.Payload[:offset]
	// Both halves carry re-sliced payloads; drop any memoized app view
	// (ClonePooled already cleared f2's, but the invariant stays local).
	f1.ClearAppView()
	f2.ClearAppView()
	return f1, f2, true
}

// String renders the action in Geneva's canonical syntax.
func (a *Action) String() string {
	if a == nil {
		return ""
	}
	var b strings.Builder
	a.write(&b)
	return b.String()
}

func (a *Action) write(b *strings.Builder) {
	switch a.Kind {
	case ActSend:
		b.WriteString("send")
	case ActDrop:
		b.WriteString("drop")
	case ActDuplicate:
		b.WriteString("duplicate")
		writeChildren(b, a.Left, a.Right)
	case ActTamper:
		b.WriteString("tamper{")
		b.WriteString(a.Proto)
		b.WriteByte(':')
		b.WriteString(a.Field)
		b.WriteByte(':')
		b.WriteString(a.Mode)
		if a.Mode == "replace" {
			b.WriteByte(':')
			b.WriteString(a.NewValue)
		}
		b.WriteByte('}')
		if a.Left != nil {
			writeChildren(b, a.Left, nil)
		}
	case ActFragment:
		fmt.Fprintf(b, "fragment{%s:%d:%t}", a.Proto, a.FragOffset, a.InOrder)
		writeChildren(b, a.Left, a.Right)
	}
}

func writeChildren(b *strings.Builder, left, right *Action) {
	if left == nil && right == nil {
		return
	}
	b.WriteByte('(')
	if left != nil {
		left.write(b)
	}
	b.WriteByte(',')
	if right != nil {
		right.write(b)
	}
	b.WriteByte(')')
}

// Size counts the nodes in the tree (GA fitness penalizes bloat).
func (a *Action) Size() int {
	if a == nil {
		return 0
	}
	return 1 + a.Left.Size() + a.Right.Size()
}
