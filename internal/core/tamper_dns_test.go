package core

import (
	"testing"
	"testing/quick"

	"geneva/internal/apps"
	"geneva/internal/packet"
)

func dnsPacket(name string) *packet.Packet {
	p := packet.New(cliAddr, srvAddr, 40000, 53)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Payload = apps.EncodeDNSQuery(name)
	return p
}

func TestTamperDNSQnameReplace(t *testing.T) {
	s := MustParse(`[TCP:flags:PA]-tamper{DNS:qname:replace:benign.example}-| \/ `)
	out := NewEngine(s, rng()).Outbound(dnsPacket("www.wikipedia.org"))
	if len(out) != 1 {
		t.Fatalf("emitted %d packets", len(out))
	}
	name, ok := apps.DNSQueryName(out[0].TCP.Payload)
	if !ok || name != "benign.example" {
		t.Errorf("rewritten qname = %q, %v", name, ok)
	}
	// The length prefix must have been re-fixed.
	got := int(out[0].TCP.Payload[0])<<8 | int(out[0].TCP.Payload[1])
	if got != len(out[0].TCP.Payload)-2 {
		t.Errorf("length prefix %d, payload %d", got, len(out[0].TCP.Payload)-2)
	}
}

func TestTamperDNSQnameCorruptKeepsStructure(t *testing.T) {
	s := MustParse(`[TCP:flags:PA]-tamper{DNS:qname:corrupt}-| \/ `)
	out := NewEngine(s, rng()).Outbound(dnsPacket("www.wikipedia.org"))
	name, ok := apps.DNSQueryName(out[0].TCP.Payload)
	if !ok {
		t.Fatal("corrupted message no longer parses; corruption must keep label structure")
	}
	if name == "www.wikipedia.org" {
		t.Error("qname unchanged after corrupt")
	}
	if len(name) != len("www.wikipedia.org") {
		t.Errorf("label lengths changed: %q", name)
	}
}

func TestTamperDNSIdReplace(t *testing.T) {
	s := MustParse(`[TCP:flags:PA]-tamper{DNS:id:replace:257}-| \/ `)
	out := NewEngine(s, rng()).Outbound(dnsPacket("example.com"))
	msg := out[0].TCP.Payload[2:]
	if got := int(msg[0])<<8 | int(msg[1]); got != 257 {
		t.Errorf("id = %d, want 257", got)
	}
}

func TestTamperDNSIgnoresNonDNSPayloads(t *testing.T) {
	s := MustParse(`[TCP:flags:PA]-tamper{DNS:qname:corrupt}-| \/ `)
	p := packet.New(cliAddr, srvAddr, 40000, 80)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Payload = []byte("GET / HTTP/1.1\r\n\r\n")
	before := append([]byte(nil), p.TCP.Payload...)
	out := NewEngine(s, rng()).Outbound(p)
	if string(out[0].TCP.Payload) != string(before) {
		t.Error("non-DNS payload modified")
	}
}

func TestTamperDNSNeverPanicsProperty(t *testing.T) {
	s := MustParse(`[TCP:flags:PA]-tamper{DNS:qname:corrupt}(tamper{DNS:id:corrupt}(tamper{DNS:qtype:corrupt},),)-| \/ `)
	eng := NewEngine(s, rng())
	f := func(payload []byte) bool {
		p := packet.New(cliAddr, srvAddr, 40000, 53)
		p.TCP.Flags = packet.FlagPSH | packet.FlagACK
		p.TCP.Payload = payload
		out := eng.Outbound(p)
		return len(out) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
