package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrInvalidStrategy is the sentinel wrapped by every strategy-parse
// failure, so callers anywhere above the parser can classify one with
// errors.Is(err, ErrInvalidStrategy) without matching message text. The
// public facade re-exports it as geneva.ErrInvalidStrategy.
var ErrInvalidStrategy = errors.New("invalid strategy")

// Parse reads a strategy in Geneva's canonical syntax:
//
//	<outbound rules> \/ <inbound rules>
//
// where each rule is [proto:field:value]-<action tree>-| and either forest
// may be empty. Parse(s.String()) is the identity for any valid strategy.
func Parse(input string) (*Strategy, error) {
	outPart, inPart, _ := strings.Cut(input, "\\/")
	s := &Strategy{}
	var err error
	if s.Outbound, err = parseRules(outPart); err != nil {
		return nil, fmt.Errorf("%w: outbound: %w", ErrInvalidStrategy, err)
	}
	if s.Inbound, err = parseRules(inPart); err != nil {
		return nil, fmt.Errorf("%w: inbound: %w", ErrInvalidStrategy, err)
	}
	return s, nil
}

// MustParse is Parse for statically known strategies (the library in
// internal/strategies); it panics on error.
func MustParse(input string) *Strategy {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

func parseRules(input string) ([]Rule, error) {
	p := &parser{s: input}
	var rules []Rule
	for {
		p.skipSpace()
		if p.eof() {
			return rules, nil
		}
		if p.peek() != '[' {
			return nil, fmt.Errorf("offset %d: expected '[' to open a trigger, found %q", p.pos, p.rest())
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
}

type parser struct {
	s   string
	pos int
}

func (p *parser) eof() bool  { return p.pos >= len(p.s) }
func (p *parser) peek() byte { return p.s[p.pos] }
func (p *parser) rest() string {
	if p.eof() {
		return ""
	}
	r := p.s[p.pos:]
	if len(r) > 20 {
		r = r[:20] + "..."
	}
	return r
}

func (p *parser) skipSpace() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t' || p.peek() == '\n') {
		p.pos++
	}
}

func (p *parser) expect(tok string) error {
	if !strings.HasPrefix(p.s[p.pos:], tok) {
		return fmt.Errorf("offset %d: expected %q, found %q", p.pos, tok, p.rest())
	}
	p.pos += len(tok)
	return nil
}

func (p *parser) parseRule() (Rule, error) {
	var r Rule
	if err := p.expect("["); err != nil {
		return r, err
	}
	end := strings.IndexByte(p.s[p.pos:], ']')
	if end < 0 {
		return r, fmt.Errorf("offset %d: unterminated trigger", p.pos)
	}
	raw := p.s[p.pos : p.pos+end]
	p.pos += end + 1
	parts := strings.SplitN(raw, ":", 3)
	if len(parts) != 3 {
		return r, fmt.Errorf("trigger %q: want proto:field:value", raw)
	}
	r.Trigger = Trigger{Proto: parts[0], Field: parts[1], Value: parts[2]}
	if err := p.expect("-"); err != nil {
		return r, err
	}
	a, err := p.parseAction()
	if err != nil {
		return r, err
	}
	r.Action = a
	p.skipSpace()
	if err := p.expect("-|"); err != nil {
		return r, err
	}
	return r, nil
}

// parseAction parses one action subtree; it returns nil for an empty slot
// (an implicit send).
func (p *parser) parseAction() (*Action, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() && isWord(p.peek()) {
		p.pos++
	}
	name := p.s[start:p.pos]
	if name == "" {
		return nil, nil // empty slot
	}

	a := &Action{}
	switch name {
	case "send":
		a.Kind = ActSend
	case "drop":
		a.Kind = ActDrop
	case "duplicate":
		a.Kind = ActDuplicate
	case "tamper":
		a.Kind = ActTamper
	case "fragment":
		a.Kind = ActFragment
	default:
		return nil, fmt.Errorf("offset %d: unknown action %q", start, name)
	}

	if !p.eof() && p.peek() == '{' {
		end := strings.IndexByte(p.s[p.pos:], '}')
		if end < 0 {
			return nil, fmt.Errorf("offset %d: unterminated '{'", p.pos)
		}
		args := p.s[p.pos+1 : p.pos+end]
		p.pos += end + 1
		if err := a.setArgs(args); err != nil {
			return nil, err
		}
	} else if a.Kind == ActTamper || a.Kind == ActFragment {
		return nil, fmt.Errorf("offset %d: %s requires a '{...}' argument block", start, name)
	}

	if !p.eof() && p.peek() == '(' {
		p.pos++
		left, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(","); err != nil {
			return nil, err
		}
		right, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		a.Left, a.Right = left, right
		if a.Kind == ActTamper && right != nil {
			return nil, fmt.Errorf("tamper takes a single branch")
		}
	}
	return a, nil
}

// setArgs interprets the {…} argument block for tamper and fragment.
func (a *Action) setArgs(args string) error {
	switch a.Kind {
	case ActTamper:
		// proto:field:mode[:value] — the value may contain ':' (URLs);
		// split only the first three fields.
		parts := strings.SplitN(args, ":", 4)
		if len(parts) < 3 {
			return fmt.Errorf("tamper{%s}: want proto:field:mode[:value]", args)
		}
		a.Proto, a.Field, a.Mode = parts[0], parts[1], parts[2]
		if len(parts) == 4 {
			a.NewValue = parts[3]
		}
		if a.Mode != "replace" && a.Mode != "corrupt" {
			return fmt.Errorf("tamper{%s}: unknown mode %q", args, a.Mode)
		}
	case ActFragment:
		parts := strings.Split(args, ":")
		if len(parts) != 3 {
			return fmt.Errorf("fragment{%s}: want proto:offset:inOrder", args)
		}
		a.Proto = parts[0]
		off, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("fragment{%s}: bad offset: %v", args, err)
		}
		a.FragOffset = off
		inOrder, err := strconv.ParseBool(parts[2])
		if err != nil {
			return fmt.Errorf("fragment{%s}: bad inOrder: %v", args, err)
		}
		a.InOrder = inOrder
	default:
		return fmt.Errorf("%s takes no '{...}' arguments", a.Kind)
	}
	return nil
}

func isWord(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
