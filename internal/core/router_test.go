package core

import (
	"math/rand"
	"net/netip"
	"testing"

	"geneva/internal/packet"
)

func routerSynAckTo(client netip.Addr) *packet.Packet {
	p := packet.New(srvAddr, client, 80, 40000)
	p.TCP.Flags = packet.FlagSYN | packet.FlagACK
	return p
}

func TestRouterPicksByPrefix(t *testing.T) {
	chinaStrategy := MustParse(`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \/ `)
	kazakhStrategy := MustParse(`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \/ `)
	r := NewRouter(nil)
	r.Route(netip.MustParsePrefix("10.1.0.0/16"), chinaStrategy, rand.New(rand.NewSource(1)))
	r.Route(netip.MustParsePrefix("10.2.0.0/16"), kazakhStrategy, rand.New(rand.NewSource(2)))

	out := r.Outbound(routerSynAckTo(netip.MustParseAddr("10.1.0.2")))
	if len(out) != 2 || out[0].TCP.Flags != packet.FlagRST {
		t.Errorf("china client got wrong strategy: %v packets", len(out))
	}
	out = r.Outbound(routerSynAckTo(netip.MustParseAddr("10.2.9.9")))
	if len(out) != 2 || out[0].TCP.Flags != 0 {
		t.Errorf("kazakh client got wrong strategy")
	}
	// Unrouted client: untouched.
	p := routerSynAckTo(netip.MustParseAddr("192.0.2.1"))
	out = r.Outbound(p)
	if len(out) != 1 || out[0] != p {
		t.Error("unrouted client was manipulated")
	}
}

func TestRouterMoreSpecificWins(t *testing.T) {
	broad := MustParse(`[TCP:flags:SA]-drop-| \/ `)
	narrow := MustParse(`[TCP:flags:SA]-duplicate(,)-| \/ `)
	r := NewRouter(nil)
	r.Route(netip.MustParsePrefix("10.0.0.0/8"), broad, rand.New(rand.NewSource(1)))
	r.Route(netip.MustParsePrefix("10.1.0.0/16"), narrow, rand.New(rand.NewSource(2)))
	if out := r.Outbound(routerSynAckTo(netip.MustParseAddr("10.1.0.2"))); len(out) != 2 {
		t.Errorf("more-specific route not chosen: %d packets", len(out))
	}
	if out := r.Outbound(routerSynAckTo(netip.MustParseAddr("10.9.0.2"))); len(out) != 0 {
		t.Errorf("broad route not applied: %d packets", len(out))
	}
}

func TestRouterFallback(t *testing.T) {
	fb := NewEngine(MustParse(`[TCP:flags:SA]-duplicate(,)-| \/ `), rand.New(rand.NewSource(1)))
	r := NewRouter(fb)
	if out := r.Outbound(routerSynAckTo(netip.MustParseAddr("198.18.0.1"))); len(out) != 2 {
		t.Errorf("fallback not applied: %d packets", len(out))
	}
}

func TestRouterPinsFlow(t *testing.T) {
	s := MustParse(`[TCP:flags:SA]-duplicate(,)-| \/ `)
	r := NewRouter(nil)
	r.Route(netip.MustParsePrefix("10.1.0.0/16"), s, rand.New(rand.NewSource(1)))
	client := netip.MustParseAddr("10.1.0.2")
	r.Outbound(routerSynAckTo(client))
	if r.Flows() != 1 {
		t.Fatalf("Flows = %d", r.Flows())
	}
	// Same flow again: still one pinned entry.
	r.Outbound(routerSynAckTo(client))
	if r.Flows() != 1 {
		t.Errorf("flow re-pinned: %d entries", r.Flows())
	}
}
