package core

import (
	"encoding/binary"
	"math/rand"
	"strings"

	"geneva/internal/packet"
)

// tamperDNS implements the paper's §4 application-layer tamper extension
// for DNS-over-TCP: it rewrites fields of a DNS message carried in the
// packet's TCP payload (2-byte length prefix + message). A payload that is
// not a plausible DNS-over-TCP message is left untouched — Geneva's GA
// feeds tampers to arbitrary packets and the engine must shrug.
//
// Supported fields:
//
//	tamper{DNS:qname:replace:example.com} — rewrite the first question name
//	tamper{DNS:qname:corrupt}             — randomize the name's bytes
//	tamper{DNS:id:corrupt|replace:N}      — transaction ID
//	tamper{DNS:qtype:corrupt|replace:N}   — question type
func tamperDNS(pkt *packet.Packet, field string, corrupt bool, value string, rng *rand.Rand) {
	payload := pkt.TCP.Payload
	if len(payload) < 2+12 {
		return
	}
	msg := payload[2:]
	qd := binary.BigEndian.Uint16(msg[4:])
	if qd == 0 {
		return
	}
	switch field {
	case "id":
		if corrupt {
			binary.BigEndian.PutUint16(msg[0:], uint16(rng.Intn(1<<16)))
		} else if v, ok := parseU16(value); ok {
			binary.BigEndian.PutUint16(msg[0:], v)
		}
	case "qname":
		start, end, ok := questionNameBounds(msg)
		if !ok {
			return
		}
		if corrupt {
			for i := start; i < end-1; i++ {
				if msg[i] != 0 && !isLabelLength(msg, start, i) {
					msg[i] = byte('a' + rng.Intn(26))
				}
			}
			return
		}
		// Replace: splice a re-encoded name in.
		newName := encodeName(value)
		rebuilt := make([]byte, 0, len(msg)-(end-start)+len(newName))
		rebuilt = append(rebuilt, msg[:start]...)
		rebuilt = append(rebuilt, newName...)
		rebuilt = append(rebuilt, msg[end:]...)
		out := make([]byte, 2, 2+len(rebuilt))
		binary.BigEndian.PutUint16(out, uint16(len(rebuilt)))
		pkt.TCP.Payload = append(out, rebuilt...)
	case "qtype":
		_, end, ok := questionNameBounds(msg)
		if !ok || end+2 > len(msg) {
			return
		}
		if corrupt {
			binary.BigEndian.PutUint16(msg[end:], uint16(rng.Intn(1<<16)))
		} else if v, ok := parseU16(value); ok {
			binary.BigEndian.PutUint16(msg[end:], v)
		}
	}
}

// questionNameBounds finds the first question's name within a DNS message
// (offsets relative to msg; end is one past the terminating root label).
func questionNameBounds(msg []byte) (start, end int, ok bool) {
	off := 12
	start = off
	for {
		if off >= len(msg) {
			return 0, 0, false
		}
		l := int(msg[off])
		switch {
		case l == 0:
			return start, off + 1, true
		case l&0xc0 != 0 || off+1+l > len(msg) || l > 63:
			return 0, 0, false
		default:
			off += 1 + l
		}
	}
}

// isLabelLength reports whether offset i within the name starting at start
// holds a label-length byte (which corruption must preserve to keep the
// message parseable — the censor should still read it, just see the wrong
// name).
func isLabelLength(msg []byte, start, i int) bool {
	off := start
	for off < len(msg) {
		if off == i {
			return true
		}
		l := int(msg[off])
		if l == 0 || l > 63 {
			return false
		}
		off += 1 + l
	}
	return false
}

func encodeName(name string) []byte {
	var b []byte
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if label == "" {
			continue
		}
		if len(label) > 63 {
			label = label[:63]
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0)
}

func parseU16(s string) (uint16, bool) {
	var v uint32
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint32(c-'0')
		if v > 0xffff {
			return 0, false
		}
	}
	if s == "" {
		return 0, false
	}
	return uint16(v), true
}
