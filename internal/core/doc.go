// Package core implements the Geneva strategy language and packet-
// manipulation engine, extended to run server-side as in the paper.
//
// A strategy is a forest of (trigger, action-tree) rules for each direction:
//
//	[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \/
//
// reads: on outbound SYN+ACK packets, duplicate; turn the first copy into a
// RST and the second into a SYN, and send both (Strategy 1 of the paper).
//
// The five genetic building blocks mirror the paper's Appendix:
//
//	duplicate(A1,A2)                      copy the packet, run A1 and A2
//	fragment{proto:offset:inOrder}(A1,A2) split the packet in two
//	tamper{proto:field:mode[:value]}(A)   modify a header field or the load
//	drop                                  discard
//	send                                  emit (implicit leaf)
//
// tamper recomputes checksums and lengths unless the tampered field is
// itself a checksum or length, in which case the corrupt value survives
// serialization (how "insertion packets" are built). Triggers demand an
// exact match: TCP:flags:S does not match a SYN+ACK.
//
// The Engine applies a strategy at an endpoint: its Outbound method has the
// exact signature of tcpstack.Endpoint.Outbound, so attaching Geneva to a
// server is one assignment — the simulated equivalent of the paper's
// NFQueue deployment.
package core
