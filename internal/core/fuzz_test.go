package core

import (
	"math/rand"
	"testing"

	"geneva/internal/packet"
)

// FuzzParse hammers the strategy parser: it must never panic, and anything
// it accepts must survive a String -> Parse -> String fixed-point check and
// an engine application (the GA feeds the parser machine-generated junk
// continuously).
func FuzzParse(f *testing.F) {
	f.Add(`[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},tamper{TCP:flags:replace:S})-| \/ `)
	f.Add(`[TCP:flags:SA]-tamper{TCP:window:replace:10}(tamper{TCP:options-wscale:replace:},)-| \/ `)
	f.Add(`[TCP:flags:SA]-fragment{tcp:8:true}(drop,send)-| \/ [TCP:flags:R]-drop-|`)
	f.Add(` \/ `)
	f.Add(`[TCP:flags:SA]-tamper{DNS:qname:replace:a.b}-| \/ `)
	f.Add(`[[[:::]]]---|||`)
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return
		}
		printed := s.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", input, printed, err)
		}
		if s2.String() != printed {
			t.Fatalf("not a fixed point: %q -> %q", printed, s2.String())
		}
		// Applying any accepted strategy must not panic.
		eng := NewEngine(s, rand.New(rand.NewSource(1)))
		p := synAckForFuzz()
		_ = eng.Outbound(p)
		_ = eng.Inbound(p.Clone())
	})
}

func synAckForFuzz() *packet.Packet {
	p := packet.New(srvAddr, cliAddr, 80, 40000)
	p.TCP.Flags = packet.FlagSYN | packet.FlagACK
	p.TCP.Seq = 1000
	p.TCP.Ack = 501
	return p
}
