package core

import (
	"math/rand"
	"net/netip"
	"testing"

	"geneva/internal/packet"
	"geneva/internal/race"
)

// skipUnderRace skips allocation-budget tests under -race: race
// instrumentation allocates on its own, so AllocsPerRun counts are
// meaningless there. The budgets are enforced by `make alloc-budget` in CI.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("race instrumentation allocates; budgets are enforced by make alloc-budget")
	}
}

func allocTestPacket(flags uint8) *packet.Packet {
	p := packet.New(
		netip.MustParseAddr("198.51.100.9"), netip.MustParseAddr("10.1.0.2"),
		80, 40000)
	p.TCP.Flags = flags
	return p
}

// TestAllocBudgetCompiledMatch pins trigger evaluation at zero allocations:
// every packet an engine sees runs the compiled matcher, so a regression
// here multiplies across the whole trial.
func TestAllocBudgetCompiledMatch(t *testing.T) {
	skipUnderRace(t)
	for _, dsl := range []string{
		"[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},send)-| \\/",
		"[TCP:dport:80]-drop-| \\/",
	} {
		s := MustParse(dsl)
		m := s.Outbound[0].Trigger.Compile()
		hit := allocTestPacket(packet.FlagSYN | packet.FlagACK)
		miss := allocTestPacket(packet.FlagRST)
		allocs := testing.AllocsPerRun(200, func() {
			m(hit)
			m(miss)
		})
		if allocs > 0 {
			t.Errorf("%s: compiled matcher allocates %.1f objects/op, budget is 0", dsl, allocs)
		}
	}
}

// TestAllocBudgetMemoizedString pins Strategy.String at zero allocations
// after the first call — the fitness cache keys on it once per evaluation.
func TestAllocBudgetMemoizedString(t *testing.T) {
	skipUnderRace(t)
	s := MustParse("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},send)-| \\/")
	_ = s.String() // populate the memo
	allocs := testing.AllocsPerRun(200, func() {
		_ = s.String()
	})
	if allocs > 0 {
		t.Errorf("memoized String allocates %.1f objects/op, budget is 0", allocs)
	}
}

// TestAllocBudgetEnginePassThrough pins the no-match path — the fate of
// almost every packet in a trial — at zero allocations.
func TestAllocBudgetEnginePassThrough(t *testing.T) {
	skipUnderRace(t)
	eng := NewEngine(
		MustParse("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},send)-| \\/"),
		rand.New(rand.NewSource(1)))
	p := allocTestPacket(packet.FlagPSH | packet.FlagACK)
	allocs := testing.AllocsPerRun(200, func() {
		_ = eng.Outbound(p)
	})
	if allocs > 0 {
		t.Errorf("engine pass-through allocates %.1f objects/op, budget is 0", allocs)
	}
}

// TestAllocBudgetEngineMatch bounds the matched path: one duplicate action
// emits two packets; with the pooled clone and the engine's reusable
// emission buffer the steady state is at most the clone's pool interaction.
func TestAllocBudgetEngineMatch(t *testing.T) {
	skipUnderRace(t)
	eng := NewEngine(
		MustParse("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},send)-| \\/"),
		rand.New(rand.NewSource(1)))
	allocs := testing.AllocsPerRun(200, func() {
		p := allocTestPacket(packet.FlagSYN | packet.FlagACK)
		out := eng.Outbound(p)
		for _, q := range out {
			if q != p {
				packet.Put(q)
			}
		}
	})
	// The trigger packet itself is built fresh each run (4 allocations:
	// packet.New escapes); the engine's own work must add no more than the
	// emission bookkeeping. 8 is the measured steady state plus headroom —
	// the pre-optimization engine sat at ~14.
	if allocs > 8 {
		t.Errorf("engine matched path allocates %.1f objects/op, budget is 8", allocs)
	}
}
