package core

import (
	"math/rand"
	"strconv"

	"geneva/internal/packet"
)

// tamper applies one tamper{proto:field:mode[:value]} to pkt in place.
// Invalid combinations are silently ignored: Geneva's genetic search
// produces nonsense constantly and the engine must shrug it off. Checksums
// and lengths are recomputed at serialization unless the tampered field is
// itself a checksum or length, in which case the Raw flags pin the corrupt
// value (the paper's insertion packets).
func tamper(pkt *packet.Packet, proto, field, mode, value string, rng *rand.Rand) {
	// Payload tampering (TCP:load, DNS:*) invalidates any memoized
	// application-layer view; clearing unconditionally keeps the packet
	// invariant local instead of depending on which field is touched.
	pkt.ClearAppView()
	corrupt := mode == "corrupt"
	switch proto {
	case "TCP":
		tamperTCP(pkt, field, corrupt, value, rng)
	case "IP", "IPv4":
		tamperIP(pkt, field, corrupt, value, rng)
	case "DNS":
		// The paper's §4 application-layer extension: rewrite the
		// DNS-over-TCP message riding in the TCP payload.
		tamperDNS(pkt, field, corrupt, value, rng)
	}
}

func tamperTCP(pkt *packet.Packet, field string, corrupt bool, value string, rng *rand.Rand) {
	t := &pkt.TCP
	switch field {
	case "flags":
		if corrupt {
			t.Flags = uint8(rng.Intn(64))
			return
		}
		if f, err := packet.ParseFlags(value); err == nil {
			t.Flags = f
		}
	case "seq":
		t.Seq = tamper32(t.Seq, corrupt, value, rng)
	case "ack":
		t.Ack = tamper32(t.Ack, corrupt, value, rng)
	case "sport":
		t.SrcPort = tamper16(t.SrcPort, corrupt, value, rng)
	case "dport":
		t.DstPort = tamper16(t.DstPort, corrupt, value, rng)
	case "window":
		t.Window = tamper16(t.Window, corrupt, value, rng)
	case "urgptr":
		t.Urgent = tamper16(t.Urgent, corrupt, value, rng)
	case "chksum":
		// Tampered checksums survive serialization (insertion packets).
		t.Checksum = tamper16(t.Checksum, corrupt, value, rng)
		t.RawChecksum = true
	case "dataofs":
		if corrupt {
			t.DataOff = uint8(rng.Intn(16))
		} else if v, err := strconv.ParseUint(value, 10, 8); err == nil {
			t.DataOff = uint8(v)
		}
		t.RawDataOff = true
	case "load":
		if corrupt {
			n := len(t.Payload)
			if n == 0 {
				n = 8 + rng.Intn(24)
			}
			load := make([]byte, n)
			rng.Read(load)
			t.Payload = load
			return
		}
		t.Payload = []byte(value)
	case "options-wscale":
		tamperOption(t, packet.OptWScale, corrupt, value, 1, rng)
	case "options-mss":
		tamperOption(t, packet.OptMSS, corrupt, value, 2, rng)
	case "options-sackok":
		tamperOption(t, packet.OptSACKOK, corrupt, value, 0, rng)
	case "options-timestamp":
		tamperOption(t, packet.OptTimestamp, corrupt, value, 8, rng)
	case "options-altchksum":
		tamperOption(t, packet.OptAltChksum, corrupt, value, 3, rng)
	case "options-uto":
		tamperOption(t, packet.OptUTO, corrupt, value, 2, rng)
	case "options-md5header":
		tamperOption(t, packet.OptMD5, corrupt, value, 16, rng)
	}
}

// tamperOption replaces or corrupts a TCP option. Geneva's
// tamper{TCP:options-X:replace:} with an empty value removes the option —
// Strategy 8 strips wscale this way.
func tamperOption(t *packet.TCP, kind byte, corrupt bool, value string, width int, rng *rand.Rand) {
	if corrupt {
		data := make([]byte, width)
		rng.Read(data)
		t.SetOption(kind, data)
		return
	}
	if value == "" {
		t.RemoveOption(kind)
		return
	}
	if v, err := strconv.ParseUint(value, 10, 64); err == nil && width > 0 {
		data := make([]byte, width)
		for i := width - 1; i >= 0; i-- {
			data[i] = byte(v)
			v >>= 8
		}
		t.SetOption(kind, data)
		return
	}
	t.SetOption(kind, []byte(value))
}

func tamperIP(pkt *packet.Packet, field string, corrupt bool, value string, rng *rand.Rand) {
	ip := &pkt.IP
	switch field {
	case "ttl":
		if corrupt {
			ip.TTL = uint8(rng.Intn(256))
		} else if v, err := strconv.ParseUint(value, 10, 8); err == nil {
			ip.TTL = uint8(v)
		}
	case "tos":
		if corrupt {
			ip.TOS = uint8(rng.Intn(256))
		} else if v, err := strconv.ParseUint(value, 10, 8); err == nil {
			ip.TOS = uint8(v)
		}
	case "ident", "id":
		ip.ID = tamper16(ip.ID, corrupt, value, rng)
	case "len":
		ip.Length = tamper16(ip.Length, corrupt, value, rng)
		ip.RawLength = true
	case "chksum":
		ip.Checksum = tamper16(ip.Checksum, corrupt, value, rng)
		ip.RawChecksum = true
	case "version":
		if corrupt {
			ip.Version = uint8(rng.Intn(16))
		} else if v, err := strconv.ParseUint(value, 10, 8); err == nil {
			ip.Version = uint8(v)
		}
	case "flags":
		// DF/MF/evil in Geneva notation, e.g. "DF" or "MF".
		if corrupt {
			ip.Flags = uint8(rng.Intn(8))
			return
		}
		var f uint8
		switch value {
		case "DF":
			f = packet.IPv4DontFrag
		case "MF":
			f = packet.IPv4MoreFrag
		case "":
			f = 0
		default:
			return
		}
		ip.Flags = f
	case "frag":
		ip.FragOff = tamper16(ip.FragOff, corrupt, value, rng) & 0x1fff
	}
}

func tamper16(cur uint16, corrupt bool, value string, rng *rand.Rand) uint16 {
	if corrupt {
		return uint16(rng.Intn(1 << 16))
	}
	if v, err := strconv.ParseUint(value, 10, 16); err == nil {
		return uint16(v)
	}
	return cur
}

func tamper32(cur uint32, corrupt bool, value string, rng *rand.Rand) uint32 {
	if corrupt {
		return rng.Uint32()
	}
	if v, err := strconv.ParseUint(value, 10, 32); err == nil {
		return uint32(v)
	}
	return cur
}
