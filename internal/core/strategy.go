package core

import (
	"math/rand"
	"strconv"
	"strings"

	"geneva/internal/packet"
)

// Trigger selects which packets an action tree applies to. Geneva triggers
// demand an exact match on one field: [TCP:flags:SA] matches SYN+ACK
// packets and nothing else.
type Trigger struct {
	Proto string // "TCP" or "IP"
	Field string // e.g. "flags", "dport", "ttl"
	Value string
}

// Matches reports whether pkt matches the trigger.
func (tr Trigger) Matches(pkt *packet.Packet) bool {
	switch tr.Proto {
	case "TCP":
		switch tr.Field {
		case "flags":
			return packet.FlagsString(pkt.TCP.Flags) == tr.Value
		case "sport":
			return numEq(uint64(pkt.TCP.SrcPort), tr.Value)
		case "dport":
			return numEq(uint64(pkt.TCP.DstPort), tr.Value)
		case "seq":
			return numEq(uint64(pkt.TCP.Seq), tr.Value)
		case "ack":
			return numEq(uint64(pkt.TCP.Ack), tr.Value)
		case "window":
			return numEq(uint64(pkt.TCP.Window), tr.Value)
		}
	case "IP", "IPv4":
		switch tr.Field {
		case "ttl":
			return numEq(uint64(pkt.IP.TTL), tr.Value)
		case "version":
			return numEq(uint64(pkt.IP.Version), tr.Value)
		}
	}
	return false
}

func numEq(v uint64, s string) bool {
	want, err := strconv.ParseUint(s, 10, 64)
	return err == nil && v == want
}

func (tr Trigger) String() string {
	var b strings.Builder
	b.Grow(len(tr.Proto) + len(tr.Field) + len(tr.Value) + 4)
	tr.appendTo(&b)
	return b.String()
}

func (tr Trigger) appendTo(b *strings.Builder) {
	b.WriteByte('[')
	b.WriteString(tr.Proto)
	b.WriteByte(':')
	b.WriteString(tr.Field)
	b.WriteByte(':')
	b.WriteString(tr.Value)
	b.WriteByte(']')
}

// Rule is one trigger with its action tree.
type Rule struct {
	Trigger Trigger
	Action  *Action
}

func (r Rule) String() string {
	var b strings.Builder
	r.appendTo(&b)
	return b.String()
}

func (r Rule) appendTo(b *strings.Builder) {
	r.Trigger.appendTo(b)
	b.WriteByte('-')
	b.WriteString(r.Action.String())
	b.WriteString("-|")
}

// Clone deep-copies the rule.
func (r Rule) Clone() Rule {
	return Rule{Trigger: r.Trigger, Action: r.Action.Clone()}
}

// Strategy is a full Geneva strategy: rule forests for the outbound and
// inbound directions, relative to the host the engine runs on.
type Strategy struct {
	Outbound []Rule
	Inbound  []Rule

	// str memoizes String(): the canonical text is rebuilt only after
	// Invalidate. A plain field (not a lock) on purpose — strategies are
	// copied by value on some mutation paths, and every concurrent reader
	// (the Evaluator's cache keying) already serializes behind its own
	// mutex. Mutating a Strategy that other goroutines are reading was
	// never safe; the memo does not change that contract.
	str string
}

// Clone deep-copies the strategy.
func (s *Strategy) Clone() *Strategy {
	c := &Strategy{}
	for _, r := range s.Outbound {
		c.Outbound = append(c.Outbound, r.Clone())
	}
	for _, r := range s.Inbound {
		c.Inbound = append(c.Inbound, r.Clone())
	}
	return c
}

// Size counts action nodes across all rules (GA bloat penalty).
func (s *Strategy) Size() int {
	n := 0
	for _, r := range s.Outbound {
		n += r.Action.Size()
	}
	for _, r := range s.Inbound {
		n += r.Action.Size()
	}
	return n
}

// String renders the strategy in Geneva's canonical syntax
// ("<outbound> \/ <inbound>"). The text is memoized: repeated calls — the
// Evaluator builds a cache key from it for every fitness lookup — return the
// cached string without rebuilding. Any code that mutates a Strategy's rules
// in place must call Invalidate afterwards.
func (s *Strategy) String() string {
	if s.str != "" {
		return s.str
	}
	var b strings.Builder
	for _, r := range s.Outbound {
		r.appendTo(&b)
	}
	b.WriteString(" \\/ ")
	for _, r := range s.Inbound {
		r.appendTo(&b)
	}
	s.str = b.String()
	return s.str
}

// Invalidate clears the memoized canonical text. Every in-place mutation
// path (genetic variation, minimization) calls this; forgetting to would
// leave String() — and anything keyed on it — describing the pre-mutation
// strategy.
func (s *Strategy) Invalidate() { s.str = "" }

// Engine applies a strategy to a host's packet stream. Its Outbound method
// matches tcpstack.Endpoint's Outbound hook signature, so deployment is:
//
//	server.Outbound = core.NewEngine(strategy, rng).Outbound
//
// NewEngine compiles the strategy's triggers once (see Trigger.Compile), so
// the Strategy must not be mutated while the engine is in use. An Engine is
// single-threaded, like the rng it owns.
type Engine struct {
	Strategy *Strategy
	rng      *rand.Rand

	outbound []compiledRule
	inbound  []compiledRule
	pass     [1]*packet.Packet // scratch for the no-match pass-through
	out      []*packet.Packet  // scratch for matched-rule emission
}

// NewEngine builds an engine. The rng drives corrupt-mode tampers.
func NewEngine(s *Strategy, rng *rand.Rand) *Engine {
	return &Engine{
		Strategy: s,
		rng:      rng,
		outbound: compileRules(s.Outbound),
		inbound:  compileRules(s.Inbound),
	}
}

// Outbound transforms one stack-emitted packet into the packets to put on
// the wire. The first matching rule applies; packets matching no rule pass
// through untouched. The returned slice is only valid until the engine's
// next call: the pass-through case reuses a scratch slot.
func (e *Engine) Outbound(pkt *packet.Packet) []*packet.Packet {
	return e.apply(e.outbound, pkt)
}

// Inbound transforms one received packet before the stack sees it. The
// returned slice is only valid until the engine's next call.
func (e *Engine) Inbound(pkt *packet.Packet) []*packet.Packet {
	return e.apply(e.inbound, pkt)
}

func (e *Engine) apply(rules []compiledRule, pkt *packet.Packet) []*packet.Packet {
	for i := range rules {
		if rules[i].match(pkt) {
			e.out = rules[i].action.appendApply(e.out[:0], pkt, e.rng)
			return e.out
		}
	}
	e.pass[0] = pkt
	return e.pass[:1]
}
