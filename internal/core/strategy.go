package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"geneva/internal/packet"
)

// Trigger selects which packets an action tree applies to. Geneva triggers
// demand an exact match on one field: [TCP:flags:SA] matches SYN+ACK
// packets and nothing else.
type Trigger struct {
	Proto string // "TCP" or "IP"
	Field string // e.g. "flags", "dport", "ttl"
	Value string
}

// Matches reports whether pkt matches the trigger.
func (tr Trigger) Matches(pkt *packet.Packet) bool {
	switch tr.Proto {
	case "TCP":
		switch tr.Field {
		case "flags":
			return packet.FlagsString(pkt.TCP.Flags) == tr.Value
		case "sport":
			return numEq(uint64(pkt.TCP.SrcPort), tr.Value)
		case "dport":
			return numEq(uint64(pkt.TCP.DstPort), tr.Value)
		case "seq":
			return numEq(uint64(pkt.TCP.Seq), tr.Value)
		case "ack":
			return numEq(uint64(pkt.TCP.Ack), tr.Value)
		case "window":
			return numEq(uint64(pkt.TCP.Window), tr.Value)
		}
	case "IP", "IPv4":
		switch tr.Field {
		case "ttl":
			return numEq(uint64(pkt.IP.TTL), tr.Value)
		case "version":
			return numEq(uint64(pkt.IP.Version), tr.Value)
		}
	}
	return false
}

func numEq(v uint64, s string) bool {
	want, err := strconv.ParseUint(s, 10, 64)
	return err == nil && v == want
}

func (tr Trigger) String() string {
	return fmt.Sprintf("[%s:%s:%s]", tr.Proto, tr.Field, tr.Value)
}

// Rule is one trigger with its action tree.
type Rule struct {
	Trigger Trigger
	Action  *Action
}

func (r Rule) String() string {
	return r.Trigger.String() + "-" + r.Action.String() + "-|"
}

// Clone deep-copies the rule.
func (r Rule) Clone() Rule {
	return Rule{Trigger: r.Trigger, Action: r.Action.Clone()}
}

// Strategy is a full Geneva strategy: rule forests for the outbound and
// inbound directions, relative to the host the engine runs on.
type Strategy struct {
	Outbound []Rule
	Inbound  []Rule
}

// Clone deep-copies the strategy.
func (s *Strategy) Clone() *Strategy {
	c := &Strategy{}
	for _, r := range s.Outbound {
		c.Outbound = append(c.Outbound, r.Clone())
	}
	for _, r := range s.Inbound {
		c.Inbound = append(c.Inbound, r.Clone())
	}
	return c
}

// Size counts action nodes across all rules (GA bloat penalty).
func (s *Strategy) Size() int {
	n := 0
	for _, r := range s.Outbound {
		n += r.Action.Size()
	}
	for _, r := range s.Inbound {
		n += r.Action.Size()
	}
	return n
}

// String renders the strategy in Geneva's canonical syntax
// ("<outbound> \/ <inbound>").
func (s *Strategy) String() string {
	var parts []string
	for _, r := range s.Outbound {
		parts = append(parts, r.String())
	}
	out := strings.Join(parts, "")
	parts = parts[:0]
	for _, r := range s.Inbound {
		parts = append(parts, r.String())
	}
	in := strings.Join(parts, "")
	if in == "" {
		return out + " \\/ "
	}
	return out + " \\/ " + in
}

// Engine applies a strategy to a host's packet stream. Its Outbound method
// matches tcpstack.Endpoint's Outbound hook signature, so deployment is:
//
//	server.Outbound = core.NewEngine(strategy, rng).Outbound
type Engine struct {
	Strategy *Strategy
	rng      *rand.Rand
}

// NewEngine builds an engine. The rng drives corrupt-mode tampers.
func NewEngine(s *Strategy, rng *rand.Rand) *Engine {
	return &Engine{Strategy: s, rng: rng}
}

// Outbound transforms one stack-emitted packet into the packets to put on
// the wire. The first matching rule applies; packets matching no rule pass
// through untouched.
func (e *Engine) Outbound(pkt *packet.Packet) []*packet.Packet {
	return e.apply(e.Strategy.Outbound, pkt)
}

// Inbound transforms one received packet before the stack sees it.
func (e *Engine) Inbound(pkt *packet.Packet) []*packet.Packet {
	return e.apply(e.Strategy.Inbound, pkt)
}

func (e *Engine) apply(rules []Rule, pkt *packet.Packet) []*packet.Packet {
	for _, r := range rules {
		if r.Trigger.Matches(pkt) {
			return r.Action.Apply(pkt, e.rng)
		}
	}
	return []*packet.Packet{pkt}
}
