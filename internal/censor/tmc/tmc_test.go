package tmc

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

var (
	cli = netip.MustParseAddr("10.7.0.2")
	srv = netip.MustParseAddr("198.51.100.9")
)

// trigger builds a client→server packet carrying payload on the given
// service port.
func trigger(port uint16, payload []byte) *packet.Packet {
	p := packet.New(cli, srv, 40000, port)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Seq = 1000
	p.TCP.Ack = 2000
	p.TCP.Payload = payload
	return p
}

// mirrored builds the same packet travelling server→client.
func mirrored(port uint16, payload []byte) *packet.Packet {
	p := packet.New(srv, cli, port, 40000)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Seq = 1000
	p.TCP.Ack = 2000
	p.TCP.Payload = payload
	return p
}

func TestForgedDNSResponse(t *testing.T) {
	c := New(censor.Default(), nil)
	q := trigger(53, apps.EncodeDNSQuery("www.wikipedia.org"))
	v := c.Process(q, netsim.ToServer, 0)
	if v.Drop {
		t.Error("the TMC is on-path; it cannot drop")
	}
	if len(v.InjectToServer) != 0 {
		t.Error("DNS forgery injected toward the server for a client query")
	}
	if len(v.InjectToClient) != 1 {
		t.Fatalf("injected %d packets toward the client, want the forged response", len(v.InjectToClient))
	}
	resp := v.InjectToClient[0]
	want := apps.EncodeDNSResponse("www.wikipedia.org", [4]byte{127, 0, 0, 1})
	if !bytes.Equal(resp.TCP.Payload, want) {
		t.Errorf("forged payload = %x, want bogus-address response", resp.TCP.Payload)
	}
	// Stateless numbering: the forgery slots exactly where the client
	// expects the real response, so it shadows it at the reassembler.
	if resp.TCP.Seq != 2000 || resp.TCP.Ack != 1000+uint32(len(q.TCP.Payload)) {
		t.Errorf("forged seq/ack = %d/%d", resp.TCP.Seq, resp.TCP.Ack)
	}
	if c.CensoredCount() != 1 {
		t.Error("counter not incremented")
	}
}

func TestRealDNSResponseDoesNotRetrigger(t *testing.T) {
	c := New(censor.Default(), nil)
	// The real server response carries the forbidden name in its question
	// section; the QR bit must keep the engine from re-triggering on it.
	resp := mirrored(53, apps.EncodeDNSResponse("www.wikipedia.org", [4]byte{93, 184, 216, 34}))
	if v := c.Process(resp, netsim.ToClient, 0); len(v.InjectToClient) != 0 || len(v.InjectToServer) != 0 {
		t.Error("TMC triggered on a DNS response (QR=1)")
	}
}

func TestHTTPBidirectionalTeardown(t *testing.T) {
	c := New(censor.Default(), nil)
	req := trigger(80, []byte("GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n"))
	v := c.Process(req, netsim.ToServer, 0)
	if v.Drop {
		t.Error("the TMC is on-path; it cannot drop")
	}
	if len(v.InjectToClient) != 1 || len(v.InjectToServer) != 1 {
		t.Fatalf("injected %d/%d packets to client/server, want 1/1",
			len(v.InjectToClient), len(v.InjectToServer))
	}
	toCli, toSrv := v.InjectToClient[0], v.InjectToServer[0]
	if toCli.TCP.Flags&packet.FlagRST == 0 || toSrv.TCP.Flags&packet.FlagRST == 0 {
		t.Error("tear-down packets are not RSTs")
	}
	end := 1000 + uint32(len(req.TCP.Payload))
	// Toward the client, impersonating the server.
	if toCli.TCP.Seq != 2000 || toCli.TCP.Ack != end {
		t.Errorf("client-bound RST seq/ack = %d/%d", toCli.TCP.Seq, toCli.TCP.Ack)
	}
	// Toward the server, impersonating the client.
	if toSrv.TCP.Seq != end || toSrv.TCP.Ack != 2000 {
		t.Errorf("server-bound RST seq/ack = %d/%d", toSrv.TCP.Seq, toSrv.TCP.Ack)
	}
}

// TestCrossDirectionMirror is the bidirectional property: the TMC's DPI is
// direction-blind, so processing a trigger travelling server→client must
// produce the exact mirror of the client→server verdict — swapped
// injection lists with byte-identical payloads, and the same note.
func TestCrossDirectionMirror(t *testing.T) {
	cases := []struct {
		name    string
		port    uint16
		payload []byte
	}{
		{"dns", 53, apps.EncodeDNSQuery("www.wikipedia.org")},
		{"http", 80, []byte("GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n")},
		{"https", 443, apps.EncodeClientHello("www.wikipedia.org")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fwd := New(censor.Default(), nil).Process(trigger(tc.port, tc.payload), netsim.ToServer, 0)
			rev := New(censor.Default(), nil).Process(mirrored(tc.port, tc.payload), netsim.ToClient, 0)
			if fwd.Note != rev.Note {
				t.Errorf("notes differ: %q vs %q", fwd.Note, rev.Note)
			}
			if len(fwd.InjectToClient) != len(rev.InjectToServer) ||
				len(fwd.InjectToServer) != len(rev.InjectToClient) {
				t.Fatalf("injection counts not mirrored: %d/%d vs %d/%d",
					len(fwd.InjectToClient), len(fwd.InjectToServer),
					len(rev.InjectToClient), len(rev.InjectToServer))
			}
			for i := range fwd.InjectToClient {
				if !bytes.Equal(fwd.InjectToClient[i].TCP.Payload, rev.InjectToServer[i].TCP.Payload) {
					t.Errorf("mirrored payload %d differs", i)
				}
			}
			for i := range fwd.InjectToServer {
				if !bytes.Equal(fwd.InjectToServer[i].TCP.Payload, rev.InjectToClient[i].TCP.Payload) {
					t.Errorf("mirrored payload %d differs", i)
				}
			}
		})
	}
}

func TestResidualCensorship(t *testing.T) {
	c := New(censor.Default(), nil)
	c.Process(trigger(80, []byte("GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n")), netsim.ToServer, 0)

	// A new connection's handshake ACK to the tainted server is torn down
	// inside the window...
	ack := packet.New(cli, srv, 40001, 80)
	ack.TCP.Flags = packet.FlagACK
	ack.TCP.Seq = 5000
	ack.TCP.Ack = 6000
	v := c.Process(ack, netsim.ToServer, 30*time.Second)
	if len(v.InjectToClient) != 1 || len(v.InjectToServer) != 1 {
		t.Fatal("residual censorship did not tear down a fresh connection")
	}
	if v.Note != "residual censorship" {
		t.Errorf("note = %q", v.Note)
	}
	// ...benign traffic to another server is untouched...
	other := packet.New(cli, netip.MustParseAddr("198.51.100.10"), 40002, 80)
	other.TCP.Flags = packet.FlagACK
	if v := c.Process(other, netsim.ToServer, 30*time.Second); len(v.InjectToClient) != 0 {
		t.Error("residual censorship leaked to an untainted server")
	}
	// ...and past the window the taint is gone.
	if v := c.Process(ack, netsim.ToServer, 2*ResidualWindow); len(v.InjectToClient) != 0 {
		t.Error("residual window did not expire")
	}
}

func TestSegmentedTriggersPass(t *testing.T) {
	payloads := map[uint16][]byte{
		53:  apps.EncodeDNSQuery("www.wikipedia.org"),
		80:  []byte("GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n"),
		443: apps.EncodeClientHello("www.wikipedia.org"),
	}
	for port, full := range payloads {
		c := New(censor.Default(), nil)
		for _, cut := range []int{4, 10} {
			seg1 := trigger(port, full[:cut])
			seg2 := trigger(port, full[cut:])
			seg2.TCP.Seq += uint32(cut)
			if v := c.Process(seg1, netsim.ToServer, 0); len(v.InjectToClient)+len(v.InjectToServer) != 0 {
				t.Errorf("port %d cut %d: first segment censored", port, cut)
			}
			if v := c.Process(seg2, netsim.ToServer, 0); len(v.InjectToClient)+len(v.InjectToServer) != 0 {
				t.Errorf("port %d cut %d: second segment censored (no reassembly expected)", port, cut)
			}
		}
	}
}

func TestBenignTrafficPasses(t *testing.T) {
	c := New(censor.Default(), nil)
	cases := []*packet.Packet{
		trigger(53, apps.EncodeDNSQuery("allowed.example")),
		trigger(80, []byte("GET / HTTP/1.1\r\nHost: allowed.example\r\n\r\n")),
		trigger(443, apps.EncodeClientHello("allowed.example")),
		trigger(8080, []byte("GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n")),
	}
	for i, p := range cases {
		if v := c.Process(p, netsim.ToServer, 0); len(v.InjectToClient)+len(v.InjectToServer) != 0 || v.Drop {
			t.Errorf("case %d: benign traffic censored", i)
		}
	}
	if c.CensoredCount() != 0 {
		t.Error("counter incremented on benign traffic")
	}
}

func TestResidualCarrierMaxMerge(t *testing.T) {
	c := New(censor.Default(), nil)
	c.SeedResidual("198.51.100.9:80", 40*time.Second)
	c.SeedResidual("198.51.100.9:80", 20*time.Second) // shorter: must lose
	var got time.Duration
	c.ExportResidual(10*time.Second, func(key string, remaining time.Duration) {
		if key != "198.51.100.9:80" {
			t.Errorf("key = %q", key)
		}
		got = remaining
	})
	if got != 30*time.Second {
		t.Errorf("remaining = %v, want 30s (max-merge, relative to now)", got)
	}
	// Expired windows are not exported.
	n := 0
	c.ExportResidual(time.Hour, func(string, time.Duration) { n++ })
	if n != 0 {
		t.Error("expired window exported")
	}
}

// Keep-alive pipelining: a forbidden request coalesced behind a benign one
// in a single packet used to pass the HTTP engine — it only ever matched
// the Host of the first request in a payload.
func TestPipelinedForbiddenRequestTornDown(t *testing.T) {
	c := New(censor.Default(), nil)
	pipelined := []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n" +
		"GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n")
	v := c.Process(trigger(80, pipelined), netsim.ToServer, 0)
	if len(v.InjectToClient) == 0 || len(v.InjectToServer) == 0 {
		t.Fatal("pipelined forbidden request did not elicit the two-sided tear-down")
	}
	if !strings.Contains(v.Note, "blocked.example") {
		t.Errorf("note %q does not name the matched host", v.Note)
	}
	if c.Censored != 1 {
		t.Errorf("Censored = %d, want 1", c.Censored)
	}
}
