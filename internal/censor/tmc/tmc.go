// Package tmc models Turkmenistan's national censor (the TMC). Nourin et
// al. ("Measuring and Evading Turkmenistan's Internet Censorship", WWW
// 2023 — see PAPERS.md) document a censor that is unusual on two axes the
// other models in this repo never exercise:
//
//   - It is *bidirectional*: the DPI engines match triggers in both
//     directions and react to server-to-client traffic, not just client
//     requests. A forbidden trigger seen in either direction elicits
//     injection toward both endpoints.
//   - Its tear-down is *two-sided*: HTTP Host and TLS SNI matches inject
//     RST+ACK toward the client and the server simultaneously, and DNS
//     queries for forbidden names are answered with a forged response
//     carrying a bogus address, injected back toward whichever side sent
//     the query.
//
// Like India's ISPs the TMC is stateless single-packet DPI — it keeps no
// TCB, never reassembles (client segmentation defeats every engine), and
// matches only on the protocol's default port. Its one piece of
// cross-connection state is residual censorship: after an HTTP/HTTPS
// tear-down the server endpoint stays tainted for a window, and any new
// connection to it is torn down on the first ACK-bearing client packet.
// That state rides the fleet's residual ledger via censor.ResidualCarrier,
// the same seam the GFW's poisoned windows use.
package tmc

import (
	"math/rand"
	"net/netip"
	"strconv"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// ResidualWindow is how long a server endpoint stays tainted after an
// HTTP/HTTPS tear-down. Nourin et al. measure multi-minute blocking of the
// server IP; one minute keeps the fleet's default inter-wave gap (120 s)
// outside the window so routed cells stay deterministic.
const ResidualWindow = time.Minute

// bogusAddr is the address the TMC's forged DNS responses resolve
// forbidden names to (the loopback answer Nourin et al. observe).
var bogusAddr = [4]byte{127, 0, 0, 1}

// TMC is the Turkmenistan censor middlebox.
type TMC struct {
	Block censor.Blocklist
	// Censored counts censorship events.
	Censored int

	// poisoned maps server ip:port -> residual-censorship expiry
	// (lazily allocated; only HTTP/HTTPS tear-downs write it).
	poisoned map[string]time.Duration
}

// New builds the TMC. The rng is unused (the model is deterministic) but
// accepted for constructor symmetry with the other censors.
func New(bl censor.Blocklist, _ *rand.Rand) *TMC {
	return &TMC{Block: bl}
}

// Name implements netsim.Middlebox.
func (c *TMC) Name() string { return "TMC" }

// CensoredCount returns the number of censorship events (eval harness
// interface).
func (c *TMC) CensoredCount() int { return c.Censored }

// servicePort returns the well-known port of the packet's flow (the DPI
// engine keyed by it), or 0 if neither endpoint is on a modeled port.
func servicePort(pkt *packet.Packet) uint16 {
	for _, p := range [...]uint16{53, 80, 443} {
		if pkt.TCP.DstPort == p || pkt.TCP.SrcPort == p {
			return p
		}
	}
	return 0
}

// isDNSQuery reports whether a DNS-over-TCP chunk frames a query (QR=0).
// The framing is a 2-byte length prefix, then the 12-byte header whose
// flags' top bit distinguishes queries from responses — without this check
// the engine would re-trigger on the real server's response, whose
// question section also carries the forbidden name.
func isDNSQuery(payload []byte) bool {
	return len(payload) >= 6 && payload[4]&0x80 == 0
}

// Process implements netsim.Middlebox. The TMC is on-path: it injects in
// both directions but never drops.
func (c *TMC) Process(pkt *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	port := servicePort(pkt)
	if port == 0 {
		return netsim.Verdict{}
	}
	m := metricsFor(protoForPort(port))

	// Residual censorship: a tainted server endpoint tears down every new
	// connection at the first ACK-bearing client packet (inclusive expiry,
	// like the GFW's poisoned windows).
	if c.poisoned != nil && dir == netsim.ToServer && pkt.TCP.Flags&packet.FlagACK != 0 {
		key := serverKey(pkt.IP.Dst, pkt.TCP.DstPort)
		if exp, ok := c.poisoned[key]; ok {
			if now <= exp {
				c.Censored++
				m.censored.Inc()
				m.residual.Inc()
				return c.teardown(pkt, dir, "residual censorship", m)
			}
			delete(c.poisoned, key)
		}
	}

	payload := pkt.TCP.Payload
	if len(payload) == 0 {
		return netsim.Verdict{}
	}

	switch port {
	case 53:
		// Single-packet DNS engine: a segmented query never frames, so
		// the parser fails and the censor fails open (Strategy 8).
		if !isDNSQuery(payload) {
			break
		}
		name, ok := pkt.DNSQueryName()
		if !ok || !c.Block.MatchDomain(name) {
			break
		}
		c.Censored++
		m.censored.Inc()
		m.forged.Inc()
		// Forge the answer toward whichever side asked, impersonating
		// the other endpoint: the bogus response outruns (and, at the
		// receiver's reassembler, shadows) the real one.
		resp := packet.Get(pkt.IP.Dst, pkt.IP.Src, pkt.TCP.DstPort, pkt.TCP.SrcPort)
		resp.IP.TTL = 64
		resp.TCP.Flags = packet.FlagPSH | packet.FlagACK
		resp.TCP.Seq = pkt.TCP.Ack
		resp.TCP.Ack = pkt.TCP.Seq + uint32(len(payload))
		resp.TCP.Window = 65535
		resp.TCP.Payload = append(resp.TCP.Payload[:0], apps.EncodeDNSResponse(name, bogusAddr)...)
		v := netsim.Verdict{Note: "forged DNS response for " + name}
		if dir == netsim.ToServer {
			v.InjectToClient = []*packet.Packet{resp}
		} else {
			v.InjectToServer = []*packet.Packet{resp}
		}
		return v
	case 80:
		// Anchored single-packet HTTP engine, run in both directions.
		// (Views are memoized on the packet; see packet.Packet.)
		if _, ok := pkt.HTTPRequestTarget(); !ok {
			break
		}
		host, ok := pkt.HTTPHostHeader()
		matched := ok && c.Block.MatchDomain(host)
		if !matched {
			if off := pkt.HTTPNextRequestOffset(); off > 0 {
				// Keep-alive pipelining: every request in the payload gets
				// its Host matched, not only the first (which was all the
				// engine used to examine).
				matched = packet.VisitHTTPRequests(pkt.TCP.Payload[off:], func(_, h string, hok bool) bool {
					if hok && c.Block.MatchDomain(h) {
						host = h
						return true
					}
					return false
				})
			}
		}
		if !matched {
			break
		}
		c.Censored++
		m.censored.Inc()
		c.taint(pkt, dir, now)
		return c.teardown(pkt, dir, "blocked Host "+host+"; bidirectional tear-down", m)
	case 443:
		// Single-packet SNI engine, run in both directions.
		sni, ok := pkt.TLSServerName()
		if !ok || !c.Block.MatchDomain(sni) {
			break
		}
		c.Censored++
		m.censored.Inc()
		c.taint(pkt, dir, now)
		return c.teardown(pkt, dir, "blocked SNI "+sni+"; bidirectional tear-down", m)
	}
	return netsim.Verdict{}
}

// teardown fabricates the TMC's two-sided tear-down: one RST toward the
// packet's receiver impersonating the sender, one toward the sender
// impersonating the receiver. All numbering is derived statelessly from
// the offending packet.
func (c *TMC) teardown(pkt *packet.Packet, dir netsim.Direction, note string, m *engineMetrics) netsim.Verdict {
	end := pkt.TCP.Seq + uint32(len(pkt.TCP.Payload))
	// Toward the receiver, as if the sender reset.
	fwd := censor.InjectRST(pkt.Flow(), pkt.Flow().Reverse(), end, pkt.TCP.Ack)
	// Toward the sender, as if the receiver reset.
	rev := censor.InjectRST(pkt.Flow().Reverse(), pkt.Flow(), pkt.TCP.Ack, end)
	m.rsts.Inc()
	m.rsts.Inc()
	v := netsim.Verdict{Note: note}
	if dir == netsim.ToServer {
		v.InjectToServer = []*packet.Packet{fwd}
		v.InjectToClient = []*packet.Packet{rev}
	} else {
		v.InjectToClient = []*packet.Packet{fwd}
		v.InjectToServer = []*packet.Packet{rev}
	}
	return v
}

// taint opens (or extends) the residual window for the offending flow's
// server endpoint — the side on the well-known port.
func (c *TMC) taint(pkt *packet.Packet, dir netsim.Direction, now time.Duration) {
	addr, port := pkt.IP.Dst, pkt.TCP.DstPort
	if dir == netsim.ToClient {
		addr, port = pkt.IP.Src, pkt.TCP.SrcPort
	}
	if c.poisoned == nil {
		c.poisoned = make(map[string]time.Duration)
	}
	key := serverKey(addr, port)
	if exp, ok := c.poisoned[key]; ok && exp >= now+ResidualWindow {
		return
	}
	c.poisoned[key] = now + ResidualWindow
}

func serverKey(addr netip.Addr, port uint16) string {
	return addr.String() + ":" + strconv.Itoa(int(port))
}

// ExportResidual implements censor.ResidualCarrier: it reports every
// still-live tainted server window as (key, time remaining at now).
// Expired entries are skipped, not deleted — Process owns the sweeping.
func (c *TMC) ExportResidual(now time.Duration, emit func(key string, remaining time.Duration)) {
	for k, exp := range c.poisoned {
		if now <= exp {
			emit(k, exp-now)
		}
	}
}

// SeedResidual implements censor.ResidualCarrier: it installs a tainted
// window expiring at expiry on this instance's clock. An existing longer
// window wins (max-merge), so seeding is idempotent and order-independent
// — the property the fleet's residual ledger relies on.
func (c *TMC) SeedResidual(key string, expiry time.Duration) {
	if exp, ok := c.poisoned[key]; ok && exp >= expiry {
		return
	}
	if c.poisoned == nil {
		c.poisoned = make(map[string]time.Duration)
	}
	c.poisoned[key] = expiry
}
