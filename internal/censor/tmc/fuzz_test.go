package tmc

import (
	"testing"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// FuzzTMCProcess: the TMC's three DPI engines run over arbitrary payloads
// in both directions. The censor must never panic, never drop (it is
// on-path), and only ever inject after recording a censorship event.
func FuzzTMCProcess(f *testing.F) {
	f.Add(apps.EncodeDNSQuery("www.wikipedia.org"), uint16(53), true)
	f.Add([]byte("GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n"), uint16(80), true)
	f.Add(apps.EncodeClientHello("www.wikipedia.org"), uint16(443), false)
	// Tricky corpus found while developing: a response re-carrying the
	// forbidden question (QR must gate it), a length prefix longer than
	// the segment, a header-only query, and a query on the wrong port.
	f.Add(apps.EncodeDNSResponse("www.wikipedia.org", [4]byte{93, 184, 216, 34}), uint16(53), false)
	f.Add([]byte{0xff, 0xff, 0, 0, 0, 0}, uint16(53), true)
	f.Add(apps.EncodeDNSQuery("www.wikipedia.org")[:14], uint16(53), true)
	f.Add(apps.EncodeDNSQuery("www.wikipedia.org"), uint16(5353), true)
	f.Add([]byte{}, uint16(443), true)
	f.Fuzz(func(t *testing.T, payload []byte, port uint16, toServer bool) {
		c := New(censor.Default(), nil)
		var p *packet.Packet
		dir := netsim.ToClient
		if toServer {
			dir = netsim.ToServer
			p = packet.New(cli, srv, 40000, port)
		} else {
			p = packet.New(srv, cli, port, 40000)
		}
		p.TCP.Flags = packet.FlagPSH | packet.FlagACK
		p.TCP.Seq = 1000
		p.TCP.Ack = 2000
		p.TCP.Payload = payload
		v := c.Process(p, dir, 0)
		if v.Drop {
			t.Fatal("the TMC dropped; it is on-path")
		}
		if len(v.InjectToClient)+len(v.InjectToServer) > 0 && c.CensoredCount() == 0 {
			t.Fatal("injected without recording a censorship event")
		}
	})
}
