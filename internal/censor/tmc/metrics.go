package tmc

import "geneva/internal/obs"

// engineMetrics is the counter set for one of the TMC's per-protocol DPI
// engines, mirroring the GFW's per-box discipline: every set is registered
// at package init, so nothing per-packet ever touches a map or allocates
// beyond the fixed protoForPort switch.
type engineMetrics struct {
	censored *obs.Counter // censorship verdicts (all causes)
	rsts     *obs.Counter // injected tear-down RSTs (both directions)
	forged   *obs.Counter // forged DNS responses injected
	residual *obs.Counter // verdicts caused by residual censorship
}

func newEngineMetrics(proto string) *engineMetrics {
	p := "censor.tmc." + proto + "."
	return &engineMetrics{
		censored: obs.NewCounter(p + "censored"),
		rsts:     obs.NewCounter(p + "injected_rsts"),
		forged:   obs.NewCounter(p + "forged_dns"),
		residual: obs.NewCounter(p + "residual_hits"),
	}
}

var engineMetricSets = map[string]*engineMetrics{
	"dns":   newEngineMetrics("dns"),
	"http":  newEngineMetrics("http"),
	"https": newEngineMetrics("https"),
}

func protoForPort(port uint16) string {
	switch port {
	case 53:
		return "dns"
	case 80:
		return "http"
	default:
		return "https"
	}
}

func metricsFor(proto string) *engineMetrics {
	return engineMetricSets[proto]
}
