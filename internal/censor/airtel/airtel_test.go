package airtel

import (
	"net/netip"
	"strings"
	"testing"

	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

var (
	cli = netip.MustParseAddr("10.1.0.2")
	srv = netip.MustParseAddr("198.51.100.9")
)

func forbiddenReq(port uint16) *packet.Packet {
	p := packet.New(cli, srv, 40000, port)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Seq = 1000
	p.TCP.Ack = 2000
	p.TCP.Payload = []byte("GET / HTTP/1.1\r\nHost: blocked.example\r\nAccept: */*\r\n\r\n")
	return p
}

func TestInjectsBlockPageAndRst(t *testing.T) {
	a := New(censor.Default(), nil)
	v := a.Process(forbiddenReq(80), netsim.ToServer, 0)
	if v.Drop {
		t.Error("Airtel is on-path; it cannot drop")
	}
	if len(v.InjectToClient) != 2 {
		t.Fatalf("injected %d packets, want block page + RST", len(v.InjectToClient))
	}
	page := v.InjectToClient[0]
	if page.TCP.Flags != packet.FlagFIN|packet.FlagPSH|packet.FlagACK {
		t.Errorf("block page flags = %s, want FPA", packet.FlagsString(page.TCP.Flags))
	}
	if !strings.Contains(string(page.TCP.Payload), "blocked") {
		t.Error("block page has no body")
	}
	// Stateless numbering: derived from the offending packet.
	if page.TCP.Seq != 2000 || page.TCP.Ack != 1000+uint32(len(forbiddenReq(80).TCP.Payload)) {
		t.Errorf("block page seq/ack = %d/%d", page.TCP.Seq, page.TCP.Ack)
	}
	if v.InjectToClient[1].TCP.Flags&packet.FlagRST == 0 {
		t.Error("no follow-up RST")
	}
	if a.CensoredCount() != 1 {
		t.Error("counter not incremented")
	}
}

func TestOnlyDefaultPort(t *testing.T) {
	a := New(censor.Default(), nil)
	if v := a.Process(forbiddenReq(8080), netsim.ToServer, 0); len(v.InjectToClient) != 0 {
		t.Error("censored on a non-default port")
	}
}

func TestStatelessNoHandshakeNeeded(t *testing.T) {
	a := New(censor.Default(), nil)
	// First packet ever seen is the forbidden request.
	if v := a.Process(forbiddenReq(80), netsim.ToServer, 0); len(v.InjectToClient) == 0 {
		t.Error("stateless censor required a handshake")
	}
}

func TestSegmentedRequestPasses(t *testing.T) {
	a := New(censor.Default(), nil)
	full := forbiddenReq(80).TCP.Payload
	for _, cut := range []int{5, 10, 20} {
		seg1 := forbiddenReq(80)
		seg1.TCP.Payload = full[:cut]
		seg2 := forbiddenReq(80)
		seg2.TCP.Payload = full[cut:]
		seg2.TCP.Seq += uint32(cut)
		if v := a.Process(seg1, netsim.ToServer, 0); len(v.InjectToClient) != 0 {
			t.Errorf("cut %d: first segment censored", cut)
		}
		if v := a.Process(seg2, netsim.ToServer, 0); len(v.InjectToClient) != 0 {
			t.Errorf("cut %d: second segment censored (no reassembly expected)", cut)
		}
	}
}

func TestServerDirectionIgnored(t *testing.T) {
	a := New(censor.Default(), nil)
	p := forbiddenReq(80)
	p.IP.Src, p.IP.Dst = srv, cli
	p.TCP.SrcPort, p.TCP.DstPort = 80, 40000
	if v := a.Process(p, netsim.ToClient, 0); len(v.InjectToClient) != 0 {
		t.Error("censored server-to-client traffic")
	}
}

func TestBenignHostPasses(t *testing.T) {
	a := New(censor.Default(), nil)
	p := forbiddenReq(80)
	p.TCP.Payload = []byte("GET / HTTP/1.1\r\nHost: allowed.example\r\n\r\n")
	if v := a.Process(p, netsim.ToServer, 0); len(v.InjectToClient) != 0 {
		t.Error("censored a benign host")
	}
}
