// Package airtel models the Airtel ISP middlebox in India (§5.2): a
// completely stateless on-path DPI engine for HTTP only.
//
// Properties from the paper:
//   - censors only on the protocol's default port (80);
//   - tracks no connection state at all — a forbidden request without any
//     handshake still elicits censorship;
//   - matches the blacklisted website in the Host: header of a single
//     packet; it cannot reassemble TCP segments, so inducing client
//     segmentation (Strategy 8) defeats it completely;
//   - on a match, injects an HTTP 200 block page on a FIN+PSH+ACK instead
//     of tearing down the connection, plus a follow-up RST for good
//     measure (Yadav et al.).
package airtel

import (
	"math/rand"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/obs"
	"geneva/internal/packet"
)

var mCensored = obs.NewCounter("censor.airtel.censored")

// Airtel is the India middlebox.
type Airtel struct {
	Block censor.Blocklist
	// Censored counts censorship events.
	Censored int
}

// New builds the censor. The rng is unused (Airtel's behaviour is
// deterministic) but accepted for interface symmetry with the other
// censors.
func New(bl censor.Blocklist, _ *rand.Rand) *Airtel {
	return &Airtel{Block: bl}
}

// Name implements netsim.Middlebox.
func (a *Airtel) Name() string { return "Airtel" }

// Process implements netsim.Middlebox.
func (a *Airtel) Process(pkt *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	if dir != netsim.ToServer || pkt.TCP.DstPort != 80 || len(pkt.TCP.Payload) == 0 {
		return netsim.Verdict{}
	}
	// The DPI pattern is anchored at a well-formed request line: a packet
	// that starts mid-request is not recognized as HTTP at all. This is
	// why inducing client segmentation (Strategy 8) wins 100% of the
	// time — neither segment looks like an HTTP request.
	if _, ok := apps.HTTPRequestTarget(pkt.TCP.Payload); !ok {
		return netsim.Verdict{}
	}
	host, ok := apps.HTTPHostHeader(pkt.TCP.Payload)
	if !ok || !a.Block.MatchDomain(host) {
		return netsim.Verdict{}
	}
	a.Censored++
	mCensored.Inc()
	// Stateless injection: all numbers are derived from the offending
	// packet itself.
	srvFlow := pkt.Flow().Reverse()
	seq := pkt.TCP.Ack
	ack := pkt.TCP.Seq + uint32(len(pkt.TCP.Payload))
	page := censor.BlockPage(srvFlow, seq, ack,
		"<html><body>This website has been blocked as per instructions of DoT.</body></html>")
	rst := censor.InjectRST(srvFlow, pkt.Flow(), seq+uint32(len(page.TCP.Payload))+1, ack)
	return netsim.Verdict{
		Note:           "blocked Host " + host,
		InjectToClient: []*packet.Packet{page, rst},
	}
}

// CensoredCount returns the number of censorship events (eval harness
// interface).
func (a *Airtel) CensoredCount() int { return a.Censored }
