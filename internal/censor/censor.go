// Package censor provides the machinery shared by all the nation-state
// censor models: blocklists, censor-relative flow bookkeeping, and the
// packet fabrication helpers (injected RSTs, block pages, and redirects).
//
// The concrete censors live in the subpackages gfw (China), india (the
// multi-ISP family: Airtel, Jio, Vodafone), iran, kazakh, and tmc
// (Turkmenistan), each implementing netsim.Middlebox with the mechanics
// the source papers reverse-engineer for that country.
package censor

import (
	"strings"
	"time"

	"geneva/internal/packet"
)

// ResidualCarrier is implemented by censor models that keep cross-connection
// residual-censorship state (the GFW's ~90 s poisoned server windows, §4.2).
// It is the narrow seam the sharded fleet harness merges censor state
// through: each simulated censor instance exports its live windows at a wave
// barrier and is re-seeded with the merged view before the next wave.
//
// Both methods use durations relative to the instance's own virtual clock:
// ExportResidual reports each live window as the time remaining until its
// expiry at `now`, and SeedResidual installs a window expiring at `expiry`
// on the instance's clock. Seeding never shortens an existing window
// (max-merge), so applying the same set of seeds in any order produces the
// same state — the property the fleet's determinism contract relies on.
type ResidualCarrier interface {
	ExportResidual(now time.Duration, emit func(key string, remaining time.Duration))
	SeedResidual(key string, expiry time.Duration)
}

// ParamShifter is implemented by censor models whose calibrated stochastic
// parameters can be re-tuned mid-run — the seam the fleet's censor-shift
// scenarios (and the co-evolution roadmap item) drive. Params maps
// parameter names to new values; a name may be bare ("prst", applied to
// every protocol box that has the parameter) or protocol-scoped
// ("http.prst"). Unknown names are ignored, so a shift written for one
// censor family can be applied across a mixed fleet. Implementations must
// be deterministic: the new values replace calibration constants and must
// not consult any randomness of their own.
type ParamShifter interface {
	ShiftParams(params map[string]float64)
}

// Blocklist is what a censor looks for, per §4.2 of the paper.
type Blocklist struct {
	// Domains are forbidden hostnames (DNS QNAMEs, HTTP Host headers,
	// TLS SNI values). A name matches if it equals or is a subdomain of
	// an entry.
	Domains []string
	// Keywords are forbidden strings in HTTP request targets and FTP
	// file names (e.g. "ultrasurf").
	Keywords []string
	// Emails are forbidden SMTP recipient addresses.
	Emails []string
}

// defaultBlocklist is built once: Default runs in every trial, and the
// lists are read-only, so sharing the backing arrays keeps rig construction
// off the allocator.
var defaultBlocklist = Blocklist{
	Domains:  []string{"www.wikipedia.org", "youtube.com", "blocked.example"},
	Keywords: []string{"ultrasurf", "falun"},
	Emails:   []string{"tibetalk@yahoo.com.cn"},
}

// Default returns the blocklist used throughout the experiments, mirroring
// the paper's triggers: the keyword "ultrasurf", the domains
// www.wikipedia.org (China HTTPS) and youtube.com (Iran HTTPS), a generic
// blocked web host, and the censored mailbox tibetalk@yahoo.com.cn. The
// returned value shares its backing arrays across calls; callers must not
// mutate the lists in place (append-and-assign is fine).
func Default() Blocklist {
	return defaultBlocklist
}

// New builds a blocklist with every entry normalized (lowercased, trailing
// dots and surrounding space stripped), so matching is case-insensitive no
// matter how the operator wrote the list. Prefer this over a struct literal:
// the Match methods also normalize entries defensively, but a pre-normalized
// list keeps their fast path allocation-free.
func New(domains, keywords, emails []string) Blocklist {
	return Blocklist{
		Domains:  normalizeAll(domains, normDomain),
		Keywords: normalizeAll(keywords, strings.ToLower),
		Emails:   normalizeAll(emails, normEmail),
	}
}

// Normalize returns a copy of b with every entry normalized, the same way
// New does. Harnesses apply it once to caller-supplied blocklists at rig
// construction.
func (b Blocklist) Normalize() Blocklist {
	return New(b.Domains, b.Keywords, b.Emails)
}

func normalizeAll(in []string, norm func(string) string) []string {
	if in == nil {
		return nil
	}
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = norm(s)
	}
	return out
}

func normDomain(d string) string {
	return strings.ToLower(strings.TrimSuffix(strings.TrimSpace(d), "."))
}

func normEmail(e string) string {
	return strings.ToLower(strings.TrimSpace(e))
}

// MatchDomain reports whether name is blocked (exact or subdomain match).
// Both the probed name and the blocklist entries are compared
// case-insensitively: a mixed-case entry ("Wikipedia.ORG") must block
// "wikipedia.org" and vice versa. Entry normalization here is free for
// already-normalized lists (strings.ToLower returns its argument unchanged),
// so the Default()-driven hot path stays allocation-free.
func (b Blocklist) MatchDomain(name string) bool {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	for _, d := range b.Domains {
		d = normDomain(d)
		if name == d || strings.HasSuffix(name, "."+d) {
			return true
		}
	}
	return false
}

// MatchKeyword reports whether s contains a blocked keyword
// (case-insensitively, on both sides).
func (b Blocklist) MatchKeyword(s string) bool {
	s = strings.ToLower(s)
	for _, k := range b.Keywords {
		if strings.Contains(s, strings.ToLower(k)) {
			return true
		}
	}
	return false
}

// MatchEmail reports whether addr is a blocked recipient
// (case-insensitively, on both sides).
func (b Blocklist) MatchEmail(addr string) bool {
	addr = strings.ToLower(strings.TrimSpace(addr))
	for _, e := range b.Emails {
		if addr == normEmail(e) {
			return true
		}
	}
	return false
}

// InjectRST fabricates the tear-down packet an on-path censor sends: a
// RST+ACK that will pass the victim's sequence checks because the censor
// copies the numbers from its TCB.
func InjectRST(from, to packet.Flow, seq, ack uint32) *packet.Packet {
	p := packet.Get(from.SrcAddr, from.DstAddr, from.SrcPort, from.DstPort)
	_ = to
	p.IP.TTL = 64
	p.TCP.Flags = packet.FlagRST | packet.FlagACK
	p.TCP.Seq = seq
	p.TCP.Ack = ack
	p.TCP.Window = 0
	return p
}

// BlockPage fabricates an injected HTTP 200 block page carried on a
// FIN+PSH+ACK, the shape Airtel and Kazakhstan use (§5.2, §5.3).
func BlockPage(from packet.Flow, seq, ack uint32, body string) *packet.Packet {
	p := packet.Get(from.SrcAddr, from.DstAddr, from.SrcPort, from.DstPort)
	p.IP.TTL = 64
	p.TCP.Flags = packet.FlagFIN | packet.FlagPSH | packet.FlagACK
	p.TCP.Seq = seq
	p.TCP.Ack = ack
	p.TCP.Window = 65535
	p.TCP.Payload = append(append(p.TCP.Payload[:0],
		"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nConnection: close\r\n\r\n"...), body...)
	return p
}

// Redirect302 fabricates an injected HTTP 302 redirect on a FIN+PSH+ACK —
// the Vodafone-style response Yadav et al. document for several Indian
// ISPs: instead of a block page or a tear-down, the censor outruns the real
// response with a redirect to its notice page.
func Redirect302(from packet.Flow, seq, ack uint32, location string) *packet.Packet {
	p := packet.Get(from.SrcAddr, from.DstAddr, from.SrcPort, from.DstPort)
	p.IP.TTL = 64
	p.TCP.Flags = packet.FlagFIN | packet.FlagPSH | packet.FlagACK
	p.TCP.Seq = seq
	p.TCP.Ack = ack
	p.TCP.Window = 65535
	p.TCP.Payload = append(append(append(p.TCP.Payload[:0],
		"HTTP/1.1 302 Found\r\nLocation: "...), location...),
		"\r\nConnection: close\r\n\r\n"...)
	return p
}
