// Package india models India's web censorship as an ISP *family* rather
// than a single middlebox. Yadav et al. ("Where The Light Gets In",
// IMC 2018 — see PAPERS.md) show that Indian censorship is implemented
// independently by each ISP, with mechanically different filtering and
// response behaviour; the paper's §5.2 Airtel measurements cover just one
// sibling of that family.
//
// All modeled ISPs share the same skeleton — a completely stateless
// on-path/in-path DPI engine that matches a single packet, never
// reassembles (so inducing client segmentation, Strategy 8, defeats every
// sibling), and censors only on the protocol's default port — and differ
// only in Params: which triggers they watch (HTTP Host, TLS SNI) and what
// they do on a match:
//
//   - Airtel (§5.2, Yadav et al.): HTTP only; injects an HTTP 200 block
//     page on a FIN+PSH+ACK plus a follow-up RST. Purely on-path: it
//     cannot drop.
//   - Jio (Yadav et al.): SNI-triggered blackholing on port 443 — the
//     offending ClientHello and every later client packet of the flow are
//     silently dropped for a window, so the client sees only timeouts.
//   - Vodafone (Yadav et al.): HTTP only; injects an HTTP 302 redirect to
//     the ISP's notice page instead of a block page, with no RST — the
//     real response is simply outrun.
//
// New siblings are a Params literal away; nothing else in the harness
// needs to know.
package india

import (
	"math/rand"
	"time"

	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// Action is what an ISP does when a trigger matches.
type Action int

const (
	// ActionNone: the ISP does not filter this trigger at all.
	ActionNone Action = iota
	// ActionBlockPage injects an HTTP 200 block page on a FIN+PSH+ACK,
	// plus a follow-up RST (Airtel).
	ActionBlockPage
	// ActionRedirect injects an HTTP 302 to the ISP's notice page, no RST
	// (Vodafone).
	ActionRedirect
	// ActionBlackhole drops the offending packet and every later client
	// packet of the flow for BlackholeWindow (Jio). In-path only.
	ActionBlackhole
)

// Params selects one ISP's behaviour within the shared stateless-DPI
// skeleton.
type Params struct {
	// ISP names the sibling ("airtel", "jio", "vodafone") — used for the
	// metric label and Name().
	ISP string
	// HTTP is the action on a forbidden Host header seen on port 80.
	HTTP Action
	// SNI is the action on a forbidden TLS SNI seen on port 443.
	SNI Action
	// BlackholeWindow is how long ActionBlackhole drops the client flow.
	BlackholeWindow time.Duration
	// BlockBody is the HTML body of an ActionBlockPage injection.
	BlockBody string
	// RedirectLocation is the Location target of an ActionRedirect
	// injection.
	RedirectLocation string
}

// Airtel returns the §5.2 Airtel calibration: stateless HTTP-only DPI
// that injects a DoT block page and a follow-up RST. This is byte-for-byte
// the behaviour of the original single-ISP Airtel model.
func Airtel() Params {
	return Params{
		ISP:       "airtel",
		HTTP:      ActionBlockPage,
		BlockBody: "<html><body>This website has been blocked as per instructions of DoT.</body></html>",
	}
}

// Jio returns the Jio calibration: SNI-triggered blackholing on port 443
// (Yadav et al. observed censorship via silent packet drops, leaving the
// client to time out).
func Jio() Params {
	return Params{
		ISP:             "jio",
		SNI:             ActionBlackhole,
		BlackholeWindow: time.Minute,
	}
}

// Vodafone returns the Vodafone calibration: HTTP-only DPI injecting a 302
// redirect to the ISP notice page.
func Vodafone() Params {
	return Params{
		ISP:              "vodafone",
		HTTP:             ActionRedirect,
		RedirectLocation: "http://www.vodafone.in/dot-compliance",
	}
}

// ISPs returns the modeled siblings in a fixed order.
func ISPs() []Params { return []Params{Airtel(), Jio(), Vodafone()} }

// India is one ISP's middlebox.
type India struct {
	Block censor.Blocklist
	P     Params
	// Censored counts censorship events.
	Censored int

	m *ispMetrics
	// blackholed maps an offending client flow to its drop-window expiry
	// (ActionBlackhole only; lazily allocated).
	blackholed map[packet.Flow]time.Duration
}

// New builds the ISP middlebox for params. The rng is unused (every Indian
// ISP model is deterministic) but accepted for interface symmetry with the
// other censors.
func New(p Params, bl censor.Blocklist, _ *rand.Rand) *India {
	return &India{Block: bl, P: p, m: metricsFor(p.ISP)}
}

// NewAirtel builds the Airtel sibling (the original §5.2 model).
func NewAirtel(bl censor.Blocklist, rng *rand.Rand) *India { return New(Airtel(), bl, rng) }

// Name implements netsim.Middlebox.
func (in *India) Name() string { return "India-" + in.P.ISP }

// Process implements netsim.Middlebox. Every sibling is stateless DPI over
// single client packets: no handshake needed, no reassembly, default ports
// only. Only ActionBlackhole keeps (per-flow expiry) state afterwards.
func (in *India) Process(pkt *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	if dir != netsim.ToServer {
		return netsim.Verdict{}
	}
	// Active blackhole: silently drop everything the offending client flow
	// sends until the window expires.
	if in.blackholed != nil {
		flow := pkt.Flow()
		if exp, ok := in.blackholed[flow]; ok {
			if now < exp {
				in.m.blackholed.Inc()
				return netsim.Verdict{Drop: true, Note: "blackholed"}
			}
			delete(in.blackholed, flow)
		}
	}
	if len(pkt.TCP.Payload) == 0 {
		return netsim.Verdict{}
	}
	action := ActionNone
	note := ""
	switch pkt.TCP.DstPort {
	case 80:
		if in.P.HTTP == ActionNone {
			break
		}
		// The DPI pattern is anchored at a well-formed request line: a
		// packet that starts mid-request is not recognized as HTTP at all.
		// This is why inducing client segmentation (Strategy 8) wins 100%
		// of the time — neither segment looks like an HTTP request.
		// (Memoized on the packet: the fleet stacks censors, and every one
		// of them asks for the same fields.)
		if _, ok := pkt.HTTPRequestTarget(); !ok {
			break
		}
		if host, ok := pkt.HTTPHostHeader(); ok && in.Block.MatchDomain(host) {
			action = in.P.HTTP
			note = "blocked Host " + host
		} else if off := pkt.HTTPNextRequestOffset(); off > 0 {
			// Keep-alive pipelining: the packet carries more than one
			// request, and the DPI matches the Host of each. Before this
			// scan the ISPs only ever looked at the first request of a
			// payload, so a forbidden request riding behind a benign one
			// slipped through every sibling.
			packet.VisitHTTPRequests(pkt.TCP.Payload[off:], func(_, h string, hok bool) bool {
				if hok && in.Block.MatchDomain(h) {
					action = in.P.HTTP
					note = "blocked Host " + h
					return true
				}
				return false
			})
		}
	case 443:
		if in.P.SNI == ActionNone {
			break
		}
		// Same single-packet anchor: a segmented ClientHello never parses.
		if sni, ok := pkt.TLSServerName(); ok && in.Block.MatchDomain(sni) {
			action = in.P.SNI
			note = "blocked SNI " + sni
		}
	}
	if action == ActionNone {
		return netsim.Verdict{}
	}
	in.Censored++
	in.m.censored.Inc()

	// Stateless injection: all numbers are derived from the offending
	// packet itself.
	srvFlow := pkt.Flow().Reverse()
	seq := pkt.TCP.Ack
	ack := pkt.TCP.Seq + uint32(len(pkt.TCP.Payload))
	switch action {
	case ActionBlockPage:
		page := censor.BlockPage(srvFlow, seq, ack, in.P.BlockBody)
		rst := censor.InjectRST(srvFlow, pkt.Flow(), seq+uint32(len(page.TCP.Payload))+1, ack)
		in.m.pages.Inc()
		in.m.rsts.Inc()
		return netsim.Verdict{
			Note:           note,
			InjectToClient: []*packet.Packet{page, rst},
		}
	case ActionRedirect:
		in.m.redirects.Inc()
		return netsim.Verdict{
			Note:           note + "; 302 injected",
			InjectToClient: []*packet.Packet{censor.Redirect302(srvFlow, seq, ack, in.P.RedirectLocation)},
		}
	case ActionBlackhole:
		if in.blackholed == nil {
			in.blackholed = make(map[packet.Flow]time.Duration)
		}
		in.blackholed[pkt.Flow()] = now + in.P.BlackholeWindow
		in.m.blackholed.Inc()
		return netsim.Verdict{Drop: true, Note: note + "; blackhole started"}
	}
	return netsim.Verdict{}
}

// CensoredCount returns the number of censorship events (eval harness
// interface).
func (in *India) CensoredCount() int { return in.Censored }
