package india

import "geneva/internal/obs"

// ispMetrics is the counter set for one ISP sibling, mirroring the GFW's
// per-box discipline: every set is registered at package init so nothing
// per-packet ever touches a map or allocates.
type ispMetrics struct {
	censored   *obs.Counter // censorship verdicts (all actions)
	pages      *obs.Counter // injected HTTP 200 block pages
	redirects  *obs.Counter // injected HTTP 302 redirects
	rsts       *obs.Counter // injected follow-up RSTs
	blackholed *obs.Counter // packets dropped by a blackhole (start + window)
}

func newISPMetrics(isp string) *ispMetrics {
	p := "censor.india." + isp + "."
	return &ispMetrics{
		censored:   obs.NewCounter(p + "censored"),
		pages:      obs.NewCounter(p + "injected_pages"),
		redirects:  obs.NewCounter(p + "injected_redirects"),
		rsts:       obs.NewCounter(p + "injected_rsts"),
		blackholed: obs.NewCounter(p + "blackholed_drops"),
	}
}

// ispMetricSets maps each modeled ISP to its registered counter set; the
// "other" set catches Params built outside the canonical family (tests,
// future siblings).
var ispMetricSets = map[string]*ispMetrics{
	"airtel":   newISPMetrics("airtel"),
	"jio":      newISPMetrics("jio"),
	"vodafone": newISPMetrics("vodafone"),
	"other":    newISPMetrics("other"),
}

func metricsFor(isp string) *ispMetrics {
	if m, ok := ispMetricSets[isp]; ok {
		return m
	}
	return ispMetricSets["other"]
}
