package india

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

var (
	cli = netip.MustParseAddr("10.1.0.2")
	srv = netip.MustParseAddr("198.51.100.9")
)

func forbiddenReq(port uint16) *packet.Packet {
	p := packet.New(cli, srv, 40000, port)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Seq = 1000
	p.TCP.Ack = 2000
	p.TCP.Payload = []byte("GET / HTTP/1.1\r\nHost: blocked.example\r\nAccept: */*\r\n\r\n")
	return p
}

func forbiddenHello(port uint16) *packet.Packet {
	p := packet.New(cli, srv, 40000, port)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Seq = 1000
	p.TCP.Ack = 2000
	p.TCP.Payload = apps.EncodeClientHello("www.wikipedia.org")
	return p
}

// --- Airtel: byte-identical to the original single-ISP model ---

func TestAirtelInjectsBlockPageAndRst(t *testing.T) {
	a := NewAirtel(censor.Default(), nil)
	v := a.Process(forbiddenReq(80), netsim.ToServer, 0)
	if v.Drop {
		t.Error("Airtel is on-path; it cannot drop")
	}
	if len(v.InjectToClient) != 2 {
		t.Fatalf("injected %d packets, want block page + RST", len(v.InjectToClient))
	}
	page := v.InjectToClient[0]
	if page.TCP.Flags != packet.FlagFIN|packet.FlagPSH|packet.FlagACK {
		t.Errorf("block page flags = %s, want FPA", packet.FlagsString(page.TCP.Flags))
	}
	if !strings.Contains(string(page.TCP.Payload), "blocked") {
		t.Error("block page has no body")
	}
	// Stateless numbering: derived from the offending packet.
	if page.TCP.Seq != 2000 || page.TCP.Ack != 1000+uint32(len(forbiddenReq(80).TCP.Payload)) {
		t.Errorf("block page seq/ack = %d/%d", page.TCP.Seq, page.TCP.Ack)
	}
	if v.InjectToClient[1].TCP.Flags&packet.FlagRST == 0 {
		t.Error("no follow-up RST")
	}
	if a.CensoredCount() != 1 {
		t.Error("counter not incremented")
	}
}

func TestAirtelOnlyDefaultPort(t *testing.T) {
	a := NewAirtel(censor.Default(), nil)
	if v := a.Process(forbiddenReq(8080), netsim.ToServer, 0); len(v.InjectToClient) != 0 {
		t.Error("censored on a non-default port")
	}
}

func TestAirtelStatelessNoHandshakeNeeded(t *testing.T) {
	a := NewAirtel(censor.Default(), nil)
	// First packet ever seen is the forbidden request.
	if v := a.Process(forbiddenReq(80), netsim.ToServer, 0); len(v.InjectToClient) == 0 {
		t.Error("stateless censor required a handshake")
	}
}

func TestAirtelIgnoresSNI(t *testing.T) {
	a := NewAirtel(censor.Default(), nil)
	if v := a.Process(forbiddenHello(443), netsim.ToServer, 0); len(v.InjectToClient) != 0 || v.Drop {
		t.Error("Airtel censored HTTPS; it filters HTTP only")
	}
}

func TestSegmentedRequestPassesEverySibling(t *testing.T) {
	for _, p := range ISPs() {
		a := New(p, censor.Default(), nil)
		full := forbiddenReq(80).TCP.Payload
		if p.SNI != ActionNone {
			full = forbiddenHello(443).TCP.Payload
		}
		port := uint16(80)
		if p.SNI != ActionNone {
			port = 443
		}
		for _, cut := range []int{5, 10, 20} {
			seg1 := forbiddenReq(port)
			seg1.TCP.Payload = full[:cut]
			seg2 := forbiddenReq(port)
			seg2.TCP.Payload = full[cut:]
			seg2.TCP.Seq += uint32(cut)
			if v := a.Process(seg1, netsim.ToServer, 0); len(v.InjectToClient) != 0 || v.Drop {
				t.Errorf("%s cut %d: first segment censored", p.ISP, cut)
			}
			if v := a.Process(seg2, netsim.ToServer, 0); len(v.InjectToClient) != 0 || v.Drop {
				t.Errorf("%s cut %d: second segment censored (no reassembly expected)", p.ISP, cut)
			}
		}
	}
}

func TestServerDirectionIgnoredEverySibling(t *testing.T) {
	for _, params := range ISPs() {
		a := New(params, censor.Default(), nil)
		p := forbiddenReq(80)
		p.IP.Src, p.IP.Dst = srv, cli
		p.TCP.SrcPort, p.TCP.DstPort = 80, 40000
		if v := a.Process(p, netsim.ToClient, 0); len(v.InjectToClient) != 0 || v.Drop {
			t.Errorf("%s: censored server-to-client traffic", params.ISP)
		}
	}
}

func TestBenignHostPasses(t *testing.T) {
	a := NewAirtel(censor.Default(), nil)
	p := forbiddenReq(80)
	p.TCP.Payload = []byte("GET / HTTP/1.1\r\nHost: allowed.example\r\n\r\n")
	if v := a.Process(p, netsim.ToServer, 0); len(v.InjectToClient) != 0 {
		t.Error("censored a benign host")
	}
}

// --- Jio: SNI-triggered blackholing ---

func TestJioBlackholesForbiddenSNI(t *testing.T) {
	j := New(Jio(), censor.Default(), nil)
	hello := forbiddenHello(443)
	v := j.Process(hello, netsim.ToServer, 0)
	if !v.Drop {
		t.Fatal("Jio did not drop the forbidden ClientHello")
	}
	if len(v.InjectToClient) != 0 || len(v.InjectToServer) != 0 {
		t.Error("Jio injected packets; it blackholes silently")
	}
	if j.CensoredCount() != 1 {
		t.Error("counter not incremented")
	}
	// Everything else the flow sends inside the window is dropped too —
	// even benign traffic.
	later := forbiddenHello(443)
	later.TCP.Payload = []byte("benign")
	later.TCP.Seq = 5000
	if v := j.Process(later, netsim.ToServer, 30*time.Second); !v.Drop {
		t.Error("follow-up packet inside the window not dropped")
	}
	// Past the window, the flow recovers.
	if v := j.Process(later, netsim.ToServer, 2*time.Minute); v.Drop {
		t.Error("packet after the window still dropped")
	}
}

func TestJioIgnoresHTTP(t *testing.T) {
	j := New(Jio(), censor.Default(), nil)
	if v := j.Process(forbiddenReq(80), netsim.ToServer, 0); v.Drop || len(v.InjectToClient) != 0 {
		t.Error("Jio censored plain HTTP; it filters SNI only")
	}
}

func TestJioOnlyDefaultPort(t *testing.T) {
	j := New(Jio(), censor.Default(), nil)
	if v := j.Process(forbiddenHello(8443), netsim.ToServer, 0); v.Drop {
		t.Error("censored on a non-default port")
	}
}

// --- Vodafone: injected 302 redirect ---

func TestVodafoneInjects302(t *testing.T) {
	vf := New(Vodafone(), censor.Default(), nil)
	v := vf.Process(forbiddenReq(80), netsim.ToServer, 0)
	if v.Drop {
		t.Error("Vodafone is on-path; it cannot drop")
	}
	if len(v.InjectToClient) != 1 {
		t.Fatalf("injected %d packets, want exactly the 302", len(v.InjectToClient))
	}
	inj := v.InjectToClient[0]
	if !strings.HasPrefix(string(inj.TCP.Payload), "HTTP/1.1 302 Found\r\nLocation: ") {
		t.Errorf("injected payload is not a 302: %q", inj.TCP.Payload)
	}
	if !strings.Contains(string(inj.TCP.Payload), "vodafone.in") {
		t.Error("302 does not point at the ISP notice page")
	}
	if inj.TCP.Seq != 2000 {
		t.Errorf("302 seq = %d, want the stateless 2000", inj.TCP.Seq)
	}
	if vf.CensoredCount() != 1 {
		t.Error("counter not incremented")
	}
}

func TestVodafoneIgnoresSNI(t *testing.T) {
	vf := New(Vodafone(), censor.Default(), nil)
	if v := vf.Process(forbiddenHello(443), netsim.ToServer, 0); v.Drop || len(v.InjectToClient) != 0 {
		t.Error("Vodafone censored HTTPS; it filters HTTP only")
	}
}

// Keep-alive pipelining: a forbidden request coalesced behind a benign one
// in a single packet used to pass every HTTP-filtering sibling — the DPI
// only ever looked at the first request of a payload.
func TestPipelinedForbiddenRequestCensored(t *testing.T) {
	const pipelined = "GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n" +
		"GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n"
	for _, params := range ISPs() {
		if params.HTTP == ActionNone {
			continue // Jio filters SNI only
		}
		a := New(params, censor.Default(), nil)
		p := forbiddenReq(80)
		p.TCP.Payload = []byte(pipelined)
		v := a.Process(p, netsim.ToServer, 0)
		if len(v.InjectToClient) == 0 {
			t.Errorf("%s: pipelined forbidden request not censored", params.ISP)
		}
		if !strings.Contains(v.Note, "blocked.example") {
			t.Errorf("%s: note %q does not name the matched host", params.ISP, v.Note)
		}
	}
}
