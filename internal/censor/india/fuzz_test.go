package india

import (
	"testing"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// FuzzIndiaProcess: every ISP sibling runs its stateless DPI over arbitrary
// client payloads on arbitrary ports. None may panic, and the on-path
// siblings (everything but Jio's blackhole) may never drop.
func FuzzIndiaProcess(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n"), uint16(80))
	f.Add(apps.EncodeClientHello("www.wikipedia.org"), uint16(443))
	// Tricky corpus found while developing: a request line with no Host, a
	// Host header with no request line (mid-stream segment), a truncated
	// ClientHello, and a ClientHello on the HTTP port.
	f.Add([]byte("GET /falun HTTP/1.1\r\n\r\n"), uint16(80))
	f.Add([]byte("ost: blocked.example\r\n\r\n"), uint16(80))
	f.Add(apps.EncodeClientHello("www.wikipedia.org")[:20], uint16(443))
	f.Add(apps.EncodeClientHello("blocked.example"), uint16(80))
	f.Add([]byte{}, uint16(443))
	f.Fuzz(func(t *testing.T, payload []byte, port uint16) {
		for _, params := range ISPs() {
			in := New(params, censor.Default(), nil)
			p := packet.New(cli, srv, 40000, port)
			p.TCP.Flags = packet.FlagPSH | packet.FlagACK
			p.TCP.Seq = 1000
			p.TCP.Ack = 2000
			p.TCP.Payload = payload
			v := in.Process(p, netsim.ToServer, 0)
			if v.Drop && params.HTTP != ActionBlackhole && params.SNI != ActionBlackhole {
				t.Fatalf("%s dropped but has no blackhole action", params.ISP)
			}
			if v.Drop && (len(v.InjectToClient) != 0 || len(v.InjectToServer) != 0) {
				t.Fatalf("%s both dropped and injected", params.ISP)
			}
			// Server-direction traffic is always a no-op for this family.
			rev := packet.New(srv, cli, port, 40000)
			rev.TCP.Payload = payload
			if rv := in.Process(rev, netsim.ToClient, time.Second); rv.Drop || len(rv.InjectToClient) != 0 {
				t.Fatalf("%s acted on server-to-client traffic", params.ISP)
			}
		}
	})
}
