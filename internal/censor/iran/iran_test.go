package iran

import (
	"net/netip"
	"testing"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

var (
	cli = netip.MustParseAddr("10.1.0.2")
	srv = netip.MustParseAddr("198.51.100.9")
)

func httpReq(host string, port uint16) *packet.Packet {
	p := packet.New(cli, srv, 40000, port)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Payload = []byte("GET / HTTP/1.1\r\nHost: " + host + "\r\n\r\n")
	return p
}

func TestBlackholesForbiddenHTTP(t *testing.T) {
	ir := New(censor.Default(), nil)
	v := ir.Process(httpReq("blocked.example", 80), netsim.ToServer, 0)
	if !v.Drop {
		t.Fatal("offending packet not dropped")
	}
	if len(v.InjectToClient)+len(v.InjectToServer) != 0 {
		t.Error("Iran injects nothing; it blackholes")
	}
	// Any later packet in the flow is dropped too...
	benign := httpReq("allowed.example", 80)
	if v := ir.Process(benign, netsim.ToServer, 30*time.Second); !v.Drop {
		t.Error("flow not blackholed 30s later")
	}
	// ...until the minute passes.
	if v := ir.Process(benign, netsim.ToServer, 61*time.Second); v.Drop {
		t.Error("blackhole outlived its 60s window")
	}
	if ir.CensoredCount() != 1 {
		t.Errorf("CensoredCount = %d", ir.CensoredCount())
	}
}

func TestBlackholesForbiddenSNI(t *testing.T) {
	ir := New(censor.Default(), nil)
	p := packet.New(cli, srv, 40000, 443)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Payload = apps.EncodeClientHello("youtube.com")
	if v := ir.Process(p, netsim.ToServer, 0); !v.Drop {
		t.Error("forbidden SNI not blackholed")
	}
}

func TestSegmentedClientHelloPasses(t *testing.T) {
	ir := New(censor.Default(), nil)
	hello := apps.EncodeClientHello("youtube.com")
	for _, cut := range []int{10, 40, len(hello) - 5} {
		p1 := packet.New(cli, srv, 41000, 443)
		p1.TCP.Flags = packet.FlagPSH | packet.FlagACK
		p1.TCP.Payload = hello[:cut]
		p2 := packet.New(cli, srv, 41000, 443)
		p2.TCP.Flags = packet.FlagPSH | packet.FlagACK
		p2.TCP.Payload = hello[cut:]
		if v := ir.Process(p1, netsim.ToServer, 0); v.Drop {
			t.Errorf("cut %d: first fragment blackholed", cut)
		}
		if v := ir.Process(p2, netsim.ToServer, 0); v.Drop {
			t.Errorf("cut %d: second fragment blackholed", cut)
		}
	}
}

func TestNonDefaultPortsUncensored(t *testing.T) {
	ir := New(censor.Default(), nil)
	if v := ir.Process(httpReq("blocked.example", 8080), netsim.ToServer, 0); v.Drop {
		t.Error("censored on a non-default port")
	}
	p := packet.New(cli, srv, 40000, 8443)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Payload = apps.EncodeClientHello("youtube.com")
	if v := ir.Process(p, netsim.ToServer, 0); v.Drop {
		t.Error("censored TLS on a non-default port")
	}
}

func TestServerDirectionUntouched(t *testing.T) {
	ir := New(censor.Default(), nil)
	ir.Process(httpReq("blocked.example", 80), netsim.ToServer, 0) // blackhole the flow
	resp := packet.New(srv, cli, 80, 40000)
	resp.TCP.Flags = packet.FlagPSH | packet.FlagACK
	resp.TCP.Payload = []byte("HTTP/1.1 200 OK\r\n\r\n")
	if v := ir.Process(resp, netsim.ToClient, time.Second); v.Drop {
		t.Error("server->client packets should pass (only the client flow is blackholed)")
	}
}

// Keep-alive pipelining: a forbidden request coalesced behind a benign one
// in a single packet used to pass — the DPI only ever matched the Host of
// the first request in a payload.
func TestPipelinedForbiddenRequestBlackholed(t *testing.T) {
	ir := New(censor.Default(), nil)
	p := packet.New(cli, srv, 40000, 80)
	p.TCP.Flags = packet.FlagPSH | packet.FlagACK
	p.TCP.Seq = 1000
	p.TCP.Ack = 2000
	p.TCP.Payload = []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n" +
		"GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n")
	if v := ir.Process(p, netsim.ToServer, 0); !v.Drop {
		t.Fatal("pipelined forbidden request not blackholed")
	}
	if ir.CensoredCount() != 1 {
		t.Errorf("Censored = %d, want 1", ir.CensoredCount())
	}
}
