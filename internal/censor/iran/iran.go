// Package iran models Iran's censorship middlebox (§5.2): stateless DPI
// over HTTP (port 80) and HTTPS SNI (port 443) that "blackholes" offenders.
//
// Properties from the paper:
//   - censors only on the protocols' default ports;
//   - no connection-state tracking: a forbidden request without a
//     handshake is censored;
//   - matches within a single packet (no reassembly): Strategy 8 wins;
//   - on a match, drops the offending packet and all future packets from
//     the client in that flow for one minute (no injection at all);
//   - DNS-over-TCP is no longer censored (contra Aryan et al.).
package iran

import (
	"math/rand"
	"time"

	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/obs"
	"geneva/internal/packet"
)

var (
	mCensored   = obs.NewCounter("censor.iran.censored")
	mBlackholed = obs.NewCounter("censor.iran.blackholed_drops")
)

// blackholeDuration is how long an offending client flow is dropped.
const blackholeDuration = time.Minute

// Iran is the Iranian middlebox.
type Iran struct {
	Block censor.Blocklist
	// Censored counts censorship events (new blackholes).
	Censored int

	blackholed map[packet.Flow]time.Duration
}

// New builds the censor (deterministic; rng accepted for symmetry).
func New(bl censor.Blocklist, _ *rand.Rand) *Iran {
	return &Iran{Block: bl, blackholed: make(map[packet.Flow]time.Duration)}
}

// Name implements netsim.Middlebox.
func (ir *Iran) Name() string { return "Iran" }

// Process implements netsim.Middlebox.
func (ir *Iran) Process(pkt *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	if dir != netsim.ToServer {
		return netsim.Verdict{}
	}
	flow := pkt.Flow()
	if exp, ok := ir.blackholed[flow]; ok {
		if now < exp {
			mBlackholed.Inc()
			return netsim.Verdict{Drop: true, Note: "blackholed"}
		}
		delete(ir.blackholed, flow)
	}
	if len(pkt.TCP.Payload) == 0 {
		return netsim.Verdict{}
	}
	matched := false
	switch pkt.TCP.DstPort {
	case 80:
		// Anchored at a well-formed request line, like Airtel: a
		// mid-request segment is not recognized as HTTP (Strategy 8).
		// Views are memoized on the packet, shared with any other censor
		// inspecting the same bytes.
		if _, ok := pkt.HTTPRequestTarget(); !ok {
			break
		}
		if host, ok := pkt.HTTPHostHeader(); ok && ir.Block.MatchDomain(host) {
			matched = true
		} else if off := pkt.HTTPNextRequestOffset(); off > 0 {
			// Keep-alive pipelining: every request in the packet gets its
			// Host matched, not just the first (which is all the DPI used
			// to look at).
			matched = packet.VisitHTTPRequests(pkt.TCP.Payload[off:], func(_, h string, hok bool) bool {
				return hok && ir.Block.MatchDomain(h)
			})
		}
	case 443:
		if sni, ok := pkt.TLSServerName(); ok && ir.Block.MatchDomain(sni) {
			matched = true
		}
	}
	if !matched {
		return netsim.Verdict{}
	}
	ir.Censored++
	mCensored.Inc()
	ir.blackholed[flow] = now + blackholeDuration
	return netsim.Verdict{Drop: true, Note: "blackhole started"}
}

// CensoredCount returns the number of censorship events (eval harness
// interface).
func (ir *Iran) CensoredCount() int { return ir.Censored }
