package gfw

import (
	"math/rand"
	"strings"
	"time"

	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// GFW is the composite Great Firewall: five per-protocol boxes colocated at
// one hop (§6, Figure 3b). Every box sees every packet — the GFW cannot
// know the application protocol during the handshake, so all processing
// engines track all flows — but only the box whose protocol matcher fires
// ever censors, and no box fails closed.
type GFW struct {
	Boxes []*Box
}

// New builds the GFW with the calibrated China parameters. All boxes share
// one RNG stream so a trial is reproducible from a single seed.
func New(bl censor.Blocklist, rng *rand.Rand) *GFW {
	g := &GFW{Boxes: make([]*Box, 0, len(chinaParams))}
	for _, p := range ChinaParams() {
		g.Boxes = append(g.Boxes, NewBox(p, bl, rng))
	}
	return g
}

// NewSingle builds a GFW with only the named protocol box active — used by
// the ablation experiments that contrast the multi-box and single-box
// architectures.
func NewSingle(protocol string, bl censor.Blocklist, rng *rand.Rand) *GFW {
	g := &GFW{}
	for _, p := range ChinaParams() {
		if p.Protocol == protocol {
			g.Boxes = append(g.Boxes, NewBox(p, bl, rng))
		}
	}
	return g
}

// Name implements netsim.Middlebox.
func (g *GFW) Name() string { return "GFW" }

// Box returns the box for the named protocol, or nil.
func (g *GFW) Box(protocol string) *Box {
	for _, b := range g.Boxes {
		if b.P.Protocol == protocol {
			return b
		}
	}
	return nil
}

// CensorshipEvents sums censorship events across all boxes.
func (g *GFW) CensorshipEvents() int {
	n := 0
	for _, b := range g.Boxes {
		n += b.Censored
	}
	return n
}

// Process implements netsim.Middlebox by fanning the packet out to every
// box and merging their verdicts. The GFW is on-path: it can inject but
// never drop.
func (g *GFW) Process(pkt *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	var out netsim.Verdict
	var notes []string
	// One canonical-key computation for all five boxes; the boxes also
	// share the packet's memoized app view, so the payload is parsed at
	// most once no matter how many boxes inspect it.
	key := pkt.Flow().Canonical()
	for _, b := range g.Boxes {
		v := b.processKeyed(key, pkt, dir, now)
		out.InjectToClient = append(out.InjectToClient, v.InjectToClient...)
		out.InjectToServer = append(out.InjectToServer, v.InjectToServer...)
		if v.Note != "" {
			notes = append(notes, b.P.Protocol+" box: "+v.Note)
		}
	}
	out.Note = strings.Join(notes, "; ")
	return out
}

// CensoredCount returns the number of censorship events across all boxes
// (eval harness interface).
func (g *GFW) CensoredCount() int { return g.CensorshipEvents() }

// ExportResidual implements censor.ResidualCarrier by fanning out to every
// box; only boxes whose parameters carry residual censorship (HTTP) have
// windows to report.
func (g *GFW) ExportResidual(now time.Duration, emit func(key string, remaining time.Duration)) {
	for _, b := range g.Boxes {
		if b.P.Residual > 0 {
			b.ExportResidual(now, emit)
		}
	}
}

// SeedResidual implements censor.ResidualCarrier; boxes without residual
// censorship ignore the seed.
func (g *GFW) SeedResidual(key string, expiry time.Duration) {
	for _, b := range g.Boxes {
		b.SeedResidual(key, expiry)
	}
}
