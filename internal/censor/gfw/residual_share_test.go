package gfw

import (
	"testing"
	"time"
)

// TestResidualExportSeed covers the ResidualCarrier contract the sharded
// fleet's barrier ledger depends on: exports are relative remaining
// durations, seeds max-merge (never shorten a live window), and a box whose
// parameters carry no residual censorship silently ignores seeds.
func TestResidualExportSeed(t *testing.T) {
	p := httpParamsAllOn()
	p.Residual = 90 * time.Second
	b := deterministic(p)

	export := func(now time.Duration) map[string]time.Duration {
		got := map[string]time.Duration{}
		b.ExportResidual(now, func(key string, remaining time.Duration) {
			got[key] = remaining
		})
		return got
	}

	if got := export(0); len(got) != 0 {
		t.Fatalf("fresh box exported %v, want nothing", got)
	}

	b.SeedResidual("198.51.100.9:80", 90*time.Second)
	if got := export(30 * time.Second); got["198.51.100.9:80"] != 60*time.Second {
		t.Errorf("export at t=30s: got %v, want 60s remaining", got)
	}

	// Max-merge: a shorter window must not clip the live one...
	b.SeedResidual("198.51.100.9:80", 50*time.Second)
	if got := export(30 * time.Second); got["198.51.100.9:80"] != 60*time.Second {
		t.Errorf("shorter seed clipped the window: got %v, want 60s remaining", got)
	}
	// ...and a longer one extends it.
	b.SeedResidual("198.51.100.9:80", 2*time.Minute)
	if got := export(30 * time.Second); got["198.51.100.9:80"] != 90*time.Second {
		t.Errorf("longer seed did not extend the window: got %v, want 90s remaining", got)
	}

	// Expired windows are not exported.
	if got := export(3 * time.Minute); len(got) != 0 {
		t.Errorf("export after expiry: got %v, want nothing", got)
	}

	// Boxes with Residual disabled must ignore seeds entirely.
	off := deterministic(httpParamsAllOff())
	off.SeedResidual("198.51.100.9:80", time.Hour)
	got := map[string]time.Duration{}
	off.ExportResidual(0, func(key string, remaining time.Duration) { got[key] = remaining })
	if len(got) != 0 {
		t.Errorf("residual-disabled box accepted a seed: %v", got)
	}
}

// TestResidualSeedOrderInvariant is the algebraic property the fleet's
// determinism proof leans on: folding the same set of windows in any order
// yields the same poisoned state, because seeding is a max-merge
// (commutative, associative, idempotent).
func TestResidualSeedOrderInvariant(t *testing.T) {
	p := httpParamsAllOn()
	p.Residual = 90 * time.Second
	windows := []struct {
		key string
		exp time.Duration
	}{
		{"198.51.100.9:80", 40 * time.Second},
		{"198.51.100.9:80", 90 * time.Second},
		{"198.51.100.9:80", 65 * time.Second},
		{"198.51.100.10:80", 30 * time.Second},
	}
	snapshot := func(order []int) map[string]time.Duration {
		b := deterministic(p)
		for _, i := range order {
			b.SeedResidual(windows[i].key, windows[i].exp)
		}
		got := map[string]time.Duration{}
		b.ExportResidual(0, func(key string, remaining time.Duration) { got[key] = remaining })
		return got
	}
	want := snapshot([]int{0, 1, 2, 3})
	if want["198.51.100.9:80"] != 90*time.Second || want["198.51.100.10:80"] != 30*time.Second {
		t.Fatalf("unexpected merged state: %v", want)
	}
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 0, 3, 2}, {2, 3, 0, 1}, {1, 1, 0, 2, 3, 3}} {
		got := snapshot(order)
		if len(got) != len(want) {
			t.Fatalf("order %v: %v, want %v", order, got, want)
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("order %v: key %s = %v, want %v", order, k, got[k], v)
			}
		}
	}
}
