package gfw

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strconv"
	"time"

	"geneva/internal/apps"
	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

// resyncTarget says which future packet a box in the resynchronization
// state will re-sync its TCB on.
type resyncTarget int

const (
	resyncNone resyncTarget = iota
	// resyncNextClientPkt: the very next packet from the client
	// (triggers 2 and 3).
	resyncNextClientPkt
	// resyncServerSAOrClientAck: the next SYN+ACK from the server or the
	// next ACK-flagged packet from the client, whichever comes first
	// (trigger 1).
	resyncServerSAOrClientAck
)

// resyncReason records why the box most recently entered/consumed a resync,
// which changes its later behaviour (§5.1: "depending on the reason the GFW
// enters the resynchronization state, it behaves differently").
type resyncReason int

const (
	reasonNone resyncReason = iota
	reasonServerLoad
	reasonServerRst
	reasonCorruptAck
	reasonLoadSA
)

// tcb is one box's per-flow transmission control block.
type tcb struct {
	clientAddr netip.Addr
	clientPort uint16
	serverAddr netip.Addr
	serverPort uint16
	srvKey     string // memoized residual-censorship key ("ip:port")

	clientISS     uint32
	expClient     uint32 // next expected client sequence number
	expServer     uint32 // next expected server sequence number
	haveServerISN bool

	stream      []byte // reassembled client stream (if the box reassembles)
	reassembles bool

	target       resyncTarget
	reason       resyncReason
	sawSrvRst    bool
	sawClientAck bool // the client has sent an ACK-flagged packet
	resynced     bool // a resync actually rewrote expClient
	torn         bool
	censored     bool
}

// fromClient reports whether pkt was sent by the host the box decided is
// the client (the SYN sender; §3).
func (t *tcb) fromClient(p *packet.Packet) bool {
	return p.IP.Src == t.clientAddr && p.TCP.SrcPort == t.clientPort
}

// maxFlows bounds a box's TCB table. Real censors evict aggressively to
// survive at national scale (§2.1: "maintaining a TCB on a per-flow basis
// is challenging at scale, and thus on-path censors naturally take several
// shortcuts"); torn-down and dealt-with flows go first.
const maxFlows = 65536

// Box is one of the GFW's per-protocol censorship engines.
type Box struct {
	P     Params
	Block censor.Blocklist

	rng *rand.Rand
	m   *boxMetrics
	// The first tracked flow lives inline: the standard rig is one
	// connection per trial fanned out to five boxes, so keeping flow #1
	// out of the map means most trials never allocate per-flow state at
	// all. Additional concurrent flows spill into the flows map.
	flow0   packet.Flow
	tcb0    tcb
	have0   bool
	flows   map[packet.Flow]*tcb
	// free recycles TCBs of dealt-with flows (see dropFlow). At fleet
	// scale the table would otherwise accumulate one dead entry per
	// connection until the maxFlows sweep; recycling keeps the map sized
	// to the *live* flow population and reuses each TCB's reassembly
	// buffer across flows.
	free    []*tcb
	lastNow time.Duration
	// poisoned maps server ip:port -> residual-censorship expiry.
	poisoned map[string]time.Duration

	// Censored counts censorship events (for experiments).
	Censored int
	// Evicted counts TCBs dropped by the scale bound.
	Evicted int
}

// NewBox builds a box with its own RNG stream. The flow and poisoned
// tables are lazy: single-connection trials use the inline TCB slot, and
// only the box whose Params carry residual censorship (HTTP) ever writes
// the poisoned map, so the common trial allocates neither.
func NewBox(p Params, bl censor.Blocklist, rng *rand.Rand) *Box {
	return &Box{
		P:     p,
		Block: bl,
		rng:   rng,
		m:     metricsFor(p.Protocol),
	}
}

// lookup finds the TCB for a canonical flow key, or nil.
func (b *Box) lookup(key packet.Flow) *tcb {
	if b.have0 && key == b.flow0 {
		return &b.tcb0
	}
	return b.flows[key]
}

// addFlow claims a zeroed TCB slot for a new flow: the inline slot first,
// then a recycled TCB, then a fresh allocation into the spill map.
func (b *Box) addFlow(key packet.Flow) *tcb {
	if !b.have0 {
		b.have0 = true
		b.flow0 = key
		resetTCB(&b.tcb0)
		return &b.tcb0
	}
	if b.flows == nil {
		b.flows = make(map[packet.Flow]*tcb)
	}
	var t *tcb
	if n := len(b.free); n > 0 {
		t = b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
	} else {
		t = &tcb{}
	}
	b.flows[key] = t
	return t
}

// dropFlow retires a dealt-with flow's TCB immediately instead of leaving
// a tombstone for the maxFlows sweep. Semantically invisible: a torn TCB
// ignores every packet, and an absent TCB ignores every packet except a
// client SYN. Endpoints under long-horizon reconnect churn DO reuse
// 4-tuples (the ephemeral-port counter wraps), but both TCB states handle
// the reused tuple's SYN the same way: an absent TCB tracks it fresh, and a
// present one re-tracks via the stale-TCB resync in processKeyed.
func (b *Box) dropFlow(key packet.Flow, t *tcb) {
	if t == &b.tcb0 {
		b.have0 = false
		return
	}
	delete(b.flows, key)
	resetTCB(t)
	b.free = append(b.free, t)
}

// resetTCB zeroes a TCB while keeping its reassembly buffer's capacity for
// the next flow.
func resetTCB(t *tcb) {
	stream := t.stream[:0]
	*t = tcb{}
	t.stream = stream
}

// flowCount is the number of tracked flows across the inline slot and the
// spill map.
func (b *Box) flowCount() int {
	n := len(b.flows)
	if b.have0 {
		n++
	}
	return n
}

// Name implements netsim.Middlebox.
func (b *Box) Name() string { return "GFW-" + b.P.Protocol }

// chance samples a Bernoulli with probability p.
func (b *Box) chance(p float64) bool { return b.rng.Float64() < p }

// Process implements netsim.Middlebox. Note it never looks at checksums:
// insertion packets with corrupted checksums are processed like any other.
func (b *Box) Process(pkt *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	return b.processKeyed(pkt.Flow().Canonical(), pkt, dir, now)
}

// processKeyed is Process with the canonical flow key precomputed: the
// composite GFW fans every packet to five boxes, and hashing the 4-tuple
// once instead of five times is a measurable win at fleet scale.
func (b *Box) processKeyed(key packet.Flow, pkt *packet.Packet, _ netsim.Direction, now time.Duration) netsim.Verdict {
	b.lastNow = now
	t := b.lookup(key)

	// TCB creation: only a client SYN creates state. Everything on an
	// unknown flow is ignored (the GFW tracks connections; it does not
	// censor stateless traffic, unlike India/Iran — §5.2).
	if t == nil {
		if pkt.TCP.Flags == packet.FlagSYN {
			if b.flowCount() >= maxFlows {
				b.evict()
			}
			t = b.addFlow(key)
			t.clientAddr, t.clientPort = pkt.IP.Src, pkt.TCP.SrcPort
			t.serverAddr, t.serverPort = pkt.IP.Dst, pkt.TCP.DstPort
			t.clientISS = pkt.TCP.Seq
			t.expClient = pkt.TCP.Seq + 1
			t.reassembles = !b.chance(b.P.PNoReassembly)
		}
		return netsim.Verdict{}
	}

	// Stale-TCB resync: a fresh client SYN with a *new* ISN on a tracked
	// 4-tuple means the endpoint reused the port for a new connection (an
	// endpoint that churns through >33k reconnects wraps its ephemeral-port
	// counter). The old TCB's sequence expectations belong to the previous
	// tenant; carrying them over would leave the box desynchronized for the
	// entire new connection — every request invisible to DPI. The box
	// re-tracks from the SYN. A retransmitted SYN (same ISN) is not a new
	// connection and leaves the TCB alone.
	if pkt.TCP.Flags == packet.FlagSYN && t.fromClient(pkt) && pkt.TCP.Seq != t.clientISS {
		b.m.tupleReuse.Inc()
		resetTCB(t)
		t.clientAddr, t.clientPort = pkt.IP.Src, pkt.TCP.SrcPort
		t.serverAddr, t.serverPort = pkt.IP.Dst, pkt.TCP.DstPort
		t.clientISS = pkt.TCP.Seq
		t.expClient = pkt.TCP.Seq + 1
		t.reassembles = !b.chance(b.P.PNoReassembly)
		return netsim.Verdict{}
	}

	v := b.dispatch(t, pkt, now)
	if t.torn {
		// The flow is dealt with (censored, torn down, or failed open):
		// retire its TCB now rather than leaving a tombstone around.
		b.dropFlow(key, t)
	}
	return v
}

// dispatch inspects one packet of a tracked, live flow.
func (b *Box) dispatch(t *tcb, pkt *packet.Packet, now time.Duration) netsim.Verdict {
	// Residual censorship (HTTP box): a poisoned server IP:port elicits
	// tear-down right after any new three-way handshake (§4.2). The expiry
	// is inclusive: a connection at exactly poison-time + 90s is still
	// censored, and the first packet after that boundary passes.
	if b.P.Residual > 0 && t.fromClient(pkt) && pkt.TCP.Flags&packet.FlagACK != 0 {
		if exp, ok := b.poisoned[b.serverKey(t)]; ok {
			if now <= exp {
				b.m.residual.Inc()
				return b.censorVerdict(t, "residual censorship")
			}
			delete(b.poisoned, b.serverKey(t))
		}
	}

	if t.fromClient(pkt) {
		return b.processClient(t, pkt)
	}
	return b.processServer(t, pkt)
}

// ExportResidual implements censor.ResidualCarrier: it reports every
// still-live poisoned server window as (key, time remaining at now). Expired
// entries are skipped, not deleted — Process and censorVerdict own the
// sweeping. The emit order is map order and therefore unspecified; callers
// needing determinism must fold with an order-independent merge.
func (b *Box) ExportResidual(now time.Duration, emit func(key string, remaining time.Duration)) {
	for k, exp := range b.poisoned {
		if now <= exp {
			emit(k, exp-now)
		}
	}
}

// SeedResidual implements censor.ResidualCarrier: it installs a poisoned
// window for a server key, expiring at expiry on this box's clock. An
// existing longer window wins (max-merge), so seeding is idempotent and
// order-independent. Boxes without residual censorship ignore the seed.
func (b *Box) SeedResidual(key string, expiry time.Duration) {
	if b.P.Residual <= 0 {
		return
	}
	if exp, ok := b.poisoned[key]; ok && exp >= expiry {
		return
	}
	if b.poisoned == nil {
		b.poisoned = make(map[string]time.Duration)
	}
	b.poisoned[key] = expiry
}

// serverKey returns the residual-censorship key for t's server, formatted
// once per TCB instead of once per packet.
func (b *Box) serverKey(t *tcb) string {
	if t.srvKey == "" {
		t.srvKey = t.serverAddr.String() + ":" + strconv.Itoa(int(t.serverPort))
	}
	return t.srvKey
}

// processServer applies the resynchronization triggers, which all key off
// server behaviour during/around the handshake.
func (b *Box) processServer(t *tcb, pkt *packet.Packet) netsim.Verdict {
	tc := &pkt.TCP
	isSA := tc.Flags == packet.FlagSYN|packet.FlagACK
	hasRST := tc.Flags&packet.FlagRST != 0
	hasLoad := len(tc.Payload) > 0

	switch {
	case hasRST:
		// Trigger 2. A server RST never tears the TCB down (§3): at
		// most it desynchronizes the box.
		t.sawSrvRst = true
		if b.chance(b.P.PRst) {
			b.m.resyncRst.Inc()
			t.target = resyncNextClientPkt
			t.reason = reasonServerRst
		}
	case isSA:
		// A server SYN+ACK in trigger-1 resync mode is itself a resync
		// target: the box adopts its numbers — including a corrupted
		// ack — as ground truth (Strategy 6).
		if t.target == resyncServerSAOrClientAck {
			t.expServer = tc.Seq + 1
			t.haveServerISN = true
			t.expClient = tc.Ack
			t.resynced = true
			t.target = resyncNone
			return netsim.Verdict{}
		}
		corruptAck := tc.Ack != t.clientISS+1
		switch {
		case corruptAck && b.chance(b.P.PCorruptAck):
			// Trigger 3 (FTP only in practice).
			b.m.resyncCorrupt.Inc()
			t.target = resyncNextClientPkt
			t.reason = reasonCorruptAck
		case hasLoad && b.chance(b.P.PLoadSA):
			// Payload-bearing SYN+ACK (observed for FTP, Strategy 5).
			b.m.resyncLoadSA.Inc()
			t.target = resyncNextClientPkt
			t.reason = reasonLoadSA
		}
		if !corruptAck {
			// Adopt the SYN+ACK's ISN — but once locked on, a duplicate
			// SYN+ACK claiming a wildly different sequence number (a
			// would-be desynchronization of the box's server-side
			// numbers) is ignored, like any implausible jump.
			if !t.haveServerISN || tc.Seq+1-t.expServer < 1<<20 {
				t.expServer = tc.Seq + 1
			}
			t.haveServerISN = true
			// Window sanity: a SYN+ACK advertising a window too small
			// to carry a single command, with no window scaling, makes
			// flow-control segmentation inevitable. A box that cannot
			// reassemble gives up on such a flow — failing open (§6).
			// This is why TCP Window Reduction defeats SMTP censorship
			// 100% of the time and FTP ~47% (Table 2, row 8).
			if !t.reassembles &&
				(b.P.Protocol == "ftp" || b.P.Protocol == "smtp") &&
				tc.Window < 64 && tc.Option(packet.OptWScale) == nil {
				b.m.failOpen.Inc()
				t.torn = true
			}
		}
		// Payload accounting bug (FTP box only — §6: each box has its
		// own bugs): the payload is counted into the server sequence
		// expectation even though clients ignore it, which blocks the
		// clean-ACK re-acquisition above (Strategy 5 vs Strategy 4).
		if hasLoad && !corruptAck && b.P.PayloadAccounting {
			t.expServer += uint32(len(tc.Payload))
		}
	default:
		// A bare SYN from the server (a strategy simulating simultaneous
		// open) still teaches the box the server's ISN — the GFW tracks
		// both directions to fabricate acceptable tear-down packets.
		if tc.Flags&packet.FlagSYN != 0 && !t.haveServerISN {
			t.expServer = tc.Seq + 1
			t.haveServerISN = true
		}
		// Trigger 1: a payload on a non-SYN+ACK packet from the server
		// *during the handshake* (before the box has seen any
		// ACK-flagged packet from the client). Ordinary server data —
		// an FTP or SMTP greeting — arrives after the client's
		// handshake ACK and does not re-enter the resync state.
		if hasLoad && !t.sawClientAck && b.chance(b.P.PLoad) {
			b.m.resyncLoad.Inc()
			t.target = resyncServerSAOrClientAck
			t.reason = reasonServerLoad
		}
		if t.haveServerISN && hasLoad {
			end := tc.Seq + uint32(len(tc.Payload))
			switch {
			case tc.Seq == t.expServer:
				t.expServer = end
			case t.sawClientAck && end-t.expServer < 1<<20:
				// Post-handshake the box tracks the server's actual
				// stream, recovering from any handshake-time payload
				// accounting (it overhears the genuine packets). The
				// high-water mark only moves forward, and only within a
				// plausible flight (1 MiB): retransmissions and
				// out-of-order duplicates never regress it, and
				// corrupt-sequence garbage never poisons it.
				t.expServer = end
			}
		}
	}
	return netsim.Verdict{}
}

func (b *Box) processClient(t *tcb, pkt *packet.Packet) netsim.Verdict {
	tc := &pkt.TCP
	hasACK := tc.Flags&packet.FlagACK != 0
	hasSYN := tc.Flags&packet.FlagSYN != 0
	hasRST := tc.Flags&packet.FlagRST != 0
	hasFIN := tc.Flags&packet.FlagFIN != 0
	if hasACK {
		defer func() { t.sawClientAck = true }()
	}

	// Resynchronization consumption.
	consumed := false
	switch t.target {
	case resyncNextClientPkt:
		consumed = true
	case resyncServerSAOrClientAck:
		consumed = hasACK
	}
	if consumed {
		// The box adopts this packet's sequence number as the client's
		// next expected byte. For a handshake-completing ACK that is
		// correct (seq == ISS+1 == first data byte). For a
		// simultaneous-open SYN+ACK it is off by one (seq == ISS; data
		// starts at ISS+1) — the paper's central GFW bug. For an
		// induced RST it is whatever garbage the ack corruption chose.
		t.expClient = tc.Seq
		t.target = resyncNone
		t.resynced = true
		if hasRST || hasFIN {
			// Re-syncing onto a tear-down packet does not tear the TCB
			// down — the §5.1 Strategy 7 follow-up experiment shows the
			// GFW censors a request whose seq is adjusted to match.
			return netsim.Verdict{}
		}
		// Fall through: a data-bearing resync target is still inspected.
	}

	// Clean-ACK re-acquisition: a box desynchronized via trigger 3 that
	// then observes a plausible *handshake-completing* ACK (the client's
	// first ACK-flagged packet, with the correct server ack and no
	// payload or other flags) re-acquires the flow. Blocked when the ack
	// number disagrees with the (payload-inflated, FTP-box-only) server
	// expectation or when a server RST was seen.
	reacquirable := t.reason == reasonCorruptAck ||
		(b.P.ReacquireAfterRst && t.reason == reasonServerRst)
	if t.resynced && reacquirable && (!t.sawSrvRst || b.P.ReacquireAfterRst) &&
		!t.sawClientAck &&
		hasACK && !hasSYN && !hasRST && !hasFIN && len(tc.Payload) == 0 &&
		t.haveServerISN && tc.Ack == t.expServer &&
		b.chance(b.P.PReacquire) {
		b.m.reacquired.Inc()
		t.expClient = tc.Seq
		t.resynced = false
	}

	// Tear-down: honoured only from the client, and only with a valid
	// sequence number (§2.1, §3).
	if (hasRST || hasFIN) && tc.Seq == t.expClient {
		t.torn = true
		return netsim.Verdict{}
	}
	if hasRST {
		return netsim.Verdict{} // invalid RST: ignored
	}

	// DPI over client data.
	if len(tc.Payload) > 0 && !hasSYN {
		if tc.Seq != t.expClient {
			return netsim.Verdict{} // desynchronized: invisible to DPI
		}
		var scan []byte
		// usePkt: the bytes under inspection are exactly this packet's
		// payload, so the packet's memoized app view (shared across all
		// five boxes and any other censor on the path) can answer instead
		// of re-parsing. True for a non-reassembling box, and for a
		// reassembling one whose stream began with this segment.
		usePkt := true
		if t.reassembles {
			usePkt = len(t.stream) == 0
			t.stream = append(t.stream, tc.Payload...)
			scan = t.stream
		} else {
			// A non-reassembling box inspects each segment alone. For
			// the line-based protocols (FTP, SMTP) a segment holding a
			// *partial* command line is unparseable, and the box gives
			// up on the flow entirely — failing open, never closed
			// (§6). This is what makes TCP Window Reduction 100%
			// effective against SMTP and ~47% against FTP (Table 2,
			// row 8): the split HELO/USER command poisons the flow for
			// the box.
			if (b.P.Protocol == "ftp" || b.P.Protocol == "smtp") &&
				!bytes.HasSuffix(tc.Payload, []byte("\r\n")) {
				b.m.failOpen.Inc()
				t.torn = true
				return netsim.Verdict{}
			}
			scan = tc.Payload
		}
		t.expClient += uint32(len(tc.Payload))
		if b.matches(pkt, scan, usePkt) && !b.chance(b.P.PMiss) {
			return b.censorVerdict(t, "forbidden "+b.P.Protocol+" request")
		}
	}
	return netsim.Verdict{}
}

// matches runs this box's protocol-specific DPI over the client stream.
// Anything unparseable fails open (§6). When usePkt is set, stream is
// exactly pkt's payload and the packet's memoized app view answers without
// re-parsing; a multi-segment reassembled stream is parsed directly.
func (b *Box) matches(pkt *packet.Packet, stream []byte, usePkt bool) bool {
	switch b.P.Protocol {
	case "dns":
		if usePkt {
			if name, ok := pkt.DNSQueryName(); ok {
				return b.Block.MatchDomain(name)
			}
		} else if name, ok := packet.ParseDNSQueryName(stream); ok {
			return b.Block.MatchDomain(name)
		}
	case "ftp":
		if f, ok := apps.FTPRetrTarget(stream); ok {
			return b.Block.MatchKeyword(f)
		}
	case "http":
		// The first request is checked exactly as before (memoized view on
		// the usePkt path); a keep-alive client that coalesces several
		// requests into one segment or stream then gets every follow-up
		// request scanned too. Before that scan existed the box censored
		// only the *first* request of a payload — a forbidden request
		// pipelined behind a benign one sailed through.
		if usePkt {
			if target, ok := pkt.HTTPRequestTarget(); ok && b.Block.MatchKeyword(target) {
				return true
			}
			if host, ok := pkt.HTTPHostHeader(); ok && b.Block.MatchDomain(host) {
				return true
			}
			if off := pkt.HTTPNextRequestOffset(); off > 0 {
				return packet.VisitHTTPRequests(pkt.TCP.Payload[off:], b.matchHTTPRequest)
			}
			return false
		}
		if target, ok := packet.ParseHTTPRequestTarget(stream); ok && b.Block.MatchKeyword(target) {
			return true
		}
		if host, ok := packet.ParseHTTPHostHeader(stream); ok && b.Block.MatchDomain(host) {
			return true
		}
		if off := packet.NextHTTPRequestOffset(stream); off > 0 {
			return packet.VisitHTTPRequests(stream[off:], b.matchHTTPRequest)
		}
	case "https":
		if usePkt {
			if sni, ok := pkt.TLSServerName(); ok {
				return b.Block.MatchDomain(sni)
			}
		} else if sni, ok := packet.ParseTLSServerName(stream); ok {
			return b.Block.MatchDomain(sni)
		}
	case "smtp":
		if rcpt, ok := apps.SMTPRcptTarget(stream); ok {
			return b.Block.MatchEmail(rcpt)
		}
	}
	return false
}

// matchHTTPRequest is the per-request predicate for the pipelined follow-up
// scan: the same keyword-on-target / domain-on-Host pair the first-request
// path applies.
func (b *Box) matchHTTPRequest(target, host string, hok bool) bool {
	return b.Block.MatchKeyword(target) || (hok && b.Block.MatchDomain(host))
}

// censorVerdict fabricates the GFW's tear-down: RST+ACK triples to the
// client and a RST to the server, numbered from the TCB so the endpoints
// accept them (§2.1).
func (b *Box) censorVerdict(t *tcb, note string) netsim.Verdict {
	b.Censored++
	b.m.censored.Inc()
	t.censored = true
	t.torn = true // the box considers the connection dealt with
	if b.P.Residual > 0 {
		if b.poisoned == nil {
			b.poisoned = make(map[string]time.Duration)
		}
		// Sweep dead entries before adding one. Expired servers that no
		// client ever revisits are otherwise never deleted (the lookup in
		// Process only clears the key it hits), so a long evolve run against
		// many servers would grow the map without bound. Sweeping here keeps
		// the table no larger than the set of currently-poisoned servers,
		// and the now-based predicate is deterministic regardless of map
		// iteration order.
		for k, exp := range b.poisoned {
			if b.lastNow > exp {
				b.m.residualSwept.Inc()
				delete(b.poisoned, k)
			}
		}
		b.poisoned[b.serverKey(t)] = b.lastNow + b.P.Residual
	}
	srvFlow := packet.Flow{
		SrcAddr: t.serverAddr, SrcPort: t.serverPort,
		DstAddr: t.clientAddr, DstPort: t.clientPort,
	}
	cliFlow := srvFlow.Reverse()
	v := netsim.Verdict{Note: note}
	for i := 0; i < 3; i++ {
		v.InjectToClient = append(v.InjectToClient,
			censor.InjectRST(srvFlow, cliFlow, t.expServer, t.expClient))
	}
	v.InjectToServer = append(v.InjectToServer,
		censor.InjectRST(cliFlow, srvFlow, t.expClient, t.expServer))
	return v
}

// evict trims the flow table: dealt-with (torn) flows first, then
// arbitrary entries if the table is still full. The occasional live-flow
// eviction is itself faithful to real on-path censors, whose shortcuts
// under load are one source of the paper's baseline miss rates.
func (b *Box) evict() {
	if b.have0 && b.tcb0.torn {
		b.have0 = false
		b.Evicted++
		b.m.evicted.Inc()
	}
	for k, t := range b.flows {
		if t.torn {
			delete(b.flows, k)
			b.Evicted++
			b.m.evicted.Inc()
			if b.flowCount() < maxFlows/2 {
				return
			}
		}
	}
	for k := range b.flows {
		if b.flowCount() < maxFlows/2 {
			return
		}
		delete(b.flows, k)
		b.Evicted++
		b.m.evicted.Inc()
	}
}
