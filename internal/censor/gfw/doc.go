// Package gfw models China's Great Firewall as the paper reverse-engineers
// it: five *independent* censorship boxes — one per application protocol
// (DNS-over-TCP, FTP, HTTP, HTTPS, SMTP) — colocated at the same hop, each
// with its own network stack, TCB management, resynchronization-state
// handling, and bugs (§5.1, §6, Figure 3).
//
// Mechanics implemented per box (§5.1's revised resynchronization model):
//
//  1. A payload on a non-SYN+ACK packet from the server puts the box into a
//     resynchronization state that re-syncs on the next SYN+ACK from the
//     server or the next ACK-flagged packet from the client (all
//     protocols).
//  2. A RST from the server triggers resync on the next packet from the
//     client (all protocols except HTTPS).
//  3. A SYN+ACK with a corrupted acknowledgment number triggers resync on
//     the next packet from the client (FTP only).
//
// Plus the two bugs the strategies exploit:
//
//   - Simultaneous-open off-by-one: when a box re-syncs on a client
//     SYN+ACK, it assumes the sequence number was already incremented (as
//     it would be on a handshake-completing ACK), leaving the box
//     desynchronized by exactly one byte from the real connection.
//   - SYN+ACK payload accounting: a payload riding on a server SYN+ACK is
//     counted into the box's server-sequence expectation even though
//     clients ignore it, which blocks the clean-ACK re-acquisition below
//     (why Strategy 5 beats Strategy 4).
//
// Additional modeled behaviour: the GFW only honours tear-down packets from
// the connection's *client* (the SYN sender; §3); boxes never fail closed
// (§6); the HTTP box applies ~90 s of residual censorship to the server
// IP:port after a censorship event (§4.2); the SMTP box cannot reassemble
// TCP segments and the FTP box frequently cannot (Table 2, row 8); and no
// box validates TCP checksums (§7).
//
// The entry probabilities of the resynchronization state are measured but
// unexplained in the paper (~50% for most triggers); they are stochastic
// parameters here, calibrated per box against Table 2 (see DESIGN.md).
package gfw
