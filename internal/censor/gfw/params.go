package gfw

import "time"

// Params are one box's stochastic parameters. The mechanics (what each
// trigger does) are fixed by the paper's model; these probabilities are the
// measured-but-unexplained entry rates, calibrated against Table 2.
type Params struct {
	Protocol string

	// PMiss is the baseline DPI miss rate (the "No evasion" row).
	PMiss float64
	// PRst is the probability a server RST enters the resync state
	// (trigger 2; ~0 for HTTPS).
	PRst float64
	// PLoad is the probability a payload on a non-SYN+ACK server packet
	// during the handshake enters the resync state (trigger 1).
	PLoad float64
	// PCorruptAck is the probability a SYN+ACK with a corrupted ack
	// number enters the resync state (trigger 3; FTP only, ~0 elsewhere).
	PCorruptAck float64
	// PLoadSA is the probability a payload-bearing SYN+ACK enters the
	// resync state (observed for FTP in Strategy 5).
	PLoadSA float64
	// PNoReassembly is the per-flow probability the box cannot reassemble
	// TCP segments (1.0 for SMTP, ~0.45 for FTP, ~0 elsewhere).
	PNoReassembly float64
	// PReacquire is the probability a box desynchronized via trigger 3
	// re-acquires the flow from a clean handshake-completing ACK.
	PReacquire float64
	// PayloadAccounting enables the SYN+ACK payload accounting bug
	// (observed for the FTP box: Strategy 5 ≫ Strategy 4).
	PayloadAccounting bool
	// ReacquireAfterRst lets the box re-acquire from a clean
	// handshake-completing ACK even when the resync was entered via a
	// server RST (observed for the HTTPS box: Strategy 1 at 14% but
	// Strategy 7 at only 4%).
	ReacquireAfterRst bool
	// Residual is how long the (server IP, port) stays poisoned after a
	// censorship event (HTTP: ~90 s; others: 0).
	Residual time.Duration
}

// ChinaParams returns the five boxes' calibrated parameters. See DESIGN.md
// for the calibration table and the Table 2 cells each value is fit to.
func ChinaParams() []Params {
	return chinaParams[:]
}

// chinaParams is the shared backing for ChinaParams: the table is built
// once, and every caller copies the elements it customizes (Params is a
// value type), so sharing the array keeps GFW construction off the
// allocator. Treat it as read-only.
var chinaParams = [...]Params{
	{
		Protocol: "dns",
		PMiss:    0.007, PRst: 0.52, PLoad: 0.45,
		PCorruptAck: 0.09, PLoadSA: 0.02, PNoReassembly: 0.01,
		PReacquire: 0.5,
	},
	{
		Protocol: "ftp",
		PMiss:    0.03, PRst: 0.50, PLoad: 0.34,
		PCorruptAck: 0.64, PLoadSA: 0.91, PNoReassembly: 0.45,
		PReacquire: 0.5, PayloadAccounting: true,
	},
	{
		Protocol: "http",
		PMiss:    0.03, PRst: 0.52, PLoad: 0.51,
		PCorruptAck: 0.01, PLoadSA: 0.01, PNoReassembly: 0.0,
		PReacquire: 0.5,
		Residual:   90 * time.Second,
	},
	{
		Protocol: "https",
		PMiss:    0.03, PRst: 0.11, PLoad: 0.53,
		PCorruptAck: 0.01, PLoadSA: 0.01, PNoReassembly: 0.0,
		PReacquire: 0.5, ReacquireAfterRst: true,
	},
	{
		Protocol: "smtp",
		PMiss:    0.26, PRst: 0.58, PLoad: 0.44,
		PCorruptAck: 0.02, PLoadSA: 0.01, PNoReassembly: 1.0,
		PReacquire: 0.5,
	},
}
