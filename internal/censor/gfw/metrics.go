package gfw

import "geneva/internal/obs"

// boxMetrics is the counter set for one protocol box. The five GFW
// protocols are static, so every set is registered at package init and
// NewBox resolves its set with a single map lookup — nothing per-packet
// ever touches a map or allocates.
type boxMetrics struct {
	censored      *obs.Counter // censorship verdicts (all causes)
	residual      *obs.Counter // verdicts caused by residual censorship
	resyncLoad    *obs.Counter // trigger 1: payload from server mid-handshake
	resyncRst     *obs.Counter // trigger 2: server RST
	resyncCorrupt *obs.Counter // trigger 3: SYN+ACK with corrupt ack
	resyncLoadSA  *obs.Counter // payload-bearing SYN+ACK
	reacquired    *obs.Counter // clean-ACK re-acquisitions
	failOpen      *obs.Counter // flows the box gave up on (window sanity, partial line)
	evicted       *obs.Counter // TCBs dropped by the scale bound
	residualSwept *obs.Counter // expired residual entries swept
	tupleReuse    *obs.Counter // stale TCBs re-tracked on 4-tuple reuse
}

func newBoxMetrics(proto string) *boxMetrics {
	p := "censor.gfw." + proto + "."
	return &boxMetrics{
		censored:      obs.NewCounter(p + "censored"),
		residual:      obs.NewCounter(p + "residual_hits"),
		resyncLoad:    obs.NewCounter(p + "resync_server_load"),
		resyncRst:     obs.NewCounter(p + "resync_server_rst"),
		resyncCorrupt: obs.NewCounter(p + "resync_corrupt_ack"),
		resyncLoadSA:  obs.NewCounter(p + "resync_load_synack"),
		reacquired:    obs.NewCounter(p + "reacquired"),
		failOpen:      obs.NewCounter(p + "fail_open"),
		evicted:       obs.NewCounter(p + "evicted"),
		residualSwept: obs.NewCounter(p + "residual_swept"),
		tupleReuse:    obs.NewCounter(p + "tuple_reuse_resync"),
	}
}

// protoMetrics maps each protocol to its registered counter set. The
// "other" set catches boxes built with a protocol outside the canonical
// five (tests, future params).
var protoMetrics = map[string]*boxMetrics{
	"dns":   newBoxMetrics("dns"),
	"ftp":   newBoxMetrics("ftp"),
	"http":  newBoxMetrics("http"),
	"https": newBoxMetrics("https"),
	"smtp":  newBoxMetrics("smtp"),
	"other": newBoxMetrics("other"),
}

func metricsFor(proto string) *boxMetrics {
	if m, ok := protoMetrics[proto]; ok {
		return m
	}
	return protoMetrics["other"]
}
