package gfw

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

var (
	cli = netip.MustParseAddr("10.1.0.2")
	srv = netip.MustParseAddr("198.51.100.9")
)

// deterministic builds an HTTP box with every probabilistic trigger forced
// on or off, so unit tests exercise mechanics, not sampling.
func deterministic(p Params) *Box {
	return NewBox(p, censor.Default(), rand.New(rand.NewSource(1)))
}

func httpParamsAllOn() Params {
	return Params{
		Protocol: "http",
		PMiss:    0, PRst: 1, PLoad: 1, PCorruptAck: 1, PLoadSA: 1,
		PNoReassembly: 0, PReacquire: 1,
	}
}

func httpParamsAllOff() Params {
	return Params{Protocol: "http"}
}

// mk builds a packet between client and server.
func mk(fromClient bool, flags uint8, seq, ack uint32, payload string) *packet.Packet {
	var p *packet.Packet
	if fromClient {
		p = packet.New(cli, srv, 40000, 80)
	} else {
		p = packet.New(srv, cli, 80, 40000)
	}
	p.TCP.Flags = flags
	p.TCP.Seq = seq
	p.TCP.Ack = ack
	p.TCP.Payload = []byte(payload)
	return p
}

const (
	sa  = packet.FlagSYN | packet.FlagACK
	pa  = packet.FlagPSH | packet.FlagACK
	ack = packet.FlagACK
	syn = packet.FlagSYN
	rst = packet.FlagRST
	fin = packet.FlagFIN
)

// feed runs packets through the box in order; dir is inferred from src.
func feed(b *Box, pkts ...*packet.Packet) []netsim.Verdict {
	var out []netsim.Verdict
	for i, p := range pkts {
		dir := netsim.ToServer
		if p.IP.Src == srv {
			dir = netsim.ToClient
		}
		out = append(out, b.Process(p, dir, time.Duration(i)*time.Millisecond))
	}
	return out
}

const forbiddenGET = "GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n"

func handshake(iss, irs uint32) []*packet.Packet {
	return []*packet.Packet{
		mk(true, syn, iss, 0, ""),
		mk(false, sa, irs, iss+1, ""),
		mk(true, ack, iss+1, irs+1, ""),
	}
}

func TestCensorsForbiddenHTTPAfterHandshake(t *testing.T) {
	b := deterministic(httpParamsAllOff())
	pkts := append(handshake(100, 500), mk(true, pa, 101, 501, forbiddenGET))
	vs := feed(b, pkts...)
	last := vs[len(vs)-1]
	if len(last.InjectToClient) == 0 || len(last.InjectToServer) == 0 {
		t.Fatal("no tear-down injected for a forbidden request")
	}
	// The injected RSTs must carry TCB-accurate numbers.
	if got := last.InjectToClient[0].TCP.Seq; got != 501 {
		t.Errorf("RST to client seq = %d, want expServer 501", got)
	}
	// The server will have consumed the query, so the acceptable RST
	// carries the post-query sequence number.
	if got, want := last.InjectToServer[0].TCP.Seq, uint32(101+len(forbiddenGET)); got != want {
		t.Errorf("RST to server seq = %d, want expClient %d", got, want)
	}
	if b.Censored != 1 {
		t.Errorf("Censored = %d", b.Censored)
	}
}

func TestFailsOpenWithoutTCB(t *testing.T) {
	b := deterministic(httpParamsAllOff())
	vs := feed(b, mk(true, pa, 101, 501, forbiddenGET))
	if len(vs[0].InjectToClient) != 0 {
		t.Error("censored a flow with no TCB (the GFW requires a SYN)")
	}
}

func TestBenignRequestPasses(t *testing.T) {
	b := deterministic(httpParamsAllOff())
	pkts := append(handshake(100, 500), mk(true, pa, 101, 501, "GET /?q=kittens HTTP/1.1\r\nHost: example.com\r\n\r\n"))
	feed(b, pkts...)
	if b.Censored != 0 {
		t.Error("censored a benign request")
	}
}

func TestClientTeardownHonoredServerTeardownIgnored(t *testing.T) {
	// §3: a valid client RST deletes the TCB; a server RST never does.
	b := deterministic(httpParamsAllOff())
	pkts := append(handshake(100, 500),
		mk(true, rst, 101, 0, ""), // valid client RST
		mk(true, pa, 101, 501, forbiddenGET))
	feed(b, pkts...)
	if b.Censored != 0 {
		t.Error("request censored after a valid client tear-down")
	}

	b2 := deterministic(httpParamsAllOff()) // PRst = 0: no resync either
	pkts2 := append(handshake(100, 500),
		mk(false, rst, 501, 0, ""), // server RST
		mk(true, pa, 101, 501, forbiddenGET))
	feed(b2, pkts2...)
	if b2.Censored != 1 {
		t.Error("server RST affected the TCB; §3 says only client packets tear down")
	}
}

func TestInvalidClientRstIgnored(t *testing.T) {
	b := deterministic(httpParamsAllOff())
	pkts := append(handshake(100, 500),
		mk(true, rst, 0xdeadbeef, 0, ""), // garbage seq
		mk(true, pa, 101, 501, forbiddenGET))
	feed(b, pkts...)
	if b.Censored != 1 {
		t.Error("out-of-sync client RST tore down the TCB")
	}
}

func TestDesyncByOneEvades(t *testing.T) {
	// The client stream one byte off the TCB expectation is invisible.
	b := deterministic(httpParamsAllOff())
	pkts := append(handshake(100, 500), mk(true, pa, 100, 501, forbiddenGET))
	feed(b, pkts...)
	if b.Censored != 0 {
		t.Error("desynchronized request was censored")
	}
}

func TestSimultaneousOpenResyncBug(t *testing.T) {
	// Strategy-1 shape: server RST (resync), server SYN, client SYN+ACK.
	// The box must adopt the SYN+ACK's *unincremented* seq, leaving it
	// one byte behind the client's real data.
	b := deterministic(httpParamsAllOn())
	feed(b,
		mk(true, syn, 100, 0, ""),
		mk(false, rst, 500, 0, ""), // trigger 2 -> resync on next client pkt
		mk(false, syn, 500, 0, ""), // sim open
		mk(true, sa, 100, 501, ""), // client SYN+ACK reusing ISS
		mk(false, ack, 501, 101, ""),
		mk(true, pa, 101, 501, forbiddenGET), // real data at ISS+1
	)
	if b.Censored != 0 {
		t.Error("simultaneous-open desync did not evade")
	}
	// The §5.1 confirmation: a request rebased to ISS is censored.
	b2 := deterministic(httpParamsAllOn())
	feed(b2,
		mk(true, syn, 100, 0, ""),
		mk(false, rst, 500, 0, ""),
		mk(false, syn, 500, 0, ""),
		mk(true, sa, 100, 501, ""),
		mk(false, ack, 501, 101, ""),
		mk(true, pa, 100, 501, forbiddenGET), // seq decremented by 1
	)
	if b2.Censored != 1 {
		t.Error("seq-minus-one confirmation did not restore censorship")
	}
}

func TestResyncOnInducedRst(t *testing.T) {
	// Trigger 3 (corrupt-ack SYN+ACK) re-syncs on the next client packet
	// — the induced RST with a garbage seq — desynchronizing the box.
	p := httpParamsAllOn()
	p.PReacquire = 0
	b := deterministic(p)
	feed(b,
		mk(true, syn, 100, 0, ""),
		mk(false, sa, 500, 0xbad, ""), // corrupt ack -> trigger 3
		mk(false, sa, 500, 101, ""),   // the real SYN+ACK
		mk(true, rst, 0xbad, 0, ""),   // induced RST (seq = bogus ack)
		mk(true, ack, 101, 501, ""),
		mk(true, pa, 101, 501, forbiddenGET),
	)
	if b.Censored != 0 {
		t.Error("induced-RST resync did not desynchronize the box")
	}
}

func TestCleanAckReacquisition(t *testing.T) {
	// Same as above but with re-acquisition on: the clean handshake ACK
	// restores synchronization (Strategy 4 vs Strategy 3).
	b := deterministic(httpParamsAllOn()) // PReacquire = 1
	feed(b,
		mk(true, syn, 100, 0, ""),
		mk(false, sa, 500, 0xbad, ""),
		mk(false, sa, 500, 101, ""),
		mk(true, rst, 0xbad, 0, ""),
		mk(true, ack, 101, 501, ""), // clean ACK: re-acquire
		mk(true, pa, 101, 501, forbiddenGET),
	)
	if b.Censored != 1 {
		t.Error("clean-ACK re-acquisition did not restore censorship")
	}
}

func TestPayloadAccountingBlocksReacquisition(t *testing.T) {
	// Strategy 5 mechanics: a payload on the valid SYN+ACK inflates the
	// box's server expectation (FTP box bug), so the clean ACK no longer
	// matches and re-acquisition is blocked.
	p := httpParamsAllOn()
	p.PayloadAccounting = true
	b := deterministic(p)
	feed(b,
		mk(true, syn, 100, 0, ""),
		mk(false, sa, 500, 0xbad, ""),
		mk(false, sa, 500, 101, "xxxx"), // payload-bearing valid SYN+ACK
		mk(true, rst, 0xbad, 0, ""),
		mk(true, ack, 101, 501, ""), // acks 501; box expects 505
		mk(true, pa, 101, 501, forbiddenGET),
	)
	if b.Censored != 0 {
		t.Error("payload accounting failed to block re-acquisition")
	}
}

func TestTrigger1ResyncOnCorruptSynAck(t *testing.T) {
	// Strategy 6 mechanics: FIN+load enters resync (trigger 1); the next
	// server SYN+ACK — with a corrupted ack — is the resync target, and
	// its garbage ack becomes the client expectation.
	b := deterministic(httpParamsAllOn())
	feed(b,
		mk(true, syn, 100, 0, ""),
		mk(false, fin, 500, 0, "junk"), // trigger 1
		mk(false, sa, 500, 0xbad, ""),  // resync target: adopts ack 0xbad
		mk(false, sa, 500, 101, ""),
		mk(true, rst, 0xbad, 0, ""),
		mk(true, ack, 101, 501, ""),
		mk(true, pa, 101, 501, forbiddenGET),
	)
	if b.Censored != 0 {
		t.Error("trigger-1 resync onto corrupt SYN+ACK did not desync")
	}
}

func TestNoReassemblySplitKeywordEvades(t *testing.T) {
	p := httpParamsAllOff()
	p.PNoReassembly = 1
	b := deterministic(p)
	req := forbiddenGET
	pkts := append(handshake(100, 500),
		mk(true, pa, 101, 501, req[:10]),
		mk(true, pa, 111, 501, req[10:]))
	feed(b, pkts...)
	if b.Censored != 0 {
		t.Error("a box without reassembly censored a split keyword")
	}
	// The reassembling box catches the same split.
	b2 := deterministic(httpParamsAllOff())
	pkts2 := append(handshake(100, 500),
		mk(true, pa, 101, 501, req[:10]),
		mk(true, pa, 111, 501, req[10:]))
	feed(b2, pkts2...)
	if b2.Censored != 1 {
		t.Error("a reassembling box missed a split keyword")
	}
}

func TestWindowSanityGiveUp(t *testing.T) {
	// An SMTP box (no reassembly) gives up on a flow whose SYN+ACK
	// advertises a tiny unscaled window (Strategy 8 / row 8 of Table 2).
	p := Params{Protocol: "smtp", PNoReassembly: 1}
	b := deterministic(p)
	tiny := mk(false, sa, 500, 101, "")
	tiny.TCP.Window = 10
	feed(b,
		mk(true, syn, 100, 0, ""),
		tiny,
		mk(true, ack, 101, 501, ""),
		mk(true, pa, 101, 501, "RCPT TO:<tibetalk@yahoo.com.cn>\r\n"),
	)
	if b.Censored != 0 {
		t.Error("SMTP box censored despite the tiny-window give-up")
	}
}

func TestPartialCommandLinePoisonsLineBasedBox(t *testing.T) {
	p := Params{Protocol: "smtp", PNoReassembly: 1}
	b := deterministic(p)
	pkts := append(handshake(100, 500),
		mk(true, pa, 101, 501, "HELO clie"), // split command
		mk(true, pa, 110, 501, "nt\r\n"),
		mk(true, pa, 114, 501, "RCPT TO:<tibetalk@yahoo.com.cn>\r\n"))
	feed(b, pkts...)
	if b.Censored != 0 {
		t.Error("SMTP box censored after an unparseable split command")
	}
}

func TestResidualCensorship(t *testing.T) {
	p := httpParamsAllOff()
	p.Residual = 90 * time.Second
	b := deterministic(p)
	pkts := append(handshake(100, 500), mk(true, pa, 101, 501, forbiddenGET))
	feed(b, pkts...)
	if b.Censored != 1 {
		t.Fatal("initial censorship did not fire")
	}
	// A brand-new flow to the same server IP:port, right away.
	fresh := []*packet.Packet{
		mk(true, syn, 9000, 0, ""),
		mk(false, sa, 7000, 9001, ""),
		mk(true, ack, 9001, 7001, ""),
	}
	for i, pk := range fresh {
		fresh[i].TCP.SrcPort, fresh[i].TCP.DstPort = pk.TCP.SrcPort, pk.TCP.DstPort
	}
	// Re-number ports so it is a different flow.
	for _, pk := range fresh {
		if pk.IP.Src == cli {
			pk.TCP.SrcPort = 41000
		} else {
			pk.TCP.DstPort = 41000
		}
	}
	var verdicts []netsim.Verdict
	for i, pk := range fresh {
		dir := netsim.ToServer
		if pk.IP.Src == srv {
			dir = netsim.ToClient
		}
		verdicts = append(verdicts, b.Process(pk, dir, time.Duration(i)*time.Millisecond))
	}
	if len(verdicts[2].InjectToClient) == 0 {
		t.Error("no residual tear-down right after the handshake")
	}
	// After the window, the same shape passes.
	b.lastNow = 0
	later := []*packet.Packet{
		mk(true, syn, 9500, 0, ""),
		mk(false, sa, 7500, 9501, ""),
		mk(true, ack, 9501, 7501, ""),
	}
	for _, pk := range later {
		if pk.IP.Src == cli {
			pk.TCP.SrcPort = 42000
		} else {
			pk.TCP.DstPort = 42000
		}
	}
	ok := true
	for _, pk := range later {
		dir := netsim.ToServer
		if pk.IP.Src == srv {
			dir = netsim.ToClient
		}
		v := b.Process(pk, dir, 100*time.Second)
		if len(v.InjectToClient) > 0 {
			ok = false
		}
	}
	if !ok {
		t.Error("residual censorship outlived its 90s window")
	}
}

// residualProbe poisons the server at time 0 (expiry = 90s exactly) and
// then probes with a brand-new flow whose handshake-completing ACK arrives
// at probeAt. It reports whether the probe was residually censored.
func residualProbe(t *testing.T, probeAt time.Duration) bool {
	t.Helper()
	p := httpParamsAllOff()
	p.Residual = 90 * time.Second
	b := deterministic(p)
	for _, pk := range append(handshake(100, 500), mk(true, pa, 101, 501, forbiddenGET)) {
		dir := netsim.ToServer
		if pk.IP.Src == srv {
			dir = netsim.ToClient
		}
		b.Process(pk, dir, 0)
	}
	if b.Censored != 1 {
		t.Fatal("poisoning censorship did not fire")
	}
	probe := handshake(9000, 7000)
	for _, pk := range probe {
		if pk.IP.Src == cli {
			pk.TCP.SrcPort = 41000
		} else {
			pk.TCP.DstPort = 41000
		}
	}
	censored := false
	for _, pk := range probe {
		dir := netsim.ToServer
		if pk.IP.Src == srv {
			dir = netsim.ToClient
		}
		if v := b.Process(pk, dir, probeAt); len(v.InjectToClient) > 0 {
			censored = true
		}
	}
	return censored
}

// TestResidualExpiryBoundary pins the `<` vs `<=` edge: the residual window
// is inclusive of its 90th second — a handshake at exactly poison-time+90s
// is still torn down, and the first instant past it is not.
func TestResidualExpiryBoundary(t *testing.T) {
	if !residualProbe(t, 90*time.Second) {
		t.Error("handshake at exactly the 90s boundary escaped residual censorship")
	}
	if residualProbe(t, 90*time.Second+time.Nanosecond) {
		t.Error("handshake just past the 90s boundary was censored")
	}
}

// TestResidualMapBoundedGrowth drives censorship events against many
// distinct servers, spaced beyond the residual window, and checks the
// poisoned table does not accumulate expired entries a long evolve run
// would never revisit.
func TestResidualMapBoundedGrowth(t *testing.T) {
	p := httpParamsAllOff()
	p.Residual = 90 * time.Second
	b := deterministic(p)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		now := time.Duration(i) * 100 * time.Second // > 90s apart: all prior entries expired
		sport := uint16(8000 + i)                   // distinct server ip:port per round
		for _, pk := range append(handshake(100, 500), mk(true, pa, 101, 501, forbiddenGET)) {
			dir := netsim.ToServer
			if pk.IP.Src == cli {
				pk.TCP.DstPort = sport
			} else {
				pk.TCP.SrcPort = sport
				dir = netsim.ToClient
			}
			b.Process(pk, dir, now)
		}
	}
	if b.Censored != rounds {
		t.Fatalf("censored %d flows, want %d", b.Censored, rounds)
	}
	if got := len(b.poisoned); got > 1 {
		t.Errorf("poisoned table holds %d entries after %d expired-and-gone servers, want <= 1", got, rounds)
	}
}

func TestCompositeGFWFansOutAndNeverDrops(t *testing.T) {
	g := New(censor.Default(), rand.New(rand.NewSource(3)))
	if len(g.Boxes) != 5 {
		t.Fatalf("GFW has %d boxes, want 5", len(g.Boxes))
	}
	v := g.Process(mk(true, syn, 100, 0, ""), netsim.ToServer, 0)
	if v.Drop {
		t.Error("the on-path GFW dropped a packet")
	}
	if g.Box("ftp") == nil || g.Box("nope") != nil {
		t.Error("Box lookup broken")
	}
	single := NewSingle("http", censor.Default(), rand.New(rand.NewSource(4)))
	if len(single.Boxes) != 1 || single.Boxes[0].P.Protocol != "http" {
		t.Error("NewSingle broken")
	}
}

func TestChecksumIgnoredByBoxes(t *testing.T) {
	// An insertion packet with a corrupted checksum is processed normally.
	b := deterministic(httpParamsAllOff())
	bad := mk(true, pa, 101, 501, forbiddenGET)
	bad.TCP.RawChecksum = true
	bad.TCP.Checksum = 0x1234
	pkts := append(handshake(100, 500), bad)
	feed(b, pkts...)
	if b.Censored != 1 {
		t.Error("the box validated checksums; real censors do not (§7)")
	}
}

func TestMissRateSampling(t *testing.T) {
	p := httpParamsAllOff()
	p.PMiss = 1 // always miss
	b := deterministic(p)
	pkts := append(handshake(100, 500), mk(true, pa, 101, 501, forbiddenGET))
	feed(b, pkts...)
	if b.Censored != 0 {
		t.Error("PMiss=1 box still censored")
	}
}

func TestFlowTableBounded(t *testing.T) {
	b := deterministic(httpParamsAllOff())
	for i := 0; i < maxFlows+500; i++ {
		p := packet.New(cli, srv, uint16(1024+i%60000), 80)
		p.IP.Src = netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		p.TCP.Flags = packet.FlagSYN
		p.TCP.Seq = uint32(i)
		b.Process(p, netsim.ToServer, 0)
	}
	if b.flowCount() > maxFlows {
		t.Errorf("flow table grew to %d entries (cap %d)", b.flowCount(), maxFlows)
	}
	if b.Evicted == 0 {
		t.Error("no evictions recorded despite overflow")
	}
}

// A keep-alive client that coalesces several requests into one segment used
// to evade the HTTP box entirely when only the *first* request was benign:
// the DPI examined one request per payload. Both inspection paths — the
// single-segment memoized-view path and the reassembled-stream path — must
// scan every pipelined request.
func TestCensorsPipelinedForbiddenRequest(t *testing.T) {
	const benign = "GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n"
	const forbidden = "GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n"

	// Single segment carrying both requests (the memoized-view path).
	b := deterministic(httpParamsAllOff())
	pkts := append(handshake(100, 500), mk(true, pa, 101, 501, benign+forbidden))
	vs := feed(b, pkts...)
	if last := vs[len(vs)-1]; len(last.InjectToClient) == 0 {
		t.Error("pipelined forbidden request in one segment not censored")
	}
	if b.Censored != 1 {
		t.Errorf("Censored = %d, want 1", b.Censored)
	}

	// The forbidden request arrives in a later segment: the reassembled
	// stream starts with the benign request, so only a per-request walk of
	// the stream sees it.
	b2 := deterministic(httpParamsAllOff())
	pkts2 := append(handshake(100, 500),
		mk(true, pa, 101, 501, benign),
		mk(true, pa, 101+uint32(len(benign)), 501, forbidden))
	vs2 := feed(b2, pkts2...)
	if last := vs2[len(vs2)-1]; len(last.InjectToClient) == 0 {
		t.Error("pipelined forbidden request in the reassembled stream not censored")
	}
	if b2.Censored != 1 {
		t.Errorf("reassembly path Censored = %d, want 1", b2.Censored)
	}

	// All-benign pipelining stays uncensored.
	b3 := deterministic(httpParamsAllOff())
	feed(b3, append(handshake(100, 500), mk(true, pa, 101, 501, benign+benign))...)
	if b3.Censored != 0 {
		t.Error("censored an all-benign pipelined payload")
	}
}

// An endpoint that wraps its ephemeral-port counter reuses a 4-tuple whose
// old TCB is still tracked (most easily: the previous connection never
// completed, so the box never saw a tear-down). The stale TCB's sequence
// expectations belong to the dead connection; before the resync-on-reuse
// fix the box stayed desynchronized for the new connection's whole life and
// every forbidden request sailed through.
func TestTupleReuseResyncsStaleTCB(t *testing.T) {
	b := deterministic(httpParamsAllOff())
	feed(b,
		// Old connection: half-open (SYN only, never completed, never torn
		// down). The TCB expects the client stream at 101.
		mk(true, syn, 100, 0, ""),
		// New connection on the same 4-tuple, new ISN.
		mk(true, syn, 5000, 0, ""),
		mk(false, sa, 700, 5001, ""),
		mk(true, ack, 5001, 701, ""),
		mk(true, pa, 5001, 701, forbiddenGET),
	)
	if b.Censored != 1 {
		t.Errorf("Censored = %d, want 1: stale TCB left the box desynchronized on tuple reuse", b.Censored)
	}

	// A retransmitted SYN (same ISN) is NOT a new connection: the TCB —
	// including mid-connection state like the client stream position —
	// must survive it untouched.
	b2 := deterministic(httpParamsAllOff())
	feed(b2,
		mk(true, syn, 100, 0, ""),
		mk(true, syn, 100, 0, ""), // retransmit
		mk(false, sa, 500, 101, ""),
		mk(true, ack, 101, 501, ""),
		mk(true, pa, 101, 501, forbiddenGET),
	)
	if b2.Censored != 1 {
		t.Errorf("retransmitted SYN disturbed the TCB: Censored = %d, want 1", b2.Censored)
	}
}
