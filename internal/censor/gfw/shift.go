package gfw

import (
	"strings"
	"time"
)

// ShiftParams implements censor.ParamShifter: it re-tunes the boxes'
// calibrated probabilities in place, mid-run. Keys name Params fields in
// lower snake case — "pmiss", "prst", "pload", "pcorrupt_ack", "pload_sa",
// "pno_reassembly", "preacquire", "residual_s" (seconds) — either bare
// (applied to every box) or protocol-scoped ("http.prst", applied to that
// box only). Unknown keys are ignored, so one shift spec can be broadcast
// across a mixed-censor fleet. Applying the shift touches no randomness and
// no flow state: only the constants future packets are judged against.
func (g *GFW) ShiftParams(params map[string]float64) {
	for key, v := range params {
		proto, name := "", key
		if i := strings.IndexByte(key, '.'); i >= 0 {
			proto, name = key[:i], key[i+1:]
		}
		for _, b := range g.Boxes {
			if proto != "" && b.P.Protocol != proto {
				continue
			}
			switch name {
			case "pmiss":
				b.P.PMiss = v
			case "prst":
				b.P.PRst = v
			case "pload":
				b.P.PLoad = v
			case "pcorrupt_ack":
				b.P.PCorruptAck = v
			case "pload_sa":
				b.P.PLoadSA = v
			case "pno_reassembly":
				b.P.PNoReassembly = v
			case "preacquire":
				b.P.PReacquire = v
			case "residual_s":
				b.P.Residual = time.Duration(v * float64(time.Second))
			}
		}
	}
}
