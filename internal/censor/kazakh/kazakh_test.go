package kazakh

import (
	"net/netip"
	"testing"
	"time"

	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/packet"
)

var (
	cli = netip.MustParseAddr("10.1.0.2")
	srv = netip.MustParseAddr("198.51.100.9")
)

func cliPkt(flags uint8, payload string) *packet.Packet {
	p := packet.New(cli, srv, 40000, 80)
	p.TCP.Flags = flags
	p.TCP.Payload = []byte(payload)
	return p
}

func srvPkt(flags uint8, payload string) *packet.Packet {
	p := packet.New(srv, cli, 80, 40000)
	p.TCP.Flags = flags
	p.TCP.Payload = []byte(payload)
	return p
}

const (
	sa = packet.FlagSYN | packet.FlagACK
	pa = packet.FlagPSH | packet.FlagACK
	ak = packet.FlagACK
	sy = packet.FlagSYN
)

const forbidden = "GET / HTTP/1.1\r\nHost: blocked.example\r\n\r\n"

func feed(k *Kazakh, at time.Duration, pkts ...*packet.Packet) []netsim.Verdict {
	var out []netsim.Verdict
	for _, p := range pkts {
		dir := netsim.ToServer
		if p.IP.Src == srv {
			dir = netsim.ToClient
		}
		out = append(out, k.Process(p, dir, at))
	}
	return out
}

func TestHijacksForbiddenRequest(t *testing.T) {
	k := New(censor.Default(), nil)
	vs := feed(k, 0,
		cliPkt(sy, ""), srvPkt(sa, ""), cliPkt(ak, ""),
		cliPkt(pa, forbidden))
	last := vs[len(vs)-1]
	if !last.Drop {
		t.Fatal("the in-path censor must intercept the forbidden request")
	}
	if len(last.InjectToClient) != 1 || last.InjectToClient[0].TCP.Flags != packet.FlagFIN|packet.FlagPSH|packet.FlagACK {
		t.Error("no FIN+PSH+ACK block page injected")
	}
	// The MITM holds the flow for ~15 s.
	if v := feed(k, 10*time.Second, cliPkt(pa, "GET /other HTTP/1.1\r\nHost: ok\r\n\r\n"))[0]; !v.Drop {
		t.Error("flow not intercepted during the 15s MITM window")
	}
	if v := feed(k, 20*time.Second, cliPkt(pa, "GET /other HTTP/1.1\r\nHost: ok\r\n\r\n"))[0]; v.Drop {
		t.Error("interception outlived the 15s window")
	}
	if k.CensoredCount() != 1 {
		t.Errorf("CensoredCount = %d", k.CensoredCount())
	}
}

func TestTriplePayloadRunIgnoresConnection(t *testing.T) {
	k := New(censor.Default(), nil)
	feed(k, 0,
		cliPkt(sy, ""),
		srvPkt(sa, "x"), srvPkt(sa, "x"), srvPkt(sa, "x"),
		cliPkt(ak, ""))
	if v := feed(k, 0, cliPkt(pa, forbidden))[0]; v.Drop {
		t.Error("connection not ignored after three back-to-back server payloads")
	}
}

func TestEmptySynAckBreaksTheRun(t *testing.T) {
	k := New(censor.Default(), nil)
	feed(k, 0,
		cliPkt(sy, ""),
		srvPkt(sa, "x"), srvPkt(sa, "x"),
		srvPkt(sa, ""), // resets the back-to-back run
		srvPkt(sa, "x"),
		cliPkt(ak, ""))
	if v := feed(k, 0, cliPkt(pa, forbidden))[0]; !v.Drop {
		t.Error("run should have been reset by the empty SYN+ACK; censorship expected")
	}
}

func TestDoubleBenignGetConfusesRoles(t *testing.T) {
	k := New(censor.Default(), nil)
	feed(k, 0,
		cliPkt(sy, ""),
		srvPkt(sa, "GET / HTTP1."), srvPkt(sa, "GET / HTTP1."),
		cliPkt(ak, ""))
	if v := feed(k, 0, cliPkt(pa, forbidden))[0]; v.Drop {
		t.Error("two benign server GETs should confuse the censor into ignoring the flow")
	}
	if k.ProbeResponses != 0 {
		t.Error("benign GETs counted as probes")
	}
}

func TestSingleGetDoesNotConfuse(t *testing.T) {
	k := New(censor.Default(), nil)
	feed(k, 0,
		cliPkt(sy, ""),
		srvPkt(sa, "GET / HTTP1."), srvPkt(sa, ""),
		cliPkt(ak, ""))
	if v := feed(k, 0, cliPkt(pa, forbidden))[0]; !v.Drop {
		t.Error("a single server GET must not defeat the censor")
	}
}

func TestTwoForbiddenGetsElicitProbeResponse(t *testing.T) {
	k := New(censor.Default(), nil)
	vs := feed(k, 0,
		cliPkt(sy, ""),
		srvPkt(sa, forbidden), srvPkt(sa, forbidden))
	if k.ProbeResponses != 1 {
		t.Fatalf("ProbeResponses = %d, want 1 (the second request is processed)", k.ProbeResponses)
	}
	if len(vs[2].InjectToServer) == 0 {
		t.Error("no censorship response toward the probing server")
	}
}

func TestForbiddenThenBenignNotCensored(t *testing.T) {
	k := New(censor.Default(), nil)
	feed(k, 0,
		cliPkt(sy, ""),
		srvPkt(sa, forbidden),
		srvPkt(sa, "GET / HTTP/1.1\r\nHost: allowed.example\r\n\r\n"))
	if k.ProbeResponses != 0 {
		t.Error("the censor processed the first request; it should process the second")
	}
}

func TestAbnormalFlagsIgnoreConnection(t *testing.T) {
	for _, flags := range []uint8{0, packet.FlagPSH, packet.FlagURG, packet.FlagPSH | packet.FlagURG} {
		k := New(censor.Default(), nil)
		feed(k, 0,
			cliPkt(sy, ""),
			srvPkt(flags, ""), srvPkt(sa, ""),
			cliPkt(ak, ""))
		if v := feed(k, 0, cliPkt(pa, forbidden))[0]; v.Drop {
			t.Errorf("flags %q: abnormal handshake packet should make the censor give up",
				packet.FlagsString(flags))
		}
	}
}

func TestNormalFlagVariantsStillCensored(t *testing.T) {
	for _, flags := range []uint8{packet.FlagACK, packet.FlagFIN, packet.FlagRST | packet.FlagACK} {
		k := New(censor.Default(), nil)
		feed(k, 0,
			cliPkt(sy, ""),
			srvPkt(flags, ""), srvPkt(sa, ""),
			cliPkt(ak, ""))
		if v := feed(k, 0, cliPkt(pa, forbidden))[0]; !v.Drop {
			t.Errorf("flags %q contain normal handshake bits; censorship expected",
				packet.FlagsString(flags))
		}
	}
}

func TestSimOpenSwapsRolesButClientStillCensored(t *testing.T) {
	k := New(censor.Default(), nil)
	feed(k, 0,
		cliPkt(sy, ""),
		srvPkt(sy, ""), // simultaneous open
		cliPkt(sa, ""), srvPkt(ak, ""))
	// A forbidden GET from the server side is now inspected...
	vs := feed(k, 0, srvPkt(pa, forbidden))
	if k.ProbeResponses != 1 {
		t.Error("post-sim-open server request not processed")
	}
	_ = vs
	// ...and the real client is still censored on a fresh flow shape.
	k2 := New(censor.Default(), nil)
	feed(k2, 0, cliPkt(sy, ""), srvPkt(sy, ""), cliPkt(sa, ""), srvPkt(ak, ""))
	if v := feed(k2, 0, cliPkt(pa, forbidden))[0]; !v.Drop {
		t.Error("simultaneous open alone must not defeat the Kazakhstan censor")
	}
}

func TestNonHTTPPortIgnored(t *testing.T) {
	k := New(censor.Default(), nil)
	p := packet.New(cli, srv, 40000, 8080)
	p.TCP.Flags = pa
	p.TCP.Payload = []byte(forbidden)
	if v := k.Process(p, netsim.ToServer, 0); v.Drop {
		t.Error("censored off port 80")
	}
}

func TestSegmentedRequestPasses(t *testing.T) {
	k := New(censor.Default(), nil)
	feed(k, 0, cliPkt(sy, ""), srvPkt(sa, ""), cliPkt(ak, ""))
	if v := feed(k, 0, cliPkt(pa, forbidden[:10]))[0]; v.Drop {
		t.Error("first segment censored")
	}
	if v := feed(k, 0, cliPkt(pa, forbidden[10:]))[0]; v.Drop {
		t.Error("second segment censored; the censor cannot reassemble")
	}
}

// Keep-alive pipelining: a forbidden request coalesced behind a benign one
// in a single packet used to pass the MITM — it only ever matched the Host
// of the first request in a payload.
func TestPipelinedForbiddenRequestHijacked(t *testing.T) {
	k := New(censor.Default(), nil)
	const pipelined = "GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n" + forbidden
	vs := feed(k, 0,
		cliPkt(sy, ""), srvPkt(sa, ""), cliPkt(ak, ""),
		cliPkt(pa, pipelined))
	last := vs[len(vs)-1]
	if !last.Drop {
		t.Fatal("pipelined forbidden request not intercepted")
	}
	if len(last.InjectToClient) != 1 {
		t.Fatalf("injected %d packets, want the block page", len(last.InjectToClient))
	}
	if k.Censored != 1 {
		t.Errorf("Censored = %d, want 1", k.Censored)
	}
}
