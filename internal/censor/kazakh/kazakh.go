// Package kazakh models Kazakhstan's in-path HTTP censorship (§5.3): a
// man-in-the-middle DPI engine on port 80 that monitors connections for
// patterns resembling a normal HTTP client handshake and gives up on any
// connection that violates its model.
//
// Violations (each defeats censorship 100% of the time in the paper):
//   - three or more back-to-back server handshake packets each carrying a
//     payload, regardless of payload size (Strategy 9);
//   - two server handshake packets whose payloads are well-formed HTTP GET
//     prefixes (at least "GET / HTTP1."): the censor concludes the server
//     is actually the client (Strategy 10);
//   - any handshake packet whose TCP flags contain none of
//     FIN/RST/SYN/ACK (Strategy 11);
//   - a forbidden request the censor cannot see whole: it does not
//     reassemble segments (Strategy 8).
//
// On censoring, the middlebox hijacks the flow: for ~15 seconds no client
// packet (including the forbidden request) reaches the server, and a
// FIN+PSH+ACK block page is injected to the client.
//
// The package also reproduces the paper's probing observations: content
// injected from the server before the connection is established is
// processed only from the *second* request, and after a simultaneous open
// the censor's client/server roles are swapped.
package kazakh

import (
	"math/rand"
	"regexp"
	"time"

	"geneva/internal/censor"
	"geneva/internal/netsim"
	"geneva/internal/obs"
	"geneva/internal/packet"
)

var (
	mCensored       = obs.NewCounter("censor.kazakh.censored")
	mProbeResponses = obs.NewCounter("censor.kazakh.probe_responses")
	mIgnoredFlows   = obs.NewCounter("censor.kazakh.flows_ignored")
)

// hijackDuration is how long the MITM intercepts the flow after censoring.
const hijackDuration = 15 * time.Second

// getPrefix matches a payload that is a well-formed benign HTTP GET prefix
// reaching at least through "HTTP1." (the paper's observed minimum; both
// "HTTP/1." and the Geneva-notation "HTTP1." are accepted).
var getPrefix = regexp.MustCompile(`^GET /\S* HTTP/?1\.`)

type flowState struct {
	handshakeDone    bool
	serverPayloadRun int
	serverGets       [][]byte
	ignore           bool
	rolesSwapped     bool
	hijackUntil      time.Duration
	hijacked         bool
}

// Kazakh is the Kazakhstan middlebox.
type Kazakh struct {
	Block censor.Blocklist
	// Censored counts block-page injections against real clients.
	Censored int
	// ProbeResponses counts censorship responses elicited by
	// server-originated probes (§5.3's follow-up experiments).
	ProbeResponses int

	flows map[packet.Flow]*flowState
}

// New builds the censor (deterministic; rng accepted for symmetry).
func New(bl censor.Blocklist, _ *rand.Rand) *Kazakh {
	return &Kazakh{Block: bl, flows: make(map[packet.Flow]*flowState)}
}

// Name implements netsim.Middlebox.
func (k *Kazakh) Name() string { return "Kazakhstan" }

// Process implements netsim.Middlebox.
func (k *Kazakh) Process(pkt *packet.Packet, dir netsim.Direction, now time.Duration) netsim.Verdict {
	// Only HTTP on its default port is censored (the HTTPS MITM is
	// defunct, §5.3).
	port := pkt.TCP.DstPort
	if dir == netsim.ToClient {
		port = pkt.TCP.SrcPort
	}
	if port != 80 {
		return netsim.Verdict{}
	}
	key := pkt.Flow().Canonical()
	st := k.flows[key]
	if st == nil {
		st = &flowState{}
		k.flows[key] = st
	}

	// Active hijack: the MITM intercepts the stream.
	if st.hijacked && now < st.hijackUntil && dir == netsim.ToServer {
		return netsim.Verdict{Drop: true, Note: "intercepted (MITM)"}
	}

	if st.ignore {
		return netsim.Verdict{}
	}

	// Handshake-pattern monitoring.
	if !st.handshakeDone {
		if pkt.TCP.Flags&(packet.FlagFIN|packet.FlagRST|packet.FlagSYN|packet.FlagACK) == 0 {
			// Strategy 11: a packet violating normal TCP flag patterns.
			st.ignore = true
			mIgnoredFlows.Inc()
			return netsim.Verdict{Note: "abnormal flags: connection ignored"}
		}
		if dir == netsim.ToClient {
			if pkt.TCP.Flags == packet.FlagSYN {
				// Simultaneous open observed: the censor's notion of
				// client and server flips.
				st.rolesSwapped = true
			}
			if len(pkt.TCP.Payload) > 0 {
				st.serverPayloadRun++
				if getPrefix.Match(pkt.TCP.Payload) {
					st.serverGets = append(st.serverGets, append([]byte(nil), pkt.TCP.Payload...))
					// After a simultaneous open the censor has already
					// broken out of its handshake state: a single
					// request is processed (the paper's second probing
					// method).
					if st.rolesSwapped {
						// The stored copy holds exactly this packet's
						// bytes, so the packet's memoized view applies.
						return k.processServerRequest(st, st.serverGets[len(st.serverGets)-1], pkt, true)
					}
				}
				if st.serverPayloadRun >= 3 {
					// Strategy 9: three back-to-back payloads from the
					// server during the handshake.
					st.ignore = true
					mIgnoredFlows.Inc()
					return netsim.Verdict{Note: "server payloads during handshake: connection ignored"}
				}
				if len(st.serverGets) >= 2 {
					// Strategy 10 / probing: the first request breaks
					// the censor out of its handshake state; the second
					// is processed.
					// An earlier packet's payload: no view to reuse.
					return k.processServerRequest(st, st.serverGets[1], pkt, false)
				}
			} else {
				// A payload-less server packet breaks the run: the
				// paper found the three payloads must be back-to-back.
				st.serverPayloadRun = 0
			}
			return netsim.Verdict{}
		}
		// Client side: the first client payload ends the handshake phase.
		if len(pkt.TCP.Payload) > 0 {
			st.handshakeDone = true
		}
	}

	// Post-handshake inspection.
	if st.rolesSwapped && dir == netsim.ToClient && len(pkt.TCP.Payload) > 0 {
		// After a simultaneous open the censor is no longer sure who the
		// client is, so requests from the *server* side are inspected
		// too (the paper's second probing method). The real client's
		// requests below are still checked — simultaneous open alone
		// does not defeat this censor (no sim-open strategy appears in
		// the paper's Kazakhstan results).
		return k.processServerRequest(st, pkt.TCP.Payload, pkt, true)
	}
	if dir == netsim.ToServer && len(pkt.TCP.Payload) > 0 {
		// Anchored at a well-formed request line; no reassembly, so a
		// segmented request is never recognized (Strategy 8). Memoized on
		// the packet, shared with any other censor inspecting it.
		if _, ok := pkt.HTTPRequestTarget(); !ok {
			return netsim.Verdict{}
		}
		host, matched := pkt.HTTPHostHeader()
		matched = matched && k.Block.MatchDomain(host)
		if !matched {
			if off := pkt.HTTPNextRequestOffset(); off > 0 {
				// Keep-alive pipelining: each request's Host is matched, not
				// just the first one in the payload (all the MITM used to
				// inspect).
				matched = packet.VisitHTTPRequests(pkt.TCP.Payload[off:], func(_, h string, hok bool) bool {
					if hok && k.Block.MatchDomain(h) {
						host = h
						return true
					}
					return false
				})
			}
		}
		if matched {
			// Censor: hijack the flow and inject the block page.
			k.Censored++
			mCensored.Inc()
			st.hijacked = true
			st.hijackUntil = now + hijackDuration
			srvFlow := pkt.Flow().Reverse()
			page := censor.BlockPage(srvFlow,
				pkt.TCP.Ack, pkt.TCP.Seq+uint32(len(pkt.TCP.Payload)),
				"<html><body>This resource is blocked in your region.</body></html>")
			return netsim.Verdict{
				Drop:           true,
				Note:           "blocked Host " + host + "; flow hijacked",
				InjectToClient: []*packet.Packet{page},
			}
		}
	}
	return netsim.Verdict{}
}

// processServerRequest handles a request observed from the server side of a
// connection (probing, Strategy 10). A forbidden request elicits a
// censorship response toward the sender; a benign one convinces the censor
// the server is the client, and the connection is ignored thereafter.
func (k *Kazakh) processServerRequest(st *flowState, payload []byte, pkt *packet.Packet, usePkt bool) netsim.Verdict {
	// usePkt: payload holds exactly pkt's bytes, so the packet's memoized
	// view answers; a replayed earlier request is parsed directly.
	forbidden := false
	if usePkt {
		if host, ok := pkt.HTTPHostHeader(); ok && k.Block.MatchDomain(host) {
			forbidden = true
		}
		if target, ok := pkt.HTTPRequestTarget(); ok && k.Block.MatchKeyword(target) {
			forbidden = true
		}
	} else {
		if host, ok := packet.ParseHTTPHostHeader(payload); ok && k.Block.MatchDomain(host) {
			forbidden = true
		}
		if target, ok := packet.ParseHTTPRequestTarget(payload); ok && k.Block.MatchKeyword(target) {
			forbidden = true
		}
	}
	if forbidden {
		k.ProbeResponses++
		mProbeResponses.Inc()
		st.ignore = true
		mIgnoredFlows.Inc()
		flow := pkt.Flow().Reverse()
		page := censor.BlockPage(flow, pkt.TCP.Ack, pkt.TCP.Seq+uint32(len(pkt.TCP.Payload)),
			"<html><body>This resource is blocked in your region.</body></html>")
		return netsim.Verdict{
			Note: "forbidden probe from server censored",
			// The "client" from the censor's (confused) perspective is
			// the probing server.
			InjectToServer: []*packet.Packet{page},
		}
	}
	st.ignore = true
	mIgnoredFlows.Inc()
	return netsim.Verdict{Note: "benign GET from server: roles confused, connection ignored"}
}

// CensoredCount returns the number of censorship events against real
// clients (eval harness interface).
func (k *Kazakh) CensoredCount() int { return k.Censored }
