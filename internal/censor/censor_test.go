package censor

import (
	"net/netip"
	"strings"
	"testing"

	"geneva/internal/packet"
)

func TestBlocklistDomainMatching(t *testing.T) {
	bl := Default()
	cases := []struct {
		name string
		want bool
	}{
		{"www.wikipedia.org", true},
		{"WWW.WIKIPEDIA.ORG", true},
		{"www.wikipedia.org.", true},
		{"m.www.wikipedia.org", true}, // subdomain
		{"wikipedia.org", false},      // parent is not blocked
		{"youtube.com", true},
		{"notyoutube.com", false}, // suffix without dot boundary
		{"example.com", false},
	}
	for _, c := range cases {
		if got := bl.MatchDomain(c.name); got != c.want {
			t.Errorf("MatchDomain(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBlocklistKeywordMatching(t *testing.T) {
	bl := Default()
	if !bl.MatchKeyword("/?q=ultrasurf") || !bl.MatchKeyword("ULTRASURF") {
		t.Error("keyword matching should be case-insensitive substring")
	}
	if bl.MatchKeyword("/?q=kittens") {
		t.Error("benign keyword matched")
	}
}

func TestBlocklistEmailMatching(t *testing.T) {
	bl := Default()
	if !bl.MatchEmail("tibetalk@yahoo.com.cn") || !bl.MatchEmail(" TIBETALK@yahoo.com.cn ") {
		t.Error("email matching failed")
	}
	if bl.MatchEmail("friend@example.org") {
		t.Error("benign email matched")
	}
}

func TestInjectRSTShape(t *testing.T) {
	from := packet.Flow{
		SrcAddr: netip.MustParseAddr("198.51.100.9"), SrcPort: 80,
		DstAddr: netip.MustParseAddr("10.1.0.2"), DstPort: 40000,
	}
	p := InjectRST(from, from.Reverse(), 1234, 5678)
	if p.TCP.Flags != packet.FlagRST|packet.FlagACK {
		t.Errorf("flags = %s", packet.FlagsString(p.TCP.Flags))
	}
	if p.TCP.Seq != 1234 || p.TCP.Ack != 5678 {
		t.Error("seq/ack not propagated")
	}
	if p.IP.Src != from.SrcAddr || p.TCP.DstPort != 40000 {
		t.Error("addressing wrong")
	}
}

func TestBlockPageShape(t *testing.T) {
	from := packet.Flow{
		SrcAddr: netip.MustParseAddr("198.51.100.9"), SrcPort: 80,
		DstAddr: netip.MustParseAddr("10.1.0.2"), DstPort: 40000,
	}
	p := BlockPage(from, 1, 2, "<html>blocked</html>")
	if p.TCP.Flags != packet.FlagFIN|packet.FlagPSH|packet.FlagACK {
		t.Errorf("flags = %s, want FPA", packet.FlagsString(p.TCP.Flags))
	}
	body := string(p.TCP.Payload)
	if !strings.HasPrefix(body, "HTTP/1.1 200 OK") || !strings.Contains(body, "blocked") {
		t.Errorf("payload = %q", body)
	}
}
