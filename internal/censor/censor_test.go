package censor

import (
	"net/netip"
	"strings"
	"testing"

	"geneva/internal/packet"
)

func TestBlocklistDomainMatching(t *testing.T) {
	bl := Default()
	cases := []struct {
		name string
		want bool
	}{
		{"www.wikipedia.org", true},
		{"WWW.WIKIPEDIA.ORG", true},
		{"www.wikipedia.org.", true},
		{"m.www.wikipedia.org", true}, // subdomain
		{"wikipedia.org", false},      // parent is not blocked
		{"youtube.com", true},
		{"notyoutube.com", false}, // suffix without dot boundary
		{"example.com", false},
	}
	for _, c := range cases {
		if got := bl.MatchDomain(c.name); got != c.want {
			t.Errorf("MatchDomain(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestBlocklistMixedCaseEntries is the regression test for the casing bug:
// MatchDomain lowercased the probed name but compared it against raw
// entries, so an operator-supplied mixed-case entry could never match
// anything. The same audit covers MatchKeyword and MatchEmail.
func TestBlocklistMixedCaseEntries(t *testing.T) {
	bl := Blocklist{
		Domains:  []string{"Wikipedia.ORG", " Blocked.Example. "},
		Keywords: []string{"UltraSurf"},
		Emails:   []string{" TibeTalk@Yahoo.com.CN "},
	}
	if !bl.MatchDomain("wikipedia.org") {
		t.Error("mixed-case domain entry did not match lowercase name")
	}
	if !bl.MatchDomain("M.WIKIPEDIA.org") {
		t.Error("mixed-case entry did not match mixed-case subdomain")
	}
	if !bl.MatchDomain("blocked.example") {
		t.Error("padded dotted mixed-case entry did not match")
	}
	if !bl.MatchKeyword("/?q=ultrasurf") {
		t.Error("mixed-case keyword entry did not match")
	}
	if !bl.MatchEmail("tibetalk@yahoo.com.cn") {
		t.Error("mixed-case email entry did not match")
	}
	if bl.MatchDomain("wikipedia.org.example") {
		t.Error("suffix without dot boundary matched")
	}
}

// TestBlocklistNormalize covers the construction-time path: New and
// Normalize must pre-lowercase entries so the per-packet Match fast path
// never re-normalizes a cold string.
func TestBlocklistNormalize(t *testing.T) {
	bl := New([]string{"YouTube.COM."}, []string{"FALUN"}, []string{"X@Y.Z"})
	for i, want := range []struct{ got, want string }{
		{bl.Domains[0], "youtube.com"},
		{bl.Keywords[0], "falun"},
		{bl.Emails[0], "x@y.z"},
	} {
		if want.got != want.want {
			t.Errorf("entry %d = %q, want %q", i, want.got, want.want)
		}
	}
	n := Blocklist{Domains: []string{"A.B"}}.Normalize()
	if n.Domains[0] != "a.b" || n.Keywords != nil || n.Emails != nil {
		t.Errorf("Normalize mangled: %+v", n)
	}
}

// TestMatchDomainNoAlloc pins the hot-path guarantee: matching against an
// already-normalized (Default) blocklist allocates nothing.
func TestMatchDomainNoAlloc(t *testing.T) {
	bl := Default()
	if allocs := testing.AllocsPerRun(100, func() {
		bl.MatchDomain("www.wikipedia.org")
		bl.MatchDomain("example.com")
		bl.MatchKeyword("/?q=ultrasurf")
		bl.MatchEmail("tibetalk@yahoo.com.cn")
	}); allocs != 0 {
		t.Errorf("Match* against normalized list allocates %.1f/op, want 0", allocs)
	}
}

func TestBlocklistKeywordMatching(t *testing.T) {
	bl := Default()
	if !bl.MatchKeyword("/?q=ultrasurf") || !bl.MatchKeyword("ULTRASURF") {
		t.Error("keyword matching should be case-insensitive substring")
	}
	if bl.MatchKeyword("/?q=kittens") {
		t.Error("benign keyword matched")
	}
}

func TestBlocklistEmailMatching(t *testing.T) {
	bl := Default()
	if !bl.MatchEmail("tibetalk@yahoo.com.cn") || !bl.MatchEmail(" TIBETALK@yahoo.com.cn ") {
		t.Error("email matching failed")
	}
	if bl.MatchEmail("friend@example.org") {
		t.Error("benign email matched")
	}
}

func TestInjectRSTShape(t *testing.T) {
	from := packet.Flow{
		SrcAddr: netip.MustParseAddr("198.51.100.9"), SrcPort: 80,
		DstAddr: netip.MustParseAddr("10.1.0.2"), DstPort: 40000,
	}
	p := InjectRST(from, from.Reverse(), 1234, 5678)
	if p.TCP.Flags != packet.FlagRST|packet.FlagACK {
		t.Errorf("flags = %s", packet.FlagsString(p.TCP.Flags))
	}
	if p.TCP.Seq != 1234 || p.TCP.Ack != 5678 {
		t.Error("seq/ack not propagated")
	}
	if p.IP.Src != from.SrcAddr || p.TCP.DstPort != 40000 {
		t.Error("addressing wrong")
	}
}

func TestBlockPageShape(t *testing.T) {
	from := packet.Flow{
		SrcAddr: netip.MustParseAddr("198.51.100.9"), SrcPort: 80,
		DstAddr: netip.MustParseAddr("10.1.0.2"), DstPort: 40000,
	}
	p := BlockPage(from, 1, 2, "<html>blocked</html>")
	if p.TCP.Flags != packet.FlagFIN|packet.FlagPSH|packet.FlagACK {
		t.Errorf("flags = %s, want FPA", packet.FlagsString(p.TCP.Flags))
	}
	body := string(p.TCP.Payload)
	if !strings.HasPrefix(body, "HTTP/1.1 200 OK") || !strings.Contains(body, "blocked") {
		t.Errorf("payload = %q", body)
	}
}
